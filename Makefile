GO ?= go

.PHONY: all build test race vet fmt lint ci bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (CI gate); run `gofmt -w .` to fix.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs go vet plus hdlint (the directive/dataflow/GPU-safety analyzer)
# over the built-in benchmark programs and the example MiniC sources.
# hdlint exits non-zero on warning- or error-severity findings.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/hdlint -q -benchmarks
	$(GO) run ./cmd/hdlint -q examples/minic/*.c

ci: fmt vet build test race lint

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
