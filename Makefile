GO ?= go

.PHONY: all build test race vet fmt ci bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (CI gate); run `gofmt -w .` to fix.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

ci: fmt vet build test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
