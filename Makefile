GO ?= go

.PHONY: all build test race vet fmt lint lint-go opt-report ci bench bench-baseline bench-check fuzz-smoke cover stress

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# stress hammers the parallel-engine determinism tests under the race
# detector with repeated runs on a deterministic seed subset: the pool and
# two-phase dispatcher edge cases, and the worker-count invariance crossing
# with recovering-fault and corruption plans. Goroutine schedules differ on
# every -count repetition, so 20 repetitions explore 20 interleavings of
# the same virtual-time schedule.
stress:
	$(GO) test -race -count=20 ./internal/sim -run 'Pool|Task|Cancel|RunUntil|Wait|Discard|Close'
	$(GO) test -race -count=20 ./internal/testkit -run 'TestWorkerInvarianceUnder'

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (CI gate); run `gofmt -w .` to fix.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs go vet plus hdlint (the directive/dataflow/GPU-safety analyzer)
# over the built-in benchmark programs and the example MiniC sources.
# hdlint exits non-zero on warning- or error-severity findings.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/hdlint -q -benchmarks
	$(GO) run ./cmd/hdlint -q examples/minic/*.c

# lint-go runs the determinism linter over the packages whose outputs
# must be bit-reproducible (no math/rand, no time.Now, no unsorted map
# iteration); see tools/detlint.
lint-go:
	$(GO) run ./tools/detlint internal/sim internal/mr internal/faults internal/obs

# opt-report prints the SSA optimizer's per-pass rewrite counts for every
# benchmark stage program (host and translated-kernel targets).
opt-report:
	$(GO) run ./cmd/hdbench -opt-report

# fuzz-smoke gives each native fuzz target a short budget on top of its
# checked-in corpus. Longer runs: go test -fuzz FuzzParser ./internal/minic
fuzz-smoke:
	$(GO) test ./internal/minic -run '^$$' -fuzz '^FuzzLexer$$' -fuzztime 5s
	$(GO) test ./internal/minic -run '^$$' -fuzz '^FuzzParser$$' -fuzztime 5s
	$(GO) test ./internal/compiler -run '^$$' -fuzz '^FuzzParseDirective$$' -fuzztime 5s
	$(GO) test ./internal/faults -run '^$$' -fuzz '^FuzzParseSpec$$' -fuzztime 5s
	$(GO) test ./internal/bytecode -run '^$$' -fuzz '^FuzzBytecodeRoundTrip$$' -fuzztime 5s
	$(GO) test ./internal/seqfile -run '^$$' -fuzz '^FuzzSeqfileReader$$' -fuzztime 5s

# cover enforces statement-coverage floors on the correctness-critical
# packages (thresholds sit ~5 points under current coverage).
cover:
	@set -e; \
	check() { \
		pct="$$($(GO) test -cover "$$1" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')"; \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for $$1"; exit 1; fi; \
		ok="$$(awk -v p="$$pct" -v m="$$2" 'BEGIN { print (p >= m) ? 1 : 0 }')"; \
		if [ "$$ok" != 1 ]; then echo "cover: $$1 at $$pct% (< $$2% floor)"; exit 1; fi; \
		echo "cover: $$1 $$pct% (floor $$2%)"; \
	}; \
	check ./internal/minic 80; \
	check ./internal/compiler 80; \
	check ./internal/mr 87

ci: fmt vet build test race lint lint-go stress cover fuzz-smoke bench-check

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-baseline re-measures the full suite (3 samples each) and rewrites
# BENCH_baseline.json. Run on a quiet machine; commit the result.
bench-baseline:
	$(GO) run ./cmd/hdbench -baseline

# bench-check is the CI regression gate: the cheap -short subset against
# the committed baseline, with a wide (100%) allowance on top of the noise
# bands since CI machines differ from the baseline host.
bench-check:
	$(GO) run ./cmd/hdbench -check -short -threshold 1.0 -allow-env-mismatch
