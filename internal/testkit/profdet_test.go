package testkit

import (
	"testing"

	"repro/internal/mr"
	"repro/internal/perf"
)

// TestProfilerDoesNotChangeOutput pins that attaching the wall-clock cost
// profiler is pure observation: on both cluster backends, a profiled run
// produces byte-identical output to an unprofiled one. A divergence would
// mean the timing hooks leak into evaluation semantics.
func TestProfilerDoesNotChangeOutput(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23, 61, 1013} {
		p := Generate(seed)
		cj, err := Compile(p)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		for _, sched := range []mr.SchedulerKind{mr.CPUOnly, mr.GPUFirst} {
			base, err := RunCluster(cj, p.Input, ClusterOpts{Scheduler: sched, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d %v: plain run: %v", seed, sched, err)
			}
			prof := perf.New()
			profiled, err := RunCluster(cj, p.Input, ClusterOpts{Scheduler: sched, Seed: seed, Prof: prof})
			if err != nil {
				t.Fatalf("seed %d %v: profiled run: %v", seed, sched, err)
			}
			if got, want := TextOutput(profiled), TextOutput(base); got != want {
				t.Errorf("seed %d %v: profiler changed output\nplain:\n%s\nprofiled:\n%s",
					seed, sched, want, got)
			}
			// The profiled run must actually have profiled something.
			if len(prof.Snapshot().Buckets) == 0 {
				t.Errorf("seed %d %v: profiler saw no buckets", seed, sched)
			}
		}
	}
}
