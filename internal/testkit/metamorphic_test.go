package testkit

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/mr"
)

// NumMetamorphicSeeds is how many generated programs each metamorphic
// property is checked against. Smaller than the differential corpus: every
// seed here runs several cluster configurations.
const NumMetamorphicSeeds = 24

// metaProgram compiles one generated program and its reference output.
func metaProgram(t *testing.T, seed uint64) (mr.CompiledJob, Program, string) {
	t.Helper()
	p := Generate(seed)
	cj, err := Compile(p)
	if err != nil {
		t.Fatalf("seed %d: compile: %v", seed, err)
	}
	ref, err := Reference(cj, p.Input)
	if err != nil {
		t.Fatalf("seed %d: reference: %v", seed, err)
	}
	return *cj, p, ref
}

// mustRun executes one cluster configuration and returns its text output.
func mustRun(t *testing.T, cj *mr.CompiledJob, p Program, o ClusterOpts, what string) (*mr.JobStats, string) {
	t.Helper()
	stats, err := RunCluster(cj, p.Input, o)
	if err != nil {
		t.Fatalf("seed %d: %s: %v\nmap source:\n%s", p.Seed, what, err, p.MapSrc)
	}
	return stats, TextOutput(stats)
}

// TestOutputInvariantUnderSplitBoundaries: the HDFS block size decides how
// the input is cut into fileSplits, and splits are record-aligned — so the
// job output must not depend on it. 256 bytes forces many tiny splits,
// 64 KiB collapses the whole input into one.
func TestOutputInvariantUnderSplitBoundaries(t *testing.T) {
	for seed := uint64(0); seed < NumMetamorphicSeeds; seed++ {
		cj, p, ref := metaProgram(t, seed)
		for _, bs := range []int64{256, 1024, 64 << 10} {
			o := ClusterOpts{BlockSize: bs, Scheduler: mr.GPUFirst, Seed: seed}
			if _, out := mustRun(t, &cj, p, o, fmt.Sprintf("blocksize %d", bs)); out != ref {
				t.Fatalf("seed %d: block size %d changed the output\nwant:\n%s\ngot:\n%s\nmap source:\n%s",
					seed, bs, head(ref), head(out), p.MapSrc)
			}
		}
	}
}

// TestOutputInvariantUnderSlaveCount: how many TaskTrackers share the work
// changes placement, concurrency, and commit order — never the output.
func TestOutputInvariantUnderSlaveCount(t *testing.T) {
	for seed := uint64(0); seed < NumMetamorphicSeeds; seed++ {
		cj, p, ref := metaProgram(t, seed)
		for _, slaves := range []int{1, 2, 5} {
			o := ClusterOpts{Slaves: slaves, Scheduler: mr.GPUFirst, Seed: seed}
			if _, out := mustRun(t, &cj, p, o, fmt.Sprintf("%d slaves", slaves)); out != ref {
				t.Fatalf("seed %d: slave count %d changed the output\nwant:\n%s\ngot:\n%s\nmap source:\n%s",
					seed, slaves, head(ref), head(out), p.MapSrc)
			}
		}
	}
}

// TestOutputInvariantUnderScheduler: the three scheduling policies pick
// different devices and orders for the same task set; the output is the
// same fixed point.
func TestOutputInvariantUnderScheduler(t *testing.T) {
	for seed := uint64(0); seed < NumMetamorphicSeeds; seed++ {
		cj, p, ref := metaProgram(t, seed)
		for _, sched := range []mr.SchedulerKind{mr.CPUOnly, mr.GPUFirst, mr.TailSched} {
			o := ClusterOpts{Scheduler: sched, Seed: seed}
			if _, out := mustRun(t, &cj, p, o, fmt.Sprintf("scheduler %v", sched)); out != ref {
				t.Fatalf("seed %d: scheduler %v changed the output\nwant:\n%s\ngot:\n%s\nmap source:\n%s",
					seed, sched, head(ref), head(out), p.MapSrc)
			}
		}
	}
}

// TestOutputInvariantUnderRecoveringFaults: every fault-plan shape the
// spec language can express that the engine recovers from — crashes with
// and without restart, heartbeat loss, GPU retirement, stragglers,
// targeted task failures, and background failure rates — must leave the
// output byte-identical to the clean run. Fault times are placed relative
// to the clean run's map phase so each plan actually interrupts work in
// flight.
func TestOutputInvariantUnderRecoveringFaults(t *testing.T) {
	const faultSeeds = 10
	recoveries := map[string]int{}
	for seed := uint64(0); seed < faultSeeds; seed++ {
		cj, p, ref := metaProgram(t, seed)
		clean, cleanOut := mustRun(t, &cj, p, ClusterOpts{Scheduler: mr.GPUFirst, Seed: seed}, "clean run")
		if cleanOut != ref {
			t.Fatalf("seed %d: clean cluster run disagrees with the reference", seed)
		}
		mid := clean.MapPhaseEnd / 2
		late := clean.Makespan * 3 / 4
		specs := []struct{ name, spec string }{
			{"crash-permanent", fmt.Sprintf("crash(node=1,at=%g)", mid)},
			{"crash-restart", fmt.Sprintf("crash(node=1,at=%g,restart=%g)", mid, clean.Makespan)},
			{"crash-late", fmt.Sprintf("crash(node=2,at=%g)", late)},
			{"hbloss", fmt.Sprintf("hbloss(node=0,at=%g,for=%g)", mid, clean.Makespan)},
			{"gpu-retire", fmt.Sprintf("retire(node=2,at=%g)", mid)},
			{"straggler", fmt.Sprintf("slow(node=1,at=0,for=%g,factor=4)", clean.Makespan*2)},
			{"taskfail-any", "taskfail(task=0,attempt=0)"},
			{"taskfail-gpu", "taskfail(task=0,attempt=0,dev=gpu)"},
			{"gpu-rate", "gpurate=0.3;seed=9"},
			{"cpu-rate", "cpurate=0.1;seed=3"},
		}
		for _, tc := range specs {
			plan, err := faults.Parse(tc.spec)
			if err != nil {
				t.Fatalf("seed %d: plan %s: %v", seed, tc.name, err)
			}
			if err := plan.Validate(3); err != nil {
				t.Fatalf("seed %d: plan %s: %v", seed, tc.name, err)
			}
			o := ClusterOpts{Scheduler: mr.GPUFirst, Faults: plan, Seed: seed}
			stats, out := mustRun(t, &cj, p, o, "faulted run "+tc.name)
			if out != cleanOut {
				t.Fatalf("seed %d: fault plan %s (%s) changed the output\nclean:\n%s\nfaulted:\n%s\nmap source:\n%s",
					seed, tc.name, tc.spec, head(cleanOut), head(out), p.MapSrc)
			}
			recoveries[tc.name] += stats.NodesLost + stats.MapsReexecuted +
				stats.GPUFallbacks + stats.Retries
		}
	}
	// The sweep must have teeth: across all seeds the disruptive plan
	// shapes must actually have triggered recovery machinery somewhere.
	for _, name := range []string{"crash-permanent", "crash-restart", "hbloss", "taskfail-any", "taskfail-gpu"} {
		if recoveries[name] == 0 {
			t.Errorf("fault plan %s never exercised any recovery path across %d seeds", name, faultSeeds)
		}
	}
}
