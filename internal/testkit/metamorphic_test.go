package testkit

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/mr"
)

// NumMetamorphicSeeds is how many generated programs each metamorphic
// property is checked against. Smaller than the differential corpus: every
// seed here runs several cluster configurations.
const NumMetamorphicSeeds = 24

// metaProgram compiles one generated program and its reference output.
func metaProgram(t *testing.T, seed uint64) (mr.CompiledJob, Program, string) {
	t.Helper()
	p := Generate(seed)
	cj, err := Compile(p)
	if err != nil {
		t.Fatalf("seed %d: compile: %v", seed, err)
	}
	ref, err := Reference(cj, p.Input)
	if err != nil {
		t.Fatalf("seed %d: reference: %v", seed, err)
	}
	return *cj, p, ref
}

// mustRun executes one cluster configuration and returns its text output.
func mustRun(t *testing.T, cj *mr.CompiledJob, p Program, o ClusterOpts, what string) (*mr.JobStats, string) {
	t.Helper()
	stats, err := RunCluster(cj, p.Input, o)
	if err != nil {
		t.Fatalf("seed %d: %s: %v\nmap source:\n%s", p.Seed, what, err, p.MapSrc)
	}
	return stats, TextOutput(stats)
}

// TestOutputInvariantUnderSplitBoundaries: the HDFS block size decides how
// the input is cut into fileSplits, and splits are record-aligned — so the
// job output must not depend on it. 256 bytes forces many tiny splits,
// 64 KiB collapses the whole input into one.
func TestOutputInvariantUnderSplitBoundaries(t *testing.T) {
	for seed := uint64(0); seed < NumMetamorphicSeeds; seed++ {
		cj, p, ref := metaProgram(t, seed)
		for _, bs := range []int64{256, 1024, 64 << 10} {
			o := ClusterOpts{BlockSize: bs, Scheduler: mr.GPUFirst, Seed: seed}
			if _, out := mustRun(t, &cj, p, o, fmt.Sprintf("blocksize %d", bs)); out != ref {
				t.Fatalf("seed %d: block size %d changed the output\nwant:\n%s\ngot:\n%s\nmap source:\n%s",
					seed, bs, head(ref), head(out), p.MapSrc)
			}
		}
	}
}

// TestOutputInvariantUnderSlaveCount: how many TaskTrackers share the work
// changes placement, concurrency, and commit order — never the output.
func TestOutputInvariantUnderSlaveCount(t *testing.T) {
	for seed := uint64(0); seed < NumMetamorphicSeeds; seed++ {
		cj, p, ref := metaProgram(t, seed)
		for _, slaves := range []int{1, 2, 5} {
			o := ClusterOpts{Slaves: slaves, Scheduler: mr.GPUFirst, Seed: seed}
			if _, out := mustRun(t, &cj, p, o, fmt.Sprintf("%d slaves", slaves)); out != ref {
				t.Fatalf("seed %d: slave count %d changed the output\nwant:\n%s\ngot:\n%s\nmap source:\n%s",
					seed, slaves, head(ref), head(out), p.MapSrc)
			}
		}
	}
}

// TestOutputInvariantUnderScheduler: the three scheduling policies pick
// different devices and orders for the same task set; the output is the
// same fixed point.
func TestOutputInvariantUnderScheduler(t *testing.T) {
	for seed := uint64(0); seed < NumMetamorphicSeeds; seed++ {
		cj, p, ref := metaProgram(t, seed)
		for _, sched := range []mr.SchedulerKind{mr.CPUOnly, mr.GPUFirst, mr.TailSched} {
			o := ClusterOpts{Scheduler: sched, Seed: seed}
			if _, out := mustRun(t, &cj, p, o, fmt.Sprintf("scheduler %v", sched)); out != ref {
				t.Fatalf("seed %d: scheduler %v changed the output\nwant:\n%s\ngot:\n%s\nmap source:\n%s",
					seed, sched, head(ref), head(out), p.MapSrc)
			}
		}
	}
}

// TestOutputInvariantUnderRecoveringFaults: every fault-plan shape the
// spec language can express that the engine recovers from — crashes with
// and without restart, heartbeat loss, GPU retirement, stragglers,
// targeted task failures, and background failure rates — must leave the
// output byte-identical to the clean run. Fault times are placed relative
// to the clean run's map phase so each plan actually interrupts work in
// flight.
func TestOutputInvariantUnderRecoveringFaults(t *testing.T) {
	const faultSeeds = 10
	recoveries := map[string]int{}
	for seed := uint64(0); seed < faultSeeds; seed++ {
		cj, p, ref := metaProgram(t, seed)
		clean, cleanOut := mustRun(t, &cj, p, ClusterOpts{Scheduler: mr.GPUFirst, Seed: seed}, "clean run")
		if cleanOut != ref {
			t.Fatalf("seed %d: clean cluster run disagrees with the reference", seed)
		}
		mid := clean.MapPhaseEnd / 2
		late := clean.Makespan * 3 / 4
		specs := []struct{ name, spec string }{
			{"crash-permanent", fmt.Sprintf("crash(node=1,at=%g)", mid)},
			{"crash-restart", fmt.Sprintf("crash(node=1,at=%g,restart=%g)", mid, clean.Makespan)},
			{"crash-late", fmt.Sprintf("crash(node=2,at=%g)", late)},
			{"hbloss", fmt.Sprintf("hbloss(node=0,at=%g,for=%g)", mid, clean.Makespan)},
			{"gpu-retire", fmt.Sprintf("retire(node=2,at=%g)", mid)},
			{"straggler", fmt.Sprintf("slow(node=1,at=0,for=%g,factor=4)", clean.Makespan*2)},
			{"taskfail-any", "taskfail(task=0,attempt=0)"},
			{"taskfail-gpu", "taskfail(task=0,attempt=0,dev=gpu)"},
			{"gpu-rate", "gpurate=0.3;seed=9"},
			{"cpu-rate", "cpurate=0.1;seed=3"},
		}
		for _, tc := range specs {
			plan, err := faults.Parse(tc.spec)
			if err != nil {
				t.Fatalf("seed %d: plan %s: %v", seed, tc.name, err)
			}
			if err := plan.Validate(3); err != nil {
				t.Fatalf("seed %d: plan %s: %v", seed, tc.name, err)
			}
			o := ClusterOpts{Scheduler: mr.GPUFirst, Faults: plan, Seed: seed}
			stats, out := mustRun(t, &cj, p, o, "faulted run "+tc.name)
			if out != cleanOut {
				t.Fatalf("seed %d: fault plan %s (%s) changed the output\nclean:\n%s\nfaulted:\n%s\nmap source:\n%s",
					seed, tc.name, tc.spec, head(cleanOut), head(out), p.MapSrc)
			}
			recoveries[tc.name] += stats.NodesLost + stats.MapsReexecuted +
				stats.GPUFallbacks + stats.Retries
		}
	}
	// The sweep must have teeth: across all seeds the disruptive plan
	// shapes must actually have triggered recovery machinery somewhere.
	for _, name := range []string{"crash-permanent", "crash-restart", "hbloss", "taskfail-any", "taskfail-gpu"} {
		if recoveries[name] == 0 {
			t.Errorf("fault plan %s never exercised any recovery path across %d seeds", name, faultSeeds)
		}
	}
}

// TestOutputInvariantUnderCorruptionFaults: every data-integrity plan shape
// the engine recovers from — targeted partition corruption, whole-output
// corruption, transient and sustained fetch failures, and background
// corruption/fetch-failure rates — must leave the output byte-identical to
// the clean run. Plans are expressed as spec strings so the sweep also
// exercises the -faults syntax for the new kinds.
func TestOutputInvariantUnderCorruptionFaults(t *testing.T) {
	const faultSeeds = 10
	integrity := map[string]int{}
	for seed := uint64(0); seed < faultSeeds; seed++ {
		cj, p, ref := metaProgram(t, seed)
		_, cleanOut := mustRun(t, &cj, p, ClusterOpts{Scheduler: mr.GPUFirst, Seed: seed}, "clean run")
		if cleanOut != ref {
			t.Fatalf("seed %d: clean cluster run disagrees with the reference", seed)
		}
		specs := []struct{ name, spec string }{
			{"corrupt-whole-output", "corrupt(task=0,attempt=0)"},
			{"corrupt-one-partition", "corrupt(task=1,attempt=0,part=0)"},
			{"fetchfail-transient", "fetchfail(task=0,part=0,times=2)"},
			{"fetchfail-until-lost", "fetchfail(task=0,part=0,times=9)"},
			{"corrupt-rate", "corruptrate=0.05;seed=5"},
			{"fetch-rate", "fetchrate=0.05;seed=6"},
		}
		for _, tc := range specs {
			plan, err := faults.Parse(tc.spec)
			if err != nil {
				t.Fatalf("seed %d: plan %s: %v", seed, tc.name, err)
			}
			if err := plan.Validate(3); err != nil {
				t.Fatalf("seed %d: plan %s: %v", seed, tc.name, err)
			}
			o := ClusterOpts{Scheduler: mr.GPUFirst, Faults: plan, Seed: seed}
			stats, out := mustRun(t, &cj, p, o, "corrupted run "+tc.name)
			if out != cleanOut {
				t.Fatalf("seed %d: corruption plan %s (%s) changed the output\nclean:\n%s\nfaulted:\n%s\nmap source:\n%s",
					seed, tc.name, tc.spec, head(cleanOut), head(out), p.MapSrc)
			}
			integrity[tc.name] += stats.CorruptPartitions + stats.FetchFailures +
				stats.MapOutputsLost + stats.Refetches
		}
	}
	// Map-only programs never fetch, so not every seed exercises the shuffle
	// integrity machinery — but across the sweep each plan shape must have.
	for _, name := range []string{"corrupt-whole-output", "corrupt-one-partition", "fetchfail-transient", "fetchfail-until-lost"} {
		if integrity[name] == 0 {
			t.Errorf("corruption plan %s never exercised the integrity machinery across %d seeds", name, faultSeeds)
		}
	}
}

// TestOutputInvariantUnderBadRecordSkipping: with skip-bad-records on,
// poisoning records of the (single) input split must yield exactly the
// reference output of the input with those lines removed — the skipped
// records vanish, nothing else changes.
func TestOutputInvariantUnderBadRecordSkipping(t *testing.T) {
	const skipSeeds = 10
	for seed := uint64(0); seed < skipSeeds; seed++ {
		cj, p, _ := metaProgram(t, seed)
		plan, err := faults.Parse("poison(task=0,record=1);poison(task=0,record=4)")
		if err != nil {
			t.Fatal(err)
		}
		// One 64 KiB block holds the whole input, so split-relative record
		// indices are global line indices.
		o := ClusterOpts{BlockSize: 64 << 10, Scheduler: mr.GPUFirst, Seed: seed,
			Faults: plan, SkipBadRecords: true}
		stats, out := mustRun(t, &cj, p, o, "skip-mode run")
		if stats.RecordsSkipped != 2 {
			t.Errorf("seed %d: RecordsSkipped = %d, want 2", seed, stats.RecordsSkipped)
		}
		pruned := dropLines(p.Input, 1, 4)
		ref, err := Reference(&cj, pruned)
		if err != nil {
			t.Fatalf("seed %d: pruned reference: %v", seed, err)
		}
		if out != ref {
			t.Fatalf("seed %d: skip-mode output differs from the pruned-input reference\nwant:\n%s\ngot:\n%s\nmap source:\n%s",
				seed, head(ref), head(out), p.MapSrc)
		}
	}
}

// dropLines removes the newline-delimited records at the given indices.
func dropLines(input []byte, drop ...int) []byte {
	dropSet := map[int]bool{}
	for _, d := range drop {
		dropSet[d] = true
	}
	var out []byte
	rec := 0
	for start := 0; start < len(input); rec++ {
		end := start
		for end < len(input) && input[end] != '\n' {
			end++
		}
		if end < len(input) {
			end++
		}
		if !dropSet[rec] {
			out = append(out, input[start:end]...)
		}
		start = end
	}
	return out
}
