package testkit

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/gpurt"
)

// kernelTime is the simulated time spent in GPU kernels proper — the
// stages whose work is data-parallel across SMs. IO stages (input read,
// PCIe copy, output write) are excluded: they do not scale with SM count.
func kernelTime(s gpurt.StageTimes) float64 {
	return s.RecordCount + s.Map + s.Aggregate + s.Sort + s.Combine
}

// TestMoreSMsNeverSlowKernels pins the timing model's basic monotone
// relation: for a data-parallel kernel over a fixed input, adding SMs
// never increases the simulated kernel time. The blocks are
// list-scheduled onto SMs, so makespan is non-increasing in machine
// count for this workload shape.
func TestMoreSMsNeverSlowKernels(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		p := Generate(seed)
		cj, err := Compile(p)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		prev := -1.0
		prevSMs := 0
		for _, sms := range []int{2, 4, 8, 16, 32} {
			cfg := gpu.TeslaK40()
			cfg.SMs = sms
			dev, err := gpu.NewDevice(cfg)
			if err != nil {
				t.Fatalf("seed %d: device with %d SMs: %v", seed, sms, err)
			}
			res, err := gpurt.RunTask(dev, cj.MapC, cj.CombineC, p.Input, gpurt.TaskConfig{
				NumReducers: p.Reducers,
				Opts:        gpurt.AllOptimizations(),
			})
			if err != nil {
				t.Fatalf("seed %d: task with %d SMs: %v", seed, sms, err)
			}
			kt := kernelTime(res.Times)
			if kt <= 0 {
				t.Fatalf("seed %d: %d SMs: no kernel time simulated", seed, sms)
			}
			if prev >= 0 && kt > prev {
				t.Errorf("seed %d: kernel time increased from %g (%d SMs) to %g (%d SMs)",
					seed, prev, prevSMs, kt, sms)
			}
			prev, prevSMs = kt, sms
		}
	}
}
