package testkit

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/faults"
	"repro/internal/mr"
	"repro/internal/obs"
)

// workerCounts is the -workers sweep every determinism property is checked
// against: the serial engine, two parallel shapes, and the host's actual
// core count (deduplicated).
func workerCounts() []int {
	counts := []int{1, 2, 4}
	n := runtime.NumCPU()
	for _, c := range counts {
		if c == n {
			return counts
		}
	}
	return append(counts, n)
}

// runDigest captures every byte-determinism surface of one cluster run:
// the job output, the full JobStats, the Chrome trace dump, and the
// Prometheus metrics dump.
type runDigest struct {
	output  string
	stats   string
	trace   string
	metrics string
}

// digestRun executes one cluster configuration with a private recorder and
// returns its byte-determinism digest.
func digestRun(t *testing.T, cj *mr.CompiledJob, p Program, o ClusterOpts, what string) runDigest {
	t.Helper()
	rec := obs.NewRecorder()
	o.Obs = rec
	stats, err := RunCluster(cj, p.Input, o)
	if err != nil {
		t.Fatalf("seed %d: %s (workers=%d): %v\nmap source:\n%s", p.Seed, what, o.Workers, err, p.MapSrc)
	}
	var trace, metrics bytes.Buffer
	if err := rec.Tracer().WriteChromeTrace(&trace); err != nil {
		t.Fatalf("seed %d: %s: trace dump: %v", p.Seed, what, err)
	}
	if err := rec.Metrics().WriteProm(&metrics); err != nil {
		t.Fatalf("seed %d: %s: metrics dump: %v", p.Seed, what, err)
	}
	return runDigest{
		output:  TextOutput(stats),
		stats:   fmt.Sprintf("%+v", *stats),
		trace:   trace.String(),
		metrics: metrics.String(),
	}
}

// checkDigests compares a parallel run's digest against the serial one,
// surface by surface.
func checkDigests(t *testing.T, seed uint64, what string, workers int, serial, par runDigest) {
	t.Helper()
	surfaces := []struct{ name, want, got string }{
		{"output", serial.output, par.output},
		{"JobStats", serial.stats, par.stats},
		{"trace", serial.trace, par.trace},
		{"metrics", serial.metrics, par.metrics},
	}
	for _, s := range surfaces {
		if s.got != s.want {
			t.Fatalf("seed %d: %s: workers=%d changed the %s\nserial:\n%s\nparallel:\n%s",
				seed, what, workers, s.name, head(s.want), head(s.got))
		}
	}
}

// TestWorkerCountInvariance is the headline determinism-torture property:
// across the full 220-seed generated-program corpus, every byte surface of
// a run — output, JobStats, trace, metrics — is identical for every worker
// count. Both cluster backends are swept, since they parallelize through
// different executor paths (streaming filters vs GPU kernels).
func TestWorkerCountInvariance(t *testing.T) {
	for seed := uint64(0); seed < NumDifferentialSeeds; seed++ {
		p := Generate(seed)
		cj, err := Compile(p)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		// Alternate the scheduler across the corpus (every run still mixes
		// CPU and GPU work under GPUFirst; CPUOnly pins the streaming path).
		sched := mr.GPUFirst
		if seed%4 == 3 {
			sched = mr.CPUOnly
		}
		base := ClusterOpts{Scheduler: sched, Seed: seed}
		serial := digestRun(t, cj, p, base, "workers sweep")
		for _, w := range workerCounts()[1:] {
			o := base
			o.Workers = w
			checkDigests(t, seed, fmt.Sprintf("scheduler %v", sched), w,
				serial, digestRun(t, cj, p, o, "workers sweep"))
		}
	}
}

// TestWorkerInvarianceUnderRecoveringFaults crosses the worker sweep with
// every recovering fault-plan shape: parallel execution must not change a
// single byte of a faulted run either. The teeth check guarantees the
// crossed runs actually exercised recovery machinery rather than sweeping
// no-op plans.
func TestWorkerInvarianceUnderRecoveringFaults(t *testing.T) {
	const faultSeeds = 6
	recoveries := 0
	for seed := uint64(0); seed < faultSeeds; seed++ {
		cj, p, _ := metaProgram(t, seed)
		clean, _ := mustRun(t, &cj, p, ClusterOpts{Scheduler: mr.GPUFirst, Seed: seed}, "clean run")
		mid := clean.MapPhaseEnd / 2
		specs := []struct{ name, spec string }{
			{"crash-permanent", fmt.Sprintf("crash(node=1,at=%g)", mid)},
			{"crash-restart", fmt.Sprintf("crash(node=1,at=%g,restart=%g)", mid, clean.Makespan)},
			{"hbloss", fmt.Sprintf("hbloss(node=0,at=%g,for=%g)", mid, clean.Makespan)},
			{"gpu-retire", fmt.Sprintf("retire(node=2,at=%g)", mid)},
			{"straggler", fmt.Sprintf("slow(node=1,at=0,for=%g,factor=4)", clean.Makespan*2)},
			{"taskfail-gpu", "taskfail(task=0,attempt=0,dev=gpu)"},
			{"gpu-rate", "gpurate=0.3;seed=9"},
		}
		for _, tc := range specs {
			plan, err := faults.Parse(tc.spec)
			if err != nil {
				t.Fatalf("seed %d: plan %s: %v", seed, tc.name, err)
			}
			base := ClusterOpts{Scheduler: mr.GPUFirst, Faults: plan, Seed: seed}
			serial := digestRun(t, &cj, p, base, "faulted "+tc.name)
			for _, w := range workerCounts()[1:] {
				o := base
				o.Workers = w
				checkDigests(t, seed, "fault plan "+tc.name, w,
					serial, digestRun(t, &cj, p, o, "faulted "+tc.name))
			}
			stats, _ := mustRun(t, &cj, p, base, "teeth run "+tc.name)
			recoveries += stats.NodesLost + stats.MapsReexecuted + stats.GPUFallbacks +
				stats.Retries + stats.FailedAttempts + stats.LostAttempts
		}
	}
	if recoveries == 0 {
		t.Error("worker-invariance fault crossing never exercised any recovery path")
	}
}

// TestWorkerInvarianceUnderCorruptionFaults crosses the worker sweep with
// the data-integrity plans from the corruption battery (plus bad-record
// skipping), the paths that invalidate and re-execute committed map work —
// exactly where a stale prefetched result would leak if the engine ever
// consumed one.
func TestWorkerInvarianceUnderCorruptionFaults(t *testing.T) {
	const faultSeeds = 6
	integrity := 0
	for seed := uint64(0); seed < faultSeeds; seed++ {
		cj, p, _ := metaProgram(t, seed)
		specs := []struct {
			name, spec string
			skip       bool
		}{
			{"corrupt-whole-output", "corrupt(task=0,attempt=0)", false},
			{"corrupt-one-partition", "corrupt(task=1,attempt=0,part=0)", false},
			{"fetchfail-transient", "fetchfail(task=0,part=0,times=2)", false},
			{"fetchfail-until-lost", "fetchfail(task=0,part=0,times=9)", false},
			{"corrupt-rate", "corruptrate=0.05;seed=5", false},
			{"skip-bad-records", "poison(task=0,record=1);poison(task=0,record=4)", true},
		}
		for _, tc := range specs {
			plan, err := faults.Parse(tc.spec)
			if err != nil {
				t.Fatalf("seed %d: plan %s: %v", seed, tc.name, err)
			}
			base := ClusterOpts{Scheduler: mr.GPUFirst, Faults: plan, Seed: seed,
				SkipBadRecords: tc.skip}
			if tc.skip {
				base.BlockSize = 64 << 10
			}
			serial := digestRun(t, &cj, p, base, "corrupted "+tc.name)
			for _, w := range workerCounts()[1:] {
				o := base
				o.Workers = w
				checkDigests(t, seed, "corruption plan "+tc.name, w,
					serial, digestRun(t, &cj, p, o, "corrupted "+tc.name))
			}
			stats, _ := mustRun(t, &cj, p, base, "teeth run "+tc.name)
			integrity += stats.CorruptPartitions + stats.FetchFailures +
				stats.MapOutputsLost + stats.Refetches + stats.RecordsSkipped
		}
	}
	if integrity == 0 {
		t.Error("worker-invariance corruption crossing never exercised the integrity machinery")
	}
}
