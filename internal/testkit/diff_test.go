package testkit

import (
	"testing"
)

// NumDifferentialSeeds is the size of the checked generated-program corpus:
// every seed in [0, N) must compile, lint clean, and agree byte-for-byte
// across the sequential, streaming, and GPU backends.
const NumDifferentialSeeds = 220

// TestGeneratedProgramsAgreeAcrossBackends is the tentpole differential
// suite: ≥200 generated programs, three backends, byte-identical output.
// A failing seed reproduces standalone with
// `go run ./cmd/hdgen -seed N -check`.
func TestGeneratedProgramsAgreeAcrossBackends(t *testing.T) {
	emitted := 0
	for seed := uint64(0); seed < NumDifferentialSeeds; seed++ {
		p := Generate(seed)
		cj, err := Compile(p)
		if err != nil {
			t.Fatalf("seed %d: compile failed: %v\nmap source:\n%s\ncombine source:\n%s",
				seed, err, p.MapSrc, p.CombineSrc)
		}
		if bad := Lint(p); len(bad) > 0 {
			t.Fatalf("seed %d: %d lint findings (first: %s)\nmap source:\n%s",
				seed, len(bad), bad[0].Message, p.MapSrc)
		}
		res, err := RunDifferentialCompiled(cj, p)
		if err != nil {
			t.Fatalf("seed %d: %v\nmap source:\n%s", seed, err, p.MapSrc)
		}
		if !res.Agree() {
			t.Fatalf("seed %d: backends disagree\nsequential:\n%s\nstreaming:\n%s\ngpu:\n%s\nmap source:\n%s\ncombine source:\n%s",
				seed, head(res.Sequential), head(res.Streaming), head(res.GPU), p.MapSrc, p.CombineSrc)
		}
		if res.Sequential != "" {
			emitted++
		}
	}
	// The corpus must be overwhelmingly non-trivial: empty-output programs
	// (a conditional emission that filters everything) are allowed but rare.
	if emitted < NumDifferentialSeeds*9/10 {
		t.Fatalf("only %d/%d generated programs produced output", emitted, NumDifferentialSeeds)
	}
}

// head truncates long outputs in failure messages.
func head(s string) string {
	const max = 1200
	if len(s) > max {
		return s[:max] + "…"
	}
	return s
}

// TestGenerateIsDeterministic pins that a seed fully determines the
// program and its input (the reproduce-a-failing-seed contract).
func TestGenerateIsDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.MapSrc != b.MapSrc || a.CombineSrc != b.CombineSrc ||
			a.ReduceSrc != b.ReduceSrc || a.Reducers != b.Reducers ||
			string(a.Input) != string(b.Input) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// TestGeneratorCoversShapes asserts the corpus exercises every program
// dimension: both key kinds, both value kinds, map-only and reduce jobs,
// jobs with and without combiners.
func TestGeneratorCoversShapes(t *testing.T) {
	var wordKeys, doubleVals, mapOnly, combiners, reduces int
	for seed := uint64(0); seed < NumDifferentialSeeds; seed++ {
		p := Generate(seed)
		if p.Key == KeyWord {
			wordKeys++
		}
		if p.Val == ValDouble {
			doubleVals++
		}
		if p.MapOnly {
			mapOnly++
		}
		if p.CombineSrc != "" {
			combiners++
		}
		if p.Reducers > 0 {
			reduces++
		}
	}
	for name, n := range map[string]int{
		"word keys": wordKeys, "double values": doubleVals,
		"map-only jobs": mapOnly, "combiners": combiners, "reduce jobs": reduces,
	} {
		if n < 10 {
			t.Errorf("corpus has only %d programs with %s", n, name)
		}
	}
}
