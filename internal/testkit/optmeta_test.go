package testkit

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/mr"
)

// TestOptimizerPreservesReferenceOutput is the optimizer's metamorphic
// contract over the full differential corpus: for every generated seed, the
// sequential reference output with the SSA optimizer enabled is
// byte-identical to -O0. It also checks the optimizer has teeth — across
// the corpus it must actually rewrite a meaningful fraction of programs.
func TestOptimizerPreservesReferenceOutput(t *testing.T) {
	changed := 0
	for seed := uint64(0); seed < NumDifferentialSeeds; seed++ {
		p := Generate(seed)
		plain, err := CompileOpt(p, true)
		if err != nil {
			t.Fatalf("seed %d: -O0 compile: %v", seed, err)
		}
		opt, err := CompileOpt(p, false)
		if err != nil {
			t.Fatalf("seed %d: optimized compile: %v", seed, err)
		}
		refPlain, err := Reference(plain, p.Input)
		if err != nil {
			t.Fatalf("seed %d: -O0 reference: %v", seed, err)
		}
		refOpt, err := Reference(opt, p.Input)
		if err != nil {
			t.Fatalf("seed %d: optimized reference: %v", seed, err)
		}
		if refPlain != refOpt {
			t.Fatalf("seed %d: optimization changed the reference output\n-O0:\n%s\nopt:\n%s\nmap source:\n%s",
				seed, head(refPlain), head(refOpt), p.MapSrc)
		}
		if opt.MapC.HostOpt.Changed() || opt.MapC.KernelOpt.Changed() {
			changed++
		}
	}
	if changed < NumDifferentialSeeds/10 {
		t.Fatalf("optimizer rewrote only %d/%d generated programs; the metamorphic suite has no teeth",
			changed, NumDifferentialSeeds)
	}
	t.Logf("optimizer rewrote %d/%d generated programs", changed, NumDifferentialSeeds)
}

// TestOptimizerPreservesClusterOutput runs the full streaming and GPU
// cluster paths opt-on vs opt-off on the metamorphic subset: every backend
// must be byte-identical in both modes.
func TestOptimizerPreservesClusterOutput(t *testing.T) {
	for seed := uint64(0); seed < NumMetamorphicSeeds; seed++ {
		p := Generate(seed)
		plain, err := CompileOpt(p, true)
		if err != nil {
			t.Fatalf("seed %d: -O0 compile: %v", seed, err)
		}
		opt, err := CompileOpt(p, false)
		if err != nil {
			t.Fatalf("seed %d: optimized compile: %v", seed, err)
		}
		for _, sched := range []mr.SchedulerKind{mr.CPUOnly, mr.GPUFirst} {
			o := ClusterOpts{Scheduler: sched, Seed: seed}
			_, outPlain := mustRun(t, plain, p, o, fmt.Sprintf("-O0 scheduler %v", sched))
			_, outOpt := mustRun(t, opt, p, o, fmt.Sprintf("optimized scheduler %v", sched))
			if outPlain != outOpt {
				t.Fatalf("seed %d: scheduler %v: optimization changed the cluster output\n-O0:\n%s\nopt:\n%s\nmap source:\n%s",
					seed, sched, head(outPlain), head(outOpt), p.MapSrc)
			}
		}
	}
}

// TestOptimizerPreservesFaultRecovery re-runs representative recovering
// fault plans opt-on vs opt-off: recovery re-executes tasks, so every
// re-executed attempt runs the optimized AST too, and the final output must
// not depend on the optimizer either way.
func TestOptimizerPreservesFaultRecovery(t *testing.T) {
	const faultSeeds = 6
	for seed := uint64(0); seed < faultSeeds; seed++ {
		p := Generate(seed)
		plain, err := CompileOpt(p, true)
		if err != nil {
			t.Fatalf("seed %d: -O0 compile: %v", seed, err)
		}
		opt, err := CompileOpt(p, false)
		if err != nil {
			t.Fatalf("seed %d: optimized compile: %v", seed, err)
		}
		clean, _ := mustRun(t, opt, p, ClusterOpts{Scheduler: mr.GPUFirst, Seed: seed}, "clean run")
		mid := clean.MapPhaseEnd / 2
		specs := []struct{ name, spec string }{
			{"crash-restart", fmt.Sprintf("crash(node=1,at=%g,restart=%g)", mid, clean.Makespan)},
			{"taskfail-gpu", "taskfail(task=0,attempt=0,dev=gpu)"},
			{"gpu-rate", "gpurate=0.3;seed=9"},
		}
		for _, tc := range specs {
			plan, err := faults.Parse(tc.spec)
			if err != nil {
				t.Fatalf("seed %d: plan %s: %v", seed, tc.name, err)
			}
			o := ClusterOpts{Scheduler: mr.GPUFirst, Faults: plan, Seed: seed}
			_, outPlain := mustRun(t, plain, p, o, "-O0 faulted run "+tc.name)
			_, outOpt := mustRun(t, opt, p, o, "optimized faulted run "+tc.name)
			if outPlain != outOpt {
				t.Fatalf("seed %d: fault plan %s: optimization changed the output\n-O0:\n%s\nopt:\n%s",
					seed, tc.name, head(outPlain), head(outOpt))
			}
		}
	}
}
