package testkit

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/compiler"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/gpurt"
	"repro/internal/hdfs"
	"repro/internal/kv"
	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/streaming"
)

// Compile translates a generated program into a CompiledJob (both the CPU
// streaming filters and the GPU kernels — the single-source property).
func Compile(p Program) (*mr.CompiledJob, error) { return CompileOpt(p, false) }

// CompileOpt is Compile with explicit control over the SSA optimizer
// (disableOpt=true is -O0), for the opt-on/off metamorphic suite.
func CompileOpt(p Program, disableOpt bool) (*mr.CompiledJob, error) {
	return CompileVariant(p, disableOpt, false)
}

// CompileVariant is Compile with explicit control over both execution
// knobs: disableOpt=true is -O0 (skip the SSA optimizer), disableVM=true
// pins every interpreted stage to the AST tree-walker instead of the
// default register-bytecode VM (-novm).
func CompileVariant(p Program, disableOpt, disableVM bool) (*mr.CompiledJob, error) {
	return mr.CompileJob(mr.JobProgram{
		Name:        p.Name,
		MapSrc:      p.MapSrc,
		CombineSrc:  p.CombineSrc,
		ReduceSrc:   p.ReduceSrc,
		NumReducers: p.Reducers,
		DisableOpt:  disableOpt,
		DisableVM:   disableVM,
	})
}

// Lint runs the full hdlint pass suite over every stage of the program and
// returns the diagnostics at warning severity or above. Generated programs
// must come back empty — the generator's output is lint-clean by
// construction.
func Lint(p Program) []analysis.Diagnostic {
	var bad []analysis.Diagnostic
	stages := []struct{ name, src string }{
		{"map", p.MapSrc}, {"combine", p.CombineSrc}, {"reduce", p.ReduceSrc},
	}
	for _, st := range stages {
		if st.src == "" {
			continue
		}
		for _, d := range compiler.Lint(p.Name+"-"+st.name, st.src) {
			if d.Severity >= analysis.SevWarning {
				bad = append(bad, d)
			}
		}
	}
	return bad
}

// Reference executes the program with the sequential CPU interpreter —
// the plain C semantics the paper's §4 equivalence claim is anchored to:
// one map pass over the whole input, then hash-partition, sort, and reduce
// (no splits, no combiner, no cluster). Its output is what every cluster
// backend must reproduce byte for byte.
func Reference(cj *mr.CompiledJob, input []byte) (string, error) {
	out, _, err := cj.MapF.Run(input)
	if err != nil {
		return "", fmt.Errorf("testkit: reference map: %w", err)
	}
	pairs, err := streaming.ParseKVLines(out, cj.Schema)
	if err != nil {
		return "", fmt.Errorf("testkit: reference map output: %w", err)
	}
	if cj.Program.NumReducers <= 0 {
		// Map-only jobs are canonicalized by key, as the engine writes
		// unordered per-task output files back to HDFS.
		sort.SliceStable(pairs, func(i, j int) bool {
			return kv.Compare(pairs[i].Key, pairs[j].Key) < 0
		})
		return renderPairs(pairs), nil
	}
	parts := make([][]kv.Pair, cj.Program.NumReducers)
	for _, p := range pairs {
		i := kv.Partition(p.Key, cj.Program.NumReducers)
		parts[i] = append(parts[i], p)
	}
	var final []kv.Pair
	for _, part := range parts {
		kv.SortPairs(part)
		outPairs, _, err := streaming.RunReduce(cj.ReduceF, cj.Schema, [][]kv.Pair{part}, streaming.XeonE52680())
		if err != nil {
			return "", fmt.Errorf("testkit: reference reduce: %w", err)
		}
		final = append(final, outPairs...)
	}
	return renderPairs(final), nil
}

// ClusterOpts parameterizes one simulated cluster run of a generated
// program. The zero value is completed by fillDefaults.
type ClusterOpts struct {
	// Slaves is the node count (default 3).
	Slaves int
	// BlockSize is the HDFS block size driving the input-split boundaries
	// (default 256 bytes — several splits even for small inputs).
	BlockSize int64
	// Scheduler selects the path: mr.CPUOnly is the Hadoop Streaming
	// backend, mr.GPUFirst / mr.TailSched the GPU kernel backend.
	Scheduler mr.SchedulerKind
	// Faults optionally injects a fault plan (metamorphic runs).
	Faults *faults.Plan
	// Seed perturbs HDFS placement and engine scheduling.
	Seed uint64
	// SkipBadRecords / MaxSkippedRecords expose the engine's bad-record
	// skipping policy (poisoned-input metamorphic runs).
	SkipBadRecords    bool
	MaxSkippedRecords int
	// Prof optionally attaches a wall-clock cost profiler to the run (the
	// profiler-determinism tests drive this).
	Prof *perf.Profiler
	// Obs optionally records the run's trace spans and metrics (the
	// worker-count invariance suite compares the dumped bytes).
	Obs *obs.Recorder
	// Workers bounds host-side parallelism for the run's task work; 0 or 1
	// is the serial engine, and every value must produce byte-identical
	// results (the determinism torture suite enforces this).
	Workers int
}

func (o *ClusterOpts) fillDefaults() {
	if o.Slaves == 0 {
		o.Slaves = 3
	}
	if o.BlockSize == 0 {
		o.BlockSize = 256
	}
}

// RunCluster executes the compiled job on a simulated cluster — the same
// wiring as core.Run, opened up so tests can vary split boundaries, slave
// counts, schedulers, and fault plans independently.
func RunCluster(cj *mr.CompiledJob, input []byte, o ClusterOpts) (*mr.JobStats, error) {
	o.fillDefaults()
	setup := cluster.Cluster1().WithSlaves(o.Slaves)
	setup.HDFS.BlockSize = o.BlockSize
	node := setup.Node
	node.MapSlots = 4
	if o.Scheduler == mr.CPUOnly {
		node.GPUs = 0
	}
	fs, err := hdfs.New(setup.HDFS, o.Seed+1)
	if err != nil {
		return nil, err
	}
	const inputPath = "/job/input"
	if err := fs.Write(inputPath, input); err != nil {
		return nil, err
	}
	dev, err := gpu.NewDevice(setup.Device)
	if err != nil {
		return nil, err
	}
	exec, err := mr.NewFunctionalExecutor(cj, fs, inputPath, mr.HardwareModel{
		CPU:          setup.CPU,
		Device:       dev,
		Opts:         gpurt.AllOptimizations(),
		DiskWriteGBs: setup.DiskWriteGBs,
		HDFSWriteGBs: setup.HDFSWriteGBs,
		Prof:         o.Prof,
	})
	if err != nil {
		return nil, err
	}
	// The generated jobs finish in well under a virtual millisecond, so the
	// heartbeat (and its 10x expiry window, the failure-detection latency)
	// must be far smaller still for fault plans to be detected in-flight.
	return mr.RunJob(mr.ClusterConfig{
		Name:              cj.Program.Name,
		Slaves:            o.Slaves,
		Node:              node,
		Scheduler:         o.Scheduler,
		HeartbeatSec:      1e-6,
		Faults:            o.Faults,
		Seed:              o.Seed + 2,
		SkipBadRecords:    o.SkipBadRecords,
		MaxSkippedRecords: o.MaxSkippedRecords,
		Obs:               o.Obs,
		Workers:           o.Workers,
	}, exec)
}

// TextOutput renders a finished job's output as the tab-separated lines
// Hadoop writes back to HDFS (core.Result.TextOutput's format).
func TextOutput(stats *mr.JobStats) string { return renderPairs(stats.Output) }

func renderPairs(pairs []kv.Pair) string {
	var b strings.Builder
	for _, p := range pairs {
		b.WriteString(p.Text())
		b.WriteByte('\n')
	}
	return b.String()
}

// DiffResult is one program's output under every backend.
type DiffResult struct {
	Sequential string // CPU interpreter reference
	Streaming  string // Hadoop Streaming CPU cluster path
	GPU        string // translated GPU kernel path
}

// Agree reports whether all three backends produced byte-identical output.
func (d DiffResult) Agree() bool {
	return d.Sequential == d.Streaming && d.Streaming == d.GPU
}

// RunDifferential compiles the program once and executes it through all
// three backends.
func RunDifferential(p Program) (DiffResult, error) {
	cj, err := Compile(p)
	if err != nil {
		return DiffResult{}, fmt.Errorf("testkit: seed %d: compile: %w", p.Seed, err)
	}
	return RunDifferentialCompiled(cj, p)
}

// RunDifferentialCompiled is RunDifferential for an already-compiled job.
func RunDifferentialCompiled(cj *mr.CompiledJob, p Program) (DiffResult, error) {
	var res DiffResult
	var err error
	if res.Sequential, err = Reference(cj, p.Input); err != nil {
		return res, fmt.Errorf("testkit: seed %d: %w", p.Seed, err)
	}
	cpu, err := RunCluster(cj, p.Input, ClusterOpts{Scheduler: mr.CPUOnly, Seed: p.Seed})
	if err != nil {
		return res, fmt.Errorf("testkit: seed %d: streaming backend: %w", p.Seed, err)
	}
	res.Streaming = TextOutput(cpu)
	gpuRun, err := RunCluster(cj, p.Input, ClusterOpts{Scheduler: mr.GPUFirst, Seed: p.Seed})
	if err != nil {
		return res, fmt.Errorf("testkit: seed %d: GPU backend: %w", p.Seed, err)
	}
	res.GPU = TextOutput(gpuRun)
	return res, nil
}
