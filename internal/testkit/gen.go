// Package testkit is the differential & metamorphic conformance harness:
// a seeded random generator of directive-annotated MiniC MapReduce
// programs, plus runners that execute each program through every backend
// the system has — the sequential CPU interpreter (the reference
// semantics), the Hadoop Streaming CPU cluster path, and the translated
// GPU kernel path — and assert byte-identical job output.
//
// The paper's central claim (§4–§5) is that the translated GPU program is
// semantically equivalent to the sequential C program; the eight PUMA
// benchmarks exercise that claim at eight points. The generator turns it
// into a property checked over arbitrarily many machine-made programs:
// every program it emits is lint-clean (hdlint), legal for the GPU
// translator, and constructed so its job output is deterministic across
// record placement — aggregations are commutative, float values are
// integer-valued (exactly representable through the CPU path's %f text
// round-trip), and map-only keys are unique per record.
//
// Reproducing a failure is one seed: `go run ./cmd/hdgen -seed N` prints
// the exact program and input, and `-check` re-runs the differential
// comparison for it.
package testkit

import (
	"fmt"
	"strings"
)

// rng is a splitmix64 stream: tiny, seedable, and stable across Go
// versions (math/rand's stream is not part of the compatibility promise).
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed ^ 0x6A09E667F3BCC909} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangen returns a uniform int in [lo, hi].
func (r *rng) rangen(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// chance returns true with probability num/den.
func (r *rng) chance(num, den int) bool { return r.intn(den) < num }

// KeyKind / ValKind describe the wire types a generated program emits.
type KeyKind int

// Key kinds.
const (
	KeyInt KeyKind = iota
	KeyWord
)

// ValKind enumerates value types.
type ValKind int

// Value kinds. ValDouble values are always integer-valued so that sums
// are exact in any order and the CPU path's printf("%f") text round-trip
// is lossless — see Program.FloatValued for the one divergence this
// sidesteps.
const (
	ValInt ValKind = iota
	ValDouble
)

// AggOp is the per-key aggregation a generated reducer (and combiner)
// applies. Both are commutative and associative, so partial combining on
// GPU warp chunks and reduce-side merge order cannot change the result.
type AggOp int

// Aggregation ops.
const (
	AggSum AggOp = iota
	AggMax
)

// Program is one generated MapReduce job: sources, reducer count, and a
// matching synthetic input.
type Program struct {
	Seed       uint64
	Name       string
	MapSrc     string
	CombineSrc string
	ReduceSrc  string
	Reducers   int
	Input      []byte

	Key KeyKind
	Val ValKind
	// MapOnly jobs emit unique keys per record (the engine canonicalizes
	// map-only output by key only, so duplicate keys with distinct values
	// would make output order placement-dependent).
	MapOnly bool
}

// Generate builds the deterministic program for a seed. Two calls with
// the same seed return identical programs and inputs.
func Generate(seed uint64) Program {
	r := newRNG(seed)
	p := Program{Seed: seed, Name: fmt.Sprintf("gen-%d", seed)}

	// Job shape.
	switch r.intn(4) {
	case 0:
		p.MapOnly = true
		p.Reducers = 0
	default:
		p.Reducers = r.rangen(1, 4)
	}
	if p.MapOnly {
		p.Key = KeyInt // unique record ids
	} else if r.chance(1, 3) {
		p.Key = KeyWord
	}
	if r.chance(1, 3) {
		p.Val = ValDouble
	}
	op := AggSum
	if !p.MapOnly && r.chance(1, 3) {
		op = AggMax
	}

	if p.Key == KeyWord {
		p.MapSrc = genWordMapper(r, p.Val)
		p.Input = wordInput(r, r.rangen(60, 120))
	} else {
		p.MapSrc = genIntMapper(r, &p)
		p.Input = intInput(r, r.rangen(60, 140))
	}
	if !p.MapOnly {
		// Combiners only make sense for ops the reducer can re-apply to
		// partial aggregates; sum and max both qualify.
		if r.chance(1, 2) {
			p.CombineSrc = combineSrc(p.Key, p.Val, op, true)
		}
		p.ReduceSrc = combineSrc(p.Key, p.Val, op, false)
	}
	return p
}

// --- integer-field mappers -----------------------------------------------

// intExpr builds a random arithmetic expression over the given operand
// names and small constants. Division and modulus only ever use non-zero
// constant divisors, so generated programs cannot trap.
func intExpr(r *rng, depth int, operands []string) string {
	if depth <= 0 || r.chance(1, 3) {
		if r.chance(1, 4) {
			return fmt.Sprintf("%d", r.rangen(1, 9))
		}
		return operands[r.intn(len(operands))]
	}
	a := intExpr(r, depth-1, operands)
	b := intExpr(r, depth-1, operands)
	switch r.intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s %% %d)", a, r.rangen(2, 31))
	case 4:
		return fmt.Sprintf("(%s / %d)", a, r.rangen(2, 9))
	default:
		return fmt.Sprintf("(%s > %s ? %s : %s)", a, b, a, b)
	}
}

// genIntMapper emits a mapper that parses up to three integer fields per
// record (the Histmovies idiom) and emits int or double values under one
// of several emission shapes.
func genIntMapper(r *rng, p *Program) string {
	valDouble := p.Val == ValDouble
	operands := []string{"f0", "f1", "f2"}

	// Optional sharedRO scalar and texture table, both folded into the
	// value expression so they are genuinely read.
	var decls, pre, clauses []string
	exprOps := operands
	if r.chance(1, 2) {
		decls = append(decls, fmt.Sprintf("	int M = %d;", r.rangen(3, 17)))
		clauses = append(clauses, "sharedRO(M)")
		exprOps = append(append([]string{}, exprOps...), "M")
	}
	useTexture := r.chance(1, 3)
	if useTexture {
		decls = append(decls, "	int tbl[16];")
		pre = append(pre,
			"	for (int ti = 0; ti < 16; ti++) tbl[ti] = (ti * 5 + 3) % 50;")
		clauses = append(clauses, "texture(tbl)")
	}

	// Chained temporaries: each t_i consumes t_{i-1}, and the final value
	// expression consumes the last one, so no store is ever dead.
	var temps []string
	tn := r.intn(3)
	last := ""
	for i := 0; i < tn; i++ {
		ops := exprOps
		if last != "" {
			ops = append([]string{last}, exprOps...)
		}
		e := intExpr(r, 2, ops)
		if last != "" && !strings.Contains(e, last) {
			e = fmt.Sprintf("(%s + %s)", last, e)
		}
		temps = append(temps, fmt.Sprintf("		int t%d = %s;", i, e))
		last = fmt.Sprintf("t%d", i)
	}
	valOps := exprOps
	if last != "" {
		valOps = append([]string{last}, exprOps...)
	}
	valExpr := intExpr(r, 2, valOps)
	if last != "" && !strings.Contains(valExpr, last) {
		valExpr = fmt.Sprintf("(%s + %s)", last, valExpr)
	}
	if useTexture {
		valExpr = fmt.Sprintf("(%s + tbl[f1 %% 16])", valExpr)
	}
	// Every parsed field and the sharedRO scalar must be read somewhere or
	// the dataflow pass flags dead stores / unused clause variables; fold
	// them all into the value expression deterministically.
	valExpr = fmt.Sprintf("(%s + (f0 %% 5) - (f1 %% 7) + (f2 %% 9))", valExpr)
	if len(clauses) > 0 && clauses[0] == "sharedRO(M)" {
		valExpr = fmt.Sprintf("(%s + M)", valExpr)
	}

	valDecl := "int val"
	valFmt := "%d"
	valCast := ""
	if valDouble {
		valDecl = "double val"
		valFmt = "%f"
		// Integer-valued doubles: exact under any summation order and
		// under the CPU path's 6-decimal %f round-trip.
		valCast = "(double) "
	}

	var body, keySetup string
	kvpairs := 1
	emitStmt := func(indent string) string {
		return fmt.Sprintf("%sprintf(\"%%d\\t%s\\n\", key, val);", indent, valFmt)
	}
	keyExpr := intExpr(r, 1, exprOps)

	switch shape := r.intn(4); {
	case p.MapOnly:
		// Unique key per record: the record id (first field) — or id*K+i
		// for multi-emission — keeps map-only canonical output stable.
		if r.chance(1, 2) {
			keySetup = "		key = f0;\n"
			body = fmt.Sprintf("		val = %s(%s);\n%s\n", valCast, valExpr, emitStmt("		"))
		} else {
			kvpairs = r.rangen(2, 3)
			keySetup = ""
			body = fmt.Sprintf(
				"		for (int e = 0; e < %d; e++) {\n			key = f0 * %d + e;\n			val = %s(%s + e);\n	%s\n		}\n",
				kvpairs, kvpairs, valCast, valExpr, emitStmt("		"))
		}
	case shape == 0: // one emission per record, folded key
		keySetup = foldKey(keyExpr)
		body = fmt.Sprintf("		val = %s(%s);\n%s\n", valCast, valExpr, emitStmt("		"))
	case shape == 1: // conditional emission
		keySetup = foldKey(keyExpr)
		body = fmt.Sprintf(
			"		val = %s(%s);\n		if (f1 %% %d != 0) {\n	%s\n		}\n",
			valCast, valExpr, r.rangen(2, 5), emitStmt("		"))
	case shape == 2: // inner emission loop
		kvpairs = r.rangen(2, 4)
		keySetup = ""
		body = fmt.Sprintf(
			"		for (int e = 0; e < %d; e++) {\n%s			val = %s(%s + e);\n	%s\n		}\n",
			kvpairs, strings.ReplaceAll(foldKeyWith(keyExpr, "e"), "		key", "			key"), valCast, valExpr, emitStmt("		"))
	default: // local histogram array, then a drain loop
		kvpairs = 4
		keySetup = ""
		// The histogram increment is the full value expression: it is what
		// keeps the chained temporaries and clause variables live here.
		body = fmt.Sprintf(`		int acc[4];
		for (int a = 0; a < 4; a++) acc[a] = 0;
		acc[f1 %% 4] = acc[f1 %% 4] + (%s);
		acc[f2 %% 4] = acc[f2 %% 4] + 1;
		for (int a = 0; a < 4; a++) {
			key = a + (f0 %% 3) * 4;
			val = %s(acc[a]);
	%s
		}
`, valExpr, valCast, emitStmt("		"))
	}

	clauseStr := ""
	if len(clauses) > 0 {
		clauseStr = " " + strings.Join(clauses, " ")
	}
	return fmt.Sprintf(`int main() {
	int key, read;
	%s;
	char *line;
	size_t nbytes = 10000;
%s
	line = (char*) malloc(nbytes * sizeof(char));
%s
	#pragma mapreduce mapper key(key) value(val) kvpairs(%d)%s blocks(8) threads(32)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		int f0 = 0, f1 = 0, f2 = 0;
		int i = 0, nf = 0;
		while (i < read) {
			if (line[i] >= '0' && line[i] <= '9') {
				int fv = atoi(line + i);
				if (nf == 0) f0 = fv;
				if (nf == 1) f1 = fv;
				if (nf == 2) f2 = fv;
				nf++;
				while (i < read && line[i] >= '0' && line[i] <= '9') i++;
			} else {
				i++;
			}
		}
%s%s%s	}
	free(line);
	return 0;
}`, valDecl, strings.Join(decls, "\n"), strings.Join(pre, "\n"),
		kvpairs, clauseStr, strings.Join(temps, "\n")+"\n", keySetup, body)
}

// foldKey folds an arbitrary int expression into the non-negative range
// [0, 64) so combiner/reducer sentinel values (-1) stay unambiguous.
func foldKey(expr string) string {
	return fmt.Sprintf("		key = (%s) %% 64;\n		if (key < 0) key = -key;\n", expr)
}

// foldKeyWith additionally mixes a loop counter into the key.
func foldKeyWith(expr, counter string) string {
	return fmt.Sprintf("		key = (%s + %s * 7) %% 64;\n		if (key < 0) key = -key;\n", expr, counter)
}

// genWordMapper emits a wordcount-flavoured mapper: tokenize each record
// and emit one pair per word, with a value derived from the word and
// record — identical for identical (word, record) regardless of which
// split or thread sees it.
func genWordMapper(r *rng, val ValKind) string {
	valDecl, valFmt, valCast := "int val", "%d", ""
	if val == ValDouble {
		valDecl, valFmt, valCast = "double val", "%f", "(double) "
	}
	valExpr := [...]string{
		"1",
		"wlen",
		"(wlen + read % 5)",
		"(wlen * 2 + 1)",
	}[r.intn(4)]
	// Declare wlen only when the value expression reads it; an unused
	// declaration is an HD202 dead store.
	wlenDecl := ""
	if strings.Contains(valExpr, "wlen") {
		wlenDecl = "int wlen = strlen(word);\n\t\t\t"
	}
	return fmt.Sprintf(`int getWord(char *line, int offset, char *word, int read, int maxw) {
	int i = offset, j = 0;
	while (i < read && (line[i] == ' ' || line[i] == '\n' || line[i] == '\t')) i++;
	while (i < read && line[i] != ' ' && line[i] != '\n' && line[i] != '\t' && j < maxw - 1) {
		word[j] = line[i];
		i++; j++;
	}
	if (j == 0) return -1;
	word[j] = '\0';
	return i - offset;
}
int main() {
	char word[24], *line;
	size_t nbytes = 10000;
	int read, linePtr, offset;
	%s;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(word) value(val) keylength(24) kvpairs(16) blocks(8) threads(32)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		offset = 0;
		while ((linePtr = getWord(line, offset, word, read, 24)) != -1) {
			%sval = %s(%s);
			printf("%%s\t%s\n", word, val);
			offset += linePtr;
		}
	}
	free(line);
	return 0;
}`, valDecl, wlenDecl, valCast, valExpr, valFmt)
}

// --- combiner / reducer templates ----------------------------------------

// combineSrc renders the aggregation filter for a key/value/op combo. With
// pragma=true it carries the combiner directive (the GPU path), otherwise
// it is the plain streaming reducer with identical logic — the benchmarks'
// combiner/reducer twinning.
func combineSrc(key KeyKind, val ValKind, op AggOp, pragma bool) string {
	scanKey, printKey, keyDecl, keyInit, keyGuard, keyAssign := "%d", "%d",
		"int prevKey, key", "prevKey = -1;", "prevKey != -1", "prevKey = key;"
	cmpKey := "key == prevKey"
	keyClauses := "key(prevKey) keyin(key)"
	if key == KeyWord {
		scanKey, printKey = "%s", "%s"
		keyDecl = "char key[24], prevKey[24]"
		keyInit = "prevKey[0] = '\\0';"
		keyGuard = "prevKey[0] != '\\0'"
		keyAssign = "strcpy(prevKey, key);"
		cmpKey = "strcmp(key, prevKey) == 0"
		keyClauses = "key(prevKey) keyin(key) keylength(24)"
	}
	scanVal, printVal, valDecl := "%d", "%d", "int acc, val"
	if val == ValDouble {
		scanVal, printVal, valDecl = "%lf", "%f", "double acc, val"
	}
	accumulate := "acc += val;"
	if op == AggMax {
		// The ternary form reads acc on the RHS, which is what the HD109
		// accumulation check requires of a combiner value variable.
		accumulate = "acc = (val > acc) ? val : acc;"
	}
	scanArgs := "&key, &val"
	if key == KeyWord {
		scanArgs = "key, &val"
	}
	directive := ""
	openBrace, closeBrace, indent := "", "", "	"
	if pragma {
		directive = fmt.Sprintf(
			"	#pragma mapreduce combiner %s value(acc) valuein(val) firstprivate(prevKey, acc) blocks(8) threads(32)\n",
			keyClauses)
		openBrace, closeBrace, indent = "	{\n", "	}\n", "		"
	}
	var b strings.Builder
	fmt.Fprintf(&b, `int main() {
	%s;
	%s;
	int read;
	%s
	acc = 0;
%s%s`, keyDecl, valDecl, keyInit, directive, openBrace)
	fmt.Fprintf(&b, `%swhile ((read = scanf("%s %s", %s)) == 2) {
%s	if (%s) {
%s		%s
%s	} else {
%s		if (%s)
%s			printf("%s\t%s\n", prevKey, acc);
%s		%s
%s		acc = val;
%s	}
%s}
%sif (%s)
%s	printf("%s\t%s\n", prevKey, acc);
`,
		indent, scanKey, scanVal, scanArgs,
		indent, cmpKey,
		indent, accumulate,
		indent,
		indent, keyGuard,
		indent, printKey, printVal,
		indent, keyAssign,
		indent,
		indent,
		indent,
		indent, keyGuard,
		indent, printKey, printVal)
	b.WriteString(closeBrace)
	b.WriteString("	return 0;\n}")
	return b.String()
}

// --- inputs ---------------------------------------------------------------

// intInput writes `id f1 f2` lines with a unique ascending id (map-only
// keys derive from it) and bounded non-negative fields.
func intInput(r *rng, records int) []byte {
	var b strings.Builder
	for i := 0; i < records; i++ {
		fmt.Fprintf(&b, "%d %d %d\n", i, r.intn(1000), r.intn(1000))
	}
	return []byte(b.String())
}

var vocabulary = []string{
	"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
	"iota", "kappa", "lambda", "mu", "nu", "xi", "omicron", "pi", "rho",
	"sigma", "tau", "upsilon",
}

// wordInput writes lines of 2–7 vocabulary words.
func wordInput(r *rng, records int) []byte {
	var b strings.Builder
	for i := 0; i < records; i++ {
		n := r.rangen(2, 7)
		for j := 0; j < n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(vocabulary[r.intn(len(vocabulary))])
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}
