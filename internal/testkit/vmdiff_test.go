package testkit

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/mr"
)

// compileBothCores compiles one generated program twice: once on the
// default register-bytecode VM and once pinned to the AST tree-walker.
func compileBothCores(t *testing.T, p Program, disableOpt bool) (vm, walker *mr.CompiledJob) {
	t.Helper()
	vm, err := CompileVariant(p, disableOpt, false)
	if err != nil {
		t.Fatalf("seed %d: VM compile: %v\nmap source:\n%s", p.Seed, err, p.MapSrc)
	}
	walker, err = CompileVariant(p, disableOpt, true)
	if err != nil {
		t.Fatalf("seed %d: tree-walker compile: %v\nmap source:\n%s", p.Seed, err, p.MapSrc)
	}
	return vm, walker
}

// diffCores fails the test unless the VM and tree-walker runs of one seed
// produced byte-identical output on every backend.
func diffCores(t *testing.T, p Program, what string, vm, walker DiffResult) {
	t.Helper()
	for _, backend := range []struct{ name, vm, walker string }{
		{"sequential", vm.Sequential, walker.Sequential},
		{"streaming", vm.Streaming, walker.Streaming},
		{"gpu", vm.GPU, walker.GPU},
	} {
		if backend.vm != backend.walker {
			t.Fatalf("seed %d: %s: VM and tree-walker disagree on the %s backend\nvm:\n%s\ntree-walker:\n%s\nmap source:\n%s\ncombine source:\n%s",
				p.Seed, what, backend.name, head(backend.vm), head(backend.walker), p.MapSrc, p.CombineSrc)
		}
	}
}

// TestVMMatchesTreeWalkerAcrossSeeds pins the execution-core equivalence
// claim: the register-bytecode VM (the default core) and the AST
// tree-walker (-novm) must produce byte-identical output for every seed in
// the generated corpus, on all three backends — sequential, streaming, and
// GPU. A failing seed reproduces with `go run ./cmd/hdgen -seed N -check`
// plus `heterodoop -novm` on the same sources.
func TestVMMatchesTreeWalkerAcrossSeeds(t *testing.T) {
	for seed := uint64(0); seed < NumDifferentialSeeds; seed++ {
		p := Generate(seed)
		vmJob, walkJob := compileBothCores(t, p, false)
		vmRes, err := RunDifferentialCompiled(vmJob, p)
		if err != nil {
			t.Fatalf("seed %d: VM run: %v\nmap source:\n%s", seed, err, p.MapSrc)
		}
		walkRes, err := RunDifferentialCompiled(walkJob, p)
		if err != nil {
			t.Fatalf("seed %d: tree-walker run: %v\nmap source:\n%s", seed, err, p.MapSrc)
		}
		diffCores(t, p, "default build", vmRes, walkRes)
	}
}

// TestVMMatchesTreeWalkerUnoptimized is the same equivalence with the SSA
// optimizer off (-O0): the bytecode compiler must lower the raw AST as
// faithfully as the optimized one.
func TestVMMatchesTreeWalkerUnoptimized(t *testing.T) {
	for seed := uint64(0); seed < NumMetamorphicSeeds; seed++ {
		p := Generate(seed)
		vmJob, walkJob := compileBothCores(t, p, true)
		vmRes, err := RunDifferentialCompiled(vmJob, p)
		if err != nil {
			t.Fatalf("seed %d: VM -O0 run: %v\nmap source:\n%s", seed, err, p.MapSrc)
		}
		walkRes, err := RunDifferentialCompiled(walkJob, p)
		if err != nil {
			t.Fatalf("seed %d: tree-walker -O0 run: %v\nmap source:\n%s", seed, err, p.MapSrc)
		}
		diffCores(t, p, "-O0 build", vmRes, walkRes)
	}
}

// TestVMMatchesTreeWalkerUnderFaults drives both execution cores through
// recovering fault plans: re-executed attempts and GPU->CPU fallbacks must
// not open a gap between the cores. The VM's cost parity with the walker is
// what keeps the virtual-time schedule — and so the fault injection points —
// identical between the two runs.
func TestVMMatchesTreeWalkerUnderFaults(t *testing.T) {
	const faultSeeds = 6
	for seed := uint64(0); seed < faultSeeds; seed++ {
		p := Generate(seed)
		vmJob, walkJob := compileBothCores(t, p, false)
		clean, err := RunCluster(vmJob, p.Input, ClusterOpts{Scheduler: mr.GPUFirst, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: clean VM run: %v", seed, err)
		}
		mid := clean.MapPhaseEnd / 2
		specs := []struct{ name, spec string }{
			{"crash-restart", fmt.Sprintf("crash(node=1,at=%g,restart=%g)", mid, clean.Makespan)},
			{"hbloss", fmt.Sprintf("hbloss(node=0,at=%g,for=%g)", mid, clean.Makespan)},
			{"taskfail-gpu", "taskfail(task=0,attempt=0,dev=gpu)"},
			{"gpu-rate", "gpurate=0.3;seed=9"},
		}
		for _, tc := range specs {
			plan, err := faults.Parse(tc.spec)
			if err != nil {
				t.Fatalf("seed %d: plan %s: %v", seed, tc.name, err)
			}
			o := ClusterOpts{Scheduler: mr.GPUFirst, Faults: plan, Seed: seed}
			vmStats, err := RunCluster(vmJob, p.Input, o)
			if err != nil {
				t.Fatalf("seed %d: plan %s: VM run: %v", seed, tc.name, err)
			}
			walkStats, err := RunCluster(walkJob, p.Input, o)
			if err != nil {
				t.Fatalf("seed %d: plan %s: tree-walker run: %v", seed, tc.name, err)
			}
			if vmOut, walkOut := TextOutput(vmStats), TextOutput(walkStats); vmOut != walkOut {
				t.Fatalf("seed %d: fault plan %s (%s): VM and tree-walker disagree\nvm:\n%s\ntree-walker:\n%s\nmap source:\n%s",
					seed, tc.name, tc.spec, head(vmOut), head(walkOut), p.MapSrc)
			}
		}
	}
}
