package testkit

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/mr"
)

// fracSrc emits a non-terminating binary fraction (f1/3) per record: the
// value cannot round-trip exactly through the CPU path's 6-decimal "%f"
// text format, while the GPU path carries the raw double.
const fracSrc = `int main() {
	int key, read;
	double val;
	char *line;
	size_t nbytes = 10000;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(key) value(val) kvpairs(1) blocks(8) threads(32)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		int f0 = 0, f1 = 0, f2 = 0;
		int i = 0, nf = 0;
		while (i < read) {
			if (line[i] >= '0' && line[i] <= '9') {
				int fv = atoi(line + i);
				if (nf == 0) f0 = fv;
				if (nf == 1) f1 = fv;
				if (nf == 2) f2 = fv;
				nf++;
				while (i < read && line[i] >= '0' && line[i] <= '9') i++;
			} else {
				i++;
			}
		}
		key = f0;
		val = ((double) f1 + (double) f2) / 3.0;
		printf("%d\t%f\n", key, val);
	}
	free(line);
	return 0;
}`

// TestFloatFormattingDivergenceDocumented pins the one intentional
// CPU/GPU divergence the differential harness tolerates — and why the
// generator sidesteps it. The CPU streaming path serializes doubles
// through printf's 6-decimal "%f" between stages, so a fractional value
// like 1/3 is rounded; the GPU kernel path keeps the raw double in the
// KV store. The job outputs therefore differ textually but agree to the
// 6-decimal rounding bound. Generated programs emit integer-valued
// doubles only, which survive both paths exactly — that is what lets
// TestGeneratedProgramsAgreeAcrossBackends demand byte identity.
func TestFloatFormattingDivergenceDocumented(t *testing.T) {
	p := Program{
		Seed:    0,
		Name:    "float-divergence",
		MapSrc:  fracSrc,
		MapOnly: true,
		Key:     KeyInt,
		Val:     ValDouble,
		Input:   []byte("0 1 0\n1 2 0\n2 7 1\n3 10 10\n"),
	}
	cj, err := Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if bad := Lint(p); len(bad) > 0 {
		t.Fatalf("lint: %v", bad)
	}
	ref, err := Reference(cj, p.Input)
	if err != nil {
		t.Fatal(err)
	}
	gpuStats, err := RunCluster(cj, p.Input, ClusterOpts{Scheduler: mr.GPUFirst})
	if err != nil {
		t.Fatal(err)
	}
	gpuOut := TextOutput(gpuStats)

	// The divergence is real: byte comparison fails on fractional values.
	if ref == gpuOut {
		t.Fatalf("expected a textual divergence on fractional doubles; both paths produced:\n%s", ref)
	}

	// But it is only formatting: same keys, values within the 6-decimal
	// rounding bound of the CPU path's %f serialization.
	refLines, gpuLines := splitLines(t, ref), splitLines(t, gpuOut)
	if len(refLines) != len(gpuLines) {
		t.Fatalf("line counts differ: CPU %d vs GPU %d\nCPU:\n%s\nGPU:\n%s",
			len(refLines), len(gpuLines), ref, gpuOut)
	}
	for i := range refLines {
		rk, rv := parseKV(t, refLines[i])
		gk, gv := parseKV(t, gpuLines[i])
		if rk != gk {
			t.Fatalf("line %d: keys differ: CPU %q vs GPU %q", i, rk, gk)
		}
		if math.Abs(rv-gv) > 5e-7 {
			t.Errorf("line %d (key %s): CPU %v vs GPU %v differ beyond %%f rounding", i, rk, rv, gv)
		}
	}
}

func splitLines(t *testing.T, out string) []string {
	t.Helper()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("no output lines in %q", out)
	}
	return lines
}

func parseKV(t *testing.T, line string) (string, float64) {
	t.Helper()
	key, val, ok := strings.Cut(line, "\t")
	if !ok {
		t.Fatalf("malformed output line %q", line)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		t.Fatalf("bad value in line %q: %v", line, err)
	}
	return key, v
}
