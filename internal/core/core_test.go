package core

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gpurt"
	"repro/internal/mr"
	"repro/internal/workload"
)

func wcJob(t *testing.T, reducers int) *Job {
	t.Helper()
	wc := workload.Wordcount()
	job, err := CompileJob(JobSources{
		Name: "wordcount", Map: wc.Job.MapSrc, Combine: wc.Job.CombineSrc,
		Reduce: wc.Job.ReduceSrc, Reducers: reducers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func smallCluster() *cluster.Setup {
	s := cluster.Cluster1()
	s.Slaves = 4
	s.HDFS.DataNodes = 4
	s.HDFS.BlockSize = 2 << 10
	return &s
}

func TestCompileJobProducesCUDA(t *testing.T) {
	job := wcJob(t, 4)
	cuda := job.CUDA()
	if !strings.Contains(cuda, "__global__ void gpu_mapper") {
		t.Error("missing map kernel in CUDA output")
	}
	if !strings.Contains(cuda, "__global__ void gpu_combiner") {
		t.Error("missing combine kernel in CUDA output")
	}
	if job.Schema().KeyLen != 30 {
		t.Errorf("schema key len = %d", job.Schema().KeyLen)
	}
}

func TestCompileJobErrors(t *testing.T) {
	if _, err := CompileJob(JobSources{Name: "x", Map: "int main() { return 0; }"}); err == nil {
		t.Fatal("mapper without pragma accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	job := wcJob(t, 3)
	input := []byte(strings.Repeat("apple banana apple\ncherry banana\n", 40))
	res, err := Run(job, input, RunOptions{
		Setup: smallCluster(), Scheduler: mr.TailSched,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(res.TextOutput()), "\n") {
		parts := strings.SplitN(line, "\t", 2)
		counts[parts[0]] = parts[1]
	}
	if counts["apple"] != "80" || counts["banana"] != "80" || counts["cherry"] != "40" {
		t.Fatalf("counts = %v", counts)
	}
	if res.Stats.Makespan <= 0 {
		t.Error("no makespan recorded")
	}
	if res.Stats.MapsOnGPU == 0 {
		t.Error("no maps ran on the GPU")
	}
}

func TestRunCPUOnlyMatchesHeterogeneous(t *testing.T) {
	input := []byte(strings.Repeat("red green blue red\ngreen red\n", 30))
	run := func(sched mr.SchedulerKind) string {
		job := wcJob(t, 2)
		res, err := Run(job, input, RunOptions{Setup: smallCluster(), Scheduler: sched})
		if err != nil {
			t.Fatal(err)
		}
		return res.TextOutput()
	}
	cpu := run(mr.CPUOnly)
	het := run(mr.TailSched)
	if cpu != het {
		t.Fatalf("outputs differ:\ncpu:\n%s\nhet:\n%s", cpu, het)
	}
}

func TestRunWithFailureInjection(t *testing.T) {
	job := wcJob(t, 2)
	input := []byte(strings.Repeat("alpha beta gamma\n", 200))
	res, err := Run(job, input, RunOptions{
		Setup: smallCluster(), Scheduler: mr.GPUFirst, GPUFailureRate: 0.4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Retries == 0 {
		t.Error("failure injection produced no retries")
	}
	if !strings.Contains(res.TextOutput(), "alpha\t200") {
		t.Errorf("output wrong after retries:\n%s", res.TextOutput())
	}
}

func TestCompareTask(t *testing.T) {
	bs := workload.BlackScholes()
	job, err := CompileJob(JobSources{Name: "bs", Map: bs.Job.MapSrc, Reducers: 0})
	if err != nil {
		t.Fatal(err)
	}
	input := bs.Gen(11, 8192)
	cmp, err := CompareTask(job, input, cluster.Cluster1(), gpurt.AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup < 5 {
		t.Errorf("BlackScholes task speedup = %v, want >= 5", cmp.Speedup)
	}
	if cmp.Records == 0 || cmp.KVPairs == 0 {
		t.Errorf("comparison missing counters: %+v", cmp)
	}
	if cmp.GPUTimes.OutputWrite <= 0 {
		t.Error("GPU breakdown missing output write")
	}
}

func TestWarningsSurface(t *testing.T) {
	src := `
int main() {
	char *aliased;
	char buf[16];
	int x, read;
	char *line;
	size_t n = 100;
	line = (char*) malloc(100);
	strcpy(buf, "seed");
	aliased = buf;
	#pragma mapreduce mapper key(x) value(x)
	while ((read = getline(&line, &n, stdin)) != -1) {
		x = aliased[0] + read;
		printf("%d\t%d\n", x, x);
	}
	return 0;
}`
	job, err := CompileJob(JobSources{Name: "warn", Map: src, Reducers: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range job.Warnings() {
		if strings.Contains(w, "aliasing") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an aliasing warning, got %v", job.Warnings())
	}
}
