// Package core is the public facade of the HeteroDoop reproduction: it
// ties the translator, the CPU (Hadoop Streaming) and GPU execution paths,
// the simulated HDFS, and the heterogeneous scheduler into the workflow of
// the paper — write a sequential MapReduce program in MiniC, annotate it
// with `#pragma mapreduce` directives, and run it on a simulated
// CPU+GPU cluster.
//
// Typical use:
//
//	job, _ := core.CompileJob(core.JobSources{
//		Name: "wordcount", Map: mapSrc, Combine: combineSrc,
//		Reduce: reduceSrc, Reducers: 8,
//	})
//	res, _ := core.Run(job, input, core.RunOptions{})
//	fmt.Println(res.TextOutput())
package core

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/gpurt"
	"repro/internal/hdfs"
	"repro/internal/kv"
	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/streaming"
)

// JobSources bundles a job's MiniC programs, mirroring what a HeteroDoop
// user hands to Hadoop Streaming.
type JobSources struct {
	Name string
	// Map must carry a `#pragma mapreduce mapper` directive.
	Map string
	// Combine optionally carries a combiner directive.
	Combine string
	// Reduce is a plain streaming filter (runs on CPUs only, paper §3.1).
	Reduce string
	// Reducers is the reduce-task count; 0 makes the job map-only.
	Reducers int
	// DisableVM turns off the register-bytecode execution core (-novm):
	// every stage interprets the AST instead. The zero value runs the VM.
	DisableVM bool
}

// Job is a compiled HeteroDoop job: one source, two targets (CPU
// executable + GPU kernels).
type Job struct {
	compiled *mr.CompiledJob
}

// CompileJob runs the HeteroDoop translator over the sources.
func CompileJob(src JobSources) (*Job, error) { return CompileJobProfiled(src, nil) }

// CompileJobProfiled is CompileJob with the host-compile and GPU-translate
// phases charged to an optional wall-clock profiler.
func CompileJobProfiled(src JobSources, prof *perf.Profiler) (*Job, error) {
	cj, err := mr.CompileJobProf(mr.JobProgram{
		Name:        src.Name,
		MapSrc:      src.Map,
		CombineSrc:  src.Combine,
		ReduceSrc:   src.Reduce,
		NumReducers: src.Reducers,
		DisableVM:   src.DisableVM,
	}, prof)
	if err != nil {
		return nil, err
	}
	return &Job{compiled: cj}, nil
}

// CUDA returns the CUDA-flavoured rendering of the generated map kernel
// (and combine kernel when present), as cmd/hdcc prints it.
func (j *Job) CUDA() string {
	out := j.compiled.MapC.CUDA
	if j.compiled.CombineC != nil {
		out += "\n" + j.compiled.CombineC.CUDA
	}
	return out
}

// Warnings returns the translator's privatization warnings.
func (j *Job) Warnings() []string {
	var ws []string
	ws = append(ws, j.compiled.MapC.Kernel.Warnings...)
	if j.compiled.CombineC != nil {
		ws = append(ws, j.compiled.CombineC.Kernel.Warnings...)
	}
	return ws
}

// Schema returns the job's intermediate KV schema.
func (j *Job) Schema() kv.Schema { return j.compiled.Schema }

// RunOptions configures a cluster run.
type RunOptions struct {
	// Setup selects the cluster (default: Cluster1). Use
	// cluster.Cluster1(), cluster.Cluster2(), or a custom Setup.
	Setup *cluster.Setup
	// Scheduler defaults to TailSched when GPUs are present.
	Scheduler mr.SchedulerKind
	// GPUs overrides the per-node GPU count (0 = setup default). Set
	// Scheduler to mr.CPUOnly for the baseline Hadoop run.
	GPUs int
	// Optimizations defaults to gpurt.AllOptimizations().
	Optimizations *gpurt.Options
	// GPUFailureRate injects GPU task failures (fault tolerance demo).
	// Ignored when Faults is set.
	GPUFailureRate float64
	// Faults is a deterministic fault-injection plan for the run (see
	// package faults; built from a spec string with faults.Parse).
	Faults *faults.Plan
	// Seed drives placement and failures.
	Seed uint64
	// SkipBadRecords turns on Hadoop-style bad-record skipping: poisoned
	// input records are dropped (and counted) instead of failing the job.
	SkipBadRecords bool
	// MaxSkippedRecords bounds skip mode (0 = engine default).
	MaxSkippedRecords int
	// Obs, when non-nil, records the run's trace spans and metrics.
	Obs *obs.Recorder
	// Profile, when non-nil, receives the run's wall-clock cost profile:
	// engine phases plus per-AST-node and per-builtin interpreter buckets.
	Profile *perf.Profiler
	// Workers bounds host-side parallelism for the run's task work. 0 or 1
	// reproduces the serial engine exactly; any value is byte-identical on
	// every output surface (results, stats, traces, metrics) and differs
	// only in wall-clock time.
	Workers int
	// Pool optionally shares a caller-owned worker pool across runs (used
	// by experiment sweeps); when set, Workers is ignored.
	Pool *sim.Pool
}

// Result is a finished job.
type Result struct {
	Stats  *mr.JobStats
	Output []kv.Pair
}

// TextOutput renders the job output as tab-separated lines, the format
// Hadoop writes back to HDFS.
func (r *Result) TextOutput() string {
	var b strings.Builder
	for _, p := range r.Output {
		b.WriteString(p.Text())
		b.WriteByte('\n')
	}
	return b.String()
}

// Run executes the job over input on a simulated cluster, functionally:
// the returned output is the real reduced data, and Stats carries the
// virtual-time makespan and scheduling counters.
func Run(job *Job, input []byte, opts RunOptions) (*Result, error) {
	setup := cluster.Cluster1()
	if opts.Setup != nil {
		setup = *opts.Setup
	}
	if opts.GPUs > 0 {
		setup.Node.GPUs = opts.GPUs
	}
	sched := opts.Scheduler
	if sched == mr.CPUOnly {
		setup.Node.GPUs = 0
	}
	optz := gpurt.AllOptimizations()
	if opts.Optimizations != nil {
		optz = *opts.Optimizations
	}

	fs, err := hdfs.New(setup.HDFS, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	const inputPath = "/job/input"
	if err := fs.Write(inputPath, input); err != nil {
		return nil, err
	}
	dev, err := gpu.NewDevice(setup.Device)
	if err != nil {
		return nil, err
	}
	exec, err := mr.NewFunctionalExecutor(job.compiled, fs, inputPath, mr.HardwareModel{
		CPU:          setup.CPU,
		Device:       dev,
		Opts:         optz,
		DiskWriteGBs: setup.DiskWriteGBs,
		HDFSWriteGBs: setup.HDFSWriteGBs,
		Prof:         opts.Profile,
	})
	if err != nil {
		return nil, err
	}
	stats, err := mr.RunJob(mr.ClusterConfig{
		Name:              job.compiled.Program.Name,
		Slaves:            setup.Slaves,
		Node:              setup.Node,
		Scheduler:         sched,
		HeartbeatSec:      scaledHeartbeat(setup),
		GPUFailureRate:    opts.GPUFailureRate,
		Faults:            opts.Faults,
		Seed:              opts.Seed + 2,
		SkipBadRecords:    opts.SkipBadRecords,
		MaxSkippedRecords: opts.MaxSkippedRecords,
		Obs:               opts.Obs,
		Workers:           opts.Workers,
		Pool:              opts.Pool,
	}, exec)
	if err != nil {
		return nil, err
	}
	return &Result{Stats: stats, Output: stats.Output}, nil
}

// scaledHeartbeat shrinks the 3s heartbeat in proportion to the scaled
// block size (tasks on scaled splits finish in milliseconds).
func scaledHeartbeat(setup cluster.Setup) float64 {
	scale := float64(setup.HDFS.BlockSize) / float64(256<<20)
	hb := setup.HeartbeatSec * scale * 50
	if hb < 1e-5 {
		hb = 1e-5
	}
	return hb
}

// TaskComparison is a single-task CPU-vs-GPU measurement (the Figure 5/6
// primitive) exposed for examples and tools.
type TaskComparison struct {
	CPUTime  float64
	GPUTime  float64
	GPUTimes gpurt.StageTimes
	Records  int
	KVPairs  int
	Speedup  float64
}

// CompareTask runs one data-local map(+combine) task on both devices of
// the setup and reports the timing comparison.
func CompareTask(job *Job, input []byte, setup cluster.Setup, optz gpurt.Options) (*TaskComparison, error) {
	dev, err := gpu.NewDevice(setup.Device)
	if err != nil {
		return nil, err
	}
	readTime := float64(len(input))/(setup.HDFS.DiskReadGBs*1e9) + setup.HDFS.SeekMS/1000
	cj := job.compiled
	cpuRes, err := streaming.RunMapTask(cj.MapF, cj.CombineF, input, streaming.MapTaskConfig{
		Schema:        cj.Schema,
		NumReducers:   cj.Program.NumReducers,
		CPU:           setup.CPU,
		InputReadTime: readTime,
		DiskWriteGBs:  setup.DiskWriteGBs,
		HDFSWriteGBs:  setup.HDFSWriteGBs,
	})
	if err != nil {
		return nil, fmt.Errorf("core: CPU task: %w", err)
	}
	gpuRes, err := gpurt.RunTask(dev, cj.MapC, cj.CombineC, input, gpurt.TaskConfig{
		NumReducers:   cj.Program.NumReducers,
		Opts:          optz,
		InputReadTime: readTime,
		DiskWriteGBs:  setup.DiskWriteGBs,
		HDFSWriteGBs:  setup.HDFSWriteGBs,
	})
	if err != nil {
		return nil, fmt.Errorf("core: GPU task: %w", err)
	}
	cmp := &TaskComparison{
		CPUTime:  cpuRes.Times.Total(),
		GPUTime:  gpuRes.Total(),
		GPUTimes: gpuRes.Times,
		Records:  gpuRes.Records,
		KVPairs:  gpuRes.KVPairs,
	}
	if cmp.GPUTime > 0 {
		cmp.Speedup = cmp.CPUTime / cmp.GPUTime
	}
	return cmp, nil
}
