package streaming

import (
	"strings"
	"testing"

	"repro/internal/kv"
)

const wcMap = `
int getWord(char *line, int offset, char *word, int read, int maxw) {
	int i = offset, j = 0;
	while (i < read && (line[i] == ' ' || line[i] == '\n' || line[i] == '\t')) i++;
	while (i < read && line[i] != ' ' && line[i] != '\n' && line[i] != '\t' && j < maxw - 1) {
		word[j] = line[i];
		i++; j++;
	}
	if (j == 0) return -1;
	word[j] = '\0';
	return i - offset;
}
int main() {
	char word[30], *line;
	size_t nbytes = 10000;
	int read, linePtr, offset, one;
	line = (char*) malloc(nbytes * sizeof(char));
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		linePtr = 0;
		offset = 0;
		one = 1;
		while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
			printf("%s\t%d\n", word, one);
			offset += linePtr;
		}
	}
	free(line);
	return 0;
}`

const wcCombine = `
int main() {
	char word[30], prevWord[30];
	prevWord[0] = '\0';
	int count, val, read;
	count = 0;
	while ((read = scanf("%s %d", word, &val)) == 2) {
		if (strcmp(word, prevWord) == 0) {
			count += val;
		} else {
			if (prevWord[0] != '\0')
				printf("%s\t%d\n", prevWord, count);
			strcpy(prevWord, word);
			count = val;
		}
	}
	if (prevWord[0] != '\0')
		printf("%s\t%d\n", prevWord, count);
	return 0;
}`

var wcSchema = kv.Schema{KeyKind: kv.Bytes, ValKind: kv.Int, KeyLen: 30}

func TestFilterRun(t *testing.T) {
	f := MustFilter("wc-map", wcMap)
	out, sink, err := f.Run([]byte("a b a\nc a\n"))
	if err != nil {
		t.Fatal(err)
	}
	if out != "a\t1\nb\t1\na\t1\nc\t1\na\t1\n" {
		t.Fatalf("out = %q", out)
	}
	if sink.Ops == 0 {
		t.Fatal("no cost recorded")
	}
}

func TestNewFilterRejectsBadSource(t *testing.T) {
	if _, err := NewFilter("bad", "int main( {"); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestFilterNonZeroExitIsError(t *testing.T) {
	f := MustFilter("fail", `int main() { return 2; }`)
	if _, _, err := f.Run(nil); err == nil || !strings.Contains(err.Error(), "status 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseAndRenderKVLines(t *testing.T) {
	pairs, err := ParseKVLines("x\t1\ny\t2\n", wcSchema)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 || string(pairs[1].Key.B) != "y" || pairs[1].Val.I != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	back := string(RenderKVLines(pairs))
	if back != "x\t1\ny\t2\n" {
		t.Fatalf("render = %q", back)
	}
}

func TestRunMapTaskPartitionsAndCombines(t *testing.T) {
	mapF := MustFilter("wc-map", wcMap)
	combF := MustFilter("wc-combine", wcCombine)
	input := []byte("the cat sat\nthe dog sat\nthe end\n")
	res, err := RunMapTask(mapF, combF, input, MapTaskConfig{
		Schema: wcSchema, NumReducers: 3, InputReadTime: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for pi, part := range res.Partitions {
		for _, p := range part {
			if kv.Partition(p.Key, 3) != pi {
				t.Errorf("pair %v in wrong partition %d", p, pi)
			}
			counts[string(p.Key.B)] += p.Val.I
		}
	}
	want := map[string]int64{"the": 3, "cat": 1, "sat": 2, "dog": 1, "end": 1}
	for w, c := range want {
		if counts[w] != c {
			t.Errorf("count[%q] = %d, want %d", w, counts[w], c)
		}
	}
	// Combiner shrank output: 8 map pairs -> 5 distinct words.
	got := 0
	for _, part := range res.Partitions {
		got += len(part)
	}
	if got != 5 {
		t.Errorf("combined pairs = %d, want 5", got)
	}
	if res.MapPairs != 8 {
		t.Errorf("map pairs = %d, want 8", res.MapPairs)
	}
	tm := res.Times
	if tm.Map <= 0 || tm.Sort <= 0 || tm.Combine <= 0 || tm.OutputWrite <= 0 {
		t.Errorf("stage times not all positive: %+v", tm)
	}
	if tm.Total() <= tm.Map {
		t.Error("total must exceed map alone")
	}
}

func TestRunMapTaskWithoutCombiner(t *testing.T) {
	mapF := MustFilter("wc-map", wcMap)
	res, err := RunMapTask(mapF, nil, []byte("a a b\n"), MapTaskConfig{
		Schema: wcSchema, NumReducers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, part := range res.Partitions {
		total += len(part)
		for i := 1; i < len(part); i++ {
			if kv.Compare(part[i-1].Key, part[i].Key) > 0 {
				t.Error("partition not sorted")
			}
		}
	}
	if total != 3 {
		t.Fatalf("pairs = %d, want 3 (no combining)", total)
	}
	if res.Times.Combine != 0 {
		t.Error("combine time charged without combiner")
	}
}

func TestRunMapTaskMapOnly(t *testing.T) {
	src := `
int main() {
	char *line;
	size_t n = 100;
	int read, id;
	double p;
	line = (char*) malloc(100);
	while ((read = getline(&line, &n, stdin)) != -1) {
		id = atoi(line);
		p = id * 2.0;
		printf("%d\t%f\n", id, p);
	}
	return 0;
}`
	mapF := MustFilter("bs-map", src)
	schema := kv.Schema{KeyKind: kv.Int, ValKind: kv.Float}
	res, err := RunMapTask(mapF, nil, []byte("1\n2\n3\n"), MapTaskConfig{
		Schema: schema, NumReducers: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MapOutput) != 3 || res.Partitions != nil {
		t.Fatalf("map-only result wrong: %d outputs, partitions=%v", len(res.MapOutput), res.Partitions)
	}
	if res.MapOutput[2].Key.I != 3 || res.MapOutput[2].Val.F != 6.0 {
		t.Fatalf("output = %v", res.MapOutput[2])
	}
	if res.Times.Sort != 0 {
		t.Error("map-only job must not sort")
	}
}

func TestRunReduceMergesAndReduces(t *testing.T) {
	reduceSrc := wcCombine // wordcount reduce == combine
	reduceF := MustFilter("wc-reduce", reduceSrc)
	inputs := [][]kv.Pair{
		{{Key: kv.StringValue("a"), Val: kv.IntValue(2)}, {Key: kv.StringValue("c"), Val: kv.IntValue(1)}},
		{{Key: kv.StringValue("a"), Val: kv.IntValue(3)}, {Key: kv.StringValue("b"), Val: kv.IntValue(1)}},
	}
	out, cost, err := RunReduce(reduceF, wcSchema, inputs, XeonE52680())
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Error("reduce cost not positive")
	}
	got := map[string]int64{}
	for _, p := range out {
		got[string(p.Key.B)] = p.Val.I
	}
	if got["a"] != 5 || got["b"] != 1 || got["c"] != 1 {
		t.Fatalf("reduce output = %v", got)
	}
}

func TestMergeSortedHandlesUnsortedRuns(t *testing.T) {
	// GPU combiner output is sorted per warp chunk, not globally.
	inputs := [][]kv.Pair{
		{{Key: kv.StringValue("m"), Val: kv.IntValue(1)}, {Key: kv.StringValue("a"), Val: kv.IntValue(1)}},
		{{Key: kv.StringValue("z"), Val: kv.IntValue(1)}, {Key: kv.StringValue("b"), Val: kv.IntValue(1)}},
	}
	out := MergeSorted(inputs)
	for i := 1; i < len(out); i++ {
		if kv.Compare(out[i-1].Key, out[i].Key) > 0 {
			t.Fatalf("merge output not sorted: %v", out)
		}
	}
	if len(out) != 4 {
		t.Fatalf("merge lost pairs: %d", len(out))
	}
}

func TestCPUModelTimes(t *testing.T) {
	cpu := XeonE52680()
	f := MustFilter("wc-map", wcMap)
	_, small, err := f.Run([]byte("a\n"))
	if err != nil {
		t.Fatal(err)
	}
	_, big, err := f.Run([]byte(strings.Repeat("a b c d e\n", 100)))
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Time(big) <= cpu.Time(small) {
		t.Fatal("CPU time not increasing with work")
	}
	if cpu.SortTime(100000, 30) <= cpu.SortTime(100, 30) {
		t.Fatal("sort time not increasing")
	}
	if cpu.SortTime(1, 30) != 0 || cpu.SortTime(0, 30) != 0 {
		t.Fatal("degenerate sorts should be free")
	}
}
