// Package streaming implements the Hadoop Streaming execution model that
// HeteroDoop inherits for its CPU path (paper §2.2): map, combine, and
// reduce are unix-style filter programs (here MiniC, interpreted) that
// read records on stdin and write tab-separated KV lines on stdout. The
// package also provides the CPU-side map-task pipeline (map -> partition +
// sort -> combine) with a calibrated CPU timing model.
package streaming

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/kv"
	"repro/internal/minic"
	"repro/internal/perf"
)

// CPUModel converts interpreter cost events into CPU seconds for one core.
type CPUModel struct {
	// GHz is the core clock.
	GHz float64
	// OpCPI is cycles per interpreted scalar op; MemCPI cycles per
	// load/store (cache-mixed average).
	OpCPI  float64
	MemCPI float64
}

// XeonE52680 models Cluster1's CPU (one core of the 20).
func XeonE52680() CPUModel { return CPUModel{GHz: 2.8, OpCPI: 1.0, MemCPI: 1.6} }

// XeonX5560 models Cluster2's CPU (one core of the 12).
func XeonX5560() CPUModel { return CPUModel{GHz: 2.8, OpCPI: 1.3, MemCPI: 2.0} }

// Time converts a counting sink's totals to seconds.
func (c CPUModel) Time(s *interp.CountingSink) float64 {
	cycles := float64(s.Ops)*c.OpCPI + float64(s.Loads+s.Stores)*c.MemCPI
	return cycles / (c.GHz * 1e9)
}

// SortTime models the Hadoop map-side sort of n KV pairs with keys of
// keyBytes on one core. Comparisons touch only the distinguishing key
// prefix (~8 bytes on average), not the whole slot.
func (c CPUModel) SortTime(n, keyBytes int) float64 {
	if n < 2 {
		return 0
	}
	cmpBytes := keyBytes
	if cmpBytes > 8 {
		cmpBytes = 8
	}
	passes := math.Ceil(math.Log2(float64(n)))
	cycles := passes * float64(n) * (float64(cmpBytes)*c.MemCPI + 8*c.OpCPI)
	return cycles / (c.GHz * 1e9)
}

// Filter is a compiled streaming program.
type Filter struct {
	Name string
	Prog *minic.Program
	// Code is the program lowered to register bytecode; when non-nil the
	// filter executes on the bytecode VM instead of the AST tree-walker.
	Code *bytecode.Program
}

// NewFilter parses and checks a MiniC filter source.
func NewFilter(name, src string) (*Filter, error) {
	prog, err := minic.ParseAndCheck(src)
	if err != nil {
		return nil, fmt.Errorf("streaming: filter %q: %w", name, err)
	}
	return &Filter{Name: name, Prog: prog}, nil
}

// MustFilter parses a filter and panics on error (for built-in benchmark
// sources).
func MustFilter(name, src string) *Filter {
	f, err := NewFilter(name, src)
	if err != nil {
		panic(err)
	}
	return f
}

// Run executes the filter over input, returning its stdout and cost.
func (f *Filter) Run(input []byte) (string, *interp.CountingSink, error) {
	return f.RunCollect(input, nil)
}

// RunCollect is Run with an optional profiling collector attached to the
// filter's interpreter (nil col means no profiling).
func (f *Filter) RunCollect(input []byte, col *perf.Collector) (string, *interp.CountingSink, error) {
	sink := &interp.CountingSink{}
	var out bytes.Buffer
	m := interp.New(f.Prog, interp.Options{
		Stdin:  bytes.NewReader(input),
		Stdout: &out,
		Cost:   sink,
		Prof:   col,
	})
	var code int
	var err error
	if f.Code != nil {
		code, err = bytecode.NewVM(m, f.Code).Run()
	} else {
		code, err = m.Run()
	}
	if err != nil {
		return "", nil, fmt.Errorf("streaming: filter %q: %w", f.Name, err)
	}
	if code != 0 {
		return "", nil, fmt.Errorf("streaming: filter %q exited with status %d", f.Name, code)
	}
	return out.String(), sink, nil
}

// ParseKVLines converts filter stdout into typed pairs.
func ParseKVLines(out string, schema kv.Schema) ([]kv.Pair, error) {
	var pairs []kv.Pair
	for _, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		p, err := kv.ParsePair(schema.KeyKind, schema.ValKind, line)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, p)
	}
	return pairs, nil
}

// RenderKVLines converts typed pairs back to streaming text (the input of
// combine and reduce filters).
func RenderKVLines(pairs []kv.Pair) []byte {
	var b bytes.Buffer
	for _, p := range pairs {
		b.WriteString(p.Text())
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// MapTaskTimes is the CPU task's stage breakdown (mirroring the GPU task's
// stages where they exist).
type MapTaskTimes struct {
	InputRead   float64
	Map         float64
	Sort        float64
	Combine     float64
	OutputWrite float64
}

// Total sums the stages.
func (t MapTaskTimes) Total() float64 {
	return t.InputRead + t.Map + t.Sort + t.Combine + t.OutputWrite
}

// MapTaskResult is a completed CPU map task.
type MapTaskResult struct {
	// Partitions holds combined pairs per reducer (nil for map-only jobs).
	Partitions [][]kv.Pair
	// MapOutput holds a map-only job's raw output pairs.
	MapOutput   []kv.Pair
	Times       MapTaskTimes
	MapPairs    int
	OutputBytes int64
}

// MapTaskConfig parameterizes a CPU map task.
type MapTaskConfig struct {
	Schema        kv.Schema
	NumReducers   int
	CPU           CPUModel
	InputReadTime float64
	// DiskWriteGBs / HDFSWriteGBs mirror the GPU driver's write model.
	DiskWriteGBs float64
	HDFSWriteGBs float64
	// Prof, when non-nil, receives wall-clock phase and interpreter
	// hot-path buckets for this task.
	Prof *perf.Profiler
}

func (c *MapTaskConfig) fillDefaults() {
	if c.DiskWriteGBs == 0 {
		c.DiskWriteGBs = 0.25
	}
	if c.HDFSWriteGBs == 0 {
		c.HDFSWriteGBs = 0.12
	}
	if c.CPU.GHz == 0 {
		c.CPU = XeonE52680()
	}
}

// RunMapTask executes one Hadoop Streaming map task on a single CPU core:
// run the map filter over the split, partition and sort its output, run
// the combine filter per partition, and account the output write.
func RunMapTask(mapF, combineF *Filter, input []byte, cfg MapTaskConfig) (*MapTaskResult, error) {
	cfg.fillDefaults()
	res := &MapTaskResult{}
	res.Times.InputRead = cfg.InputReadTime

	endMap := cfg.Prof.Phase(perf.PhaseCPUMap)
	col := cfg.Prof.Collector(perf.PhaseCPUMap)
	out, sink, err := mapF.RunCollect(input, col)
	col.Flush()
	if err != nil {
		endMap()
		return nil, err
	}
	res.Times.Map = cfg.CPU.Time(sink)
	pairs, err := ParseKVLines(out, cfg.Schema)
	endMap()
	if err != nil {
		return nil, fmt.Errorf("streaming: map output: %w", err)
	}
	res.MapPairs = len(pairs)

	if cfg.NumReducers <= 0 {
		res.MapOutput = pairs
		for _, p := range pairs {
			res.OutputBytes += int64(len(p.Text())) + 1
		}
		res.Times.OutputWrite = float64(res.OutputBytes) / (cfg.HDFSWriteGBs * 1e9)
		return res, nil
	}

	// Partition, then sort each partition by key.
	endSort := cfg.Prof.Phase(perf.PhaseCPUSort)
	parts := make([][]kv.Pair, cfg.NumReducers)
	for _, p := range pairs {
		i := kv.Partition(p.Key, cfg.NumReducers)
		parts[i] = append(parts[i], p)
	}
	for i := range parts {
		kv.SortPairs(parts[i])
		res.Times.Sort += cfg.CPU.SortTime(len(parts[i]), cfg.Schema.SlotKeyLen())
	}
	endSort()

	if combineF != nil {
		endCombine := cfg.Prof.Phase(perf.PhaseCPUCombine)
		ccol := cfg.Prof.Collector(perf.PhaseCPUCombine)
		combined := make([][]kv.Pair, cfg.NumReducers)
		for i, part := range parts {
			if len(part) == 0 {
				continue
			}
			cout, csink, err := combineF.RunCollect(RenderKVLines(part), ccol)
			if err != nil {
				ccol.Flush()
				endCombine()
				return nil, err
			}
			res.Times.Combine += cfg.CPU.Time(csink)
			cpairs, err := ParseKVLines(cout, cfg.Schema)
			if err != nil {
				ccol.Flush()
				endCombine()
				return nil, fmt.Errorf("streaming: combine output: %w", err)
			}
			combined[i] = cpairs
		}
		ccol.Flush()
		endCombine()
		res.Partitions = combined
	} else {
		res.Partitions = parts
	}

	for _, part := range res.Partitions {
		res.OutputBytes += int64(len(part)) * int64(cfg.Schema.SlotKeyLen()+cfg.Schema.SlotValLen()+12)
	}
	res.Times.OutputWrite = float64(res.OutputBytes) / (cfg.DiskWriteGBs * 1e9)
	return res, nil
}

// RunReduce merges sorted partition streams from all map tasks and runs
// the reduce filter over them, returning the final output pairs and the
// filter's cost.
func RunReduce(reduceF *Filter, schema kv.Schema, inputs [][]kv.Pair, cpu CPUModel) ([]kv.Pair, float64, error) {
	return RunReduceProf(reduceF, schema, inputs, cpu, nil)
}

// RunReduceProf is RunReduce with optional wall-clock profiling of the
// shuffle merge and the reduce filter.
func RunReduceProf(reduceF *Filter, schema kv.Schema, inputs [][]kv.Pair, cpu CPUModel, prof *perf.Profiler) ([]kv.Pair, float64, error) {
	endMerge := prof.Phase(perf.PhaseShuffleMerge)
	merged := MergeSorted(inputs)
	endMerge()
	if reduceF == nil {
		return merged, cpu.SortTime(len(merged), schema.SlotKeyLen()), nil
	}
	endReduce := prof.Phase(perf.PhaseReduce)
	col := prof.Collector(perf.PhaseReduce)
	out, sink, err := reduceF.RunCollect(RenderKVLines(merged), col)
	col.Flush()
	endReduce()
	if err != nil {
		return nil, 0, err
	}
	pairs, err := ParseKVLines(out, schema)
	if err != nil {
		return nil, 0, fmt.Errorf("streaming: reduce output: %w", err)
	}
	mergeTime := cpu.SortTime(len(merged), schema.SlotKeyLen())
	return pairs, mergeTime + cpu.Time(sink), nil
}

// MergeSorted performs the reduce-side k-way merge of per-map sorted runs.
// Runs that are not fully sorted (GPU combiners emit sorted chunks per
// warp) are sorted first, as Hadoop's merge would via its spill mechanism.
func MergeSorted(inputs [][]kv.Pair) []kv.Pair {
	var all []kv.Pair
	for _, in := range inputs {
		all = append(all, in...)
	}
	kv.SortPairs(all)
	return all
}
