package sim

import (
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool for speculative computation under the
// deterministic engine. The determinism contract is a strict split of
// responsibilities: workers may only run *pure* computations (no shared
// mutable state, no scheduling, no engine access), and every observable
// effect of a computation is applied by the submitter — on the engine
// goroutine, in canonical event order — when it calls Task.Wait. The pool
// therefore changes *when* work burns host CPU, never *what* the
// simulation computes: outputs, traces, metrics, and schedules stay
// byte-identical to a serial run.
//
// A pool with workers <= 1 spawns no goroutines at all: Submit returns a
// lazy task whose Wait runs the computation inline, which reproduces the
// serial engine exactly (same call sites, same call order, same stacks).
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Task
	closed  bool
	workers int
	wg      sync.WaitGroup
}

// NewPool returns a pool with the given concurrency. Values below 1 are
// clamped to 1 (the serial, goroutine-free pool). Nil is also a valid
// serial pool: every method tolerates a nil receiver.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	for i := 1; i < workers; i++ {
		p.wg.Add(1)
		//detlint:ignore bare-goroutine: pool workers run pure computes; results are applied in event order via Task.Wait
		go p.worker()
	}
	return p
}

// Workers reports the pool's concurrency (1 for a nil or serial pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Parallel reports whether the pool actually runs work concurrently.
func (p *Pool) Parallel() bool { return p.Workers() > 1 }

// Task is one submitted computation: a future whose result is claimed by
// Wait. Tasks move queued -> running -> done; Discard moves a still-queued
// task to discarded so its compute never runs.
type Task struct {
	compute  func() any
	state    atomic.Int32
	done     chan struct{} // nil for lazy (serial) tasks
	result   any
	panicked any
}

const (
	taskQueued int32 = iota
	taskRunning
	taskDone
	taskDiscarded
)

// Submit enqueues compute for the workers and returns its future. On a
// serial (or nil, or closed) pool the compute is not enqueued anywhere:
// the returned lazy task runs it inline at Wait, exactly like code that
// never used the pool.
func (p *Pool) Submit(compute func() any) *Task {
	t := &Task{compute: compute}
	if p == nil || p.workers <= 1 {
		return t
	}
	t.done = make(chan struct{})
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return t
	}
	p.queue = append(p.queue, t)
	p.mu.Unlock()
	p.cond.Signal()
	return t
}

// Wait returns the task's result, computing it if no worker has claimed
// it yet (work stealing: the waiter never blocks behind unrelated queue
// entries, and waiting on a task that is still queued costs exactly one
// inline call). A panic inside the compute is re-raised here, on the
// waiting goroutine, matching where it would have surfaced serially.
// Wait must not be called after Discard.
func (t *Task) Wait() any {
	if t.state.CompareAndSwap(taskQueued, taskRunning) {
		t.exec()
	} else if t.state.Load() == taskDiscarded {
		panic("sim: Wait on discarded task")
	} else if t.done != nil {
		<-t.done
	}
	if t.state.Load() == taskDiscarded {
		panic("sim: Wait on discarded task")
	}
	if t.panicked != nil {
		panic(t.panicked)
	}
	return t.result
}

// Discard abandons the task: if its compute has not started it never
// will. A compute already claimed by a worker finishes in the background
// and its result is dropped — safe because pool computes are pure.
func (t *Task) Discard() {
	t.state.CompareAndSwap(taskQueued, taskDiscarded)
}

// exec runs the compute on the claiming goroutine and publishes the
// result (the channel close orders the result write before any Wait read).
func (t *Task) exec() {
	defer func() {
		if r := recover(); r != nil {
			t.panicked = r
		}
		t.state.Store(taskDone)
		if t.done != nil {
			close(t.done)
		}
	}()
	t.result = t.compute()
	t.compute = nil
}

// worker drains the queue until Close.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		t := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		if t.state.CompareAndSwap(taskQueued, taskRunning) {
			t.exec()
		}
	}
}

// Close shuts the pool down and waits for the workers to exit. Tasks
// still queued are dropped from the queue but remain claimable: a later
// Wait runs them inline. Close is idempotent; closing a nil or serial
// pool is a no-op.
func (p *Pool) Close() {
	if p == nil || p.workers <= 1 {
		return
	}
	p.mu.Lock()
	p.closed = true
	p.queue = nil
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
