package sim

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// poolSizes covers the serial pool (goroutine-free), the nil pool, and
// genuinely concurrent pools; every engine-facing behaviour must be
// identical across them.
func poolSizes() []int { return []int{1, 2, 4, 8} }

func TestPoolSubmitWaitAllSizes(t *testing.T) {
	for _, w := range poolSizes() {
		p := NewPool(w)
		var tasks []*Task
		for i := 0; i < 32; i++ {
			i := i
			tasks = append(tasks, p.Submit(func() any { return i * i }))
		}
		for i, task := range tasks {
			if got := task.Wait().(int); got != i*i {
				t.Fatalf("workers=%d: task %d = %d, want %d", w, i, got, i*i)
			}
		}
		p.Close()
	}
}

func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 || p.Parallel() {
		t.Fatalf("nil pool: Workers=%d Parallel=%v, want 1/false", p.Workers(), p.Parallel())
	}
	ran := false
	task := p.Submit(func() any { ran = true; return "ok" })
	if ran {
		t.Fatal("nil pool ran the compute at Submit; must be lazy")
	}
	if got := task.Wait().(string); got != "ok" || !ran {
		t.Fatalf("nil pool Wait = %q (ran=%v)", got, ran)
	}
	p.Close() // must not panic
}

func TestSerialPoolSpawnsNoGoroutines(t *testing.T) {
	p := NewPool(1)
	// A serial pool must execute strictly lazily and in Wait order, which
	// is only possible if nothing runs in the background.
	order := ""
	t1 := p.Submit(func() any { order += "a"; return nil })
	t2 := p.Submit(func() any { order += "b"; return nil })
	if order != "" {
		t.Fatalf("serial pool ran computes eagerly: %q", order)
	}
	t2.Wait()
	t1.Wait()
	if order != "ba" {
		t.Fatalf("serial pool order = %q, want %q (lazy, in Wait order)", order, "ba")
	}
	p.Close()
}

func TestWaitStealsQueuedTask(t *testing.T) {
	// With every worker goroutine wedged on a blocker task, a queued task
	// can only complete if Wait claims and runs it inline.
	p := NewPool(2)
	defer p.Close()
	gate := make(chan struct{})
	blocker := p.Submit(func() any { <-gate; return nil })
	stolen := p.Submit(func() any { return 7 })
	if got := stolen.Wait().(int); got != 7 {
		t.Fatalf("stolen task = %d, want 7", got)
	}
	close(gate)
	blocker.Wait()
}

func TestPoolPanicPropagatesAtWait(t *testing.T) {
	for _, w := range poolSizes() {
		p := NewPool(w)
		task := p.Submit(func() any { panic("boom") })
		func() {
			defer func() {
				if r := recover(); fmt.Sprint(r) != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", w, r)
				}
			}()
			task.Wait()
			t.Fatalf("workers=%d: Wait returned after panic", w)
		}()
		p.Close()
	}
}

func TestDiscardPreventsExecution(t *testing.T) {
	for _, w := range poolSizes() {
		p := NewPool(w)
		// Wedge the workers so the victim stays queued until Discard.
		gate := make(chan struct{})
		var blockers []*Task
		for i := 1; i < w; i++ {
			blockers = append(blockers, p.Submit(func() any { <-gate; return nil }))
		}
		var ran atomic.Bool
		victim := p.Submit(func() any { ran.Store(true); return nil })
		victim.Discard()
		close(gate)
		for _, b := range blockers {
			b.Wait()
		}
		p.Close()
		if ran.Load() {
			t.Fatalf("workers=%d: discarded task executed", w)
		}
	}
}

func TestWaitOnDiscardedTaskPanics(t *testing.T) {
	for _, w := range []int{1, 4} {
		p := NewPool(w)
		gate := make(chan struct{})
		for i := 1; i < w; i++ {
			p.Submit(func() any { <-gate; return nil })
		}
		task := p.Submit(func() any { return nil })
		task.Discard()
		func() {
			defer func() {
				if r := recover(); fmt.Sprint(r) != "sim: Wait on discarded task" {
					t.Fatalf("workers=%d: recovered %v", w, r)
				}
			}()
			task.Wait()
		}()
		close(gate)
		p.Close()
	}
}

func TestCloseIsIdempotentAndLeavesTasksClaimable(t *testing.T) {
	p := NewPool(4)
	gate := make(chan struct{})
	for i := 0; i < 3; i++ {
		p.Submit(func() any { <-gate; return nil })
	}
	straggler := p.Submit(func() any { return 11 })
	close(gate)
	p.Close()
	p.Close()
	// Dropped from the queue at Close, but Wait still computes it inline.
	if got := straggler.Wait().(int); got != 11 {
		t.Fatalf("straggler after Close = %d, want 11", got)
	}
	if task := p.Submit(func() any { return 13 }); task.Wait().(int) != 13 {
		t.Fatal("Submit after Close must return a lazy, claimable task")
	}
}

func TestNestedWaitDoesNotDeadlock(t *testing.T) {
	// An outer pool task that submits and waits on inner tasks must make
	// progress even when the pool has a single worker goroutine: Wait
	// steals queued work inline.
	p := NewPool(2)
	defer p.Close()
	outer := p.Submit(func() any {
		sum := 0
		var inner []*Task
		for i := 0; i < 8; i++ {
			i := i
			inner = append(inner, p.Submit(func() any { return i }))
		}
		for _, task := range inner {
			sum += task.Wait().(int)
		}
		return sum
	})
	if got := outer.Wait().(int); got != 28 {
		t.Fatalf("nested sum = %d, want 28", got)
	}
}

// engineTaskRun drives one canonical two-phase scenario on an engine with
// the given pool and returns the commit order observed.
func engineTaskRun(pool *Pool) string {
	e := NewEngine()
	e.SetPool(pool)
	var order string
	// Three same-timestamp computes scheduled out of order plus one later
	// event: commits must land in canonical (time, seq) order.
	e.AtTask(5, func() any { return "c" }, func(v any) { order += v.(string) })
	e.AtTask(3, func() any { return "a" }, func(v any) { order += v.(string) })
	e.AtTask(3, func() any { return "b" }, func(v any) { order += v.(string) })
	e.At(4, func() { order += "-" })
	e.Run()
	return order
}

func TestAtTaskCommitsInCanonicalOrder(t *testing.T) {
	want := engineTaskRun(nil)
	if want != "ab-c" {
		t.Fatalf("serial order = %q, want ab-c", want)
	}
	for _, w := range poolSizes() {
		p := NewPool(w)
		if got := engineTaskRun(p); got != want {
			t.Fatalf("workers=%d: order %q, want %q", w, got, want)
		}
		p.Close()
	}
}

func TestAfterTaskClampsNegativeDelay(t *testing.T) {
	e := NewEngine()
	fired := false
	e.AfterTask(-1, func() any { return nil }, func(any) { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("AfterTask(-1): fired=%v now=%v", fired, e.Now())
	}
}

// TestCancelMidDispatchGroup cancels one event of a same-timestamp group
// after its compute has been handed to the pool (and possibly already
// claimed by a worker): the commit must never run and the survivors must
// be unaffected, for every worker count.
func TestCancelMidDispatchGroup(t *testing.T) {
	for _, w := range poolSizes() {
		p := NewPool(w)
		e := NewEngine()
		e.SetPool(p)
		var order string
		e.AtTask(1, func() any { return "a" }, func(v any) { order += v.(string) })
		victim := e.AtTask(1, func() any { return "x" }, func(v any) { order += v.(string) })
		e.AtTask(1, func() any { return "b" }, func(v any) { order += v.(string) })
		// Cancel from an earlier event, while the group's computes are
		// already in flight on the pool.
		e.At(0, func() { victim.Cancel() })
		e.Run()
		p.Close()
		if order != "ab" {
			t.Fatalf("workers=%d: order %q, want ab", w, order)
		}
	}
}

// TestSameTimestampCommitSchedulesSameTimestamp has a committing event
// schedule a new two-phase event at the *same* virtual timestamp: the new
// event must fire after the existing group (higher seq), with its compute
// dispatched and consumed correctly at every worker count.
func TestSameTimestampCommitSchedulesSameTimestamp(t *testing.T) {
	run := func(p *Pool) string {
		e := NewEngine()
		e.SetPool(p)
		var order string
		e.AtTask(2, func() any { return "a" }, func(v any) {
			order += v.(string)
			e.AtTask(2, func() any { return "c" }, func(v2 any) { order += v2.(string) })
		})
		e.AtTask(2, func() any { return "b" }, func(v any) { order += v.(string) })
		e.Run()
		return order
	}
	want := run(nil)
	if want != "abc" {
		t.Fatalf("serial order = %q, want abc", want)
	}
	for _, w := range poolSizes() {
		p := NewPool(w)
		if got := run(p); got != want {
			t.Fatalf("workers=%d: order %q, want %q", w, got, want)
		}
		p.Close()
	}
}

// TestRunUntilBisectsParallelGroup stops the clock between the dispatch
// of a group's computes and some of their commits: RunUntil must fire
// only the commits at or before the deadline, leave the rest queued with
// their computes intact, and a later Run must finish them.
func TestRunUntilBisectsParallelGroup(t *testing.T) {
	for _, w := range poolSizes() {
		p := NewPool(w)
		e := NewEngine()
		e.SetPool(p)
		var order string
		e.AtTask(1, func() any { return "a" }, func(v any) { order += v.(string) })
		e.AtTask(2, func() any { return "b" }, func(v any) { order += v.(string) })
		e.AtTask(3, func() any { return "c" }, func(v any) { order += v.(string) })
		e.RunUntil(2)
		if order != "ab" {
			t.Fatalf("workers=%d: after RunUntil(2) order %q, want ab", w, order)
		}
		if e.Pending() != 1 {
			t.Fatalf("workers=%d: pending %d, want 1", w, e.Pending())
		}
		e.Run()
		p.Close()
		if order != "abc" {
			t.Fatalf("workers=%d: final order %q, want abc", w, order)
		}
	}
}
