// Package sim provides a deterministic discrete-event simulation core:
// a virtual clock, an event queue, and a seeded random number generator.
// All HeteroDoop cluster experiments run on virtual time produced by this
// engine, so results are bit-reproducible and independent of the host.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Event is a scheduled callback. Events with equal time fire in the order
// of their sequence numbers (i.e., scheduling order), which keeps runs
// deterministic.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
	// task is the speculative compute backing a two-phase (AtTask) event;
	// nil for plain events.
	task *Task
}

// Time reports when the event fires (or was scheduled to fire).
func (e *Event) Time() Time { return e.at }

// Cancel marks the event so that it will not fire. Cancelling an already
// fired or cancelled event is a no-op. For a two-phase event the backing
// compute is discarded as well — safe even mid-dispatch, because computes
// are pure: a worker that already claimed it finishes in the background
// and the result is dropped without ever being observed.
func (e *Event) Cancel() {
	e.dead = true
	if e.task != nil {
		e.task.Discard()
		e.task = nil
	}
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	fired  uint64
	limit  uint64 // safety valve against runaway simulations; 0 = unlimited
	halted bool
	pool   *Pool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SetEventLimit installs a safety cap on the total number of events; Run
// panics if it is exceeded. Zero disables the cap.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a logic error in the caller.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d seconds from now. Negative delays are clamped
// to zero.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// SetPool attaches a worker pool to the engine; AtTask/AfterTask dispatch
// their computes to it. A nil pool (the default) makes two-phase events
// compute inline at commit time — the serial engine.
func (e *Engine) SetPool(p *Pool) { e.pool = p }

// Pool returns the attached worker pool (nil when serial).
func (e *Engine) Pool() *Pool { return e.pool }

// AtTask schedules a two-phase event: a pure compute paired with a commit
// that applies its result. This is the engine's parallel event-group
// dispatcher. The compute is handed to the worker pool immediately, so
// independent events — in particular every event sharing one virtual
// timestamp — overlap on the host; each commit then fires on the engine
// goroutine at its canonical (time, sequence) heap position, so results
// merge in exactly the order a serial engine would have produced them.
// The compute must be pure: it may not touch engine or simulation state
// (commit owns every side effect). Cancelling the returned event discards
// the compute. With no pool attached the compute runs inline when the
// commit fires, byte-for-byte the serial engine.
func (e *Engine) AtTask(t Time, compute func() any, commit func(any)) *Event {
	task := e.pool.Submit(compute)
	ev := e.At(t, func() { commit(task.Wait()) })
	ev.task = task
	return ev
}

// AfterTask is AtTask with a relative firing time (negative delays clamp
// to zero, like After).
func (e *Engine) AfterTask(d Duration, compute func() any, commit func(any)) *Event {
	if d < 0 {
		d = 0
	}
	return e.AtTask(e.now+d, compute, commit)
}

// Halt stops the run loop after the current event completes.
func (e *Engine) Halt() { e.halted = true }

// Run executes events until the queue drains, Halt is called, or the event
// limit trips. It returns the final virtual time.
func (e *Engine) Run() Time {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		e.fired++
		if e.limit > 0 && e.fired > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", e.limit, e.now))
		}
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with firing times <= deadline, leaving later
// events queued, and advances the clock to min(deadline, last event time).
func (e *Engine) RunUntil(deadline Time) Time {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		ev := e.queue[0]
		if ev.at > deadline {
			break
		}
		heap.Pop(&e.queue)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		if e.limit > 0 && e.fired > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", e.limit, e.now))
		}
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending reports the number of live queued events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// RNG is a small, fast, seedable pseudo-random generator (xorshift64*),
// embedded rather than math/rand so that streams are stable across Go
// releases. The zero value is invalid; use NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 <= 1e-300 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Zipf draws from a Zipf-like distribution over [0, n) with exponent s>0
// using inverse-CDF on a precomputed table is avoided for memory; this uses
// rejection-free approximate inversion, adequate for synthetic workloads.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Approximate inversion for the Zipf CDF with exponent s using the
	// continuous analogue: P(X <= x) ~ (x^(1-s)-1)/(n^(1-s)-1) for s != 1.
	u := r.Float64()
	if s == 1 {
		x := math.Pow(float64(n), u)
		k := int(x) - 1
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		return k
	}
	oneMinus := 1 - s
	x := math.Pow(u*(math.Pow(float64(n), oneMinus)-1)+1, 1/oneMinus)
	k := int(x) - 1
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
