package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("final time = %v, want 3", end)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestEngineAfterAccumulates(t *testing.T) {
	e := NewEngine()
	var last Time
	var step func()
	n := 0
	step = func() {
		last = e.Now()
		n++
		if n < 5 {
			e.After(2, step)
		}
	}
	e.After(2, step)
	e.Run()
	if last != 10 {
		t.Fatalf("last fire at %v, want 10", last)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", e.Fired())
	}
}

func TestEngineCancelAfterFiring(t *testing.T) {
	// Cancelling an event that already fired (popped from the queue) must be
	// a no-op: it must not panic, corrupt the queue, or affect later events.
	e := NewEngine()
	var got []int
	var first *Event
	first = e.At(1, func() {
		got = append(got, 1)
		first.Cancel() // self-cancel while firing
	})
	e.At(2, func() {
		got = append(got, 2)
		first.Cancel() // cancel an event long since fired
	})
	e.At(3, func() { got = append(got, 3) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
	if e.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", e.Fired())
	}
	first.Cancel() // and once more after the run completes
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

func TestEngineRunUntilDeadlineEquality(t *testing.T) {
	// An event scheduled exactly at the deadline fires (the contract is
	// firing times <= deadline), and one epsilon later does not.
	e := NewEngine()
	var got []Time
	e.At(3, func() { got = append(got, 3) })
	e.At(Time(math.Nextafter(3, 4)), func() { t.Fatal("event after deadline fired") })
	e.RunUntil(3)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("got %v, want [3]", got)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(1, func() { got = append(got, 1); e.Halt() })
	e.At(2, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v, want [1]", got)
	}
	// A second Run resumes from the queue.
	e.Run()
	if len(got) != 2 {
		t.Fatalf("resume failed, got %v", got)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunUntil(3)
	if len(got) != 3 {
		t.Fatalf("RunUntil(3) fired %d events, want 3", len(got))
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(got) != 5 {
		t.Fatalf("Run after RunUntil fired %d total, want 5", len(got))
	}
}

func TestEngineRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("Now = %v, want 42", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestEngineEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(10)
	var loop func()
	loop = func() { e.After(1, loop) }
	e.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("event limit did not trip")
		}
	}()
	e.Run()
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(123)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(42)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGZipfSkew(t *testing.T) {
	r := NewRNG(99)
	const n = 100000
	counts := make([]int, 100)
	for i := 0; i < n; i++ {
		counts[r.Zipf(100, 1.1)]++
	}
	// Rank 0 must dominate the tail decisively.
	if counts[0] < 5*counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	for i, c := range counts {
		if c == 0 && i < 10 {
			t.Fatalf("head rank %d never drawn", i)
		}
	}
}

func TestRNGZipfBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 200; i++ {
			v := r.Zipf(50, 1.2)
			if v < 0 || v >= 50 {
				return false
			}
		}
		return r.Zipf(1, 1.2) == 0 && r.Zipf(0, 1.2) == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	q := append([]int(nil), p...)
	sort.Ints(q)
	for i, v := range q {
		if v != i {
			t.Fatalf("Perm output not a permutation at %d: %v", i, v)
		}
	}
}

func TestEngineManyEventsStress(t *testing.T) {
	e := NewEngine()
	r := NewRNG(11)
	var last Time
	monotone := true
	for i := 0; i < 5000; i++ {
		at := Time(r.Float64() * 1000)
		e.At(at, func() {
			if e.Now() < last {
				monotone = false
			}
			last = e.Now()
		})
	}
	e.Run()
	if !monotone {
		t.Fatal("clock went backwards during stress run")
	}
	if e.Fired() != 5000 {
		t.Fatalf("Fired = %d, want 5000", e.Fired())
	}
}
