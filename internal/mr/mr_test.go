package mr

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/gpu"
	"repro/internal/gpurt"
	"repro/internal/hdfs"
	"repro/internal/kv"
	"repro/internal/streaming"
)

const wcMapSrc = `
int getWord(char *line, int offset, char *word, int read, int maxw) {
	int i = offset, j = 0;
	while (i < read && (line[i] == ' ' || line[i] == '\n' || line[i] == '\t')) i++;
	while (i < read && line[i] != ' ' && line[i] != '\n' && line[i] != '\t' && j < maxw - 1) {
		word[j] = line[i];
		i++; j++;
	}
	if (j == 0) return -1;
	word[j] = '\0';
	return i - offset;
}
int main() {
	char word[30], *line;
	size_t nbytes = 10000;
	int read, linePtr, offset, one;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(word) value(one) keylength(30) kvpairs(32) blocks(4) threads(32)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		linePtr = 0;
		offset = 0;
		one = 1;
		while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
			printf("%s\t%d\n", word, one);
			offset += linePtr;
		}
	}
	free(line);
	return 0;
}`

const wcCombineSrc = `
int main() {
	char word[30], prevWord[30];
	prevWord[0] = '\0';
	int count, val, read;
	count = 0;
	#pragma mapreduce combiner key(prevWord) value(count) keyin(word) valuein(val) keylength(30) firstprivate(prevWord, count) blocks(2) threads(64)
	{
		while ((read = scanf("%s %d", word, &val)) == 2) {
			if (strcmp(word, prevWord) == 0) {
				count += val;
			} else {
				if (prevWord[0] != '\0')
					printf("%s\t%d\n", prevWord, count);
				strcpy(prevWord, word);
				count = val;
			}
		}
		if (prevWord[0] != '\0')
			printf("%s\t%d\n", prevWord, count);
	}
	return 0;
}`

// The wordcount reducer is the combiner without directives.
const wcReduceSrc = `
int main() {
	char word[30], prevWord[30];
	prevWord[0] = '\0';
	int count, val, read;
	count = 0;
	while ((read = scanf("%s %d", word, &val)) == 2) {
		if (strcmp(word, prevWord) == 0) {
			count += val;
		} else {
			if (prevWord[0] != '\0')
				printf("%s\t%d\n", prevWord, count);
			strcpy(prevWord, word);
			count = val;
		}
	}
	if (prevWord[0] != '\0')
		printf("%s\t%d\n", prevWord, count);
	return 0;
}`

func wcJob(t *testing.T) *CompiledJob {
	t.Helper()
	job, err := CompileJob(JobProgram{
		Name: "wordcount", MapSrc: wcMapSrc, CombineSrc: wcCombineSrc,
		ReduceSrc: wcReduceSrc, NumReducers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func corpus(lines int) []byte {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	var b bytes.Buffer
	for i := 0; i < lines; i++ {
		for j := 0; j < 4+i%3; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(words[(i*5+j*3)%len(words)])
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

func testHW(t *testing.T) HardwareModel {
	t.Helper()
	dev, err := gpu.NewDevice(gpu.TeslaK40())
	if err != nil {
		t.Fatal(err)
	}
	return HardwareModel{
		CPU:    streaming.XeonE52680(),
		Device: dev,
		Opts:   gpurt.AllOptimizations(),
	}
}

func buildExecutor(t *testing.T, lines, slaves int) *FunctionalExecutor {
	t.Helper()
	fs, err := hdfs.New(hdfs.Config{
		BlockSize: 512, Replication: 2, DataNodes: slaves,
		DiskReadGBs: 0.5, DiskWriteGBs: 0.25, NetworkGBs: 2, SeekMS: 2,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/input", corpus(lines)); err != nil {
		t.Fatal(err)
	}
	exec, err := NewFunctionalExecutor(wcJob(t), fs, "/input", testHW(t))
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

func outputCounts(stats *JobStats) map[string]int64 {
	out := map[string]int64{}
	for _, p := range stats.Output {
		out[string(p.Key.B)] += p.Val.I
	}
	return out
}

func referenceCounts(t *testing.T, lines int) map[string]int64 {
	t.Helper()
	f := streaming.MustFilter("ref", wcMapSrc)
	out, _, err := f.Run(corpus(lines))
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := streaming.ParseKVLines(out, kv.Schema{KeyKind: kv.Bytes, ValKind: kv.Int, KeyLen: 30})
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]int64{}
	for _, p := range pairs {
		ref[string(p.Key.B)] += p.Val.I
	}
	return ref
}

func TestCPUOnlyJobProducesCorrectOutput(t *testing.T) {
	exec := buildExecutor(t, 60, 4)
	stats, err := RunJob(ClusterConfig{
		Slaves: 4, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1},
		Scheduler: CPUOnly, HeartbeatSec: 1,
	}, exec)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceCounts(t, 60)
	got := outputCounts(stats)
	if len(got) != len(want) {
		t.Fatalf("distinct words %d, want %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			t.Errorf("count[%q] = %d, want %d", w, got[w], c)
		}
	}
	if stats.MapsOnGPU != 0 {
		t.Errorf("CPU-only job ran %d maps on GPU", stats.MapsOnGPU)
	}
	if stats.Makespan <= 0 {
		t.Error("makespan not positive")
	}
}

func TestHeterogeneousJobMatchesCPUOnlyOutput(t *testing.T) {
	for _, sched := range []SchedulerKind{GPUFirst, TailSched} {
		t.Run(sched.String(), func(t *testing.T) {
			exec := buildExecutor(t, 60, 4)
			stats, err := RunJob(ClusterConfig{
				Slaves: 4, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
				Scheduler: sched, HeartbeatSec: 1,
			}, exec)
			if err != nil {
				t.Fatal(err)
			}
			want := referenceCounts(t, 60)
			got := outputCounts(stats)
			for w, c := range want {
				if got[w] != c {
					t.Errorf("count[%q] = %d, want %d", w, got[w], c)
				}
			}
			if stats.MapsOnGPU == 0 {
				t.Errorf("%v scheduler never used the GPU", sched)
			}
		})
	}
}

func TestMapOnlyJobEndToEnd(t *testing.T) {
	mapSrc := `
int main() {
	char *line;
	size_t n = 100;
	int read, id;
	double price;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(id) value(price) kvpairs(1) blocks(2) threads(16)
	while ((read = getline(&line, &n, stdin)) != -1) {
		id = atoi(line);
		price = id * 1.25;
		printf("%d\t%f\n", id, price);
	}
	return 0;
}`
	job, err := CompileJob(JobProgram{Name: "maponly", MapSrc: mapSrc, NumReducers: 0})
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := hdfs.New(hdfs.Config{BlockSize: 64, Replication: 1, DataNodes: 2,
		DiskReadGBs: 0.5, DiskWriteGBs: 0.25, NetworkGBs: 2}, 3)
	var b bytes.Buffer
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "%d\n", i)
	}
	fs.Write("/in", b.Bytes())
	exec, err := NewFunctionalExecutor(job, fs, "/in", testHW(t))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RunJob(ClusterConfig{
		Slaves: 2, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: GPUFirst, HeartbeatSec: 1,
	}, exec)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Output) != 40 {
		t.Fatalf("output pairs = %d, want 40", len(stats.Output))
	}
	// Canonical order (sorted) with correct values.
	for i, p := range stats.Output {
		if p.Key.I != int64(i) || p.Val.F != float64(i)*1.25 {
			t.Fatalf("output[%d] = %v", i, p)
		}
	}
}

func TestGPUFaultToleranceRetries(t *testing.T) {
	exec := buildExecutor(t, 300, 4)
	stats, err := RunJob(ClusterConfig{
		Slaves: 4, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: GPUFirst, HeartbeatSec: 1, GPUFailureRate: 0.5, Seed: 11,
	}, exec)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries == 0 {
		t.Fatal("failure injection produced no retries")
	}
	// Output must still be correct despite failures.
	want := referenceCounts(t, 300)
	got := outputCounts(stats)
	for w, c := range want {
		if got[w] != c {
			t.Errorf("count[%q] = %d, want %d (after retries)", w, got[w], c)
		}
	}
}

func TestDataLocalityPreferred(t *testing.T) {
	exec := buildExecutor(t, 200, 4)
	stats, err := RunJob(ClusterConfig{
		Slaves: 4, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1},
		Scheduler: CPUOnly, HeartbeatSec: 1,
	}, exec)
	if err != nil {
		t.Fatal(err)
	}
	total := stats.MapsOnCPU + stats.MapsOnGPU
	if stats.DataLocalMaps*2 < total {
		t.Errorf("only %d/%d maps were data-local", stats.DataLocalMaps, total)
	}
}

// fig3Executor reproduces the Figure-3 scenario: uniform tasks, GPU 6x
// faster than a CPU slot.
func fig3Executor(tasks int) *SampledExecutor {
	return &SampledExecutor{
		Splits: tasks, Reducers: 0, Slaves: 1,
		CPUDur: []float64{60}, GPUDur: []float64{10},
	}
}

func TestTailSchedulingBeatsGPUFirstFig3(t *testing.T) {
	run := func(sched SchedulerKind) float64 {
		stats, err := RunJob(ClusterConfig{
			Slaves: 1, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
			Scheduler: sched, HeartbeatSec: 0.5,
		}, fig3Executor(19))
		if err != nil {
			t.Fatal(err)
		}
		return stats.Makespan
	}
	gpuFirst := run(GPUFirst)
	tail := run(TailSched)
	if tail >= gpuFirst {
		t.Fatalf("tail scheduling (%v) not faster than GPU-first (%v) in the Fig. 3 scenario", tail, gpuFirst)
	}
	// The improvement should be meaningful: GPU-first strands the GPU while
	// two 60s CPU tasks finish the job; tail forces them onto the GPU.
	if gpuFirst-tail < 20 {
		t.Errorf("tail saved only %v s; expected the ~40s CPU-task tail to vanish", gpuFirst-tail)
	}
}

func TestTailForcesGPUTasks(t *testing.T) {
	stats, err := RunJob(ClusterConfig{
		Slaves: 1, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: TailSched, HeartbeatSec: 0.5,
	}, fig3Executor(19))
	if err != nil {
		t.Fatal(err)
	}
	if stats.ForcedGPUTasks == 0 {
		t.Fatal("tail scheduler never forced a task onto the GPU")
	}
	if stats.MaxSpeedup < 5 {
		t.Errorf("observed max speedup = %v, want ~6", stats.MaxSpeedup)
	}
}

func TestGPUFirstUsesAllSlots(t *testing.T) {
	stats, err := RunJob(ClusterConfig{
		Slaves: 2, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: GPUFirst, HeartbeatSec: 0.5,
	}, &SampledExecutor{Splits: 40, Reducers: 0, Slaves: 2,
		CPUDur: []float64{30}, GPUDur: []float64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapsOnCPU == 0 || stats.MapsOnGPU == 0 {
		t.Fatalf("GPU-first should use both devices: cpu=%d gpu=%d", stats.MapsOnCPU, stats.MapsOnGPU)
	}
	if stats.MapsOnCPU+stats.MapsOnGPU != 40 {
		t.Fatalf("tasks lost: %d + %d != 40", stats.MapsOnCPU, stats.MapsOnGPU)
	}
}

func TestHeterogeneousFasterThanCPUOnly(t *testing.T) {
	// Compute-bound sampled tasks: GPU 10x. One GPU per node must beat
	// CPU-only meaningfully (the Fig. 4 headline effect).
	cpuOnly, err := RunJob(ClusterConfig{
		Slaves: 4, Node: NodeConfig{MapSlots: 4, ReduceSlots: 1},
		Scheduler: CPUOnly, HeartbeatSec: 1,
	}, &SampledExecutor{Splits: 160, Reducers: 0, Slaves: 4,
		CPUDur: []float64{40}, GPUDur: []float64{4}})
	if err != nil {
		t.Fatal(err)
	}
	hetero, err := RunJob(ClusterConfig{
		Slaves: 4, Node: NodeConfig{MapSlots: 4, ReduceSlots: 1, GPUs: 1},
		Scheduler: TailSched, HeartbeatSec: 1,
	}, &SampledExecutor{Splits: 160, Reducers: 0, Slaves: 4,
		CPUDur: []float64{40}, GPUDur: []float64{4}})
	if err != nil {
		t.Fatal(err)
	}
	speedup := cpuOnly.Makespan / hetero.Makespan
	if speedup < 1.5 {
		t.Fatalf("heterogeneous speedup = %.2f, want > 1.5 on compute-bound tasks", speedup)
	}
}

func TestMultiGPUScaling(t *testing.T) {
	run := func(gpus int) float64 {
		stats, err := RunJob(ClusterConfig{
			Slaves: 2, Node: NodeConfig{MapSlots: 4, ReduceSlots: 1, GPUs: gpus},
			Scheduler: TailSched, HeartbeatSec: 1,
		}, &SampledExecutor{Splits: 200, Reducers: 0, Slaves: 2,
			CPUDur: []float64{40}, GPUDur: []float64{4}})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Makespan
	}
	t1, t2, t3 := run(1), run(2), run(3)
	if !(t3 < t2 && t2 < t1) {
		t.Fatalf("no multi-GPU scaling: 1GPU=%v 2GPU=%v 3GPU=%v", t1, t2, t3)
	}
}

func TestJobDeterministic(t *testing.T) {
	run := func() *JobStats {
		exec := buildExecutor(t, 40, 3)
		stats, err := RunJob(ClusterConfig{
			Slaves: 3, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
			Scheduler: TailSched, HeartbeatSec: 1, Seed: 5,
		}, exec)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.MapsOnGPU != b.MapsOnGPU || len(a.Output) != len(b.Output) {
		t.Fatalf("nondeterministic job: %+v vs %+v", a, b)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	cases := []ClusterConfig{
		{Slaves: 0, Node: NodeConfig{MapSlots: 1}},
		{Slaves: 1, Node: NodeConfig{}},
		{Slaves: 1, Node: NodeConfig{MapSlots: 1}, Scheduler: GPUFirst},
		{Slaves: 1, Node: NodeConfig{MapSlots: 1, GPUs: 1}, Scheduler: CPUOnly},
	}
	for i, cfg := range cases {
		cfg.fillDefaults()
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestCompileJobErrors(t *testing.T) {
	if _, err := CompileJob(JobProgram{Name: "bad", MapSrc: "int main() { return 0; }"}); err == nil {
		t.Error("mapper without pragma accepted")
	}
	if _, err := CompileJob(JobProgram{Name: "bad2", MapSrc: wcMapSrc, CombineSrc: "int main() {"}); err == nil {
		t.Error("broken combiner accepted")
	}
	if _, err := CompileJob(JobProgram{Name: "bad3", MapSrc: wcMapSrc, ReduceSrc: "int main() { return x; }"}); err == nil {
		t.Error("broken reducer accepted")
	}
}

func TestSampledExecutorLocations(t *testing.T) {
	x := &SampledExecutor{Splits: 10, Slaves: 4, CPUDur: []float64{1}, GPUDur: []float64{1}}
	for i := 0; i < 10; i++ {
		for _, n := range x.Locations(i) {
			if n < 0 || n >= 4 {
				t.Fatalf("split %d location %d out of range", i, n)
			}
		}
	}
	// Remote penalty applies off-replica.
	x.RemoteReadPenalty = 5
	att, _ := x.MapTask(0, false, x.Locations(0)[0])
	attRemote, _ := x.MapTask(0, false, (x.Locations(0)[0]+1)%4)
	local := att.Duration
	if attRemote.Duration <= local {
		// Node might coincidentally hold a replica; find a non-replica node.
		for n := 0; n < 4; n++ {
			isRep := false
			for _, loc := range x.Locations(0) {
				if loc == n {
					isRep = true
				}
			}
			if !isRep {
				attR, _ := x.MapTask(0, false, n)
				if attR.Duration <= local {
					t.Fatalf("remote penalty not applied: %v <= %v", attR.Duration, local)
				}
				return
			}
		}
	}
}
