package mr

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/hdfs"
)

// runWC1Slave executes the functional wordcount job on a one-node cluster.
// With a single TaskTracker, blacklisting or crashing the node leaves the
// JobTracker no alternative placement — the edge cases below depend on it.
func runWC1Slave(t *testing.T, plan *faults.Plan) (*JobStats, error) {
	t.Helper()
	fs, err := hdfs.New(hdfs.Config{
		BlockSize: 512, Replication: 1, DataNodes: 1,
		DiskReadGBs: 0.5, DiskWriteGBs: 0.25, NetworkGBs: 2, SeekMS: 2,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/input", corpus(300)); err != nil {
		t.Fatal(err)
	}
	exec, err := NewFunctionalExecutor(wcJob(t), fs, "/input", testHW(t))
	if err != nil {
		t.Fatal(err)
	}
	return RunJob(ClusterConfig{
		Name: "wc-recovery-edge", Slaves: 1,
		Node:      NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: GPUFirst, HeartbeatSec: 0.001, HeartbeatExpirySec: 0.005,
		Seed: 11, Faults: plan,
	}, exec)
}

// TestBlacklistBackoffExpiryReadmission: three task failures blacklist the
// only node in the cluster. A blacklisted node keeps heartbeating, so when
// the backoff window expires it must be re-admitted and finish the job —
// with output identical to the clean run. If expiry never re-admitted the
// node, the job could only stall.
func TestBlacklistBackoffExpiryReadmission(t *testing.T) {
	clean, err := runWC1Slave(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.TaskFail, Task: 0, Attempt: 0, Device: faults.AnyDevice},
		{Kind: faults.TaskFail, Task: 1, Attempt: 0, Device: faults.AnyDevice},
		{Kind: faults.TaskFail, Task: 2, Attempt: 0, Device: faults.AnyDevice},
	}}
	stats, err := runWC1Slave(t, plan)
	if err != nil {
		t.Fatalf("job did not recover after blacklist backoff: %v", err)
	}
	if stats.NodeBlacklists == 0 {
		t.Error("three task failures on one node did not blacklist it")
	}
	if stats.FailedAttempts < 3 {
		t.Errorf("FailedAttempts = %d, want >= 3", stats.FailedAttempts)
	}
	if !reflect.DeepEqual(outputCounts(stats), outputCounts(clean)) {
		t.Error("output after blacklist re-admission differs from the clean run")
	}
}

// TestCorruptOutputOnCrashingOnlyNode: task 0's first output is corrupt
// AND the only node crashes (and restarts) early in the reduce phase,
// while reducers are rejecting that output and reporting fetch failures
// against it. The crash wipes every committed output through the node-loss
// path while the fetch-failure path is mid-escalation; the stale reports
// must not count against the re-executed attempt, and the job must
// converge to the clean output.
func TestCorruptOutputOnCrashingOnlyNode(t *testing.T) {
	clean, err := runWC1Slave(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	crashAt := clean.MapPhaseEnd + 0.5*(clean.Makespan-clean.MapPhaseEnd)
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.MapOutputCorrupt, Task: 0, Attempt: 0, Part: -1},
		{Kind: faults.NodeCrash, Node: 0, At: crashAt, RestartAfter: 0.3 * clean.Makespan},
	}}
	stats, err := runWC1Slave(t, plan)
	if err != nil {
		t.Fatalf("job did not recover from corruption racing a crash of the serving node: %v", err)
	}
	if stats.CorruptPartitions == 0 {
		t.Error("corrupt first attempt was never rejected by checksum verification")
	}
	if stats.NodesLost == 0 {
		t.Error("crash was never detected as a lost node")
	}
	if stats.MapsReexecuted == 0 {
		t.Error("neither loss path re-executed any map output")
	}
	if !reflect.DeepEqual(outputCounts(stats), outputCounts(clean)) {
		t.Error("output after corruption+crash differs from the clean run")
	}
}

// TestFetchReportsRaceReexecution: on a multi-node cluster, every reducer
// rejects task 2's corrupt first output and files fetch-failure reports
// while a crash-and-restart takes out a node mid-map-phase. Reports filed
// against an output that a concurrent loss already un-committed must be
// dropped (not charged to the fresh attempt), or the healthy re-execution
// would be declared lost again and the job could burn its attempt cap.
func TestFetchReportsRaceReexecution(t *testing.T) {
	clean, err := runWCFaulted(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.MapOutputCorrupt, Task: 2, Attempt: 0, Part: -1},
		{Kind: faults.NodeCrash, Node: 1, At: 0.9 * clean.MapPhaseEnd,
			RestartAfter: 0.4 * clean.Makespan},
	}}
	stats, err := runWCFaulted(t, plan)
	if err != nil {
		t.Fatalf("job did not survive fetch reports racing re-execution: %v", err)
	}
	if stats.FetchFailures == 0 {
		t.Error("corrupt output produced no fetch failures")
	}
	if stats.MapsReexecuted == 0 {
		t.Error("no map output was re-executed")
	}
	if !reflect.DeepEqual(stats.Output, clean.Output) {
		t.Error("output after the report/re-execution race differs from the clean run")
	}
}

// TestGPUDemotionSurvivesNodeRestart: task 0's GPU attempts always fail,
// so the JobTracker demotes the task to the CPU; then the node crashes and
// restarts, losing every map output. The demotion decision lives on the
// JobTracker and must survive the node's re-registration: the re-executed
// task 0 has to run on the CPU. If the restart wiped the demotion, the
// re-execution would go back to the (always-failing) GPU and exhaust the
// attempt cap.
func TestGPUDemotionSurvivesNodeRestart(t *testing.T) {
	clean, err := runWC1Slave(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.TaskFail, Task: 0, Attempt: -1, Device: faults.GPUDevice},
		{Kind: faults.NodeCrash, Node: 0, At: 0.5 * clean.MapPhaseEnd,
			RestartAfter: 0.5 * clean.Makespan},
	}}
	stats, err := runWC1Slave(t, plan)
	if err != nil {
		t.Fatalf("job did not survive GPU demotion racing a node restart: %v", err)
	}
	if stats.GPUFallbacks == 0 {
		t.Error("failing GPU attempts caused no demotion")
	}
	if stats.NodesLost == 0 {
		t.Error("crash was never detected as a lost node")
	}
	if stats.MapsReexecuted == 0 {
		t.Error("restart after map commits re-executed no map outputs")
	}
	if !reflect.DeepEqual(outputCounts(stats), outputCounts(clean)) {
		t.Error("output after demotion+restart differs from the clean run")
	}
}
