package mr

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
)

// runWCFaulted executes the functional wordcount job under the given fault
// plan. A fresh executor is built per run so map-output caching cannot leak
// state between plans.
func runWCFaulted(t *testing.T, plan *faults.Plan) (*JobStats, error) {
	t.Helper()
	exec := buildExecutor(t, 300, 4)
	return RunJob(ClusterConfig{
		Name: "wc-faults", Slaves: 4,
		Node:      NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: GPUFirst, HeartbeatSec: 0.001, HeartbeatExpirySec: 0.005,
		Seed: 11, Faults: plan,
	}, exec)
}

// TestFaultPlansPreserveOutput is the headline fault-tolerance invariant:
// under any completable fault plan the job output is byte-identical to the
// clean run's.
func TestFaultPlansPreserveOutput(t *testing.T) {
	clean, err := runWCFaulted(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Output) == 0 {
		t.Fatal("clean run produced no output")
	}
	mapEnd, span := clean.MapPhaseEnd, clean.Makespan

	cases := []struct {
		name  string
		plan  *faults.Plan
		check func(t *testing.T, s *JobStats)
	}{
		{
			name: "crash-and-restart-after-map-commits",
			plan: &faults.Plan{Faults: []faults.Fault{
				{Kind: faults.NodeCrash, Node: 1, At: 0.8 * float64(mapEnd), RestartAfter: 0.5 * float64(span)},
			}},
			check: func(t *testing.T, s *JobStats) {
				if s.NodesLost == 0 {
					t.Error("crash plan lost no node")
				}
				if s.MapsReexecuted == 0 {
					t.Error("crash after map commits re-executed no map outputs")
				}
			},
		},
		{
			name: "permanent-crash-detected-by-expiry",
			plan: &faults.Plan{Faults: []faults.Fault{
				{Kind: faults.NodeCrash, Node: 2, At: 0.5 * float64(mapEnd)},
			}},
			check: func(t *testing.T, s *JobStats) {
				if s.NodesLost != 1 {
					t.Errorf("NodesLost = %d, want 1 (heartbeat expiry)", s.NodesLost)
				}
			},
		},
		{
			name: "permanent-gpu-retirement",
			plan: &faults.Plan{Faults: []faults.Fault{
				{Kind: faults.GPURetire, Node: 0, At: 0.3 * float64(mapEnd)},
				{Kind: faults.GPURetire, Node: 1, At: 0.3 * float64(mapEnd)},
			}},
			check: func(t *testing.T, s *JobStats) {
				if s.GPUFallbacks == 0 {
					t.Error("GPU retirement demoted no task to the CPU path")
				}
			},
		},
		{
			name: "gpu-failure-rate",
			plan: &faults.Plan{GPUFailureRate: 0.4},
			check: func(t *testing.T, s *JobStats) {
				if s.Retries == 0 {
					t.Error("0.4 GPU failure rate produced no retries")
				}
			},
		},
		{
			name: "heartbeat-loss-window",
			plan: &faults.Plan{Faults: []faults.Fault{
				{Kind: faults.HeartbeatLoss, Node: 3, At: 0.3 * float64(mapEnd), Duration: 0.4 * float64(span)},
			}},
		},
		{
			name: "straggler-slowdown",
			plan: &faults.Plan{Faults: []faults.Fault{
				{Kind: faults.Slowdown, Node: 0, At: 0, Factor: 5},
			}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stats, err := runWCFaulted(t, tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stats.Output, clean.Output) {
				t.Fatalf("output under %s differs from clean run (%d vs %d pairs)",
					tc.name, len(stats.Output), len(clean.Output))
			}
			if tc.check != nil {
				tc.check(t, stats)
			}
		})
	}
}

func TestAllNodesDeadFailsStructured(t *testing.T) {
	// Every node crashes permanently mid-run: the job must fail with a
	// structured cluster-dead error rather than hang or drain silently.
	plan := &faults.Plan{}
	for n := 0; n < 4; n++ {
		plan.Faults = append(plan.Faults, faults.Fault{Kind: faults.NodeCrash, Node: n, At: 2})
	}
	_, err := RunJob(ClusterConfig{
		Slaves: 4, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: GPUFirst, HeartbeatSec: 0.5, Seed: 7, Faults: plan,
	}, uniformExec(60, 2, 4, 10, 2))
	if err == nil {
		t.Fatal("job with every node dead reported success")
	}
	var jf *JobFailure
	if !errors.As(err, &jf) {
		t.Fatalf("error is %T, want *JobFailure: %v", err, err)
	}
	if jf.Kind != FailClusterDead {
		t.Fatalf("Kind = %v, want %v (err: %v)", jf.Kind, FailClusterDead, err)
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error chain does not reach faults.ErrInjected: %v", err)
	}
}

func TestAttemptCapFailsJobStructured(t *testing.T) {
	// A task that fails every attempt on every device must exhaust the
	// default 4 attempts and fail the whole job with a structured error.
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.TaskFail, Task: 3, Attempt: -1, Device: faults.AnyDevice},
	}}
	_, err := RunJob(ClusterConfig{
		Slaves: 2, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: GPUFirst, HeartbeatSec: 0.5, Seed: 3, Faults: plan,
	}, uniformExec(20, 0, 2, 5, 1))
	if err == nil {
		t.Fatal("permanently failing task reported success")
	}
	var jf *JobFailure
	if !errors.As(err, &jf) {
		t.Fatalf("error is %T, want *JobFailure: %v", err, err)
	}
	if jf.Kind != FailTaskAttemptsExhausted || jf.Task != 3 || jf.Attempts != 4 {
		t.Fatalf("got Kind=%v Task=%d Attempts=%d, want attempts-exhausted task 3 after 4 attempts (err: %v)",
			jf.Kind, jf.Task, jf.Attempts, err)
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error chain does not reach faults.ErrInjected: %v", err)
	}
}

// goldenCrashTrace runs a small sampled job with a crash-and-restart plan
// and returns the Chrome trace bytes plus the stats.
func goldenCrashTrace(t *testing.T) ([]byte, *JobStats) {
	t.Helper()
	rec := obs.NewRecorder()
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.NodeCrash, Node: 1, At: 6, RestartAfter: 4},
	}}
	stats, err := RunJob(ClusterConfig{
		Name: "golden-fault", Slaves: 2,
		Node:      NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: TailSched, HeartbeatSec: 0.5, Seed: 9, Faults: plan, Obs: rec,
	}, uniformExec(12, 2, 2, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.Tracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), stats
}

func TestGoldenTraceCrashRecover(t *testing.T) {
	got, stats := goldenCrashTrace(t)
	if stats.NodesLost != 1 {
		t.Fatalf("golden crash plan lost %d nodes, want 1", stats.NodesLost)
	}
	// Identical plan + seed must reproduce an identical trace byte-for-byte.
	again, _ := goldenCrashTrace(t)
	if !bytes.Equal(got, again) {
		t.Fatal("same fault plan and seed produced different traces")
	}
	golden := filepath.Join("testdata", "fault_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/mr -run GoldenTraceCrash -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace differs from %s (re-run with -update if the change is intended)", golden)
	}
}
