package mr

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
)

// runWCWorkers executes the functional wordcount job with the given worker
// count. A fresh executor is built per run so the map-output memo cache and
// prefetch state cannot leak between worker counts.
func runWCWorkers(t *testing.T, workers int, pool *sim.Pool, sched SchedulerKind, plan *faults.Plan, skip bool) (*JobStats, error) {
	t.Helper()
	exec := buildExecutor(t, 120, 4)
	gpus := 1
	if sched == CPUOnly {
		gpus = 0
	}
	return RunJob(ClusterConfig{
		Name: "wc-par", Slaves: 4,
		Node:      NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: gpus},
		Scheduler: sched, HeartbeatSec: 0.5,
		Seed: 11, Faults: plan, SkipBadRecords: skip,
		Workers: workers, Pool: pool,
	}, exec)
}

// statsString is the invariance surface at the mr level: every exported
// field of JobStats, including the full output pair list.
func statsString(s *JobStats) string { return fmt.Sprintf("%+v", *s) }

// TestParallelWorkersMatchSerialStats is the engine-level determinism
// contract: with the prefetcher active, any worker count yields JobStats
// byte-identical to the serial engine on every scheduler.
func TestParallelWorkersMatchSerialStats(t *testing.T) {
	for _, sched := range []SchedulerKind{CPUOnly, GPUFirst, TailSched} {
		t.Run(sched.String(), func(t *testing.T) {
			serial, err := runWCWorkers(t, 0, nil, sched, nil, false)
			if err != nil {
				t.Fatal(err)
			}
			want := statsString(serial)
			for _, workers := range []int{2, 4} {
				par, err := runWCWorkers(t, workers, nil, sched, nil, false)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got := statsString(par); got != want {
					t.Errorf("workers=%d stats diverge from serial\n got: %.300s\nwant: %.300s", workers, got, want)
				}
			}
		})
	}
}

// TestSharedPoolMatchesSerialStats covers the sweep path: a caller-owned
// pool shared across runs (Workers ignored) must also be byte-identical,
// and RunJob must leave it usable for the next run.
func TestSharedPoolMatchesSerialStats(t *testing.T) {
	serial, err := runWCWorkers(t, 0, nil, GPUFirst, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	pool := sim.NewPool(3)
	defer pool.Close()
	for run := 0; run < 2; run++ {
		par, err := runWCWorkers(t, 0, pool, GPUFirst, nil, false)
		if err != nil {
			t.Fatalf("shared-pool run %d: %v", run, err)
		}
		if got, want := statsString(par), statsString(serial); got != want {
			t.Errorf("shared-pool run %d diverges from serial", run)
		}
	}
}

// TestParallelWorkersMatchSerialUnderFaults drives the parallel engine
// through recovery: a node crash after map commits forces map
// re-execution, which replaces partition input slices and must invalidate
// any prefetched reduce hint (sameInputs); a restarting node re-enters
// scheduling mid-flight.
func TestParallelWorkersMatchSerialUnderFaults(t *testing.T) {
	clean, err := runWCWorkers(t, 0, nil, GPUFirst, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.NodeCrash, Node: 1, At: 0.8 * float64(clean.MapPhaseEnd), RestartAfter: 0.5 * float64(clean.Makespan)},
		{Kind: faults.TaskFail, Task: 1, Attempt: 0, Device: faults.AnyDevice},
	}}
	serial, err := runWCWorkers(t, 0, nil, GPUFirst, plan, false)
	if err != nil {
		t.Fatal(err)
	}
	if serial.MapsReexecuted == 0 {
		t.Fatal("fault plan has no teeth: no maps re-executed")
	}
	par, err := runWCWorkers(t, 4, nil, GPUFirst, plan, false)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := statsString(par), statsString(serial); got != want {
		t.Errorf("faulted parallel run diverges from serial\n got: %.300s\nwant: %.300s", got, want)
	}
}

// TestParallelWorkersMatchSerialUnderCorruption crosses the parallel
// engine with the integrity layer: corruption draws plus skip-bad-records
// disable map prefetching (ConfigureIntegrity discards hints), so the
// parallel run must fall back to on-demand computes and still match.
func TestParallelWorkersMatchSerialUnderCorruption(t *testing.T) {
	plan := &faults.Plan{CorruptRate: 0.05, PoisonRate: 0.01, Seed: 5}
	serial, err := runWCWorkers(t, 0, nil, GPUFirst, plan, true)
	if err != nil {
		t.Fatal(err)
	}
	if serial.CorruptPartitions == 0 && serial.RecordsSkipped == 0 {
		t.Fatal("corruption plan has no teeth")
	}
	par, err := runWCWorkers(t, 4, nil, GPUFirst, plan, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := statsString(par), statsString(serial); got != want {
		t.Errorf("corrupted parallel run diverges from serial\n got: %.300s\nwant: %.300s", got, want)
	}
}
