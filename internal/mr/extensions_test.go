package mr

import (
	"testing"
)

// heteroExec builds a workload on a cluster whose node 0 is much slower
// than the rest — the inter-node heterogeneity scenario the paper defers
// to future work.
func heteroExec(slaves int) *SampledExecutor {
	speeds := make([]float64, slaves)
	for i := range speeds {
		speeds[i] = 1
	}
	speeds[0] = 4 // node 0 is 4x slower
	return &SampledExecutor{
		Splits: 160, Reducers: 0, Slaves: slaves,
		CPUDur: []float64{10}, GPUDur: []float64{2},
		NodeSpeed: speeds, Jitter: 0.2,
	}
}

func TestNodeSpeedSlowsTasks(t *testing.T) {
	x := heteroExec(4)
	slow, err := x.MapTask(1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := x.MapTask(1, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 may pay a remote penalty; compare with locality factored out
	// by using a split local to both comparisons' baseline.
	if slow.Duration < 3*fast.Duration/2 {
		t.Fatalf("slow node not slower: %v vs %v", slow.Duration, fast.Duration)
	}
}

func TestSpeculativeExecutionHelpsStragglers(t *testing.T) {
	run := func(spec bool) *JobStats {
		stats, err := RunJob(ClusterConfig{
			Slaves: 4, Node: NodeConfig{MapSlots: 4, ReduceSlots: 1},
			Scheduler: CPUOnly, HeartbeatSec: 0.5,
			SpeculativeExecution: spec, Seed: 3,
		}, heteroExec(4))
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	off := run(false)
	on := run(true)
	if on.SpeculativeLaunched == 0 {
		t.Fatal("no speculative attempts launched")
	}
	if on.SpeculativeWon == 0 {
		t.Fatal("no speculative attempt won")
	}
	if on.Makespan >= off.Makespan {
		t.Fatalf("speculation did not help: %v vs %v", on.Makespan, off.Makespan)
	}
	total := on.MapsOnCPU + on.MapsOnGPU
	if total != 160 {
		t.Fatalf("completed maps = %d, want 160 (no double-counted splits)", total)
	}
}

func TestSpeculativeExecutionDeterministic(t *testing.T) {
	run := func() float64 {
		stats, err := RunJob(ClusterConfig{
			Slaves: 4, Node: NodeConfig{MapSlots: 4, ReduceSlots: 1},
			Scheduler: CPUOnly, HeartbeatSec: 0.5,
			SpeculativeExecution: true, Seed: 3,
		}, heteroExec(4))
		if err != nil {
			t.Fatal(err)
		}
		return stats.Makespan
	}
	if run() != run() {
		t.Fatal("speculative runs diverge")
	}
}

func TestSpeculationOffByDefault(t *testing.T) {
	stats, err := RunJob(ClusterConfig{
		Slaves: 2, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1},
		Scheduler: CPUOnly, HeartbeatSec: 0.5,
	}, &SampledExecutor{Splits: 20, Slaves: 2, CPUDur: []float64{5}, GPUDur: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpeculativeLaunched != 0 {
		t.Fatal("speculation ran despite being disabled (Table 3: Off)")
	}
}

func TestTailSchedulingUnderNodeHeterogeneity(t *testing.T) {
	// With one slow node and GPUs everywhere, tail scheduling must still
	// finish no later than GPU-first.
	run := func(s SchedulerKind) float64 {
		stats, err := RunJob(ClusterConfig{
			Slaves: 4, Node: NodeConfig{MapSlots: 4, ReduceSlots: 1, GPUs: 1},
			Scheduler: s, HeartbeatSec: 0.5, Seed: 9,
		}, heteroExec(4))
		if err != nil {
			t.Fatal(err)
		}
		return stats.Makespan
	}
	gf := run(GPUFirst)
	tail := run(TailSched)
	if tail > gf*1.05 {
		t.Fatalf("tail (%v) much worse than GPU-first (%v) under heterogeneity", tail, gf)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	x := &SampledExecutor{Splits: 100, Slaves: 2, CPUDur: []float64{10}, GPUDur: []float64{1}, Jitter: 0.35}
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		a, _ := x.MapTask(i, false, x.Locations(i)[0])
		b, _ := x.MapTask(i, false, x.Locations(i)[0])
		if a.Duration != b.Duration {
			t.Fatal("jitter not deterministic")
		}
		if a.Duration < 10*0.64 || a.Duration > 10*1.36 {
			t.Fatalf("jitter out of bounds: %v", a.Duration)
		}
		seen[a.Duration] = true
	}
	if len(seen) < 50 {
		t.Fatalf("jitter too coarse: %d distinct durations", len(seen))
	}
}
