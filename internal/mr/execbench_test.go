package mr_test

import (
	"testing"

	"repro/internal/mr"
	"repro/internal/workload"
)

// benchMapCore times one benchmark's map stage — a single sequential
// interpretation pass over the input — on the chosen execution core. These
// are the microbenchmarks behind the EXPERIMENTS.md VM-vs-AST table
// (hdbench -vm-report measures the same thing across all benchmarks);
// LR and BS are the compute-heavy anchors the ≥2x claim is pinned to.
func benchMapCore(b *testing.B, bench *workload.Benchmark, disableVM bool) {
	input := bench.Gen(7, 32<<10)
	job := bench.JobFor(1)
	job.DisableVM = disableVM
	cj, err := mr.CompileJob(job)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cj.MapF.Run(input); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLRMapVM(b *testing.B)     { benchMapCore(b, workload.LinearRegression(), false) }
func BenchmarkLRMapWalker(b *testing.B) { benchMapCore(b, workload.LinearRegression(), true) }
func BenchmarkBSMapVM(b *testing.B)     { benchMapCore(b, workload.BlackScholes(), false) }
func BenchmarkBSMapWalker(b *testing.B) { benchMapCore(b, workload.BlackScholes(), true) }
