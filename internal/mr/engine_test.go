package mr

import (
	"testing"
)

// uniformExec builds a simple timing-only workload.
func uniformExec(splits, reducers, slaves int, cpu, gpuDur float64) *SampledExecutor {
	return &SampledExecutor{
		Splits: splits, Reducers: reducers, Slaves: slaves,
		CPUDur: []float64{cpu}, GPUDur: []float64{gpuDur},
		MapOutputBytes: 1 << 16, ReduceCompute: 1, ShuffleGBs: 4,
	}
}

func TestAllTasksCompleteExactlyOnce(t *testing.T) {
	stats, err := RunJob(ClusterConfig{
		Slaves: 3, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: GPUFirst, HeartbeatSec: 0.5,
	}, uniformExec(100, 4, 3, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if total := stats.MapsOnCPU + stats.MapsOnGPU; total != 100 {
		t.Fatalf("completed maps = %d, want 100", total)
	}
}

func TestReduceSlowstartGatesReducers(t *testing.T) {
	// A job whose reducers are instantaneous but whose shuffle dominates:
	// the makespan must still exceed the map phase (reducers cannot finish
	// before the last map, by construction of the shuffle gate).
	stats, err := RunJob(ClusterConfig{
		Slaves: 2, Node: NodeConfig{MapSlots: 2, ReduceSlots: 2},
		Scheduler: CPUOnly, HeartbeatSec: 0.5, ReduceSlowstart: 0.2,
	}, uniformExec(40, 4, 2, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	mapPhase := 40.0 * 10 / 4 // 40 tasks, 4 slots
	if stats.Makespan < mapPhase {
		t.Fatalf("makespan %v below map phase %v: reducers finished before maps", stats.Makespan, mapPhase)
	}
}

func TestJobTailThrottleDoesNotStall(t *testing.T) {
	// Very high speedup makes jobTail cover the whole job; the throttle
	// (numGPUs assignments per heartbeat) must still complete every task.
	stats, err := RunJob(ClusterConfig{
		Slaves: 2, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: TailSched, HeartbeatSec: 0.5,
	}, uniformExec(60, 0, 2, 100, 1)) // 100x speedup
	if err != nil {
		t.Fatal(err)
	}
	if total := stats.MapsOnCPU + stats.MapsOnGPU; total != 60 {
		t.Fatalf("completed maps = %d, want 60", total)
	}
	// With a 100x GPU, nearly everything should be tail-forced to GPUs.
	if stats.MapsOnGPU < 50 {
		t.Errorf("only %d maps on GPU with 100x speedup", stats.MapsOnGPU)
	}
}

func TestHeartbeatStaggerSpreadsAssignment(t *testing.T) {
	// With as many tasks as slots and uniform durations, every node must
	// receive work (staggered heartbeats must not starve any tracker).
	stats, err := RunJob(ClusterConfig{
		Slaves: 8, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1},
		Scheduler: CPUOnly, HeartbeatSec: 1,
	}, uniformExec(16, 0, 8, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapsOnCPU != 16 {
		t.Fatalf("maps = %d", stats.MapsOnCPU)
	}
	// Makespan ~ one wave plus at most one heartbeat of skew.
	if stats.Makespan > 5+2 {
		t.Fatalf("makespan %v suggests serialized waves", stats.Makespan)
	}
}

func TestGPUQueueDrainsAfterForcedBurst(t *testing.T) {
	// Force a tail burst larger than the GPU count and ensure the queue
	// drains (job completes) rather than deadlocking.
	stats, err := RunJob(ClusterConfig{
		Slaves: 1, Node: NodeConfig{MapSlots: 1, ReduceSlots: 1, GPUs: 1},
		Scheduler: TailSched, HeartbeatSec: 0.25,
	}, uniformExec(30, 0, 1, 50, 2)) // 25x speedup, tiny cluster
	if err != nil {
		t.Fatal(err)
	}
	if total := stats.MapsOnCPU + stats.MapsOnGPU; total != 30 {
		t.Fatalf("maps = %d, want 30", total)
	}
}

func TestMaxSpeedupPropagatesToJobTracker(t *testing.T) {
	stats, err := RunJob(ClusterConfig{
		Slaves: 2, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: TailSched, HeartbeatSec: 0.5,
	}, uniformExec(80, 0, 2, 30, 3)) // 10x
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxSpeedup < 8 || stats.MaxSpeedup > 12 {
		t.Fatalf("MaxSpeedup = %v, want ~10", stats.MaxSpeedup)
	}
}

func TestFailureOnlyAffectsGPUTasks(t *testing.T) {
	stats, err := RunJob(ClusterConfig{
		Slaves: 2, Node: NodeConfig{MapSlots: 4, ReduceSlots: 1},
		Scheduler: CPUOnly, HeartbeatSec: 0.5, GPUFailureRate: 0.9, Seed: 4,
	}, uniformExec(40, 0, 2, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries != 0 {
		t.Fatalf("CPU tasks retried under GPU failure injection: %d", stats.Retries)
	}
}

func TestRequeueAfterFailureKeepsLocalityStats(t *testing.T) {
	// The 0.5 rate is extreme enough that some task can fail 4 GPU attempts
	// in a row; raise the cap so the attempt limit (tested elsewhere) does
	// not cut this requeue-accounting test short.
	stats, err := RunJob(ClusterConfig{
		Slaves: 4, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: GPUFirst, HeartbeatSec: 0.5, GPUFailureRate: 0.5, Seed: 8,
		MaxTaskAttempts: 10,
	}, uniformExec(100, 0, 4, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries == 0 {
		t.Skip("no failures drawn")
	}
	if total := stats.MapsOnCPU + stats.MapsOnGPU; total != 100 {
		t.Fatalf("maps completed = %d, want exactly 100 despite %d retries", total, stats.Retries)
	}
}

func TestSchedulerKindString(t *testing.T) {
	if CPUOnly.String() != "cpu-only" || GPUFirst.String() != "gpu-first" || TailSched.String() != "tail" {
		t.Fatal("scheduler names wrong")
	}
	if SchedulerKind(99).String() == "" {
		t.Fatal("unknown scheduler must still print")
	}
}

func TestEmptyJob(t *testing.T) {
	stats, err := RunJob(ClusterConfig{
		Slaves: 2, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1},
		Scheduler: CPUOnly, HeartbeatSec: 0.5,
	}, uniformExec(0, 0, 2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapsOnCPU != 0 || len(stats.Output) != 0 {
		t.Fatalf("empty job produced work: %+v", stats)
	}
}

func TestSingleTaskJob(t *testing.T) {
	stats, err := RunJob(ClusterConfig{
		Slaves: 4, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: GPUFirst, HeartbeatSec: 0.5,
	}, uniformExec(1, 0, 4, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapsOnCPU+stats.MapsOnGPU != 1 {
		t.Fatal("single task lost")
	}
}
