package mr

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/compiler"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/gpurt"
	"repro/internal/hdfs"
	"repro/internal/ir"
	"repro/internal/kv"
	"repro/internal/perf"
	"repro/internal/seqfile"
	"repro/internal/sim"
	"repro/internal/streaming"
)

// JobProgram bundles a benchmark's MiniC sources.
type JobProgram struct {
	Name string
	// MapSrc must carry a mapper pragma. CombineSrc (optional) carries a
	// combiner pragma. ReduceSrc (optional) is a plain streaming filter.
	MapSrc     string
	CombineSrc string
	ReduceSrc  string
	// NumReducers is the job's reduce-task count (0 = map-only).
	NumReducers int
	// DisableOpt turns off the SSA optimizer for every stage (-O0);
	// the zero value optimizes.
	DisableOpt bool
	// DisableVM turns off the register-bytecode execution core for every
	// stage (-novm); the zero value runs the VM.
	DisableVM bool
}

// CompiledJob is a JobProgram after translation.
type CompiledJob struct {
	Program  JobProgram
	MapC     *compiler.Compiled
	CombineC *compiler.Compiled // nil if no combiner
	MapF     *streaming.Filter  // CPU-side executables
	CombineF *streaming.Filter
	ReduceF  *streaming.Filter
	Schema   kv.Schema
}

// CompileJob runs the HeteroDoop translator over a job's sources, yielding
// both CPU (Hadoop Streaming) and GPU executables — the single-source
// property of the paper.
func CompileJob(p JobProgram) (*CompiledJob, error) { return CompileJobProf(p, nil) }

// CompileJobProf is CompileJob with the translation phases charged to an
// optional wall-clock profiler.
func CompileJobProf(p JobProgram, prof *perf.Profiler) (*CompiledJob, error) {
	copts := compiler.Options{Prof: prof, DisableOpt: p.DisableOpt, DisableVM: p.DisableVM}
	mapC, err := compiler.CompileOpts(p.MapSrc, copts)
	if err != nil {
		return nil, fmt.Errorf("mr: job %s mapper: %w", p.Name, err)
	}
	cj := &CompiledJob{
		Program: p,
		MapC:    mapC,
		MapF:    &streaming.Filter{Name: p.Name + "-map", Prog: mapC.HostProg, Code: mapC.VM},
		Schema:  mapC.Schema,
	}
	if p.CombineSrc != "" {
		combC, err := compiler.CompileOpts(p.CombineSrc, copts)
		if err != nil {
			return nil, fmt.Errorf("mr: job %s combiner: %w", p.Name, err)
		}
		cj.CombineC = combC
		cj.CombineF = &streaming.Filter{Name: p.Name + "-combine", Prog: combC.HostProg, Code: combC.VM}
	}
	if p.ReduceSrc != "" {
		endR := prof.Phase(perf.PhaseHostCompile)
		rf, err := streaming.NewFilter(p.Name+"-reduce", p.ReduceSrc)
		endR()
		if err != nil {
			return nil, fmt.Errorf("mr: job %s reducer: %w", p.Name, err)
		}
		if !p.DisableOpt {
			endOpt := prof.Phase(perf.PhaseOptimize)
			ir.OptimizeProgram(rf.Prog)
			endOpt()
		}
		if !p.DisableVM {
			endBC := prof.Phase(perf.PhaseBytecodeCompile)
			rf.Code = bytecode.Compile(rf.Prog)
			endBC()
		}
		cj.ReduceF = rf
	}
	return cj, nil
}

// HardwareModel bundles the per-node device and CPU models plus the write
// bandwidths shared by both task paths.
type HardwareModel struct {
	CPU    streaming.CPUModel
	Device *gpu.Device
	Opts   gpurt.Options
	// DiskWriteGBs / HDFSWriteGBs feed the output-write model.
	DiskWriteGBs float64
	HDFSWriteGBs float64
	// Prof, when non-nil, receives wall-clock phase and interpreter
	// hot-path buckets from every task this hardware model executes.
	Prof *perf.Profiler
}

// FunctionalExecutor runs every task for real: map splits come from the
// simulated HDFS, CPU tasks interpret the streaming filters, GPU tasks run
// the full Figure-1 driver, and reducers merge actual partitions. Used for
// correctness tests and small-scale experiments.
type FunctionalExecutor struct {
	Job    *CompiledJob
	FS     *hdfs.FS
	Splits []hdfs.Split
	HW     HardwareModel

	// cache memoizes per-(split, device, local) attempts so re-runs and
	// retries are cheap and deterministic.
	cache map[mapKey]MapAttempt
	// integ is the engine-pushed data-integrity config: the fault plan's
	// input poisoning plus the skip-bad-records policy.
	integ IntegrityConfig
	// pool and the prefetch tables drive parallel execution (the engine's
	// prefetcher extension). Both tables are touched only on the engine
	// goroutine; the pool workers see nothing but the pure compute
	// closures. With a serial (or absent) pool every entry point behaves
	// exactly like the pre-parallel executor.
	pool   *sim.Pool
	pre    map[mapKey]*sim.Task
	preRed map[int]*reducePrefetch
}

// mapComputed is a prefetched map attempt: the result, its error, and the
// private profiler the compute charged (merged into HW.Prof only when the
// engine actually consumes the attempt, keeping bucket counts identical
// to a serial run).
type mapComputed struct {
	attempt MapAttempt
	err     error
	prof    *perf.Profiler
}

// reducePrefetch is an outstanding reduce precomputation pinned to the
// exact input slices it was hinted with.
type reducePrefetch struct {
	inputs [][]kv.Pair
	task   *sim.Task
}

// reduceComputed is a prefetched reduce result.
type reduceComputed struct {
	work ReduceWork
	err  error
	prof *perf.Profiler
}

type mapKey struct {
	split int
	onGPU bool
	local bool
}

// NewFunctionalExecutor prepares an executor over an input path already
// written to fs.
func NewFunctionalExecutor(job *CompiledJob, fs *hdfs.FS, inputPath string, hw HardwareModel) (*FunctionalExecutor, error) {
	splits, err := fs.FileSplits(inputPath)
	if err != nil {
		return nil, err
	}
	if hw.Device == nil {
		return nil, fmt.Errorf("mr: hardware model needs a device")
	}
	return &FunctionalExecutor{Job: job, FS: fs, Splits: splits, HW: hw, cache: map[mapKey]MapAttempt{}}, nil
}

// NumSplits implements Executor.
func (x *FunctionalExecutor) NumSplits() int { return len(x.Splits) }

// NumReducers implements Executor.
func (x *FunctionalExecutor) NumReducers() int { return x.Job.Program.NumReducers }

// Locations implements Executor.
func (x *FunctionalExecutor) Locations(split int) []int { return x.Splits[split].Locations }

// ConfigureIntegrity implements the engine's optional integrity extension.
// The memo cache is reset because poisoning changes what a split's attempt
// produces, and outstanding prefetches are discarded for the same reason.
func (x *FunctionalExecutor) ConfigureIntegrity(cfg IntegrityConfig) {
	x.integ = cfg
	x.cache = map[mapKey]MapAttempt{}
	//detlint:ignore map-iteration: discard order has no observable effect
	for _, t := range x.pre {
		t.Discard()
	}
	x.pre = nil
	//detlint:ignore map-iteration: discard order has no observable effect
	for _, pr := range x.preRed {
		pr.task.Discard()
	}
	x.preRed = nil
}

// SetWorkerPool implements the engine's prefetcher extension.
func (x *FunctionalExecutor) SetWorkerPool(p *sim.Pool) { x.pool = p }

// PrefetchMaps implements the prefetcher extension: every split's
// data-local attempt is precomputed on the pool for the device classes
// the scheduler may use. Results are served (and the private profiler
// merged) when the engine requests the matching attempt; unconsumed
// prefetches are discarded wholesale, so a parallel run records exactly
// the serial run's cache misses.
func (x *FunctionalExecutor) PrefetchMaps(gpu bool) {
	if !x.pool.Parallel() || x.HW.Opts.Prof != nil {
		// An explicitly shared GPU profiler cannot be privatized per
		// attempt; stay serial rather than race on it.
		return
	}
	for split := range x.Splits {
		x.prefetchMap(split, false)
		if gpu {
			x.prefetchMap(split, true)
		}
	}
}

// prefetchMap submits one (split, device, local=true) compute.
func (x *FunctionalExecutor) prefetchMap(split int, onGPU bool) {
	key := mapKey{split: split, onGPU: onGPU, local: true}
	if _, ok := x.cache[key]; ok {
		return
	}
	if _, ok := x.pre[key]; ok {
		return
	}
	locs := x.Splits[split].Locations
	if len(locs) == 0 {
		return // no node is local to this split; the hint can never match
	}
	node := locs[0] // ReadTime depends only on locality, so any local node
	if x.pre == nil {
		x.pre = map[mapKey]*sim.Task{}
	}
	x.pre[key] = x.pool.Submit(func() any {
		var prof *perf.Profiler
		if x.HW.Prof != nil {
			prof = perf.New()
		}
		attempt, err := x.computeMap(split, onGPU, node, prof)
		return mapComputed{attempt: attempt, err: err, prof: prof}
	})
}

// PrefetchReduce implements the prefetcher extension: partition p's
// fetch/merge/reduce work is precomputed against exactly these inputs. A
// fresh hint for the same partition supersedes (and discards) the old one.
func (x *FunctionalExecutor) PrefetchReduce(p int, inputs [][]kv.Pair) {
	if !x.pool.Parallel() {
		return
	}
	if old, ok := x.preRed[p]; ok {
		old.task.Discard()
	}
	if x.preRed == nil {
		x.preRed = map[int]*reducePrefetch{}
	}
	x.preRed[p] = &reducePrefetch{
		inputs: inputs,
		task: x.pool.Submit(func() any {
			var prof *perf.Profiler
			if x.HW.Prof != nil {
				prof = perf.New()
			}
			work, err := x.computeReduce(inputs, prof)
			return reduceComputed{work: work, err: err, prof: prof}
		}),
	}
}

// sameInputs reports whether two input collections are the identical
// slices (same backing arrays in the same order) — the validity test for
// a prefetched reduce, since a map re-execution replaces its partition
// slices wholesale.
func sameInputs(a, b [][]kv.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		if len(a[i]) > 0 && &a[i][0] != &b[i][0] {
			return false
		}
	}
	return true
}

// PartitionSum implements the engine's verify-on-fetch extension: the CRC32
// of the partition under the job's KV schema, matching the sum stored at
// commit time.
func (x *FunctionalExecutor) PartitionSum(pairs []kv.Pair) uint32 {
	return seqfile.PartitionSum(x.Job.Schema, pairs)
}

// prunePoisoned applies the plan's input poisoning to a split's records
// (newline-delimited, split-relative indices — LineRecordReader semantics).
// With skip-bad-records on, poisoned lines are dropped and counted; with it
// off, the first poisoned line kills the attempt with ErrBadRecord.
func (x *FunctionalExecutor) prunePoisoned(split int, input []byte) ([]byte, int, error) {
	plan := x.integ.Plan
	if !plan.Poisons() {
		return input, 0, nil
	}
	var out []byte
	skipped := 0
	rec := 0
	for start := 0; start < len(input); rec++ {
		end := start
		for end < len(input) && input[end] != '\n' {
			end++
		}
		if end < len(input) {
			end++ // keep the newline with its record
		}
		if plan.RecordPoisoned(split, rec) {
			if !x.integ.SkipBadRecords {
				return nil, 0, fmt.Errorf("mr: map task %d record %d: %w", split, rec, faults.ErrBadRecord)
			}
			if skipped == 0 {
				// First poison: copy the clean prefix; the common
				// poison-free case stays zero-copy.
				out = append(out, input[:start]...)
			}
			skipped++
		} else if skipped > 0 {
			out = append(out, input[start:end]...)
		}
		start = end
	}
	if skipped == 0 {
		return input, 0, nil
	}
	return out, skipped, nil
}

// MapTask implements Executor. A cache hit returns the memoized attempt;
// a prefetched attempt is consumed (merging its private profiler at the
// point the serial engine would have computed, preserving bucket counts);
// anything else computes inline, exactly the serial path.
func (x *FunctionalExecutor) MapTask(split int, onGPU bool, node int) (MapAttempt, error) {
	key := mapKey{split: split, onGPU: onGPU, local: x.Splits[split].IsLocal(node)}
	if attempt, ok := x.cache[key]; ok {
		return attempt, nil
	}
	if t, ok := x.pre[key]; ok {
		delete(x.pre, key)
		r := t.Wait().(mapComputed)
		x.HW.Prof.Merge(r.prof)
		if r.err != nil {
			return MapAttempt{}, r.err
		}
		x.cache[key] = r.attempt
		return r.attempt, nil
	}
	attempt, err := x.computeMap(split, onGPU, node, x.HW.Prof)
	if err != nil {
		return MapAttempt{}, err
	}
	x.cache[key] = attempt
	return attempt, nil
}

// computeMap is the pure core of MapTask: it reads the split, prunes
// poisoned records, and runs the map (+combine) stage on the requested
// device, charging the given profiler. It touches no executor state, so
// it is safe to run on a pool worker.
func (x *FunctionalExecutor) computeMap(split int, onGPU bool, node int, prof *perf.Profiler) (MapAttempt, error) {
	sp := x.Splits[split]
	input, err := x.FS.ReadSplit(sp)
	if err != nil {
		return MapAttempt{}, err
	}
	input, skipped, err := x.prunePoisoned(split, input)
	if err != nil {
		return MapAttempt{}, err
	}
	readTime := x.FS.ReadTime(sp, node)
	var attempt MapAttempt
	if onGPU {
		opts := x.HW.Opts
		if opts.Prof == nil {
			opts.Prof = prof
		}
		res, err := gpurt.RunTask(x.HW.Device, x.Job.MapC, x.Job.CombineC, input, gpurt.TaskConfig{
			NumReducers:   x.Job.Program.NumReducers,
			Opts:          opts,
			InputReadTime: readTime,
			DiskWriteGBs:  x.HW.DiskWriteGBs,
			HDFSWriteGBs:  x.HW.HDFSWriteGBs,
		})
		if err != nil {
			return MapAttempt{}, err
		}
		attempt = MapAttempt{
			Duration:    res.Total(),
			Partitions:  res.Partitions,
			MapOutput:   res.MapOutput,
			OutputBytes: res.OutputBytes,
			GPU:         &GPUAttemptDetail{Stages: res.Times, Profiles: res.Profiles},
		}
	} else {
		res, err := streaming.RunMapTask(x.Job.MapF, x.Job.CombineF, input, streaming.MapTaskConfig{
			Schema:        x.Job.Schema,
			NumReducers:   x.Job.Program.NumReducers,
			CPU:           x.HW.CPU,
			InputReadTime: readTime,
			DiskWriteGBs:  x.HW.DiskWriteGBs,
			HDFSWriteGBs:  x.HW.HDFSWriteGBs,
			Prof:          prof,
		})
		if err != nil {
			return MapAttempt{}, err
		}
		attempt = MapAttempt{
			Duration:    res.Times.Total(),
			Partitions:  res.Partitions,
			MapOutput:   res.MapOutput,
			OutputBytes: res.OutputBytes,
		}
	}
	attempt.SkippedRecords = skipped
	if attempt.Partitions != nil {
		// Checksum-on-write: one CRC per partition, computed once per
		// cached attempt. Reducers verify on fetch.
		sums := make([]uint32, len(attempt.Partitions))
		for p, part := range attempt.Partitions {
			sums[p] = seqfile.PartitionSum(x.Job.Schema, part)
		}
		attempt.PartitionSums = sums
	}
	return attempt, nil
}

// ReduceTask implements Executor. A prefetched result is served only when
// the engine asks for exactly the hinted input slices; a mismatch (a map
// re-executed and replaced its partitions) discards the hint and computes
// inline, the serial path.
func (x *FunctionalExecutor) ReduceTask(p int, inputs [][]kv.Pair) (ReduceWork, error) {
	if pr, ok := x.preRed[p]; ok {
		delete(x.preRed, p)
		if sameInputs(pr.inputs, inputs) {
			r := pr.task.Wait().(reduceComputed)
			x.HW.Prof.Merge(r.prof)
			return r.work, r.err
		}
		pr.task.Discard()
	}
	return x.computeReduce(inputs, x.HW.Prof)
}

// computeReduce is the pure core of ReduceTask, safe on a pool worker.
func (x *FunctionalExecutor) computeReduce(inputs [][]kv.Pair, prof *perf.Profiler) (ReduceWork, error) {
	var bytes int64
	for _, in := range inputs {
		bytes += int64(len(in)) * int64(x.Job.Schema.SlotKeyLen()+x.Job.Schema.SlotValLen()+12)
	}
	out, compute, err := streaming.RunReduceProf(x.Job.ReduceF, x.Job.Schema, inputs, x.HW.CPU, prof)
	if err != nil {
		return ReduceWork{}, err
	}
	shuffle := float64(bytes) / 1e9 // fetched at ~1 GB/s aggregate
	write := float64(int64(len(out))*24) / (x.writeGBs() * 1e9)
	return ReduceWork{ShuffleTime: shuffle, ComputeTime: compute + write, Output: out}, nil
}

func (x *FunctionalExecutor) writeGBs() float64 {
	if x.HW.HDFSWriteGBs > 0 {
		return x.HW.HDFSWriteGBs
	}
	return 0.12
}

// SampledExecutor replays a handful of measured per-variant task durations
// across an arbitrarily large task count — how the cluster-scale Figure-4
// experiments keep the paper's Table-2 task counts tractable. It is
// timing-only: no functional outputs flow to the reducers.
type SampledExecutor struct {
	Splits   int
	Reducers int
	Slaves   int
	// CPUDur / GPUDur are per-variant durations; split i uses variant
	// i % len(CPUDur).
	CPUDur []float64
	GPUDur []float64
	// RemoteReadPenalty is added when the split is not node-local.
	RemoteReadPenalty float64
	// MapOutputBytes sizes the shuffle per map task.
	MapOutputBytes int64
	// ReduceCompute is the per-reducer merge+reduce+write time.
	ReduceCompute float64
	// ShuffleGBs is the reducer fetch bandwidth.
	ShuffleGBs float64
	// Jitter adds deterministic per-split duration variance (fraction of
	// the sampled duration, uniform in ±Jitter). Real fileSplits differ in
	// record mix, so task times spread; without variance, uniform tasks
	// quantize the job into lockstep waves no real cluster exhibits.
	Jitter float64
	// NodeSpeed optionally scales task durations per node (inter-node
	// heterogeneity, the paper's stated future work: a value of 2.0 makes
	// that node's tasks twice as slow). Missing/zero entries mean 1.0.
	NodeSpeed []float64
}

// nodeFactor returns the duration multiplier for a node.
func (x *SampledExecutor) nodeFactor(node int) float64 {
	if node < len(x.NodeSpeed) && x.NodeSpeed[node] > 0 {
		return x.NodeSpeed[node]
	}
	return 1
}

// jitterFactor returns the deterministic duration multiplier for a split.
func (x *SampledExecutor) jitterFactor(split int) float64 {
	if x.Jitter == 0 {
		return 1
	}
	h := uint64(split)*0x9E3779B97F4A7C15 + 0x85EBCA6B
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	u := float64(h%1_000_000) / 1_000_000 // [0,1)
	return 1 + x.Jitter*(2*u-1)
}

// NumSplits implements Executor.
func (x *SampledExecutor) NumSplits() int { return x.Splits }

// NumReducers implements Executor.
func (x *SampledExecutor) NumReducers() int { return x.Reducers }

// Locations implements Executor. Placement mimics HDFS round-robin
// primaries with two deterministic extra replicas.
func (x *SampledExecutor) Locations(split int) []int {
	if x.Slaves <= 1 {
		return []int{0}
	}
	a := split % x.Slaves
	b := (split*7 + 3) % x.Slaves
	c := (split*13 + 5) % x.Slaves
	return []int{a, b, c}
}

// MapTask implements Executor.
func (x *SampledExecutor) MapTask(split int, onGPU bool, node int) (MapAttempt, error) {
	var dur float64
	if onGPU {
		dur = x.GPUDur[split%len(x.GPUDur)]
	} else {
		dur = x.CPUDur[split%len(x.CPUDur)]
	}
	dur *= x.jitterFactor(split) * x.nodeFactor(node)
	local := false
	for _, loc := range x.Locations(split) {
		if loc == node {
			local = true
			break
		}
	}
	if !local {
		dur += x.RemoteReadPenalty
	}
	return MapAttempt{Duration: dur, OutputBytes: x.MapOutputBytes}, nil
}

// ReduceTask implements Executor.
func (x *SampledExecutor) ReduceTask(p int, inputs [][]kv.Pair) (ReduceWork, error) {
	gbs := x.ShuffleGBs
	if gbs == 0 {
		gbs = 1.0
	}
	totalBytes := float64(x.MapOutputBytes) * float64(x.Splits) / float64(max(1, x.Reducers))
	return ReduceWork{
		ShuffleTime: totalBytes / (gbs * 1e9),
		ComputeTime: x.ReduceCompute,
	}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
