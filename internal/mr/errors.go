package mr

import "fmt"

// FailureKind classifies why a job failed.
type FailureKind int

// Job failure kinds.
const (
	// FailTaskAttemptsExhausted: one map task failed MaxTaskAttempts times.
	FailTaskAttemptsExhausted FailureKind = iota
	// FailClusterDead: every TaskTracker died with no restart pending, so
	// no slot will ever run the remaining work.
	FailClusterDead
	// FailStalled: the simulation drained its event queue with work still
	// outstanding (a scheduling bug or an adversarial fault plan).
	FailStalled
	// FailBadRecord: a map attempt hit a poisoned input record with
	// skip-bad-records mode off. The poison is deterministic, so every
	// retry would crash identically; the engine fails fast instead of
	// burning MaxTaskAttempts identical attempts.
	FailBadRecord
	// FailSkipLimitExceeded: skip-bad-records mode dropped more than
	// MaxSkippedRecords poisoned records.
	FailSkipLimitExceeded
)

func (k FailureKind) String() string {
	switch k {
	case FailTaskAttemptsExhausted:
		return "task-attempts-exhausted"
	case FailClusterDead:
		return "cluster-dead"
	case FailStalled:
		return "stalled"
	case FailBadRecord:
		return "bad-record"
	case FailSkipLimitExceeded:
		return "skip-limit-exceeded"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(k))
	}
}

// JobFailure is the structured error RunJob returns when fault tolerance
// gives up on a job. Task and Node are -1 when not applicable.
type JobFailure struct {
	Kind     FailureKind
	Task     int
	Node     int
	Attempts int
	Cause    error
}

func (f *JobFailure) Error() string {
	switch f.Kind {
	case FailTaskAttemptsExhausted:
		return fmt.Sprintf("mr: job failed: map task %d failed %d attempts (last on node %d): %v",
			f.Task, f.Attempts, f.Node, f.Cause)
	case FailClusterDead:
		return "mr: job failed: every TaskTracker is dead and none will restart"
	case FailBadRecord:
		return fmt.Sprintf("mr: job failed: map task %d read a poisoned record (skip-bad-records off): %v",
			f.Task, f.Cause)
	case FailSkipLimitExceeded:
		return fmt.Sprintf("mr: job failed: skipped %d bad records, over the job's skip limit: %v",
			f.Attempts, f.Cause)
	default:
		return fmt.Sprintf("mr: job failed (%v): %v", f.Kind, f.Cause)
	}
}

func (f *JobFailure) Unwrap() error { return f.Cause }
