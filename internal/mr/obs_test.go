package mr

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/kv"
	"repro/internal/obs"
	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runWCTail executes the functional wordcount job under tail scheduling
// with the given recorder and returns its stats plus the executor used.
func runWCTail(t *testing.T, rec *obs.Recorder) (*JobStats, *FunctionalExecutor) {
	t.Helper()
	exec := buildExecutor(t, 120, 4)
	stats, err := RunJob(ClusterConfig{
		Name: "wordcount", Slaves: 4,
		Node:      NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: TailSched, HeartbeatSec: 0.001, Seed: 11, Obs: rec,
	}, exec)
	if err != nil {
		t.Fatal(err)
	}
	return stats, exec
}

// attrJSON returns a span attribute's raw JSON value ("" when absent).
func attrJSON(s *obs.Span, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.JSON
		}
	}
	return ""
}

func TestTraceStructureWordcountTail(t *testing.T) {
	rec := obs.NewRecorder()
	stats, exec := runWCTail(t, rec)

	var buf bytes.Buffer
	if err := rec.Tracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	spans := rec.Tracer().Spans()
	cats := map[string]bool{}
	wins := map[int]int{}
	for i := range spans {
		s := &spans[i]
		cats[s.Cat] = true
		if s.Begin < 0 || s.End < s.Begin {
			t.Fatalf("span %s/%s has non-monotonic times [%v, %v]", s.Cat, s.Name, s.Begin, s.End)
		}
		switch s.Cat {
		case obs.CatMapCPU, obs.CatMapGPU, obs.CatSpeculative:
			if attrJSON(s, "state") == `"won"` {
				split, err := strconv.Atoi(attrJSON(s, "split"))
				if err != nil {
					t.Fatalf("map span without split attr: %+v", s)
				}
				wins[split]++
			}
		}
	}
	if len(cats) < 5 {
		t.Fatalf("only %d span categories recorded: %v", len(cats), cats)
	}
	for _, c := range []string{obs.CatJob, obs.CatHeartbeat, obs.CatShuffle, obs.CatReduce} {
		if !cats[c] {
			t.Fatalf("category %s missing from trace (have %v)", c, cats)
		}
	}
	for split := 0; split < exec.NumSplits(); split++ {
		if wins[split] != 1 {
			t.Fatalf("split %d covered by %d winning spans, want exactly 1", split, wins[split])
		}
	}
	if stats.MapsOnGPU > 0 && !cats[obs.CatKernel] {
		t.Fatal("GPU maps ran but no kernel sub-spans were recorded")
	}
	if stats.MapPhaseEnd <= 0 || stats.MapPhaseEnd > stats.Makespan {
		t.Fatalf("MapPhaseEnd %v outside (0, makespan %v]", stats.MapPhaseEnd, stats.Makespan)
	}

	var prom bytes.Buffer
	if err := rec.Metrics().WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	dump := prom.String()
	for _, want := range []string{
		`mr_map_duration_seconds_bucket{device="gpu",sched="tail",le=`,
		`mr_map_duration_seconds_bucket{device="cpu",sched="tail",le=`,
		`gpu_kernel_cycles_total{kernel="map",space="global"}`,
		`mr_heartbeats_total{sched="tail"}`,
	} {
		if !strings.Contains(dump, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, dump)
		}
	}
}

func TestTraceAndMetricsDeterministic(t *testing.T) {
	dump := func() (string, string) {
		rec := obs.NewRecorder()
		runWCTail(t, rec)
		var tr, pm bytes.Buffer
		if err := rec.Tracer().WriteChromeTrace(&tr); err != nil {
			t.Fatal(err)
		}
		if err := rec.Metrics().WriteProm(&pm); err != nil {
			t.Fatal(err)
		}
		return tr.String(), pm.String()
	}
	t1, p1 := dump()
	t2, p2 := dump()
	if t1 != t2 {
		t.Fatal("same seed produced different traces")
	}
	if p1 != p2 {
		t.Fatal("same seed produced different metrics dumps")
	}
}

func TestObservabilityDoesNotChangeJobStats(t *testing.T) {
	run := func(rec *obs.Recorder) *JobStats {
		stats, err := RunJob(ClusterConfig{
			Slaves: 2, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
			Scheduler: TailSched, HeartbeatSec: 0.5, Seed: 5, Obs: rec,
		}, uniformExec(60, 2, 2, 10, 2))
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	plain := run(nil)
	observed := run(obs.NewRecorder())
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("recorder changed JobStats:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
}

func TestGoldenTraceTailSampled(t *testing.T) {
	rec := obs.NewRecorder()
	_, err := RunJob(ClusterConfig{
		Name: "golden", Slaves: 2,
		Node:      NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: TailSched, HeartbeatSec: 0.5, Seed: 9, Obs: rec,
	}, uniformExec(12, 2, 2, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.Tracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "tail_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/mr -run Golden -update`): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace differs from %s (re-run with -update if the change is intended)", golden)
	}
}

// locExec is a minimal Executor exposing only split locations, for driving
// the jobTracker index directly.
type locExec struct {
	locs [][]int
}

func (x *locExec) NumSplits() int            { return len(x.locs) }
func (x *locExec) NumReducers() int          { return 0 }
func (x *locExec) Locations(split int) []int { return x.locs[split] }
func (x *locExec) MapTask(split int, onGPU bool, node int) (MapAttempt, error) {
	return MapAttempt{Duration: 1}, nil
}
func (x *locExec) ReduceTask(p int, inputs [][]kv.Pair) (ReduceWork, error) {
	return ReduceWork{}, nil
}

// refTracker is the pre-index O(pending x locations) takeMap, kept as the
// behavioral reference for the indexed implementation.
type refTracker struct {
	pending    []int
	pendingSet map[int]bool
	exec       Executor
}

func (rt *refTracker) takeMap(node int) (int, bool, bool) {
	if len(rt.pending) == 0 {
		return 0, false, false
	}
	for i, split := range rt.pending {
		for _, loc := range rt.exec.Locations(split) {
			if loc == node {
				rt.pending = append(rt.pending[:i], rt.pending[i+1:]...)
				delete(rt.pendingSet, split)
				return split, true, true
			}
		}
	}
	split := rt.pending[0]
	rt.pending = rt.pending[1:]
	delete(rt.pendingSet, split)
	return split, false, true
}

func (rt *refTracker) requeue(split int) {
	if !rt.pendingSet[split] {
		rt.pending = append(rt.pending, split)
		rt.pendingSet[split] = true
	}
}

func TestTakeMapIndexMatchesReferenceScan(t *testing.T) {
	const slaves = 5
	const splits = 300
	rng := sim.NewRNG(99)
	exec := &locExec{}
	for i := 0; i < splits; i++ {
		a := int(rng.Uint64() % slaves)
		b := int(rng.Uint64() % slaves)
		exec.locs = append(exec.locs, []int{a, b})
	}
	cfg := ClusterConfig{Slaves: slaves, Node: NodeConfig{MapSlots: 1}}
	jt := newJobTracker(cfg, exec)
	ref := &refTracker{pendingSet: map[int]bool{}, exec: exec}
	for i := 0; i < splits; i++ {
		ref.pending = append(ref.pending, i)
		ref.pendingSet[i] = true
	}

	var taken []int
	for step := 0; step < 4*splits; step++ {
		switch {
		case len(taken) > 0 && rng.Uint64()%4 == 0:
			// Requeue a previously taken split (failure path) in both.
			i := int(rng.Uint64() % uint64(len(taken)))
			split := taken[i]
			taken = append(taken[:i], taken[i+1:]...)
			jt.requeue(split)
			ref.requeue(split)
		default:
			node := int(rng.Uint64() % slaves)
			gs, gl, gok := jt.takeMap(node)
			ws, wl, wok := ref.takeMap(node)
			if gs != ws || gl != wl || gok != wok {
				t.Fatalf("step %d node %d: indexed (%d,%v,%v) != reference (%d,%v,%v)",
					step, node, gs, gl, gok, ws, wl, wok)
			}
			if gok {
				taken = append(taken, gs)
			}
		}
	}
	if jt.pendingCount() != len(ref.pending) {
		t.Fatalf("pending count drifted: indexed %d, reference %d", jt.pendingCount(), len(ref.pending))
	}
}

func TestTakeMapMakespanMatchesReferencePlacement(t *testing.T) {
	// The same jobs the engine tests run must produce identical makespans
	// across two runs (the index is deterministic), and every placement
	// statistic must be stable.
	run := func() *JobStats {
		stats, err := RunJob(ClusterConfig{
			Slaves: 4, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
			Scheduler: TailSched, HeartbeatSec: 0.5, Seed: 3, GPUFailureRate: 0.2,
		}, uniformExec(150, 4, 4, 10, 2))
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic placement:\n%+v\nvs\n%+v", a, b)
	}
	if a.DataLocalMaps < 0 || a.MapsOnCPU+a.MapsOnGPU != 150 {
		t.Fatalf("bad placement stats: %+v", a)
	}
}

func TestGPUQueueDepthBounded(t *testing.T) {
	rec := obs.NewRecorder()
	const gpus = 2
	stats, err := RunJob(ClusterConfig{
		Slaves: 1, Node: NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: gpus},
		Scheduler: GPUFirst, HeartbeatSec: 0.5, Obs: rec,
	}, uniformExec(100, 0, 1, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	// With prefetch computed from busy GPU slots, the driver queue never
	// holds more than one waiting task per GPU.
	if stats.GPUQueuePeak > gpus {
		t.Fatalf("GPU queue peaked at %d, want <= %d", stats.GPUQueuePeak, gpus)
	}
	g := rec.Metrics().Gauge("mr_gpu_queue_depth", "", obs.L("sched", "gpu-first"))
	if g.Value() != 0 {
		t.Fatalf("queue depth gauge ended at %v, want 0 (all drained)", g.Value())
	}
	if int(g.Peak()) != stats.GPUQueuePeak {
		t.Fatalf("gauge peak %v != stats peak %d", g.Peak(), stats.GPUQueuePeak)
	}
	if stats.GPUQueuePeak > 0 && stats.GPUQueueWaitSec <= 0 {
		t.Fatal("tasks queued but no wait time accounted")
	}
}
