package mr

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/hdfs"
)

// runWCIntegrity is runWCFaulted with the skip-bad-records policy exposed.
func runWCIntegrity(t *testing.T, plan *faults.Plan, skip bool, maxSkip int) (*JobStats, error) {
	t.Helper()
	exec := buildExecutor(t, 300, 4)
	return RunJob(ClusterConfig{
		Name: "wc-integrity", Slaves: 4,
		Node:      NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: GPUFirst, HeartbeatSec: 0.001, HeartbeatExpirySec: 0.005,
		Seed: 11, Faults: plan,
		SkipBadRecords: skip, MaxSkippedRecords: maxSkip,
	}, exec)
}

// TestCorruptionPlansPreserveOutput is the data-integrity headline: under
// any recoverable corruption or fetch-failure plan the job output is
// byte-identical to the clean run's, and the recovery machinery (checksum
// rejection, fetch-failure reports, output re-execution) actually fired.
func TestCorruptionPlansPreserveOutput(t *testing.T) {
	clean, err := runWCFaulted(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Output) == 0 {
		t.Fatal("clean run produced no output")
	}

	cases := []struct {
		name  string
		plan  *faults.Plan
		check func(t *testing.T, s *JobStats)
	}{
		{
			name: "corrupt-one-partition",
			plan: &faults.Plan{Faults: []faults.Fault{
				{Kind: faults.MapOutputCorrupt, Task: 3, Attempt: 0, Part: 0},
			}},
			check: func(t *testing.T, s *JobStats) {
				if s.CorruptPartitions == 0 {
					t.Error("checksum verification rejected no fetch")
				}
				if s.MapOutputsLost == 0 {
					t.Error("fetch-failure reports never declared the corrupt output lost")
				}
				if s.MapsReexecuted == 0 {
					t.Error("lost output was never re-executed")
				}
			},
		},
		{
			name: "corrupt-whole-output-first-attempt",
			plan: &faults.Plan{Faults: []faults.Fault{
				{Kind: faults.MapOutputCorrupt, Task: 1, Attempt: 0, Part: -1},
			}},
			check: func(t *testing.T, s *JobStats) {
				if s.CorruptPartitions == 0 {
					t.Error("whole-output corruption rejected no fetch")
				}
				if s.MapOutputsLost == 0 {
					t.Error("corrupt output was never declared lost")
				}
			},
		},
		{
			name: "fetch-fail-transient",
			plan: &faults.Plan{Faults: []faults.Fault{
				{Kind: faults.FetchFail, Task: 2, Part: 1, Times: 2},
			}},
			check: func(t *testing.T, s *JobStats) {
				if s.FetchFailures < 2 {
					t.Errorf("FetchFailures = %d, want >= 2", s.FetchFailures)
				}
				if s.Refetches == 0 {
					t.Error("transient fetch failures caused no refetch")
				}
				// Two failures sit under the FetchRetries=3 report
				// threshold: the retry must succeed without escalation.
				if s.MapOutputsLost != 0 {
					t.Errorf("MapOutputsLost = %d, want 0 (failures below report threshold)", s.MapOutputsLost)
				}
			},
		},
		{
			name: "fetch-fail-until-output-lost",
			plan: &faults.Plan{Faults: []faults.Fault{
				{Kind: faults.FetchFail, Task: 0, Part: 0, Times: 9},
			}},
			check: func(t *testing.T, s *JobStats) {
				// 9 consecutive failures = 3 reports = the notices
				// threshold: the JobTracker must re-execute the map.
				if s.MapOutputsLost == 0 {
					t.Error("sustained fetch failures never declared the output lost")
				}
				if s.MapsReexecuted == 0 {
					t.Error("lost output was never re-executed")
				}
			},
		},
		{
			name: "background-corruption-rate",
			plan: &faults.Plan{CorruptRate: 0.05, Seed: 5},
			check: func(t *testing.T, s *JobStats) {
				if s.CorruptPartitions == 0 {
					t.Error("5% corruption rate rejected no fetch")
				}
			},
		},
		{
			name: "background-fetch-failure-rate",
			plan: &faults.Plan{FetchFailRate: 0.05, Seed: 6},
			check: func(t *testing.T, s *JobStats) {
				if s.FetchFailures == 0 {
					t.Error("5% fetch-failure rate failed no fetch")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stats, err := runWCFaulted(t, tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stats.Output, clean.Output) {
				t.Fatalf("output under %s differs from clean run (%d vs %d pairs)",
					tc.name, len(stats.Output), len(clean.Output))
			}
			if tc.check != nil {
				tc.check(t, stats)
			}
		})
	}
}

// TestSkipBadRecordsExactness pins the skip-mode accounting: poisoning
// records 2 and 5 of split 0 with skip-bad-records on must produce exactly
// the output of a clean run over the input with those two lines removed,
// and RecordsSkipped must count exactly 2.
func TestSkipBadRecordsExactness(t *testing.T) {
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.InputCorrupt, Task: 0, Record: 2},
		{Kind: faults.InputCorrupt, Task: 0, Record: 5},
	}}
	stats, err := runWCIntegrity(t, plan, true, 0)
	if err != nil {
		t.Fatalf("skip-mode run failed: %v", err)
	}
	if stats.RecordsSkipped != 2 {
		t.Errorf("RecordsSkipped = %d, want 2", stats.RecordsSkipped)
	}

	// Split 0 starts at byte 0, so its record indices are global line
	// indices: the reference run uses the corpus minus lines 2 and 5.
	lines := bytes.SplitAfter(corpus(300), []byte("\n"))
	var pruned []byte
	for i, ln := range lines {
		if i == 2 || i == 5 {
			continue
		}
		pruned = append(pruned, ln...)
	}
	fs, err := hdfs.New(hdfs.Config{
		BlockSize: 512, Replication: 2, DataNodes: 4,
		DiskReadGBs: 0.5, DiskWriteGBs: 0.25, NetworkGBs: 2, SeekMS: 2,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/input", pruned); err != nil {
		t.Fatal(err)
	}
	exec, err := NewFunctionalExecutor(wcJob(t), fs, "/input", testHW(t))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunJob(ClusterConfig{
		Name: "wc-pruned", Slaves: 4,
		Node:      NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: GPUFirst, HeartbeatSec: 0.001, HeartbeatExpirySec: 0.005,
		Seed: 11,
	}, exec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats.Output, ref.Output) {
		t.Fatalf("skip-mode output differs from clean run over pruned input (%d vs %d pairs)",
			len(stats.Output), len(ref.Output))
	}
}

// TestPoisonWithoutSkipFailsStructured: with skip-bad-records off a
// poisoned record must fail the job fast with a structured bad-record
// error — the poison draw is deterministic, so retrying is pointless.
func TestPoisonWithoutSkipFailsStructured(t *testing.T) {
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.InputCorrupt, Task: 0, Record: 1},
	}}
	_, err := runWCIntegrity(t, plan, false, 0)
	if err == nil {
		t.Fatal("poisoned record with skip mode off reported success")
	}
	var jf *JobFailure
	if !errors.As(err, &jf) {
		t.Fatalf("error is %T, want *JobFailure: %v", err, err)
	}
	if jf.Kind != FailBadRecord || jf.Task != 0 {
		t.Fatalf("got Kind=%v Task=%d, want bad-record task 0 (err: %v)", jf.Kind, jf.Task, err)
	}
	if !errors.Is(err, faults.ErrBadRecord) {
		t.Fatalf("error chain does not reach faults.ErrBadRecord: %v", err)
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error chain does not reach faults.ErrInjected: %v", err)
	}
}

// TestSkipLimitExceededFailsStructured: skip mode is bounded — more
// poisoned records than MaxSkippedRecords fails the job with exact
// accounting of how many were dropped.
func TestSkipLimitExceededFailsStructured(t *testing.T) {
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.InputCorrupt, Task: 0, Record: 0},
		{Kind: faults.InputCorrupt, Task: 0, Record: 3},
	}}
	_, err := runWCIntegrity(t, plan, true, 1)
	if err == nil {
		t.Fatal("job over the skip limit reported success")
	}
	var jf *JobFailure
	if !errors.As(err, &jf) {
		t.Fatalf("error is %T, want *JobFailure: %v", err, err)
	}
	if jf.Kind != FailSkipLimitExceeded || jf.Attempts != 2 {
		t.Fatalf("got Kind=%v Attempts=%d, want skip-limit-exceeded with 2 skipped (err: %v)",
			jf.Kind, jf.Attempts, err)
	}
	if !errors.Is(err, faults.ErrBadRecord) {
		t.Fatalf("error chain does not reach faults.ErrBadRecord: %v", err)
	}
}

// TestPermanentCorruptionFailsStructured: an output corrupt on every
// attempt exhausts MaxTaskAttempts through the fetch-failure path and
// fails the job with the corruption cause in the error chain.
func TestPermanentCorruptionFailsStructured(t *testing.T) {
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.MapOutputCorrupt, Task: 2, Attempt: -1, Part: -1},
	}}
	_, err := runWCFaulted(t, plan)
	if err == nil {
		t.Fatal("permanently corrupt map output reported success")
	}
	var jf *JobFailure
	if !errors.As(err, &jf) {
		t.Fatalf("error is %T, want *JobFailure: %v", err, err)
	}
	if jf.Kind != FailTaskAttemptsExhausted || jf.Task != 2 {
		t.Fatalf("got Kind=%v Task=%d, want attempts-exhausted task 2 (err: %v)", jf.Kind, jf.Task, err)
	}
	if !errors.Is(err, faults.ErrCorruptOutput) {
		t.Fatalf("error chain does not reach faults.ErrCorruptOutput: %v", err)
	}
}

// TestIntegrityMachineryFreeOnCleanPath: checksum-on-write plus
// verify-on-fetch must cost nothing on the simulated clock and leave every
// integrity counter at zero when nothing is corrupt — an empty fault plan
// (verification armed, nothing injected) must reproduce the nil-plan run
// exactly.
func TestIntegrityMachineryFreeOnCleanPath(t *testing.T) {
	clean, err := runWCFaulted(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	armed, err := runWCFaulted(t, &faults.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if armed.Makespan != clean.Makespan {
		t.Errorf("verification changed the makespan: %g vs %g", armed.Makespan, clean.Makespan)
	}
	if !reflect.DeepEqual(armed.Output, clean.Output) {
		t.Error("verification changed the output")
	}
	for _, s := range []*JobStats{clean, armed} {
		if s.FetchFailures != 0 || s.CorruptPartitions != 0 || s.Refetches != 0 ||
			s.MapOutputsLost != 0 || s.RecordsSkipped != 0 {
			t.Errorf("clean run shows integrity activity: fetchfail=%d corrupt=%d refetch=%d lost=%d skipped=%d",
				s.FetchFailures, s.CorruptPartitions, s.Refetches, s.MapOutputsLost, s.RecordsSkipped)
		}
	}
}
