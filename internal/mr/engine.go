package mr

import (
	"fmt"
	"sort"

	"repro/internal/kv"
	"repro/internal/sim"
)

// RunJob executes a job on the simulated cluster and returns its stats.
func RunJob(cfg ClusterConfig, exec Executor) (*JobStats, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &engine{
		cfg:        cfg,
		exec:       exec,
		eng:        sim.NewEngine(),
		rng:        sim.NewRNG(cfg.Seed),
		stats:      &JobStats{},
		jt:         newJobTracker(cfg, exec),
		slaves:     make([]*taskTracker, cfg.Slaves),
		attempts:   map[int][]*attemptRun{},
		splitDone:  make([]bool, exec.NumSplits()),
		speculated: map[int]bool{},
	}
	e.eng.SetEventLimit(50_000_000)
	for n := 0; n < cfg.Slaves; n++ {
		e.slaves[n] = &taskTracker{
			node:    n,
			cpuFree: cfg.Node.MapSlots,
			gpuFree: cfg.Node.GPUs,
			redFree: cfg.Node.ReduceSlots,
			speedup: 0,
		}
	}
	// Stagger initial heartbeats deterministically across the interval.
	for n := 0; n < cfg.Slaves; n++ {
		node := n
		offset := cfg.HeartbeatSec * float64(n) / float64(cfg.Slaves)
		e.eng.At(sim.Time(offset), func() { e.heartbeat(node) })
	}
	e.eng.Run()
	if !e.jt.done() {
		return nil, fmt.Errorf("mr: job did not complete (maps %d/%d, reduces %d/%d)",
			e.jt.mapsDone, exec.NumSplits(), e.jt.reducesDone, exec.NumReducers())
	}
	e.stats.Makespan = float64(e.finish)
	e.stats.MaxSpeedup = e.jt.maxSpeedup
	e.collectOutput()
	if e.err != nil {
		return nil, e.err
	}
	return e.stats, nil
}

type engine struct {
	cfg    ClusterConfig
	exec   Executor
	eng    *sim.Engine
	rng    *sim.RNG
	stats  *JobStats
	jt     *jobTracker
	slaves []*taskTracker
	finish sim.Time
	err    error

	cpuDurSum, gpuDurSum float64
	cpuDurN, gpuDurN     int

	// attempts tracks in-flight executions per split (more than one when
	// speculative execution launches a backup).
	attempts   map[int][]*attemptRun
	splitDone  []bool
	speculated map[int]bool
}

// attemptRun is one in-flight map task attempt.
type attemptRun struct {
	split       int
	tt          *taskTracker
	onGPU       bool
	speculative bool
	ev          *sim.Event
}

// jobTracker tracks pending/completed work and the cluster-wide speedup.
type jobTracker struct {
	cfg          ClusterConfig
	pending      []int // pending map split ids
	pendingSet   map[int]bool
	mapsDone     int
	totalMaps    int
	reducesDone  int
	totalReduces int
	maxSpeedup   float64

	// mapResults holds functional outputs per split.
	mapResults []MapAttempt
	// reduceOut holds functional reduce outputs per partition.
	reduceOut [][]kv.Pair
	// reducesAssigned marks launched reduce tasks.
	reducesAssigned []bool
	// pendingShuffles are reduce tasks waiting for all maps to finish.
	lastMapDone sim.Time
}

func newJobTracker(cfg ClusterConfig, exec Executor) *jobTracker {
	jt := &jobTracker{
		cfg:             cfg,
		totalMaps:       exec.NumSplits(),
		totalReduces:    exec.NumReducers(),
		pendingSet:      map[int]bool{},
		mapResults:      make([]MapAttempt, exec.NumSplits()),
		reduceOut:       make([][]kv.Pair, exec.NumReducers()),
		reducesAssigned: make([]bool, exec.NumReducers()),
		maxSpeedup:      1,
	}
	for i := 0; i < jt.totalMaps; i++ {
		jt.pending = append(jt.pending, i)
		jt.pendingSet[i] = true
	}
	return jt
}

func (jt *jobTracker) remainingMaps() int { return jt.totalMaps - jt.mapsDone }

func (jt *jobTracker) done() bool {
	return jt.mapsDone == jt.totalMaps && jt.reducesDone == jt.totalReduces
}

// takeMap removes and returns a pending map task, preferring node-local
// splits (data locality, paper §2.2).
func (jt *jobTracker) takeMap(exec Executor, node int) (int, bool, bool) {
	if len(jt.pending) == 0 {
		return 0, false, false
	}
	for i, split := range jt.pending {
		for _, loc := range exec.Locations(split) {
			if loc == node {
				jt.pending = append(jt.pending[:i], jt.pending[i+1:]...)
				delete(jt.pendingSet, split)
				return split, true, true
			}
		}
	}
	split := jt.pending[0]
	jt.pending = jt.pending[1:]
	delete(jt.pendingSet, split)
	return split, false, true
}

// requeue returns a failed task to the pending queue.
func (jt *jobTracker) requeue(split int) {
	if !jt.pendingSet[split] {
		jt.pending = append(jt.pending, split)
		jt.pendingSet[split] = true
	}
}

// taskTracker is one slave's state.
type taskTracker struct {
	node    int
	cpuFree int
	gpuFree int
	redFree int
	// gpuQueue holds tail-forced tasks waiting for a GPU slot.
	gpuQueue []int
	// Speedup bookkeeping (average GPU speedup over a CPU slot).
	cpuSum, gpuSum float64
	cpuN, gpuN     int
	speedup        float64
	// numMapsRemainingPerNode from the last heartbeat response.
	remainingPerNode float64
}

func (tt *taskTracker) observe(duration float64, onGPU bool) {
	if onGPU {
		tt.gpuSum += duration
		tt.gpuN++
	} else {
		tt.cpuSum += duration
		tt.cpuN++
	}
	if tt.cpuN > 0 && tt.gpuN > 0 && tt.gpuSum > 0 {
		tt.speedup = (tt.cpuSum / float64(tt.cpuN)) / (tt.gpuSum / float64(tt.gpuN))
	}
}

// heartbeat is one TaskTracker->JobTracker exchange (paper §2.2): status
// goes up, task assignments come down.
func (e *engine) heartbeat(node int) {
	if e.err != nil || e.jt.done() {
		return
	}
	tt := e.slaves[node]
	jt := e.jt

	// Report speedup; the JobTracker remembers the maximum (Algorithm 2).
	if tt.speedup > jt.maxSpeedup {
		jt.maxSpeedup = tt.speedup
	}

	// TailScheduleOnJT: decide how many tasks to hand this tracker. One
	// task per GPU may be prefetched into the driver's queue so the GPU
	// never idles across a heartbeat gap (the GPU driver fetches new tasks
	// eagerly, paper §5.1).
	prefetch := e.cfg.Node.GPUs - len(tt.gpuQueue)
	if prefetch < 0 {
		prefetch = 0
	}
	free := tt.cpuFree + tt.gpuFree + prefetch
	if e.cfg.Scheduler == TailSched {
		jobTail := float64(e.cfg.Node.GPUs) * jt.maxSpeedup * float64(e.cfg.Slaves)
		if float64(jt.remainingMaps()) <= jobTail {
			// Job tail: at most numGPUs tasks per heartbeat so forced
			// queues stay short.
			free = e.cfg.Node.GPUs
		}
	}
	tt.remainingPerNode = float64(jt.remainingMaps()) / float64(e.cfg.Slaves)

	for i := 0; i < free; i++ {
		split, local, ok := jt.takeMap(e.exec, node)
		if !ok {
			break
		}
		if local {
			e.stats.DataLocalMaps++
		}
		e.placeMap(tt, split)
	}

	// Speculative execution: back up stragglers once the queue drains.
	if e.cfg.SpeculativeExecution && len(jt.pending) == 0 && jt.remainingMaps() > 0 {
		e.trySpeculate(tt)
	}

	// Reduce scheduling after slow start.
	if jt.totalReduces > 0 && float64(jt.mapsDone) >= e.cfg.ReduceSlowstart*float64(jt.totalMaps) {
		for p := 0; p < jt.totalReduces && tt.redFree > 0; p++ {
			if jt.reducesAssigned[p] {
				continue
			}
			jt.reducesAssigned[p] = true
			tt.redFree--
			e.launchReduce(tt, p)
		}
	}

	e.eng.After(sim.Duration(e.cfg.HeartbeatSec), func() { e.heartbeat(node) })
}

// placeMap applies the TaskTracker-side policy (TailScheduleOnTT).
func (e *engine) placeMap(tt *taskTracker, split int) {
	switch e.cfg.Scheduler {
	case CPUOnly:
		e.startMap(tt, split, false)
	case GPUFirst:
		if tt.gpuFree > 0 {
			e.startMap(tt, split, true)
		} else if tt.cpuFree > 0 {
			e.startMap(tt, split, false)
		} else {
			// Over-assigned; wait on the GPU queue.
			tt.gpuQueue = append(tt.gpuQueue, split)
		}
	case TailSched:
		taskTail := float64(e.cfg.Node.GPUs) * tt.speedup
		if tt.speedup > 0 && tt.remainingPerNode <= taskTail {
			// Task tail: force GPU execution even if the GPU is busy.
			e.stats.ForcedGPUTasks++
			if tt.gpuFree > 0 {
				e.startMap(tt, split, true)
			} else {
				tt.gpuQueue = append(tt.gpuQueue, split)
			}
			return
		}
		if tt.gpuFree > 0 {
			e.startMap(tt, split, true)
		} else if tt.cpuFree > 0 {
			e.startMap(tt, split, false)
		} else {
			tt.gpuQueue = append(tt.gpuQueue, split)
		}
	}
}

// startMap occupies a slot and schedules the task's completion.
func (e *engine) startMap(tt *taskTracker, split int, onGPU bool) {
	e.startAttempt(tt, split, onGPU, false)
}

func (e *engine) startAttempt(tt *taskTracker, split int, onGPU, speculative bool) {
	if e.err != nil {
		return
	}
	attempt, err := e.exec.MapTask(split, onGPU, tt.node)
	if err != nil {
		e.fail(fmt.Errorf("mr: map task %d on node %d: %w", split, tt.node, err))
		return
	}
	if onGPU {
		tt.gpuFree--
	} else {
		tt.cpuFree--
	}
	// Fault injection: a GPU attempt may fail partway; the driver reports
	// the failure and Hadoop reschedules the task (paper §5.1).
	failed := onGPU && e.cfg.GPUFailureRate > 0 && e.rng.Float64() < e.cfg.GPUFailureRate
	duration := attempt.Duration
	if failed {
		duration *= 0.5 // detected mid-task
	}
	run := &attemptRun{split: split, tt: tt, onGPU: onGPU, speculative: speculative}
	e.attempts[split] = append(e.attempts[split], run)
	run.ev = e.eng.After(sim.Duration(duration), func() {
		if onGPU {
			tt.gpuFree++
		} else {
			tt.cpuFree++
		}
		e.dropAttempt(run)
		switch {
		case e.splitDone[split]:
			// A sibling attempt already finished; nothing to record.
		case failed:
			e.stats.Retries++
			if len(e.attempts[split]) == 0 {
				e.jt.requeue(split)
			}
		default:
			e.splitDone[split] = true
			if speculative {
				e.stats.SpeculativeWon++
			}
			// Kill the losing sibling attempts and free their slots
			// (Hadoop kills the slower attempt when one commits).
			for _, o := range e.attempts[split] {
				o.ev.Cancel()
				if o.onGPU {
					o.tt.gpuFree++
				} else {
					o.tt.cpuFree++
				}
				e.drainGPUQueue(o.tt)
			}
			delete(e.attempts, split)
			e.completeMap(tt, split, onGPU, attempt)
		}
		e.drainGPUQueue(tt)
	})
}

// dropAttempt removes a finished attempt from its split's list.
func (e *engine) dropAttempt(run *attemptRun) {
	runs := e.attempts[run.split]
	for i, o := range runs {
		if o == run {
			e.attempts[run.split] = append(runs[:i], runs[i+1:]...)
			break
		}
	}
	if len(e.attempts[run.split]) == 0 {
		delete(e.attempts, run.split)
	}
}

// drainGPUQueue starts a queued forced-GPU task if a slot is free.
func (e *engine) drainGPUQueue(tt *taskTracker) {
	if tt.gpuFree > 0 && len(tt.gpuQueue) > 0 {
		next := tt.gpuQueue[0]
		tt.gpuQueue = tt.gpuQueue[1:]
		e.startMap(tt, next, true)
	}
}

// trySpeculate launches one backup attempt on an idle CPU slot of tt when
// the pending queue is empty and a running task would finish later than a
// fresh local run would (the speculative-execution extension).
func (e *engine) trySpeculate(tt *taskTracker) {
	if tt.cpuFree <= 0 {
		return
	}
	now := float64(e.eng.Now())
	var best int = -1
	var bestGain float64
	for split := 0; split < len(e.splitDone); split++ {
		if e.splitDone[split] || e.speculated[split] || len(e.attempts[split]) == 0 {
			continue
		}
		est, err := e.exec.MapTask(split, false, tt.node)
		if err != nil {
			continue
		}
		origEnd := float64(e.attempts[split][0].ev.Time())
		backupEnd := now + est.Duration
		gain := origEnd - backupEnd
		if gain > 0.2*est.Duration && gain > bestGain {
			best = split
			bestGain = gain
		}
	}
	if best >= 0 {
		e.speculated[best] = true
		e.stats.SpeculativeLaunched++
		e.startAttempt(tt, best, false, true)
	}
}

func (e *engine) completeMap(tt *taskTracker, split int, onGPU bool, attempt MapAttempt) {
	jt := e.jt
	jt.mapResults[split] = attempt
	jt.mapsDone++
	jt.lastMapDone = e.eng.Now()
	tt.observe(attempt.Duration, onGPU)
	if onGPU {
		e.stats.MapsOnGPU++
		e.gpuDurSum += attempt.Duration
		e.gpuDurN++
	} else {
		e.stats.MapsOnCPU++
		e.cpuDurSum += attempt.Duration
		e.cpuDurN++
	}
	if jt.mapsDone == jt.totalMaps {
		if jt.totalReduces == 0 {
			e.finishJob()
		}
		// Reducers still shuffling are released by their own scheduling
		// below (launchReduce waits on lastMapDone via the maps-done gate).
	}
}

// launchReduce models one reduce task: shuffle overlaps the map phase, and
// the task finishes compute-time after both its shuffle and the last map
// are done.
func (e *engine) launchReduce(tt *taskTracker, p int) {
	assign := e.eng.Now()
	// The reduce executes functionally when all map inputs exist; defer
	// the work until the map phase completes by polling on map completion
	// via a gate event.
	var gate func()
	gate = func() {
		if e.err != nil {
			return
		}
		if e.jt.mapsDone < e.jt.totalMaps {
			e.eng.After(sim.Duration(e.cfg.HeartbeatSec), gate)
			return
		}
		inputs := make([][]kv.Pair, 0, e.jt.totalMaps)
		for _, res := range e.jt.mapResults {
			if res.Partitions != nil && p < len(res.Partitions) {
				inputs = append(inputs, res.Partitions[p])
			}
		}
		work, err := e.exec.ReduceTask(p, inputs)
		if err != nil {
			e.fail(fmt.Errorf("mr: reduce task %d: %w", p, err))
			return
		}
		// Shuffle ran concurrently with maps from assignment; only the
		// residual after the last map blocks the reducer.
		shuffleDone := float64(assign) + work.ShuffleTime
		if tail := float64(e.jt.lastMapDone) + 0.1*work.ShuffleTime; tail > shuffleDone {
			shuffleDone = tail
		}
		now := float64(e.eng.Now())
		if shuffleDone < now {
			shuffleDone = now
		}
		e.eng.At(sim.Time(shuffleDone+work.ComputeTime), func() {
			tt.redFree++
			e.jt.reduceOut[p] = work.Output
			e.jt.reducesDone++
			if e.jt.done() {
				e.finishJob()
			}
		})
	}
	gate()
}

func (e *engine) finishJob() {
	e.finish = e.eng.Now()
	e.eng.Halt()
}

func (e *engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.eng.Halt()
}

// collectOutput assembles the job's functional output.
func (e *engine) collectOutput() {
	if e.cpuDurN > 0 {
		e.stats.MapTimeCPU = e.cpuDurSum / float64(e.cpuDurN)
	}
	if e.gpuDurN > 0 {
		e.stats.MapTimeGPU = e.gpuDurSum / float64(e.gpuDurN)
	}
	jt := e.jt
	if jt.totalReduces == 0 {
		for _, res := range jt.mapResults {
			e.stats.Output = append(e.stats.Output, res.MapOutput...)
		}
		// Map-only output files are unordered across tasks; canonicalize.
		sort.SliceStable(e.stats.Output, func(i, j int) bool {
			return kv.Compare(e.stats.Output[i].Key, e.stats.Output[j].Key) < 0
		})
		return
	}
	for _, out := range jt.reduceOut {
		e.stats.Output = append(e.stats.Output, out...)
	}
}
