package mr

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/faults"
	"repro/internal/gpurt"
	"repro/internal/kv"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Trace track lanes within each node's process: one row per concern so
// overlapping activity stays readable in chrome://tracing.
const (
	laneHeartbeat  = 0
	laneCPU        = 1
	laneGPU        = 2
	laneGPUQueue   = 3
	laneReduceBase = 4 // + partition id
)

// RunJob executes a job on the simulated cluster and returns its stats.
func RunJob(cfg ClusterConfig, exec Executor) (*JobStats, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan := cfg.Faults.Clone()
	if plan == nil && cfg.GPUFailureRate > 0 {
		// Legacy knob: synthesize the equivalent plan.
		plan = faults.FromGPUFailureRate(cfg.GPUFailureRate)
	}
	if plan != nil && plan.Seed == 0 {
		plan.Seed = cfg.Seed
	}
	if err := plan.Validate(cfg.Slaves); err != nil {
		return nil, err
	}
	// Push the integrity settings into executors that read real input, and
	// borrow the executor's schema-aware checksum for verify-on-fetch.
	if ic, ok := exec.(integrityConfigurable); ok {
		ic.ConfigureIntegrity(IntegrityConfig{
			Plan:              plan,
			SkipBadRecords:    cfg.SkipBadRecords,
			MaxSkippedRecords: cfg.MaxSkippedRecords,
		})
	}
	splits := exec.NumSplits()
	e := &engine{
		cfg:           cfg,
		exec:          exec,
		eng:           sim.NewEngine(),
		plan:          plan,
		stats:         &JobStats{},
		jt:            newJobTracker(cfg, exec),
		slaves:        make([]*taskTracker, cfg.Slaves),
		attempts:      map[int][]*attemptRun{},
		splitDone:     make([]bool, splits),
		speculated:    map[int]bool{},
		attemptSeq:    make([]int, splits),
		failCount:     make([]int, splits),
		gpuDemoted:    make([]bool, splits),
		mapHost:       make([]int, splits),
		commitAttempt: make([]int, splits),
		skippedBy:     make([]int, splits),
		reduceRuns:    map[int]*reduceRun{},
	}
	e.summer, _ = exec.(partitionSummer)
	for i := range e.mapHost {
		e.mapHost[i] = -1
	}
	e.initObs()
	e.eng.SetEventLimit(50_000_000)
	// Parallel execution: attach (or create) the worker pool and let a
	// prefetching executor precompute pure task work on it. The event loop
	// below is untouched — prefetching only changes when task computations
	// burn host CPU, never what any event observes — so schedules, stats,
	// traces, and metrics stay byte-identical to cfg.Workers == 1.
	pool := cfg.Pool
	if pool == nil && cfg.Workers > 1 {
		pool = sim.NewPool(cfg.Workers)
		defer pool.Close()
	}
	e.eng.SetPool(pool)
	if pf, ok := exec.(prefetcher); ok && pool.Parallel() {
		pf.SetWorkerPool(pool)
		pf.PrefetchMaps(cfg.Scheduler != CPUOnly && cfg.Node.GPUs > 0)
		e.pre = pf
	}
	for n := 0; n < cfg.Slaves; n++ {
		e.slaves[n] = &taskTracker{
			node:     n,
			alive:    true,
			cpuFree:  cfg.Node.MapSlots,
			gpuFree:  cfg.Node.GPUs,
			gpuTotal: cfg.Node.GPUs,
			redFree:  cfg.Node.ReduceSlots,
			speedup:  0,
		}
	}
	// Stagger initial heartbeats deterministically across the interval.
	for n := 0; n < cfg.Slaves; n++ {
		node := n
		offset := cfg.HeartbeatSec * float64(n) / float64(cfg.Slaves)
		e.slaves[n].hbEv = e.eng.At(sim.Time(offset), func() { e.heartbeat(node) })
	}
	// Install the scheduled faults; equal-time faults apply in plan order.
	for _, f := range plan.Scheduled() {
		f := f
		e.eng.At(sim.Time(f.At), func() { e.applyFault(f) })
	}
	e.eng.Run()
	if e.err != nil {
		return nil, e.err
	}
	if !e.jt.done() {
		// The event queue drained with work outstanding: classify.
		anyAlive := false
		for _, tt := range e.slaves {
			if tt.alive {
				anyAlive = true
			}
		}
		if !anyAlive && e.pendingRestarts == 0 {
			return nil, &JobFailure{Kind: FailClusterDead, Task: -1, Node: -1, Cause: faults.ErrInjected}
		}
		return nil, &JobFailure{Kind: FailStalled, Task: -1, Node: -1,
			Cause: fmt.Errorf("maps %d/%d, reduces %d/%d",
				e.jt.mapsDone, splits, e.jt.reducesDone, exec.NumReducers())}
	}
	e.stats.Makespan = float64(e.finish)
	e.stats.MaxSpeedup = e.jt.maxSpeedup
	e.collectOutput()
	jobName := cfg.Name
	if jobName == "" {
		jobName = "job"
	}
	e.trace.Span(obs.CatJob, jobName, 0, e.finish, cfg.Slaves, 0,
		obs.Str("scheduler", cfg.Scheduler.String()),
		obs.Int("maps", e.jt.totalMaps),
		obs.Int("reduces", e.jt.totalReduces))
	return e.stats, nil
}

type engine struct {
	cfg    ClusterConfig
	exec   Executor
	eng    *sim.Engine
	plan   *faults.Plan
	stats  *JobStats
	jt     *jobTracker
	slaves []*taskTracker
	finish sim.Time
	err    error

	cpuDurSum, gpuDurSum float64
	cpuDurN, gpuDurN     int

	// attempts tracks in-flight executions per split (more than one when
	// speculative execution launches a backup).
	attempts   map[int][]*attemptRun
	splitDone  []bool
	speculated map[int]bool

	// Fault-tolerance state.
	attemptSeq []int  // next attempt id per split (keys failure draws)
	failCount  []int  // failed attempts per split (MaxTaskAttempts cap)
	gpuDemoted []bool // split prefers the CPU path after a GPU failure
	mapHost    []int  // node holding the committed map output, -1 if none
	// commitAttempt records which attempt id produced the committed map
	// output (keys the per-attempt corruption draws, so a re-executed map
	// draws fresh and recovery converges).
	commitAttempt []int
	// skippedBy is the committed attempt's skipped-record count per split
	// (set, not added, so re-execution never double-counts).
	skippedBy []int
	// summer recomputes partition checksums on fetch; nil for executors
	// without materialized output, which makes verification vacuous.
	summer partitionSummer
	// pre is the executor's prefetching extension; non-nil only when a
	// parallel pool is attached.
	pre prefetcher
	// reduceRuns tracks the live attempt per reduce partition so node
	// death can cancel and restart it.
	reduceRuns      map[int]*reduceRun
	pendingRestarts int

	// Observability. All handles are nil-safe no-ops when cfg.Obs is nil.
	trace *obs.Tracer
	met   engineMetrics
}

// engineMetrics caches the registry instruments the hot paths touch. Every
// field may be nil (no recorder) — all methods tolerate nil receivers.
type engineMetrics struct {
	heartbeats   *obs.Counter
	assigned     *obs.Counter
	local        *obs.Counter
	retries      *obs.Counter
	forced       *obs.Counter
	specLaunched *obs.Counter
	specWon      *obs.Counter
	queueDepth   *obs.Gauge
	queueWait    *obs.Counter
	shuffleResid *obs.Counter
	mapDurCPU    *obs.Histogram
	mapDurGPU    *obs.Histogram
	failInjCPU   *obs.Counter
	failInjGPU   *obs.Counter
	failNodeLost *obs.Counter
	failRetired  *obs.Counter
	mapsReexec   *obs.Counter
	nodesLost    *obs.Counter
	blacklists   *obs.Counter
	gpuFallbacks *obs.Counter
	faultsTotal  *obs.Counter
	redRestarts  *obs.Counter
	fetchFails   *obs.Counter
	corruptParts *obs.Counter
	refetches    *obs.Counter
	outputsLost  *obs.Counter
	recSkipped   *obs.Counter
	registry     *obs.Registry
}

func (e *engine) initObs() {
	e.trace = e.cfg.Obs.Tracer()
	reg := e.cfg.Obs.Metrics()
	sched := obs.L("sched", e.cfg.Scheduler.String())
	e.met = engineMetrics{
		heartbeats:   reg.Counter("mr_heartbeats_total", "TaskTracker heartbeats processed", sched),
		assigned:     reg.Counter("mr_maps_assigned_total", "Map tasks handed to TaskTrackers", sched),
		local:        reg.Counter("mr_maps_local_total", "Data-local map assignments", sched),
		retries:      reg.Counter("mr_map_retries_total", "Failed GPU attempts rescheduled", sched),
		forced:       reg.Counter("mr_forced_gpu_total", "Tasks tail-forced onto GPUs", sched),
		specLaunched: reg.Counter("mr_speculative_launched_total", "Speculative backup attempts", sched),
		specWon:      reg.Counter("mr_speculative_won_total", "Backups that beat the original", sched),
		queueDepth:   reg.Gauge("mr_gpu_queue_depth", "Tasks waiting in GPU driver queues, cluster-wide", sched),
		queueWait:    reg.Counter("mr_gpu_queue_wait_seconds_total", "Summed forced-task GPU queue wait", sched),
		shuffleResid: reg.Counter("mr_shuffle_residual_seconds_total", "Shuffle time left after the map phase", sched),
		mapDurCPU:    reg.Histogram("mr_map_duration_seconds", "Winning map attempt durations", obs.DurationBuckets, obs.L("device", "cpu"), sched),
		mapDurGPU:    reg.Histogram("mr_map_duration_seconds", "Winning map attempt durations", obs.DurationBuckets, obs.L("device", "gpu"), sched),
		failInjCPU:   reg.Counter("mr_attempt_failures_total", "Failed map attempts by cause", obs.L("cause", "injected-cpu"), sched),
		failInjGPU:   reg.Counter("mr_attempt_failures_total", "Failed map attempts by cause", obs.L("cause", "injected-gpu"), sched),
		failNodeLost: reg.Counter("mr_attempt_failures_total", "Failed map attempts by cause", obs.L("cause", "node-lost"), sched),
		failRetired:  reg.Counter("mr_attempt_failures_total", "Failed map attempts by cause", obs.L("cause", "gpu-retired"), sched),
		mapsReexec:   reg.Counter("mr_maps_reexecuted_total", "Committed map outputs re-run after node death", sched),
		nodesLost:    reg.Counter("mr_nodes_lost_total", "TaskTrackers declared dead", sched),
		blacklists:   reg.Counter("mr_node_blacklists_total", "Node blacklist decisions", sched),
		gpuFallbacks: reg.Counter("mr_gpu_fallbacks_total", "Splits demoted from GPU to CPU", sched),
		faultsTotal:  reg.Counter("mr_faults_injected_total", "Scheduled faults applied", sched),
		redRestarts:  reg.Counter("mr_reduces_restarted_total", "Reduce attempts restarted after node death", sched),
		fetchFails:   reg.Counter("mr_fetch_failures_total", "Reducer map-output fetches that failed or miscompared", sched),
		corruptParts: reg.Counter("mr_corrupt_partitions_total", "Fetches rejected by checksum verification", sched),
		refetches:    reg.Counter("mr_refetches_total", "Fetch retries beyond the first attempt", sched),
		outputsLost:  reg.Counter("mr_map_outputs_lost_total", "Map outputs declared lost after fetch-failure reports", sched),
		recSkipped:   reg.Counter("mr_records_skipped_total", "Poisoned input records dropped in skip-bad-records mode", sched),
		registry:     reg,
	}
	for n := 0; n < e.cfg.Slaves; n++ {
		proc := "node" + strconv.Itoa(n)
		e.trace.NameTrack(n, laneHeartbeat, proc, "heartbeat")
		e.trace.NameTrack(n, laneCPU, proc, "cpu")
		e.trace.NameTrack(n, laneGPU, proc, "gpu")
		e.trace.NameTrack(n, laneGPUQueue, proc, "gpu-queue")
	}
	e.trace.NameTrack(e.cfg.Slaves, 0, "jobtracker", "job")
}

// attemptRun is one in-flight map task attempt.
type attemptRun struct {
	split       int
	tt          *taskTracker
	onGPU       bool
	speculative bool
	ev          *sim.Event
}

// pendingEntry is one split occurrence in a jobTracker queue. gen pins the
// occurrence to the split's enqueue generation so stale entries (from
// before a take/requeue cycle) are skipped.
type pendingEntry struct {
	split int
	gen   int
}

// jobTracker tracks pending/completed work and the cluster-wide speedup.
//
// The pending set is indexed for O(1) amortized assignment: one FIFO per
// node holding the splits stored there plus a global FIFO, each consumed
// through a head cursor with lazy deletion (an entry is live iff its split
// is still pending at the same enqueue generation). Picks are identical to
// the previous linear scan: the node queue yields the oldest pending local
// split, the global queue the oldest pending split overall.
type jobTracker struct {
	cfg          ClusterConfig
	exec         Executor
	pendingSet   map[int]bool
	numPending   int
	gen          []int
	byNode       [][]pendingEntry
	nodeHead     []int
	global       []pendingEntry
	globalHead   int
	mapsDone     int
	totalMaps    int
	reducesDone  int
	totalReduces int
	maxSpeedup   float64

	// mapResults holds functional outputs per split.
	mapResults []MapAttempt
	// reduceOut holds functional reduce outputs per partition.
	reduceOut [][]kv.Pair
	// reducesAssigned marks launched reduce tasks.
	reducesAssigned []bool
	// reduceFetched marks reducers that have collected their map inputs;
	// while any reducer has not, a dead node's committed map outputs must
	// be re-executed (Hadoop map-output-loss semantics).
	reduceFetched []bool
	// fetchReports counts fetch-failure notifications per map output; at
	// FetchFailureNotices the output is declared lost. Reset when the map
	// recommits.
	fetchReports []int
	// lastMapDone is when the map phase ended (gates reducers).
	lastMapDone sim.Time
}

func newJobTracker(cfg ClusterConfig, exec Executor) *jobTracker {
	jt := &jobTracker{
		cfg:             cfg,
		exec:            exec,
		totalMaps:       exec.NumSplits(),
		totalReduces:    exec.NumReducers(),
		pendingSet:      map[int]bool{},
		gen:             make([]int, exec.NumSplits()),
		byNode:          make([][]pendingEntry, cfg.Slaves),
		nodeHead:        make([]int, cfg.Slaves),
		mapResults:      make([]MapAttempt, exec.NumSplits()),
		reduceOut:       make([][]kv.Pair, exec.NumReducers()),
		reducesAssigned: make([]bool, exec.NumReducers()),
		reduceFetched:   make([]bool, exec.NumReducers()),
		fetchReports:    make([]int, exec.NumSplits()),
		maxSpeedup:      1,
	}
	for i := 0; i < jt.totalMaps; i++ {
		jt.enqueue(i)
	}
	return jt
}

// enqueue appends a split to the pending queues (initial fill and requeues
// after failures). A fresh generation invalidates any stale entries left
// from the split's previous time in the queue.
func (jt *jobTracker) enqueue(split int) {
	jt.gen[split]++
	jt.pendingSet[split] = true
	jt.numPending++
	entry := pendingEntry{split: split, gen: jt.gen[split]}
	jt.global = append(jt.global, entry)
	for _, loc := range jt.exec.Locations(split) {
		if loc >= 0 && loc < len(jt.byNode) {
			jt.byNode[loc] = append(jt.byNode[loc], entry)
		}
	}
}

func (jt *jobTracker) live(e pendingEntry) bool {
	return jt.pendingSet[e.split] && jt.gen[e.split] == e.gen
}

func (jt *jobTracker) take(split int) {
	delete(jt.pendingSet, split)
	jt.numPending--
}

func (jt *jobTracker) remainingMaps() int { return jt.totalMaps - jt.mapsDone }

func (jt *jobTracker) pendingCount() int { return jt.numPending }

func (jt *jobTracker) done() bool {
	return jt.mapsDone == jt.totalMaps && jt.reducesDone == jt.totalReduces
}

// allReducesFetched reports whether every reducer has collected its map
// inputs, after which lost map outputs no longer matter.
func (jt *jobTracker) allReducesFetched() bool {
	for _, f := range jt.reduceFetched {
		if !f {
			return false
		}
	}
	return true
}

// takeMap removes and returns a pending map task, preferring node-local
// splits (data locality, paper §2.2). Amortized O(1): every queue entry is
// examined at most once over the job's lifetime.
func (jt *jobTracker) takeMap(node int) (int, bool, bool) {
	if jt.numPending == 0 {
		return 0, false, false
	}
	if node >= 0 && node < len(jt.byNode) {
		q := jt.byNode[node]
		for jt.nodeHead[node] < len(q) {
			e := q[jt.nodeHead[node]]
			jt.nodeHead[node]++
			if jt.live(e) {
				jt.take(e.split)
				return e.split, true, true
			}
		}
	}
	for jt.globalHead < len(jt.global) {
		e := jt.global[jt.globalHead]
		jt.globalHead++
		if jt.live(e) {
			jt.take(e.split)
			return e.split, false, true
		}
	}
	return 0, false, false
}

// requeue returns a failed task to the pending queue.
func (jt *jobTracker) requeue(split int) {
	if !jt.pendingSet[split] {
		jt.enqueue(split)
	}
}

// gpuQueued is one tail-forced task waiting in a node's GPU driver queue.
type gpuQueued struct {
	split int
	at    sim.Time
}

// taskTracker is one slave's state.
type taskTracker struct {
	node    int
	cpuFree int
	gpuFree int
	redFree int
	// gpuTotal is the node's surviving GPU count (retirements shrink it).
	gpuTotal int
	// gpuQueue holds tail-forced tasks waiting for a GPU slot.
	gpuQueue []gpuQueued
	// Speedup bookkeeping (average GPU speedup over a CPU slot).
	cpuSum, gpuSum float64
	cpuN, gpuN     int
	speedup        float64
	// numMapsRemainingPerNode from the last heartbeat response.
	remainingPerNode float64

	// Fault state.
	alive        bool       // the tracker process is running
	deadDeclared bool       // the JobTracker has written the node off
	lastHB       sim.Time   // last heartbeat the JobTracker saw
	expiryArmed  bool       // an expiry check event is outstanding
	hbEv         *sim.Event // the pending heartbeat event (canceled on crash)
	hbLostUntil  sim.Time   // heartbeats suppressed until then
	slowFactor   float64    // task-duration multiplier while slowed
	slowUntil    sim.Time
	permSlow     bool
	failures     int // task failures since the last blacklist/reset
	blacklists   int // times this node has been blacklisted
	blacklisted  sim.Time
}

// slowdown returns the node's current task-duration multiplier.
func (tt *taskTracker) slowdown(now sim.Time) float64 {
	if tt.slowFactor > 0 && (tt.permSlow || now < tt.slowUntil) {
		return tt.slowFactor
	}
	return 1
}

// reduceRun is the live attempt of one reduce partition. ev is whatever
// event currently drives it (the maps-done gate poll, a fetch retry
// backoff, or the completion).
type reduceRun struct {
	p  int
	tt *taskTracker
	ev *sim.Event
	// Shuffle fetch state: next is the map output being fetched, burst the
	// consecutive failures of that fetch (reset on success and after each
	// report), and fetchAttempt the monotonic per-map fetch counter keying
	// the transient-failure draws.
	next         int
	burst        int
	fetchAttempt []int
}

func (tt *taskTracker) observe(duration float64, onGPU bool) {
	if onGPU {
		tt.gpuSum += duration
		tt.gpuN++
	} else {
		tt.cpuSum += duration
		tt.cpuN++
	}
	if tt.cpuN > 0 && tt.gpuN > 0 && tt.gpuSum > 0 {
		tt.speedup = (tt.cpuSum / float64(tt.cpuN)) / (tt.gpuSum / float64(tt.gpuN))
	}
}

// heartbeat is one TaskTracker->JobTracker exchange (paper §2.2): status
// goes up, task assignments come down.
func (e *engine) heartbeat(node int) {
	if e.err != nil || e.jt.done() {
		return
	}
	tt := e.slaves[node]
	if !tt.alive {
		// Crashed: the heartbeat loop stops; restartNode re-enters it.
		return
	}
	now := e.eng.Now()
	if now < tt.hbLostUntil {
		// Heartbeats suppressed; resume when the loss window closes.
		tt.hbEv = e.eng.At(tt.hbLostUntil, func() { e.heartbeat(node) })
		return
	}
	if tt.deadDeclared {
		e.reregister(tt)
	}
	tt.lastHB = now
	e.armExpiry(tt)
	jt := e.jt
	e.met.heartbeats.Inc()
	e.trace.Instant(obs.CatHeartbeat, "hb", now, node, laneHeartbeat)

	// Report speedup; the JobTracker remembers the maximum (Algorithm 2).
	if tt.speedup > jt.maxSpeedup {
		jt.maxSpeedup = tt.speedup
	}

	// A blacklisted node keeps heartbeating (so it can serve again after
	// the backoff) but receives no work.
	if now >= tt.blacklisted {
		// TailScheduleOnJT: decide how many tasks to hand this tracker. One
		// task per busy GPU may be prefetched into the driver's queue so the
		// GPU never idles across a heartbeat gap (the GPU driver fetches new
		// tasks eagerly, paper §5.1). Free GPUs are already counted in the
		// free-slot total, so prefetch only covers the busy ones — counting
		// all GPUs here would double-count the free ones and over-assign.
		busyGPUs := tt.gpuTotal - tt.gpuFree
		prefetch := busyGPUs - len(tt.gpuQueue)
		if prefetch < 0 {
			prefetch = 0
		}
		free := tt.cpuFree + tt.gpuFree + prefetch
		if e.cfg.Scheduler == TailSched {
			jobTail := float64(e.cfg.Node.GPUs) * jt.maxSpeedup * float64(e.cfg.Slaves)
			if float64(jt.remainingMaps()) <= jobTail {
				// Job tail: at most numGPUs tasks per heartbeat so forced
				// queues stay short.
				free = e.cfg.Node.GPUs
			}
		}
		tt.remainingPerNode = float64(jt.remainingMaps()) / float64(e.cfg.Slaves)

		for i := 0; i < free; i++ {
			split, local, ok := jt.takeMap(node)
			if !ok {
				break
			}
			e.met.assigned.Inc()
			if local {
				e.stats.DataLocalMaps++
				e.met.local.Inc()
			}
			e.placeMap(tt, split)
		}

		// Speculative execution: back up stragglers once the queue drains.
		if e.cfg.SpeculativeExecution && jt.pendingCount() == 0 && jt.remainingMaps() > 0 {
			e.trySpeculate(tt)
		}

		// Reduce scheduling after slow start.
		if jt.totalReduces > 0 && float64(jt.mapsDone) >= e.cfg.ReduceSlowstart*float64(jt.totalMaps) {
			for p := 0; p < jt.totalReduces && tt.redFree > 0; p++ {
				if jt.reducesAssigned[p] {
					continue
				}
				jt.reducesAssigned[p] = true
				tt.redFree--
				e.launchReduce(tt, p)
			}
		}
	}

	tt.hbEv = e.eng.After(sim.Duration(e.cfg.HeartbeatSec), func() { e.heartbeat(node) })
}

// armExpiry schedules (at most one outstanding) heartbeat-expiry check for
// the node. The check re-arms itself while heartbeats keep arriving and
// declares the node dead once they stop.
func (e *engine) armExpiry(tt *taskTracker) {
	if tt.expiryArmed {
		return
	}
	tt.expiryArmed = true
	deadline := tt.lastHB + sim.Time(e.cfg.HeartbeatExpirySec)
	e.eng.At(deadline, func() {
		tt.expiryArmed = false
		if e.err != nil || e.jt.done() || tt.deadDeclared {
			return
		}
		if e.eng.Now() < tt.lastHB+sim.Time(e.cfg.HeartbeatExpirySec) {
			e.armExpiry(tt) // a heartbeat arrived meanwhile; track it
			return
		}
		e.declareDead(tt, "heartbeat-expired")
	})
}

// reregister readmits a tracker the JobTracker had written off (restart
// after a crash, or heartbeat loss shorter than the job). Hadoop treats
// this as a brand-new TaskTracker: fresh slots, no history.
func (e *engine) reregister(tt *taskTracker) {
	tt.deadDeclared = false
	tt.cpuFree = e.cfg.Node.MapSlots
	tt.gpuFree = tt.gpuTotal // device retirement survives restarts
	tt.redFree = e.cfg.Node.ReduceSlots
	tt.cpuSum, tt.gpuSum = 0, 0
	tt.cpuN, tt.gpuN = 0, 0
	tt.speedup = 0
	tt.failures = 0
	tt.blacklisted = 0
	e.trace.Instant(obs.CatRecovery, "node-reregistered", e.eng.Now(), tt.node, laneHeartbeat)
}

// declareDead writes a TaskTracker off: its running map and reduce
// attempts are requeued and — while any reducer still needs map inputs —
// its committed map outputs are re-executed.
func (e *engine) declareDead(tt *taskTracker, cause string) {
	if tt.deadDeclared {
		return
	}
	tt.deadDeclared = true
	now := e.eng.Now()
	e.stats.NodesLost++
	e.met.nodesLost.Inc()
	e.trace.Instant(obs.CatRecovery, "node-dead", now, tt.node, laneHeartbeat, obs.Str("cause", cause))

	// Kill the node's in-flight map attempts. Ascending split order keeps
	// requeue order deterministic.
	for split := 0; split < len(e.splitDone); split++ {
		runs := e.attempts[split]
		if len(runs) == 0 {
			continue
		}
		var kept []*attemptRun
		lost := 0
		for _, run := range runs {
			if run.tt != tt {
				kept = append(kept, run)
				continue
			}
			run.ev.Cancel()
			lost++
			e.stats.LostAttempts++
			e.met.failNodeLost.Inc()
		}
		if lost == 0 {
			continue
		}
		if len(kept) == 0 {
			delete(e.attempts, split)
			if !e.splitDone[split] {
				e.jt.requeue(split)
			}
		} else {
			e.attempts[split] = kept
		}
	}
	// Tasks parked in the node's GPU driver queue never started; requeue.
	for _, q := range tt.gpuQueue {
		e.met.queueDepth.Add(-1)
		if !e.splitDone[q.split] && len(e.attempts[q.split]) == 0 {
			e.jt.requeue(q.split)
		}
	}
	tt.gpuQueue = nil

	// Restart the node's reduce attempts elsewhere.
	for p := 0; p < e.jt.totalReduces; p++ {
		run, ok := e.reduceRuns[p]
		if !ok || run.tt != tt {
			continue
		}
		if run.ev != nil {
			run.ev.Cancel()
		}
		delete(e.reduceRuns, p)
		e.jt.reducesAssigned[p] = false
		e.jt.reduceFetched[p] = false
		e.stats.ReducesRestarted++
		e.met.redRestarts.Inc()
		e.trace.Instant(obs.CatRecovery, "reduce-restart", now, tt.node, laneHeartbeat, obs.Int("partition", p))
	}

	// Map-output loss: committed map outputs lived on the dead node's
	// local disk; while reducers still need them they must be re-executed
	// (Hadoop §"map output loss" semantics). Map-only jobs write straight
	// to HDFS, so their commits survive.
	if e.jt.totalReduces > 0 && !e.jt.allReducesFetched() {
		for split := 0; split < len(e.splitDone); split++ {
			if !e.splitDone[split] || e.mapHost[split] != tt.node {
				continue
			}
			e.splitDone[split] = false
			e.mapHost[split] = -1
			e.jt.mapResults[split] = MapAttempt{}
			e.jt.mapsDone--
			e.stats.MapsReexecuted++
			e.met.mapsReexec.Inc()
			e.jt.requeue(split)
			e.trace.Instant(obs.CatRecovery, "map-output-lost", now, tt.node, laneHeartbeat, obs.Int("split", split))
		}
	}

	// If nothing is left to run the job and nothing will come back, fail
	// fast instead of letting the simulation hang.
	anyAlive := false
	for _, s := range e.slaves {
		if s.alive {
			anyAlive = true
		}
	}
	if !anyAlive && e.pendingRestarts == 0 {
		e.fail(&JobFailure{Kind: FailClusterDead, Task: -1, Node: tt.node, Cause: faults.ErrInjected})
	}
}

// applyFault executes one scheduled fault from the plan.
func (e *engine) applyFault(f faults.Fault) {
	if e.err != nil || e.jt.done() {
		return
	}
	tt := e.slaves[f.Node]
	now := e.eng.Now()
	e.met.faultsTotal.Inc()
	e.trace.Instant(obs.CatFault, f.Kind.String(), now, f.Node, laneHeartbeat, obs.Int("node", f.Node))
	switch f.Kind {
	case faults.NodeCrash:
		if !tt.alive {
			return
		}
		tt.alive = false
		if tt.hbEv != nil {
			tt.hbEv.Cancel()
		}
		// Its tasks die silently; the JobTracker only learns at expiry.
		for split := 0; split < len(e.splitDone); split++ {
			for _, run := range e.attempts[split] {
				if run.tt == tt {
					run.ev.Cancel()
				}
			}
		}
		for p := 0; p < e.jt.totalReduces; p++ {
			if run, ok := e.reduceRuns[p]; ok && run.tt == tt && run.ev != nil {
				run.ev.Cancel()
			}
		}
		if f.RestartAfter > 0 {
			e.pendingRestarts++
			e.eng.After(sim.Duration(f.RestartAfter), func() { e.restartNode(tt) })
		}
	case faults.HeartbeatLoss:
		if until := now + sim.Time(f.Duration); until > tt.hbLostUntil {
			tt.hbLostUntil = until
		}
	case faults.GPURetire:
		e.retireGPU(tt)
	case faults.Slowdown:
		tt.slowFactor = f.Factor
		if f.Duration > 0 {
			tt.slowUntil = now + sim.Time(f.Duration)
			tt.permSlow = false
		} else {
			tt.permSlow = true
		}
	}
}

// retireGPU permanently removes one GPU from the node, aborting whatever
// ran on it and demoting that split to the CPU path.
func (e *engine) retireGPU(tt *taskTracker) {
	if tt.gpuTotal <= 0 {
		return
	}
	tt.gpuTotal--
	if tt.gpuFree > 0 {
		// An idle device retired; the slot just disappears.
		tt.gpuFree--
	} else {
		// Abort the node's oldest running GPU attempt (lowest split id for
		// determinism); its slot vanishes with the device.
		for split := 0; split < len(e.splitDone); split++ {
			var victim *attemptRun
			for _, run := range e.attempts[split] {
				if run.tt == tt && run.onGPU {
					victim = run
					break
				}
			}
			if victim == nil {
				continue
			}
			victim.ev.Cancel()
			e.dropAttempt(victim)
			e.stats.LostAttempts++
			e.met.failRetired.Inc()
			e.gpuDemoted[split] = true
			if !e.splitDone[split] && len(e.attempts[split]) == 0 {
				e.jt.requeue(split)
			}
			break
		}
	}
	if tt.gpuTotal == 0 {
		// No GPUs left: whatever waited in the driver queue reschedules.
		for _, q := range tt.gpuQueue {
			e.met.queueDepth.Add(-1)
			if !e.splitDone[q.split] && len(e.attempts[q.split]) == 0 {
				e.jt.requeue(q.split)
			}
		}
		tt.gpuQueue = nil
	}
}

// restartNode brings a crashed tracker back RestartAfter seconds later.
func (e *engine) restartNode(tt *taskTracker) {
	e.pendingRestarts--
	if e.err != nil || e.jt.done() || tt.alive {
		return
	}
	tt.alive = true
	if !tt.deadDeclared {
		// The crash was shorter than the expiry window, but the process
		// state and local map outputs are gone all the same.
		e.declareDead(tt, "node-restart")
	}
	if e.err != nil {
		return
	}
	e.trace.Instant(obs.CatRecovery, "node-restarted", e.eng.Now(), tt.node, laneHeartbeat)
	e.heartbeat(tt.node) // re-registers and restarts the heartbeat loop
}

// placeMap applies the TaskTracker-side policy (TailScheduleOnTT).
func (e *engine) placeMap(tt *taskTracker, split int) {
	// A split whose GPU attempt failed retries on the CPU path when a CPU
	// slot is open (failure demotion, paper §5.1).
	if e.gpuDemoted[split] && tt.cpuFree > 0 {
		e.startMap(tt, split, false)
		return
	}
	switch e.cfg.Scheduler {
	case CPUOnly:
		e.startMap(tt, split, false)
	case GPUFirst:
		if tt.gpuFree > 0 {
			e.startMap(tt, split, true)
		} else if tt.cpuFree > 0 {
			e.startMap(tt, split, false)
		} else {
			// Over-assigned; wait on the GPU queue.
			e.enqueueGPU(tt, split)
		}
	case TailSched:
		taskTail := float64(e.cfg.Node.GPUs) * tt.speedup
		if tt.speedup > 0 && tt.gpuTotal > 0 && tt.remainingPerNode <= taskTail {
			// Task tail: force GPU execution even if the GPU is busy.
			e.stats.ForcedGPUTasks++
			e.met.forced.Inc()
			if tt.gpuFree > 0 {
				e.startMap(tt, split, true)
			} else {
				e.enqueueGPU(tt, split)
			}
			return
		}
		if tt.gpuFree > 0 {
			e.startMap(tt, split, true)
		} else if tt.cpuFree > 0 {
			e.startMap(tt, split, false)
		} else {
			e.enqueueGPU(tt, split)
		}
	}
}

// enqueueGPU parks a task in tt's GPU driver queue and tracks the depth.
func (e *engine) enqueueGPU(tt *taskTracker, split int) {
	tt.gpuQueue = append(tt.gpuQueue, gpuQueued{split: split, at: e.eng.Now()})
	if d := len(tt.gpuQueue); d > e.stats.GPUQueuePeak {
		e.stats.GPUQueuePeak = d
	}
	e.met.queueDepth.Add(1)
}

// startMap occupies a slot and schedules the task's completion.
func (e *engine) startMap(tt *taskTracker, split int, onGPU bool) {
	e.startAttempt(tt, split, onGPU, false)
}

func (e *engine) startAttempt(tt *taskTracker, split int, onGPU, speculative bool) {
	if e.err != nil {
		return
	}
	attemptID := e.attemptSeq[split]
	e.attemptSeq[split]++
	if !onGPU && e.gpuDemoted[split] {
		// The demoted split reached a CPU slot: the GPU→CPU fallback.
		e.gpuDemoted[split] = false
		e.stats.GPUFallbacks++
		e.met.gpuFallbacks.Inc()
		e.trace.Instant(obs.CatRecovery, "gpu-fallback", e.eng.Now(), tt.node, laneCPU, obs.Int("split", split))
	}
	attempt, err := e.exec.MapTask(split, onGPU, tt.node)
	if err != nil {
		if errors.Is(err, faults.ErrBadRecord) {
			// Poisoned input with skip-bad-records off. The poison draw is
			// deterministic, so every retry would crash identically.
			e.fail(&JobFailure{Kind: FailBadRecord, Task: split, Node: tt.node, Cause: err})
			return
		}
		e.fail(fmt.Errorf("mr: map task %d on node %d: %w", split, tt.node, err))
		return
	}
	if onGPU {
		tt.gpuFree--
	} else {
		tt.cpuFree--
	}
	// Fault injection: the plan decides per (task, attempt, device) whether
	// this attempt fails partway; the driver reports the failure and the
	// JobTracker reschedules the task (paper §5.1).
	failed := e.plan.AttemptFails(split, attemptID, onGPU)
	duration := attempt.Duration * tt.slowdown(e.eng.Now())
	if failed {
		duration *= 0.5 // detected mid-task
	}
	run := &attemptRun{split: split, tt: tt, onGPU: onGPU, speculative: speculative}
	e.attempts[split] = append(e.attempts[split], run)
	run.ev = e.eng.After(sim.Duration(duration), func() {
		if onGPU {
			tt.gpuFree++
		} else {
			tt.cpuFree++
		}
		e.dropAttempt(run)
		switch {
		case e.splitDone[split]:
			// A sibling attempt already finished; nothing to record.
			e.recordMapSpan(tt, split, onGPU, speculative, duration, "lost")
		case failed:
			e.attemptFailed(run, attemptID, duration)
		default:
			e.splitDone[split] = true
			if speculative {
				e.stats.SpeculativeWon++
				e.met.specWon.Inc()
			}
			// Kill the losing sibling attempts and free their slots
			// (Hadoop kills the slower attempt when one commits).
			for _, o := range e.attempts[split] {
				o.ev.Cancel()
				if o.onGPU {
					o.tt.gpuFree++
				} else {
					o.tt.cpuFree++
				}
				e.drainGPUQueue(o.tt)
			}
			delete(e.attempts, split)
			e.commitAttempt[split] = attemptID
			e.completeMap(tt, split, onGPU, speculative, duration, attempt)
		}
		e.drainGPUQueue(tt)
	})
}

// attemptFailed handles an injected attempt failure: retry accounting, GPU
// demotion, the per-task attempt cap, and node blacklisting.
func (e *engine) attemptFailed(run *attemptRun, attemptID int, duration float64) {
	split, tt := run.split, run.tt
	e.stats.FailedAttempts++
	e.failCount[split]++
	var cause error = faults.ErrInjected
	if run.onGPU {
		e.stats.Retries++
		e.met.retries.Inc()
		e.met.failInjGPU.Inc()
		e.gpuDemoted[split] = true
		cause = &gpurt.AbortError{Kernel: "map", Cause: faults.ErrInjected}
	} else {
		e.met.failInjCPU.Inc()
	}
	e.recordMapSpan(tt, split, run.onGPU, run.speculative, duration, "failed")
	e.trace.Instant(obs.CatFault, "attempt-fail", e.eng.Now(), tt.node, laneHeartbeat,
		obs.Int("split", split), obs.Int("attempt", attemptID))
	if e.failCount[split] >= e.cfg.MaxTaskAttempts {
		e.fail(&JobFailure{
			Kind:     FailTaskAttemptsExhausted,
			Task:     split,
			Node:     tt.node,
			Attempts: e.failCount[split],
			Cause:    cause,
		})
		return
	}
	e.noteNodeFailure(tt)
	if len(e.attempts[split]) == 0 {
		e.jt.requeue(split)
	}
}

// noteNodeFailure counts a task failure against the node and blacklists it
// with exponential backoff once it accumulates NodeFailureLimit of them.
func (e *engine) noteNodeFailure(tt *taskTracker) {
	tt.failures++
	if tt.failures < e.cfg.NodeFailureLimit {
		return
	}
	tt.failures = 0
	backoff := e.cfg.BlacklistBackoffSec
	for i := 0; i < tt.blacklists; i++ {
		backoff *= 2
	}
	tt.blacklists++
	tt.blacklisted = e.eng.Now() + sim.Time(backoff)
	e.stats.NodeBlacklists++
	e.met.blacklists.Inc()
	e.trace.Instant(obs.CatRecovery, "node-blacklisted", e.eng.Now(), tt.node, laneHeartbeat,
		obs.Float("backoff", backoff))
}

// recordMapSpan emits one map attempt's trace span, placed backwards from
// the current (completion) time.
func (e *engine) recordMapSpan(tt *taskTracker, split int, onGPU, speculative bool, duration float64, state string) {
	if e.trace == nil {
		return
	}
	cat := obs.CatMapCPU
	lane := laneCPU
	if onGPU {
		cat = obs.CatMapGPU
		lane = laneGPU
	}
	if speculative {
		cat = obs.CatSpeculative
	}
	end := e.eng.Now()
	begin := end - sim.Time(duration)
	e.trace.Span(cat, "map-"+strconv.Itoa(split), begin, end, tt.node, lane,
		obs.Int("split", split), obs.Str("state", state))
}

// dropAttempt removes a finished attempt from its split's list.
func (e *engine) dropAttempt(run *attemptRun) {
	runs := e.attempts[run.split]
	for i, o := range runs {
		if o == run {
			e.attempts[run.split] = append(runs[:i], runs[i+1:]...)
			break
		}
	}
	if len(e.attempts[run.split]) == 0 {
		delete(e.attempts, run.split)
	}
}

// drainGPUQueue starts a queued forced-GPU task if a slot is free.
func (e *engine) drainGPUQueue(tt *taskTracker) {
	if !tt.alive || tt.deadDeclared {
		// declareDead flushes the queue; don't start work on a dead node.
		return
	}
	if tt.gpuFree > 0 && len(tt.gpuQueue) > 0 {
		next := tt.gpuQueue[0]
		tt.gpuQueue = tt.gpuQueue[1:]
		now := e.eng.Now()
		wait := float64(now - next.at)
		e.stats.GPUQueueWaitSec += wait
		e.met.queueDepth.Add(-1)
		e.met.queueWait.Add(wait)
		if wait > 0 {
			e.trace.Span(obs.CatGPUQueueWait, "queue-"+strconv.Itoa(next.split), next.at, now,
				tt.node, laneGPUQueue, obs.Int("split", next.split))
		}
		e.startMap(tt, next.split, true)
	}
}

// trySpeculate launches one backup attempt on an idle CPU slot of tt when
// the pending queue is empty and a running task would finish later than a
// fresh local run would (the speculative-execution extension).
func (e *engine) trySpeculate(tt *taskTracker) {
	if tt.cpuFree <= 0 {
		return
	}
	now := float64(e.eng.Now())
	var best int = -1
	var bestGain float64
	for split := 0; split < len(e.splitDone); split++ {
		if e.splitDone[split] || e.speculated[split] || len(e.attempts[split]) == 0 {
			continue
		}
		est, err := e.exec.MapTask(split, false, tt.node)
		if err != nil {
			continue
		}
		origEnd := float64(e.attempts[split][0].ev.Time())
		backupEnd := now + est.Duration
		gain := origEnd - backupEnd
		if gain > 0.2*est.Duration && gain > bestGain {
			best = split
			bestGain = gain
		}
	}
	if best >= 0 {
		e.speculated[best] = true
		e.stats.SpeculativeLaunched++
		e.met.specLaunched.Inc()
		e.startAttempt(tt, best, false, true)
	}
}

func (e *engine) completeMap(tt *taskTracker, split int, onGPU, speculative bool, duration float64, attempt MapAttempt) {
	jt := e.jt
	jt.mapResults[split] = attempt
	e.mapHost[split] = tt.node
	jt.fetchReports[split] = 0 // a fresh commit clears stale reports
	jt.mapsDone++
	jt.lastMapDone = e.eng.Now()
	if attempt.SkippedRecords > 0 {
		// Set, not add: a re-executed map re-reads the same poisoned
		// records, so its skips replace the previous commit's.
		e.skippedBy[split] = attempt.SkippedRecords
		e.trace.Instant(obs.CatRecovery, "records-skipped", e.eng.Now(), tt.node, laneHeartbeat,
			obs.Int("split", split), obs.Int("skipped", attempt.SkippedRecords))
		total := 0
		for _, n := range e.skippedBy {
			total += n
		}
		if total > e.cfg.MaxSkippedRecords {
			e.fail(&JobFailure{
				Kind:     FailSkipLimitExceeded,
				Task:     split,
				Node:     tt.node,
				Attempts: total,
				Cause:    faults.ErrBadRecord,
			})
			return
		}
	}
	tt.observe(duration, onGPU)
	e.recordMapSpan(tt, split, onGPU, speculative, duration, "won")
	if onGPU {
		e.stats.MapsOnGPU++
		e.gpuDurSum += duration
		e.gpuDurN++
		e.met.mapDurGPU.Observe(duration)
		if attempt.GPU != nil {
			e.recordKernelDetail(tt, duration, attempt.GPU)
		}
	} else {
		e.stats.MapsOnCPU++
		e.cpuDurSum += duration
		e.cpuDurN++
		e.met.mapDurCPU.Observe(duration)
	}
	if jt.mapsDone == jt.totalMaps {
		e.stats.MapPhaseEnd = float64(e.eng.Now())
		if jt.totalReduces == 0 {
			e.finishJob()
		}
		// Reducers still shuffling are released by their own scheduling
		// below (launchReduce waits on lastMapDone via the maps-done gate).
		e.hintReduces()
	}
}

// hintReduces prefetches the reduce work for every partition that has not
// yet collected its inputs, now that a full set of committed map outputs
// exists. Called each time mapsDone reaches totalMaps (including after
// map-output-loss recovery recommits), so a superseding hint always
// carries the current partition slices; the executor validates slice
// identity at consume time regardless.
func (e *engine) hintReduces() {
	if e.pre == nil {
		return
	}
	for p := 0; p < e.jt.totalReduces; p++ {
		if e.jt.reduceFetched[p] {
			continue
		}
		inputs := make([][]kv.Pair, 0, e.jt.totalMaps)
		for _, res := range e.jt.mapResults {
			if res.Partitions != nil && p < len(res.Partitions) {
				inputs = append(inputs, res.Partitions[p])
			}
		}
		e.pre.PrefetchReduce(p, inputs)
	}
}

// recordKernelDetail emits kernel sub-spans inside a winning GPU attempt
// (placed by the Figure-6 stage offsets) and folds the profiles into the
// metrics registry.
func (e *engine) recordKernelDetail(tt *taskTracker, duration float64, d *GPUAttemptDetail) {
	e.met.registry.RecordKernelProfiles(d.Profiles)
	if e.trace == nil {
		return
	}
	begin := float64(e.eng.Now()) - duration
	cursor := begin + d.Stages.InputRead + d.Stages.InputCopy
	for i := range d.Profiles {
		p := &d.Profiles[i]
		attrs := []obs.Attr{
			obs.Float("cycles", p.TotalCycles()),
		}
		if p.Blocks > 0 {
			attrs = append(attrs,
				obs.Int("blocks", p.Blocks),
				obs.Float("occupancy", p.Occupancy),
				obs.Float("skew", p.StragglerSkew))
		}
		if p.Steals > 0 {
			attrs = append(attrs, obs.Int("steals", int(p.Steals)))
		}
		e.trace.Span(obs.CatKernel, p.Kernel, sim.Time(cursor), sim.Time(cursor+p.Seconds),
			tt.node, laneGPU, attrs...)
		cursor += p.Seconds
	}
}

// launchReduce models one reduce task: shuffle overlaps the map phase, and
// the task finishes compute-time after both its shuffle and the last map
// are done. Each map output is fetched with checksum verification; failed
// or corrupt fetches retry with capped exponential backoff and report to
// the JobTracker, which declares the output lost — re-executing the map —
// once enough reports accumulate (Hadoop "too many fetch failures").
func (e *engine) launchReduce(tt *taskTracker, p int) {
	assign := e.eng.Now()
	run := &reduceRun{p: p, tt: tt}
	e.reduceRuns[p] = run
	// The reduce executes functionally when all map inputs exist; defer
	// the work until the map phase completes by polling on map completion
	// via a gate event. The same poll covers outputs re-executing after
	// fetch-failure declarations mid-shuffle.
	var gate func()
	gate = func() {
		if e.err != nil || e.reduceRuns[p] != run {
			// Superseded: the attempt was canceled after its host died.
			return
		}
		if e.jt.mapsDone < e.jt.totalMaps {
			run.ev = e.eng.After(sim.Duration(e.cfg.HeartbeatSec), gate)
			return
		}
		// Fetch each committed map output in order, verifying checksums.
		// The clean path completes every fetch instantly within this event;
		// only failures consume virtual time (backoff) or defer to the gate
		// poll (output re-executing).
		for run.next < e.jt.totalMaps {
			m := run.next
			if !e.splitDone[m] {
				// Declared lost after an earlier report; wait for recommit.
				run.ev = e.eng.After(sim.Duration(e.cfg.HeartbeatSec), gate)
				return
			}
			if run.fetchAttempt == nil {
				run.fetchAttempt = make([]int, e.jt.totalMaps)
			}
			att := run.fetchAttempt[m]
			run.fetchAttempt[m]++
			if att > 0 {
				e.stats.Refetches++
				e.met.refetches.Inc()
			}
			failed := e.plan.FetchFails(m, p, att)
			corrupt := false
			if !failed {
				corrupt = e.verifyFetch(p, m)
			}
			if !failed && !corrupt {
				run.next++
				run.burst = 0
				continue
			}
			e.stats.FetchFailures++
			e.met.fetchFails.Inc()
			name := "fetch-fail"
			if corrupt {
				name = "corrupt-partition"
				e.stats.CorruptPartitions++
				e.met.corruptParts.Inc()
			}
			e.trace.Instant(obs.CatFault, name, e.eng.Now(), tt.node, laneHeartbeat,
				obs.Int("map", m), obs.Int("partition", p), obs.Int("attempt", att))
			run.burst++
			if run.burst >= e.cfg.FetchRetries {
				run.burst = 0
				e.reportFetchFailure(run, m)
				if e.err != nil {
					return
				}
			}
			// Capped exponential backoff before the retry.
			backoff := e.cfg.FetchBackoffSec
			for i := 0; i < att && i < 5; i++ {
				backoff *= 2
			}
			run.ev = e.eng.After(sim.Duration(backoff), gate)
			return
		}
		e.jt.reduceFetched[p] = true
		inputs := make([][]kv.Pair, 0, e.jt.totalMaps)
		for _, res := range e.jt.mapResults {
			if res.Partitions != nil && p < len(res.Partitions) {
				inputs = append(inputs, res.Partitions[p])
			}
		}
		work, err := e.exec.ReduceTask(p, inputs)
		if err != nil {
			e.fail(fmt.Errorf("mr: reduce task %d: %w", p, err))
			return
		}
		// Shuffle ran concurrently with maps from assignment; only the
		// residual after the last map blocks the reducer.
		shuffleDone := float64(assign) + work.ShuffleTime
		if tail := float64(e.jt.lastMapDone) + 0.1*work.ShuffleTime; tail > shuffleDone {
			shuffleDone = tail
		}
		now := float64(e.eng.Now())
		if shuffleDone < now {
			shuffleDone = now
		}
		if resid := shuffleDone - float64(e.jt.lastMapDone); resid > 0 {
			e.stats.ShuffleResidualSec += resid
			e.met.shuffleResid.Add(resid)
		}
		lane := laneReduceBase + p
		e.trace.NameTrack(tt.node, lane, "node"+strconv.Itoa(tt.node), "reduce-"+strconv.Itoa(p))
		e.trace.Span(obs.CatShuffle, "shuffle-"+strconv.Itoa(p), assign, sim.Time(shuffleDone),
			tt.node, lane, obs.Int("partition", p))
		e.trace.Span(obs.CatReduce, "reduce-"+strconv.Itoa(p), sim.Time(shuffleDone),
			sim.Time(shuffleDone+work.ComputeTime), tt.node, lane, obs.Int("partition", p))
		run.ev = e.eng.At(sim.Time(shuffleDone+work.ComputeTime), func() {
			if e.reduceRuns[p] != run {
				return
			}
			delete(e.reduceRuns, p)
			tt.redFree++
			e.jt.reduceOut[p] = work.Output
			e.jt.reducesDone++
			if e.jt.done() {
				e.finishJob()
			}
		})
	}
	gate()
}

// verifyFetch checks partition p of map m's committed output on fetch:
// first the plan's deterministic corruption draw (keyed by the committed
// attempt id, so a re-executed map draws fresh), then the real checksum —
// the executor recomputes the partition's CRC and compares it against the
// sum stored at commit time (checksum-on-write + verify-on-fetch).
func (e *engine) verifyFetch(p, m int) bool {
	res := &e.jt.mapResults[m]
	if e.plan.PartitionCorrupt(m, e.commitAttempt[m], p) {
		return true
	}
	if e.summer == nil || res.PartitionSums == nil || p >= len(res.PartitionSums) {
		return false
	}
	var part []kv.Pair
	if p < len(res.Partitions) {
		part = res.Partitions[p]
	}
	return e.summer.PartitionSum(part) != res.PartitionSums[p]
}

// reportFetchFailure delivers one reducer's fetch-failure notification for
// map m to the JobTracker. At FetchFailureNotices notifications the output
// is declared lost: the map re-executes (through the PR-4 recovery path)
// and the serving node takes a failure toward blacklisting. A permanently
// corrupt task exhausts MaxTaskAttempts and fails the job.
func (e *engine) reportFetchFailure(run *reduceRun, m int) {
	if !e.splitDone[m] {
		return // already declared lost by another reducer's report
	}
	jt := e.jt
	jt.fetchReports[m]++
	e.trace.Instant(obs.CatRecovery, "fetch-failure-report", e.eng.Now(), run.tt.node, laneHeartbeat,
		obs.Int("map", m), obs.Int("partition", run.p), obs.Int("reports", jt.fetchReports[m]))
	if jt.fetchReports[m] < e.cfg.FetchFailureNotices {
		return
	}
	jt.fetchReports[m] = 0
	serving := e.mapHost[m]
	e.failCount[m]++
	if e.failCount[m] >= e.cfg.MaxTaskAttempts {
		e.fail(&JobFailure{
			Kind:     FailTaskAttemptsExhausted,
			Task:     m,
			Node:     serving,
			Attempts: e.failCount[m],
			Cause:    faults.ErrCorruptOutput,
		})
		return
	}
	e.splitDone[m] = false
	e.mapHost[m] = -1
	jt.mapResults[m] = MapAttempt{}
	jt.mapsDone--
	jt.requeue(m)
	e.stats.MapOutputsLost++
	e.met.outputsLost.Inc()
	e.stats.MapsReexecuted++
	e.met.mapsReexec.Inc()
	e.trace.Instant(obs.CatRecovery, "map-output-lost", e.eng.Now(), serving, laneHeartbeat,
		obs.Int("split", m), obs.Str("cause", "fetch-failures"))
	if serving >= 0 {
		e.noteNodeFailure(e.slaves[serving])
	}
}

func (e *engine) finishJob() {
	e.finish = e.eng.Now()
	e.eng.Halt()
}

func (e *engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.eng.Halt()
}

// collectOutput assembles the job's functional output.
func (e *engine) collectOutput() {
	for _, n := range e.skippedBy {
		e.stats.RecordsSkipped += n
	}
	if e.stats.RecordsSkipped > 0 {
		e.met.recSkipped.Add(float64(e.stats.RecordsSkipped))
	}
	if e.cpuDurN > 0 {
		e.stats.MapTimeCPU = e.cpuDurSum / float64(e.cpuDurN)
	}
	if e.gpuDurN > 0 {
		e.stats.MapTimeGPU = e.gpuDurSum / float64(e.gpuDurN)
	}
	jt := e.jt
	if jt.totalReduces == 0 {
		for _, res := range jt.mapResults {
			e.stats.Output = append(e.stats.Output, res.MapOutput...)
		}
		// Map-only output files are unordered across tasks; canonicalize.
		sort.SliceStable(e.stats.Output, func(i, j int) bool {
			return kv.Compare(e.stats.Output[i].Key, e.stats.Output[j].Key) < 0
		})
		return
	}
	for _, out := range jt.reduceOut {
		e.stats.Output = append(e.stats.Output, out...)
	}
}
