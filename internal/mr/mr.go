// Package mr implements the Hadoop 1.x MapReduce engine that HeteroDoop
// extends (paper §2.2, §5.1, §6): a JobTracker and per-slave TaskTrackers
// communicating via heartbeats, map slots and per-GPU slots, data-local
// task assignment, the shuffle/merge/reduce pipeline, task-failure
// rescheduling, and three map schedulers — CPU-only (baseline Hadoop),
// GPU-first, and HeteroDoop's tail scheduling (Algorithm 2).
//
// The engine runs on virtual time (package sim); task durations come from
// an Executor, which either runs tasks functionally (integration tests,
// small jobs) or replays sampled per-split measurements (cluster-scale
// experiments).
package mr

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/gpurt"
	"repro/internal/kv"
	"repro/internal/obs"
	"repro/internal/sim"
)

// SchedulerKind selects the map-task scheduler.
type SchedulerKind int

// Schedulers.
const (
	// CPUOnly is baseline Hadoop: no GPU slots.
	CPUOnly SchedulerKind = iota
	// GPUFirst places a task on a free GPU if any, else a free CPU slot.
	GPUFirst
	// TailSched is HeteroDoop's Algorithm 2: GPU-first until the job/task
	// tail begins, then tasks are forced onto GPUs.
	//
	// Note on fidelity: the paper's Algorithm 2 as printed compares
	// `taskTail <= numMapsRemainingPerNode -> forceGPU`, which contradicts
	// both the paper's prose and Figure 3 (the tail is when FEW tasks
	// remain). We implement the semantics of Figure 3: force GPU when
	// remaining-per-node <= taskTail, and throttle the JobTracker to
	// numGPUs assignments per heartbeat when remaining <= jobTail.
	TailSched
)

func (s SchedulerKind) String() string {
	switch s {
	case CPUOnly:
		return "cpu-only"
	case GPUFirst:
		return "gpu-first"
	case TailSched:
		return "tail"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", int(s))
	}
}

// NodeConfig describes one slave node's slots (Table 3 rows "Max. Map
// Slots Per Node" and "Max. Reduce Slots Per Node").
type NodeConfig struct {
	MapSlots    int // CPU map slots (== cores used for maps)
	ReduceSlots int
	GPUs        int // one reserved slot per GPU (consumes no CPU)
}

// ClusterConfig describes the simulated cluster for one job run.
type ClusterConfig struct {
	Name   string
	Slaves int
	Node   NodeConfig
	// Scheduler selects the map scheduling policy.
	Scheduler SchedulerKind
	// HeartbeatSec is the TaskTracker heartbeat interval.
	HeartbeatSec float64
	// ReduceSlowstart is the completed-maps fraction before reduces launch
	// (Table 3: 20%).
	ReduceSlowstart float64
	// ShuffleGBs is the per-reducer fetch bandwidth.
	ShuffleGBs float64
	// GPUFailureRate injects per-attempt GPU task failures (0 = none).
	// Compatibility shim: when Faults is nil, a non-zero rate synthesizes
	// an equivalent faults.Plan. Ignored when Faults is set.
	GPUFailureRate float64
	// Faults is the deterministic fault-injection plan for the run (nil =
	// perfect cluster, modulo GPUFailureRate above). The plan is cloned, so
	// the caller's copy is never mutated; a zero plan seed inherits Seed.
	Faults *faults.Plan
	// MaxTaskAttempts caps failed attempts per map task before the job is
	// failed with a JobFailure (Hadoop mapred.map.max.attempts). Default 4.
	MaxTaskAttempts int
	// HeartbeatExpirySec is how long the JobTracker tolerates silence
	// before declaring a TaskTracker dead, requeueing its running attempts
	// and re-executing its committed map outputs. Default 10 heartbeats.
	HeartbeatExpirySec float64
	// NodeFailureLimit is the task-failure count that blacklists a node.
	// Default 3.
	NodeFailureLimit int
	// BlacklistBackoffSec is the first blacklist duration; it doubles with
	// each further blacklisting of the node. Default 4 heartbeats.
	BlacklistBackoffSec float64
	// FetchRetries is how many consecutive failures of one map-output fetch
	// a reducer tolerates before reporting the output to the JobTracker
	// (Hadoop's shuffle retry burst). The reducer keeps retrying with
	// capped exponential backoff either way. Default 3.
	FetchRetries int
	// FetchBackoffSec is the base delay between fetch retries; it doubles
	// per consecutive failure up to 32x. Default HeartbeatSec/4.
	FetchBackoffSec float64
	// FetchFailureNotices is how many fetch-failure reports a map output
	// accumulates before the JobTracker declares it lost and re-executes
	// the map (Hadoop's "too many fetch failures"). Default 3.
	FetchFailureNotices int
	// SkipBadRecords opts the job into Hadoop's skip-bad-records mode:
	// poisoned input records are dropped (and accounted in JobStats)
	// instead of crashing the map attempt.
	SkipBadRecords bool
	// MaxSkippedRecords bounds the skips a job may accumulate before it is
	// failed with FailSkipLimitExceeded. Default 64.
	MaxSkippedRecords int
	// SpeculativeExecution enables backup attempts for straggling map
	// tasks on idle slots once the pending queue drains. The paper's runs
	// disable it (Table 3); this reproduction implements it as an
	// extension, mainly for the inter-node-heterogeneity scenario the
	// paper defers to future work (§9).
	SpeculativeExecution bool
	// Seed drives all randomized decisions (failure draws).
	Seed uint64
	// Obs, when non-nil, receives spans and metrics from the run. A nil
	// recorder keeps every instrumentation call a no-op; scheduling and
	// JobStats are identical either way.
	Obs *obs.Recorder
	// Workers bounds host-side parallel execution of independent task
	// computations (map attempts, reduce fetch/sort/reduce work). 0 or 1
	// runs the engine exactly as the serial implementation — no worker
	// goroutines at all. Any value yields byte-identical output, stats,
	// traces, and metrics; only wall-clock time changes.
	Workers int
	// Pool optionally shares an existing worker pool (e.g. an experiment
	// sweep running several jobs concurrently). When set, Workers is
	// ignored and the pool is not closed by RunJob.
	Pool *sim.Pool
}

func (c *ClusterConfig) fillDefaults() {
	if c.HeartbeatSec == 0 {
		c.HeartbeatSec = 3.0
	}
	if c.ReduceSlowstart == 0 {
		c.ReduceSlowstart = 0.2
	}
	if c.ShuffleGBs == 0 {
		c.ShuffleGBs = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxTaskAttempts == 0 {
		c.MaxTaskAttempts = 4
	}
	if c.HeartbeatExpirySec == 0 {
		c.HeartbeatExpirySec = 10 * c.HeartbeatSec
	}
	if c.NodeFailureLimit == 0 {
		c.NodeFailureLimit = 3
	}
	if c.BlacklistBackoffSec == 0 {
		c.BlacklistBackoffSec = 4 * c.HeartbeatSec
	}
	if c.FetchRetries == 0 {
		c.FetchRetries = 3
	}
	if c.FetchBackoffSec == 0 {
		c.FetchBackoffSec = c.HeartbeatSec / 4
	}
	if c.FetchFailureNotices == 0 {
		c.FetchFailureNotices = 3
	}
	if c.MaxSkippedRecords == 0 {
		c.MaxSkippedRecords = 64
	}
}

// Validate checks the configuration.
func (c *ClusterConfig) Validate() error {
	if c.Slaves <= 0 {
		return fmt.Errorf("mr: cluster needs at least one slave")
	}
	if c.Node.MapSlots <= 0 && c.Node.GPUs <= 0 {
		return fmt.Errorf("mr: node has no map capacity")
	}
	if c.Scheduler != CPUOnly && c.Node.GPUs <= 0 {
		return fmt.Errorf("mr: scheduler %v needs GPUs", c.Scheduler)
	}
	if c.Scheduler == CPUOnly && c.Node.GPUs > 0 {
		return fmt.Errorf("mr: cpu-only scheduler must not have GPU slots")
	}
	return nil
}

// MapAttempt is the outcome of one map task execution.
type MapAttempt struct {
	// Duration is the end-to-end task time in seconds.
	Duration float64
	// Partitions holds per-reducer combined output (functional runs only).
	Partitions [][]kv.Pair
	// MapOutput holds map-only output (functional runs only).
	MapOutput []kv.Pair
	// OutputBytes sizes the intermediate output for the shuffle model.
	OutputBytes int64
	// PartitionSums holds one CRC32 per reduce partition, computed once
	// when the attempt's output is materialized (checksum-on-write).
	// Reducers recompute and compare on fetch. Nil for timing-only
	// executors, which makes checksum verification vacuous.
	PartitionSums []uint32
	// SkippedRecords counts poisoned input records this attempt dropped in
	// skip-bad-records mode.
	SkippedRecords int
	// GPU carries the device-side breakdown of a GPU attempt (nil for CPU
	// attempts and for executors that only replay timings).
	GPU *GPUAttemptDetail
}

// GPUAttemptDetail is the profiling payload of one GPU map attempt: the
// Figure-6 stage breakdown plus per-kernel profiles for the trace.
type GPUAttemptDetail struct {
	Stages   gpurt.StageTimes
	Profiles []obs.KernelProfile
}

// ReduceWork is the outcome of one reduce task execution.
type ReduceWork struct {
	// ShuffleTime covers fetching this reducer's partitions.
	ShuffleTime float64
	// ComputeTime covers merge + reduce function + HDFS write.
	ComputeTime float64
	// Output holds the reducer's final pairs (functional runs only).
	Output []kv.Pair
}

// Executor supplies task work to the engine.
type Executor interface {
	// NumSplits is the number of map tasks.
	NumSplits() int
	// NumReducers is the number of reduce tasks (0 = map-only).
	NumReducers() int
	// Locations lists the nodes holding split i's data.
	Locations(split int) []int
	// MapTask executes map task `split` on the given node and device.
	MapTask(split int, onGPU bool, node int) (MapAttempt, error)
	// ReduceTask executes reduce task p over the collected inputs.
	ReduceTask(p int, inputs [][]kv.Pair) (ReduceWork, error)
}

// IntegrityConfig carries the data-integrity settings RunJob pushes into an
// executor before the job starts: the normalized fault plan (for input
// poisoning) and the skip-bad-records policy.
type IntegrityConfig struct {
	Plan              *faults.Plan
	SkipBadRecords    bool
	MaxSkippedRecords int
}

// integrityConfigurable is the optional Executor extension for input
// poisoning and skip-bad-records. Executors that don't read real input
// (timing-only replays, test fakes) simply don't implement it.
type integrityConfigurable interface {
	ConfigureIntegrity(IntegrityConfig)
}

// partitionSummer is the optional Executor extension the engine uses to
// recompute a partition's checksum on fetch (verify-on-fetch). Only the
// executor knows the job's KV schema, so the engine delegates the CRC.
type partitionSummer interface {
	PartitionSum(pairs []kv.Pair) uint32
}

// prefetcher is the optional Executor extension for parallel execution.
// The engine hands the executor a worker pool and hints at work it will
// (probably) request later; the executor may precompute pure task results
// on the pool and serve them from its cache when the engine's event loop
// reaches the corresponding MapTask/ReduceTask call. Prefetching is
// strictly a wall-clock optimization: a hinted computation that the
// engine never requests is discarded without observable effect, and a
// request that was never hinted computes inline exactly as the serial
// engine would.
type prefetcher interface {
	// SetWorkerPool installs the pool (called once, before any hint).
	SetWorkerPool(p *sim.Pool)
	// PrefetchMaps hints that every split's map attempt may be requested
	// on the given device classes (data-local placement).
	PrefetchMaps(gpu bool)
	// PrefetchReduce hints that partition p will be reduced over exactly
	// these inputs. A later ReduceTask call with different inputs (e.g.
	// after a map re-execution replaced them) ignores the hint.
	PrefetchReduce(p int, inputs [][]kv.Pair)
}

// JobStats summarizes a completed job.
type JobStats struct {
	Makespan float64
	// Device placement counts.
	MapsOnCPU, MapsOnGPU int
	// Retries counts failed GPU attempts that were rescheduled.
	Retries int
	// DataLocalMaps counts node-local map tasks.
	DataLocalMaps int
	// MaxSpeedup is the peak per-node GPU/CPU speedup the JobTracker saw.
	MaxSpeedup float64
	// ForcedGPUTasks counts tasks tail-forced onto GPUs.
	ForcedGPUTasks int
	// SpeculativeLaunched / SpeculativeWon count backup attempts and how
	// many finished before the original (speculative execution extension).
	SpeculativeLaunched, SpeculativeWon int
	// Output is the job's final output (functional runs): reduce outputs
	// concatenated in partition order, or map outputs for map-only jobs.
	Output []kv.Pair
	// MapTimeCPU / MapTimeGPU are the average durations observed.
	MapTimeCPU, MapTimeGPU float64
	// MapPhaseEnd is the virtual time the last map task committed.
	MapPhaseEnd float64
	// ShuffleResidualSec sums, over reducers, the shuffle time left after
	// the map phase ended (the serial tail the overlap could not hide).
	ShuffleResidualSec float64
	// GPUQueueWaitSec sums the time tail-forced tasks spent waiting in GPU
	// driver queues before a slot freed up.
	GPUQueueWaitSec float64
	// GPUQueuePeak is the deepest any single node's GPU driver queue got.
	GPUQueuePeak int
	// FailedAttempts counts injected task-attempt failures (CPU and GPU).
	FailedAttempts int
	// LostAttempts counts running attempts killed by node death or GPU
	// retirement.
	LostAttempts int
	// NodesLost counts TaskTracker deaths the JobTracker declared.
	NodesLost int
	// MapsReexecuted counts committed map outputs re-run after their host
	// died while reducers still needed them (map-output-loss semantics).
	MapsReexecuted int
	// NodeBlacklists counts blacklist decisions against failing nodes.
	NodeBlacklists int
	// GPUFallbacks counts splits demoted to the CPU path after a GPU
	// attempt failure or device retirement.
	GPUFallbacks int
	// ReducesRestarted counts reduce attempts restarted after their host
	// died.
	ReducesRestarted int
	// FetchFailures counts reducer fetch attempts that failed (transient
	// fetch faults plus checksum mismatches).
	FetchFailures int
	// CorruptPartitions counts fetches rejected by checksum verification.
	CorruptPartitions int
	// Refetches counts fetch retries (attempts beyond the first per
	// reducer/map-output pair).
	Refetches int
	// MapOutputsLost counts map outputs the JobTracker declared lost after
	// accumulating too many fetch-failure reports (each one re-executes
	// the map, also counted in MapsReexecuted).
	MapOutputsLost int
	// RecordsSkipped counts poisoned input records dropped across the job
	// in skip-bad-records mode (exact: one per poisoned record read).
	RecordsSkipped int
}
