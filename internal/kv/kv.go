// Package kv defines the typed key/value representation shared by the CPU
// (Hadoop Streaming) and GPU execution paths of HeteroDoop. Both paths must
// agree on serialization, ordering, and partitioning so that a job produces
// identical output regardless of where its tasks ran.
package kv

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind describes the wire type of a key or value.
type Kind uint8

const (
	// Bytes is a raw byte string (C char arrays, words, lines).
	Bytes Kind = iota
	// Int is a signed 64-bit integer.
	Int
	// Float is a 64-bit IEEE float.
	Float
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case Bytes:
		return "bytes"
	case Int:
		return "int"
	case Float:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single typed key or value. Exactly one of B / I / F is
// meaningful, selected by Kind.
type Value struct {
	Kind Kind
	B    []byte
	I    int64
	F    float64
}

// BytesValue builds a Bytes-kind value.
func BytesValue(b []byte) Value { return Value{Kind: Bytes, B: b} }

// StringValue builds a Bytes-kind value from a string.
func StringValue(s string) Value { return Value{Kind: Bytes, B: []byte(s)} }

// IntValue builds an Int-kind value.
func IntValue(i int64) Value { return Value{Kind: Int, I: i} }

// FloatValue builds a Float-kind value.
func FloatValue(f float64) Value { return Value{Kind: Float, F: f} }

// Text renders the value the way Hadoop Streaming would print it.
func (v Value) Text() string {
	switch v.Kind {
	case Bytes:
		return string(v.B)
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', 12, 64)
	default:
		return ""
	}
}

// ParseValue parses a streaming text field into a value of the given kind.
func ParseValue(kind Kind, text string) (Value, error) {
	switch kind {
	case Bytes:
		return BytesValue([]byte(text)), nil
	case Int:
		i, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("kv: parse int %q: %w", text, err)
		}
		return IntValue(i), nil
	case Float:
		f, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
		if err != nil {
			return Value{}, fmt.Errorf("kv: parse float %q: %w", text, err)
		}
		return FloatValue(f), nil
	default:
		return Value{}, fmt.Errorf("kv: unknown kind %v", kind)
	}
}

// Compare orders two values of the same kind: bytewise for Bytes, numeric
// for Int and Float. Comparing mismatched kinds orders by kind, which keeps
// sorts total even on malformed streams.
func Compare(a, b Value) int {
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case Bytes:
		return bytes.Compare(a.B, b.B)
	case Int:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case Float:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	}
	return 0
}

// Pair is one key/value record.
type Pair struct {
	Key Value
	Val Value
}

// Text renders the pair as a tab-separated streaming line (no newline).
func (p Pair) Text() string { return p.Key.Text() + "\t" + p.Val.Text() }

// ParsePair splits a streaming line at the first tab and parses both sides.
// A line with no tab becomes a pair with an empty value of valKind's zero.
func ParsePair(keyKind, valKind Kind, line string) (Pair, error) {
	keyText := line
	valText := ""
	if i := strings.IndexByte(line, '\t'); i >= 0 {
		keyText, valText = line[:i], line[i+1:]
	}
	k, err := ParseValue(keyKind, keyText)
	if err != nil {
		return Pair{}, err
	}
	if valText == "" && valKind != Bytes {
		return Pair{Key: k, Val: Value{Kind: valKind}}, nil
	}
	v, err := ParseValue(valKind, valText)
	if err != nil {
		return Pair{}, err
	}
	return Pair{Key: k, Val: v}, nil
}

// Schema fixes the wire types and serialized lengths of a job's
// intermediate KV pairs. KeyLen/ValLen mirror the paper's keylength and
// vallength clauses: byte keys/values are stored in fixed-size, zero-padded
// slots of the global KV store on the GPU.
type Schema struct {
	KeyKind Kind
	ValKind Kind
	KeyLen  int // slot bytes for the key (Bytes kind); 8 for Int/Float
	ValLen  int // slot bytes for the value
}

// SlotKeyLen returns the key slot size in bytes on the GPU.
func (s Schema) SlotKeyLen() int {
	if s.KeyKind != Bytes {
		return 8
	}
	return s.KeyLen
}

// SlotValLen returns the value slot size in bytes on the GPU.
func (s Schema) SlotValLen() int {
	if s.ValKind != Bytes {
		return 8
	}
	return s.ValLen
}

// EncodeKey serializes v into a fresh slot of SlotKeyLen bytes. Numeric
// keys are encoded order-preservingly (big-endian with sign-bit flip for
// ints, IEEE total-order trick for floats) so bytewise GPU comparisons sort
// identically to numeric CPU comparisons.
func (s Schema) EncodeKey(v Value) []byte {
	return encode(v, s.SlotKeyLen())
}

// EncodeVal serializes v into a fresh slot of SlotValLen bytes.
func (s Schema) EncodeVal(v Value) []byte {
	return encode(v, s.SlotValLen())
}

func encode(v Value, slot int) []byte {
	out := make([]byte, slot)
	switch v.Kind {
	case Bytes:
		copy(out, v.B)
	case Int:
		binary.BigEndian.PutUint64(out, uint64(v.I)^(1<<63))
	case Float:
		bits := math.Float64bits(v.F)
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		binary.BigEndian.PutUint64(out, bits)
	}
	return out
}

// DecodeKey reverses EncodeKey.
func (s Schema) DecodeKey(b []byte) Value { return decode(s.KeyKind, b) }

// DecodeVal reverses EncodeVal.
func (s Schema) DecodeVal(b []byte) Value { return decode(s.ValKind, b) }

func decode(kind Kind, b []byte) Value {
	switch kind {
	case Bytes:
		// Trim the zero padding that fixed slots introduce.
		end := len(b)
		for end > 0 && b[end-1] == 0 {
			end--
		}
		return BytesValue(append([]byte(nil), b[:end]...))
	case Int:
		u := binary.BigEndian.Uint64(b) ^ (1 << 63)
		return IntValue(int64(u))
	case Float:
		bits := binary.BigEndian.Uint64(b)
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return FloatValue(math.Float64frombits(bits))
	}
	return Value{}
}

// Partition returns the reducer index for key, matching Hadoop's
// HashPartitioner contract: a non-negative hash modulo the reducer count.
// Both the CPU streaming path and the GPU runtime call this exact function,
// which is what makes their partitions agree.
func Partition(key Value, numReducers int) int {
	if numReducers <= 1 {
		return 0
	}
	var h uint32 = 2166136261 // FNV-1a
	hash := func(b []byte) {
		for _, c := range b {
			h ^= uint32(c)
			h *= 16777619
		}
	}
	switch key.Kind {
	case Bytes:
		hash(key.B)
	case Int:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(key.I))
		hash(buf[:])
	case Float:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(key.F))
		hash(buf[:])
	}
	return int(h % uint32(numReducers))
}

// SortPairs sorts pairs by key (stable with respect to insertion order of
// equal keys via index tie-break), ascending.
func SortPairs(pairs []Pair) {
	stableSortBy(pairs, func(a, b Pair) int { return Compare(a.Key, b.Key) })
}

func stableSortBy(pairs []Pair, cmp func(a, b Pair) int) {
	// Bottom-up merge sort: stable, allocation-predictable, and mirrors the
	// merge structure the GPU sort uses.
	n := len(pairs)
	if n < 2 {
		return
	}
	buf := make([]Pair, n)
	src, dst := pairs, buf
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if cmp(src[i], src[j]) <= 0 {
					dst[k] = src[i]
					i++
				} else {
					dst[k] = src[j]
					j++
				}
				k++
			}
			for i < mid {
				dst[k] = src[i]
				i++
				k++
			}
			for j < hi {
				dst[k] = src[j]
				j++
				k++
			}
		}
		src, dst = dst, src
	}
	if &src[0] != &pairs[0] {
		copy(pairs, src)
	}
}
