package kv

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestValueText(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{StringValue("hello"), "hello"},
		{IntValue(-42), "-42"},
		{IntValue(0), "0"},
		{FloatValue(1.5), "1.5"},
	}
	for _, c := range cases {
		if got := c.v.Text(); got != c.want {
			t.Errorf("Text(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	for _, v := range []Value{StringValue("word"), IntValue(123), IntValue(-9), FloatValue(3.25)} {
		got, err := ParseValue(v.Kind, v.Text())
		if err != nil {
			t.Fatalf("ParseValue(%v): %v", v, err)
		}
		if Compare(got, v) != 0 {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	if _, err := ParseValue(Int, "abc"); err == nil {
		t.Error("parsing int from 'abc' should fail")
	}
	if _, err := ParseValue(Float, "xy"); err == nil {
		t.Error("parsing float from 'xy' should fail")
	}
}

func TestPairTextAndParse(t *testing.T) {
	p := Pair{Key: StringValue("the"), Val: IntValue(7)}
	line := p.Text()
	if line != "the\t7" {
		t.Fatalf("Text = %q", line)
	}
	q, err := ParsePair(Bytes, Int, line)
	if err != nil {
		t.Fatal(err)
	}
	if Compare(q.Key, p.Key) != 0 || Compare(q.Val, p.Val) != 0 {
		t.Fatalf("parse mismatch: %v vs %v", q, p)
	}
}

func TestParsePairNoTab(t *testing.T) {
	p, err := ParsePair(Bytes, Int, "loneword")
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Key.B) != "loneword" || p.Val.I != 0 {
		t.Fatalf("got %v", p)
	}
}

func TestParsePairValueWithTabs(t *testing.T) {
	p, err := ParsePair(Bytes, Bytes, "k\tv1\tv2")
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Val.B) != "v1\tv2" {
		t.Fatalf("value = %q, want %q", p.Val.B, "v1\tv2")
	}
}

func TestCompareKinds(t *testing.T) {
	if Compare(StringValue("a"), StringValue("b")) >= 0 {
		t.Error("bytes compare failed")
	}
	if Compare(IntValue(-5), IntValue(3)) >= 0 {
		t.Error("int compare failed")
	}
	if Compare(FloatValue(1.5), FloatValue(1.5)) != 0 {
		t.Error("float equality failed")
	}
	if Compare(StringValue("z"), IntValue(0)) == 0 {
		t.Error("cross-kind compare should not be equal")
	}
}

func TestEncodedIntKeyOrderMatchesNumericOrder(t *testing.T) {
	s := Schema{KeyKind: Int}
	if err := quick.Check(func(a, b int64) bool {
		ea, eb := s.EncodeKey(IntValue(a)), s.EncodeKey(IntValue(b))
		byteOrder := bytes.Compare(ea, eb)
		numOrder := Compare(IntValue(a), IntValue(b))
		return sign(byteOrder) == sign(numOrder)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedFloatKeyOrderMatchesNumericOrder(t *testing.T) {
	s := Schema{KeyKind: Float}
	vals := []float64{-1e300, -3.5, -0.0, 0.0, 1e-9, 2.25, 7, 1e300}
	for i, a := range vals {
		for j, b := range vals {
			ea, eb := s.EncodeKey(FloatValue(a)), s.EncodeKey(FloatValue(b))
			byteOrder := bytes.Compare(ea, eb)
			var numOrder int
			switch {
			case a < b:
				numOrder = -1
			case a > b:
				numOrder = 1
			}
			// -0.0 and +0.0 encode differently but are numerically equal;
			// accept either order for that single pair.
			if a == b && a == 0 {
				continue
			}
			if sign(byteOrder) != numOrder {
				t.Errorf("pair (%d,%d) (%v,%v): byte order %d, numeric %d", i, j, a, b, byteOrder, numOrder)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := Schema{KeyKind: Bytes, ValKind: Int, KeyLen: 16}
	k := s.EncodeKey(StringValue("word"))
	if len(k) != 16 {
		t.Fatalf("slot len = %d, want 16", len(k))
	}
	if got := s.DecodeKey(k); string(got.B) != "word" {
		t.Fatalf("decode = %q", got.B)
	}
	v := s.EncodeVal(IntValue(-12345))
	if got := s.DecodeVal(v); got.I != -12345 {
		t.Fatalf("decode val = %d", got.I)
	}
}

func TestEncodeDecodeFloatRoundTrip(t *testing.T) {
	s := Schema{ValKind: Float}
	if err := quick.Check(func(f float64) bool {
		if math.IsNaN(f) {
			return true
		}
		got := s.DecodeVal(s.EncodeVal(FloatValue(f)))
		return got.F == f
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeBytesTruncatesToSlot(t *testing.T) {
	s := Schema{KeyKind: Bytes, KeyLen: 4}
	k := s.EncodeKey(StringValue("abcdefgh"))
	if len(k) != 4 {
		t.Fatalf("len = %d", len(k))
	}
	if got := s.DecodeKey(k); string(got.B) != "abcd" {
		t.Fatalf("decode = %q", got.B)
	}
}

func TestPartitionStableAndInRange(t *testing.T) {
	keys := []Value{StringValue("a"), StringValue("zebra"), IntValue(17), FloatValue(2.5)}
	for _, k := range keys {
		p1 := Partition(k, 16)
		p2 := Partition(k, 16)
		if p1 != p2 {
			t.Fatalf("partition unstable for %v", k)
		}
		if p1 < 0 || p1 >= 16 {
			t.Fatalf("partition out of range: %d", p1)
		}
	}
	if Partition(StringValue("anything"), 1) != 0 {
		t.Fatal("single reducer must map to 0")
	}
}

func TestPartitionSpreads(t *testing.T) {
	seen := map[int]bool{}
	words := []string{"apple", "banana", "cherry", "date", "elder", "fig", "grape", "honey", "iris", "jade", "kiwi", "lemon"}
	for _, w := range words {
		seen[Partition(StringValue(w), 4)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("hash partitioner used only %d of 4 buckets for %d keys", len(seen), len(words))
	}
}

func TestSortPairsOrdersByKey(t *testing.T) {
	pairs := []Pair{
		{StringValue("cherry"), IntValue(1)},
		{StringValue("apple"), IntValue(2)},
		{StringValue("banana"), IntValue(3)},
		{StringValue("apple"), IntValue(4)},
	}
	SortPairs(pairs)
	if string(pairs[0].Key.B) != "apple" || string(pairs[1].Key.B) != "apple" || string(pairs[2].Key.B) != "banana" {
		t.Fatalf("sorted order wrong: %v", pairs)
	}
	// Stability: the apple/2 pair preceded apple/4 before sorting.
	if pairs[0].Val.I != 2 || pairs[1].Val.I != 4 {
		t.Fatalf("sort not stable: %v", pairs)
	}
}

func TestSortPairsPropertySorted(t *testing.T) {
	if err := quick.Check(func(seed int64, n uint8) bool {
		cnt := int(n%200) + 1
		pairs := make([]Pair, cnt)
		x := uint64(seed)
		for i := range pairs {
			x = x*6364136223846793005 + 1442695040888963407
			pairs[i] = Pair{IntValue(int64(x % 1000)), IntValue(int64(i))}
		}
		SortPairs(pairs)
		return sort.SliceIsSorted(pairs, func(i, j int) bool {
			return pairs[i].Key.I < pairs[j].Key.I
		})
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortPairsEmptyAndSingle(t *testing.T) {
	SortPairs(nil)
	one := []Pair{{IntValue(1), IntValue(1)}}
	SortPairs(one)
	if one[0].Key.I != 1 {
		t.Fatal("single-element sort corrupted data")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}
