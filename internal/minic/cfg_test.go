package minic

import "testing"

func buildFor(t *testing.T, src string) *CFG {
	t.Helper()
	prog, err := ParseAndCheck(src)
	if err != nil {
		t.Fatalf("ParseAndCheck: %v", err)
	}
	fn := prog.Func("main")
	if fn == nil {
		t.Fatal("no main")
	}
	return BuildCFG(fn)
}

// reachable returns the set of blocks reachable from the entry.
func reachable(cfg *CFG) map[*CFGBlock]bool {
	seen := map[*CFGBlock]bool{}
	var visit func(b *CFGBlock)
	visit = func(b *CFGBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(cfg.Entry)
	return seen
}

func TestCFGStraightLine(t *testing.T) {
	cfg := buildFor(t, `int main() { int x; x = 1; return x; }`)
	if len(cfg.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3 (decl, assign, return)", len(cfg.Entry.Nodes))
	}
	if !reachable(cfg)[cfg.Exit] {
		t.Fatal("exit not reachable")
	}
}

func TestCFGIfElseJoin(t *testing.T) {
	cfg := buildFor(t, `int main() { int x; x = 0; if (x) { x = 1; } else { x = 2; } return x; }`)
	// Entry ends with the condition and branches to then/else.
	if n := len(cfg.Entry.Succs); n != 2 {
		t.Fatalf("cond block succs = %d, want 2", n)
	}
	if !reachable(cfg)[cfg.Exit] {
		t.Fatal("exit not reachable")
	}
}

func TestCFGWhileLoopBackEdge(t *testing.T) {
	cfg := buildFor(t, `int main() { int i; i = 0; while (i < 3) { i = i + 1; } return i; }`)
	// Find the header: a block with 2 succs, one of which loops back to it.
	var header *CFGBlock
	for _, b := range cfg.Blocks {
		if len(b.Succs) == 2 {
			for _, s := range b.Succs {
				for _, ss := range s.Succs {
					if ss == b {
						header = b
					}
				}
			}
		}
	}
	if header == nil {
		t.Fatal("no loop header with back edge found")
	}
}

func TestCFGForBreakContinue(t *testing.T) {
	cfg := buildFor(t, `int main() {
		int s; s = 0;
		for (int i = 0; i < 10; i++) {
			if (i == 2) continue;
			if (i == 5) break;
			s = s + i;
		}
		return s;
	}`)
	if !reachable(cfg)[cfg.Exit] {
		t.Fatal("exit not reachable")
	}
	// Every reachable non-exit block must have at least one successor.
	for b := range reachable(cfg) {
		if b != cfg.Exit && len(b.Succs) == 0 && len(b.Nodes) > 0 {
			t.Fatalf("reachable block %d has nodes but no successors", b.ID)
		}
	}
}

func TestCFGReturnCutsFlow(t *testing.T) {
	cfg := buildFor(t, `int main() { return 0; }`)
	// The block after return is unreachable.
	r := reachable(cfg)
	unreached := 0
	for _, b := range cfg.Blocks {
		if !r[b] {
			unreached++
		}
	}
	if unreached == 0 {
		t.Fatal("expected an unreachable block after return")
	}
}

func TestCFGPragmaTransparent(t *testing.T) {
	cfg := buildFor(t, `int main() {
		int x; x = 0;
		#pragma mapreduce mapper key(x) value(x)
		while (x < 3) { x = x + 1; }
		return x;
	}`)
	// The pragma body (while loop) must be linked into the graph: a back
	// edge exists.
	hasBack := false
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if s == b {
				continue
			}
			for _, ss := range s.Succs {
				if ss == b {
					hasBack = true
				}
			}
		}
	}
	if !hasBack {
		t.Fatal("pragma-wrapped loop produced no back edge")
	}
}
