// Package minic implements the frontend for the C subset ("MiniC") that
// HeteroDoop programs are written in: a lexer that also captures
// `#pragma mapreduce` annotations, a recursive-descent parser producing an
// AST, a small type system, and a semantic checker. The HeteroDoop
// translator (package compiler) consumes this AST, and the interpreter
// (package interp) executes it on the simulated CPU and GPU.
package minic

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokCharLit
	TokStrLit
	TokKeyword
	TokPunct  // operators and punctuation
	TokPragma // a full `#pragma ...` logical line (continuations joined)
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokIntLit:
		return "integer literal"
	case TokFloatLit:
		return "float literal"
	case TokCharLit:
		return "char literal"
	case TokStrLit:
		return "string literal"
	case TokKeyword:
		return "keyword"
	case TokPunct:
		return "punctuation"
	case TokPragma:
		return "pragma"
	default:
		return fmt.Sprintf("TokKind(%d)", int(k))
	}
}

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token. Text holds the raw spelling; for TokStrLit
// and TokCharLit the quotes are stripped and escapes decoded.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
	// IntVal / FloatVal carry decoded literal values.
	IntVal   int64
	FloatVal float64
}

func (t Token) String() string {
	return fmt.Sprintf("%s %q at %s", t.Kind, t.Text, t.Pos)
}

var keywords = map[string]bool{
	"int": true, "char": true, "long": true, "short": true,
	"float": true, "double": true, "void": true,
	"unsigned": true, "signed": true, "const": true, "size_t": true,
	"if": true, "else": true, "while": true, "for": true, "do": true,
	"return": true, "break": true, "continue": true, "sizeof": true,
	"static": true, "struct": true, "NULL": true,
}

// IsTypeKeyword reports whether s begins a type in MiniC.
func IsTypeKeyword(s string) bool {
	switch s {
	case "int", "char", "long", "short", "float", "double", "void",
		"unsigned", "signed", "const", "size_t", "static":
		return true
	}
	return false
}
