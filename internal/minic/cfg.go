package minic

// This file provides a control-flow graph over MiniC statements. The CFG is
// consumed by the static-analysis suite (package analysis) for dataflow
// passes: reaching definitions, liveness, and use-before-init checks.
//
// Granularity: each CFG node is either a Stmt (DeclStmt, ExprStmt, Return,
// EmptyStmt) or an Expr (a branch/loop condition, or a for-post expression).
// Nodes within a block appear in evaluation order; branch conditions are the
// last node of the block that branches on them.

// CFGBlock is one basic block: a straight-line sequence of nodes with a
// single entry and a set of successor edges.
type CFGBlock struct {
	ID    int
	Nodes []Node
	Succs []*CFGBlock
	Preds []*CFGBlock
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *CFGBlock
	Exit   *CFGBlock
	Blocks []*CFGBlock
}

// BuildCFG constructs the control-flow graph of fn's body. Pragma statements
// are transparent: their bodies are linked in place, so directive regions
// participate in dataflow like ordinary code. break/continue outside a loop
// (rejected by Check) conservatively edge to the exit block.
func BuildCFG(fn *FuncDecl) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmt(fn.Body)
	b.link(b.cur, b.cfg.Exit)
	return b.cfg
}

type loopCtx struct {
	brk  *CFGBlock // break target
	cont *CFGBlock // continue target
}

type cfgBuilder struct {
	cfg   *CFG
	cur   *CFGBlock
	loops []loopCtx
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{ID: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *CFGBlock) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) stmt(s Stmt) {
	switch st := s.(type) {
	case nil:
	case *Block:
		for _, inner := range st.Stmts {
			b.stmt(inner)
		}
	case *PragmaStmt:
		b.stmt(st.Body)
	case *DeclStmt, *ExprStmt, *EmptyStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
	case *If:
		b.cur.Nodes = append(b.cur.Nodes, st.Cond)
		condBlk := b.cur
		join := b.newBlock()
		then := b.newBlock()
		b.link(condBlk, then)
		b.cur = then
		b.stmt(st.Then)
		b.link(b.cur, join)
		if st.Else != nil {
			els := b.newBlock()
			b.link(condBlk, els)
			b.cur = els
			b.stmt(st.Else)
			b.link(b.cur, join)
		} else {
			b.link(condBlk, join)
		}
		b.cur = join
	case *While:
		header := b.newBlock()
		b.link(b.cur, header)
		header.Nodes = append(header.Nodes, st.Cond)
		body := b.newBlock()
		exit := b.newBlock()
		b.link(header, body)
		b.link(header, exit)
		b.loops = append(b.loops, loopCtx{brk: exit, cont: header})
		b.cur = body
		b.stmt(st.Body)
		b.link(b.cur, header)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = exit
	case *For:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		header := b.newBlock()
		b.link(b.cur, header)
		if st.Cond != nil {
			header.Nodes = append(header.Nodes, st.Cond)
		}
		body := b.newBlock()
		exit := b.newBlock()
		post := b.newBlock()
		b.link(header, body)
		if st.Cond != nil {
			b.link(header, exit)
		}
		if st.Post != nil {
			post.Nodes = append(post.Nodes, st.Post)
		}
		b.link(post, header)
		b.loops = append(b.loops, loopCtx{brk: exit, cont: post})
		b.cur = body
		b.stmt(st.Body)
		b.link(b.cur, post)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = exit
	case *Return:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.link(b.cur, b.cfg.Exit)
		b.cur = b.newBlock()
	case *Break:
		target := b.cfg.Exit
		if len(b.loops) > 0 {
			target = b.loops[len(b.loops)-1].brk
		}
		b.link(b.cur, target)
		b.cur = b.newBlock()
	case *Continue:
		target := b.cfg.Exit
		if len(b.loops) > 0 {
			target = b.loops[len(b.loops)-1].cont
		}
		b.link(b.cur, target)
		b.cur = b.newBlock()
	}
}
