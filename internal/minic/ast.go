package minic

import "strings"

// Node is implemented by all AST nodes.
type Node interface {
	nodePos() Pos
}

// NodePos returns n's source position (zero Pos for nil-typed nodes).
func NodePos(n Node) Pos {
	if n == nil {
		return Pos{}
	}
	return n.nodePos()
}

// ---- Types ----

// TypeKind enumerates MiniC types.
type TypeKind int

// Type kinds. Unsigned and size_t collapse onto Int/Long; this matches the
// needs of the paper's benchmarks, which use the types only for storage.
const (
	TypeVoid TypeKind = iota
	TypeChar
	TypeInt
	TypeLong
	TypeFloat
	TypeDouble
	TypePointer
	TypeArray
)

// Type describes a MiniC type. Pointer and Array types carry Elem;
// Array additionally carries Len (the declared constant length, or -1 when
// the length is derived from an initializer or unspecified).
type Type struct {
	Kind TypeKind
	Elem *Type
	Len  int
}

// Basic type singletons.
var (
	VoidType   = &Type{Kind: TypeVoid}
	CharType   = &Type{Kind: TypeChar}
	IntType    = &Type{Kind: TypeInt}
	LongType   = &Type{Kind: TypeLong}
	FloatType  = &Type{Kind: TypeFloat}
	DoubleType = &Type{Kind: TypeDouble}
)

// PointerTo returns the pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: TypePointer, Elem: elem} }

// ArrayOf returns the array type of n elems.
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: TypeArray, Elem: elem, Len: n} }

// IsNumeric reports whether t is an arithmetic type.
func (t *Type) IsNumeric() bool {
	switch t.Kind {
	case TypeChar, TypeInt, TypeLong, TypeFloat, TypeDouble:
		return true
	}
	return false
}

// IsInteger reports whether t is an integer type.
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case TypeChar, TypeInt, TypeLong:
		return true
	}
	return false
}

// IsFloat reports whether t is a floating type.
func (t *Type) IsFloat() bool {
	return t.Kind == TypeFloat || t.Kind == TypeDouble
}

// IsPointerLike reports whether t is a pointer or array.
func (t *Type) IsPointerLike() bool {
	return t.Kind == TypePointer || t.Kind == TypeArray
}

// ElemType returns the pointee/element type or nil.
func (t *Type) ElemType() *Type { return t.Elem }

// Size returns the storage size in bytes used by the timing model (not the
// interpreter, which uses one cell per element).
func (t *Type) Size() int {
	switch t.Kind {
	case TypeChar:
		return 1
	case TypeInt, TypeFloat:
		return 4
	case TypeLong, TypeDouble, TypePointer:
		return 8
	case TypeArray:
		if t.Len < 0 {
			return 8
		}
		return t.Len * t.Elem.Size()
	default:
		return 0
	}
}

// String renders the type in C syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeChar:
		return "char"
	case TypeInt:
		return "int"
	case TypeLong:
		return "long"
	case TypeFloat:
		return "float"
	case TypeDouble:
		return "double"
	case TypePointer:
		return t.Elem.String() + "*"
	case TypeArray:
		if t.Len < 0 {
			return t.Elem.String() + "[]"
		}
		return t.Elem.String() + "[" + itoa(t.Len) + "]"
	default:
		return "?"
	}
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TypePointer:
		return t.Elem.Equal(o.Elem)
	case TypeArray:
		return t.Len == o.Len && t.Elem.Equal(o.Elem)
	}
	return true
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [24]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// ---- Expressions ----

// Expr is an expression node. Every expression carries its computed type
// after semantic analysis (nil before).
type Expr interface {
	Node
	exprNode()
	// Type returns the semantic type (set by Check).
	Type() *Type
}

type exprBase struct {
	Pos Pos
	Typ *Type
}

func (e *exprBase) nodePos() Pos { return e.Pos }
func (e *exprBase) exprNode()    {}

// Type returns the type computed by semantic analysis.
func (e *exprBase) Type() *Type { return e.Typ }

// SetType records the expression's semantic type (used by sema and by the
// translator when it rewrites trees).
func (e *exprBase) SetType(t *Type) { e.Typ = t }

// Ident is a variable reference.
type Ident struct {
	exprBase
	Name string
	// Sym is filled by semantic analysis with the resolved symbol.
	Sym *Symbol
}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	Value float64
}

// CharLit is a character literal.
type CharLit struct {
	exprBase
	Value byte
}

// StrLit is a string literal (escapes already decoded).
type StrLit struct {
	exprBase
	Value string
}

// Unary is a prefix unary operation: one of - ! ~ & * ++ --.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Postfix is a postfix ++ or --.
type Postfix struct {
	exprBase
	Op string
	X  Expr
}

// Binary is an infix binary operation (arithmetic, relational, logical,
// bitwise, shifts).
type Binary struct {
	exprBase
	Op   string
	L, R Expr
}

// Assign is an assignment, possibly compound (Op is "=", "+=", ...).
type Assign struct {
	exprBase
	Op   string
	L, R Expr
}

// Cond is the ternary ?: operator.
type Cond struct {
	exprBase
	C, T, F Expr
}

// Call is a function call. The callee is an identifier (MiniC has no
// function pointers).
type Call struct {
	exprBase
	Name string
	Args []Expr
	// Builtin is set by sema when Name resolves to a runtime builtin
	// rather than a user function.
	Builtin bool
}

// Index is array subscription a[i].
type Index struct {
	exprBase
	X   Expr
	Idx Expr
}

// Cast is an explicit C cast.
type Cast struct {
	exprBase
	To *Type
	X  Expr
}

// SizeofType is sizeof(type). sizeof(expr) is normalized to SizeofType in
// the parser using the expression's syntactic type when resolvable.
type SizeofType struct {
	exprBase
	Of *Type
}

// ---- Statements ----

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

type stmtBase struct{ Pos Pos }

func (s *stmtBase) nodePos() Pos { return s.Pos }
func (s *stmtBase) stmtNode()    {}

// Declarator is one declared name within a DeclStmt.
type Declarator struct {
	Name string
	Type *Type
	Init Expr // may be nil
	// Sym is filled by semantic analysis.
	Sym *Symbol
}

// DeclStmt declares one or more variables.
type DeclStmt struct {
	stmtBase
	Decls []*Declarator
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	stmtBase
	X Expr
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ stmtBase }

// Block is a brace-enclosed statement list with its own scope.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// If is an if/else statement.
type If struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// For is a for loop; any of Init/Cond/Post may be nil. Init may be a
// DeclStmt or ExprStmt.
type For struct {
	stmtBase
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// Return returns from the enclosing function; X may be nil.
type Return struct {
	stmtBase
	X Expr
}

// Break exits the nearest loop.
type Break struct{ stmtBase }

// Continue jumps to the next iteration of the nearest loop.
type Continue struct{ stmtBase }

// PragmaStmt attaches a raw pragma line to the statement that follows it.
// The HeteroDoop translator recognizes `mapreduce ...` pragma text.
type PragmaStmt struct {
	stmtBase
	Text string
	Body Stmt
}

// IsMapReduce reports whether the pragma is a HeteroDoop directive.
func (p *PragmaStmt) IsMapReduce() bool {
	return strings.HasPrefix(strings.TrimSpace(p.Text), "mapreduce")
}

// ---- Declarations ----

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
	Sym  *Symbol
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    *Type
	Params []*Param
	Body   *Block
}

func (f *FuncDecl) nodePos() Pos { return f.Pos }

// Program is a parsed translation unit.
type Program struct {
	Funcs   []*FuncDecl
	Globals []*DeclStmt
	// Source keeps the original text for diagnostics and re-emission.
	Source string
	// File is the source file name used in diagnostics ("" when parsed
	// from an in-memory string).
	File string
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ---- Symbols ----

// SymbolKind distinguishes what a name denotes.
type SymbolKind int

// Symbol kinds.
const (
	SymVar SymbolKind = iota
	SymParam
	SymFunc
	SymBuiltin
)

// Symbol is a resolved name. The interpreter allocates storage per symbol;
// the translator classifies symbols into GPU memory spaces.
type Symbol struct {
	Name string
	Kind SymbolKind
	Type *Type
	// Global marks file-scope variables.
	Global bool
}
