package minic

import (
	"strings"
	"testing"
)

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex(`int x = 42; char c = 'a'; double d = 3.5e2; char *s = "hi\n";`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "int" {
		t.Fatalf("first token = %v", toks[0])
	}
	found := map[TokKind]bool{}
	for _, k := range kinds {
		found[k] = true
	}
	for _, want := range []TokKind{TokKeyword, TokIdent, TokIntLit, TokCharLit, TokFloatLit, TokStrLit, TokPunct, TokEOF} {
		if !found[want] {
			t.Errorf("missing token kind %v in %v", want, kinds)
		}
	}
}

func TestLexLiteralValues(t *testing.T) {
	toks, err := Lex(`42 0x1F 3.5 1e3 'x' '\n' '\0' "a\tb"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].IntVal != 42 {
		t.Errorf("42 -> %d", toks[0].IntVal)
	}
	if toks[1].IntVal != 31 {
		t.Errorf("0x1F -> %d", toks[1].IntVal)
	}
	if toks[2].FloatVal != 3.5 {
		t.Errorf("3.5 -> %v", toks[2].FloatVal)
	}
	if toks[3].FloatVal != 1000 {
		t.Errorf("1e3 -> %v", toks[3].FloatVal)
	}
	if toks[4].IntVal != 'x' {
		t.Errorf("'x' -> %d", toks[4].IntVal)
	}
	if toks[5].IntVal != '\n' {
		t.Errorf("'\\n' -> %d", toks[5].IntVal)
	}
	if toks[6].IntVal != 0 {
		t.Errorf("'\\0' -> %d", toks[6].IntVal)
	}
	if toks[7].Text != "a\tb" {
		t.Errorf("string -> %q", toks[7].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("int a; // comment\n/* block\ncomment */ int b;")
	if err != nil {
		t.Fatal(err)
	}
	var idents []string
	for _, tk := range toks {
		if tk.Kind == TokIdent {
			idents = append(idents, tk.Text)
		}
	}
	if len(idents) != 2 || idents[0] != "a" || idents[1] != "b" {
		t.Fatalf("idents = %v", idents)
	}
}

func TestLexPragmaWithContinuation(t *testing.T) {
	src := "#pragma mapreduce mapper key(word) \\\\\n value(one)\nint x;"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokPragma {
		t.Fatalf("first token = %v", toks[0])
	}
	if !strings.Contains(toks[0].Text, "key(word)") || !strings.Contains(toks[0].Text, "value(one)") {
		t.Fatalf("pragma text = %q", toks[0].Text)
	}
}

func TestLexSkipsInclude(t *testing.T) {
	toks, err := Lex("#include <stdio.h>\nint main() { return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "int" {
		t.Fatalf("include not skipped: %v", toks[0])
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := Lex("int a;\nint b;\n  int c;")
	if err != nil {
		t.Fatal(err)
	}
	var positions []Pos
	for _, tk := range toks {
		if tk.Kind == TokIdent {
			positions = append(positions, tk.Pos)
		}
	}
	if positions[0].Line != 1 || positions[1].Line != 2 || positions[2].Line != 3 {
		t.Fatalf("positions = %v", positions)
	}
	if positions[2].Col != 7 {
		t.Fatalf("col of c = %d, want 7", positions[2].Col)
	}
}

func TestParseSimpleFunction(t *testing.T) {
	prog, err := ParseAndCheck(`
int add(int a, int b) {
	return a + b;
}
int main() {
	int x = add(2, 3);
	return x;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(prog.Funcs))
	}
	add := prog.Func("add")
	if add == nil || len(add.Params) != 2 {
		t.Fatalf("add = %+v", add)
	}
	if add.Ret.Kind != TypeInt {
		t.Fatalf("ret = %v", add.Ret)
	}
}

func TestParseDeclarationForms(t *testing.T) {
	prog, err := ParseAndCheck(`
int main() {
	char word[30], *line;
	int a = 1, b = 2, c;
	double m[4][2];
	unsigned int u;
	size_t n = 100;
	const int k = 5;
	c = a + b;
	return c;
}`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Func("main").Body
	d := body.Stmts[0].(*DeclStmt)
	if d.Decls[0].Type.Kind != TypeArray || d.Decls[0].Type.Len != 30 {
		t.Fatalf("word type = %v", d.Decls[0].Type)
	}
	if d.Decls[1].Type.Kind != TypePointer {
		t.Fatalf("line type = %v", d.Decls[1].Type)
	}
	m := body.Stmts[2].(*DeclStmt).Decls[0]
	if m.Type.Kind != TypeArray || m.Type.Elem.Kind != TypeArray {
		t.Fatalf("matrix type = %v", m.Type)
	}
}

func TestParsePragmaAttachesToWhile(t *testing.T) {
	prog, err := ParseAndCheck(`
int main() {
	int x = 0;
	#pragma mapreduce mapper key(x) value(x)
	while (x < 10) {
		x = x + 1;
	}
	return x;
}`)
	if err != nil {
		t.Fatal(err)
	}
	pragmas := FindPragmas(prog)
	if len(pragmas) != 1 {
		t.Fatalf("pragmas = %d", len(pragmas))
	}
	if !pragmas[0].IsMapReduce() {
		t.Fatal("pragma not recognized as mapreduce")
	}
	if _, ok := pragmas[0].Body.(*While); !ok {
		t.Fatalf("pragma body = %T, want *While", pragmas[0].Body)
	}
}

func TestParsePragmaAttachesToBlock(t *testing.T) {
	prog, err := ParseAndCheck(`
int main() {
	int count = 0;
	#pragma mapreduce combiner key(count) value(count) keyin(count) valuein(count)
	{
		while (count < 3) { count++; }
	}
	return count;
}`)
	if err != nil {
		t.Fatal(err)
	}
	pragmas := FindPragmas(prog)
	if len(pragmas) != 1 {
		t.Fatalf("pragmas = %d", len(pragmas))
	}
	if _, ok := pragmas[0].Body.(*Block); !ok {
		t.Fatalf("pragma body = %T, want *Block", pragmas[0].Body)
	}
}

func TestParseControlFlow(t *testing.T) {
	_, err := ParseAndCheck(`
int main() {
	int i, total = 0;
	for (i = 0; i < 10; i++) {
		if (i % 2 == 0) continue;
		else total += i;
		while (total > 100) { total -= 10; break; }
	}
	for (int j = 0; j < 3; j++) total++;
	for (;;) { break; }
	return total;
}`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseExpressions(t *testing.T) {
	_, err := ParseAndCheck(`
int main() {
	int a = 1, b = 2;
	int c = a < b ? a : b;
	int d = (a + b) * 3 / 2 % 5 - 1;
	int e = a << 2 | b >> 1 & 3 ^ 7;
	int f = !a && b || a;
	a += 1; b -= 2; c *= 3; d /= 2; e %= 3;
	f = -a + ~b;
	long n = sizeof(int) + sizeof(double);
	char buf[10];
	char *p = (char*) malloc(10 * sizeof(char));
	*p = 'x';
	p[1] = buf[0];
	++a; --b; a++; b--;
	free(p);
	return f + (int)n;
}`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParsePointerOps(t *testing.T) {
	prog, err := ParseAndCheck(`
int main() {
	int x = 5;
	int *p = &x;
	int **pp = &p;
	*p = 7;
	**pp = 9;
	int y = *p + 1;
	return y;
}`)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
}

func TestCheckRejectsUndeclared(t *testing.T) {
	_, err := ParseAndCheck(`int main() { return nothere; }`)
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckRejectsRedeclaration(t *testing.T) {
	_, err := ParseAndCheck(`int main() { int a; int a; return 0; }`)
	if err == nil || !strings.Contains(err.Error(), "redeclaration") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckAllowsShadowingInInnerScope(t *testing.T) {
	_, err := ParseAndCheck(`int main() { int a = 1; { int a = 2; a++; } return a; }`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsUndefinedFunction(t *testing.T) {
	_, err := ParseAndCheck(`int main() { return mystery(1); }`)
	if err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckRejectsWrongArity(t *testing.T) {
	_, err := ParseAndCheck(`
int two(int a, int b) { return a + b; }
int main() { return two(1); }`)
	if err == nil || !strings.Contains(err.Error(), "args") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckRejectsBreakOutsideLoop(t *testing.T) {
	_, err := ParseAndCheck(`int main() { break; return 0; }`)
	if err == nil {
		t.Fatal("break outside loop accepted")
	}
}

func TestCheckRejectsAssignToNonLvalue(t *testing.T) {
	_, err := ParseAndCheck(`int main() { int a; (a + 1) = 2; return 0; }`)
	if err == nil {
		t.Fatal("assignment to rvalue accepted")
	}
}

func TestCheckBuiltinsResolve(t *testing.T) {
	prog, err := ParseAndCheck(`
int main() {
	char buf[64];
	strcpy(buf, "hi");
	int n = strlen(buf);
	double r = sqrt(2.0) + exp(1.0);
	printf("%s %d %f\n", buf, n, r);
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
}

func TestCheckTypesExpressions(t *testing.T) {
	prog, err := ParseAndCheck(`
int main() {
	int i = 1;
	double d = 2.5;
	char c = 'x';
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	decls := prog.Func("main").Body.Stmts
	i := decls[0].(*DeclStmt).Decls[0]
	if i.Init.Type().Kind != TypeInt {
		t.Errorf("int literal type = %v", i.Init.Type())
	}
	d := decls[1].(*DeclStmt).Decls[0]
	if d.Init.Type().Kind != TypeDouble {
		t.Errorf("float literal type = %v", d.Init.Type())
	}
}

func TestWordcountListingParses(t *testing.T) {
	// Adapted from Listing 1 of the paper.
	src := `
int getWord(char *line, int offset, char *word, int read, int maxw) {
	int i = offset, j = 0;
	while (i < read && (line[i] == ' ' || line[i] == '\n')) i++;
	while (i < read && line[i] != ' ' && line[i] != '\n' && j < maxw - 1) {
		word[j] = line[i];
		i++; j++;
	}
	if (j == 0) return -1;
	word[j] = '\0';
	return i - offset;
}
int main() {
	char word[30], *line;
	size_t nbytes = 10000;
	int read, linePtr, offset, one;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(word) value(one) keylength(30)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		linePtr = 0;
		offset = 0;
		one = 1;
		while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
			printf("%s\t%d\n", word, one);
			offset += linePtr;
		}
	}
	free(line);
	return 0;
}`
	prog, err := ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	pragmas := FindPragmas(prog)
	if len(pragmas) != 1 {
		t.Fatalf("pragmas = %d", len(pragmas))
	}
}

func TestTypeStringAndSize(t *testing.T) {
	cases := []struct {
		t    *Type
		str  string
		size int
	}{
		{IntType, "int", 4},
		{CharType, "char", 1},
		{DoubleType, "double", 8},
		{PointerTo(CharType), "char*", 8},
		{ArrayOf(IntType, 10), "int[10]", 40},
		{ArrayOf(CharType, 30), "char[30]", 30},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.str {
			t.Errorf("String(%v) = %q, want %q", c.t, got, c.str)
		}
		if got := c.t.Size(); got != c.size {
			t.Errorf("Size(%v) = %d, want %d", c.t, got, c.size)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !PointerTo(CharType).Equal(PointerTo(CharType)) {
		t.Error("identical pointer types unequal")
	}
	if PointerTo(CharType).Equal(PointerTo(IntType)) {
		t.Error("different pointer types equal")
	}
	if ArrayOf(IntType, 3).Equal(ArrayOf(IntType, 4)) {
		t.Error("different array lengths equal")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`int main() { int 3x; }`,
		`int main() { return (; }`,
		`int main() { if x { } }`,
		`int main() {`,
		`int main() { do { } while(1); }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{"\"unterminated", "'a", "@", "#define X 1"}
	for _, src := range bad {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}
