package minic

import (
	"testing"
)

// exprTree renders an AST expression back to a canonical, fully
// parenthesized form so precedence can be asserted structurally.
func exprTree(e Expr) string {
	switch x := e.(type) {
	case *IntLit:
		return itoa(int(x.Value))
	case *FloatLit:
		return "f"
	case *Ident:
		return x.Name
	case *Binary:
		return "(" + exprTree(x.L) + x.Op + exprTree(x.R) + ")"
	case *Unary:
		return "(" + x.Op + exprTree(x.X) + ")"
	case *Assign:
		return "(" + exprTree(x.L) + x.Op + exprTree(x.R) + ")"
	case *Cond:
		return "(" + exprTree(x.C) + "?" + exprTree(x.T) + ":" + exprTree(x.F) + ")"
	case *Index:
		return exprTree(x.X) + "[" + exprTree(x.Idx) + "]"
	case *Call:
		s := x.Name + "("
		for i, a := range x.Args {
			if i > 0 {
				s += ","
			}
			s += exprTree(a)
		}
		return s + ")"
	case *Postfix:
		return "(" + exprTree(x.X) + x.Op + ")"
	case *Cast:
		return "(cast " + exprTree(x.X) + ")"
	default:
		return "?"
	}
}

// parseExpr extracts the expression of `int main() { return EXPR; }`.
func parseExpr(t *testing.T, expr string) Expr {
	t.Helper()
	prog, err := Parse("int main() { int a, b, c, d; return " + expr + "; }")
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	ret := prog.Func("main").Body.Stmts[1].(*Return)
	return ret.X
}

func TestOperatorPrecedence(t *testing.T) {
	cases := []struct{ in, want string }{
		{"1 + 2 * 3", "(1+(2*3))"},
		{"1 * 2 + 3", "((1*2)+3)"},
		{"1 - 2 - 3", "((1-2)-3)"}, // left associative
		{"a = b = c", "(a=(b=c))"}, // right associative
		{"1 + 2 < 3 + 4", "((1+2)<(3+4))"},
		{"1 < 2 == 3 < 4", "((1<2)==(3<4))"},
		{"1 == 2 && 3 == 4", "((1==2)&&(3==4))"},
		{"1 && 2 || 3 && 4", "((1&&2)||(3&&4))"},
		{"1 | 2 ^ 3 & 4", "(1|(2^(3&4)))"},
		{"1 << 2 + 3", "(1<<(2+3))"},
		{"a + b << c", "((a+b)<<c)"},
		{"-a * b", "((-a)*b)"},
		{"!a && b", "((!a)&&b)"},
		{"a ? b : c ? d : 1", "(a?b:(c?d:1))"},
		{"a = b ? c : d", "(a=(b?c:d))"},
		{"a % b * c", "((a%b)*c)"},
		{"~a | b", "((~a)|b)"},
		{"a++ + b", "((a++)+b)"},
	}
	for _, c := range cases {
		got := exprTree(parseExpr(t, c.in))
		if got != c.want {
			t.Errorf("%q parsed as %s, want %s", c.in, got, c.want)
		}
	}
}

func TestCompoundAssignOperators(t *testing.T) {
	for _, op := range []string{"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="} {
		src := "int main() { int a = 4; a " + op + " 2; return a; }"
		if _, err := ParseAndCheck(src); err != nil {
			t.Errorf("operator %s rejected: %v", op, err)
		}
	}
}

func TestCommentsEverywhere(t *testing.T) {
	src := `
/* header */ int /*mid*/ main() { // trailing
	int a = /* inline */ 1; // more
	/* multi
	   line */
	return a;
}`
	if _, err := ParseAndCheck(src); err != nil {
		t.Fatal(err)
	}
}

func TestHexAndSuffixedLiterals(t *testing.T) {
	prog, err := ParseAndCheck(`int main() { long a = 0xFF; double b = 1.5f; long c = 10L; return (int)(a + c); }`)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
}

func TestDeepNesting(t *testing.T) {
	src := `int main() { int x = ((((((1))))));
	if (x) { if (x) { if (x) { while (x) { for (int i = 0; i < 1; i++) { x = 0; } break; } } } }
	return x; }`
	if _, err := ParseAndCheck(src); err != nil {
		t.Fatal(err)
	}
}

func TestFindPragmasNested(t *testing.T) {
	src := `
int main() {
	int x = 0, read; char *line; size_t n = 10;
	line = (char*) malloc(10);
	if (x == 0) {
		#pragma mapreduce mapper key(x) value(x)
		while ((read = getline(&line, &n, stdin)) != -1) { x = 1; printf("%d\t%d\n", x, x); }
	}
	return 0;
}`
	prog, err := ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(FindPragmas(prog)) != 1 {
		t.Fatal("nested pragma not found")
	}
}

func TestNonMapReducePragmaIgnoredByIsMapReduce(t *testing.T) {
	prog, err := ParseAndCheck(`
int main() {
	int x = 0;
	#pragma unroll 4
	while (x < 3) { x++; }
	return x;
}`)
	if err != nil {
		t.Fatal(err)
	}
	pragmas := FindPragmas(prog)
	if len(pragmas) != 1 || pragmas[0].IsMapReduce() {
		t.Fatalf("pragmas = %v", pragmas)
	}
}

func TestSemaTypePropagation(t *testing.T) {
	prog, err := ParseAndCheck(`
double scale(double x) { return x * 2.0; }
int main() {
	double d = scale(1.5);
	int i = (int) d;
	char *s = "abc";
	char c = s[1];
	return i + c;
}`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Func("main").Body.Stmts
	d := body[0].(*DeclStmt).Decls[0]
	if d.Init.Type().Kind != TypeDouble {
		t.Errorf("scale() type = %v", d.Init.Type())
	}
	c := body[3].(*DeclStmt).Decls[0]
	if c.Init.Type().Kind != TypeChar {
		t.Errorf("s[1] type = %v", c.Init.Type())
	}
}

func TestSemaPointerErrors(t *testing.T) {
	bad := []string{
		`int main() { int a; return *a; }`,                    // deref non-pointer
		`int main() { int a[3]; int b = a[0][1]; return b; }`, // over-index
		`int main() { return &5; }`,                           // address of literal
	}
	for _, src := range bad {
		if _, err := ParseAndCheck(src); err == nil {
			t.Errorf("accepted: %q", src)
		}
	}
}

func TestBuiltinShadowRejected(t *testing.T) {
	if _, err := ParseAndCheck(`int printf(int x) { return x; } int main() { return 0; }`); err == nil {
		t.Fatal("shadowing printf accepted")
	}
}

func TestDuplicateFunctionRejected(t *testing.T) {
	if _, err := ParseAndCheck(`int f() { return 1; } int f() { return 2; } int main() { return f(); }`); err == nil {
		t.Fatal("duplicate function accepted")
	}
}
