package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// Lexer turns MiniC source into tokens. `#include` lines are skipped (the
// C standard library is built into the runtime); `#pragma` lines become
// TokPragma tokens with backslash continuations joined, matching the
// HeteroDoop directive syntax of the paper (Listing 1 uses `\\` at line
// ends).
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, returning tokens ending with TokEOF.
func Lex(src string) ([]Token, error) { return LexFile("", src) }

// LexFile is Lex with a file name threaded into error messages, so
// diagnostics print file:line:col.
func LexFile(file, src string) ([]Token, error) {
	lx := NewLexer(src)
	lx.file = file
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) errf(format string, args ...any) error {
	return lx.errAt(Pos{Line: lx.line, Col: lx.col}, format, args...)
}

func (lx *Lexer) errAt(pos Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", ErrPrefix(lx.file, pos), fmt.Sprintf(format, args...))
}

// ErrPrefix formats the position prefix of a frontend diagnostic:
// "file:line:col" when a file name is known, "minic: line:col" otherwise
// (the historical format for in-memory sources).
func ErrPrefix(file string, pos Pos) string {
	if file != "" {
		return fmt.Sprintf("%s:%s", file, pos)
	}
	return fmt.Sprintf("minic: %s", pos)
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	for {
		lx.skipSpaceAndComments()
		if lx.off >= len(lx.src) {
			return Token{Kind: TokEOF, Pos: lx.pos()}, nil
		}
		c := lx.peek()
		switch {
		case c == '#':
			tok, skip, err := lx.lexDirective()
			if err != nil {
				return Token{}, err
			}
			if skip {
				continue
			}
			return tok, nil
		case isIdentStart(c):
			return lx.lexIdent(), nil
		case c >= '0' && c <= '9', c == '.' && isDigit(lx.peek2()):
			return lx.lexNumber()
		case c == '"':
			return lx.lexString()
		case c == '\'':
			return lx.lexChar()
		default:
			return lx.lexPunct()
		}
	}
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			lx.advance()
			lx.advance()
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return
		}
	}
}

// lexDirective handles `#...` lines. Returns (token, skip, err): skip is
// true for ignorable directives like #include.
func (lx *Lexer) lexDirective() (Token, bool, error) {
	pos := lx.pos()
	var sb strings.Builder
	for lx.off < len(lx.src) {
		c := lx.peek()
		if c == '\n' {
			// A trailing backslash (possibly doubled, as in the paper's
			// listings) continues the logical line.
			s := strings.TrimRight(sb.String(), " \t")
			if strings.HasSuffix(s, "\\") {
				s = strings.TrimRight(strings.TrimSuffix(s, "\\"), "\\ \t")
				sb.Reset()
				sb.WriteString(s)
				sb.WriteByte(' ')
				lx.advance()
				continue
			}
			break
		}
		sb.WriteByte(c)
		lx.advance()
	}
	text := strings.TrimSpace(sb.String())
	switch {
	case strings.HasPrefix(text, "#pragma"):
		return Token{Kind: TokPragma, Text: strings.TrimSpace(strings.TrimPrefix(text, "#pragma")), Pos: pos}, false, nil
	case strings.HasPrefix(text, "#include"):
		return Token{}, true, nil
	default:
		return Token{}, false, lx.errAt(pos, "unsupported preprocessor directive %q", text)
	}
}

func (lx *Lexer) lexIdent() Token {
	pos := lx.pos()
	start := lx.off
	for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	kind := TokIdent
	if keywords[text] {
		kind = TokKeyword
	}
	return Token{Kind: kind, Text: text, Pos: pos}
}

func (lx *Lexer) lexNumber() (Token, error) {
	pos := lx.pos()
	start := lx.off
	isFloat := false
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return Token{}, lx.errf("bad hex literal %q", text)
		}
		return Token{Kind: TokIntLit, Text: text, Pos: pos, IntVal: v}, nil
	}
	for lx.off < len(lx.src) {
		c := lx.peek()
		if isDigit(c) {
			lx.advance()
		} else if c == '.' {
			isFloat = true
			lx.advance()
		} else if c == 'e' || c == 'E' {
			isFloat = true
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
		} else {
			break
		}
	}
	text := lx.src[start:lx.off]
	// Swallow C suffixes (f, L, u…) without altering the value.
	for lx.off < len(lx.src) {
		switch lx.peek() {
		case 'f', 'F', 'l', 'L', 'u', 'U':
			if lx.peek() == 'f' || lx.peek() == 'F' {
				isFloat = true
			}
			lx.advance()
		default:
			goto done
		}
	}
done:
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, lx.errf("bad float literal %q", text)
		}
		return Token{Kind: TokFloatLit, Text: text, Pos: pos, FloatVal: v}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, lx.errf("bad int literal %q", text)
	}
	return Token{Kind: TokIntLit, Text: text, Pos: pos, IntVal: v}, nil
}

func (lx *Lexer) lexString() (Token, error) {
	pos := lx.pos()
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, lx.errf("unterminated string literal")
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if lx.off >= len(lx.src) {
				return Token{}, lx.errf("unterminated escape")
			}
			e := lx.advance()
			dec, err := decodeEscape(e)
			if err != nil {
				return Token{}, lx.errf("%v", err)
			}
			sb.WriteByte(dec)
			continue
		}
		sb.WriteByte(c)
	}
	return Token{Kind: TokStrLit, Text: sb.String(), Pos: pos}, nil
}

func (lx *Lexer) lexChar() (Token, error) {
	pos := lx.pos()
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return Token{}, lx.errf("unterminated char literal")
	}
	c := lx.advance()
	if c == '\\' {
		if lx.off >= len(lx.src) {
			return Token{}, lx.errf("unterminated escape")
		}
		e := lx.advance()
		dec, err := decodeEscape(e)
		if err != nil {
			return Token{}, lx.errf("%v", err)
		}
		c = dec
	}
	if lx.off >= len(lx.src) || lx.advance() != '\'' {
		return Token{}, lx.errf("unterminated char literal")
	}
	return Token{Kind: TokCharLit, Text: string(c), Pos: pos, IntVal: int64(c)}, nil
}

var punct3 = []string{"<<=", ">>="}
var punct2 = []string{
	"==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "<<", ">>", "->", "&=", "|=", "^=",
}

func (lx *Lexer) lexPunct() (Token, error) {
	pos := lx.pos()
	rest := lx.src[lx.off:]
	for _, p := range punct3 {
		if strings.HasPrefix(rest, p) {
			for range p {
				lx.advance()
			}
			return Token{Kind: TokPunct, Text: p, Pos: pos}, nil
		}
	}
	for _, p := range punct2 {
		if strings.HasPrefix(rest, p) {
			lx.advance()
			lx.advance()
			return Token{Kind: TokPunct, Text: p, Pos: pos}, nil
		}
	}
	c := lx.advance()
	switch c {
	case '+', '-', '*', '/', '%', '=', '<', '>', '!', '&', '|', '^', '~',
		'(', ')', '{', '}', '[', ']', ';', ',', '?', ':', '.':
		return Token{Kind: TokPunct, Text: string(c), Pos: pos}, nil
	}
	return Token{}, lx.errf("unexpected character %q", c)
}

func decodeEscape(e byte) (byte, error) {
	switch e {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	default:
		return 0, fmt.Errorf("unknown escape \\%c", e)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
