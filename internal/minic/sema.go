package minic

import (
	"fmt"
)

// BuiltinSig describes a runtime-provided function: its result type and
// whether sema should skip arity checking (variadic, like printf).
type BuiltinSig struct {
	Ret      *Type
	Arity    int
	Variadic bool
}

// Builtins is the C standard library surface available to MiniC programs,
// plus the GPU runtime intrinsics that the HeteroDoop translator inserts
// (mapSetup, getRecord, emitKV, ...). Implementations live in package
// interp; the GPU flavours are bound by package gpurt.
var Builtins = map[string]BuiltinSig{
	// stdio
	"getline": {Ret: IntType, Arity: 3},
	"printf":  {Ret: IntType, Arity: 1, Variadic: true},
	"scanf":   {Ret: IntType, Arity: 1, Variadic: true},
	"getchar": {Ret: IntType, Arity: 0},
	"putchar": {Ret: IntType, Arity: 1},

	// string.h
	"strcmp":  {Ret: IntType, Arity: 2},
	"strncmp": {Ret: IntType, Arity: 3},
	"strcpy":  {Ret: PointerTo(CharType), Arity: 2},
	"strncpy": {Ret: PointerTo(CharType), Arity: 3},
	"strlen":  {Ret: IntType, Arity: 1},
	"strstr":  {Ret: PointerTo(CharType), Arity: 2},
	"strcat":  {Ret: PointerTo(CharType), Arity: 2},
	"memset":  {Ret: PointerTo(VoidType), Arity: 3},
	"memcpy":  {Ret: PointerTo(VoidType), Arity: 3},

	// stdlib.h
	"atoi":   {Ret: IntType, Arity: 1},
	"atof":   {Ret: DoubleType, Arity: 1},
	"malloc": {Ret: PointerTo(VoidType), Arity: 1},
	"calloc": {Ret: PointerTo(VoidType), Arity: 2},
	"free":   {Ret: VoidType, Arity: 1},
	"abs":    {Ret: IntType, Arity: 1},
	"exit":   {Ret: VoidType, Arity: 1},

	// ctype.h
	"isdigit": {Ret: IntType, Arity: 1},
	"isalpha": {Ret: IntType, Arity: 1},
	"isalnum": {Ret: IntType, Arity: 1},
	"isspace": {Ret: IntType, Arity: 1},
	"tolower": {Ret: IntType, Arity: 1},
	"toupper": {Ret: IntType, Arity: 1},

	// math.h
	"sqrt":  {Ret: DoubleType, Arity: 1},
	"fabs":  {Ret: DoubleType, Arity: 1},
	"exp":   {Ret: DoubleType, Arity: 1},
	"log":   {Ret: DoubleType, Arity: 1},
	"log2":  {Ret: DoubleType, Arity: 1},
	"pow":   {Ret: DoubleType, Arity: 2},
	"floor": {Ret: DoubleType, Arity: 1},
	"ceil":  {Ret: DoubleType, Arity: 1},
	"fmin":  {Ret: DoubleType, Arity: 2},
	"fmax":  {Ret: DoubleType, Arity: 2},
	"erf":   {Ret: DoubleType, Arity: 1},
	"sin":   {Ret: DoubleType, Arity: 1},
	"cos":   {Ret: DoubleType, Arity: 1},

	// internal helper emitted by the parser for sizeof(expr)
	"__sizeof_var": {Ret: LongType, Arity: 1},

	// HeteroDoop GPU runtime intrinsics (inserted by the translator; see
	// paper Listings 3 and 4). Arity checking is skipped because the
	// translator controls the call sites.
	"mapSetup":     {Ret: VoidType, Variadic: true},
	"getRecord":    {Ret: IntType, Variadic: true},
	"emitKV":       {Ret: VoidType, Variadic: true},
	"mapFinish":    {Ret: VoidType, Variadic: true},
	"combineSetup": {Ret: VoidType, Variadic: true},
	"getKV":        {Ret: IntType, Variadic: true},
	"storeKV":      {Ret: VoidType, Variadic: true},
	"strcmpGPU":    {Ret: IntType, Arity: 2},
	"strcpyGPU":    {Ret: PointerTo(CharType), Arity: 2},
	"strlenGPU":    {Ret: IntType, Arity: 1},
}

// builtinIdents are predeclared value identifiers.
var builtinIdents = map[string]*Type{
	"stdin":  PointerTo(VoidType),
	"stdout": PointerTo(VoidType),
	"stderr": PointerTo(VoidType),
}

type scope struct {
	parent *scope
	syms   map[string]*Symbol
}

func (s *scope) lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.syms[name]; ok {
			return sym
		}
	}
	return nil
}

func (s *scope) define(sym *Symbol) error {
	if _, ok := s.syms[sym.Name]; ok {
		return fmt.Errorf("redeclaration of %q", sym.Name)
	}
	s.syms[sym.Name] = sym
	return nil
}

type checker struct {
	prog   *Program
	funcs  map[string]*FuncDecl
	errors []error
	curFn  *FuncDecl
	loops  int
}

// Check runs semantic analysis over prog: it resolves identifiers, types
// every expression, and validates calls and lvalues. It returns the first
// error encountered (with up to a few collected), or nil.
func Check(prog *Program) error {
	c := &checker{prog: prog, funcs: map[string]*FuncDecl{}}
	for _, f := range prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			return fmt.Errorf("%s: duplicate function %q", ErrPrefix(prog.File, f.Pos), f.Name)
		}
		if _, isBuiltin := Builtins[f.Name]; isBuiltin {
			return fmt.Errorf("%s: function %q shadows a builtin", ErrPrefix(prog.File, f.Pos), f.Name)
		}
		c.funcs[f.Name] = f
	}
	global := &scope{syms: map[string]*Symbol{}}
	for name, t := range builtinIdents {
		_ = global.define(&Symbol{Name: name, Kind: SymBuiltin, Type: t, Global: true})
	}
	for _, g := range prog.Globals {
		c.checkDecl(global, g, true)
	}
	for _, f := range prog.Funcs {
		c.checkFunc(global, f)
	}
	if len(c.errors) > 0 {
		return c.errors[0]
	}
	return nil
}

func (c *checker) errf(pos Pos, format string, args ...any) {
	c.errors = append(c.errors, fmt.Errorf("%s: %s", ErrPrefix(c.prog.File, pos), fmt.Sprintf(format, args...)))
}

func (c *checker) checkFunc(global *scope, f *FuncDecl) {
	c.curFn = f
	sc := &scope{parent: global, syms: map[string]*Symbol{}}
	for _, p := range f.Params {
		sym := &Symbol{Name: p.Name, Kind: SymParam, Type: p.Type}
		p.Sym = sym
		if err := sc.define(sym); err != nil {
			c.errf(f.Pos, "parameter %v", err)
		}
	}
	c.checkBlock(sc, f.Body)
	c.curFn = nil
}

func (c *checker) checkBlock(parent *scope, b *Block) {
	sc := &scope{parent: parent, syms: map[string]*Symbol{}}
	for _, s := range b.Stmts {
		c.checkStmt(sc, s)
	}
}

func (c *checker) checkStmt(sc *scope, s Stmt) {
	switch st := s.(type) {
	case *DeclStmt:
		c.checkDecl(sc, st, false)
	case *ExprStmt:
		c.checkExpr(sc, st.X)
	case *EmptyStmt:
	case *Block:
		c.checkBlock(sc, st)
	case *If:
		c.checkExpr(sc, st.Cond)
		c.checkStmt(sc, st.Then)
		if st.Else != nil {
			c.checkStmt(sc, st.Else)
		}
	case *While:
		c.checkExpr(sc, st.Cond)
		c.loops++
		c.checkStmt(sc, st.Body)
		c.loops--
	case *For:
		inner := &scope{parent: sc, syms: map[string]*Symbol{}}
		if st.Init != nil {
			c.checkStmt(inner, st.Init)
		}
		if st.Cond != nil {
			c.checkExpr(inner, st.Cond)
		}
		if st.Post != nil {
			c.checkExpr(inner, st.Post)
		}
		c.loops++
		c.checkStmt(inner, st.Body)
		c.loops--
	case *Return:
		if st.X != nil {
			c.checkExpr(sc, st.X)
		}
	case *Break:
		if c.loops == 0 {
			c.errf(s.nodePos(), "break statement outside loop")
		}
	case *Continue:
		if c.loops == 0 {
			c.errf(s.nodePos(), "continue statement outside loop")
		}
	case *PragmaStmt:
		c.checkStmt(sc, st.Body)
	default:
		c.errf(s.nodePos(), "unhandled statement %T", s)
	}
}

func (c *checker) checkDecl(sc *scope, d *DeclStmt, global bool) {
	for _, decl := range d.Decls {
		if decl.Init != nil {
			c.checkExpr(sc, decl.Init)
		}
		sym := &Symbol{Name: decl.Name, Kind: SymVar, Type: decl.Type, Global: global}
		decl.Sym = sym
		if err := sc.define(sym); err != nil {
			c.errf(d.Pos, "%v", err)
		}
	}
}

func (c *checker) checkExpr(sc *scope, e Expr) *Type {
	switch x := e.(type) {
	case *IntLit:
		x.SetType(IntType)
	case *FloatLit:
		x.SetType(DoubleType)
	case *CharLit:
		x.SetType(CharType)
	case *StrLit:
		x.SetType(PointerTo(CharType))
	case *Ident:
		sym := sc.lookup(x.Name)
		if sym == nil {
			c.errf(x.Pos, "undeclared identifier %q", x.Name)
			x.SetType(IntType)
			break
		}
		x.Sym = sym
		x.SetType(sym.Type)
	case *Unary:
		t := c.checkExpr(sc, x.X)
		switch x.Op {
		case "&":
			if !isLvalue(x.X) {
				c.errf(x.Pos, "cannot take address of non-lvalue")
			}
			x.SetType(PointerTo(t))
		case "*":
			if t != nil && t.IsPointerLike() {
				x.SetType(t.ElemType())
			} else {
				c.errf(x.Pos, "dereference of non-pointer type %v", t)
				x.SetType(IntType)
			}
		case "!", "~":
			x.SetType(IntType)
		case "-":
			x.SetType(t)
		case "++", "--":
			if !isLvalue(x.X) {
				c.errf(x.Pos, "%s of non-lvalue", x.Op)
			}
			x.SetType(t)
		}
	case *Postfix:
		t := c.checkExpr(sc, x.X)
		if !isLvalue(x.X) {
			c.errf(x.Pos, "%s of non-lvalue", x.Op)
		}
		x.SetType(t)
	case *Binary:
		lt := c.checkExpr(sc, x.L)
		rt := c.checkExpr(sc, x.R)
		switch x.Op {
		case "==", "!=", "<", ">", "<=", ">=", "&&", "||":
			x.SetType(IntType)
		case "+", "-":
			// Pointer arithmetic keeps the pointer type.
			switch {
			case lt != nil && lt.IsPointerLike():
				x.SetType(PointerTo(lt.ElemType()))
			case rt != nil && rt.IsPointerLike():
				x.SetType(PointerTo(rt.ElemType()))
			default:
				x.SetType(promote(lt, rt))
			}
		default:
			x.SetType(promote(lt, rt))
		}
	case *Assign:
		lt := c.checkExpr(sc, x.L)
		c.checkExpr(sc, x.R)
		if !isLvalue(x.L) {
			c.errf(x.Pos, "assignment to non-lvalue")
		}
		x.SetType(lt)
	case *Cond:
		c.checkExpr(sc, x.C)
		tt := c.checkExpr(sc, x.T)
		ft := c.checkExpr(sc, x.F)
		x.SetType(promote(tt, ft))
	case *Index:
		bt := c.checkExpr(sc, x.X)
		c.checkExpr(sc, x.Idx)
		if bt != nil && bt.IsPointerLike() {
			x.SetType(bt.ElemType())
		} else {
			c.errf(x.Pos, "indexing non-array type %v", bt)
			x.SetType(IntType)
		}
	case *Cast:
		c.checkExpr(sc, x.X)
		x.SetType(x.To)
	case *SizeofType:
		x.SetType(LongType)
	case *Call:
		for _, a := range x.Args {
			c.checkExpr(sc, a)
		}
		if sig, ok := Builtins[x.Name]; ok {
			x.Builtin = true
			if !sig.Variadic && len(x.Args) != sig.Arity {
				c.errf(x.Pos, "builtin %q called with %d args, want %d", x.Name, len(x.Args), sig.Arity)
			}
			x.SetType(sig.Ret)
			break
		}
		fn, ok := c.funcs[x.Name]
		if !ok {
			c.errf(x.Pos, "call of undefined function %q", x.Name)
			x.SetType(IntType)
			break
		}
		if len(x.Args) != len(fn.Params) {
			c.errf(x.Pos, "function %q called with %d args, want %d", x.Name, len(x.Args), len(fn.Params))
		}
		x.SetType(fn.Ret)
	default:
		c.errf(e.nodePos(), "unhandled expression %T", e)
		return IntType
	}
	return e.Type()
}

func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return true
	case *Index:
		return true
	case *Unary:
		return x.Op == "*"
	}
	return false
}

// promote implements the usual arithmetic conversions, loosely.
func promote(a, b *Type) *Type {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	rank := func(t *Type) int {
		switch t.Kind {
		case TypeDouble:
			return 5
		case TypeFloat:
			return 4
		case TypeLong:
			return 3
		case TypeInt:
			return 2
		case TypeChar:
			return 1
		default:
			return 0
		}
	}
	if rank(a) >= rank(b) {
		return a
	}
	return b
}

// ParseAndCheck parses and semantically checks src in one step.
func ParseAndCheck(src string) (*Program, error) {
	return ParseAndCheckFile("", src)
}

// ParseAndCheckFile is ParseAndCheck with a file name threaded into every
// diagnostic, so errors print file:line:col.
func ParseAndCheckFile(file, src string) (*Program, error) {
	prog, err := ParseFile(file, src)
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// FindPragmas walks the program and returns every PragmaStmt, in source
// order, together with the function containing it.
func FindPragmas(prog *Program) []*PragmaStmt {
	var out []*PragmaStmt
	var walkStmt func(Stmt)
	walkStmt = func(s Stmt) {
		switch st := s.(type) {
		case *PragmaStmt:
			out = append(out, st)
			walkStmt(st.Body)
		case *Block:
			for _, inner := range st.Stmts {
				walkStmt(inner)
			}
		case *If:
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *While:
			walkStmt(st.Body)
		case *For:
			walkStmt(st.Body)
		}
	}
	for _, f := range prog.Funcs {
		walkStmt(f.Body)
	}
	return out
}
