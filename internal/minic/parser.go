package minic

import (
	"fmt"
)

// Parser builds a Program from a token stream.
type Parser struct {
	toks []Token
	pos  int
	file string
}

// Parse lexes and parses src into a Program (syntax only; run Check for
// semantic analysis).
func Parse(src string) (*Program, error) { return ParseFile("", src) }

// ParseFile is Parse with a file name threaded into error messages and the
// resulting Program, so downstream diagnostics print file:line:col.
func ParseFile(file, src string) (*Program, error) {
	toks, err := LexFile(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, file: file}
	prog := &Program{Source: src, File: file}
	for !p.at(TokEOF) {
		if p.atPragma() {
			return nil, p.errf("pragma at file scope must precede a statement inside a function")
		}
		// Both globals and functions start with a type.
		save := p.pos
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.atPunct("(") {
			fn, err := p.parseFuncRest(typ, name)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		// Global variable declaration: rewind and reuse declaration parsing.
		p.pos = save
		decl, err := p.parseDeclStmt()
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, decl)
	}
	return prog, nil
}

// MustParse parses src and panics on error; intended for tests and for the
// built-in benchmark sources, which are compile-time constants.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) atPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *Parser) atKeyword(s string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *Parser) atPragma() bool { return p.cur().Kind == TokPragma }

func (p *Parser) atType() bool {
	t := p.cur()
	return t.Kind == TokKeyword && IsTypeKeyword(t.Text)
}

func (p *Parser) eatPunct(s string) bool {
	if p.atPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	if !p.at(TokIdent) {
		return "", p.errf("expected identifier, found %s", p.cur())
	}
	return p.next().Text, nil
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s: %s", ErrPrefix(p.file, p.cur().Pos), fmt.Sprintf(format, args...))
}

// parseType parses a base type with leading qualifiers and trailing '*'s.
func (p *Parser) parseType() (*Type, error) {
	if !p.atType() {
		return nil, p.errf("expected type, found %s", p.cur())
	}
	var base *Type
	sawUnsigned := false
	for p.atType() {
		t := p.next().Text
		switch t {
		case "const", "static", "signed":
			// qualifiers carry no semantics in MiniC
		case "unsigned":
			sawUnsigned = true
		case "void":
			base = VoidType
		case "char":
			base = CharType
		case "short", "int":
			base = IntType
		case "long":
			base = LongType
		case "size_t":
			base = LongType
		case "float":
			base = FloatType
		case "double":
			base = DoubleType
		}
	}
	if base == nil {
		if sawUnsigned {
			base = IntType // bare `unsigned`
		} else {
			return nil, p.errf("declaration lacks a base type")
		}
	}
	for p.eatPunct("*") {
		base = PointerTo(base)
	}
	return base, nil
}

func (p *Parser) parseFuncRest(ret *Type, name string) (*FuncDecl, error) {
	pos := p.cur().Pos
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []*Param
	if !p.atPunct(")") {
		if p.atKeyword("void") && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == ")" {
			p.next() // f(void)
		} else {
			for {
				pt, err := p.parseType()
				if err != nil {
					return nil, err
				}
				pname, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				// Array parameters decay to pointers.
				if p.eatPunct("[") {
					if p.at(TokIntLit) {
						p.next()
					}
					if err := p.expectPunct("]"); err != nil {
						return nil, err
					}
					pt = PointerTo(pt)
				}
				params = append(params, &Param{Name: pname, Type: pt})
				if !p.eatPunct(",") {
					break
				}
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Pos: pos, Name: name, Ret: ret, Params: params, Body: body}, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	pos := p.cur().Pos
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &Block{stmtBase: stmtBase{Pos: pos}}
	for !p.atPunct("}") {
		if p.at(TokEOF) {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	pos := p.cur().Pos
	switch {
	case p.atPragma():
		text := p.next().Text
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &PragmaStmt{stmtBase: stmtBase{Pos: pos}, Text: text, Body: body}, nil
	case p.atPunct("{"):
		return p.parseBlock()
	case p.atPunct(";"):
		p.next()
		return &EmptyStmt{stmtBase{Pos: pos}}, nil
	case p.atType():
		return p.parseDeclStmt()
	case p.atKeyword("if"):
		return p.parseIf()
	case p.atKeyword("while"):
		return p.parseWhile()
	case p.atKeyword("do"):
		return nil, p.errf("do/while is not supported in MiniC")
	case p.atKeyword("for"):
		return p.parseFor()
	case p.atKeyword("return"):
		p.next()
		var x Expr
		if !p.atPunct(";") {
			var err error
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Return{stmtBase: stmtBase{Pos: pos}, X: x}, nil
	case p.atKeyword("break"):
		p.next()
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Break{stmtBase{Pos: pos}}, nil
	case p.atKeyword("continue"):
		p.next()
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Continue{stmtBase{Pos: pos}}, nil
	default:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{stmtBase: stmtBase{Pos: pos}, X: x}, nil
	}
}

func (p *Parser) parseDeclStmt() (*DeclStmt, error) {
	pos := p.cur().Pos
	base, err := p.parseTypeBaseOnly()
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{stmtBase: stmtBase{Pos: pos}}
	for {
		t := base
		for p.eatPunct("*") {
			t = PointerTo(t)
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		for p.eatPunct("[") {
			n := -1
			if p.at(TokIntLit) {
				n = int(p.next().IntVal)
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			t = ArrayOf(t, n)
		}
		var init Expr
		if p.eatPunct("=") {
			init, err = p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
		}
		d.Decls = append(d.Decls, &Declarator{Name: name, Type: t, Init: init})
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return d, nil
}

// parseTypeBaseOnly parses the base type without consuming '*'s, which bind
// per-declarator in C declaration lists (`char *a, b`).
func (p *Parser) parseTypeBaseOnly() (*Type, error) {
	if !p.atType() {
		return nil, p.errf("expected type, found %s", p.cur())
	}
	var base *Type
	sawUnsigned := false
	for p.atType() {
		switch p.next().Text {
		case "const", "static", "signed":
		case "unsigned":
			sawUnsigned = true
		case "void":
			base = VoidType
		case "char":
			base = CharType
		case "short", "int":
			base = IntType
		case "long", "size_t":
			base = LongType
		case "float":
			base = FloatType
		case "double":
			base = DoubleType
		}
	}
	if base == nil {
		if sawUnsigned {
			base = IntType
		} else {
			return nil, p.errf("declaration lacks a base type")
		}
	}
	return base, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.next().Pos // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	var els Stmt
	if p.atKeyword("else") {
		p.next()
		els, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
	}
	return &If{stmtBase: stmtBase{Pos: pos}, Cond: cond, Then: then, Else: els}, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	pos := p.next().Pos // while
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &While{stmtBase: stmtBase{Pos: pos}, Cond: cond, Body: body}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	pos := p.next().Pos // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	f := &For{stmtBase: stmtBase{Pos: pos}}
	if !p.atPunct(";") {
		if p.atType() {
			d, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			f.Init = d
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			f.Init = &ExprStmt{stmtBase: stmtBase{Pos: pos}, X: x}
		}
	} else {
		p.next()
	}
	if !p.atPunct(";") {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Cond = c
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Post = x
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// ---- Expressions ----

func (p *Parser) parseExpr() (Expr, error) {
	x, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	// The comma operator appears only in for-posts in our dialect; reject
	// elsewhere by construction (callers consume ',' explicitly).
	return x, nil
}

func (p *Parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
			p.next()
			rhs, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			return &Assign{exprBase: exprBase{Pos: t.Pos}, Op: t.Text, L: lhs, R: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *Parser) parseCondExpr() (Expr, error) {
	c, err := p.parseBinaryExpr(0)
	if err != nil {
		return nil, err
	}
	if p.atPunct("?") {
		pos := p.next().Pos
		tv, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		fv, err := p.parseCondExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{exprBase: exprBase{Pos: pos}, C: c, T: tv, F: fv}, nil
	}
	return c, nil
}

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) parseBinaryExpr(minPrec int) (Expr, error) {
	lhs, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase: exprBase{Pos: t.Pos}, Op: t.Text, L: lhs, R: rhs}
	}
}

func (p *Parser) parseUnaryExpr() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "&", "*", "+":
			p.next()
			x, err := p.parseUnaryExpr()
			if err != nil {
				return nil, err
			}
			if t.Text == "+" {
				return x, nil
			}
			return &Unary{exprBase: exprBase{Pos: t.Pos}, Op: t.Text, X: x}, nil
		case "++", "--":
			p.next()
			x, err := p.parseUnaryExpr()
			if err != nil {
				return nil, err
			}
			return &Unary{exprBase: exprBase{Pos: t.Pos}, Op: t.Text, X: x}, nil
		case "(":
			// Cast or parenthesized expression.
			if p.toks[p.pos+1].Kind == TokKeyword && IsTypeKeyword(p.toks[p.pos+1].Text) {
				p.next() // (
				to, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnaryExpr()
				if err != nil {
					return nil, err
				}
				return &Cast{exprBase: exprBase{Pos: t.Pos}, To: to, X: x}, nil
			}
		}
	}
	if t.Kind == TokKeyword && t.Text == "sizeof" {
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.atType() {
			of, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &SizeofType{exprBase: exprBase{Pos: t.Pos}, Of: of}, nil
		}
		// sizeof(expr): evaluate the expression's type at check time. For
		// simplicity we only accept an identifier here.
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &Call{exprBase: exprBase{Pos: t.Pos}, Name: "__sizeof_var", Args: []Expr{&Ident{exprBase: exprBase{Pos: t.Pos}, Name: name}}}, nil
	}
	return p.parsePostfixExpr()
}

func (p *Parser) parsePostfixExpr() (Expr, error) {
	x, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return x, nil
		}
		switch t.Text {
		case "[":
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Index{exprBase: exprBase{Pos: t.Pos}, X: x, Idx: idx}
		case "++", "--":
			p.next()
			x = &Postfix{exprBase: exprBase{Pos: t.Pos}, Op: t.Text, X: x}
		case "(":
			id, ok := x.(*Ident)
			if !ok {
				return nil, p.errf("call of non-identifier expression")
			}
			p.next()
			var args []Expr
			if !p.atPunct(")") {
				for {
					a, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.eatPunct(",") {
						break
					}
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			x = &Call{exprBase: exprBase{Pos: t.Pos}, Name: id.Name, Args: args}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.next()
		return &IntLit{exprBase: exprBase{Pos: t.Pos}, Value: t.IntVal}, nil
	case TokFloatLit:
		p.next()
		return &FloatLit{exprBase: exprBase{Pos: t.Pos}, Value: t.FloatVal}, nil
	case TokCharLit:
		p.next()
		return &CharLit{exprBase: exprBase{Pos: t.Pos}, Value: byte(t.IntVal)}, nil
	case TokStrLit:
		p.next()
		return &StrLit{exprBase: exprBase{Pos: t.Pos}, Value: t.Text}, nil
	case TokIdent:
		p.next()
		return &Ident{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}, nil
	case TokKeyword:
		if t.Text == "NULL" {
			p.next()
			lit := &IntLit{exprBase: exprBase{Pos: t.Pos}, Value: 0}
			return &Cast{exprBase: exprBase{Pos: t.Pos}, To: PointerTo(VoidType), X: lit}, nil
		}
	case TokPunct:
		if t.Text == "(" {
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, p.errf("unexpected token %s in expression", t)
}
