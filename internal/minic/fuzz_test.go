package minic

import "testing"

// FuzzLexer asserts the lexer never panics: any byte sequence either
// tokenizes or returns a positioned error. Run long with
// `go test -fuzz FuzzLexer ./internal/minic`; the checked-in corpus under
// testdata/fuzz keeps the interesting shapes in every `go test` run.
func FuzzLexer(f *testing.F) {
	f.Add("int main() { return 0; }")
	f.Add("double x = 1.5e-3; // comment\n")
	f.Add("char *s = \"a\\tb\\\"c\";")
	f.Add("#pragma mapreduce mapper key(k) value(v)")
	f.Add("0x1f + 'c' % /* block */ 12")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := LexFile("fuzz.c", src)
		if err == nil && len(toks) == 0 {
			t.Fatalf("no tokens and no error for %q", src)
		}
	})
}

// FuzzParser asserts the parser and semantic checker never panic and never
// accept a program without producing an AST.
func FuzzParser(f *testing.F) {
	f.Add("int main() { return 0; }")
	f.Add(`int add(int a, int b) { return a + b; }
int main() { int x = add(1, 2); printf("%d\n", x); return 0; }`)
	f.Add(`int main() {
	int key, val, read; char *line; size_t n = 100;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(key) value(val)
	while ((read = getline(&line, &n, stdin)) != -1) {
		key = read; val = 1;
		printf("%d\t%d\n", key, val);
	}
	free(line);
	return 0;
}`)
	f.Add("int main() { for (int i = 0; i < 3; i++) { } return 0 }")
	f.Add("int a[4]; int main() { a[5] = (1 ? 2 : 3); return 0; }")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseAndCheckFile("fuzz.c", src)
		if err == nil && prog == nil {
			t.Fatalf("nil program and nil error for %q", src)
		}
	})
}
