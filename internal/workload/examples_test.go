package workload

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateExamples = flag.Bool("update", false, "rewrite examples/minic from the benchmark constants")

// exampleSources maps on-disk example file names to the benchmark mapper
// constants they mirror. The files exist so hdlint/hdcc can be exercised
// on real paths (and so `make lint` has a file corpus); this test pins
// them byte-for-byte to the Go constants.
func exampleSources() map[string]string {
	return map[string]string{
		"grep-map.c":           GrepMap,
		"histmovies-map.c":     HistmoviesMap,
		"wordcount-map.c":      WordcountMap,
		"histratings-map.c":    HistratingsMap,
		"linreg-map.c":         LinearRegressionMap,
		"kmeans-map.c":         KmeansMap,
		"classification-map.c": ClassificationMap,
		"blackscholes-map.c":   BlackScholesMap,
	}
}

func TestExampleSourcesPinned(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "minic")
	if *updateExamples {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, src := range exampleSources() {
		path := filepath.Join(dir, name)
		if *updateExamples {
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run `go test ./internal/workload -run TestExampleSourcesPinned -update` to regenerate)", name, err)
		}
		if string(data) != src {
			t.Errorf("%s drifted from its workload constant; regenerate with -update", name)
		}
	}
}
