package workload

import (
	"bytes"
	"fmt"

	"repro/internal/mr"
	"repro/internal/sim"
)

// Benchmark bundles one Table-2 application: its MiniC programs, input
// generator, and the paper's per-cluster workload parameters.
type Benchmark struct {
	Code string // GR, HS, WC, HR, LR, KM, CL, BS
	Name string
	// Nature is "IO" or "Compute" (Table 2).
	Nature string
	// PctMapCombine is Table 2's "%Exec. Time Map + Combine are Active".
	PctMapCombine int
	// HasCombiner mirrors Table 2's Combiner column.
	HasCombiner bool
	// Job carries the sources. NumReducers is set per cluster at run time.
	Job mr.JobProgram
	// Gen produces approximately n bytes of input for the given seed.
	Gen func(seed uint64, n int) []byte

	// Table 2 parameters (Cluster1 / Cluster2). A zero value means the
	// benchmark was not run on that cluster (KM on Cluster2).
	ReduceTasksC1, ReduceTasksC2 int
	MapTasksC1, MapTasksC2       int
	InputGBC1, InputGBC2         float64
}

// OnCluster2 reports whether the paper ran this benchmark on Cluster2.
func (b *Benchmark) OnCluster2() bool { return b.MapTasksC2 > 0 }

// JobFor returns the JobProgram configured with the cluster's reducer
// count (cluster 1 or 2).
func (b *Benchmark) JobFor(clusterIdx int) mr.JobProgram {
	job := b.Job
	if clusterIdx == 2 {
		job.NumReducers = b.ReduceTasksC2
	} else {
		job.NumReducers = b.ReduceTasksC1
	}
	return job
}

// All returns the eight benchmarks in Table 2 order.
func All() []*Benchmark {
	return []*Benchmark{
		Grep(), Histmovies(), Wordcount(), Histratings(),
		LinearRegression(), Kmeans(), Classification(), BlackScholes(),
	}
}

// ByCode returns a benchmark by its two-letter code, or nil.
func ByCode(code string) *Benchmark {
	for _, b := range All() {
		if b.Code == code {
			return b
		}
	}
	return nil
}

// Grep (GR): IO-intensive pattern search.
func Grep() *Benchmark {
	return &Benchmark{
		Code: "GR", Name: "Grep", Nature: "IO", PctMapCombine: 69, HasCombiner: true,
		Job:           mr.JobProgram{Name: "grep", MapSrc: GrepMap, CombineSrc: GrepCombine, ReduceSrc: GrepReduce},
		Gen:           TextCorpus,
		ReduceTasksC1: 16, ReduceTasksC2: 16,
		MapTasksC1: 7632, MapTasksC2: 2880,
		InputGBC1: 902, InputGBC2: 340,
	}
}

// Histmovies (HS): IO-intensive histogram of per-movie average ratings.
func Histmovies() *Benchmark {
	return &Benchmark{
		Code: "HS", Name: "Histmovies", Nature: "IO", PctMapCombine: 91, HasCombiner: true,
		Job:           mr.JobProgram{Name: "histmovies", MapSrc: HistmoviesMap, CombineSrc: HistmoviesCombine, ReduceSrc: HistmoviesReduce},
		Gen:           MovieRatings,
		ReduceTasksC1: 8, ReduceTasksC2: 8,
		MapTasksC1: 4800, MapTasksC2: 640,
		InputGBC1: 1190, InputGBC2: 159,
	}
}

// Wordcount (WC): IO-intensive word frequency count (Listings 1 and 2).
func Wordcount() *Benchmark {
	return &Benchmark{
		Code: "WC", Name: "Wordcount", Nature: "IO", PctMapCombine: 91, HasCombiner: true,
		Job:           mr.JobProgram{Name: "wordcount", MapSrc: WordcountMap, CombineSrc: WordcountCombine, ReduceSrc: WordcountReduce},
		Gen:           TextCorpus,
		ReduceTasksC1: 48, ReduceTasksC2: 32,
		MapTasksC1: 5760, MapTasksC2: 1024,
		InputGBC1: 844, InputGBC2: 151,
	}
}

// Histratings (HR): compute-intensive histogram of individual ratings.
func Histratings() *Benchmark {
	return &Benchmark{
		Code: "HR", Name: "Histratings", Nature: "Compute", PctMapCombine: 92, HasCombiner: true,
		Job:           mr.JobProgram{Name: "histratings", MapSrc: HistratingsMap, CombineSrc: HistratingsCombine, ReduceSrc: HistratingsReduce},
		Gen:           MovieRatings,
		ReduceTasksC1: 5, ReduceTasksC2: 5,
		MapTasksC1: 4800, MapTasksC2: 2560,
		InputGBC1: 591, InputGBC2: 160,
	}
}

// LinearRegression (LR): compute-intensive least-squares partials.
func LinearRegression() *Benchmark {
	return &Benchmark{
		Code: "LR", Name: "Linear Regression", Nature: "Compute", PctMapCombine: 86, HasCombiner: true,
		Job:           mr.JobProgram{Name: "linreg", MapSrc: LinearRegressionMap, CombineSrc: LinearRegressionCombine, ReduceSrc: LinearRegressionReduce},
		Gen:           RegressionRows,
		ReduceTasksC1: 16, ReduceTasksC2: 16,
		MapTasksC1: 2560, MapTasksC2: 3840,
		InputGBC1: 714, InputGBC2: 356,
	}
}

// Kmeans (KM): compute-intensive clustering iteration. Not run on
// Cluster2 (memory capacity, per the paper).
func Kmeans() *Benchmark {
	return &Benchmark{
		Code: "KM", Name: "Kmeans", Nature: "Compute", PctMapCombine: 89, HasCombiner: false,
		Job:           mr.JobProgram{Name: "kmeans", MapSrc: KmeansMap, ReduceSrc: KmeansReduce},
		Gen:           MovieRatings,
		ReduceTasksC1: 16, ReduceTasksC2: 16,
		MapTasksC1: 4800, MapTasksC2: 0,
		InputGBC1: 923, InputGBC2: 0,
	}
}

// Classification (CL): compute-intensive single-pass centroid assignment.
func Classification() *Benchmark {
	return &Benchmark{
		Code: "CL", Name: "Classification", Nature: "Compute", PctMapCombine: 92, HasCombiner: false,
		Job:           mr.JobProgram{Name: "classification", MapSrc: ClassificationMap, ReduceSrc: ClassificationReduce},
		Gen:           MovieRatings,
		ReduceTasksC1: 16, ReduceTasksC2: 16,
		MapTasksC1: 4800, MapTasksC2: 3200,
		InputGBC1: 923, InputGBC2: 72,
	}
}

// BlackScholes (BS): map-only option pricing, the most compute-intensive
// benchmark.
func BlackScholes() *Benchmark {
	return &Benchmark{
		Code: "BS", Name: "BlackScholes", Nature: "Compute", PctMapCombine: 100, HasCombiner: false,
		Job:           mr.JobProgram{Name: "blackscholes", MapSrc: BlackScholesMap},
		Gen:           Options,
		ReduceTasksC1: 0, ReduceTasksC2: 0,
		MapTasksC1: 3600, MapTasksC2: 5120,
		InputGBC1: 890, InputGBC2: 210,
	}
}

// ---- Input generators ----

// dictionary for the text corpus; suffix variety makes some words match
// grep's "ing" pattern.
var dictionary = []string{
	"the", "being", "of", "having", "processing", "data", "map", "reduce",
	"running", "cluster", "node", "string", "compute", "scaling", "task",
	"record", "working", "key", "value", "sort", "merging", "timing",
	"disk", "memory", "thread", "warp", "kernel", "loading", "storing",
	"graph", "model", "parsing", "stream", "writing", "reading", "block",
}

// TextCorpus generates ~n bytes of Zipf-distributed words in lines of
// varying length (inputs for Grep and Wordcount).
func TextCorpus(seed uint64, n int) []byte {
	rng := sim.NewRNG(seed)
	var b bytes.Buffer
	b.Grow(n + 128)
	for b.Len() < n {
		words := 4 + rng.Intn(9)
		for w := 0; w < words; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(dictionary[rng.Zipf(len(dictionary), 1.2)])
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// MovieRatings generates ~n bytes of "movieId r1,r2,..." lines with
// heavily skewed ratings counts (a few blockbuster movies have many more
// reviews), the skew that motivates record stealing.
func MovieRatings(seed uint64, n int) []byte {
	rng := sim.NewRNG(seed)
	var b bytes.Buffer
	b.Grow(n + 256)
	id := int(seed % 100000)
	for b.Len() < n {
		id++
		count := 6 + rng.Zipf(26, 1.3)
		if rng.Intn(16) == 0 {
			count += 12 + rng.Intn(14) // blockbuster
		}
		if count > 32 {
			count = 32
		}
		fmt.Fprintf(&b, "%d ", id)
		for r := 0; r < count; r++ {
			if r > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", 1+rng.Intn(9))
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// RegressionRows generates ~n bytes of "rid x y" samples over 12
// regressors (paper §7.1) with y correlated to x plus noise.
func RegressionRows(seed uint64, n int) []byte {
	rng := sim.NewRNG(seed)
	var b bytes.Buffer
	b.Grow(n + 128)
	for b.Len() < n {
		rid := rng.Intn(12)
		x := rng.Float64() * 100
		y := 3.5*x + 7 + rng.NormFloat64()*5
		fmt.Fprintf(&b, "%d %.3f %.3f\n", rid, x, y)
	}
	return b.Bytes()
}

// Options generates ~n bytes of "id S K T" option quotes for
// BlackScholes.
func Options(seed uint64, n int) []byte {
	rng := sim.NewRNG(seed)
	var b bytes.Buffer
	b.Grow(n + 128)
	id := 0
	for b.Len() < n {
		id++
		s := 50 + rng.Float64()*100
		k := 50 + rng.Float64()*100
		t := 0.2 + rng.Float64()*1.8
		fmt.Fprintf(&b, "%d %.2f %.2f %.2f\n", id, s, k, t)
	}
	return b.Bytes()
}
