package workload

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/kv"
	"repro/internal/mr"
	"repro/internal/streaming"
)

// runPipeline executes a benchmark's full map -> combine -> reduce chain on
// the CPU path over one generated input and returns the final output pairs.
func runPipeline(t *testing.T, b *Benchmark, inputBytes int) []kv.Pair {
	t.Helper()
	job := b.JobFor(1)
	if job.NumReducers > 4 {
		job.NumReducers = 4
	}
	cj, err := mr.CompileJob(job)
	if err != nil {
		t.Fatal(err)
	}
	input := b.Gen(31, inputBytes)
	res, err := streaming.RunMapTask(cj.MapF, cj.CombineF, input, streaming.MapTaskConfig{
		Schema: cj.Schema, NumReducers: job.NumReducers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.NumReducers == 0 {
		return res.MapOutput
	}
	var out []kv.Pair
	for p := 0; p < job.NumReducers; p++ {
		final, _, err := streaming.RunReduce(cj.ReduceF, cj.Schema, [][]kv.Pair{res.Partitions[p]}, streaming.XeonE52680())
		if err != nil {
			t.Fatalf("reduce %d: %v", p, err)
		}
		out = append(out, final...)
	}
	return out
}

func countLines(t *testing.T, b *Benchmark, inputBytes int) int {
	t.Helper()
	data := b.Gen(31, inputBytes)
	return strings.Count(string(data), "\n")
}

func TestHistmoviesPipelineSemantics(t *testing.T) {
	b := Histmovies()
	out := runPipeline(t, b, 8192)
	lines := countLines(t, b, 8192)
	var total int64
	for _, p := range out {
		// Bins are 2*avg for ratings 1..9: range [2, 18].
		if p.Key.I < 2 || p.Key.I > 18 {
			t.Errorf("bin %d out of range", p.Key.I)
		}
		if p.Val.I <= 0 {
			t.Errorf("non-positive bin count %v", p)
		}
		total += p.Val.I
	}
	// Every movie lands in exactly one bin.
	if total != int64(lines) {
		t.Errorf("binned movies = %d, want %d", total, lines)
	}
}

func TestHistratingsPipelineSemantics(t *testing.T) {
	b := Histratings()
	out := runPipeline(t, b, 8192)
	data := string(b.Gen(31, 8192))
	// Count individual ratings in the raw input: digits after the first
	// space of each line.
	wantRatings := 0
	for _, line := range strings.Split(strings.TrimRight(data, "\n"), "\n") {
		sp := strings.IndexByte(line, ' ')
		wantRatings += len(strings.Split(line[sp+1:], ","))
	}
	var total int64
	for _, p := range out {
		if p.Key.I < 1 || p.Key.I > 9 {
			t.Errorf("rating bin %d out of range", p.Key.I)
		}
		total += p.Val.I
	}
	if total != int64(wantRatings) {
		t.Errorf("binned ratings = %d, want %d", total, wantRatings)
	}
}

func TestClassificationPipelineSemantics(t *testing.T) {
	b := Classification()
	out := runPipeline(t, b, 8192)
	lines := countLines(t, b, 8192)
	var members int64
	for _, p := range out {
		if p.Key.I < 0 || p.Key.I >= 32 {
			t.Errorf("centroid id %d out of range", p.Key.I)
		}
		members += p.Val.I
	}
	if members != int64(lines) {
		t.Errorf("classified members = %d, want %d", members, lines)
	}
}

func TestKmeansPipelineSemantics(t *testing.T) {
	b := Kmeans()
	out := runPipeline(t, b, 8192)
	if len(out) == 0 || len(out) > 32 {
		t.Fatalf("centroid count = %d, want 1..32", len(out))
	}
	for _, p := range out {
		if p.Key.I < 0 || p.Key.I >= 32 {
			t.Errorf("centroid id %d out of range", p.Key.I)
		}
		// Each value is a comma-separated vector of dim averages in [0, 9].
		dims := strings.Split(string(p.Val.B), ",")
		if len(dims) != 32 {
			t.Fatalf("centroid %d has %d dims, want 32", p.Key.I, len(dims))
		}
		for _, d := range dims {
			f, err := strconv.ParseFloat(d, 64)
			if err != nil {
				t.Fatalf("bad centroid component %q: %v", d, err)
			}
			if f < 0 || f > 9 {
				t.Errorf("centroid component %v outside rating range", f)
			}
		}
	}
}

func TestLinearRegressionPipelineSemantics(t *testing.T) {
	b := LinearRegression()
	out := runPipeline(t, b, 8192)
	// 12 regressors x 4 components = at most 48 keys, all present for a
	// reasonably sized input.
	if len(out) != 48 {
		t.Fatalf("LR output keys = %d, want 48", len(out))
	}
	byKey := map[int64]float64{}
	for _, p := range out {
		byKey[p.Key.I] = p.Val.F
	}
	for rid := int64(0); rid < 12; rid++ {
		sx := byKey[rid*4]
		sy := byKey[rid*4+1]
		sxx := byKey[rid*4+2]
		sxy := byKey[rid*4+3]
		if sxx <= 0 {
			t.Errorf("regressor %d: sum(x^2) = %v", rid, sxx)
		}
		// y ~ 3.5x + 7 with noise: the weighted sums must be positive and
		// sxy/sxx must be in a sane slope neighbourhood.
		if sx <= 0 || sy <= 0 || sxy <= 0 {
			t.Errorf("regressor %d: negative sums (%v %v %v)", rid, sx, sy, sxy)
		}
		slope := sxy / sxx
		if slope < 2 || slope > 6 {
			t.Errorf("regressor %d: slope estimate %v implausible for y=3.5x+7", rid, slope)
		}
	}
}

func TestGrepPipelineSemantics(t *testing.T) {
	b := Grep()
	out := runPipeline(t, b, 8192)
	data := string(b.Gen(31, 8192))
	wantMatches := int64(strings.Count(data, "ing"))
	var total int64
	for _, p := range out {
		if string(p.Key.B) != "ing" {
			t.Errorf("grep key %q, want the pattern", p.Key.B)
		}
		total += p.Val.I
	}
	if total != wantMatches {
		t.Errorf("pattern occurrences = %d, want %d", total, wantMatches)
	}
}

func TestWordcountPipelineSemantics(t *testing.T) {
	b := Wordcount()
	out := runPipeline(t, b, 8192)
	data := string(b.Gen(31, 8192))
	wantWords := int64(len(strings.Fields(data)))
	var total int64
	for _, p := range out {
		total += p.Val.I
	}
	if total != wantWords {
		t.Errorf("counted words = %d, want %d", total, wantWords)
	}
}

func TestBlackScholesPipelineSemantics(t *testing.T) {
	b := BlackScholes()
	out := runPipeline(t, b, 8192)
	lines := countLines(t, b, 8192)
	if len(out) != lines {
		t.Fatalf("priced options = %d, want %d", len(out), lines)
	}
	for _, p := range out {
		// Averaged call prices across the volatility sweep must be
		// non-negative and below the spot price range.
		if p.Val.F < 0 || p.Val.F > 160 {
			t.Errorf("option %d price %v implausible", p.Key.I, p.Val.F)
		}
	}
}
