package workload

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/gpurt"
	"repro/internal/kv"
	"repro/internal/mr"
	"repro/internal/streaming"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("benchmarks = %d, want 8", len(all))
	}
	codes := map[string]bool{}
	for _, b := range all {
		codes[b.Code] = true
	}
	for _, c := range []string{"GR", "HS", "WC", "HR", "LR", "KM", "CL", "BS"} {
		if !codes[c] {
			t.Errorf("missing benchmark %s", c)
		}
		if ByCode(c) == nil {
			t.Errorf("ByCode(%s) = nil", c)
		}
	}
	if ByCode("XX") != nil {
		t.Error("ByCode of unknown code should be nil")
	}
}

func TestTable2Metadata(t *testing.T) {
	// Spot-check Table 2 values.
	wc := ByCode("WC")
	if wc.MapTasksC1 != 5760 || wc.MapTasksC2 != 1024 || wc.ReduceTasksC1 != 48 {
		t.Errorf("WC table2 data wrong: %+v", wc)
	}
	km := ByCode("KM")
	if km.OnCluster2() {
		t.Error("KM must not run on Cluster2 (memory limits)")
	}
	bs := ByCode("BS")
	if bs.ReduceTasksC1 != 0 || bs.HasCombiner {
		t.Error("BS must be map-only without combiner")
	}
	combiners := 0
	for _, b := range All() {
		if b.HasCombiner != (b.Job.CombineSrc != "") {
			t.Errorf("%s: HasCombiner=%v but CombineSrc presence=%v", b.Code, b.HasCombiner, b.Job.CombineSrc != "")
		}
		if b.HasCombiner {
			combiners++
		}
	}
	if combiners != 5 {
		t.Errorf("combiner-bearing benchmarks = %d, want 5 (GR HS WC HR LR)", combiners)
	}
}

func TestAllBenchmarksCompile(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Code, func(t *testing.T) {
			cj, err := mr.CompileJob(b.JobFor(1))
			if err != nil {
				t.Fatalf("%s does not compile: %v", b.Code, err)
			}
			if cj.MapC.CUDA == "" {
				t.Error("no CUDA emission")
			}
			if b.HasCombiner && cj.CombineC == nil {
				t.Error("combiner missing after compile")
			}
		})
	}
}

func TestGeneratorsProduceParseableInput(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Code, func(t *testing.T) {
			data := b.Gen(42, 4096)
			if len(data) < 4096 {
				t.Fatalf("generator produced %d bytes", len(data))
			}
			if data[len(data)-1] != '\n' {
				t.Error("input must end with a newline")
			}
			lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
			if len(lines) < 10 {
				t.Fatalf("only %d lines", len(lines))
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, b := range All() {
		a := b.Gen(7, 2048)
		c := b.Gen(7, 2048)
		if string(a) != string(c) {
			t.Errorf("%s generator not deterministic", b.Code)
		}
		d := b.Gen(8, 2048)
		if string(a) == string(d) {
			t.Errorf("%s generator ignores seed", b.Code)
		}
	}
}

func TestMovieRatingsSkewed(t *testing.T) {
	data := MovieRatings(3, 1<<16)
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	minLen, maxLen := 1<<30, 0
	for _, l := range lines {
		if len(l) < minLen {
			minLen = len(l)
		}
		if len(l) > maxLen {
			maxLen = len(l)
		}
	}
	if maxLen < 3*minLen {
		t.Errorf("ratings records not skewed enough: min %d max %d", minLen, maxLen)
	}
}

// aggregate normalizes job/task outputs into key->[]values text form so
// the CPU and GPU paths can be compared after reduction semantics.
func aggregate(pairs []kv.Pair) map[string][]string {
	out := map[string][]string{}
	for _, p := range pairs {
		k := p.Key.Text()
		out[k] = append(out[k], p.Val.Text())
	}
	for _, v := range out {
		sort.Strings(v)
	}
	return out
}

// TestCPUAndGPUTaskOutputsAgree runs one map(+combine) task per benchmark
// on both paths and checks that, once values are summed per key (what the
// reducer does), the outputs match. This is the single-source-two-targets
// guarantee of the paper.
func TestCPUAndGPUTaskOutputsAgree(t *testing.T) {
	dev, err := gpu.NewDevice(gpu.TeslaK40())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range All() {
		b := b
		t.Run(b.Code, func(t *testing.T) {
			job := b.JobFor(1)
			if job.NumReducers > 4 {
				job.NumReducers = 4
			}
			cj, err := mr.CompileJob(job)
			if err != nil {
				t.Fatal(err)
			}
			input := b.Gen(99, 8192)

			cpuRes, err := streaming.RunMapTask(cj.MapF, cj.CombineF, input, streaming.MapTaskConfig{
				Schema: cj.Schema, NumReducers: job.NumReducers,
			})
			if err != nil {
				t.Fatalf("CPU task: %v", err)
			}
			gpuRes, err := gpurt.RunTask(dev, cj.MapC, cj.CombineC, input, gpurt.TaskConfig{
				NumReducers: job.NumReducers, Opts: gpurt.AllOptimizations(),
			})
			if err != nil {
				t.Fatalf("GPU task: %v", err)
			}

			var cpuPairs, gpuPairs []kv.Pair
			if job.NumReducers == 0 {
				cpuPairs = cpuRes.MapOutput
				gpuPairs = gpuRes.MapOutput
			} else {
				for _, p := range cpuRes.Partitions {
					cpuPairs = append(cpuPairs, p...)
				}
				for _, p := range gpuRes.Partitions {
					gpuPairs = append(gpuPairs, p...)
				}
			}
			// Combiners may partially combine on the GPU (relaxed
			// equivalence); compare after summing numeric values per key,
			// which is exactly what the reducers restore.
			cpuAgg := sumByKey(cpuPairs, cj.Schema)
			gpuAgg := sumByKey(gpuPairs, cj.Schema)
			if len(cpuAgg) != len(gpuAgg) {
				t.Fatalf("distinct keys differ: CPU %d vs GPU %d", len(cpuAgg), len(gpuAgg))
			}
			for k, v := range cpuAgg {
				gv, ok := gpuAgg[k]
				if !ok {
					t.Fatalf("key %q missing from GPU output", k)
				}
				if !closeEnough(v, gv) {
					t.Errorf("key %q: CPU %v vs GPU %v", k, v, gv)
				}
			}
		})
	}
}

// sumByKey folds values: numeric values sum; byte values concatenate in
// sorted order.
func sumByKey(pairs []kv.Pair, schema kv.Schema) map[string]float64 {
	out := map[string]float64{}
	if schema.ValKind == kv.Bytes {
		sets := aggregate(pairs)
		for k, vs := range sets {
			out[k] = float64(len(vs))
		}
		return out
	}
	for _, p := range pairs {
		switch p.Val.Kind {
		case kv.Int:
			out[p.Key.Text()] += float64(p.Val.I)
		case kv.Float:
			out[p.Key.Text()] += p.Val.F
		}
	}
	return out
}

// closeEnough tolerates the %f text rounding (6 decimals) that the CPU
// streaming path applies to float values but the GPU binary path does not.
func closeEnough(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return diff < 1e-4 || diff/scale < 1e-5
}

// TestComputeBenchmarksGetHigherGPUSpeedup checks the Fig. 5 ordering
// premise: compute-intensive benchmarks must see larger single-task GPU
// speedups than IO-intensive ones.
func TestComputeBenchmarksGetHigherGPUSpeedup(t *testing.T) {
	dev, err := gpu.NewDevice(gpu.TeslaK40())
	if err != nil {
		t.Fatal(err)
	}
	speedup := func(b *Benchmark) float64 {
		job := b.JobFor(1)
		if job.NumReducers > 4 {
			job.NumReducers = 4
		}
		cj, err := mr.CompileJob(job)
		if err != nil {
			t.Fatal(err)
		}
		input := b.Gen(5, 16384)
		cpuRes, err := streaming.RunMapTask(cj.MapF, cj.CombineF, input, streaming.MapTaskConfig{
			Schema: cj.Schema, NumReducers: job.NumReducers,
		})
		if err != nil {
			t.Fatal(err)
		}
		gpuRes, err := gpurt.RunTask(dev, cj.MapC, cj.CombineC, input, gpurt.TaskConfig{
			NumReducers: job.NumReducers, Opts: gpurt.AllOptimizations(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return cpuRes.Times.Total() / gpuRes.Total()
	}
	bs := speedup(ByCode("BS"))
	gr := speedup(ByCode("GR"))
	if bs <= gr {
		t.Errorf("BlackScholes speedup (%.2f) should exceed Grep's (%.2f)", bs, gr)
	}
	if bs < 5 {
		t.Errorf("BlackScholes single-task speedup = %.2f, want >= 5 (paper: up to 47x)", bs)
	}
}
