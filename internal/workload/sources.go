// Package workload defines the paper's eight evaluation benchmarks
// (Table 2) — Grep, Histmovies, Wordcount, Histratings, Linear Regression,
// Kmeans, Classification, and BlackScholes — as MiniC map/combine/reduce
// programs carrying the paper's HeteroDoop directives, plus synthetic
// input generators standing in for the PUMA datasets.
package workload

// getWordHelper is the record tokenizer shared by the text benchmarks
// (the helper the paper's Listing 1 calls).
const getWordHelper = `
int getWord(char *line, int offset, char *word, int read, int maxw) {
	int i = offset, j = 0;
	while (i < read && (line[i] == ' ' || line[i] == '\n' || line[i] == '\t')) i++;
	while (i < read && line[i] != ' ' && line[i] != '\n' && line[i] != '\t' && j < maxw - 1) {
		word[j] = line[i];
		i++; j++;
	}
	if (j == 0) return -1;
	word[j] = '\0';
	return i - offset;
}
`

// WordcountMap is the paper's Listing 1.
const WordcountMap = getWordHelper + `
int main() {
	char word[30], *line;
	size_t nbytes = 10000;
	int read, linePtr, offset, one;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(word) value(one) keylength(30) kvpairs(48) blocks(30) threads(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		linePtr = 0;
		offset = 0;
		one = 1;
		while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
			printf("%s\t%d\n", word, one);
			offset += linePtr;
		}
	}
	free(line);
	return 0;
}`

// WordcountCombine is the paper's Listing 2.
const WordcountCombine = `
int main() {
	char word[30], prevWord[30];
	prevWord[0] = '\0';
	int count, val, read;
	count = 0;
	#pragma mapreduce combiner key(prevWord) value(count) keyin(word) valuein(val) keylength(30) firstprivate(prevWord, count) blocks(15) threads(64)
	{
		while ((read = scanf("%s %d", word, &val)) == 2) {
			if (strcmp(word, prevWord) == 0) {
				count += val;
			} else {
				if (prevWord[0] != '\0')
					printf("%s\t%d\n", prevWord, count);
				strcpy(prevWord, word);
				count = val;
			}
		}
		if (prevWord[0] != '\0')
			printf("%s\t%d\n", prevWord, count);
	}
	return 0;
}`

// WordcountReduce is the combiner logic as a plain streaming filter.
const WordcountReduce = `
int main() {
	char word[30], prevWord[30];
	prevWord[0] = '\0';
	int count, val, read;
	count = 0;
	while ((read = scanf("%s %d", word, &val)) == 2) {
		if (strcmp(word, prevWord) == 0) {
			count += val;
		} else {
			if (prevWord[0] != '\0')
				printf("%s\t%d\n", prevWord, count);
			strcpy(prevWord, word);
			count = val;
		}
	}
	if (prevWord[0] != '\0')
		printf("%s\t%d\n", prevWord, count);
	return 0;
}`

// GrepMap streams each record once, counting occurrences of the fixed
// search pattern, and emits <pattern, count> for matching lines (PUMA
// grep). IO-intensive: a few compares per byte scanned, nothing more.
const GrepMap = `
int main() {
	char word[8], pattern[8], *line;
	size_t nbytes = 10000;
	int read, cnt;
	strcpy(pattern, "ing");
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(word) value(cnt) keylength(8) sharedRO(pattern) blocks(30) threads(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		cnt = 0;
		for (int i = 0; i < read; i++) {
			int j = 0;
			while (pattern[j] != '\0' && i + j < read && line[i + j] == pattern[j]) j++;
			if (pattern[j] == '\0') cnt++;
		}
		if (cnt > 0) {
			strcpy(word, pattern);
			printf("%s\t%d\n", word, cnt);
		}
	}
	free(line);
	return 0;
}`

// GrepCombine / GrepReduce count matched words, same as wordcount.
const (
	GrepCombine = WordcountCombine
	GrepReduce  = WordcountReduce
)

// intSumCombine sums integer values per integer key (histogram combiner).
const intSumCombine = `
int main() {
	int prevKey, count, key, val, read;
	prevKey = -1;
	count = 0;
	#pragma mapreduce combiner key(prevKey) value(count) keyin(key) valuein(val) firstprivate(prevKey, count) blocks(15) threads(64)
	{
		while ((read = scanf("%d %d", &key, &val)) == 2) {
			if (key == prevKey) {
				count += val;
			} else {
				if (prevKey != -1)
					printf("%d\t%d\n", prevKey, count);
				prevKey = key;
				count = val;
			}
		}
		if (prevKey != -1)
			printf("%d\t%d\n", prevKey, count);
	}
	return 0;
}`

// intSumReduce is the plain-filter version of intSumCombine.
const intSumReduce = `
int main() {
	int prevKey, count, key, val, read;
	prevKey = -1;
	count = 0;
	while ((read = scanf("%d %d", &key, &val)) == 2) {
		if (key == prevKey) {
			count += val;
		} else {
			if (prevKey != -1)
				printf("%d\t%d\n", prevKey, count);
			prevKey = key;
			count = val;
		}
	}
	if (prevKey != -1)
		printf("%d\t%d\n", prevKey, count);
	return 0;
}`

// HistmoviesMap averages each movie's ratings and bins the average
// (bin = 2*avg, giving 0..18 for ratings 1..9). One KV per record:
// IO-intensive.
const HistmoviesMap = `
int main() {
	int bin, one, read;
	char *line;
	size_t nbytes = 10000;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(bin) value(one) kvpairs(1) blocks(30) threads(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		int i = 0, sum = 0, cnt = 0;
		while (i < read && line[i] != ' ') i++;
		while (i < read) {
			if (line[i] >= '0' && line[i] <= '9') {
				sum += atoi(line + i);
				cnt++;
				while (i < read && line[i] >= '0' && line[i] <= '9') i++;
			} else {
				i++;
			}
		}
		if (cnt > 0) {
			bin = (sum * 2) / cnt;
			one = 1;
			printf("%d\t%d\n", bin, one);
		}
	}
	free(line);
	return 0;
}`

// HistmoviesCombine / HistmoviesReduce sum bin counts.
const (
	HistmoviesCombine = intSumCombine
	HistmoviesReduce  = intSumReduce
)

// HistratingsMap bins every individual rating: many KVs per record, so the
// combiner sees much more data than histmovies — compute-intensive per the
// paper.
const HistratingsMap = `
int main() {
	int bin, one, read;
	char *line;
	size_t nbytes = 10000;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(bin) value(one) kvpairs(64) blocks(30) threads(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		int i = 0;
		while (i < read && line[i] != ' ') i++;
		while (i < read) {
			if (line[i] >= '0' && line[i] <= '9') {
				bin = atoi(line + i);
				one = 1;
				printf("%d\t%d\n", bin, one);
				while (i < read && line[i] >= '0' && line[i] <= '9') i++;
			} else {
				i++;
			}
		}
	}
	free(line);
	return 0;
}`

// HistratingsCombine / HistratingsReduce sum rating counts.
const (
	HistratingsCombine = intSumCombine
	HistratingsReduce  = intSumReduce
)

// KmeansMap assigns each movie's rating vector to the nearest of 32
// centroids over up to 32 dimensions and emits <centroid, vector>. The
// centroid table is read-only with random access — the texture-memory
// candidate of Fig. 7a — and record lengths vary, which is what record
// stealing (Fig. 7d) exploits.
const KmeansMap = `
int main() {
	double centroids[1024];
	char vec[64];
	char *line;
	int cid, read;
	int K = 32;
	int D = 32;
	size_t nbytes = 10000;
	for (int k = 0; k < 32; k++) {
		for (int d = 0; d < 32; d++) {
			centroids[k * 32 + d] = (double)((k * 7 + d * 3) % 10);
		}
	}
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(cid) value(vec) vallength(64) kvpairs(1) sharedRO(K, D) texture(centroids) blocks(30) threads(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		double pt[32];
		int n = 0, i = 0, start;
		while (i < read && line[i] != ' ') i++;
		start = i + 1;
		while (i < read && n < 32) {
			if (line[i] >= '0' && line[i] <= '9') {
				pt[n] = (double) atoi(line + i);
				n++;
				while (i < read && line[i] >= '0' && line[i] <= '9') i++;
			} else {
				i++;
			}
		}
		if (n > 0) {
			double best = 1.0e30;
			cid = 0;
			for (int k = 0; k < K; k++) {
				double dist = 0.0;
				for (int d = 0; d < n; d++) {
					double diff = pt[d] - centroids[k * D + d];
					dist += diff * diff;
				}
				if (dist < best) {
					best = dist;
					cid = k;
				}
			}
			int j = 0;
			while (start < read && line[start] != '\n' && j < 63) {
				vec[j] = line[start];
				start++;
				j++;
			}
			vec[j] = '\0';
			printf("%d\t%s\n", cid, vec);
		}
	}
	free(line);
	return 0;
}`

// KmeansReduce recomputes each cluster's centroid as the mean of its
// member vectors (one kmeans iteration). No combiner (Table 2).
const KmeansReduce = `
int main() {
	char vec[128];
	double sums[32];
	int cid, read, prevCid, members, d;
	prevCid = -1;
	members = 0;
	for (d = 0; d < 32; d++) sums[d] = 0.0;
	while ((read = scanf("%d %s", &cid, vec)) == 2) {
		if (cid != prevCid) {
			if (prevCid != -1 && members > 0) {
				printf("%d\t", prevCid);
				for (d = 0; d < 32; d++) {
					if (d > 0) printf(",");
					printf("%.3f", sums[d] / (double) members);
				}
				printf("\n");
			}
			prevCid = cid;
			members = 0;
			for (d = 0; d < 32; d++) sums[d] = 0.0;
		}
		int i = 0, n = 0;
		while (vec[i] != '\0' && n < 32) {
			if (vec[i] >= '0' && vec[i] <= '9') {
				sums[n] += (double) atoi(vec + i);
				n++;
				while (vec[i] >= '0' && vec[i] <= '9') i++;
			} else {
				i++;
			}
		}
		members++;
	}
	if (prevCid != -1 && members > 0) {
		printf("%d\t", prevCid);
		for (d = 0; d < 32; d++) {
			if (d > 0) printf(",");
			printf("%.3f", sums[d] / (double) members);
		}
		printf("\n");
	}
	return 0;
}`

// ClassificationMap is kmeans' single-pass cousin: classify each record to
// its nearest centroid and emit <centroid, recordId>. No combiner.
const ClassificationMap = `
int main() {
	double centroids[1024];
	char *line;
	int cid, movieId, read;
	int K = 32;
	int D = 32;
	size_t nbytes = 10000;
	for (int k = 0; k < 32; k++) {
		for (int d = 0; d < 32; d++) {
			centroids[k * 32 + d] = (double)((k * 7 + d * 3) % 10);
		}
	}
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(cid) value(movieId) kvpairs(1) sharedRO(K, D) texture(centroids) blocks(30) threads(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		double pt[32];
		int n = 0, i = 0;
		movieId = atoi(line);
		while (i < read && line[i] != ' ') i++;
		while (i < read && n < 32) {
			if (line[i] >= '0' && line[i] <= '9') {
				pt[n] = (double) atoi(line + i);
				n++;
				while (i < read && line[i] >= '0' && line[i] <= '9') i++;
			} else {
				i++;
			}
		}
		if (n > 0) {
			double best = 1.0e30;
			cid = 0;
			for (int k = 0; k < K; k++) {
				double dist = 0.0;
				for (int d = 0; d < n; d++) {
					double diff = pt[d] - centroids[k * D + d];
					dist += diff * diff;
				}
				if (dist < best) {
					best = dist;
					cid = k;
				}
			}
			printf("%d\t%d\n", cid, movieId);
		}
	}
	free(line);
	return 0;
}`

// ClassificationReduce counts the members classified into each centroid.
const ClassificationReduce = `
int main() {
	int cid, movieId, read, prevCid, members;
	prevCid = -1;
	members = 0;
	while ((read = scanf("%d %d", &cid, &movieId)) == 2) {
		if (cid != prevCid) {
			if (prevCid != -1)
				printf("%d\t%d\n", prevCid, members);
			prevCid = cid;
			members = 0;
		}
		members++;
	}
	if (prevCid != -1)
		printf("%d\t%d\n", prevCid, members);
	return 0;
}`

// LinearRegressionMap emits the four per-regressor partial sums (x, y,
// x*x, x*y) used for least-squares fitting, keyed regressor*4+component.
// A smoothing transform adds the arithmetic intensity the paper's LR
// exhibits.
const LinearRegressionMap = `
int main() {
	int component, read;
	double val;
	char *line;
	size_t nbytes = 10000;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(component) value(val) kvpairs(4) blocks(30) threads(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		int rid = atoi(line);
		int i = 0, f = 0;
		double x = 0.0, y = 0.0;
		while (i < read) {
			if (line[i] == ' ') {
				f++;
				if (f == 1) x = atof(line + i + 1);
				if (f == 2) y = atof(line + i + 1);
			}
			i++;
		}
		double w = 1.0;
		for (int it = 0; it < 24; it++) {
			w = exp(log(w + 1.0e-9) * 0.5) * sqrt(1.0 + x * x * 0.001);
		}
		component = rid * 4;
		val = x * w;
		printf("%d\t%f\n", component, val);
		component = rid * 4 + 1;
		val = y * w;
		printf("%d\t%f\n", component, val);
		component = rid * 4 + 2;
		val = x * x * w;
		printf("%d\t%f\n", component, val);
		component = rid * 4 + 3;
		val = x * y * w;
		printf("%d\t%f\n", component, val);
	}
	free(line);
	return 0;
}`

// LinearRegressionCombine sums the double-valued partials per component.
const LinearRegressionCombine = `
int main() {
	int prevKey, key, read;
	double sum, val;
	prevKey = -1;
	sum = 0.0;
	#pragma mapreduce combiner key(prevKey) value(sum) keyin(key) valuein(val) firstprivate(prevKey, sum) blocks(15) threads(64)
	{
		while ((read = scanf("%d %lf", &key, &val)) == 2) {
			if (key == prevKey) {
				sum += val;
			} else {
				if (prevKey != -1)
					printf("%d\t%f\n", prevKey, sum);
				prevKey = key;
				sum = val;
			}
		}
		if (prevKey != -1)
			printf("%d\t%f\n", prevKey, sum);
	}
	return 0;
}`

// LinearRegressionReduce is the plain-filter version of the combiner.
const LinearRegressionReduce = `
int main() {
	int prevKey, key, read;
	double sum, val;
	prevKey = -1;
	sum = 0.0;
	while ((read = scanf("%d %lf", &key, &val)) == 2) {
		if (key == prevKey) {
			sum += val;
		} else {
			if (prevKey != -1)
				printf("%d\t%f\n", prevKey, sum);
			prevKey = key;
			sum = val;
		}
	}
	if (prevKey != -1)
		printf("%d\t%f\n", prevKey, sum);
	return 0;
}`

// BlackScholesMap prices each option over 128 volatility scenarios
// (paper §7.1: "128 iterations per option") — the most compute-intensive
// benchmark and the only map-only one.
const BlackScholesMap = `
double CNDF(double x) {
	return 0.5 * (1.0 + erf(x / sqrt(2.0)));
}
int main() {
	int id, read;
	double price;
	char *line;
	size_t nbytes = 10000;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(id) value(price) kvpairs(1) blocks(30) threads(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		double S = 0.0, X = 0.0, T = 0.0;
		int i = 0, f = 0;
		id = atoi(line);
		while (i < read) {
			if (line[i] == ' ') {
				f++;
				if (f == 1) S = atof(line + i + 1);
				if (f == 2) X = atof(line + i + 1);
				if (f == 3) T = atof(line + i + 1);
			}
			i++;
		}
		if (T < 0.01) T = 0.01;
		if (X < 1.0) X = 1.0;
		price = 0.0;
		for (int it = 0; it < 128; it++) {
			double sigma = 0.1 + (double) it * 0.002;
			double sqrtT = sqrt(T);
			double d1 = (log(S / X) + (0.05 + sigma * sigma / 2.0) * T) / (sigma * sqrtT);
			double d2 = d1 - sigma * sqrtT;
			price += S * CNDF(d1) - X * exp(-0.05 * T) * CNDF(d2);
		}
		price = price / 128.0;
		printf("%d\t%f\n", id, price);
	}
	free(line);
	return 0;
}`
