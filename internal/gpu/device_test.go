package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/interp"
)

func TestDeviceConfigsValid(t *testing.T) {
	for _, cfg := range []DeviceConfig{TeslaK40(), TeslaM2090()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	bad := TeslaK40()
	bad.SMs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero SMs accepted")
	}
	bad2 := TeslaK40()
	bad2.PCIeGBs = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero PCIe bandwidth accepted")
	}
}

func TestCyclesToSeconds(t *testing.T) {
	cfg := TeslaK40()
	s := cfg.CyclesToSeconds(0.745e9)
	if math.Abs(s-1.0) > 1e-9 {
		t.Fatalf("1 second of cycles = %v", s)
	}
}

func TestTransferTimeScalesWithBytes(t *testing.T) {
	cfg := TeslaK40()
	t1 := cfg.TransferTime(6_000_000_000) // 6 GB at 6 GB/s ~ 1s
	if math.Abs(t1-1.0) > 0.01 {
		t.Fatalf("6GB transfer = %v s", t1)
	}
	if cfg.TransferTime(1000) >= cfg.TransferTime(1_000_000) {
		t.Error("transfer time not monotone in bytes")
	}
}

func TestAccessCostOrdering(t *testing.T) {
	cfg := TeslaK40()
	// register < constant <= shared < texture < global
	if !(cfg.AccessCost(interp.SpaceReg) < cfg.AccessCost(interp.SpaceConstant)) {
		t.Error("register should be cheaper than constant")
	}
	if !(cfg.AccessCost(interp.SpaceShared) < cfg.AccessCost(interp.SpaceTexture)) {
		t.Error("shared should be cheaper than texture")
	}
	if !(cfg.AccessCost(interp.SpaceTexture) < cfg.AccessCost(interp.SpaceGlobal)) {
		t.Error("texture should be cheaper than global (that is the Fig 7a effect)")
	}
}

func TestThreadCostAccumulates(t *testing.T) {
	cfg := TeslaK40()
	tc := NewThreadCost(&cfg)
	tc.Op(10)
	if tc.Cycles != 10*cfg.OpCost {
		t.Fatalf("cycles = %v", tc.Cycles)
	}
	before := tc.Cycles
	tc.Load(interp.SpaceGlobal, 4)
	if tc.Cycles != before+cfg.GlobalCost {
		t.Fatalf("global load cost wrong: %v", tc.Cycles-before)
	}
	before = tc.Cycles
	tc.Store(interp.SpaceShared, 4)
	if tc.Cycles != before+cfg.SharedCost {
		t.Fatalf("shared store cost wrong")
	}
}

func TestCoalescedCheaperThanStrided(t *testing.T) {
	cfg := TeslaK40()
	a := NewThreadCost(&cfg)
	b := NewThreadCost(&cfg)
	a.CoalescedAccess(64, 4)
	b.StridedAccess(64)
	if a.Cycles >= b.Cycles {
		t.Fatalf("coalesced (%v) not cheaper than strided (%v)", a.Cycles, b.Cycles)
	}
	// char4 vectorization: 64 bytes = 16 transactions.
	if a.Mem != 16 {
		t.Fatalf("vector transactions = %d, want 16", a.Mem)
	}
}

func TestAtomicCosts(t *testing.T) {
	cfg := TeslaK40()
	tc := NewThreadCost(&cfg)
	tc.Atomic(interp.SpaceShared)
	sharedCost := tc.Cycles
	tc2 := NewThreadCost(&cfg)
	tc2.Atomic(interp.SpaceGlobal)
	if sharedCost >= tc2.Cycles {
		t.Fatal("shared atomics must be cheaper than global atomics (record-stealing design premise)")
	}
}

func TestAggregateBlocksSingleBlock(t *testing.T) {
	d, err := NewDevice(TeslaK40())
	if err != nil {
		t.Fatal(err)
	}
	tm := d.AggregateBlocks([]float64{745e3}) // 1ms of cycles
	if tm < 0.001 || tm > 0.0011 {
		t.Fatalf("single block time = %v", tm)
	}
}

func TestAggregateBlocksParallelism(t *testing.T) {
	d, _ := NewDevice(TeslaK40())
	// 15 identical blocks on 15 SMs should take ~1 block's time.
	equal := make([]float64, 15)
	for i := range equal {
		equal[i] = 1e6
	}
	t15 := d.AggregateBlocks(equal)
	// 30 blocks should take ~2x.
	double := make([]float64, 30)
	for i := range double {
		double[i] = 1e6
	}
	t30 := d.AggregateBlocks(double)
	if ratio := t30 / t15; ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("30/15 block ratio = %v, want ~2", ratio)
	}
}

func TestAggregateBlocksImbalance(t *testing.T) {
	d, _ := NewDevice(TeslaK40())
	// One huge block dominates regardless of how many tiny ones exist.
	blocks := []float64{1e9}
	for i := 0; i < 100; i++ {
		blocks = append(blocks, 1e3)
	}
	tm := d.AggregateBlocks(blocks)
	want := d.Config.CyclesToSeconds(1e9)
	if tm < want {
		t.Fatalf("time %v less than dominant block %v", tm, want)
	}
	if tm > want*1.05 {
		t.Fatalf("time %v should be dominated by the big block (%v)", tm, want)
	}
}

func TestAggregateBlocksEmptyAndMonotone(t *testing.T) {
	d, _ := NewDevice(TeslaK40())
	if d.AggregateBlocks(nil) <= 0 {
		t.Error("empty launch should still cost launch overhead")
	}
	if err := quick.Check(func(seed uint8) bool {
		n := int(seed%20) + 1
		blocks := make([]float64, n)
		for i := range blocks {
			blocks[i] = float64((i*7919+int(seed))%1000) * 1e3
		}
		t1 := d.AggregateBlocks(blocks)
		t2 := d.AggregateBlocks(append(blocks, 5e6))
		return t2 >= t1 // adding work never speeds the kernel up
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortTimeGrowsWithN(t *testing.T) {
	d, _ := NewDevice(TeslaK40())
	small := d.SortTime(1000, 16, false)
	big := d.SortTime(100000, 16, false)
	if big <= small {
		t.Fatal("sort time not increasing in n")
	}
	if d.SortTime(0, 16, false) <= 0 || d.SortTime(1, 16, false) <= 0 {
		t.Fatal("degenerate sorts must still cost launch overhead")
	}
}

func TestSortAggregationEffect(t *testing.T) {
	d, _ := NewDevice(TeslaK40())
	// The Fig 7e effect: sorting the compacted KV count must be much
	// cheaper than sorting the over-allocated slot count.
	compacted := d.SortTime(10_000, 30, false)
	whitespace := d.SortTime(100_000, 30, false)
	if ratio := whitespace / compacted; ratio < 5 {
		t.Fatalf("aggregation speedup = %v, want >= 5x for 10x slot inflation", ratio)
	}
}

func TestSortVectorizationCheaper(t *testing.T) {
	d, _ := NewDevice(TeslaK40())
	if d.SortTime(50_000, 30, true) >= d.SortTime(50_000, 30, false) {
		t.Fatal("vectorized sort not cheaper")
	}
}

func TestScanTimeReasonable(t *testing.T) {
	d, _ := NewDevice(TeslaK40())
	// Aggregation scan over 1M counters must be well under a millisecond of
	// pure bandwidth time (paper: "negligible in all benchmarks").
	if tm := d.ScanTime(1_000_000, 4); tm > 0.001 {
		t.Fatalf("scan of 1M counters = %v s, want < 1ms", tm)
	}
	if d.ScanTime(0, 4) <= 0 {
		t.Fatal("empty scan should cost launch overhead")
	}
}

func TestStreamKernelTime(t *testing.T) {
	d, _ := NewDevice(TeslaK40())
	one := d.StreamKernelTime(288_000_000_000, 1) // 288GB at 288GB/s ~ 1s
	if math.Abs(one-1.0) > 0.01 {
		t.Fatalf("stream time = %v", one)
	}
}
