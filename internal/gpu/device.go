// Package gpu models the GPU device that HeteroDoop kernels run on: SMs,
// threadblocks, warps, the memory hierarchy (global, shared, constant,
// texture), the PCIe link to the host, and a calibrated per-access cost
// model. Kernels execute functionally (via the MiniC interpreter in
// package gpurt); this package turns their cost-event streams into
// simulated time.
package gpu

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/interp"
)

// DeviceConfig describes a GPU. Latencies are effective cycles per access
// per thread, i.e. raw latency already divided by the latency hiding that
// warp multithreading provides; this keeps the model linear in the event
// counts the interpreter produces.
type DeviceConfig struct {
	Name       string
	SMs        int
	CoresPerSM int
	WarpSize   int
	ClockGHz   float64

	GlobalMemBytes int64
	SharedMemPerSM int64

	// PCIeGBs is the host<->device copy bandwidth in GB/s.
	PCIeGBs float64
	// GlobalGBs is the device-memory bandwidth in GB/s, used for analytic
	// kernels (record counting, scan, sort data movement).
	GlobalGBs float64

	// Effective per-access costs, in cycles.
	OpCost         float64 // one scalar ALU/control op
	GlobalCost     float64 // one global-memory access (uncoalesced)
	CoalescedCost  float64 // one coalesced/vectorized global access
	TextureCost    float64 // one texture fetch (cached)
	ConstantCost   float64 // one constant-memory read
	SharedCost     float64 // one shared-memory access
	RegisterCost   float64 // one register/private scalar access
	AtomicShared   float64 // one shared-memory atomic
	AtomicGlobal   float64 // one global-memory atomic
	KernelLaunchUS float64 // fixed launch overhead in microseconds
}

// TeslaK40 models Cluster1's Kepler-class device (one per node).
func TeslaK40() DeviceConfig {
	return DeviceConfig{
		Name:           "Tesla K40 (Kepler)",
		SMs:            15,
		CoresPerSM:     192,
		WarpSize:       32,
		ClockGHz:       0.745,
		GlobalMemBytes: 12 << 30,
		SharedMemPerSM: 48 << 10,
		PCIeGBs:        6.0,
		GlobalGBs:      288.0,
		OpCost:         1.0,
		GlobalCost:     24.0,
		CoalescedCost:  3.0,
		TextureCost:    4.0,
		ConstantCost:   1.0,
		SharedCost:     1.5,
		RegisterCost:   0.25,
		AtomicShared:   6.0,
		AtomicGlobal:   48.0,
		KernelLaunchUS: 1.5,
	}
}

// TeslaM2090 models Cluster2's Fermi-class devices (three per node).
// Fermi has slower atomics, no read-only data cache beyond texture, and
// lower bandwidth.
func TeslaM2090() DeviceConfig {
	return DeviceConfig{
		Name:           "Tesla M2090 (Fermi)",
		SMs:            16,
		CoresPerSM:     32,
		WarpSize:       32,
		ClockGHz:       0.650,
		GlobalMemBytes: 6 << 30,
		SharedMemPerSM: 48 << 10,
		PCIeGBs:        5.0,
		GlobalGBs:      177.0,
		OpCost:         2.6, // Fermi: ~half of Kepler per-thread issue rate
		GlobalCost:     30.0,
		CoalescedCost:  4.0,
		TextureCost:    5.0,
		ConstantCost:   1.2,
		SharedCost:     2.0,
		RegisterCost:   0.3,
		AtomicShared:   10.0,
		AtomicGlobal:   80.0,
		KernelLaunchUS: 2.0,
	}
}

// Validate sanity-checks a configuration.
func (c *DeviceConfig) Validate() error {
	if c.SMs <= 0 || c.WarpSize <= 0 || c.ClockGHz <= 0 {
		return fmt.Errorf("gpu: invalid device config %q: SMs=%d warp=%d clock=%v", c.Name, c.SMs, c.WarpSize, c.ClockGHz)
	}
	if c.PCIeGBs <= 0 || c.GlobalGBs <= 0 {
		return fmt.Errorf("gpu: invalid bandwidths in config %q", c.Name)
	}
	return nil
}

// CyclesToSeconds converts device cycles to seconds.
func (c *DeviceConfig) CyclesToSeconds(cycles float64) float64 {
	return cycles / (c.ClockGHz * 1e9)
}

// TransferTime returns the host<->device copy time for n bytes.
func (c *DeviceConfig) TransferTime(n int64) float64 {
	return float64(n)/(c.PCIeGBs*1e9) + c.KernelLaunchUS*1e-6
}

// AccessCost returns the per-access cycle cost for a memory space.
// Coalesced global accesses use CoalescedCost; callers that know an access
// is coalesced charge it explicitly via ThreadCost.CoalescedAccess.
func (c *DeviceConfig) AccessCost(s interp.MemSpace) float64 {
	switch s {
	case interp.SpaceGlobal:
		return c.GlobalCost
	case interp.SpaceTexture:
		return c.TextureCost
	case interp.SpaceConstant:
		return c.ConstantCost
	case interp.SpaceShared:
		return c.SharedCost
	case interp.SpaceReg:
		return c.RegisterCost
	case interp.SpaceLocal:
		return c.RegisterCost * 2
	default:
		return c.GlobalCost
	}
}

// CycleBreakdown attributes simulated cycles to the memory space (or
// operation class) that consumed them — the per-kernel profiling substrate
// behind the Figure-7 optimization analysis.
type CycleBreakdown struct {
	Op           float64 // scalar ALU/control
	Global       float64 // uncoalesced global-memory traffic
	Coalesced    float64 // coalesced/vectorized global transactions
	Shared       float64 // shared-memory accesses
	Constant     float64 // constant-memory reads
	Texture      float64 // texture fetches
	Register     float64 // register/private scalar traffic
	Local        float64 // per-thread local memory
	AtomicShared float64 // shared-memory atomics
	AtomicGlobal float64 // global-memory atomics
}

// Add accumulates another breakdown into b.
func (b *CycleBreakdown) Add(o CycleBreakdown) {
	b.Op += o.Op
	b.Global += o.Global
	b.Coalesced += o.Coalesced
	b.Shared += o.Shared
	b.Constant += o.Constant
	b.Texture += o.Texture
	b.Register += o.Register
	b.Local += o.Local
	b.AtomicShared += o.AtomicShared
	b.AtomicGlobal += o.AtomicGlobal
}

// Total sums every attributed cycle.
func (b *CycleBreakdown) Total() float64 {
	return b.Op + b.Global + b.Coalesced + b.Shared + b.Constant + b.Texture +
		b.Register + b.Local + b.AtomicShared + b.AtomicGlobal
}

// chargeSpace attributes an access's cycles to the breakdown field of its
// memory space.
func (b *CycleBreakdown) chargeSpace(s interp.MemSpace, cycles float64) {
	switch s {
	case interp.SpaceTexture:
		b.Texture += cycles
	case interp.SpaceConstant:
		b.Constant += cycles
	case interp.SpaceShared:
		b.Shared += cycles
	case interp.SpaceReg:
		b.Register += cycles
	case interp.SpaceLocal:
		b.Local += cycles
	default:
		b.Global += cycles
	}
}

// ThreadCost accumulates the simulated cycles of one GPU thread. It
// implements interp.CostSink so a thread's interpreter charges directly
// into it.
type ThreadCost struct {
	cfg    *DeviceConfig
	Cycles float64

	// Event counters for diagnostics and tests.
	Ops     int64
	Mem     int64
	Atomics int64

	// Breakdown attributes Cycles per memory space for kernel profiling.
	Breakdown CycleBreakdown
}

// NewThreadCost returns a cost accumulator for cfg.
func NewThreadCost(cfg *DeviceConfig) *ThreadCost {
	return &ThreadCost{cfg: cfg}
}

// Op implements interp.CostSink.
func (t *ThreadCost) Op(n int) {
	t.Ops += int64(n)
	c := float64(n) * t.cfg.OpCost
	t.Cycles += c
	t.Breakdown.Op += c
}

// Load implements interp.CostSink.
func (t *ThreadCost) Load(s interp.MemSpace, w int) {
	t.Mem++
	c := t.cfg.AccessCost(s)
	t.Cycles += c
	t.Breakdown.chargeSpace(s, c)
}

// Store implements interp.CostSink.
func (t *ThreadCost) Store(s interp.MemSpace, w int) {
	t.Mem++
	c := t.cfg.AccessCost(s)
	t.Cycles += c
	t.Breakdown.chargeSpace(s, c)
}

// CoalescedAccess charges n bytes moved with coalesced/vectorized
// transactions of the given width (e.g. 4 for char4).
func (t *ThreadCost) CoalescedAccess(n, width int) {
	if width < 1 {
		width = 1
	}
	transactions := (n + width - 1) / width
	t.Mem += int64(transactions)
	c := float64(transactions) * t.cfg.CoalescedCost
	t.Cycles += c
	t.Breakdown.Coalesced += c
}

// StridedAccess charges n bytes moved one element at a time
// (uncoalesced). Partial same-warp locality makes a byte access cheaper
// than a full random global transaction.
func (t *ThreadCost) StridedAccess(n int) {
	t.Mem += int64(n)
	c := float64(n) * t.cfg.GlobalCost * 0.5
	t.Cycles += c
	t.Breakdown.Global += c
}

// Atomic charges one atomic operation in the given space.
func (t *ThreadCost) Atomic(s interp.MemSpace) {
	t.Atomics++
	if s == interp.SpaceShared {
		t.Cycles += t.cfg.AtomicShared
		t.Breakdown.AtomicShared += t.cfg.AtomicShared
	} else {
		t.Cycles += t.cfg.AtomicGlobal
		t.Breakdown.AtomicGlobal += t.cfg.AtomicGlobal
	}
}

// Device is a simulated GPU instance.
type Device struct {
	Config DeviceConfig
}

// NewDevice returns a device for cfg.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{Config: cfg}, nil
}

// AggregateBlocks converts per-threadblock cycle totals into kernel time:
// blocks are list-scheduled (longest-processing-time-first) onto the SMs
// and the kernel finishes when the most loaded SM drains.
func (d *Device) AggregateBlocks(blockCycles []float64) float64 {
	p := d.AggregateBlocksProfile(blockCycles)
	return p.Seconds
}

// BlockSchedule is the profiled outcome of one block-level aggregation:
// the kernel time plus the balance diagnostics the observability layer
// attaches to kernel spans.
type BlockSchedule struct {
	Seconds float64
	// Occupancy is busy-SM-cycles / (SMs x critical-path cycles) under the
	// list schedule; 1.0 means no SM idled while the kernel ran.
	Occupancy float64
	// StragglerSkew is max-block / mean-block cycles; 1.0 means uniform
	// blocks, large values mean one straggler block gates the kernel.
	StragglerSkew float64
}

// AggregateBlocksProfile is AggregateBlocks plus occupancy and straggler
// diagnostics for kernel profiling.
func (d *Device) AggregateBlocksProfile(blockCycles []float64) BlockSchedule {
	if len(blockCycles) == 0 {
		return BlockSchedule{Seconds: d.Config.KernelLaunchUS * 1e-6, Occupancy: 0, StragglerSkew: 1}
	}
	sorted := append([]float64(nil), blockCycles...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	sms := make([]float64, d.Config.SMs)
	for _, bc := range sorted {
		// Assign to the least-loaded SM (ties: lowest index).
		minIdx := 0
		for i := 1; i < len(sms); i++ {
			if sms[i] < sms[minIdx] {
				minIdx = i
			}
		}
		sms[minIdx] += bc
	}
	max := 0.0
	busy := 0.0
	for _, s := range sms {
		busy += s
		if s > max {
			max = s
		}
	}
	sched := BlockSchedule{
		Seconds:       d.Config.CyclesToSeconds(max) + d.Config.KernelLaunchUS*1e-6,
		StragglerSkew: 1,
	}
	if max > 0 {
		sched.Occupancy = busy / (float64(d.Config.SMs) * max)
	}
	if mean := busy / float64(len(blockCycles)); mean > 0 {
		sched.StragglerSkew = sorted[0] / mean
	}
	return sched
}

// StreamKernelTime is the analytic time for a memory-bound kernel that
// streams n bytes through global memory with full coalescing (record
// counting, compaction moves, scan passes).
func (d *Device) StreamKernelTime(n int64, passes float64) float64 {
	return passes*float64(n)/(d.Config.GlobalGBs*1e9) + d.Config.KernelLaunchUS*1e-6
}

// ScanTime is the analytic time for a work-efficient parallel prefix scan
// over n elements of width bytes (Sengupta et al., used by the KV-pair
// aggregation step).
func (d *Device) ScanTime(n int, width int) float64 {
	if n <= 0 {
		return d.Config.KernelLaunchUS * 1e-6
	}
	bytes := int64(n) * int64(width)
	// Up-sweep + down-sweep read/write each element ~2x.
	return d.StreamKernelTime(bytes, 4)
}

// SortTime is the analytic time for the indirection-based GPU merge sort
// (Satish et al. adapted per paper §5.3) over n KV slots whose key
// comparisons touch keyBytes each. Indirection means data is never moved;
// each of the log2(n) merge passes streams the index array and reads keys
// for comparisons.
func (d *Device) SortTime(n int, keyBytes int, vectorized bool) float64 {
	if n <= 1 {
		return d.Config.KernelLaunchUS * 1e-6
	}
	passes := math.Ceil(math.Log2(float64(n)))
	keyCost := float64(keyBytes) * d.Config.GlobalCost
	if vectorized {
		keyCost = math.Ceil(float64(keyBytes)/4) * d.Config.CoalescedCost
	}
	indexCost := 2 * d.Config.CoalescedCost // read + write one index entry
	perPassCycles := float64(n) * (keyCost + indexCost)
	// The sort runs wide: divide by the device's effective parallelism.
	parallel := float64(d.Config.SMs * 2)
	if parallel < 1 {
		parallel = 1
	}
	cycles := passes * perPassCycles / parallel
	// The merge passes run back-to-back inside one persistent launch.
	return d.Config.CyclesToSeconds(cycles) + d.Config.KernelLaunchUS*1e-6
}
