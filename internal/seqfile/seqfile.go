// Package seqfile implements the Hadoop-compatible binary container that
// HeteroDoop's GPU driver writes map+combine output into (the paper's
// "SequenceFileFormat" with checksums, §5.2). Records carry fixed schema
// kinds, length-prefixed key/value payloads, and a per-record CRC32.
package seqfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/kv"
)

var magic = [4]byte{'S', 'E', 'Q', 'H'}

// ErrCorrupt reports a failed structural or checksum validation.
var ErrCorrupt = errors.New("seqfile: corrupt record")

// Writer appends KV records to an underlying stream.
type Writer struct {
	w      *bufio.Writer
	schema kv.Schema
	count  uint64
	closed bool
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer, schema kv.Schema) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	hdr := []byte{byte(schema.KeyKind), byte(schema.ValKind)}
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	return &Writer{w: bw, schema: schema}, nil
}

// Append writes one record.
func (w *Writer) Append(p kv.Pair) error {
	if w.closed {
		return errors.New("seqfile: write after Close")
	}
	key := w.schema.EncodeKey(p.Key)
	val := w.schema.EncodeVal(p.Val)
	var lenBuf [8]byte
	binary.BigEndian.PutUint32(lenBuf[0:4], uint32(len(key)))
	binary.BigEndian.PutUint32(lenBuf[4:8], uint32(len(val)))
	crc := crc32.NewIEEE()
	crc.Write(lenBuf[:])
	crc.Write(key)
	crc.Write(val)
	if _, err := w.w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(key); err != nil {
		return err
	}
	if _, err := w.w.Write(val); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.BigEndian.PutUint32(crcBuf[:], crc.Sum32())
	if _, err := w.w.Write(crcBuf[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count reports records appended so far.
func (w *Writer) Count() uint64 { return w.count }

// Close writes the trailer (record count) and flushes.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var trailer [12]byte
	copy(trailer[0:4], []byte{0xFF, 0xFF, 0xFF, 0xFF}) // trailer sentinel
	binary.BigEndian.PutUint64(trailer[4:12], w.count)
	if _, err := w.w.Write(trailer[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader iterates the records of a stream produced by Writer.
type Reader struct {
	r      *bufio.Reader
	schema kv.Schema
	count  uint64
	read   uint64
	done   bool
}

// NewReader validates the header and returns a Reader. All structural
// header failures (short header, bad magic, unknown schema kind) wrap
// ErrCorrupt so callers can match corruption with one errors.Is check.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %w", ErrCorrupt, err)
	}
	if hdr[0] != magic[0] || hdr[1] != magic[1] || hdr[2] != magic[2] || hdr[3] != magic[3] {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[0:4])
	}
	if kv.Kind(hdr[4]) > kv.Float || kv.Kind(hdr[5]) > kv.Float {
		return nil, fmt.Errorf("%w: unknown schema kinds %d/%d", ErrCorrupt, hdr[4], hdr[5])
	}
	schema := kv.Schema{KeyKind: kv.Kind(hdr[4]), ValKind: kv.Kind(hdr[5])}
	return &Reader{r: br, schema: schema}, nil
}

// Schema returns the stream's key/value kinds. Slot lengths are
// per-record (length-prefixed), so KeyLen/ValLen are not meaningful here.
func (r *Reader) Schema() kv.Schema { return r.schema }

// Next returns the next record, or io.EOF after the trailer.
func (r *Reader) Next() (kv.Pair, error) {
	if r.done {
		return kv.Pair{}, io.EOF
	}
	var lenBuf [8]byte
	if _, err := io.ReadFull(r.r, lenBuf[:4]); err != nil {
		return kv.Pair{}, fmt.Errorf("%w: truncated record: %w", ErrCorrupt, err)
	}
	if lenBuf[0] == 0xFF && lenBuf[1] == 0xFF && lenBuf[2] == 0xFF && lenBuf[3] == 0xFF {
		// Trailer.
		var cnt [8]byte
		if _, err := io.ReadFull(r.r, cnt[:]); err != nil {
			return kv.Pair{}, fmt.Errorf("%w: truncated trailer: %w", ErrCorrupt, err)
		}
		r.count = binary.BigEndian.Uint64(cnt[:])
		r.done = true
		if r.count != r.read {
			return kv.Pair{}, fmt.Errorf("%w: trailer count %d != records read %d", ErrCorrupt, r.count, r.read)
		}
		return kv.Pair{}, io.EOF
	}
	if _, err := io.ReadFull(r.r, lenBuf[4:]); err != nil {
		return kv.Pair{}, fmt.Errorf("%w: truncated record: %w", ErrCorrupt, err)
	}
	keyLen := binary.BigEndian.Uint32(lenBuf[0:4])
	valLen := binary.BigEndian.Uint32(lenBuf[4:8])
	if keyLen > 1<<20 || valLen > 1<<20 {
		return kv.Pair{}, fmt.Errorf("%w: implausible lengths %d/%d", ErrCorrupt, keyLen, valLen)
	}
	// Numeric slots are always 8 bytes on the wire; a shorter slot would
	// make decoding read out of bounds, so reject it as structural damage.
	if r.schema.KeyKind != kv.Bytes && keyLen != 8 {
		return kv.Pair{}, fmt.Errorf("%w: %v key slot %d bytes, want 8", ErrCorrupt, r.schema.KeyKind, keyLen)
	}
	if r.schema.ValKind != kv.Bytes && valLen != 8 {
		return kv.Pair{}, fmt.Errorf("%w: %v value slot %d bytes, want 8", ErrCorrupt, r.schema.ValKind, valLen)
	}
	key := make([]byte, keyLen)
	val := make([]byte, valLen)
	if _, err := io.ReadFull(r.r, key); err != nil {
		return kv.Pair{}, fmt.Errorf("%w: truncated key: %w", ErrCorrupt, err)
	}
	if _, err := io.ReadFull(r.r, val); err != nil {
		return kv.Pair{}, fmt.Errorf("%w: truncated value: %w", ErrCorrupt, err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r.r, crcBuf[:]); err != nil {
		return kv.Pair{}, fmt.Errorf("%w: truncated crc: %w", ErrCorrupt, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(lenBuf[:])
	crc.Write(key)
	crc.Write(val)
	if crc.Sum32() != binary.BigEndian.Uint32(crcBuf[:]) {
		return kv.Pair{}, fmt.Errorf("%w: checksum mismatch at record %d", ErrCorrupt, r.read)
	}
	r.read++
	return kv.Pair{Key: r.schema.DecodeKey(key), Val: r.schema.DecodeVal(val)}, nil
}

// PartitionSum computes the CRC32 checksum of a map output partition: the
// running IEEE CRC over exactly the record framing Append writes (length
// prefix, encoded key, encoded value per record). It is the
// checksum-on-write half of the shuffle's integrity check — the engine
// stores one sum per committed partition and reducers recompute it on
// fetch, so verification costs one pass per fetch instead of per-record
// re-hashing in the map inner loop.
func PartitionSum(schema kv.Schema, pairs []kv.Pair) uint32 {
	crc := crc32.NewIEEE()
	var lenBuf [8]byte
	for _, p := range pairs {
		key := schema.EncodeKey(p.Key)
		val := schema.EncodeVal(p.Val)
		binary.BigEndian.PutUint32(lenBuf[0:4], uint32(len(key)))
		binary.BigEndian.PutUint32(lenBuf[4:8], uint32(len(val)))
		crc.Write(lenBuf[:])
		crc.Write(key)
		crc.Write(val)
	}
	return crc.Sum32()
}

// ReadAll drains the reader.
func ReadAll(r *Reader) ([]kv.Pair, error) {
	var out []kv.Pair
	for {
		p, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
}
