package seqfile

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/kv"
)

// FuzzSeqfileReader feeds mutated byte streams through the reader: every
// input must end in a structural error wrapping ErrCorrupt or a clean EOF —
// never a panic and never an allocation beyond the per-record length cap.
func FuzzSeqfileReader(f *testing.F) {
	seed := func(schema kv.Schema, pairs []kv.Pair) []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, schema)
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range pairs {
			if err := w.Append(p); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	wordSchema := kv.Schema{KeyKind: kv.Bytes, ValKind: kv.Int, KeyLen: 16}
	valid := seed(wordSchema, []kv.Pair{
		{Key: kv.StringValue("hello"), Val: kv.IntValue(1)},
		{Key: kv.StringValue("world"), Val: kv.IntValue(2)},
	})
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-7]) // cut into the trailer
	f.Add(seed(kv.Schema{KeyKind: kv.Int, ValKind: kv.Float}, []kv.Pair{
		{Key: kv.IntValue(-3), Val: kv.FloatValue(2.5)},
	}))
	f.Add(seed(wordSchema, nil))
	flipped := append([]byte(nil), valid...)
	flipped[20] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte("SEQH"))
	f.Add([]byte("NOTSEQFILE"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("NewReader error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		for {
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Next error does not wrap ErrCorrupt: %v", err)
				}
				return
			}
		}
	})
}
