package seqfile

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/kv"
)

var testSchema = kv.Schema{KeyKind: kv.Bytes, ValKind: kv.Int, KeyLen: 16}

func roundTrip(t *testing.T, schema kv.Schema, pairs []kv.Pair) []kv.Pair {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	pairs := []kv.Pair{
		{Key: kv.StringValue("apple"), Val: kv.IntValue(3)},
		{Key: kv.StringValue("banana"), Val: kv.IntValue(-7)},
		{Key: kv.StringValue(""), Val: kv.IntValue(0)},
	}
	out := roundTrip(t, testSchema, pairs)
	if len(out) != len(pairs) {
		t.Fatalf("got %d pairs", len(out))
	}
	for i := range pairs {
		if kv.Compare(out[i].Key, pairs[i].Key) != 0 || kv.Compare(out[i].Val, pairs[i].Val) != 0 {
			t.Errorf("pair %d: %v != %v", i, out[i], pairs[i])
		}
	}
}

func TestEmptyFileRoundTrip(t *testing.T) {
	out := roundTrip(t, testSchema, nil)
	if len(out) != 0 {
		t.Fatalf("got %d pairs from empty file", len(out))
	}
}

func TestFloatSchema(t *testing.T) {
	schema := kv.Schema{KeyKind: kv.Int, ValKind: kv.Float}
	pairs := []kv.Pair{
		{Key: kv.IntValue(1), Val: kv.FloatValue(3.14159)},
		{Key: kv.IntValue(-5), Val: kv.FloatValue(-2.5e10)},
	}
	out := roundTrip(t, schema, pairs)
	for i := range pairs {
		if out[i].Key.I != pairs[i].Key.I || out[i].Val.F != pairs[i].Val.F {
			t.Errorf("pair %d: %v != %v", i, out[i], pairs[i])
		}
	}
}

func TestCountTracked(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testSchema)
	for i := 0; i < 5; i++ {
		w.Append(kv.Pair{Key: kv.StringValue("k"), Val: kv.IntValue(int64(i))})
	}
	if w.Count() != 5 {
		t.Fatalf("count = %d", w.Count())
	}
	w.Close()
	if err := w.Append(kv.Pair{}); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testSchema)
	w.Append(kv.Pair{Key: kv.StringValue("hello"), Val: kv.IntValue(1)})
	w.Close()
	raw := buf.Bytes()
	// Flip one payload byte (inside the key area, after the 6-byte header
	// and 8-byte length prefix).
	raw[6+8+2] ^= 0xFF
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testSchema)
	w.Append(kv.Pair{Key: kv.StringValue("hello"), Val: kv.IntValue(1)})
	w.Close()
	raw := buf.Bytes()[:buf.Len()-6] // cut into the trailer
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Next() // record itself is fine
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated trailer not detected: %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTSEQFILE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestMissingTrailerCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testSchema)
	w.Append(kv.Pair{Key: kv.StringValue("a"), Val: kv.IntValue(1)})
	w.Append(kv.Pair{Key: kv.StringValue("b"), Val: kv.IntValue(2)})
	w.Close()
	raw := buf.Bytes()
	// Tamper with the trailer count (last 8 bytes).
	raw[len(raw)-1] = 99
	r, _ := NewReader(bytes.NewReader(raw))
	r.Next()
	r.Next()
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("trailer count mismatch not detected: %v", err)
	}
}

func TestSchemaPreserved(t *testing.T) {
	var buf bytes.Buffer
	schema := kv.Schema{KeyKind: kv.Float, ValKind: kv.Bytes, ValLen: 8}
	w, _ := NewWriter(&buf, schema)
	w.Close()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema().KeyKind != kv.Float || r.Schema().ValKind != kv.Bytes {
		t.Fatalf("schema = %+v", r.Schema())
	}
}

func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(keys []int64, vals []int64) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		schema := kv.Schema{KeyKind: kv.Int, ValKind: kv.Int}
		var pairs []kv.Pair
		for i := 0; i < n; i++ {
			pairs = append(pairs, kv.Pair{Key: kv.IntValue(keys[i]), Val: kv.IntValue(vals[i])})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, schema)
		if err != nil {
			return false
		}
		for _, p := range pairs {
			if w.Append(p) != nil {
				return false
			}
		}
		if w.Close() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		out, err := ReadAll(r)
		if err != nil || len(out) != len(pairs) {
			return false
		}
		for i := range pairs {
			if out[i].Key.I != pairs[i].Key.I || out[i].Val.I != pairs[i].Val.I {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
