package seqfile

import (
	"bytes"
	"errors"
	"hash/crc32"
	"strings"
	"testing"

	"repro/internal/kv"
)

// validFile serializes one wordcount-shaped record (plus trailer) and
// returns the raw bytes: 6-byte header, 8-byte length prefix, 16-byte key
// slot, 8-byte value slot, 4-byte CRC, 12-byte trailer.
func validFile(t *testing.T, schema kv.Schema, pairs []kv.Pair) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReaderCorruptionPaths drives every corruption error path in the
// reader — header and record alike — and demands each one wraps ErrCorrupt
// so callers can match structural damage with a single errors.Is check.
func TestReaderCorruptionPaths(t *testing.T) {
	const (
		hdrLen = 6
		lenLen = 8
		keyLen = 16
		valLen = 8
	)
	bytesSchema := kv.Schema{KeyKind: kv.Bytes, ValKind: kv.Int, KeyLen: keyLen}
	intSchema := kv.Schema{KeyKind: kv.Int, ValKind: kv.Int}
	base := validFile(t, bytesSchema, []kv.Pair{
		{Key: kv.StringValue("hello"), Val: kv.IntValue(1)},
	})
	intBase := validFile(t, intSchema, []kv.Pair{
		{Key: kv.IntValue(7), Val: kv.IntValue(1)},
	})
	cases := []struct {
		name string
		raw  func() []byte
		// wantSub anchors the diagnostic to the intended path so two
		// failures can't satisfy each other's cases.
		wantSub string
	}{
		{"empty stream", func() []byte { return nil }, "short header"},
		{"short header", func() []byte { return base[:3] }, "short header"},
		{"bad magic", func() []byte {
			raw := append([]byte(nil), base...)
			raw[0] = 'X'
			return raw
		}, "bad magic"},
		{"unknown schema kind", func() []byte {
			raw := append([]byte(nil), base...)
			raw[4] = 9
			return raw
		}, "unknown schema kinds"},
		{"missing trailer", func() []byte { return base[:hdrLen] }, "truncated record"},
		{"cut in first length half", func() []byte { return base[:hdrLen+2] }, "truncated record"},
		{"cut in second length half", func() []byte { return base[:hdrLen+6] }, "truncated record"},
		{"implausible lengths", func() []byte {
			raw := append([]byte(nil), base...)
			raw[hdrLen+1] = 0xFF // keyLen = 0x00FF0010 > 1<<20
			return raw
		}, "implausible lengths"},
		{"numeric key slot mismatch", func() []byte {
			raw := append([]byte(nil), intBase...)
			raw[hdrLen+3] = 4 // int key slot shrunk to 4 bytes
			return raw
		}, "key slot 4 bytes"},
		{"numeric value slot mismatch", func() []byte {
			raw := append([]byte(nil), base...)
			raw[hdrLen+7] = 7 // int value slot shrunk to 7 bytes
			return raw
		}, "value slot 7 bytes"},
		{"truncated key", func() []byte { return base[:hdrLen+lenLen+5] }, "truncated key"},
		{"truncated value", func() []byte { return base[:hdrLen+lenLen+keyLen+3] }, "truncated value"},
		{"truncated crc", func() []byte { return base[:hdrLen+lenLen+keyLen+valLen+2] }, "truncated crc"},
		{"checksum mismatch", func() []byte {
			raw := append([]byte(nil), base...)
			raw[hdrLen+lenLen+2] ^= 0xFF // flip a key payload byte
			return raw
		}, "checksum mismatch"},
		{"truncated trailer", func() []byte { return base[:len(base)-6] }, "truncated trailer"},
		{"trailer count mismatch", func() []byte {
			raw := append([]byte(nil), base...)
			raw[len(raw)-1] = 99
			return raw
		}, "trailer count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewReader(bytes.NewReader(tc.raw()))
			if err == nil {
				_, err = ReadAll(r)
			}
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error does not wrap ErrCorrupt: %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("wrong path: got %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

// TestPartitionSumMatchesWriterFraming pins PartitionSum to the exact CRC a
// Writer accumulates over the same records: the verify-on-fetch side must
// agree with checksum-on-write byte for byte.
func TestPartitionSumMatchesWriterFraming(t *testing.T) {
	schema := kv.Schema{KeyKind: kv.Bytes, ValKind: kv.Int, KeyLen: 16}
	pairs := []kv.Pair{
		{Key: kv.StringValue("alpha"), Val: kv.IntValue(3)},
		{Key: kv.StringValue("beta"), Val: kv.IntValue(-1)},
		{Key: kv.StringValue(""), Val: kv.IntValue(0)},
	}
	raw := validFile(t, schema, pairs)
	// The writer's per-record CRC stream covers lenBuf+key+val; recompute
	// the same running sum from the raw bytes, skipping header, per-record
	// CRC words, and trailer.
	crc := crc32.NewIEEE()
	off := 6
	for i := 0; i < len(pairs); i++ {
		rec := raw[off : off+8+16+8]
		crc.Write(rec)
		off += 8 + 16 + 8 + 4
	}
	if got, want := PartitionSum(schema, pairs), crc.Sum32(); got != want {
		t.Fatalf("PartitionSum = %#x, framing CRC = %#x", got, want)
	}
	if PartitionSum(schema, nil) != 0 {
		t.Fatal("empty partition should sum to CRC32 of empty stream (0)")
	}
	// Any single-record perturbation must change the sum.
	mutated := append([]kv.Pair(nil), pairs...)
	mutated[1].Val = kv.IntValue(-2)
	if PartitionSum(schema, mutated) == PartitionSum(schema, pairs) {
		t.Fatal("mutation did not change PartitionSum")
	}
}
