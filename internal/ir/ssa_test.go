package ir

import (
	"testing"

	"repro/internal/minic"
)

func buildFunc(t *testing.T, src string) *Func {
	t.Helper()
	prog, err := minic.ParseAndCheck(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, fn := range prog.Funcs {
		if fn.Name == "main" {
			return Build(fn)
		}
	}
	t.Fatal("no main function")
	return nil
}

func phisFor(f *Func, name string) []*Instr {
	var out []*Instr
	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			if phi.Var.Sym.Name == name {
				out = append(out, phi)
			}
		}
	}
	return out
}

// Diamond: a variable assigned in both arms of an if/else needs exactly
// one phi, at the join block, with one operand per predecessor.
func TestPhiPlacementDiamond(t *testing.T) {
	f := buildFunc(t, `
int main(int argc) {
	int x = 0;
	if (argc > 1) { x = 1; } else { x = 2; }
	printf("%d\n", x);
	return x;
}`)
	phis := phisFor(f, "x")
	if len(phis) != 1 {
		t.Fatalf("want exactly 1 phi for x at the diamond join, got %d", len(phis))
	}
	phi := phis[0]
	if len(phi.Args) != len(phi.Block.Preds) {
		t.Fatalf("phi has %d args for %d predecessors", len(phi.Args), len(phi.Block.Preds))
	}
	if len(phi.Args) != 2 {
		t.Fatalf("join block should have 2 predecessors, got %d", len(phi.Args))
	}
	for i, a := range phi.Args {
		if a == nil {
			t.Fatalf("phi operand %d is nil; both arms define x", i)
		}
		if a.Op != OpStore {
			t.Fatalf("phi operand %d should be a store, got op %d", i, a.Op)
		}
	}
}

// Loop: a variable updated in a while body needs a phi at the loop header
// merging the preheader definition with the back-edge definition.
func TestPhiPlacementLoop(t *testing.T) {
	f := buildFunc(t, `
int main() {
	int i = 0;
	int s = 0;
	while (i < 10) {
		s = s + i;
		i = i + 1;
	}
	printf("%d\n", s);
	return 0;
}`)
	for _, name := range []string{"i", "s"} {
		phis := phisFor(f, name)
		if len(phis) != 1 {
			t.Fatalf("want exactly 1 phi for %s at the loop header, got %d", name, len(phis))
		}
		phi := phis[0]
		if len(phi.Args) != 2 {
			t.Fatalf("%s: header phi should merge 2 paths, got %d", name, len(phi.Args))
		}
		sawInit, sawLoop := false, false
		for _, a := range phi.Args {
			if a == nil {
				t.Fatalf("%s: nil phi operand", name)
			}
			switch a.StoreKind {
			case StoreDeclInit:
				sawInit = true
			default:
				sawLoop = true
			}
		}
		if !sawInit || !sawLoop {
			t.Fatalf("%s: phi should merge the init and the loop update, got init=%v loop=%v",
				name, sawInit, sawLoop)
		}
		// The header load must read the phi, not either store directly.
		header := phi.Block
		foundLoad := false
		for _, in := range header.Instrs {
			if in.Op == OpLoad && in.Var == phi.Var {
				foundLoad = true
				if in.Args[0] != phi {
					t.Fatalf("%s: header load should read the phi", name)
				}
			}
		}
		if name == "i" && !foundLoad {
			t.Fatal("loop condition should load i in the header block")
		}
	}
}

// A variable only ever assigned once needs no phi anywhere.
func TestNoPhiForSingleAssignment(t *testing.T) {
	f := buildFunc(t, `
int main(int argc) {
	int x = 42;
	if (argc > 1) { printf("%d\n", x); }
	return x;
}`)
	if phis := phisFor(f, "x"); len(phis) != 0 {
		t.Fatalf("single-assignment variable needs no phis, got %d", len(phis))
	}
}

// SCCP through a diamond: both arms assign the same constant, so the phi
// and every downstream use folds.
func TestSCCPMergesEqualConstants(t *testing.T) {
	f := buildFunc(t, `
int main(int argc) {
	int x;
	if (argc > 1) { x = 7; } else { x = 7; }
	int y = x * 2;
	printf("%d\n", y);
	return 0;
}`)
	s := Run(f)
	phis := phisFor(f, "x")
	if len(phis) != 1 {
		t.Fatalf("want 1 phi, got %d", len(phis))
	}
	c, ok := s.ConstOf(phis[0])
	if !ok || c.AsInt() != 7 {
		t.Fatalf("phi of equal constants should fold to 7, got %+v ok=%v", c, ok)
	}
}

// SCCP keeps facts from provably-dead branches out of the result.
func TestSCCPDeadBranchPruning(t *testing.T) {
	prog, err := minic.ParseAndCheck(`
int main() {
	int x = 1;
	if (x == 2) { printf("dead\n"); }
	return x;
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := Build(prog.Funcs[len(prog.Funcs)-1])
	s := Run(f)
	reachCount := 0
	for _, b := range f.Blocks {
		if s.Reachable(b) {
			reachCount++
		}
	}
	dead := 0
	for _, b := range f.Blocks {
		if !s.Reachable(b) && len(b.Instrs) > 0 {
			dead++
		}
	}
	if dead == 0 {
		t.Fatal("the then-branch (printf) should be unreachable")
	}
	if reachCount == 0 {
		t.Fatal("entry must stay reachable")
	}
}
