package ir

import (
	"fmt"
	"strconv"

	"repro/internal/minic"
)

// Facts is the shared analysis result the HD6xx lints read. It exposes the
// same SCCP lattice and value-numbering classes the optimizer acts on, so
// the linter and the optimizer can never disagree about what is constant,
// unreachable, or redundant.
type Facts struct {
	Fn *minic.FuncDecl
	F  *Func
	S  *SCCP

	// ConstConds lists non-literal branch conditions that are provably
	// constant (HD601).
	ConstConds []ConstCond
	// Unreachable lists statements proven never to execute (HD602), one
	// representative per unreachable region.
	Unreachable []minic.Stmt
	// Redundant lists repeated computations of the same value (HD603).
	Redundant []RedundantPair
	// OOB lists subscripts with a proven out-of-range constant index on a
	// fixed-length array (HD605).
	OOB []OOBAccess
}

// ConstCond is a branch condition with a proven constant value.
type ConstCond struct {
	Stmt  minic.Stmt // the If/While/For statement
	Cond  minic.Expr
	Value Const
}

// RedundantPair is a repeated computation: Second recomputes First's value.
type RedundantPair struct {
	First, Second minic.Expr
}

// OOBAccess is a proven out-of-bounds constant subscript.
type OOBAccess struct {
	Expr  *minic.Index
	Name  string
	Index int64
	Len   int
}

// AnalyzeFunc lowers fn and derives the optimization facts for linting.
// The AST is not modified.
func AnalyzeFunc(fn *minic.FuncDecl) *Facts {
	f := Build(fn)
	s := Run(f)
	fx := &Facts{Fn: fn, F: f, S: s}
	fx.constConds()
	fx.unreachable()
	fx.redundant()
	fx.oob()
	return fx
}

func (fx *Facts) constConds() {
	walkStmts(fx.Fn.Body, func(s minic.Stmt) {
		var cond minic.Expr
		switch st := s.(type) {
		case *minic.If:
			cond = st.Cond
		case *minic.While:
			cond = st.Cond
		case *minic.For:
			cond = st.Cond
		default:
			return
		}
		if cond == nil {
			return
		}
		if _, lit := litConst(cond); lit {
			return // `while (1)` idioms are intentional
		}
		in := fx.F.ExprInstr[cond]
		if in == nil || in.Block == nil || !fx.S.Reachable(in.Block) {
			return
		}
		if c, ok := fx.S.ConstOf(in); ok {
			fx.ConstConds = append(fx.ConstConds, ConstCond{Stmt: s, Cond: cond, Value: c})
		}
	})
}

// unreachable reports the first statement of each maximal unreachable
// region: a statement all of whose lowered blocks are unreachable, whose
// AST predecessors do not already cover it.
func (fx *Facts) unreachable() {
	// A statement is reported when every block listing it is unreachable
	// (statements can span blocks, e.g. loops).
	blocksOf := map[minic.Stmt][]*Block{}
	for _, b := range fx.F.Blocks {
		for _, s := range b.Stmts {
			blocksOf[s] = append(blocksOf[s], b)
		}
	}
	dead := func(s minic.Stmt) bool {
		bs := blocksOf[s]
		if len(bs) == 0 {
			return false
		}
		for _, b := range bs {
			if fx.S.Reachable(b) {
				return false
			}
		}
		return true
	}
	// Report only region heads: walk statement lists and emit the first
	// dead statement after a live one (or a dead branch arm), then skip
	// the rest of that region.
	var scan func(s minic.Stmt)
	report := func(s minic.Stmt) {
		if s == nil {
			return
		}
		if _, ok := s.(*minic.EmptyStmt); ok {
			return
		}
		fx.Unreachable = append(fx.Unreachable, s)
	}
	scan = func(s minic.Stmt) {
		switch st := s.(type) {
		case nil:
		case *minic.Block:
			for _, inner := range st.Stmts {
				if dead(inner) {
					report(inner)
					return // rest of the list is the same region
				}
				scan(inner)
			}
		case *minic.If:
			if dead(st.Then) {
				report(st.Then)
			} else {
				scan(st.Then)
			}
			if st.Else != nil {
				if dead(st.Else) {
					report(st.Else)
				} else {
					scan(st.Else)
				}
			}
		case *minic.While:
			if dead(st.Body) {
				report(st.Body)
			} else {
				scan(st.Body)
			}
		case *minic.For:
			if dead(st.Body) {
				report(st.Body)
			} else {
				scan(st.Body)
			}
		case *minic.PragmaStmt:
			scan(st.Body)
		}
	}
	scan(fx.Fn.Body)
}

// redundant surfaces the same dominance-scoped value-number classes the
// CSE pass rewrites, as diagnostics.
func (fx *Facts) redundant() {
	vn := map[*Instr]string{}
	classes := map[string][]*Instr{}
	var order []string
	for _, in := range fx.F.instrs {
		v := factVN(fx.S, vn, in)
		vn[in] = v
		switch in.Op {
		case OpUnary, OpBinary, OpCast, OpCall:
			if v[0] != 'q' {
				if len(classes[v]) == 0 {
					order = append(order, v)
				}
				classes[v] = append(classes[v], in)
			}
		}
	}
	weight := func(in *Instr) bool {
		ops, call := 0, false
		var walk func(x *Instr)
		walk = func(x *Instr) {
			if x == nil {
				return
			}
			switch x.Op {
			case OpUnary, OpBinary, OpCast:
				ops++
			case OpCall:
				call = true
			case OpLoad, OpConst:
				return
			}
			for _, a := range x.Args {
				walk(a)
			}
		}
		walk(in)
		return ops >= 2 || call
	}
	for _, k := range order {
		class := classes[k]
		if len(class) < 2 {
			continue
		}
		var lead *Instr
		for _, in := range class {
			if in.Expr == nil || !fx.S.Reachable(in.Block) {
				continue
			}
			if lead == nil {
				lead = in
				continue
			}
			sameBlock := lead.Block == in.Block && lead.ID < in.ID
			if (sameBlock || dominates(lead.Block, in.Block) && lead.Block != in.Block) && weight(lead) {
				fx.Redundant = append(fx.Redundant, RedundantPair{First: lead.Expr, Second: in.Expr})
			}
		}
	}
}

// factVN mirrors csePass's value numbering.
func factVN(s *SCCP, vn map[*Instr]string, in *Instr) string {
	key := func(op string) string {
		k := op
		for _, a := range in.Args {
			if a == nil {
				return uniqueVN(in)
			}
			k += "," + vn[a]
		}
		return k
	}
	switch in.Op {
	case OpConst:
		if in.Val.Kind == ConstFloat {
			return fmt.Sprintf("k:f%x", in.Val.F)
		}
		return "k:i" + strconv.FormatInt(in.Val.I, 10)
	case OpLoad:
		if len(in.Args) > 0 && in.Args[0] != nil {
			return "d:" + strconv.Itoa(in.Args[0].ID)
		}
	case OpUnary:
		return key("u:" + in.OpStr)
	case OpBinary:
		if in.OpStr == "/" || in.OpStr == "%" {
			if c, ok := s.ConstOf(in.Args[1]); !ok || !c.Truthy() {
				break
			}
		}
		return key("b:" + in.OpStr)
	case OpCast:
		if in.To != nil && scalarKind(in.To.Kind) {
			return key("c:" + strconv.Itoa(int(in.To.Kind)))
		}
	case OpCall:
		if in.Pure {
			return key("f:" + in.OpStr)
		}
	}
	return uniqueVN(in)
}

func uniqueVN(in *Instr) string { return "q:" + strconv.Itoa(in.ID) }

// oob finds constant subscripts provably outside a fixed-length array.
func (fx *Facts) oob() {
	walkStmts(fx.Fn.Body, func(s minic.Stmt) {
		forEachExprIn(s, func(top minic.Expr) {
			walkAllExprs(top, func(e minic.Expr) {
				ix, ok := e.(*minic.Index)
				if !ok {
					return
				}
				base, ok := ix.X.(*minic.Ident)
				if !ok || base.Sym == nil || base.Sym.Type == nil {
					return
				}
				t := base.Sym.Type
				if t.Kind != minic.TypeArray || t.Len <= 0 || t.Elem == nil || t.Elem.Kind == minic.TypeArray {
					return // only single-dimension fixed arrays
				}
				in := fx.F.ExprInstr[ix.Idx]
				if in == nil || in.Block == nil || !fx.S.Reachable(in.Block) {
					return
				}
				c, ok := fx.S.ConstOf(in)
				if !ok || c.Kind != ConstInt {
					return
				}
				if c.I < 0 || c.I >= int64(t.Len) {
					fx.OOB = append(fx.OOB, OOBAccess{Expr: ix, Name: base.Sym.Name, Index: c.I, Len: t.Len})
				}
			})
		})
	})
}

// LoopInvariantEmits finds emitKV/printf-style calls inside loops whose
// value arguments are all loop-invariant (HD604): the loop emits the same
// pair every iteration, which is almost always a hoisting mistake.
func LoopInvariantEmits(fn *minic.FuncDecl) []*minic.Call {
	demoted := demotedSyms(fn)
	var out []*minic.Call
	seen := map[*minic.Call]bool{}
	var scanLoop func(loop minic.Stmt)
	scanLoop = func(loop minic.Stmt) {
		assigned := assignedSyms(loop)
		var invariant func(e minic.Expr) bool
		invariant = func(e minic.Expr) bool {
			switch x := e.(type) {
			case *minic.IntLit, *minic.FloatLit, *minic.CharLit:
				return true
			case *minic.Ident:
				return x.Sym != nil && !x.Sym.Global &&
					(x.Sym.Kind == minic.SymVar || x.Sym.Kind == minic.SymParam) &&
					x.Sym.Type != nil && scalarKind(x.Sym.Type.Kind) &&
					!demoted[x.Sym] && !assigned[x.Sym]
			case *minic.Unary:
				switch x.Op {
				case "-", "!", "~":
					return invariant(x.X)
				}
				return false
			case *minic.Binary:
				if x.Op == "&&" || x.Op == "||" {
					return false
				}
				return invariant(x.L) && invariant(x.R)
			case *minic.Cast:
				return invariant(x.X)
			}
			return false
		}
		var body minic.Stmt
		switch l := loop.(type) {
		case *minic.While:
			body = l.Body
		case *minic.For:
			body = l.Body
		}
		walkStmts(body, func(s minic.Stmt) {
			es, ok := s.(*minic.ExprStmt)
			if !ok {
				return
			}
			call, ok := es.X.(*minic.Call)
			if !ok || seen[call] {
				return
			}
			var args []minic.Expr
			switch call.Name {
			case "emitKV", "storeKV":
				args = call.Args
			case "printf", "fprintf":
				// Skip the format string (and stream); judge value args.
				skip := 1
				if call.Name == "fprintf" {
					skip = 2
				}
				if len(call.Args) <= skip {
					return // no value arguments: constant output is idiomatic
				}
				args = call.Args[skip:]
			default:
				return
			}
			if len(args) == 0 {
				return
			}
			for _, a := range args {
				if !invariant(a) {
					return
				}
			}
			seen[call] = true
			out = append(out, call)
		})
	}
	walkStmts(fn.Body, func(s minic.Stmt) {
		switch s.(type) {
		case *minic.While, *minic.For:
			scanLoop(s)
		}
	})
	return out
}
