package ir

// Minimal SSA construction: phi nodes are placed at the iterated dominance
// frontier of each variable's definition blocks, then a stack-based
// renaming walk over the dominator tree wires every OpLoad to its reaching
// definition and fills phi operands. Phi operands from paths where the
// variable has no definition yet (declared later in source order) stay
// nil; SCCP treats nil operands on executable edges as unknowable.

// placePhis inserts OpPhi instructions for every tracked variable at the
// iterated dominance frontier of its definition sites.
func placePhis(f *Func) {
	defBlocks := make(map[*Var][]*Block)
	inDefs := make(map[*Var]map[*Block]bool)
	for _, in := range f.instrs {
		switch in.Op {
		case OpStore, OpDeclZero, OpParam:
			if in.Block.rpo < 0 {
				continue
			}
			if inDefs[in.Var] == nil {
				inDefs[in.Var] = map[*Block]bool{}
			}
			if !inDefs[in.Var][in.Block] {
				inDefs[in.Var][in.Block] = true
				defBlocks[in.Var] = append(defBlocks[in.Var], in.Block)
			}
		}
	}
	for _, v := range f.Vars {
		work := append([]*Block(nil), defBlocks[v]...)
		placed := map[*Block]bool{}
		onWork := map[*Block]bool{}
		for _, b := range work {
			onWork[b] = true
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, d := range b.frontier {
				if placed[d] {
					continue
				}
				placed[d] = true
				phi := &Instr{
					ID:    f.nextID,
					Op:    OpPhi,
					Var:   v,
					Args:  make([]*Instr, len(d.Preds)),
					Block: d,
				}
				f.nextID++
				d.Phis = append(d.Phis, phi)
				f.instrs = append(f.instrs, phi)
				if !onWork[d] {
					onWork[d] = true
					work = append(work, d)
				}
			}
		}
	}
}

// rename walks the dominator tree filling OpLoad.Args[0] with the reaching
// definition and phi operands with each predecessor's outgoing definition.
func rename(f *Func) {
	stacks := make([][]*Instr, len(f.Vars))
	var walk func(b *Block)
	walk = func(b *Block) {
		var pushed []*Var
		push := func(v *Var, def *Instr) {
			stacks[v.ID] = append(stacks[v.ID], def)
			pushed = append(pushed, v)
		}
		top := func(v *Var) *Instr {
			s := stacks[v.ID]
			if len(s) == 0 {
				return nil
			}
			return s[len(s)-1]
		}
		for _, phi := range b.Phis {
			push(phi.Var, phi)
		}
		for _, in := range b.Instrs {
			switch in.Op {
			case OpLoad:
				in.Args = []*Instr{top(in.Var)}
			case OpStore, OpDeclZero, OpParam:
				push(in.Var, in)
			}
		}
		for _, s := range b.Succs {
			// Operand slot for this edge: position of b in s.Preds.
			for slot, p := range s.Preds {
				if p != b {
					continue
				}
				for _, phi := range s.Phis {
					phi.Args[slot] = top(phi.Var)
				}
			}
		}
		for _, c := range b.children {
			walk(c)
		}
		for _, v := range pushed {
			stacks[v.ID] = stacks[v.ID][:len(stacks[v.ID])-1]
		}
	}
	walk(f.Entry)
}
