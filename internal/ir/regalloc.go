package ir

// Out-of-SSA register assignment for the bytecode backend.
//
// The SSA form this package builds is per-variable: every OpStore /
// OpDeclZero / OpParam / OpPhi definition belongs to exactly one tracked
// Var, every OpLoad reads the reaching definition of one Var, and phi
// operands are always definitions of the phi's own Var. Leaving SSA is
// therefore pure coalescing: all definitions of a Var share one frame
// register, phis become no-ops (the merged value is already in the
// register on every incoming edge), and no parallel-copy sequencing or
// critical-edge splitting is needed.
//
// Every other value-producing instruction gets a temporary register.
// Because expression lowering never opens a new block (short-circuit
// operands become conditional instruction ranges inside the block), a
// temporary's live range is contained in its block, so a simple
// linear scan over [definition, last use] positions reuses temporaries
// aggressively and keeps frames small.

// Reachable reports whether b is reachable from the function entry
// (computed by the dominator pass during Build). Code generators skip
// unreachable blocks.
func (b *Block) Reachable() bool { return b.rpo >= 0 }

// RegPlan maps one function's SSA values onto a flat virtual-register
// frame: registers [0, NumVars) hold tracked variables (indexed by
// Var.ID) and the rest hold instruction temporaries.
type RegPlan struct {
	// NumRegs is the frame size in registers.
	NumRegs int
	// NumVars is the tracked-variable register count.
	NumVars int

	temp map[*Instr]int
}

// VarReg returns the frame register holding v.
func (p *RegPlan) VarReg(v *Var) int { return v.ID }

// TempReg returns the temporary register assigned to in's result, if any.
func (p *RegPlan) TempReg(in *Instr) (int, bool) {
	r, ok := p.temp[in]
	return r, ok
}

// producesTemp reports whether an instruction's result occupies a
// temporary register. Definitions of tracked variables write the
// variable's register instead, and phis are coalesced away entirely.
func producesTemp(op Op) bool {
	switch op {
	case OpStore, OpPhi, OpDeclZero, OpParam:
		return false
	}
	return true
}

// AllocateRegisters computes the out-of-SSA register plan for f.
func AllocateRegisters(f *Func) *RegPlan {
	p := &RegPlan{NumVars: len(f.Vars), temp: map[*Instr]int{}}
	rets := map[*Instr]bool{}
	for _, r := range f.Rets {
		rets[r] = true
	}

	next := len(f.Vars)
	var free []int
	for _, b := range f.Blocks {
		// Last-use position of each temporary within the block. Phi and
		// OpLoad arguments are SSA def-use links, not runtime reads.
		last := map[*Instr]int{}
		for i, in := range b.Instrs {
			if producesTemp(in.Op) {
				last[in] = i
			}
		}
		for i, in := range b.Instrs {
			if in.Op == OpPhi || in.Op == OpLoad {
				continue
			}
			for _, a := range in.Args {
				if l, ok := last[a]; ok && i > l {
					last[a] = i
				}
			}
		}
		// Block terminators and return values are consumed after the last
		// instruction; pin them to the block end.
		end := len(b.Instrs) + 1
		for _, in := range b.Instrs {
			if _, ok := last[in]; !ok {
				continue
			}
			if in == b.Cond || rets[in] {
				last[in] = end
			}
		}

		// Linear scan with deterministic (allocation-ordered) expiry.
		type interval struct {
			reg, last int
		}
		var active []interval
		for i, in := range b.Instrs {
			kept := active[:0]
			for _, a := range active {
				if a.last < i {
					free = append(free, a.reg)
				} else {
					kept = append(kept, a)
				}
			}
			active = kept
			l, ok := last[in]
			if !ok {
				continue
			}
			var r int
			if n := len(free); n > 0 {
				r = free[n-1]
				free = free[:n-1]
			} else {
				r = next
				next++
			}
			p.temp[in] = r
			active = append(active, interval{reg: r, last: l})
		}
		// All temporaries die at the block boundary.
		for _, a := range active {
			free = append(free, a.reg)
		}
	}
	p.NumRegs = next
	return p
}
