package ir

// Sparse conditional constant propagation (Wegman & Zadeck) over the SSA
// form: a three-level lattice (unknown / constant / varying) per
// instruction, propagated only along CFG edges proven executable. Branch
// conditions that settle to constants keep their untaken edges dead, so
// facts from provably-unreachable code never pollute the result — this is
// what upgrades the HD4xx static out-of-bounds heuristic to the
// dataflow-precise HD605, and what powers constant-condition (HD601) and
// unreachable-code (HD602) reporting.

type latTag int

const (
	latTop latTag = iota // unknown (no evidence yet)
	latConst
	latBottom // varying
)

type lattice struct {
	tag latTag
	val Const
}

var bottom = lattice{tag: latBottom}

func constLat(c Const) lattice { return lattice{tag: latConst, val: c} }

// meetLat combines two lattice values.
func meetLat(a, b lattice) lattice {
	switch {
	case a.tag == latTop:
		return b
	case b.tag == latTop:
		return a
	case a.tag == latConst && b.tag == latConst && a.val.Equal(b.val):
		return a
	}
	return bottom
}

// SCCP holds the analysis result for one function.
type SCCP struct {
	f *Func
	// blockExec marks blocks proven reachable.
	blockExec []bool
	// edgeExec marks executable CFG edges keyed by (pred.ID, succ.ID).
	edgeExec map[[2]int]bool
	users    map[*Instr][]*Instr
}

// Lat returns an instruction's final lattice value. Instructions in
// unreachable code keep latTop; callers must consult Reachable.
func (s *SCCP) Lat(in *Instr) lattice { return in.lat }

// ConstOf reports the constant value of in, if proven.
func (s *SCCP) ConstOf(in *Instr) (Const, bool) {
	if in != nil && in.lat.tag == latConst {
		return in.lat.val, true
	}
	return Const{}, false
}

// Reachable reports whether b was proven executable.
func (s *SCCP) Reachable(b *Block) bool { return s.blockExec[b.ID] }

// Run performs the analysis.
func Run(f *Func) *SCCP {
	s := &SCCP{
		f:         f,
		blockExec: make([]bool, len(f.Blocks)),
		edgeExec:  map[[2]int]bool{},
		users:     map[*Instr][]*Instr{},
	}
	for _, in := range f.instrs {
		in.lat = lattice{}
		for _, a := range in.Args {
			if a != nil {
				s.users[a] = append(s.users[a], in)
			}
		}
	}

	var instrWL []*Instr
	type flowEdge struct{ from, to *Block }
	var flowWL []flowEdge

	lower := func(in *Instr, nv lattice) {
		// Monotone update: only move down the lattice.
		if nv.tag == latTop || in.lat.tag == latBottom {
			return
		}
		if in.lat.tag == nv.tag && (nv.tag != latConst || in.lat.val.Equal(nv.val)) {
			return
		}
		if in.lat.tag == latConst && nv.tag == latConst {
			nv = bottom
		}
		in.lat = nv
		instrWL = append(instrWL, s.users[in]...)
		// A changed branch condition re-derives its block's out-edges.
		if b := in.Block; b != nil && b.Cond == in {
			for _, e := range s.condEdges(b) {
				flowWL = append(flowWL, flowEdge{b, e})
			}
		}
	}

	markEdge := func(from, to *Block) {
		key := [2]int{from.ID, to.ID}
		if s.edgeExec[key] {
			return
		}
		s.edgeExec[key] = true
		first := !s.blockExec[to.ID]
		s.blockExec[to.ID] = true
		// (Re-)evaluate phis: a newly-executable in-edge can change them.
		for _, phi := range to.Phis {
			lower(phi, s.evalPhi(phi))
		}
		if first {
			for _, in := range to.Instrs {
				lower(in, s.eval(in))
			}
			for _, e := range s.succEdges(to) {
				flowWL = append(flowWL, flowEdge{to, e})
			}
		}
	}

	s.blockExec[f.Entry.ID] = true
	for _, in := range f.Entry.Instrs {
		lower(in, s.eval(in))
	}
	for _, e := range s.succEdges(f.Entry) {
		flowWL = append(flowWL, flowEdge{f.Entry, e})
	}

	for len(flowWL) > 0 || len(instrWL) > 0 {
		for len(flowWL) > 0 {
			e := flowWL[len(flowWL)-1]
			flowWL = flowWL[:len(flowWL)-1]
			markEdge(e.from, e.to)
		}
		for len(instrWL) > 0 {
			in := instrWL[len(instrWL)-1]
			instrWL = instrWL[:len(instrWL)-1]
			if !s.blockExec[in.Block.ID] {
				continue
			}
			if in.Op == OpPhi {
				lower(in, s.evalPhi(in))
			} else {
				lower(in, s.eval(in))
			}
		}
	}
	return s
}

// succEdges returns the currently-known executable successors of b given
// its condition's lattice value.
func (s *SCCP) succEdges(b *Block) []*Block {
	if b.Cond == nil {
		return b.Succs
	}
	return s.condEdges(b)
}

func (s *SCCP) condEdges(b *Block) []*Block {
	if len(b.Succs) < 2 {
		return b.Succs
	}
	switch b.Cond.lat.tag {
	case latTop:
		return nil // not yet known; wait
	case latConst:
		if b.Cond.lat.val.Truthy() {
			return b.Succs[:1]
		}
		return b.Succs[1:2]
	}
	return b.Succs
}

func (s *SCCP) evalPhi(phi *Instr) lattice {
	res := lattice{}
	for i, p := range phi.Block.Preds {
		if !s.edgeExec[[2]int{p.ID, phi.Block.ID}] {
			continue
		}
		if phi.Args[i] == nil {
			return bottom
		}
		res = meetLat(res, phi.Args[i].lat)
		if res.tag == latBottom {
			return res
		}
	}
	return res
}

// eval computes the lattice value of a non-phi instruction from its
// arguments' current values.
func (s *SCCP) eval(in *Instr) lattice {
	argLat := func(i int) lattice {
		if i >= len(in.Args) || in.Args[i] == nil {
			return bottom
		}
		return in.Args[i].lat
	}
	switch in.Op {
	case OpConst:
		return constLat(in.Val)
	case OpDeclZero:
		// Uninitialized cells read as the zero Value, i.e. int 0.
		return constLat(IntConst(0))
	case OpParam, OpLoadMem, OpEffect:
		return bottom
	case OpLoad:
		return argLat(0)
	case OpStore:
		// The definition's observable value is the storage-converted rhs.
		a := argLat(0)
		if a.tag == latConst {
			if c, ok := foldConvert(in.Var.Type, a.val); ok {
				return constLat(c)
			}
			return bottom
		}
		return a
	case OpCast:
		a := argLat(0)
		if a.tag == latConst {
			if c, ok := foldConvert(in.To, a.val); ok {
				return constLat(c)
			}
			return bottom
		}
		return a
	case OpUnary:
		a := argLat(0)
		if a.tag == latConst {
			if c, ok := foldUnary(in.OpStr, a.val); ok {
				return constLat(c)
			}
			return bottom
		}
		return a
	case OpBinary:
		l, r := argLat(0), argLat(1)
		if l.tag == latConst && r.tag == latConst {
			if c, ok := foldBinary(in.OpStr, l.val, r.val); ok {
				return constLat(c)
			}
			return bottom
		}
		if l.tag == latTop || r.tag == latTop {
			return lattice{}
		}
		return bottom
	case OpLogic:
		l, r := argLat(0), argLat(1)
		// The left side alone can decide, exactly as the interpreter
		// short-circuits; the right side's value is then irrelevant.
		if l.tag == latConst {
			if in.OpStr == "&&" && !l.val.Truthy() {
				return constLat(IntConst(0))
			}
			if in.OpStr == "||" && l.val.Truthy() {
				return constLat(IntConst(1))
			}
			if r.tag == latConst {
				return constLat(boolConst(r.val.Truthy()))
			}
			if r.tag == latTop {
				return lattice{}
			}
			return bottom
		}
		if l.tag == latTop {
			return lattice{}
		}
		return bottom
	case OpSelect:
		c, t, f := argLat(0), argLat(1), argLat(2)
		if c.tag == latConst {
			if c.val.Truthy() {
				return t
			}
			return f
		}
		if c.tag == latTop {
			return lattice{}
		}
		return meetLat(t, f)
	case OpCall:
		if !in.Pure {
			return bottom
		}
		args := make([]Const, len(in.Args))
		for i := range in.Args {
			a := argLat(i)
			if a.tag == latTop {
				return lattice{}
			}
			if a.tag != latConst {
				return bottom
			}
			args[i] = a.val
		}
		if c, ok := foldCall(in.OpStr, args); ok {
			return constLat(c)
		}
		return bottom
	}
	return bottom
}
