package ir

// Dominator tree and dominance frontiers via the Cooper-Harvey-Kennedy
// "A Simple, Fast Dominance Algorithm": iterate intersect() over the
// reverse postorder until fixpoint, then derive frontiers from join-point
// predecessors.

// computeDominators fills idom, children, frontier and rpo on every block
// reachable from f.Entry. Unreachable blocks keep rpo == -1 and a nil
// idom; SSA renaming and SCCP skip them.
func computeDominators(f *Func) {
	// Postorder DFS from entry.
	var post []*Block
	seen := make([]bool, len(f.Blocks))
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry)

	// Reverse postorder indices.
	n := len(post)
	rpoList := make([]*Block, n)
	for i, b := range post {
		idx := n - 1 - i
		b.rpo = idx
		rpoList[idx] = b
	}

	intersect := func(a, b *Block) *Block {
		for a != b {
			for a.rpo > b.rpo {
				a = a.idom
			}
			for b.rpo > a.rpo {
				b = b.idom
			}
		}
		return a
	}

	f.Entry.idom = f.Entry
	for changed := true; changed; {
		changed = false
		for _, b := range rpoList[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if p.rpo < 0 || p.idom == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && b.idom != newIdom {
				b.idom = newIdom
				changed = true
			}
		}
	}
	f.Entry.idom = nil

	for _, b := range rpoList {
		if b.idom != nil {
			b.idom.children = append(b.idom.children, b)
		}
	}

	// Dominance frontiers.
	for _, b := range rpoList {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if p.rpo < 0 {
				continue
			}
			runner := p
			for runner != nil && runner != b.idom {
				if !containsBlock(runner.frontier, b) {
					runner.frontier = append(runner.frontier, b)
				}
				runner = runner.idom
			}
		}
	}
}

func containsBlock(list []*Block, b *Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

// dominates reports whether a dominates b (reflexively).
func dominates(a, b *Block) bool {
	for b != nil {
		if b == a {
			return true
		}
		b = b.idom
	}
	return false
}
