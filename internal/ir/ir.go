// Package ir lowers MiniC functions into a CFG+SSA intermediate form with
// a reusable dataflow framework, and implements the analysis-driven
// optimizations the compiler applies before handing ASTs to the backends:
// sparse conditional constant propagation and folding, dead-code and
// dead-store elimination, copy propagation, common-subexpression
// elimination, and loop-invariant hoisting. The same fact base feeds the
// HD6xx optimization lints in internal/analysis, so the linter and the
// optimizer can never disagree about what is constant, dead, or invariant.
//
// The IR is deliberately AST-anchored: every instruction remembers the
// expression and statement it was lowered from, because the three backends
// (interpreter, streaming, GPU) all execute MiniC ASTs — optimization here
// means provably-equivalent smaller ASTs, not generated code. Semantic
// equivalence is defined by internal/interp: folding replicates its exact
// arithmetic (int64 wraparound, &63 shift masking, float promotion,
// convertFor storage truncation) and never folds or deletes anything that
// could trap (division by zero, out-of-bounds access).
package ir

import (
	"repro/internal/minic"
)

// Op enumerates IR instruction kinds.
type Op int

// Instruction kinds.
const (
	// OpConst is a literal integer or float value.
	OpConst Op = iota
	// OpParam defines a function parameter's incoming value.
	OpParam
	// OpDeclZero defines a tracked variable at an initializer-less
	// declaration. Uninitialized cells read as int 0 in the interpreter,
	// so this is a definition of constant zero.
	OpDeclZero
	// OpLoad reads a tracked variable; after SSA renaming Args[0] is the
	// reaching definition (OpStore, OpDeclZero, OpParam, or OpPhi).
	OpLoad
	// OpLoadMem is an opaque value load: globals, array elements, pointer
	// dereferences, string literals, address-of results. Never folded.
	OpLoadMem
	// OpStore writes a tracked variable. Args[0] is the assigned value.
	// As a definition its observable value is convertFor(Var.Type, rhs) —
	// the storage-truncated cell — while the enclosing assignment
	// *expression* yields the unconverted rhs, exactly like the
	// interpreter.
	OpStore
	// OpPhi merges definitions at a CFG join; Args align with Block.Preds.
	OpPhi
	// OpUnary applies -, !, or ~.
	OpUnary
	// OpBinary applies a non-short-circuit binary operator.
	OpBinary
	// OpLogic is && or || with the interpreter's lazy semantics: the
	// right operand's instructions are lowered into the same block but
	// may not execute at runtime, so no tracked definitions are allowed
	// inside it (the lowerer demotes any such variable).
	OpLogic
	// OpSelect is the ?: operator; Args are [cond, then, else].
	OpSelect
	// OpCast converts to CastTo with convertFor semantics.
	OpCast
	// OpCall invokes a function or builtin; Pure marks math builtins that
	// are side-effect- and trap-free.
	OpCall
	// OpEffect is an opaque side effect: a store through memory, an
	// increment of an untracked lvalue, or any write the IR does not
	// model. Always a liveness root.
	OpEffect
)

// StoreKind classifies how an OpStore appears in the AST, which decides
// whether dead-store elimination can delete its statement.
type StoreKind int

// Store kinds.
const (
	// StoreAssign is a plain `v = rhs` assignment expression.
	StoreAssign StoreKind = iota
	// StoreCompound is `v op= rhs`, `v++`, `--v`, etc.
	StoreCompound
	// StoreDeclInit is a declaration initializer `int v = rhs;`.
	StoreDeclInit
)

// Instr is one IR instruction.
type Instr struct {
	ID    int
	Op    Op
	OpStr string // operator for OpUnary/OpBinary/OpLogic, name for OpCall
	Var   *Var   // for OpParam/OpDeclZero/OpLoad/OpStore/OpPhi
	Val   Const  // for OpConst
	To    *minic.Type
	Args  []*Instr
	Block *Block

	// Expr / Stmt anchor the instruction to its AST origin. Expr is nil
	// for synthetic instructions (e.g. the implicit `for(;;)` condition).
	Expr minic.Expr
	Stmt minic.Stmt

	// Pure marks OpCall instructions whose builtin is side-effect- and
	// trap-free (the math functions).
	Pure bool
	// Trap marks instructions that can abort execution: potentially
	// out-of-bounds loads/derefs; division/modulo traps are derived from
	// the divisor's lattice value instead (see canTrap).
	Trap bool

	// StoreKind/Decl describe OpStore AST shape for DSE rewriting.
	StoreKind StoreKind
	Decl      *minic.Declarator // for StoreDeclInit
	Assign    *minic.Assign     // for StoreAssign

	lat lattice // SCCP result
}

// Var is a tracked scalar local: a non-global, non-array, non-pointer
// variable whose address is never taken and which is never defined inside
// a conditionally-evaluated subexpression.
type Var struct {
	ID   int
	Sym  *minic.Symbol
	Type *minic.Type
}

// Block is a basic block. Terminators are implicit: Cond == nil means an
// unconditional transfer to Succs[0] (or function exit when Succs is
// empty); otherwise Succs[0] is the true edge and Succs[1] the false edge.
type Block struct {
	ID     int
	Phis   []*Instr
	Instrs []*Instr
	Cond   *Instr
	Succs  []*Block
	Preds  []*Block

	// Stmts lists the statements lowered (at least partly) into this
	// block, for unreachable-code reporting.
	Stmts []minic.Stmt

	// Backstep marks a block whose unconditional successor edge is a loop
	// back-edge that the interpreter charges one extra step for (the
	// per-iteration steps++ at the bottom of While/For bodies). The
	// bytecode backend replicates the step-budget accounting from it.
	Backstep bool

	// Dominator-tree fields, filled by computeDominators.
	idom     *Block
	children []*Block
	frontier []*Block
	rpo      int // reverse-postorder index; -1 = unreachable
}

// Func is one lowered function.
type Func struct {
	Decl   *minic.FuncDecl
	Blocks []*Block
	Entry  *Block
	Vars   []*Var
	// Rets lists return-value instructions (liveness roots).
	Rets []*Instr

	varOf map[*minic.Symbol]*Var
	// ExprInstr maps each lowered AST expression to the instruction
	// producing its value.
	ExprInstr map[minic.Expr]*Instr

	instrs []*Instr // all instructions, for iteration
	nextID int
}

// VarFor returns the tracked Var for a symbol, or nil if the symbol is
// untracked (global, array, pointer, address-taken, or demoted).
func (f *Func) VarFor(sym *minic.Symbol) *Var { return f.varOf[sym] }

// lowerer carries the state of one function lowering.
type lowerer struct {
	f    *Func
	cur  *Block
	stmt minic.Stmt // statement currently being lowered
	brk  []*Block
	cont []*Block
	// contStep parallels cont: true when a continue edge to the target is
	// a While back-edge (which the interpreter charges a step for).
	contStep []bool
	demoted  map[*minic.Symbol]bool
	// demoteFn, when non-nil, additionally demotes symbols (fragment
	// builds demote everything declared outside the fragment).
	demoteFn func(*minic.Symbol) bool
}

// Build lowers fn into CFG+SSA form: basic blocks of instructions over
// tracked scalar variables, minimal phi placement at iterated dominance
// frontiers, and def-use chains via OpLoad/OpPhi arguments.
func Build(fn *minic.FuncDecl) *Func { return BuildFragment(fn, nil) }

// BuildFragment is Build with an extra demotion predicate: any symbol for
// which demote returns true is kept untracked (object-backed). The
// bytecode backend uses it to lower GPU kernel fragments whose free
// variables live in a host-populated frame rather than SSA registers.
func BuildFragment(fn *minic.FuncDecl, demote func(*minic.Symbol) bool) *Func {
	f := &Func{
		Decl:      fn,
		varOf:     map[*minic.Symbol]*Var{},
		ExprInstr: map[minic.Expr]*Instr{},
	}
	lw := &lowerer{f: f, demoted: demotedSyms(fn), demoteFn: demote}
	lw.cur = lw.newBlock()
	f.Entry = lw.cur

	// Parameters are tracked when scalar; their incoming values are
	// opaque definitions in the entry block.
	for _, p := range fn.Params {
		if v := lw.trackedVar(p.Sym); v != nil {
			lw.emit(&Instr{Op: OpParam, Var: v})
		}
	}
	lw.lowerStmt(fn.Body)

	computeDominators(f)
	placePhis(f)
	rename(f)
	return f
}

// demotedSyms scans fn for symbols that cannot be tracked: address-taken
// variables and variables defined inside conditionally-evaluated
// subexpressions (&&/|| right operands, ?: arms), where a definition may
// or may not execute.
func demotedSyms(fn *minic.FuncDecl) map[*minic.Symbol]bool {
	out := map[*minic.Symbol]bool{}
	var expr func(e minic.Expr, conditional bool)
	demoteTarget := func(e minic.Expr) {
		if id, ok := e.(*minic.Ident); ok && id.Sym != nil {
			out[id.Sym] = true
		}
	}
	expr = func(e minic.Expr, conditional bool) {
		switch x := e.(type) {
		case nil:
		case *minic.Unary:
			if x.Op == "&" {
				demoteTarget(x.X)
			}
			if conditional && (x.Op == "++" || x.Op == "--") {
				demoteTarget(x.X)
			}
			expr(x.X, conditional)
		case *minic.Postfix:
			if conditional {
				demoteTarget(x.X)
			}
			expr(x.X, conditional)
		case *minic.Binary:
			if x.Op == "&&" || x.Op == "||" {
				expr(x.L, conditional)
				expr(x.R, true)
			} else {
				expr(x.L, conditional)
				expr(x.R, conditional)
			}
		case *minic.Assign:
			if conditional {
				demoteTarget(x.L)
			}
			expr(x.L, conditional)
			expr(x.R, conditional)
		case *minic.Cond:
			expr(x.C, conditional)
			expr(x.T, true)
			expr(x.F, true)
		case *minic.Call:
			for _, a := range x.Args {
				expr(a, conditional)
			}
		case *minic.Index:
			expr(x.X, conditional)
			expr(x.Idx, conditional)
		case *minic.Cast:
			expr(x.X, conditional)
		}
	}
	walkStmts(fn.Body, func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.ExprStmt:
			expr(st.X, false)
		case *minic.DeclStmt:
			for _, d := range st.Decls {
				expr(d.Init, false)
			}
		case *minic.If:
			expr(st.Cond, false)
		case *minic.While:
			expr(st.Cond, false)
		case *minic.For:
			expr(st.Cond, false)
			expr(st.Post, false)
		case *minic.Return:
			expr(st.X, false)
		}
	})
	return out
}

// trackedVar returns (creating on first use) the Var for sym, or nil when
// sym is untracked.
func (lw *lowerer) trackedVar(sym *minic.Symbol) *Var {
	if sym == nil || sym.Global || lw.demoted[sym] {
		return nil
	}
	if lw.demoteFn != nil && lw.demoteFn(sym) {
		return nil
	}
	if sym.Kind != minic.SymVar && sym.Kind != minic.SymParam {
		return nil
	}
	t := sym.Type
	if t == nil || !scalarKind(t.Kind) {
		return nil
	}
	if v, ok := lw.f.varOf[sym]; ok {
		return v
	}
	v := &Var{ID: len(lw.f.Vars), Sym: sym, Type: t}
	lw.f.Vars = append(lw.f.Vars, v)
	lw.f.varOf[sym] = v
	return v
}

func scalarKind(k minic.TypeKind) bool {
	switch k {
	case minic.TypeChar, minic.TypeInt, minic.TypeLong, minic.TypeFloat, minic.TypeDouble:
		return true
	}
	return false
}

func (lw *lowerer) newBlock() *Block {
	b := &Block{ID: len(lw.f.Blocks), rpo: -1}
	lw.f.Blocks = append(lw.f.Blocks, b)
	return b
}

func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (lw *lowerer) emit(in *Instr) *Instr {
	in.ID = lw.f.nextID
	lw.f.nextID++
	in.Block = lw.cur
	in.Stmt = lw.stmt
	lw.cur.Instrs = append(lw.cur.Instrs, in)
	lw.f.instrs = append(lw.f.instrs, in)
	return in
}

func (lw *lowerer) konst(c Const, e minic.Expr) *Instr {
	in := lw.emit(&Instr{Op: OpConst, Val: c, Expr: e})
	if e != nil {
		lw.f.ExprInstr[e] = in
	}
	return in
}

// lowerStmt lowers one statement into the current block, creating blocks
// as control flow requires.
func (lw *lowerer) lowerStmt(s minic.Stmt) {
	if s == nil {
		return
	}
	prev := lw.stmt
	lw.stmt = s
	defer func() { lw.stmt = prev }()
	lw.cur.Stmts = append(lw.cur.Stmts, s)

	switch st := s.(type) {
	case *minic.Block:
		for _, inner := range st.Stmts {
			lw.lowerStmt(inner)
		}
	case *minic.EmptyStmt:
	case *minic.PragmaStmt:
		lw.lowerStmt(st.Body)
	case *minic.DeclStmt:
		for _, d := range st.Decls {
			v := lw.trackedVar(d.Sym)
			switch {
			case v != nil && d.Init != nil:
				r := lw.lowerExpr(d.Init)
				lw.emit(&Instr{Op: OpStore, Var: v, Args: []*Instr{r}, StoreKind: StoreDeclInit, Decl: d})
			case v != nil:
				lw.emit(&Instr{Op: OpDeclZero, Var: v})
			case d.Init != nil:
				r := lw.lowerExpr(d.Init)
				lw.emit(&Instr{Op: OpEffect, Args: []*Instr{r}, Decl: d})
			}
		}
	case *minic.ExprStmt:
		lw.lowerExpr(st.X)
	case *minic.If:
		c := lw.lowerExpr(st.Cond)
		condBlock := lw.cur
		condBlock.Cond = c
		thenB := lw.newBlock()
		join := lw.newBlock()
		edge(condBlock, thenB)
		if st.Else != nil {
			elseB := lw.newBlock()
			edge(condBlock, elseB)
			lw.cur = elseB
			lw.lowerStmt(st.Else)
			edge(lw.cur, join)
		} else {
			edge(condBlock, join)
		}
		lw.cur = thenB
		lw.lowerStmt(st.Then)
		edge(lw.cur, join)
		lw.cur = join
	case *minic.While:
		header := lw.newBlock()
		edge(lw.cur, header)
		lw.cur = header
		c := lw.lowerExpr(st.Cond)
		head := lw.cur // short-circuit lowering stays in one block
		head.Cond = c
		body := lw.newBlock()
		exit := lw.newBlock()
		edge(head, body)
		edge(head, exit)
		lw.brk = append(lw.brk, exit)
		lw.cont = append(lw.cont, header)
		lw.contStep = append(lw.contStep, true)
		lw.cur = body
		lw.lowerStmt(st.Body)
		lw.cur.Backstep = true
		edge(lw.cur, header)
		lw.brk = lw.brk[:len(lw.brk)-1]
		lw.cont = lw.cont[:len(lw.cont)-1]
		lw.contStep = lw.contStep[:len(lw.contStep)-1]
		lw.cur = exit
	case *minic.For:
		lw.lowerStmt(st.Init)
		header := lw.newBlock()
		edge(lw.cur, header)
		lw.cur = header
		var c *Instr
		if st.Cond != nil {
			c = lw.lowerExpr(st.Cond)
		} else {
			c = lw.konst(IntConst(1), nil)
		}
		head := lw.cur
		head.Cond = c
		body := lw.newBlock()
		post := lw.newBlock()
		exit := lw.newBlock()
		edge(head, body)
		edge(head, exit)
		lw.brk = append(lw.brk, exit)
		lw.cont = append(lw.cont, post)
		lw.contStep = append(lw.contStep, false)
		lw.cur = body
		lw.lowerStmt(st.Body)
		edge(lw.cur, post)
		lw.cur = post
		if st.Post != nil {
			lw.lowerExpr(st.Post)
		}
		lw.cur.Backstep = true
		edge(lw.cur, header)
		lw.brk = lw.brk[:len(lw.brk)-1]
		lw.cont = lw.cont[:len(lw.cont)-1]
		lw.contStep = lw.contStep[:len(lw.contStep)-1]
		lw.cur = exit
	case *minic.Return:
		if st.X != nil {
			r := lw.lowerExpr(st.X)
			lw.f.Rets = append(lw.f.Rets, r)
		}
		lw.cur = lw.newBlock() // unreachable continuation
	case *minic.Break:
		if n := len(lw.brk); n > 0 {
			edge(lw.cur, lw.brk[n-1])
		}
		lw.cur = lw.newBlock()
	case *minic.Continue:
		if n := len(lw.cont); n > 0 {
			if lw.contStep[n-1] {
				lw.cur.Backstep = true
			}
			edge(lw.cur, lw.cont[n-1])
		}
		lw.cur = lw.newBlock()
	}
}

// lowerExpr lowers an expression, returning the instruction producing its
// value. Instructions are emitted in the interpreter's evaluation order.
func (lw *lowerer) lowerExpr(e minic.Expr) *Instr {
	in := lw.lowerExprInner(e)
	if e != nil && in != nil {
		lw.f.ExprInstr[e] = in
	}
	return in
}

func (lw *lowerer) lowerExprInner(e minic.Expr) *Instr {
	switch x := e.(type) {
	case *minic.IntLit:
		return lw.konst(IntConst(x.Value), nil)
	case *minic.CharLit:
		return lw.konst(IntConst(int64(x.Value)), nil)
	case *minic.FloatLit:
		return lw.konst(FloatConst(x.Value), nil)
	case *minic.SizeofType:
		return lw.konst(IntConst(int64(x.Of.Size())), nil)
	case *minic.StrLit:
		return lw.emit(&Instr{Op: OpLoadMem, Expr: e})
	case *minic.Ident:
		if v := lw.trackedVar(x.Sym); v != nil {
			return lw.emit(&Instr{Op: OpLoad, Var: v, Expr: e})
		}
		return lw.emit(&Instr{Op: OpLoadMem, Expr: e})
	case *minic.Unary:
		switch x.Op {
		case "&":
			lw.lowerLValueUses(x.X)
			return lw.emit(&Instr{Op: OpLoadMem, Expr: e})
		case "*":
			p := lw.lowerExpr(x.X)
			return lw.emit(&Instr{Op: OpLoadMem, Args: []*Instr{p}, Expr: e, Trap: true})
		case "-", "!", "~":
			a := lw.lowerExpr(x.X)
			return lw.emit(&Instr{Op: OpUnary, OpStr: x.Op, Args: []*Instr{a}, Expr: e})
		case "++", "--":
			return lw.lowerIncDec(x.X, x.Op, false, e)
		}
		return lw.emit(&Instr{Op: OpEffect, Expr: e})
	case *minic.Postfix:
		return lw.lowerIncDec(x.X, x.Op, true, e)
	case *minic.Binary:
		if x.Op == "&&" || x.Op == "||" {
			l := lw.lowerExpr(x.L)
			r := lw.lowerExpr(x.R)
			return lw.emit(&Instr{Op: OpLogic, OpStr: x.Op, Args: []*Instr{l, r}, Expr: e})
		}
		l := lw.lowerExpr(x.L)
		r := lw.lowerExpr(x.R)
		return lw.emit(&Instr{Op: OpBinary, OpStr: x.Op, Args: []*Instr{l, r}, Expr: e})
	case *minic.Assign:
		if id, ok := x.L.(*minic.Ident); ok {
			if v := lw.trackedVar(id.Sym); v != nil {
				if x.Op == "=" {
					r := lw.lowerExpr(x.R)
					lw.emit(&Instr{Op: OpStore, Var: v, Args: []*Instr{r}, Expr: e, StoreKind: StoreAssign, Assign: x})
					return r
				}
				r := lw.lowerExpr(x.R)
				cur := lw.emit(&Instr{Op: OpLoad, Var: v})
				rv := lw.emit(&Instr{Op: OpBinary, OpStr: x.Op[:len(x.Op)-1], Args: []*Instr{cur, r}, Expr: e})
				lw.emit(&Instr{Op: OpStore, Var: v, Args: []*Instr{rv}, StoreKind: StoreCompound})
				return rv
			}
		}
		// Untracked target: lvalue uses, rhs, opaque memory store.
		lw.lowerLValueUses(x.L)
		r := lw.lowerExpr(x.R)
		eff := lw.emit(&Instr{Op: OpEffect, Args: []*Instr{r}, Expr: e})
		if x.Op == "=" {
			return r
		}
		return eff
	case *minic.Cond:
		c := lw.lowerExpr(x.C)
		t := lw.lowerExpr(x.T)
		f := lw.lowerExpr(x.F)
		return lw.emit(&Instr{Op: OpSelect, Args: []*Instr{c, t, f}, Expr: e})
	case *minic.Index:
		idx := lw.lowerExpr(x.Idx)
		base := lw.lowerExpr(x.X)
		return lw.emit(&Instr{Op: OpLoadMem, Args: []*Instr{idx, base}, Expr: e, Trap: true})
	case *minic.Cast:
		a := lw.lowerExpr(x.X)
		return lw.emit(&Instr{Op: OpCast, To: x.To, Args: []*Instr{a}, Expr: e})
	case *minic.Call:
		if x.Name == "__sizeof_var" {
			if len(x.Args) == 1 {
				if id, ok := x.Args[0].(*minic.Ident); ok && id.Sym != nil && id.Sym.Type != nil {
					return lw.konst(IntConst(int64(id.Sym.Type.Size())), nil)
				}
			}
			return lw.emit(&Instr{Op: OpEffect, Expr: e})
		}
		args := make([]*Instr, len(x.Args))
		for i, a := range x.Args {
			args[i] = lw.lowerExpr(a)
		}
		pure := x.Builtin && pureBuiltins[x.Name]
		return lw.emit(&Instr{Op: OpCall, OpStr: x.Name, Args: args, Expr: e, Pure: pure})
	}
	return lw.emit(&Instr{Op: OpEffect, Expr: e})
}

// lowerIncDec lowers ++/-- (prefix when postfix==false). The interpreter
// computes addInt(old, ±1), which matches binary +/- for non-pointer
// values; tracked variables are never pointers.
func (lw *lowerer) lowerIncDec(target minic.Expr, op string, postfix bool, e minic.Expr) *Instr {
	bin := "+"
	if op == "--" {
		bin = "-"
	}
	if id, ok := target.(*minic.Ident); ok {
		if v := lw.trackedVar(id.Sym); v != nil {
			old := lw.emit(&Instr{Op: OpLoad, Var: v})
			one := lw.emit(&Instr{Op: OpConst, Val: IntConst(1)})
			nv := lw.emit(&Instr{Op: OpBinary, OpStr: bin, Args: []*Instr{old, one}, Expr: e})
			lw.emit(&Instr{Op: OpStore, Var: v, Args: []*Instr{nv}, StoreKind: StoreCompound})
			if postfix {
				return old
			}
			return nv
		}
	}
	lw.lowerLValueUses(target)
	return lw.emit(&Instr{Op: OpEffect, Expr: e})
}

// lowerLValueUses lowers the value reads inside an lvalue expression (index
// expressions, pointer operands) without modeling the location itself.
func (lw *lowerer) lowerLValueUses(e minic.Expr) {
	switch x := e.(type) {
	case *minic.Ident:
	case *minic.Index:
		lw.lowerExpr(x.Idx)
		lw.lowerExpr(x.X)
	case *minic.Unary:
		if x.Op == "*" {
			lw.lowerExpr(x.X)
		}
	}
}

// pureBuiltins are math builtins with no side effects and no error paths
// (they map NaN/domain issues to NaN, never to interpreter errors). Their
// constant folding must call the identical Go math functions the
// interpreter stdlib uses.
var pureBuiltins = map[string]bool{
	"sqrt": true, "fabs": true, "exp": true, "log": true, "log2": true,
	"floor": true, "ceil": true, "erf": true, "sin": true, "cos": true,
	"pow": true, "fmin": true, "fmax": true, "abs": true,
	"isdigit": true, "isalpha": true, "isalnum": true, "isspace": true,
	"tolower": true, "toupper": true,
}

// walkStmts visits s and every nested statement.
func walkStmts(s minic.Stmt, visit func(minic.Stmt)) {
	if s == nil {
		return
	}
	visit(s)
	switch st := s.(type) {
	case *minic.Block:
		for _, inner := range st.Stmts {
			walkStmts(inner, visit)
		}
	case *minic.If:
		walkStmts(st.Then, visit)
		walkStmts(st.Else, visit)
	case *minic.While:
		walkStmts(st.Body, visit)
	case *minic.For:
		walkStmts(st.Init, visit)
		walkStmts(st.Body, visit)
	case *minic.PragmaStmt:
		walkStmts(st.Body, visit)
	}
}
