package ir

import (
	"fmt"
	"sort"

	"repro/internal/minic"
)

// Stats reports what the optimizer did to one program.
type Stats struct {
	Funcs    int
	Rounds   int
	Folded   int // expressions replaced by literals
	Branches int // constant branches simplified
	Trimmed  int // unreachable statements removed
	Stores   int // dead assignments removed
	Inits    int // dead declaration initializers removed
	Copies   int // variable reads redirected to copy sources
	CSE      int // common subexpressions shared through temps
	LICM     int // loop-invariant expressions hoisted

	NodesBefore int
	NodesAfter  int
}

// Changed reports whether any rewrite was applied.
func (st *Stats) Changed() bool {
	return st.Folded+st.Branches+st.Trimmed+st.Stores+st.Inits+st.Copies+st.CSE+st.LICM > 0
}

// Add accumulates other into st (per-pass counters and rounds; node counts
// are left to the caller).
func (st *Stats) Add(o *Stats) {
	st.Funcs += o.Funcs
	st.Rounds += o.Rounds
	st.Folded += o.Folded
	st.Branches += o.Branches
	st.Trimmed += o.Trimmed
	st.Stores += o.Stores
	st.Inits += o.Inits
	st.Copies += o.Copies
	st.CSE += o.CSE
	st.LICM += o.LICM
}

func (st *Stats) String() string {
	return fmt.Sprintf("fold=%d branch=%d trim=%d dse=%d deadinit=%d copy=%d cse=%d licm=%d nodes=%d->%d",
		st.Folded, st.Branches, st.Trimmed, st.Stores, st.Inits, st.Copies, st.CSE, st.LICM,
		st.NodesBefore, st.NodesAfter)
}

// maxRounds bounds the fold→DSE→copy→CSE→LICM pipeline iterations per
// function; each round only runs if the previous one changed something.
const maxRounds = 3

// Pass selects optimizer passes for OptimizeSelected. OptimizeProgram
// runs AllPasses; partial masks exist for per-pass effect measurement
// (make opt-report) and ablation, not as a user-facing -O level.
type Pass uint

const (
	PassFold Pass = 1 << iota // SCCP folding, branch simplification, unreachable trim
	PassDSE                   // dead stores and dead declaration initializers
	PassCopy                  // copy propagation
	PassCSE                   // common-subexpression elimination
	PassLICM                  // loop-invariant code motion

	AllPasses = PassFold | PassDSE | PassCopy | PassCSE | PassLICM
)

// OptimizeProgram rewrites prog in place: constant folding and branch
// simplification driven by SCCP, dead-store and dead-init elimination,
// copy propagation, dominator-scoped common-subexpression elimination, and
// loop-invariant code motion. Every rewrite preserves internal/interp
// semantics exactly (including trap behavior and evaluation order of
// side effects); only the interpreter's per-node cost shrinks.
func OptimizeProgram(prog *minic.Program) *Stats {
	return OptimizeSelected(prog, AllPasses)
}

// OptimizeSelected is OptimizeProgram restricted to the given pass mask.
func OptimizeSelected(prog *minic.Program, passes Pass) *Stats {
	st := &Stats{}
	st.NodesBefore = CountNodes(prog)
	temp := 0
	for _, fn := range prog.Funcs {
		if fn.Body == nil {
			continue
		}
		st.Funcs++
		optimizeFunc(fn, st, &temp, passes)
	}
	st.NodesAfter = CountNodes(prog)
	return st
}

func optimizeFunc(fn *minic.FuncDecl, st *Stats, temp *int, passes Pass) {
	for round := 0; round < maxRounds; round++ {
		st.Rounds++
		o := &optimizer{fn: fn, st: st, temp: temp}
		n := 0
		if passes&PassFold != 0 {
			n += o.foldPass()
		}
		if passes&PassDSE != 0 {
			n += o.dsePass()
		}
		if passes&PassCopy != 0 {
			n += o.copyPropPass()
		}
		if passes&PassCSE != 0 {
			n += o.csePass()
		}
		if passes&PassLICM != 0 {
			n += o.licmPass()
		}
		if n == 0 {
			return
		}
	}
}

// optimizer holds per-pass state; f/s/a are rebuilt by each pass because
// every pass mutates the AST the next one reads.
type optimizer struct {
	fn   *minic.FuncDecl
	f    *Func
	s    *SCCP
	a    *astInfo
	st   *Stats
	temp *int
}

func (o *optimizer) build(sccp bool) {
	o.f = Build(o.fn)
	if sccp {
		o.s = Run(o.f)
	} else {
		o.s = nil
	}
	o.a = indexAST(o.fn)
}

// constOfExpr returns the proven constant value of e, requiring its
// instruction to sit in reachable code.
func (o *optimizer) constOfExpr(e minic.Expr) (Const, bool) {
	in := o.f.ExprInstr[e]
	if in == nil || in.Block == nil || !o.s.Reachable(in.Block) {
		return Const{}, false
	}
	return o.s.ConstOf(in)
}

// litConst reads a literal's value directly (for conditions already folded
// in an earlier round).
func litConst(e minic.Expr) (Const, bool) {
	switch x := e.(type) {
	case *minic.IntLit:
		return IntConst(x.Value), true
	case *minic.CharLit:
		return IntConst(int64(x.Value)), true
	case *minic.FloatLit:
		return FloatConst(x.Value), true
	}
	return Const{}, false
}

func (o *optimizer) condConst(e minic.Expr) (Const, bool) {
	if c, ok := litConst(e); ok {
		return c, true
	}
	return o.constOfExpr(e)
}

// execFree reports whether evaluating e has no side effects and cannot
// trap: no assignments, increments, function calls (other than pure
// builtins), memory loads through indices or pointers, and no division
// whose divisor is not provably nonzero. Such expressions may be deleted
// or evaluated fewer times without observable difference.
func (o *optimizer) execFree(e minic.Expr) bool {
	switch x := e.(type) {
	case *minic.IntLit, *minic.FloatLit, *minic.CharLit, *minic.StrLit, *minic.SizeofType, *minic.Ident:
		return true
	case *minic.Unary:
		switch x.Op {
		case "-", "!", "~":
			return o.execFree(x.X)
		case "&":
			// &ident is trap-free; &a[i] evaluates and bounds-uses i later,
			// and *p can trap — keep both.
			_, ok := x.X.(*minic.Ident)
			return ok
		}
		return false
	case *minic.Binary:
		switch x.Op {
		case "&&", "||":
			if c, ok := o.condConst(x.L); ok {
				if (x.Op == "&&" && !c.Truthy()) || (x.Op == "||" && c.Truthy()) {
					// Right side provably never evaluates.
					return o.execFree(x.L)
				}
			}
			return o.execFree(x.L) && o.execFree(x.R)
		case "/", "%":
			c, ok := o.condConst(x.R)
			if !ok || !c.Truthy() {
				return false
			}
		}
		return o.execFree(x.L) && o.execFree(x.R)
	case *minic.Cond:
		if c, ok := o.condConst(x.C); ok && o.execFree(x.C) {
			if c.Truthy() {
				return o.execFree(x.T)
			}
			return o.execFree(x.F)
		}
		return o.execFree(x.C) && o.execFree(x.T) && o.execFree(x.F)
	case *minic.Call:
		if x.Name == "__sizeof_var" {
			return true // argument is not evaluated
		}
		if !x.Builtin || !pureBuiltins[x.Name] {
			return false
		}
		for _, a := range x.Args {
			if !o.execFree(a) {
				return false
			}
		}
		return true
	case *minic.Cast:
		return o.execFree(x.X)
	}
	return false
}

// containsPragma reports whether s contains a pragma statement anywhere;
// such subtrees are never restructured because kernel specs hold pointers
// into them.
func containsPragma(s minic.Stmt) bool {
	found := false
	walkStmts(s, func(st minic.Stmt) {
		if _, ok := st.(*minic.PragmaStmt); ok {
			found = true
		}
	})
	return found
}

func emptyAt(pos minic.Pos) minic.Stmt {
	e := &minic.EmptyStmt{}
	e.Pos = pos
	return e
}

// ---- Pass 1: SCCP-driven folding, branch simplification, trimming ----

func (o *optimizer) foldPass() int {
	o.build(true)
	n := o.simplifyBranches()
	n += o.trimUnreachable()
	// Branch rewrites restructured statements; re-index before folding so
	// expression setters point at the surviving tree.
	o.a = indexAST(o.fn)
	n += o.foldConsts()
	n += o.cleanupPureStmts()
	return n
}

func (o *optimizer) simplifyBranches() int {
	n := 0
	walkStmts(o.fn.Body, func(s minic.Stmt) {
		set, ok := o.a.stmtSet[s]
		if !ok || o.a.protected[s] || containsPragma(s) {
			return
		}
		switch st := s.(type) {
		case *minic.If:
			c, ok := o.condConst(st.Cond)
			if !ok {
				return
			}
			taken := st.Then
			if !c.Truthy() {
				taken = st.Else
			}
			if taken == nil {
				taken = emptyAt(st.Pos)
			}
			if o.execFree(st.Cond) {
				set(taken)
			} else {
				wrap := &minic.Block{Stmts: []minic.Stmt{condStmt(st.Cond), taken}}
				wrap.Pos = st.Pos
				set(wrap)
			}
			o.st.Branches++
			n++
		case *minic.While:
			// Only a provably-false condition simplifies: the condition is
			// still evaluated once before the loop exits.
			c, ok := o.condConst(st.Cond)
			if !ok || c.Truthy() {
				return
			}
			if o.execFree(st.Cond) {
				set(emptyAt(st.Pos))
			} else {
				set(condStmt(st.Cond))
			}
			o.st.Branches++
			n++
		case *minic.For:
			if st.Cond == nil {
				return
			}
			c, ok := o.condConst(st.Cond)
			if !ok || c.Truthy() {
				return
			}
			// Body and post never run; init runs, then the condition is
			// evaluated once.
			var keep []minic.Stmt
			if st.Init != nil {
				keep = append(keep, st.Init)
			}
			if !o.execFree(st.Cond) {
				keep = append(keep, condStmt(st.Cond))
			}
			if len(keep) == 0 {
				set(emptyAt(st.Pos))
			} else {
				wrap := &minic.Block{Stmts: keep}
				wrap.Pos = st.Pos
				set(wrap)
			}
			o.st.Branches++
			n++
		}
	})
	return n
}

func condStmt(cond minic.Expr) minic.Stmt {
	es := &minic.ExprStmt{X: cond}
	es.Pos = exprPos(cond)
	return es
}

// trimUnreachable drops statements that follow an unconditional
// return/break/continue inside the same block.
func (o *optimizer) trimUnreachable() int {
	n := 0
	walkStmts(o.fn.Body, func(s minic.Stmt) {
		blk, ok := s.(*minic.Block)
		if !ok {
			return
		}
		for i, inner := range blk.Stmts {
			switch inner.(type) {
			case *minic.Return, *minic.Break, *minic.Continue:
			default:
				continue
			}
			if i+1 >= len(blk.Stmts) {
				return
			}
			tail := blk.Stmts[i+1:]
			for _, t := range tail {
				if containsPragma(t) {
					return
				}
			}
			n += len(tail)
			o.st.Trimmed += len(tail)
			blk.Stmts = blk.Stmts[:i+1]
			return
		}
	})
	return n
}

func (o *optimizer) foldConsts() int {
	n := 0
	var fold func(e minic.Expr)
	fold = func(e minic.Expr) {
		if e == nil || isLiteral(e) {
			return
		}
		if set, ok := o.a.exprSet[e]; ok {
			if c, okc := o.constOfExpr(e); okc && o.execFree(e) {
				set(literalFor(c, e))
				o.st.Folded++
				n++
				return
			}
		}
		switch x := e.(type) {
		case *minic.Unary:
			fold(x.X)
		case *minic.Postfix:
			fold(x.X)
		case *minic.Binary:
			fold(x.L)
			fold(x.R)
		case *minic.Assign:
			fold(x.L)
			fold(x.R)
		case *minic.Cond:
			fold(x.C)
			fold(x.T)
			fold(x.F)
		case *minic.Call:
			if x.Name == "__sizeof_var" {
				return
			}
			for _, a := range x.Args {
				fold(a)
			}
		case *minic.Index:
			fold(x.X)
			fold(x.Idx)
		case *minic.Cast:
			fold(x.X)
		}
	}
	walkStmts(o.fn.Body, func(s minic.Stmt) {
		forEachExprIn(s, fold)
	})
	return n
}

// cleanupPureStmts deletes expression statements whose evaluation has no
// effect (typically left behind by folding).
func (o *optimizer) cleanupPureStmts() int {
	n := 0
	walkStmts(o.fn.Body, func(s minic.Stmt) {
		es, ok := s.(*minic.ExprStmt)
		if !ok || o.a.protected[s] {
			return
		}
		set, ok := o.a.stmtSet[s]
		if !ok {
			return
		}
		if !o.execFree(es.X) {
			return
		}
		set(emptyAt(es.Pos))
		o.st.Trimmed++
		n++
	})
	return n
}

// ---- Pass 2: dead-store and dead-init elimination ----

func (o *optimizer) dsePass() int {
	o.build(true)
	live := map[*Instr]bool{}
	var wl []*Instr
	mark := func(in *Instr) {
		if in != nil && !live[in] {
			live[in] = true
			wl = append(wl, in)
		}
	}
	for _, b := range o.f.Blocks {
		if !o.s.Reachable(b) {
			continue
		}
		if b.Cond != nil {
			mark(b.Cond)
		}
		for _, in := range b.Instrs {
			switch {
			case in.Op == OpEffect,
				in.Op == OpCall && !in.Pure,
				in.Op == OpLoadMem && in.Trap:
				mark(in)
			case in.Op == OpBinary && (in.OpStr == "/" || in.OpStr == "%"):
				// A maybe-zero divisor can trap; the whole expression must
				// keep executing.
				if c, ok := o.s.ConstOf(in.Args[1]); !ok || !c.Truthy() {
					mark(in)
				}
			}
		}
	}
	for _, r := range o.f.Rets {
		mark(r)
	}
	for len(wl) > 0 {
		in := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		for _, a := range in.Args {
			mark(a)
		}
	}

	// Candidate dead stores: unmarked definitions whose statement shape we
	// know how to rewrite. Compound stores (v op= ..., v++) are never
	// deleted — their AST carries the old-value read.
	type cand struct {
		in   *Instr
		full bool // deletes the rhs evaluation too
	}
	var cands []cand
	isCand := map[*Instr]int{}
	for _, b := range o.f.Blocks {
		if !o.s.Reachable(b) {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op != OpStore || live[in] {
				continue
			}
			switch in.StoreKind {
			case StoreAssign:
				es, ok := in.Stmt.(*minic.ExprStmt)
				if !ok || in.Assign == nil || es.X != in.Assign || o.a.protected[in.Stmt] {
					continue
				}
				if _, ok := o.a.stmtSet[in.Stmt]; !ok {
					continue
				}
				if _, ok := o.a.exprSet[in.Assign]; !ok {
					continue
				}
				isCand[in] = len(cands)
				cands = append(cands, cand{in, o.execFree(in.Assign.R)})
			case StoreDeclInit:
				if in.Decl == nil || in.Decl.Init == nil || !o.execFree(in.Decl.Init) {
					continue
				}
				isCand[in] = len(cands)
				cands = append(cands, cand{in, true})
			}
		}
	}
	if len(cands) == 0 {
		return 0
	}

	// Must-keep fixpoint: a store may only be deleted if no load that will
	// still execute reads it (directly or through phis). Deleting a store
	// read by surviving dead code would change the values — or introduce
	// traps — in expressions the interpreter still evaluates.
	dead := make([]bool, len(cands))
	for i := range dead {
		dead[i] = true
	}
	argTree := func(root *Instr, out map[*Instr]bool) {
		var walk func(in *Instr)
		walk = func(in *Instr) {
			if in == nil || out[in] {
				return
			}
			out[in] = true
			if in.Op == OpPhi {
				return // phi args are other defs, not this evaluation
			}
			for _, a := range in.Args {
				walk(a)
			}
		}
		walk(root)
	}
	for changed := true; changed; {
		changed = false
		killed := map[*Instr]bool{}
		for i, c := range cands {
			if !dead[i] {
				continue
			}
			killed[c.in] = true
			if c.full {
				argTree(c.in.Args[0], killed)
			}
		}
		var closure func(d *Instr, seen map[*Instr]bool)
		closure = func(d *Instr, seen map[*Instr]bool) {
			if d == nil || seen[d] {
				return
			}
			seen[d] = true
			if d.Op == OpPhi {
				for _, a := range d.Args {
					closure(a, seen)
				}
			}
		}
		for _, b := range o.f.Blocks {
			if !o.s.Reachable(b) {
				continue
			}
			for _, L := range b.Instrs {
				if L.Op != OpLoad || killed[L] || len(L.Args) == 0 {
					continue
				}
				seen := map[*Instr]bool{}
				closure(L.Args[0], seen)
				for d := range seen {
					if i, ok := isCand[d]; ok && dead[i] {
						dead[i] = false
						changed = true
					}
				}
			}
		}
	}

	n := 0
	for i, c := range cands {
		if !dead[i] {
			continue
		}
		switch c.in.StoreKind {
		case StoreAssign:
			if c.full {
				o.a.stmtSet[c.in.Stmt](emptyAt(stmtPos(c.in.Stmt)))
			} else {
				// Keep the rhs for its effects; drop only the store.
				o.a.exprSet[c.in.Assign](c.in.Assign.R)
			}
			o.st.Stores++
		case StoreDeclInit:
			c.in.Decl.Init = nil
			o.st.Inits++
		}
		n++
	}
	return n
}

// ---- Pass 3: copy propagation ----

// kindCompatCopy reports whether reading w instead of v yields an
// identical value given that v was assigned w's value: storing into v must
// be an identity conversion for every value w's cell can hold.
func kindCompatCopy(v, w *minic.Type) bool {
	if v.Kind == w.Kind {
		return true
	}
	switch v.Kind {
	case minic.TypeLong:
		return w.Kind == minic.TypeChar || w.Kind == minic.TypeInt
	case minic.TypeInt:
		return w.Kind == minic.TypeChar
	case minic.TypeDouble:
		return w.Kind == minic.TypeFloat
	}
	return false
}

func (o *optimizer) copyPropPass() int {
	o.build(false)
	defCount := map[*Var]int{}
	for _, in := range o.f.instrs {
		switch in.Op {
		case OpStore, OpDeclZero, OpParam:
			defCount[in.Var]++
		}
	}
	n := 0
	for _, S := range o.f.instrs {
		if S.Op != OpStore || len(S.Args) == 0 {
			continue
		}
		ld := S.Args[0]
		if ld == nil || ld.Op != OpLoad || ld.Var == S.Var || len(ld.Args) == 0 {
			continue
		}
		w := ld.Var
		wdef := ld.Args[0]
		if wdef == nil || defCount[w] != 1 {
			continue
		}
		// The source's single definition must not be able to re-execute
		// between the copy and its uses; outside any loop (or a parameter)
		// it runs at most once per call.
		if wdef.Op != OpParam {
			if wdef.Stmt == nil || o.a.loopDepth[wdef.Stmt] != 0 {
				continue
			}
		}
		if !kindCompatCopy(S.Var.Type, w.Type) {
			continue
		}
		var wdefRegion *minic.PragmaStmt
		if wdef.Stmt != nil {
			wdefRegion = o.a.regionOf[wdef.Stmt]
		}
		for _, L := range o.f.instrs {
			if L.Op != OpLoad || L.Var != S.Var || len(L.Args) == 0 || L.Args[0] != S {
				continue
			}
			id, ok := L.Expr.(*minic.Ident)
			if !ok {
				continue
			}
			// Never introduce a cross-region reference: kernel frames bind
			// only the symbols captured at translate time.
			if L.Stmt == nil || o.a.regionOf[L.Stmt] != wdefRegion {
				continue
			}
			id.Name = w.Sym.Name
			id.Sym = w.Sym
			id.SetType(w.Sym.Type)
			o.st.Copies++
			n++
		}
	}
	return n
}

// ---- Pass 4: common-subexpression elimination ----

// valueKind computes the runtime Value kind an instruction always
// produces, mirroring the interpreter's promotion rules. ok is false when
// the kind is not provable (then no temp may be typed for it).
func valueKind(in *Instr) (ConstKind, bool) {
	switch in.Op {
	case OpConst:
		return in.Val.Kind, true
	case OpLoad:
		if len(in.Args) == 0 || in.Args[0] == nil {
			return 0, false
		}
		switch in.Args[0].Op {
		case OpPhi:
			return 0, false
		case OpDeclZero:
			// An uninitialized cell reads as the zero Value: an int 0,
			// regardless of the declared type.
			return ConstInt, true
		}
		if in.Var.Type.Kind == minic.TypeFloat || in.Var.Type.Kind == minic.TypeDouble {
			return ConstFloat, true
		}
		return ConstInt, true
	case OpUnary:
		if in.OpStr == "-" {
			return valueKind(in.Args[0])
		}
		return ConstInt, true
	case OpBinary:
		switch in.OpStr {
		case "==", "!=", "<", ">", "<=", ">=", "<<", ">>", "&", "|", "^":
			return ConstInt, true
		case "%":
			// Modulo is int-only in the interpreter; float operands error.
			lk, lok := valueKind(in.Args[0])
			rk, rok := valueKind(in.Args[1])
			if lok && rok && lk == ConstInt && rk == ConstInt {
				return ConstInt, true
			}
			return 0, false
		case "+", "-", "*", "/":
			lk, lok := valueKind(in.Args[0])
			rk, rok := valueKind(in.Args[1])
			if !lok || !rok {
				return 0, false
			}
			if lk == ConstFloat || rk == ConstFloat {
				return ConstFloat, true
			}
			return ConstInt, true
		}
		return 0, false
	case OpCast:
		if in.To == nil {
			return 0, false
		}
		switch in.To.Kind {
		case minic.TypeChar, minic.TypeInt, minic.TypeLong:
			return ConstInt, true
		case minic.TypeFloat, minic.TypeDouble:
			return ConstFloat, true
		}
		return 0, false
	case OpCall:
		if _, ok := pureFn1[in.OpStr]; ok {
			return ConstFloat, true
		}
		if _, ok := pureFn2[in.OpStr]; ok {
			return ConstFloat, true
		}
		switch in.OpStr {
		case "abs", "isdigit", "isalpha", "isalnum", "isspace", "tolower", "toupper":
			return ConstInt, true
		}
	}
	return 0, false
}

func tempType(k ConstKind) *minic.Type {
	if k == ConstFloat {
		return minic.DoubleType
	}
	return minic.LongType
}

type pendingInsert struct {
	anchor minic.Stmt
	decl   minic.Stmt
}

// applyInserts splices queued declarations in front of their anchors.
// Block-resident anchors are handled back-to-front so recorded indices
// stay valid; other anchors are wrapped in a synthetic block (reused when
// several declarations target the same anchor).
func (o *optimizer) applyInserts(pending []pendingInsert) {
	type slotted struct {
		pendingInsert
		slot blockSlot
		seq  int
	}
	var inBlock []slotted
	var wrapped []pendingInsert
	for i, p := range pending {
		if slot, ok := o.a.blockPos[p.anchor]; ok {
			inBlock = append(inBlock, slotted{p, slot, i})
		} else {
			wrapped = append(wrapped, p)
		}
	}
	sort.Slice(inBlock, func(i, j int) bool {
		if inBlock[i].slot.blk != inBlock[j].slot.blk {
			return o.a.blockOrder[inBlock[i].slot.blk] < o.a.blockOrder[inBlock[j].slot.blk]
		}
		if inBlock[i].slot.idx != inBlock[j].slot.idx {
			return inBlock[i].slot.idx > inBlock[j].slot.idx
		}
		return inBlock[i].seq > inBlock[j].seq
	})
	for _, s := range inBlock {
		blk := s.slot.blk
		blk.Stmts = append(blk.Stmts, nil)
		copy(blk.Stmts[s.slot.idx+1:], blk.Stmts[s.slot.idx:])
		blk.Stmts[s.slot.idx] = s.decl
	}
	wraps := map[minic.Stmt]*minic.Block{}
	for _, p := range wrapped {
		if wb, ok := wraps[p.anchor]; ok {
			wb.Stmts = append([]minic.Stmt{p.decl}, wb.Stmts...)
			continue
		}
		set, ok := o.a.stmtSet[p.anchor]
		if !ok || o.a.protected[p.anchor] {
			continue
		}
		wrap := &minic.Block{Stmts: []minic.Stmt{p.decl, p.anchor}}
		wrap.Pos = stmtPos(p.anchor)
		set(wrap)
		wraps[p.anchor] = wrap
	}
}

func (o *optimizer) newTempDecl(prefix string, ty *minic.Type, init minic.Expr, pos minic.Pos) (*minic.Symbol, *minic.DeclStmt) {
	name := fmt.Sprintf("__%s%d", prefix, *o.temp)
	*o.temp = *o.temp + 1
	sym := &minic.Symbol{Name: name, Kind: minic.SymVar, Type: ty}
	decl := &minic.DeclStmt{Decls: []*minic.Declarator{{Name: name, Type: ty, Init: init, Sym: sym}}}
	decl.Pos = pos
	return sym, decl
}

func identRead(sym *minic.Symbol, staticType *minic.Type, pos minic.Pos) *minic.Ident {
	id := &minic.Ident{Name: sym.Name, Sym: sym}
	id.Pos = pos
	id.SetType(staticType)
	return id
}

func (o *optimizer) csePass() int {
	o.build(true)
	// Value numbers over SSA: identical numbers mean identical runtime
	// values wherever both expressions are evaluated with the same
	// reaching definitions.
	vn := map[*Instr]string{}
	num := func(in *Instr) string {
		key := func(op string) string {
			k := op
			for _, a := range in.Args {
				if a == nil {
					return fmt.Sprintf("q:%d", in.ID)
				}
				k += "," + vn[a]
			}
			return k
		}
		switch in.Op {
		case OpConst:
			if in.Val.Kind == ConstFloat {
				return fmt.Sprintf("k:f%x", in.Val.F)
			}
			return fmt.Sprintf("k:i%d", in.Val.I)
		case OpLoad:
			if len(in.Args) > 0 && in.Args[0] != nil {
				return fmt.Sprintf("d:%d", in.Args[0].ID)
			}
		case OpUnary:
			return key("u:" + in.OpStr)
		case OpBinary:
			if in.OpStr == "/" || in.OpStr == "%" {
				if c, ok := o.s.ConstOf(in.Args[1]); !ok || !c.Truthy() {
					break // may trap; never share
				}
			}
			return key("b:" + in.OpStr)
		case OpCast:
			if in.To != nil && scalarKind(in.To.Kind) {
				return key(fmt.Sprintf("c:%d", in.To.Kind))
			}
		case OpCall:
			if in.Pure {
				return key("f:" + in.OpStr)
			}
		}
		return fmt.Sprintf("q:%d", in.ID)
	}
	classes := map[string][]*Instr{}
	var classOrder []string
	for _, in := range o.f.instrs {
		v := num(in)
		vn[in] = v
		switch in.Op {
		case OpUnary, OpBinary, OpCast, OpCall:
			if v[0] != 'q' {
				if len(classes[v]) == 0 {
					classOrder = append(classOrder, v)
				}
				classes[v] = append(classes[v], in)
			}
		}
	}

	dirty := map[minic.Expr]bool{}
	markDirty := func(e minic.Expr) {
		walkAllExprs(e, func(x minic.Expr) { dirty[x] = true })
	}
	isDirty := func(e minic.Expr) bool {
		found := false
		walkAllExprs(e, func(x minic.Expr) {
			if dirty[x] {
				found = true
			}
		})
		return found
	}

	// eligible vets one instruction for sharing: a rewritable expression in
	// reachable code whose operand loads are all available immediately
	// before its statement (concrete non-phi definitions from earlier
	// statements), anchored to a statement that executes exactly once per
	// evaluation of the expression.
	eligible := func(in *Instr) bool {
		if in.Expr == nil || in.Stmt == nil || !o.s.Reachable(in.Block) {
			return false
		}
		if _, ok := o.a.exprSet[in.Expr]; !ok {
			return false
		}
		switch in.Stmt.(type) {
		case *minic.While, *minic.For:
			// Condition/post expressions evaluate once per iteration while
			// a hoisted temp would not.
			return false
		}
		if isDirty(in.Expr) {
			return false
		}
		ok := true
		var walk func(x *Instr)
		seen := map[*Instr]bool{}
		walk = func(x *Instr) {
			if x == nil || seen[x] || !ok {
				return
			}
			seen[x] = true
			if x.Op == OpLoad {
				d := x.Args[0]
				if d == nil || d.Op == OpPhi || (d.Stmt != nil && d.Stmt == in.Stmt) {
					ok = false
				}
				return
			}
			for _, a := range x.Args {
				walk(a)
			}
		}
		walk(in)
		return ok
	}

	weight := func(in *Instr) bool {
		ops, call := 0, false
		var walk func(x *Instr)
		walk = func(x *Instr) {
			if x == nil {
				return
			}
			switch x.Op {
			case OpUnary, OpBinary, OpCast:
				ops++
			case OpCall:
				call = true
			case OpLoad, OpConst:
				return
			}
			for _, a := range x.Args {
				walk(a)
			}
		}
		walk(in)
		return ops >= 2 || call
	}

	var pending []pendingInsert
	n := 0
	for _, key := range classOrder {
		class := classes[key]
		if len(class) < 2 {
			continue
		}
		sort.Slice(class, func(i, j int) bool {
			bi, bj := class[i].Block, class[j].Block
			if bi != bj {
				return bi.rpo < bj.rpo
			}
			return class[i].ID < class[j].ID
		})
		var lead *Instr
		var targets []*Instr
		for _, in := range class {
			if !eligible(in) {
				continue
			}
			if lead == nil {
				lead = in
				continue
			}
			if o.a.regionOf[in.Stmt] != o.a.regionOf[lead.Stmt] {
				continue
			}
			if lead.Block == in.Block {
				if lead.ID < in.ID {
					targets = append(targets, in)
				}
			} else if dominates(lead.Block, in.Block) {
				targets = append(targets, in)
			}
		}
		if lead == nil || len(targets) == 0 || !weight(lead) {
			continue
		}
		kind, ok := valueKind(lead)
		if !ok {
			continue
		}
		ty := tempType(kind)
		pos := exprPos(lead.Expr)
		sym, decl := o.newTempDecl("cse", ty, lead.Expr, pos)
		pending = append(pending, pendingInsert{anchor: lead.Stmt, decl: decl})
		markDirty(lead.Expr)
		o.a.exprSet[lead.Expr](identRead(sym, lead.Expr.Type(), pos))
		for _, t := range targets {
			markDirty(t.Expr)
			id := identRead(sym, t.Expr.Type(), exprPos(t.Expr))
			dirty[id] = true
			o.a.exprSet[t.Expr](id)
		}
		o.st.CSE++
		n++
	}
	o.applyInserts(pending)
	return n
}

// ---- Pass 5: loop-invariant code motion ----

func (o *optimizer) licmPass() int {
	o.a = indexAST(o.fn)
	demoted := demotedSyms(o.fn)

	var loops []minic.Stmt
	walkStmts(o.fn.Body, func(s minic.Stmt) {
		switch s.(type) {
		case *minic.While, *minic.For:
			if _, ok := o.a.stmtSet[s]; ok {
				loops = append(loops, s)
			}
		}
	})

	var pending []pendingInsert
	n := 0
	// Reverse pre-order processes inner loops before the loops containing
	// them, so inner hoists become assignments the outer scan respects.
	for i := len(loops) - 1; i >= 0; i-- {
		n += o.licmLoop(loops[i], demoted, &pending)
	}
	o.applyInserts(pending)
	return n
}

// assignedSyms collects every symbol written or declared anywhere in the
// loop subtree (including pragma regions, conservatively).
func assignedSyms(loop minic.Stmt) map[*minic.Symbol]bool {
	out := map[*minic.Symbol]bool{}
	record := func(e minic.Expr) {
		if id, ok := e.(*minic.Ident); ok && id.Sym != nil {
			out[id.Sym] = true
		}
	}
	walkStmts(loop, func(s minic.Stmt) {
		if ds, ok := s.(*minic.DeclStmt); ok {
			for _, d := range ds.Decls {
				if d.Sym != nil {
					out[d.Sym] = true
				}
			}
		}
		forEachExprIn(s, func(top minic.Expr) {
			walkAllExprs(top, func(e minic.Expr) {
				switch x := e.(type) {
				case *minic.Assign:
					record(x.L)
				case *minic.Unary:
					if x.Op == "++" || x.Op == "--" {
						record(x.X)
					}
				case *minic.Postfix:
					record(x.X)
				}
			})
		})
	})
	return out
}

func (o *optimizer) licmLoop(loop minic.Stmt, demoted map[*minic.Symbol]bool, pending *[]pendingInsert) int {
	assigned := assignedSyms(loop)

	var invariant func(e minic.Expr) bool
	invariant = func(e minic.Expr) bool {
		switch x := e.(type) {
		case *minic.IntLit, *minic.FloatLit, *minic.CharLit:
			return true
		case *minic.Ident:
			return x.Sym != nil && !x.Sym.Global &&
				(x.Sym.Kind == minic.SymVar || x.Sym.Kind == minic.SymParam) &&
				x.Sym.Type != nil && scalarKind(x.Sym.Type.Kind) &&
				!demoted[x.Sym] && !assigned[x.Sym]
		case *minic.Unary:
			switch x.Op {
			case "-", "!", "~":
				return invariant(x.X)
			}
			return false
		case *minic.Binary:
			switch x.Op {
			case "&&", "||":
				return false // lazily evaluated; keep shape
			case "/", "%":
				c, ok := litConst(x.R)
				if !ok || !c.Truthy() {
					return false // divisor must be a provably-nonzero literal
				}
			}
			return invariant(x.L) && invariant(x.R)
		case *minic.Call:
			if !x.Builtin || !pureBuiltins[x.Name] {
				return false
			}
			for _, a := range x.Args {
				if !invariant(a) {
					return false
				}
			}
			return true
		case *minic.Cast:
			return x.To != nil && scalarKind(x.To.Kind) && invariant(x.X)
		}
		return false
	}

	// kindCertain proves the runtime Value kind of an invariant expression.
	// A float-typed variable is uncertain (an uninitialized cell reads as
	// an int zero); certainty flows back through float promotion.
	var kindCertain func(e minic.Expr) (ConstKind, bool)
	kindCertain = func(e minic.Expr) (ConstKind, bool) {
		switch x := e.(type) {
		case *minic.IntLit, *minic.CharLit:
			return ConstInt, true
		case *minic.FloatLit:
			return ConstFloat, true
		case *minic.Ident:
			switch x.Sym.Type.Kind {
			case minic.TypeChar, minic.TypeInt, minic.TypeLong:
				return ConstInt, true
			}
			return ConstFloat, false
		case *minic.Unary:
			if x.Op == "-" {
				return kindCertain(x.X)
			}
			return ConstInt, true
		case *minic.Binary:
			switch x.Op {
			case "==", "!=", "<", ">", "<=", ">=", "<<", ">>", "&", "|", "^":
				return ConstInt, true
			case "%":
				lk, lok := kindCertain(x.L)
				rk, rok := kindCertain(x.R)
				if lok && rok && lk == ConstInt && rk == ConstInt {
					return ConstInt, true
				}
				return 0, false
			case "+", "-", "*", "/":
				lk, lok := kindCertain(x.L)
				rk, rok := kindCertain(x.R)
				if (lok && lk == ConstFloat) || (rok && rk == ConstFloat) {
					return ConstFloat, true // promotion decides regardless
				}
				if lok && rok {
					return ConstInt, true
				}
				return 0, false
			}
			return 0, false
		case *minic.Call:
			if _, ok := pureFn1[x.Name]; ok {
				return ConstFloat, true
			}
			if _, ok := pureFn2[x.Name]; ok {
				return ConstFloat, true
			}
			return ConstInt, true // abs/ctype helpers
		case *minic.Cast:
			switch x.To.Kind {
			case minic.TypeFloat, minic.TypeDouble:
				return ConstFloat, true
			}
			return ConstInt, true
		}
		return 0, false
	}

	weight := func(e minic.Expr) bool {
		ops, call, nodes := 0, false, 0
		walkAllExprs(e, func(x minic.Expr) {
			nodes++
			switch x.(type) {
			case *minic.Unary, *minic.Binary, *minic.Cast:
				ops++
			case *minic.Call:
				call = true
			}
		})
		return call || (ops >= 1 && nodes >= 3)
	}

	// Collect maximal invariant subexpressions, keyed structurally.
	type group struct {
		exprs []minic.Expr
	}
	groups := map[string]*group{}
	var order []string
	var scanExpr func(e minic.Expr)
	scanExpr = func(e minic.Expr) {
		if e == nil || isLiteral(e) {
			return
		}
		if _, ok := o.a.exprSet[e]; ok && invariant(e) && weight(e) {
			if _, certain := kindCertain(e); certain {
				k := exprKey(e)
				g := groups[k]
				if g == nil {
					g = &group{}
					groups[k] = g
					order = append(order, k)
				}
				g.exprs = append(g.exprs, e)
				return
			}
		}
		switch x := e.(type) {
		case *minic.Unary:
			scanExpr(x.X)
		case *minic.Postfix:
			scanExpr(x.X)
		case *minic.Binary:
			scanExpr(x.L)
			scanExpr(x.R)
		case *minic.Assign:
			scanExpr(x.L)
			scanExpr(x.R)
		case *minic.Cond:
			scanExpr(x.C)
			scanExpr(x.T)
			scanExpr(x.F)
		case *minic.Call:
			if x.Name != "__sizeof_var" {
				for _, a := range x.Args {
					scanExpr(a)
				}
			}
		case *minic.Index:
			scanExpr(x.X)
			scanExpr(x.Idx)
		case *minic.Cast:
			scanExpr(x.X)
		}
	}
	var scanStmt func(s minic.Stmt)
	scanStmt = func(s minic.Stmt) {
		switch st := s.(type) {
		case nil:
		case *minic.PragmaStmt:
			// Never hoist across a region boundary: the kernel executes
			// only the region, where an outside temp would be unbound.
		case *minic.Block:
			for _, inner := range st.Stmts {
				scanStmt(inner)
			}
		case *minic.If:
			scanExpr(st.Cond)
			scanStmt(st.Then)
			scanStmt(st.Else)
		case *minic.While:
			scanExpr(st.Cond)
			scanStmt(st.Body)
		case *minic.For:
			scanStmt(st.Init)
			scanExpr(st.Cond)
			scanExpr(st.Post)
			scanStmt(st.Body)
		default:
			forEachExprIn(s, scanExpr)
		}
	}
	switch l := loop.(type) {
	case *minic.While:
		scanExpr(l.Cond)
		scanStmt(l.Body)
	case *minic.For:
		scanExpr(l.Cond)
		scanExpr(l.Post)
		scanStmt(l.Body)
	}

	n := 0
	for _, k := range order {
		g := groups[k]
		first := g.exprs[0]
		kind, _ := kindCertain(first)
		ty := tempType(kind)
		pos := stmtPos(loop)
		sym, decl := o.newTempDecl("licm", ty, cloneExpr(first), pos)
		*pending = append(*pending, pendingInsert{anchor: loop, decl: decl})
		for _, e := range g.exprs {
			o.a.exprSet[e](identRead(sym, e.Type(), exprPos(e)))
		}
		o.st.LICM++
		n++
	}
	return n
}
