package ir

import (
	"math"

	"repro/internal/minic"
)

// Const is an abstract interpreter value restricted to the scalar kinds
// the optimizer folds: int64 (covering char/int/long) and float64
// (covering float/double). Pointers are never constant here. Every
// operation in this file replicates internal/interp's semantics bit for
// bit: int64 wraparound, shift-count masking with &63, float promotion
// when either operand is float, float32/int32 storage truncation in
// convert, and strictly *no* result for division or modulo by zero (the
// interpreter raises a runtime error there, which folding must preserve
// by leaving the expression alone).

// ConstKind discriminates Const.
type ConstKind int

// Const kinds.
const (
	ConstInt ConstKind = iota
	ConstFloat
)

// Const is a compile-time scalar value.
type Const struct {
	Kind ConstKind
	I    int64
	F    float64
}

// IntConst makes an integer constant.
func IntConst(i int64) Const { return Const{Kind: ConstInt, I: i} }

// FloatConst makes a float constant.
func FloatConst(f float64) Const { return Const{Kind: ConstFloat, F: f} }

// AsInt mirrors interp.Value.AsInt for non-pointer values.
func (c Const) AsInt() int64 {
	if c.Kind == ConstFloat {
		return int64(c.F)
	}
	return c.I
}

// AsFloat mirrors interp.Value.AsFloat.
func (c Const) AsFloat() float64 {
	if c.Kind == ConstFloat {
		return c.F
	}
	return float64(c.I)
}

// Truthy mirrors interp.Value.Truthy.
func (c Const) Truthy() bool {
	if c.Kind == ConstFloat {
		return c.F != 0
	}
	return c.I != 0
}

// Equal reports exact equality (same kind and same bits; NaN != NaN so a
// NaN constant never merges, which only costs precision, not soundness).
func (c Const) Equal(d Const) bool {
	if c.Kind != d.Kind {
		return false
	}
	if c.Kind == ConstFloat {
		return c.F == d.F
	}
	return c.I == d.I
}

func boolConst(b bool) Const {
	if b {
		return IntConst(1)
	}
	return IntConst(0)
}

// foldBinary applies a non-short-circuit binary operator to constants.
// ok is false when the operation cannot be folded (unknown operator, or a
// division/modulo that would trap).
func foldBinary(op string, l, r Const) (Const, bool) {
	if l.Kind == ConstFloat || r.Kind == ConstFloat {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch op {
		case "+":
			return FloatConst(lf + rf), true
		case "-":
			return FloatConst(lf - rf), true
		case "*":
			return FloatConst(lf * rf), true
		case "/":
			if rf == 0 {
				return Const{}, false // runtime error; never fold
			}
			return FloatConst(lf / rf), true
		case "==":
			return boolConst(lf == rf), true
		case "!=":
			return boolConst(lf != rf), true
		case "<":
			return boolConst(lf < rf), true
		case ">":
			return boolConst(lf > rf), true
		case "<=":
			return boolConst(lf <= rf), true
		case ">=":
			return boolConst(lf >= rf), true
		}
		return Const{}, false
	}
	li, ri := l.AsInt(), r.AsInt()
	switch op {
	case "+":
		return IntConst(li + ri), true
	case "-":
		return IntConst(li - ri), true
	case "*":
		return IntConst(li * ri), true
	case "/":
		if ri == 0 {
			return Const{}, false
		}
		return IntConst(li / ri), true
	case "%":
		if ri == 0 {
			return Const{}, false
		}
		return IntConst(li % ri), true
	case "<<":
		return IntConst(li << uint(ri&63)), true
	case ">>":
		return IntConst(li >> uint(ri&63)), true
	case "&":
		return IntConst(li & ri), true
	case "|":
		return IntConst(li | ri), true
	case "^":
		return IntConst(li ^ ri), true
	case "==", "!=", "<", ">", "<=", ">=":
		switch op {
		case "==":
			return boolConst(li == ri), true
		case "!=":
			return boolConst(li != ri), true
		case "<":
			return boolConst(li < ri), true
		case ">":
			return boolConst(li > ri), true
		case "<=":
			return boolConst(li <= ri), true
		default:
			return boolConst(li >= ri), true
		}
	}
	return Const{}, false
}

// foldUnary applies -, ! or ~.
func foldUnary(op string, v Const) (Const, bool) {
	switch op {
	case "-":
		if v.Kind == ConstFloat {
			return FloatConst(-v.F), true
		}
		return IntConst(-v.AsInt()), true
	case "!":
		return boolConst(!v.Truthy()), true
	case "~":
		return IntConst(^v.AsInt()), true
	}
	return Const{}, false
}

// foldConvert mirrors interp's convertFor storage truncation for the
// scalar kinds. Pointer and aggregate targets are not foldable.
func foldConvert(t *minic.Type, v Const) (Const, bool) {
	if t == nil {
		return v, true
	}
	switch t.Kind {
	case minic.TypeChar:
		return IntConst(int64(byte(v.AsInt()))), true
	case minic.TypeInt:
		return IntConst(int64(int32(v.AsInt()))), true
	case minic.TypeLong:
		return IntConst(v.AsInt()), true
	case minic.TypeFloat:
		return FloatConst(float64(float32(v.AsFloat()))), true
	case minic.TypeDouble:
		return FloatConst(v.AsFloat()), true
	}
	return Const{}, false
}

var pureFn1 = map[string]func(float64) float64{
	"sqrt": math.Sqrt, "fabs": math.Abs, "exp": math.Exp, "log": math.Log,
	"log2": math.Log2, "floor": math.Floor, "ceil": math.Ceil,
	"erf": math.Erf, "sin": math.Sin, "cos": math.Cos,
}

var pureFn2 = map[string]func(a, b float64) float64{
	"pow": math.Pow, "fmin": math.Min, "fmax": math.Max,
}

// foldCall folds the pure math builtins using the identical Go functions
// the interpreter stdlib binds, plus abs and the ctype/char helpers.
func foldCall(name string, args []Const) (Const, bool) {
	if f, ok := pureFn1[name]; ok && len(args) == 1 {
		return FloatConst(f(args[0].AsFloat())), true
	}
	if f, ok := pureFn2[name]; ok && len(args) == 2 {
		return FloatConst(f(args[0].AsFloat(), args[1].AsFloat())), true
	}
	if len(args) != 1 {
		return Const{}, false
	}
	c := byte(args[0].AsInt())
	switch name {
	case "abs":
		v := args[0].AsInt()
		if v < 0 {
			v = -v
		}
		return IntConst(v), true
	case "isdigit":
		return boolConst(c >= '0' && c <= '9'), true
	case "isalpha":
		return boolConst((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')), true
	case "isalnum":
		return boolConst((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')), true
	case "isspace":
		return boolConst(c == ' ' || c == '\t' || c == '\n' || c == '\r'), true
	case "tolower":
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		return IntConst(int64(c)), true
	case "toupper":
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		return IntConst(int64(c)), true
	}
	return Const{}, false
}
