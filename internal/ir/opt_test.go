package ir

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/minic"
)

// runProg executes a program and returns its stdout, exit code, and error.
func runProg(t *testing.T, prog *minic.Program) (string, int, error) {
	t.Helper()
	var out bytes.Buffer
	m := interp.New(prog, interp.Options{Stdout: &out})
	code, err := m.Run()
	return out.String(), code, err
}

// optEquiv checks that optimizing src leaves observable behavior
// byte-identical, and returns the optimizer stats.
func optEquiv(t *testing.T, src string) *Stats {
	t.Helper()
	ref, err := minic.ParseAndCheck(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	refOut, refCode, refErr := runProg(t, ref)

	opt, err := minic.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	st := OptimizeProgram(opt)
	optOut, optCode, optErr := runProg(t, opt)

	if refOut != optOut {
		t.Fatalf("output changed after optimization:\nref: %q\nopt: %q\nstats: %v", refOut, optOut, st)
	}
	if refCode != optCode {
		t.Fatalf("exit code changed: ref %d, opt %d", refCode, optCode)
	}
	if (refErr == nil) != (optErr == nil) {
		t.Fatalf("error behavior changed: ref %v, opt %v", refErr, optErr)
	}
	return st
}

func TestFoldConstantExpressions(t *testing.T) {
	st := optEquiv(t, `
int main() {
	int a = 6 * 7;
	int b = a + 1;
	printf("%d %d\n", a, b);
	return 0;
}`)
	if st.Folded == 0 {
		t.Fatalf("expected constant folding, stats %v", st)
	}
	if st.NodesAfter >= st.NodesBefore {
		t.Fatalf("optimization should shrink the AST: %d -> %d", st.NodesBefore, st.NodesAfter)
	}
}

func TestSimplifyConstantBranch(t *testing.T) {
	st := optEquiv(t, `
int main() {
	int flag = 0;
	if (flag) { printf("never\n"); } else { printf("always\n"); }
	return 0;
}`)
	if st.Branches == 0 {
		t.Fatalf("expected branch simplification, stats %v", st)
	}
}

func TestDeadStoreElimination(t *testing.T) {
	st := optEquiv(t, `
int main() {
	int unused = 5;
	int x = 1;
	x = 2;
	x = 3;
	printf("%d\n", x);
	return 0;
}`)
	if st.Stores+st.Inits == 0 {
		t.Fatalf("expected dead stores removed, stats %v", st)
	}
}

// Deleting a dead init must not change what surviving dead code computes:
// here `y /= x` must keep x's initializer alive (or be removed together),
// or the program would start trapping on a zero divisor.
func TestDSEKeepsTrapSafety(t *testing.T) {
	optEquiv(t, `
int main() {
	int x = 5;
	int y = 10;
	y = y / x;
	printf("ok\n");
	return 0;
}`)
}

func TestCSESharesRepeatedComputation(t *testing.T) {
	st := optEquiv(t, `
int getval() { return 3; }
int main() {
	int v = getval();
	int a = v * 100 + 7;
	int b = v * 100 + 7;
	printf("%d %d\n", a, b);
	return 0;
}`)
	if st.CSE == 0 {
		t.Fatalf("expected a shared subexpression, stats %v", st)
	}
}

func TestLICMHoistsInvariant(t *testing.T) {
	st := optEquiv(t, `
int getval() { return 7; }
int main() {
	int n = getval() + 3;
	int m = getval() + 5;
	long s = 0;
	int i = 0;
	while (i < 10) {
		s = s + (n * m + 1);
		i = i + 1;
	}
	printf("%ld\n", s);
	return 0;
}`)
	if st.LICM == 0 {
		t.Fatalf("expected loop-invariant hoisting, stats %v", st)
	}
}

// Division and modulo by a maybe-zero divisor must never be folded,
// deleted, or hoisted: the runtime error is part of the semantics.
func TestNoFoldOfTrappingDivision(t *testing.T) {
	src := `
int main() {
	int z = 0;
	int y = 10 / z;
	printf("%d\n", y);
	return 0;
}`
	ref, err := minic.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	_, _, refErr := runProg(t, ref)
	if refErr == nil {
		t.Fatal("reference should trap on division by zero")
	}
	opt, _ := minic.ParseAndCheck(src)
	OptimizeProgram(opt)
	_, _, optErr := runProg(t, opt)
	if optErr == nil {
		t.Fatal("optimized program must still trap on division by zero")
	}
}

// Short-circuit evaluation: the right side's side effects must survive
// exactly when the left side does not decide.
func TestShortCircuitPreserved(t *testing.T) {
	optEquiv(t, `
int inc(int x) { printf("side\n"); return x + 1; }
int getval() { return 1; }
int main() {
	int a = 0;
	if (getval() > 0 && inc(a) > 0) { printf("taken\n"); }
	if (0 && inc(a) > 0) { printf("not\n"); }
	return 0;
}`)
}

// Compound assignments and increments are never deleted even when the
// final value is unused, because their AST carries the old-value read.
func TestCompoundStoresSurvive(t *testing.T) {
	optEquiv(t, `
int main() {
	int x = 1;
	x += 2;
	x++;
	printf("%d\n", x);
	return 0;
}`)
}

// Storage truncation: int stores truncate to 32 bits; folding must
// replicate the exact wraparound.
func TestFoldMatchesStorageTruncation(t *testing.T) {
	optEquiv(t, `
int main() {
	int x = 2147483647;
	x = x + 1;
	long y = 4294967296 + 5;
	printf("%d %ld\n", x, y);
	return 0;
}`)
}

// Float semantics: promotion, float32 truncation on store, and math
// builtin folding must match the interpreter bit for bit.
func TestFloatFolding(t *testing.T) {
	optEquiv(t, `
int main() {
	float f = 1.1;
	double d = f + 2.5;
	double r = sqrt(16.0) + pow(2.0, 10.0);
	printf("%f %f\n", d, r);
	return 0;
}`)
}

// Arrays and pointers stay untouched: subscripts can trap, so loads and
// stores through them are liveness roots.
func TestArraysUntouched(t *testing.T) {
	optEquiv(t, `
int main() {
	int a[4];
	int i = 0;
	while (i < 4) { a[i] = i * i; i = i + 1; }
	int dead = a[2];
	printf("%d %d\n", a[1], a[3]);
	return 0;
}`)
}

// An uninitialized cell reads as integer zero regardless of declared
// type; optimization must not change that observable kind.
func TestUninitializedReadsSurvive(t *testing.T) {
	optEquiv(t, `
int main() {
	double d;
	long x;
	printf("%f %ld\n", d + 0.5, x + 1);
	return 0;
}`)
}

func TestCopyPropagation(t *testing.T) {
	st := optEquiv(t, `
int getval() { return 4; }
int main() {
	int base = getval() * 10;
	int alias = base;
	printf("%d %d %d\n", alias + 1, alias + 2, base);
	return 0;
}`)
	if st.Copies == 0 {
		t.Fatalf("expected copy propagation, stats %v", st)
	}
}

func TestUnreachableAfterReturnTrimmed(t *testing.T) {
	st := optEquiv(t, `
int main() {
	printf("live\n");
	return 0;
	printf("dead\n");
	return 1;
}`)
	if st.Trimmed == 0 {
		t.Fatalf("expected unreachable trim, stats %v", st)
	}
}

// The optimizer is deterministic: optimizing the same source twice gives
// structurally identical programs (same stats, same node counts).
func TestOptimizeDeterministic(t *testing.T) {
	src := `
int getval() { return 5; }
int main() {
	int v = getval();
	int n = v * 3 + 4;
	int m = v * 3 + 4;
	long s = 0;
	int i = 0;
	for (i = 0; i < 8; i++) {
		s = s + n * m;
	}
	if (1 == 2) { printf("no\n"); }
	printf("%ld %d %d\n", s, n, m);
	return 0;
}`
	p1, _ := minic.ParseAndCheck(src)
	p2, _ := minic.ParseAndCheck(src)
	s1 := OptimizeProgram(p1)
	s2 := OptimizeProgram(p2)
	if s1.String() != s2.String() {
		t.Fatalf("non-deterministic stats:\n%v\n%v", s1, s2)
	}
	var o1, o2 bytes.Buffer
	m1 := interp.New(p1, interp.Options{Stdout: &o1})
	m2 := interp.New(p2, interp.Options{Stdout: &o2})
	if _, err := m1.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if o1.String() != o2.String() {
		t.Fatal("outputs differ between identical optimizations")
	}
}

// The headline claim: optimization reduces the interpreter's virtual cost
// on a loop-heavy program.
func TestOptimizationReducesCost(t *testing.T) {
	src := `
int getval() { return 9; }
int main() {
	int v = getval();
	int scale = v * 31 + 7;
	int bias = v * 13 + 3;
	long total = 0;
	int i = 0;
	while (i < 200) {
		total = total + (scale * bias + 11) * 2;
		i = i + 1;
	}
	printf("%ld\n", total);
	return 0;
}`
	costOf := func(optimize bool) int64 {
		prog, err := minic.ParseAndCheck(src)
		if err != nil {
			t.Fatal(err)
		}
		if optimize {
			OptimizeProgram(prog)
		}
		var out bytes.Buffer
		cost := &interp.CountingSink{}
		m := interp.New(prog, interp.Options{Stdout: &out, Cost: cost})
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "\n") {
			t.Fatal("program produced no output")
		}
		return cost.Ops + cost.Loads + cost.Stores
	}
	ref := costOf(false)
	opt := costOf(true)
	if opt >= ref {
		t.Fatalf("optimization should reduce interpreter ops: %d -> %d", ref, opt)
	}
}

func TestFactsConstCondAndOOB(t *testing.T) {
	prog, err := minic.ParseAndCheck(`
int main() {
	int a[8];
	int n = 3;
	if (n > 10) { printf("no\n"); }
	a[12] = 1;
	printf("%d\n", a[0]);
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	var fn *minic.FuncDecl
	for _, f := range prog.Funcs {
		if f.Name == "main" {
			fn = f
		}
	}
	fx := AnalyzeFunc(fn)
	if len(fx.ConstConds) == 0 {
		t.Fatal("n > 10 should be a proven-constant condition")
	}
	if len(fx.Unreachable) == 0 {
		t.Fatal("the branch body should be proven unreachable")
	}
	if len(fx.OOB) != 1 || fx.OOB[0].Index != 12 || fx.OOB[0].Len != 8 {
		t.Fatalf("a[12] on int[8] should be a proven out-of-range access, got %+v", fx.OOB)
	}
}
