package ir

import (
	"fmt"
	"strings"

	"repro/internal/minic"
)

// astInfo indexes one function body for rewriting: a setter per rvalue
// expression position (so a subexpression can be replaced by a literal or
// a temp read) and a setter per replaceable statement slot (so a statement
// can be deleted, substituted, or have a declaration spliced in front of
// it). Pragma statements and their region bodies are protected: the GPU
// executor holds pointers to those exact nodes, so they are never
// replaced, only their contents are optimized.
type astInfo struct {
	exprSet map[minic.Expr]func(minic.Expr)
	stmtSet map[minic.Stmt]func(minic.Stmt)
	// blockPos locates statements directly inside a Block for cheap
	// insert-before splicing.
	blockPos map[minic.Stmt]blockSlot
	// blockOrder gives each Block a stable visit index for deterministic
	// batched insertion.
	blockOrder map[*minic.Block]int
	// protected marks statements that must never be replaced.
	protected map[minic.Stmt]bool
	// regionOf maps every statement to its innermost enclosing pragma
	// region (nil = host code). Hoists and shared temps must stay within
	// one region: the GPU path executes only the region node, so a temp
	// defined outside it would never be computed there.
	regionOf map[minic.Stmt]*minic.PragmaStmt
	// loopDepth counts enclosing While/For loops per statement; copy
	// propagation uses it to ensure a source definition cannot re-execute.
	loopDepth map[minic.Stmt]int
}

type blockSlot struct {
	blk *minic.Block
	idx int
}

func indexAST(fn *minic.FuncDecl) *astInfo {
	a := &astInfo{
		exprSet:    map[minic.Expr]func(minic.Expr){},
		stmtSet:    map[minic.Stmt]func(minic.Stmt){},
		blockPos:   map[minic.Stmt]blockSlot{},
		blockOrder: map[*minic.Block]int{},
		protected:  map[minic.Stmt]bool{},
		regionOf:   map[minic.Stmt]*minic.PragmaStmt{},
		loopDepth:  map[minic.Stmt]int{},
	}
	a.stmt(fn.Body, nil, nil, 0)
	return a
}

func (a *astInfo) stmt(s minic.Stmt, set func(minic.Stmt), region *minic.PragmaStmt, depth int) {
	if s == nil {
		return
	}
	if set != nil {
		a.stmtSet[s] = set
	}
	a.regionOf[s] = region
	a.loopDepth[s] = depth
	switch st := s.(type) {
	case *minic.Block:
		if _, ok := a.blockOrder[st]; !ok {
			a.blockOrder[st] = len(a.blockOrder)
		}
		for i := range st.Stmts {
			i := i
			a.blockPos[st.Stmts[i]] = blockSlot{st, i}
			a.stmt(st.Stmts[i], func(n minic.Stmt) { st.Stmts[i] = n }, region, depth)
		}
	case *minic.If:
		a.expr(st.Cond, func(n minic.Expr) { st.Cond = n })
		a.stmt(st.Then, func(n minic.Stmt) { st.Then = n }, region, depth)
		a.stmt(st.Else, func(n minic.Stmt) { st.Else = n }, region, depth)
	case *minic.While:
		a.expr(st.Cond, func(n minic.Expr) { st.Cond = n })
		a.stmt(st.Body, func(n minic.Stmt) { st.Body = n }, region, depth+1)
	case *minic.For:
		a.stmt(st.Init, func(n minic.Stmt) { st.Init = n }, region, depth)
		if st.Cond != nil {
			a.expr(st.Cond, func(n minic.Expr) { st.Cond = n })
		}
		if st.Post != nil {
			a.expr(st.Post, func(n minic.Expr) { st.Post = n })
		}
		a.stmt(st.Body, func(n minic.Stmt) { st.Body = n }, region, depth+1)
	case *minic.PragmaStmt:
		a.protected[st] = true
		a.protected[st.Body] = true
		if st.IsMapReduce() {
			region = st
		}
		// The body has no setter: spec.Region must keep its identity.
		a.stmt(st.Body, nil, region, depth)
	case *minic.ExprStmt:
		a.expr(st.X, func(n minic.Expr) { st.X = n })
	case *minic.DeclStmt:
		for _, d := range st.Decls {
			d := d
			if d.Init != nil {
				a.expr(d.Init, func(n minic.Expr) { d.Init = n })
			}
		}
	case *minic.Return:
		if st.X != nil {
			a.expr(st.X, func(n minic.Expr) { st.X = n })
		}
	}
}

// expr records setters for every rvalue position inside e. Lvalue
// positions (assignment targets, address-of and inc/dec operands, index
// bases used as locations) get no setter and are never replaced.
func (a *astInfo) expr(e minic.Expr, set func(minic.Expr)) {
	if e == nil {
		return
	}
	if set != nil {
		a.exprSet[e] = set
	}
	switch x := e.(type) {
	case *minic.Unary:
		switch x.Op {
		case "-", "!", "~":
			a.expr(x.X, func(n minic.Expr) { x.X = n })
		case "*":
			a.expr(x.X, func(n minic.Expr) { x.X = n })
		case "&":
			a.lvalue(x.X)
		default: // ++/--
			a.lvalue(x.X)
		}
	case *minic.Postfix:
		a.lvalue(x.X)
	case *minic.Binary:
		a.expr(x.L, func(n minic.Expr) { x.L = n })
		a.expr(x.R, func(n minic.Expr) { x.R = n })
	case *minic.Assign:
		a.lvalue(x.L)
		a.expr(x.R, func(n minic.Expr) { x.R = n })
	case *minic.Cond:
		a.expr(x.C, func(n minic.Expr) { x.C = n })
		a.expr(x.T, func(n minic.Expr) { x.T = n })
		a.expr(x.F, func(n minic.Expr) { x.F = n })
	case *minic.Call:
		if x.Name == "__sizeof_var" {
			return // takes its argument unevaluated
		}
		for i := range x.Args {
			i := i
			a.expr(x.Args[i], func(n minic.Expr) { x.Args[i] = n })
		}
	case *minic.Index:
		// The base is a location-producing expression: walk it for inner
		// rvalues (a nested index's subscript) but give the base itself
		// no setter.
		a.exprNoSet(x.X)
		a.expr(x.Idx, func(n minic.Expr) { x.Idx = n })
	case *minic.Cast:
		a.expr(x.X, func(n minic.Expr) { x.X = n })
	}
}

func (a *astInfo) exprNoSet(e minic.Expr) { a.expr(e, nil) }

// lvalue walks a location expression: only embedded subscripts and
// pointer operands are rvalues.
func (a *astInfo) lvalue(e minic.Expr) {
	switch x := e.(type) {
	case *minic.Index:
		a.exprNoSet(x.X)
		a.expr(x.Idx, func(n minic.Expr) { x.Idx = n })
	case *minic.Unary:
		if x.Op == "*" {
			a.expr(x.X, func(n minic.Expr) { x.X = n })
		}
	}
}

// insertBefore splices decl in front of s: directly when s sits in a
// Block, otherwise by wrapping s in a new two-statement Block. Both paths
// invalidate the astInfo, so callers batch insertions per pass and
// re-index afterwards. Inserts targeting the same block are applied
// back-to-front by the caller so recorded indices stay valid.
func (a *astInfo) insertBefore(s minic.Stmt, decl minic.Stmt) bool {
	if slot, ok := a.blockPos[s]; ok {
		blk := slot.blk
		blk.Stmts = append(blk.Stmts, nil)
		copy(blk.Stmts[slot.idx+1:], blk.Stmts[slot.idx:])
		blk.Stmts[slot.idx] = decl
		return true
	}
	set, ok := a.stmtSet[s]
	if !ok || a.protected[s] {
		return false
	}
	wrap := &minic.Block{Stmts: []minic.Stmt{decl, s}}
	wrap.Pos = stmtPos(s)
	set(wrap)
	return true
}

// stmtPos extracts a statement's source position.
func stmtPos(s minic.Stmt) minic.Pos {
	switch st := s.(type) {
	case *minic.Block:
		return st.Pos
	case *minic.If:
		return st.Pos
	case *minic.While:
		return st.Pos
	case *minic.For:
		return st.Pos
	case *minic.Return:
		return st.Pos
	case *minic.Break:
		return st.Pos
	case *minic.Continue:
		return st.Pos
	case *minic.ExprStmt:
		return st.Pos
	case *minic.DeclStmt:
		return st.Pos
	case *minic.EmptyStmt:
		return st.Pos
	case *minic.PragmaStmt:
		return st.Pos
	}
	return minic.Pos{}
}

// exprPos extracts an expression's source position.
func exprPos(e minic.Expr) minic.Pos {
	switch x := e.(type) {
	case *minic.IntLit:
		return x.Pos
	case *minic.FloatLit:
		return x.Pos
	case *minic.CharLit:
		return x.Pos
	case *minic.StrLit:
		return x.Pos
	case *minic.Ident:
		return x.Pos
	case *minic.Unary:
		return x.Pos
	case *minic.Postfix:
		return x.Pos
	case *minic.Binary:
		return x.Pos
	case *minic.Assign:
		return x.Pos
	case *minic.Cond:
		return x.Pos
	case *minic.Call:
		return x.Pos
	case *minic.Index:
		return x.Pos
	case *minic.Cast:
		return x.Pos
	case *minic.SizeofType:
		return x.Pos
	}
	return minic.Pos{}
}

// literalFor builds the AST literal for a constant, preserving the
// original expression's static type and position.
func literalFor(c Const, orig minic.Expr) minic.Expr {
	if c.Kind == ConstFloat {
		l := &minic.FloatLit{Value: c.F}
		l.Pos = exprPos(orig)
		l.SetType(orig.Type())
		return l
	}
	l := &minic.IntLit{Value: c.I}
	l.Pos = exprPos(orig)
	l.SetType(orig.Type())
	return l
}

func isLiteral(e minic.Expr) bool {
	switch e.(type) {
	case *minic.IntLit, *minic.FloatLit, *minic.CharLit:
		return true
	}
	return false
}

// CountNodes counts AST nodes (statements and expressions) in a program;
// the optimizer's headline statistic is nodes removed, since the
// interpreter's cost model charges per visited node.
func CountNodes(prog *minic.Program) int {
	n := 0
	count := func(fn *minic.FuncDecl) {
		walkStmts(fn.Body, func(s minic.Stmt) {
			n++
			forEachExprIn(s, func(e minic.Expr) {
				walkAllExprs(e, func(minic.Expr) { n++ })
			})
		})
	}
	for _, fn := range prog.Funcs {
		count(fn)
	}
	return n
}

func countStmtNodes(s minic.Stmt) int {
	n := 0
	walkStmts(s, func(st minic.Stmt) {
		n++
		forEachExprIn(st, func(e minic.Expr) {
			walkAllExprs(e, func(minic.Expr) { n++ })
		})
	})
	return n
}

func countExprNodes(e minic.Expr) int {
	n := 0
	walkAllExprs(e, func(minic.Expr) { n++ })
	return n
}

// forEachExprIn visits the top-level expressions attached directly to s.
func forEachExprIn(s minic.Stmt, visit func(minic.Expr)) {
	switch st := s.(type) {
	case *minic.ExprStmt:
		visit(st.X)
	case *minic.DeclStmt:
		for _, d := range st.Decls {
			if d.Init != nil {
				visit(d.Init)
			}
		}
	case *minic.If:
		visit(st.Cond)
	case *minic.While:
		visit(st.Cond)
	case *minic.For:
		if st.Cond != nil {
			visit(st.Cond)
		}
		if st.Post != nil {
			visit(st.Post)
		}
	case *minic.Return:
		if st.X != nil {
			visit(st.X)
		}
	}
}

// walkAllExprs visits e and all nested expressions.
func walkAllExprs(e minic.Expr, visit func(minic.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *minic.Unary:
		walkAllExprs(x.X, visit)
	case *minic.Postfix:
		walkAllExprs(x.X, visit)
	case *minic.Binary:
		walkAllExprs(x.L, visit)
		walkAllExprs(x.R, visit)
	case *minic.Assign:
		walkAllExprs(x.L, visit)
		walkAllExprs(x.R, visit)
	case *minic.Cond:
		walkAllExprs(x.C, visit)
		walkAllExprs(x.T, visit)
		walkAllExprs(x.F, visit)
	case *minic.Call:
		for _, a := range x.Args {
			walkAllExprs(a, visit)
		}
	case *minic.Index:
		walkAllExprs(x.X, visit)
		walkAllExprs(x.Idx, visit)
	case *minic.Cast:
		walkAllExprs(x.X, visit)
	}
}

// exprKey renders a structural key for an expression, used to deduplicate
// loop-invariant candidates. Identifiers key on symbol identity (pointer
// formatting) so shadowed names don't collide.
func exprKey(e minic.Expr) string {
	var b strings.Builder
	writeExprKey(&b, e)
	return b.String()
}

func writeExprKey(b *strings.Builder, e minic.Expr) {
	switch x := e.(type) {
	case nil:
		b.WriteString("∅")
	case *minic.IntLit:
		fmt.Fprintf(b, "i%d", x.Value)
	case *minic.FloatLit:
		fmt.Fprintf(b, "f%x", x.Value)
	case *minic.CharLit:
		fmt.Fprintf(b, "c%d", x.Value)
	case *minic.Ident:
		fmt.Fprintf(b, "v%p", x.Sym)
	case *minic.Unary:
		b.WriteString("(u")
		b.WriteString(x.Op)
		writeExprKey(b, x.X)
		b.WriteString(")")
	case *minic.Binary:
		b.WriteString("(b")
		b.WriteString(x.Op)
		writeExprKey(b, x.L)
		b.WriteString(",")
		writeExprKey(b, x.R)
		b.WriteString(")")
	case *minic.Cast:
		fmt.Fprintf(b, "(cast%v", x.To)
		writeExprKey(b, x.X)
		b.WriteString(")")
	case *minic.Call:
		b.WriteString("(call ")
		b.WriteString(x.Name)
		for _, a := range x.Args {
			b.WriteString(",")
			writeExprKey(b, a)
		}
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "?%p", e)
	}
}

// cloneExpr deep-copies an invariant expression (literals, identifiers,
// pure operators) so it can be moved into a temp initializer while the
// original occurrences are replaced. Only node kinds the invariance check
// admits need cloning.
func cloneExpr(e minic.Expr) minic.Expr {
	switch x := e.(type) {
	case *minic.IntLit:
		c := *x
		return &c
	case *minic.FloatLit:
		c := *x
		return &c
	case *minic.CharLit:
		c := *x
		return &c
	case *minic.Ident:
		c := *x
		return &c
	case *minic.Unary:
		c := *x
		c.X = cloneExpr(x.X)
		return &c
	case *minic.Binary:
		c := *x
		c.L = cloneExpr(x.L)
		c.R = cloneExpr(x.R)
		return &c
	case *minic.Cast:
		c := *x
		c.X = cloneExpr(x.X)
		return &c
	case *minic.Call:
		c := *x
		c.Args = make([]minic.Expr, len(x.Args))
		for i, a := range x.Args {
			c.Args[i] = cloneExpr(a)
		}
		return &c
	}
	return e
}
