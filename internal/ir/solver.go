package ir

// Generic dataflow framework shared by the optimizer and the lint passes.
// It operates over an abstract graph (node indices plus successor /
// predecessor lists) so it works both on ir.Func blocks and on the
// statement-granularity minic.BuildCFG blocks the HD2xx passes use. Two
// forms are provided: a lattice solver parameterized by meet/transfer,
// and a gen/kill bit-vector specialization for the common case.

// Direction selects forward or backward propagation.
type Direction int

// Dataflow directions.
const (
	Forward Direction = iota
	Backward
)

// Graph is the abstract CFG the solvers run on.
type Graph struct {
	N     int
	Succs [][]int
	Preds [][]int
}

// BlockGraph adapts an ir.Func's blocks into a Graph.
func BlockGraph(f *Func) Graph {
	g := Graph{N: len(f.Blocks), Succs: make([][]int, len(f.Blocks)), Preds: make([][]int, len(f.Blocks))}
	for i, b := range f.Blocks {
		for _, s := range b.Succs {
			g.Succs[i] = append(g.Succs[i], s.ID)
		}
		for _, p := range b.Preds {
			g.Preds[i] = append(g.Preds[i], p.ID)
		}
	}
	return g
}

// Problem is a lattice dataflow problem. Transfer must be monotone; Meet
// must be commutative and associative. Top is the initial value of every
// node's input.
type Problem[S any] struct {
	Dir      Direction
	Top      func() S
	Meet     func(a, b S) S
	Transfer func(node int, in S) S
	Equal    func(a, b S) bool
}

// Solve runs round-robin iteration to a fixpoint and returns the IN and
// OUT value per node (IN is the meet over the relevant neighbors; OUT is
// Transfer(IN)). For Backward problems, IN is the meet over successors'
// OUT — i.e. the value at the node's exit — matching the usual liveness
// formulation.
func Solve[S any](g Graph, p Problem[S]) (in, out []S) {
	in = make([]S, g.N)
	out = make([]S, g.N)
	for i := 0; i < g.N; i++ {
		in[i] = p.Top()
		out[i] = p.Transfer(i, in[i])
	}
	neighbors := g.Preds
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	if p.Dir == Backward {
		neighbors = g.Succs
		for i := range order {
			order[i] = g.N - 1 - i
		}
	}
	for changed := true; changed; {
		changed = false
		for _, i := range order {
			merged := p.Top()
			for _, nb := range neighbors[i] {
				merged = p.Meet(merged, out[nb])
			}
			in[i] = merged
			next := p.Transfer(i, merged)
			if !p.Equal(next, out[i]) {
				out[i] = next
				changed = true
			}
		}
	}
	return in, out
}

// Bits is a dense bitset used by the gen/kill solver.
type Bits []uint64

// NewBits returns a bitset sized for n bits.
func NewBits(n int) Bits { return make(Bits, (n+63)/64) }

// Set sets bit i.
func (b Bits) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (b Bits) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Get reports bit i.
func (b Bits) Get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Copy returns an independent copy.
func (b Bits) Copy() Bits {
	c := make(Bits, len(b))
	copy(c, b)
	return c
}

// Or unions o into b.
func (b Bits) Or(o Bits) {
	for i := range b {
		b[i] |= o[i]
	}
}

// AndNot clears o's bits from b.
func (b Bits) AndNot(o Bits) {
	for i := range b {
		b[i] &^= o[i]
	}
}

// EqualBits reports equality.
func EqualBits(a, b Bits) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// GenKill is a node's gen/kill pair: OUT = (IN &^ Kill) | Gen.
type GenKill struct {
	Gen, Kill Bits
}

// SolveGenKill solves a union (may-) gen/kill problem over nbits facts.
func SolveGenKill(g Graph, dir Direction, nbits int, node func(i int) GenKill) (in, out []Bits) {
	p := Problem[Bits]{
		Dir:  dir,
		Top:  func() Bits { return NewBits(nbits) },
		Meet: func(a, b Bits) Bits { c := a.Copy(); c.Or(b); return c },
		Transfer: func(i int, s Bits) Bits {
			gk := node(i)
			o := s.Copy()
			if gk.Kill != nil {
				o.AndNot(gk.Kill)
			}
			if gk.Gen != nil {
				o.Or(gk.Gen)
			}
			return o
		},
		Equal: EqualBits,
	}
	return Solve(g, p)
}
