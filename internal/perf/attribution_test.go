package perf_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/mr"
	"repro/internal/perf"
	"repro/internal/streaming"
	"repro/internal/workload"
)

// TestAttributionCoversInterpreterTime is the profiler's fidelity gate:
// on a real CPU map task (wordcount with combiner), (a) the engine-phase
// self times must telescope to cover nearly all of the measured wall
// clock, and (b) the interpreter buckets (per-statement, per-expression,
// per-builtin) must account for at least 90% of the cpu-map phase — i.e.
// the hot-path table explains where the time goes rather than leaving an
// anonymous remainder.
func TestAttributionCoversInterpreterTime(t *testing.T) {
	wc := workload.Wordcount()
	input := wc.Gen(11, 32<<10)
	prof := perf.New()
	// JobFor leaves DisableOpt false: the fidelity gate below runs against
	// the SSA-optimized program, the configuration every backend executes.
	cj, err := mr.CompileJobProf(wc.JobFor(1), prof)
	if err != nil {
		t.Fatal(err)
	}
	setup := cluster.Cluster1()
	start := time.Now()
	_, err = streaming.RunMapTask(cj.MapF, cj.CombineF, input, streaming.MapTaskConfig{
		Schema:      cj.Schema,
		NumReducers: cj.Program.NumReducers,
		CPU:         setup.CPU,
		Prof:        prof,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	snap := prof.Snapshot()

	phaseNs := snap.TotalNanos(perf.CatPhase)
	if phaseNs == 0 {
		t.Fatal("no phase buckets recorded")
	}
	// Phases open the moment RunMapTask starts, so their exclusive times
	// telescope to the call's wall clock (compile time is outside `start`).
	if frac := float64(phaseNs) / float64(elapsed.Nanoseconds()); frac < 0.90 {
		t.Errorf("phases cover %.1f%% of RunMapTask wall time, want >= 90%%", 100*frac)
	}

	var mapPhase, interpInMap int64
	for _, e := range snap.Entries() {
		switch {
		case e.Cat == perf.CatPhase && e.Name == perf.PhaseCPUMap:
			mapPhase = e.Nanos
		case e.Phase == perf.PhaseCPUMap:
			interpInMap += e.Nanos
		}
	}
	if mapPhase == 0 {
		t.Fatal("no cpu-map phase bucket")
	}
	if interpInMap == 0 {
		t.Fatal("no interpreter buckets under cpu-map")
	}
	if frac := float64(interpInMap) / float64(mapPhase); frac < 0.90 {
		t.Errorf("interpreter buckets cover %.1f%% of the cpu-map phase, want >= 90%%", 100*frac)
	}
}

// TestBytecodeCompilePhaseAttributed pins the bytecode compiler's cost
// into the phase accounting: the default build must record a non-zero
// "bytecode-compile" phase bucket, and a -novm build must record none —
// lowering to the VM is only ever charged when the VM will run.
func TestBytecodeCompilePhaseAttributed(t *testing.T) {
	wc := workload.Wordcount()

	prof := perf.New()
	if _, err := mr.CompileJobProf(wc.JobFor(1), prof); err != nil {
		t.Fatal(err)
	}
	var bcNs int64
	for _, e := range prof.Snapshot().Entries() {
		if e.Cat == perf.CatPhase && e.Name == perf.PhaseBytecodeCompile {
			bcNs += e.Nanos
		}
	}
	if bcNs <= 0 {
		t.Errorf("bytecode-compile phase bucket = %dns, want > 0 with the VM enabled", bcNs)
	}

	off := perf.New()
	job := wc.JobFor(1)
	job.DisableVM = true
	if _, err := mr.CompileJobProf(job, off); err != nil {
		t.Fatal(err)
	}
	for _, e := range off.Snapshot().Entries() {
		if e.Cat == perf.CatPhase && e.Name == perf.PhaseBytecodeCompile {
			t.Errorf("bytecode-compile phase recorded %dns with DisableVM set", e.Nanos)
		}
	}
}

// TestOptimizePhaseAttributed pins the optimizer's own cost into the
// phase accounting: compiling a job with profiling must record a non-zero
// "optimize" phase bucket, and disabling the optimizer must record none —
// so the hot-path table never hides optimizer time in an anonymous
// remainder.
func TestOptimizePhaseAttributed(t *testing.T) {
	wc := workload.Wordcount()

	prof := perf.New()
	if _, err := mr.CompileJobProf(wc.JobFor(1), prof); err != nil {
		t.Fatal(err)
	}
	var optNs int64
	for _, e := range prof.Snapshot().Entries() {
		if e.Cat == perf.CatPhase && e.Name == perf.PhaseOptimize {
			optNs += e.Nanos
		}
	}
	if optNs <= 0 {
		t.Errorf("optimize phase bucket = %dns, want > 0 with optimization enabled", optNs)
	}

	off := perf.New()
	job := wc.JobFor(1)
	job.DisableOpt = true
	if _, err := mr.CompileJobProf(job, off); err != nil {
		t.Fatal(err)
	}
	for _, e := range off.Snapshot().Entries() {
		if e.Cat == perf.CatPhase && e.Name == perf.PhaseOptimize {
			t.Errorf("optimize phase recorded %dns with DisableOpt set", e.Nanos)
		}
	}
}
