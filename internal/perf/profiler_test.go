package perf

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	if p.Enabled() {
		t.Fatal("nil profiler reports enabled")
	}
	end := p.Phase("cpu-map")
	end()
	if c := p.Collector("cpu-map"); c != nil {
		t.Fatal("nil profiler returned non-nil collector")
	}
	var c *Collector
	c.Flush() // must not panic
	if n := len(p.Snapshot().Buckets); n != 0 {
		t.Fatalf("nil profiler snapshot has %d buckets", n)
	}
}

func TestPhaseExclusiveTime(t *testing.T) {
	p := New()
	endOuter := p.Phase("outer")
	time.Sleep(2 * time.Millisecond)
	endInner := p.Phase("inner")
	time.Sleep(2 * time.Millisecond)
	endInner()
	endOuter()

	s := p.Snapshot()
	outer := s.Buckets[Key{Cat: CatPhase, Name: "outer"}]
	inner := s.Buckets[Key{Cat: CatPhase, Name: "inner"}]
	if outer.Count != 1 || inner.Count != 1 {
		t.Fatalf("counts: outer=%d inner=%d, want 1/1", outer.Count, inner.Count)
	}
	if inner.Nanos < int64(time.Millisecond) {
		t.Fatalf("inner self time %d too small", inner.Nanos)
	}
	// Outer's self time excludes inner's full elapsed, so it should be on
	// the order of its own 2ms sleep, far below outer+inner combined.
	if outer.Nanos < int64(time.Millisecond) {
		t.Fatalf("outer self time %d too small", outer.Nanos)
	}
	if outer.Nanos > int64(4*time.Millisecond) {
		t.Fatalf("outer self time %d includes child time", outer.Nanos)
	}
}

func TestCollectorExclusiveTimeAndFlush(t *testing.T) {
	p := New()
	c := p.Collector(PhaseCPUMap)
	c.Enter(CatStmt, "For")
	c.Enter(CatExpr, "Binary")
	c.Exit()
	c.Enter(CatExpr, "Binary")
	c.Exit()
	c.Exit()
	c.Flush()
	c.Flush() // second flush is a no-op, not a double count

	s := p.Snapshot()
	bin := s.Buckets[Key{Phase: PhaseCPUMap, Cat: CatExpr, Name: "Binary"}]
	if bin.Count != 2 {
		t.Fatalf("Binary count = %d, want 2", bin.Count)
	}
	forB := s.Buckets[Key{Phase: PhaseCPUMap, Cat: CatStmt, Name: "For"}]
	if forB.Count != 1 {
		t.Fatalf("For count = %d, want 1", forB.Count)
	}
}

func TestConcurrentCollectorsMerge(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := p.Collector(PhaseGPUMap)
			for i := 0; i < 1000; i++ {
				c.Enter(CatExpr, "Ident")
				c.Exit()
			}
			c.Flush()
		}()
	}
	wg.Wait()
	b := p.Snapshot().Buckets[Key{Phase: PhaseGPUMap, Cat: CatExpr, Name: "Ident"}]
	if b.Count != 8000 {
		t.Fatalf("merged count = %d, want 8000", b.Count)
	}
}

func TestUnbalancedExitIgnored(t *testing.T) {
	p := New()
	c := p.Collector(PhaseCPUMap)
	c.Exit() // no matching Enter
	c.Flush()
	p.endPhase() // no open phase
	if n := len(p.Snapshot().Buckets); n != 0 {
		t.Fatalf("unbalanced exits created %d buckets", n)
	}
}

func TestReportOutputs(t *testing.T) {
	p := New()
	end := p.Phase(PhaseCPUMap)
	c := p.Collector(PhaseCPUMap)
	c.Enter(CatBuiltin, "emit")
	time.Sleep(time.Millisecond)
	c.Exit()
	c.Flush()
	end()

	s := p.Snapshot()
	var table strings.Builder
	if err := s.WriteTable(&table, 10); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"engine phases", PhaseCPUMap, "interpreter hot paths", "emit"} {
		if !strings.Contains(table.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, table.String())
		}
	}

	var folded strings.Builder
	if err := s.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(folded.String(), "phases;cpu-map ") {
		t.Fatalf("folded output missing phase line:\n%s", folded.String())
	}
	if !strings.Contains(folded.String(), "interp;cpu-map;builtin:emit ") {
		t.Fatalf("folded output missing interp line:\n%s", folded.String())
	}
}

func TestSnapshotEntriesDeterministic(t *testing.T) {
	p := New()
	for _, name := range []string{"b", "a", "c"} {
		c := p.Collector("")
		c.Enter(CatStmt, name)
		c.Exit()
		c.Flush()
	}
	s := p.Snapshot()
	// Zero out times so ordering falls back to key order.
	for k, b := range s.Buckets {
		b.Nanos = 0
		s.Buckets[k] = b
	}
	es := s.Entries()
	var names []string
	for _, e := range es {
		names = append(names, e.Name)
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Fatalf("tie-break order = %v", names)
	}
}
