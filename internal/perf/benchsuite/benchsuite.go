// Package benchsuite holds the repository's benchmark bodies — one per
// table and figure of the paper's evaluation (§7) plus the design-ablation
// studies — in a registry both `go test -bench` (via bench_test.go's thin
// wrappers) and cmd/hdbench's baseline/regression pipeline can drive.
//
// Keeping the bodies here, outside any _test.go file, lets the non-test
// hdbench binary measure the exact same code `go test -bench=.` runs, so a
// committed BENCH_baseline.json gates regressions on the real benchmarks
// rather than on a parallel re-implementation.
package benchsuite

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/gpurt"
	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Cfg keeps `go test -bench=.` affordable; cmd/hdbench's experiment mode
// defaults are larger.
var Cfg = experiments.Config{SplitBytes: 8 << 10, Variants: 1, TaskScale: 0.25, Seed: 7}

// Bench is one named benchmark in the suite.
type Bench struct {
	// Name matches the `go test -bench` function name (BenchmarkXxx).
	Name string
	// Short marks the cheap subset `hdbench -check -short` runs in CI.
	Short bool
	Fn    func(b *testing.B)
}

// All returns the full suite in deterministic (name) order.
func All() []Bench {
	bs := []Bench{
		{Name: "BenchmarkTable2", Short: true, Fn: Table2},
		{Name: "BenchmarkTable3", Short: true, Fn: Table3},
		{Name: "BenchmarkFig3TailScheduling", Short: true, Fn: Fig3TailScheduling},
		{Name: "BenchmarkFig4aCluster1", Fn: Fig4aCluster1},
		{Name: "BenchmarkFig4bCluster2", Fn: Fig4bCluster2},
		{Name: "BenchmarkFig5TaskSpeedups", Fn: Fig5TaskSpeedups},
		{Name: "BenchmarkFig6Breakdown", Fn: Fig6Breakdown},
		{Name: "BenchmarkFig7aTexture", Fn: Fig7aTexture},
		{Name: "BenchmarkFig7bVectorCombine", Fn: Fig7bVectorCombine},
		{Name: "BenchmarkFig7cVectorMap", Fn: Fig7cVectorMap},
		{Name: "BenchmarkFig7dRecordStealing", Fn: Fig7dRecordStealing},
		{Name: "BenchmarkFig7eAggregation", Fn: Fig7eAggregation},
		{Name: "BenchmarkSchedulerAblation", Short: true, Fn: SchedulerAblation},
		{Name: "BenchmarkStealingGranularity", Fn: StealingGranularity},
		{Name: "BenchmarkSpeculativeExecution", Short: true, Fn: SpeculativeExecution},
		{Name: "BenchmarkMapTaskGPU", Fn: MapTaskGPU},
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].Name < bs[j].Name })
	return bs
}

// Select filters the suite: short keeps only the Short subset, and filter
// (when non-empty) keeps benchmarks whose name contains the substring,
// case-insensitively.
func Select(short bool, filter string) []Bench {
	var out []Bench
	f := strings.ToLower(filter)
	for _, b := range All() {
		if short && !b.Short {
			continue
		}
		if f != "" && !strings.Contains(strings.ToLower(b.Name), f) {
			continue
		}
		out = append(out, b)
	}
	return out
}

func Table2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2()
		if len(rows) != 8 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func Table3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func Fig3TailScheduling(b *testing.B) {
	b.ReportAllocs()
	var r experiments.Fig3Result
	var err error
	var rec *obs.Recorder
	for i := 0; i < b.N; i++ {
		rec = obs.NewRecorder()
		r, err = experiments.Fig3(experiments.Config{Obs: rec})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Improvement(), "tail-gain-x")
	// Headline counters flow out through the metrics registry.
	if forced, ok := rec.Metrics().Value("mr_forced_gpu_total", obs.L("sched", "tail")); ok {
		b.ReportMetric(forced, "forced-gpu-tasks")
	}
	if wait, ok := rec.Metrics().Value("mr_gpu_queue_wait_seconds_total", obs.L("sched", "tail")); ok {
		b.ReportMetric(wait, "gpu-queue-wait-s")
	}
}

func Fig4aCluster1(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.Fig4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig4a(Cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var tails []float64
	var best float64
	for _, r := range rows {
		v := r.Speedups["1GPU+tail"]
		tails = append(tails, v)
		if v > best {
			best = v
		}
	}
	b.ReportMetric(experiments.GeoMean(tails), "geomean-speedup-x")
	b.ReportMetric(best, "max-speedup-x")
}

func Fig4bCluster2(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.Fig4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig4b(Cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var best float64
	for _, r := range rows {
		if v := r.Speedups["3GPU+tail"]; v > best {
			best = v
		}
	}
	b.ReportMetric(best, "max-3gpu-speedup-x")
}

func Fig5TaskSpeedups(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.Fig5Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig5(Cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].OptSpeedup, "max-task-speedup-x")
	b.ReportMetric(rows[0].OptSpeedup, "min-task-speedup-x")
}

func Fig6Breakdown(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.Fig6Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig6(Cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Code == "BS" {
			b.ReportMetric(100*r.Fractions["output write"], "bs-outputwrite-pct")
		}
	}
}

func fig7(b *testing.B, fn func(experiments.Config) ([]experiments.Fig7Row, error)) {
	b.ReportAllocs()
	var rows []experiments.Fig7Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = fn(Cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, r := range rows {
		if r.Speedup > best {
			best = r.Speedup
		}
	}
	b.ReportMetric(best, "max-kernel-speedup-x")
}

func Fig7aTexture(b *testing.B)        { fig7(b, experiments.Fig7Texture) }
func Fig7bVectorCombine(b *testing.B)  { fig7(b, experiments.Fig7VectorCombine) }
func Fig7cVectorMap(b *testing.B)      { fig7(b, experiments.Fig7VectorMap) }
func Fig7dRecordStealing(b *testing.B) { fig7(b, experiments.Fig7RecordStealing) }
func Fig7eAggregation(b *testing.B)    { fig7(b, experiments.Fig7Aggregation) }

// SchedulerAblation compares the three schedulers head-to-head on one
// synthetic workload (the DESIGN.md scheduler ablation).
func SchedulerAblation(b *testing.B) {
	b.ReportAllocs()
	rec := obs.NewRecorder()
	run := func(s mr.SchedulerKind, gpus int) float64 {
		stats, err := mr.RunJob(mr.ClusterConfig{
			Slaves: 8, Node: mr.NodeConfig{MapSlots: 4, ReduceSlots: 2, GPUs: gpus},
			Scheduler: s, HeartbeatSec: 0.5, Obs: rec,
		}, &mr.SampledExecutor{
			Splits: 640, Reducers: 16, Slaves: 8,
			CPUDur: []float64{20}, GPUDur: []float64{2},
			MapOutputBytes: 1 << 20, ReduceCompute: 5, ShuffleGBs: 4, Jitter: 0.3,
		})
		if err != nil {
			b.Fatal(err)
		}
		return stats.Makespan
	}
	var cpu, gf, tail float64
	for i := 0; i < b.N; i++ {
		cpu = run(mr.CPUOnly, 0)
		gf = run(mr.GPUFirst, 1)
		tail = run(mr.TailSched, 1)
	}
	b.ReportMetric(cpu/gf, "gpufirst-speedup-x")
	b.ReportMetric(cpu/tail, "tail-speedup-x")
	if hb, ok := rec.Metrics().Value("mr_heartbeats_total", obs.L("sched", "tail")); ok {
		b.ReportMetric(hb/float64(b.N), "tail-heartbeats/op")
	}
}

// StealingGranularity compares the three record-distribution strategies of
// DESIGN.md's ablation list: static partitioning, the paper's
// per-threadblock stealing, and device-wide global-atomic stealing (the
// alternative the paper rejects in §4.1).
func StealingGranularity(b *testing.B) {
	b.ReportAllocs()
	km := workload.Kmeans()
	input := km.Gen(3, 64<<10)
	kmJob := km.JobFor(1)
	kmJob.DisableVM = Cfg.DisableVM
	job, err := mr.CompileJob(kmJob)
	if err != nil {
		b.Fatal(err)
	}
	dev, err := gpu.NewDevice(gpu.TeslaK40())
	if err != nil {
		b.Fatal(err)
	}
	measure := func(steal, global bool) float64 {
		opts := gpurt.AllOptimizations()
		opts.RecordStealing = steal
		opts.GlobalStealing = global
		res, err := gpurt.RunTask(dev, job.MapC, nil, input, gpurt.TaskConfig{
			NumReducers: 4, Opts: opts,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Times.Map
	}
	var static, block, global float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		static = measure(false, false)
		block = measure(true, false)
		global = measure(true, true)
	}
	b.ReportMetric(static/block, "block-vs-static-x")
	b.ReportMetric(global/block, "block-vs-global-x")
}

// SpeculativeExecution measures the extension's effect on a cluster with
// one straggler node (inter-node heterogeneity).
func SpeculativeExecution(b *testing.B) {
	b.ReportAllocs()
	makeExec := func() *mr.SampledExecutor {
		return &mr.SampledExecutor{
			Splits: 160, Reducers: 0, Slaves: 4,
			CPUDur: []float64{10}, GPUDur: []float64{2},
			NodeSpeed: []float64{4, 1, 1, 1}, Jitter: 0.2,
		}
	}
	run := func(spec bool) float64 {
		stats, err := mr.RunJob(mr.ClusterConfig{
			Slaves: 4, Node: mr.NodeConfig{MapSlots: 4, ReduceSlots: 1},
			Scheduler: mr.CPUOnly, HeartbeatSec: 0.5,
			SpeculativeExecution: spec, Seed: 3,
		}, makeExec())
		if err != nil {
			b.Fatal(err)
		}
		return stats.Makespan
	}
	var off, on float64
	for i := 0; i < b.N; i++ {
		off = run(false)
		on = run(true)
	}
	b.ReportMetric(off/on, "speculation-gain-x")
}

// MapTaskGPU measures the wall cost of one functional GPU task (translator
// + SIMT interpreter + runtime), the building block every experiment
// samples: the whole generated input runs as a single split.
func MapTaskGPU(b *testing.B) {
	b.ReportAllocs()
	wc := workload.Wordcount()
	input := wc.Gen(5, 8<<10)
	cfg := Cfg
	cfg.SplitBytes = len(input)
	cfg.Variants = 1
	cfg.TaskScale = 0.01
	cfg.Seed = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
