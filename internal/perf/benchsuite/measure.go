package benchsuite

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/perf"
)

// Runner measures one benchmark body and returns a single sample. The
// default wraps testing.Benchmark; tests inject stubs to simulate
// regressions without burning wall time.
type Runner func(fn func(b *testing.B)) perf.Sample

// GoBenchRunner measures via the standard testing harness (auto-scaled
// b.N), capturing ns/op, allocs/op, B/op, and every b.ReportMetric custom
// metric.
func GoBenchRunner(fn func(b *testing.B)) perf.Sample {
	r := testing.Benchmark(fn)
	s := perf.Sample{
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(max(r.N, 1)),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
	if len(r.Extra) > 0 {
		s.Metrics = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			s.Metrics[k] = v
		}
	}
	return s
}

// Measure runs each selected benchmark repeat times through the runner and
// assembles the environment-stamped baseline. log (optional) receives one
// progress line per benchmark.
func Measure(benches []Bench, repeat int, short bool, runner Runner, log io.Writer) *perf.Baseline {
	if repeat < 1 {
		repeat = 1
	}
	if runner == nil {
		runner = GoBenchRunner
	}
	base := &perf.Baseline{
		Schema:     perf.BaselineSchema,
		Created:    time.Now().UTC().Format(time.RFC3339),
		Env:        perf.CurrentEnv(),
		Repeat:     repeat,
		Short:      short,
		Benchmarks: make(map[string]perf.BenchResult, len(benches)),
	}
	for _, bench := range benches {
		var res perf.BenchResult
		for i := 0; i < repeat; i++ {
			res.Samples = append(res.Samples, runner(bench.Fn))
		}
		base.Benchmarks[bench.Name] = res
		if log != nil {
			fmt.Fprintf(log, "%-36s best %12.0f ns/op  noise %5.1f%%  (%d samples)\n",
				bench.Name, res.BestNs(), 100*res.Noise(), repeat)
		}
	}
	return base
}
