package benchsuite

import (
	"strings"
	"testing"

	"repro/internal/perf"
)

// fakeSuite builds a suite of no-op benchmarks with the given names; the
// stub runner supplies all measurements, the bodies never run.
func fakeSuite(names ...string) []Bench {
	var bs []Bench
	for _, n := range names {
		bs = append(bs, Bench{Name: n, Fn: func(b *testing.B) {}})
	}
	return bs
}

// seqRunner returns samples from a queue, in call order.
func seqRunner(t *testing.T, samples []perf.Sample) Runner {
	i := 0
	return func(fn func(b *testing.B)) perf.Sample {
		t.Helper()
		if i >= len(samples) {
			t.Fatalf("seqRunner: out of samples at call %d", i)
		}
		s := samples[i]
		i++
		return s
	}
}

func sample(ns float64) perf.Sample { return perf.Sample{N: 1, NsPerOp: ns, AllocsPerOp: 100} }

// TestMeasureBuildsBaseline pins the shape of the assembled baseline:
// schema version, environment stamp, repeat count, per-benchmark samples.
func TestMeasureBuildsBaseline(t *testing.T) {
	suite := fakeSuite("BenchmarkA", "BenchmarkB")
	r := seqRunner(t, []perf.Sample{sample(100e3), sample(110e3), sample(200e3), sample(190e3)})
	base := Measure(suite, 2, true, r, nil)
	if base.Schema != perf.BaselineSchema {
		t.Fatalf("schema = %d", base.Schema)
	}
	if base.Env != perf.CurrentEnv() {
		t.Fatalf("env = %+v", base.Env)
	}
	if !base.Short || base.Repeat != 2 {
		t.Fatalf("short/repeat = %v/%d", base.Short, base.Repeat)
	}
	a := base.Benchmarks["BenchmarkA"]
	if got := a.BestNs(); got != 100e3 {
		t.Fatalf("BenchmarkA best = %v", got)
	}
	if got := base.Benchmarks["BenchmarkB"].BestNs(); got != 190e3 {
		t.Fatalf("BenchmarkB best = %v", got)
	}
}

// TestSyntheticSlowdownFailsCheck is the end-to-end regression-gate drill:
// a baseline measured at 1ms/op must make a 2x-slower re-measurement fail
// Compare — the same code path `hdbench -check` exits non-zero on.
func TestSyntheticSlowdownFailsCheck(t *testing.T) {
	suite := fakeSuite("BenchmarkHot")
	base := Measure(suite, 3, false, seqRunner(t, []perf.Sample{
		sample(1.00e6), sample(1.02e6), sample(1.01e6),
	}), nil)
	slow := Measure(suite, 3, false, seqRunner(t, []perf.Sample{
		sample(2.00e6), sample(2.04e6), sample(2.02e6),
	}), nil)

	rep, err := perf.Compare(base, slow, perf.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("2x synthetic slowdown passed the check")
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Bench != "BenchmarkHot" {
		t.Fatalf("regressions = %+v", regs)
	}
	var buf strings.Builder
	rep.Write(&buf)
	if !strings.Contains(buf.String(), "FAIL") {
		t.Fatalf("report missing FAIL marker:\n%s", buf.String())
	}

	// The unchanged re-measurement passes the identical gate.
	same := Measure(suite, 3, false, seqRunner(t, []perf.Sample{
		sample(1.01e6), sample(0.99e6), sample(1.03e6),
	}), nil)
	rep, err = perf.Compare(base, same, perf.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("steady re-measurement failed: %+v", rep.Regressions())
	}
}

// TestGoBenchRunnerCapturesMetrics pins that the real testing.Benchmark
// adapter surfaces ns/op, allocs, and b.ReportMetric custom metrics.
func TestGoBenchRunnerCapturesMetrics(t *testing.T) {
	s := GoBenchRunner(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = make([]byte, 64)
		}
		b.ReportMetric(42, "answer")
	})
	if s.N < 1 {
		t.Fatalf("N = %d", s.N)
	}
	if s.NsPerOp <= 0 {
		t.Fatalf("NsPerOp = %v", s.NsPerOp)
	}
	if s.Metrics["answer"] != 42 {
		t.Fatalf("metrics = %v", s.Metrics)
	}
}

// TestSelectShortAndFilter pins the CI subset and the name filter.
func TestSelectShortAndFilter(t *testing.T) {
	short := Select(true, "")
	if len(short) == 0 || len(short) >= len(All()) {
		t.Fatalf("short subset = %d of %d", len(short), len(All()))
	}
	for _, b := range short {
		if !b.Short {
			t.Fatalf("%s in short subset without Short flag", b.Name)
		}
	}
	f := Select(false, "fig7")
	if len(f) != 5 {
		t.Fatalf("fig7 filter matched %d", len(f))
	}
	if len(Select(false, "no-such-bench")) != 0 {
		t.Fatal("bogus filter matched")
	}
}
