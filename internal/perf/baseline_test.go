package perf

import (
	"bytes"
	"strings"
	"testing"
)

func mkBaseline(ns ...float64) *Baseline {
	b := &Baseline{Schema: BaselineSchema, Env: CurrentEnv(), Repeat: len(ns), Benchmarks: map[string]BenchResult{}}
	var samples []Sample
	for _, v := range ns {
		samples = append(samples, Sample{N: 1, NsPerOp: v, AllocsPerOp: 100})
	}
	b.Benchmarks["BenchmarkX"] = BenchResult{Samples: samples}
	return b
}

func TestCompareRegressionDetected(t *testing.T) {
	base := mkBaseline(1e6, 1.02e6)
	cur := mkBaseline(2e6, 2.02e6) // 2x slower — far past any band
	rep, err := Compare(base, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("2x slowdown not flagged as regression")
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("regressions = %+v", regs)
	}
	var out bytes.Buffer
	rep.Write(&out)
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("report missing FAIL:\n%s", out.String())
	}
}

func TestCompareImprovementAccepted(t *testing.T) {
	base := mkBaseline(2e6, 2.02e6)
	cur := mkBaseline(1e6, 1.02e6) // 2x faster
	rep, err := Compare(base, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("improvement flagged as regression: %+v", rep.Regressions())
	}
	found := false
	for _, d := range rep.Deltas {
		if d.Verdict == VerdictImproved {
			found = true
		}
	}
	if !found {
		t.Fatal("2x speedup not marked improved")
	}
}

func TestCompareNoiseBandRespected(t *testing.T) {
	// Baseline is noisy: spread 1.0–1.5ms means a 50% noise band. A 60%
	// slowdown of the best sample sits inside TimeFrac(25%)+noise(50%).
	base := mkBaseline(1e6, 1.5e6)
	cur := mkBaseline(1.6e6)
	rep, err := Compare(base, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("slowdown within noise band flagged: %+v", rep.Regressions())
	}
	// The same 60% on a quiet baseline is a regression.
	quiet := mkBaseline(1e6, 1.0e6)
	rep, err = Compare(quiet, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("60% slowdown on quiet baseline not flagged")
	}
}

func TestCompareSubThresholdIgnored(t *testing.T) {
	base := mkBaseline(1e6, 1e6)
	cur := mkBaseline(1.1e6, 1.1e6) // +10% < TimeFrac 25%
	rep, err := Compare(base, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("+10%% flagged as regression: %+v", rep.Regressions())
	}
}

func TestCompareMinNsFloor(t *testing.T) {
	base := mkBaseline(100) // below the 1000ns floor
	cur := mkBaseline(500)  // 5x "slower" but all timer noise
	rep, err := Compare(base, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("sub-floor benchmark compared: %+v", rep.Regressions())
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := mkBaseline(1e6)
	cur := mkBaseline(1e6)
	s := cur.Benchmarks["BenchmarkX"].Samples
	s[0].AllocsPerOp = 150 // +50% allocs, same time
	cur.Benchmarks["BenchmarkX"] = BenchResult{Samples: s}
	rep, err := Compare(base, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("alloc regression not flagged: %+v", regs)
	}
}

func TestCompareSchemaMismatchRejected(t *testing.T) {
	base := mkBaseline(1e6)
	base.Schema = 99
	if _, err := Compare(base, mkBaseline(1e6), DefaultThresholds()); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestCompareEnvMismatch(t *testing.T) {
	base := mkBaseline(1e6)
	base.Env.NumCPU++
	cur := mkBaseline(1e6)
	if _, err := Compare(base, cur, DefaultThresholds()); err == nil {
		t.Fatal("env mismatch accepted without override")
	}
	th := DefaultThresholds()
	th.AllowEnvMismatch = true
	rep, err := Compare(base, cur, th)
	if err != nil {
		t.Fatalf("env mismatch with override: %v", err)
	}
	if len(rep.Warnings) == 0 {
		t.Fatal("env mismatch override produced no warning")
	}
}

func TestCompareMetricDriftWarns(t *testing.T) {
	base := mkBaseline(1e6)
	cur := mkBaseline(1e6)
	bs := base.Benchmarks["BenchmarkX"].Samples
	bs[0].Metrics = map[string]float64{"vtime-s": 10}
	base.Benchmarks["BenchmarkX"] = BenchResult{Samples: bs}
	cs := cur.Benchmarks["BenchmarkX"].Samples
	cs[0].Metrics = map[string]float64{"vtime-s": 12} // +20% model drift
	cur.Benchmarks["BenchmarkX"] = BenchResult{Samples: cs}
	rep, err := Compare(base, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("metric drift failed the gate: %+v", rep.Regressions())
	}
	if len(rep.Warnings) == 0 {
		t.Fatal("metric drift produced no warning")
	}
}

func TestCompareMissingAndNewAreWarnings(t *testing.T) {
	base := mkBaseline(1e6)
	base.Benchmarks["BenchmarkOnlyInBase"] = BenchResult{Samples: []Sample{{N: 1, NsPerOp: 1e6}}}
	cur := mkBaseline(1e6)
	cur.Benchmarks["BenchmarkOnlyInCur"] = BenchResult{Samples: []Sample{{N: 1, NsPerOp: 1e6}}}
	rep, err := Compare(base, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("set difference failed the gate: %+v", rep.Regressions())
	}
	if len(rep.Warnings) != 2 {
		t.Fatalf("warnings = %v, want 2 (one missing, one new)", rep.Warnings)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := mkBaseline(1e6, 1.1e6)
	b.Created = "2026-08-08T00:00:00Z"
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Env != b.Env || len(got.Benchmarks) != len(b.Benchmarks) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, b)
	}
	if got.Benchmarks["BenchmarkX"].BestNs() != 1e6 {
		t.Fatalf("BestNs = %g", got.Benchmarks["BenchmarkX"].BestNs())
	}
}

func TestDecodeRejectsBadSchema(t *testing.T) {
	if _, err := DecodeBaseline(strings.NewReader(`{"schema": 0, "benchmarks": {"B": {"samples": []}}}`)); err == nil {
		t.Fatal("schema 0 accepted")
	}
	if _, err := DecodeBaseline(strings.NewReader(`{"schema": 1, "benchmarks": {}}`)); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

func TestNoiseStatistics(t *testing.T) {
	r := BenchResult{Samples: []Sample{{NsPerOp: 100}, {NsPerOp: 150}, {NsPerOp: 120}}}
	if got := r.BestNs(); got != 100 {
		t.Fatalf("BestNs = %g", got)
	}
	if got := r.Noise(); got != 0.5 {
		t.Fatalf("Noise = %g, want 0.5", got)
	}
	one := BenchResult{Samples: []Sample{{NsPerOp: 100}}}
	if got := one.Noise(); got != 0 {
		t.Fatalf("single-sample noise = %g", got)
	}
}
