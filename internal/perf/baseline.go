package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
)

// BaselineSchema is the current BENCH_*.json schema version. Comparing
// files with a different schema is rejected, not guessed at.
const BaselineSchema = 1

// Env stamps the environment a baseline was measured in. Wall-clock
// numbers from one environment say nothing about another, so Compare
// rejects mismatches unless explicitly overridden.
type Env struct {
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"numcpu"`
}

// CurrentEnv returns this process's environment stamp.
func CurrentEnv() Env {
	return Env{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU()}
}

// Sample is one benchmark repetition.
type Sample struct {
	N           int                `json:"n"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// BenchResult is every repetition of one benchmark.
type BenchResult struct {
	Samples []Sample `json:"samples"`
}

// BestNs is the minimum observed ns/op — the standard wall-clock statistic
// (the fastest run carries the least scheduler/GC interference).
func (r BenchResult) BestNs() float64 {
	best := 0.0
	for i, s := range r.Samples {
		if i == 0 || s.NsPerOp < best {
			best = s.NsPerOp
		}
	}
	return best
}

// Noise is the observed relative spread (max-min)/min across samples; 0
// with fewer than two samples.
func (r BenchResult) Noise() float64 {
	if len(r.Samples) < 2 {
		return 0
	}
	min, max := r.Samples[0].NsPerOp, r.Samples[0].NsPerOp
	for _, s := range r.Samples[1:] {
		if s.NsPerOp < min {
			min = s.NsPerOp
		}
		if s.NsPerOp > max {
			max = s.NsPerOp
		}
	}
	if min <= 0 {
		return 0
	}
	return (max - min) / min
}

// MaxAllocs is the maximum observed allocs/op (allocation counts are
// near-deterministic; the max guards against undercounting).
func (r BenchResult) MaxAllocs() float64 {
	m := 0.0
	for _, s := range r.Samples {
		if s.AllocsPerOp > m {
			m = s.AllocsPerOp
		}
	}
	return m
}

// Metrics returns the last sample's custom metrics (they are deterministic
// model outputs, identical across repetitions in a healthy run).
func (r BenchResult) Metrics() map[string]float64 {
	if len(r.Samples) == 0 {
		return nil
	}
	return r.Samples[len(r.Samples)-1].Metrics
}

// Baseline is the persisted benchmark record (BENCH_baseline.json).
type Baseline struct {
	Schema     int                    `json:"schema"`
	Created    string                 `json:"created,omitempty"`
	Env        Env                    `json:"env"`
	Repeat     int                    `json:"repeat"`
	Short      bool                   `json:"short,omitempty"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
}

// Encode writes the baseline as stable, indented JSON (map keys sort).
func (b *Baseline) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// DecodeBaseline reads and validates a baseline file.
func DecodeBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("perf: baseline: %w", err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("perf: baseline schema %d, this build understands %d — re-baseline", b.Schema, BaselineSchema)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("perf: baseline has no benchmarks")
	}
	return &b, nil
}

// Thresholds parameterize Compare.
type Thresholds struct {
	// TimeFrac is the allowed fractional ns/op increase before a
	// regression, on top of the measured noise band of both runs.
	TimeFrac float64
	// AllocFrac is the allowed fractional allocs/op increase.
	AllocFrac float64
	// MetricFrac is the allowed fractional drift of custom metrics (model
	// outputs); beyond it Compare warns but does not fail.
	MetricFrac float64
	// MinNs ignores the time check for benchmarks faster than this
	// (timer-resolution noise floor).
	MinNs float64
	// AllowEnvMismatch downgrades an environment-stamp mismatch from an
	// error to a warning (for wide-threshold CI gates on shared runners).
	AllowEnvMismatch bool
}

// DefaultThresholds returns the hdbench defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{TimeFrac: 0.25, AllocFrac: 0.10, MetricFrac: 0.05, MinNs: 1000}
}

// Verdict classifications for report lines.
const (
	VerdictOK         = "ok"
	VerdictRegression = "REGRESSION"
	VerdictImproved   = "improved"
	VerdictDrift      = "drift"
	VerdictMissing    = "missing"
	VerdictNew        = "new"
)

// Delta is one compared quantity.
type Delta struct {
	Bench   string
	Metric  string // "ns/op", "allocs/op", or a custom metric name
	Base    float64
	Cur     float64
	Frac    float64 // cur/base - 1
	Allowed float64
	Verdict string
}

// Report is a completed comparison.
type Report struct {
	Deltas   []Delta
	Warnings []string
}

// Regressions returns the failing deltas.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Verdict == VerdictRegression {
			out = append(out, d)
		}
	}
	return out
}

// OK reports whether the comparison passed (no regressions).
func (r *Report) OK() bool { return len(r.Regressions()) == 0 }

// Write renders the report as a line-per-delta table plus warnings.
func (r *Report) Write(w io.Writer) {
	for _, d := range r.Deltas {
		fmt.Fprintf(w, "%-28s %-22s %14.6g -> %14.6g  %+6.1f%% (allowed %.1f%%)  %s\n",
			d.Bench, d.Metric, d.Base, d.Cur, 100*d.Frac, 100*d.Allowed, d.Verdict)
	}
	for _, warn := range r.Warnings {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}
	if reg := r.Regressions(); len(reg) > 0 {
		fmt.Fprintf(w, "FAIL: %d regression(s)\n", len(reg))
	} else {
		fmt.Fprintf(w, "ok: no regressions (%d benchmarks compared)\n", len(comparedBenches(r.Deltas)))
	}
}

func comparedBenches(ds []Delta) map[string]bool {
	m := map[string]bool{}
	for _, d := range ds {
		if d.Verdict != VerdictMissing && d.Verdict != VerdictNew {
			m[d.Bench] = true
		}
	}
	return m
}

// Compare checks a current measurement against a baseline. It returns an
// error (rejection, not a report) on schema or environment mismatch; the
// report lists per-benchmark verdicts otherwise. Benchmarks present in
// only one side produce warnings, not failures, so filtered/short runs can
// be checked against a full baseline.
func Compare(base, cur *Baseline, t Thresholds) (*Report, error) {
	if base.Schema != cur.Schema {
		return nil, fmt.Errorf("perf: schema mismatch: baseline %d vs current %d", base.Schema, cur.Schema)
	}
	rep := &Report{}
	if base.Env != cur.Env {
		msg := fmt.Sprintf("environment mismatch: baseline %+v vs current %+v", base.Env, cur.Env)
		if !t.AllowEnvMismatch {
			return nil, fmt.Errorf("perf: %s (re-baseline, or pass -allow-env-mismatch)", msg)
		}
		rep.Warnings = append(rep.Warnings, msg)
	}

	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		c := cur.Benchmarks[name]
		b, ok := base.Benchmarks[name]
		if !ok {
			rep.Deltas = append(rep.Deltas, Delta{Bench: name, Metric: "ns/op", Cur: c.BestNs(), Verdict: VerdictNew})
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("%s: no baseline entry (new benchmark?)", name))
			continue
		}
		compareBench(rep, name, b, c, t)
	}

	baseNames := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		baseNames = append(baseNames, name)
	}
	sort.Strings(baseNames)
	for _, name := range baseNames {
		if _, ok := cur.Benchmarks[name]; !ok {
			rep.Deltas = append(rep.Deltas, Delta{Bench: name, Metric: "ns/op", Base: base.Benchmarks[name].BestNs(), Verdict: VerdictMissing})
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("%s: in baseline but not measured (filtered run?)", name))
		}
	}
	return rep, nil
}

func compareBench(rep *Report, name string, b, c BenchResult, t Thresholds) {
	// Wall time: best-of-N against best-of-N, tolerating the declared
	// threshold plus the noise band observed on both sides.
	bt, ct := b.BestNs(), c.BestNs()
	if bt >= t.MinNs && bt > 0 {
		frac := ct/bt - 1
		allowed := t.TimeFrac + b.Noise() + c.Noise()
		verdict := VerdictOK
		switch {
		case frac > allowed:
			verdict = VerdictRegression
		case frac < -allowed:
			verdict = VerdictImproved
		}
		rep.Deltas = append(rep.Deltas, Delta{Bench: name, Metric: "ns/op", Base: bt, Cur: ct, Frac: frac, Allowed: allowed, Verdict: verdict})
		if verdict == VerdictImproved {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("%s: %.1f%% faster than baseline — consider re-baselining", name, -100*frac))
		}
	}

	// Allocations: near-deterministic, so a tight band.
	ba, ca := b.MaxAllocs(), c.MaxAllocs()
	switch {
	case ba > 0:
		frac := ca/ba - 1
		verdict := VerdictOK
		if frac > t.AllocFrac {
			verdict = VerdictRegression
		}
		rep.Deltas = append(rep.Deltas, Delta{Bench: name, Metric: "allocs/op", Base: ba, Cur: ca, Frac: frac, Allowed: t.AllocFrac, Verdict: verdict})
	case ca > 8:
		rep.Deltas = append(rep.Deltas, Delta{Bench: name, Metric: "allocs/op", Base: ba, Cur: ca, Allowed: t.AllocFrac, Verdict: VerdictRegression})
	}

	// Custom metrics: deterministic model outputs. Drift is a warning —
	// it means the perf model changed, not that the code got slower.
	bm, cm := b.Metrics(), c.Metrics()
	metricNames := make([]string, 0, len(bm))
	for k := range bm {
		metricNames = append(metricNames, k)
	}
	sort.Strings(metricNames)
	for _, k := range metricNames {
		bv := bm[k]
		cv, ok := cm[k]
		if !ok || bv == 0 {
			continue
		}
		frac := cv/bv - 1
		if frac > t.MetricFrac || frac < -t.MetricFrac {
			rep.Deltas = append(rep.Deltas, Delta{Bench: name, Metric: k, Base: bv, Cur: cv, Frac: frac, Allowed: t.MetricFrac, Verdict: VerdictDrift})
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("%s: metric %s drifted %+.1f%% (model change?)", name, k, 100*frac))
		}
	}
}
