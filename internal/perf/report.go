package perf

import (
	"fmt"
	"io"
	"sort"
)

// Snapshot is a point-in-time copy of a profiler's buckets.
type Snapshot struct {
	Buckets map[Key]Bucket `json:"buckets"`
}

// Entry is one bucket with its key, sorted views attach a fraction.
type Entry struct {
	Key
	Bucket
}

// Entries returns all buckets sorted by self time descending (key order
// breaks ties, so output over identical data is deterministic).
func (s Snapshot) Entries() []Entry {
	out := make([]Entry, 0, len(s.Buckets))
	for k, b := range s.Buckets {
		out = append(out, Entry{Key: k, Bucket: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nanos != out[j].Nanos {
			return out[i].Nanos > out[j].Nanos
		}
		return out[i].Key.less(out[j].Key)
	})
	return out
}

func (k Key) less(o Key) bool {
	if k.Phase != o.Phase {
		return k.Phase < o.Phase
	}
	if k.Cat != o.Cat {
		return k.Cat < o.Cat
	}
	return k.Name < o.Name
}

// TotalNanos sums the self time of every bucket whose category is in cats
// (all buckets when cats is empty).
func (s Snapshot) TotalNanos(cats ...string) int64 {
	var t int64
	for k, b := range s.Buckets {
		if len(cats) == 0 || containsStr(cats, k.Cat) {
			t += b.Nanos
		}
	}
	return t
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// WriteTable renders the profile as two sections: engine phases (exclusive
// wall time) and interpreter buckets (summed self time across machines,
// top k by time). Percentages are within each section's total, because
// interpreter time accrues inside phases and the two views overlap.
func (s Snapshot) WriteTable(w io.Writer, k int) error {
	entries := s.Entries()

	phaseTotal := s.TotalNanos(CatPhase)
	if phaseTotal > 0 {
		fmt.Fprintf(w, "engine phases (exclusive wall time):\n")
		fmt.Fprintf(w, "  %-22s %12s %14s %7s\n", "phase", "calls", "self", "%")
		for _, e := range entries {
			if e.Cat != CatPhase {
				continue
			}
			fmt.Fprintf(w, "  %-22s %12d %14s %6.1f%%\n",
				e.Name, e.Count, fmtNanos(e.Nanos), 100*float64(e.Nanos)/float64(phaseTotal))
		}
	}

	interpTotal := s.TotalNanos(CatStmt, CatExpr, CatBuiltin, CatOpcode)
	if interpTotal > 0 {
		fmt.Fprintf(w, "interpreter hot paths (self time, top %d):\n", k)
		fmt.Fprintf(w, "  %-10s %-22s %12s %14s %7s\n", "kind", "bucket", "calls", "self", "%")
		agg := map[catName]Bucket{}
		for key, b := range s.Buckets {
			if key.Cat == CatPhase {
				continue
			}
			cn := catName{key.Cat, key.Name}
			acc := agg[cn]
			acc.Count += b.Count
			acc.Nanos += b.Nanos
			agg[cn] = acc
		}
		rows := make([]Entry, 0, len(agg))
		for cn, b := range agg {
			rows = append(rows, Entry{Key: Key{Cat: cn.cat, Name: cn.name}, Bucket: b})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].Nanos != rows[j].Nanos {
				return rows[i].Nanos > rows[j].Nanos
			}
			return rows[i].Key.less(rows[j].Key)
		})
		for i, e := range rows {
			if k > 0 && i >= k {
				fmt.Fprintf(w, "  ... %d more buckets\n", len(rows)-i)
				break
			}
			fmt.Fprintf(w, "  %-10s %-22s %12d %14s %6.1f%%\n",
				e.Cat, e.Name, e.Count, fmtNanos(e.Nanos), 100*float64(e.Nanos)/float64(interpTotal))
		}
	}
	return nil
}

// WriteFolded emits the profile as folded stacks (`frame;frame value`
// lines), the input format of flamegraph.pl / speedscope / inferno.
// Phase buckets fold under `phases;`, interpreter buckets under
// `interp;<phase>;<cat>:<name>` so the flamegraph shows where inside each
// phase the interpreter spent its time.
func (s Snapshot) WriteFolded(w io.Writer) error {
	entries := s.Entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key.less(entries[j].Key) })
	for _, e := range entries {
		if e.Nanos == 0 {
			continue
		}
		var err error
		if e.Cat == CatPhase {
			_, err = fmt.Fprintf(w, "phases;%s %d\n", e.Name, e.Nanos)
		} else {
			phase := e.Phase
			if phase == "" {
				phase = "(none)"
			}
			_, err = fmt.Fprintf(w, "interp;%s;%s:%s %d\n", phase, e.Cat, e.Name, e.Nanos)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// fmtNanos renders a nanosecond total at a human scale.
func fmtNanos(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.3fs", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.3fms", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.3fµs", float64(n)/1e3)
	default:
		return fmt.Sprintf("%dns", n)
	}
}
