// Package perf is HeteroDoop's performance observability layer — the
// wall-clock counterpart of package obs's virtual-time recorder. It has
// two halves:
//
//   - A hot-path cost profiler (Profiler / Collector): cheap wall-clock
//     timing and counting hooks that the interpreter, the streaming CPU
//     path, the GPU runtime, and the translator carry unconditionally. A
//     nil *Profiler compiles to a pointer check, so profiling costs
//     nothing when off. When on, buckets attribute exclusive (self) time
//     and invocation counts per engine phase, per AST node kind, and per
//     stdlib builtin.
//
//   - A benchmark baseline pipeline (Baseline / Compare): a
//     schema-versioned, environment-stamped record of the repo's own
//     benchmark results (BENCH_baseline.json) with noise-aware regression
//     comparison, driven by cmd/hdbench -baseline / -check.
//
// The package is a leaf: it depends only on the standard library, so every
// layer of the system (interp, streaming, gpurt, compiler, mr, core) can
// import it without cycles.
package perf

import (
	"context"
	"runtime/pprof"
	"sync"
	"time"
)

// Bucket categories. Phases measure wall time on the engine's goroutine;
// stmt/expr/builtin buckets measure summed time across interpreter
// instances (which may run concurrently inside a GPU kernel launch, so
// their totals can exceed the enclosing phase's wall time, like CPU time
// exceeds wall time on a multicore run).
const (
	CatPhase   = "phase"
	CatStmt    = "stmt"
	CatExpr    = "expr"
	CatBuiltin = "builtin"
	// CatOpcode buckets hold per-opcode exclusive time from the bytecode
	// VM's dispatch loop (the register-machine analogue of CatStmt/CatExpr).
	CatOpcode = "opcode"
)

// Engine phase names used by the built-in instrumentation, exported so
// tools and tests do not scatter string literals.
const (
	PhaseCPUMap       = "cpu-map"
	PhaseCPUSort      = "cpu-sort"
	PhaseCPUCombine   = "cpu-combine"
	PhaseShuffleMerge = "shuffle-merge"
	PhaseReduce       = "reduce"
	PhaseHostCompile  = "host-compile"
	PhaseGPUTranslate = "gpu-translate"
	PhaseOptimize     = "optimize"
	// PhaseBytecodeCompile covers lowering optimized IR to register
	// bytecode (out-of-SSA, register allocation, instruction selection).
	PhaseBytecodeCompile = "bytecode-compile"
	PhaseGPUHost         = "gpu-host"
	PhaseGPUMap          = "gpu-map-kernel"
	PhaseGPUSort         = "gpu-sort"
	PhaseGPUCombine      = "gpu-combine-kernel"
	PhaseGPUOutput       = "gpu-output"
)

// Key identifies one aggregation bucket: the engine phase the cost accrued
// under (empty for phase buckets themselves and for costs outside any
// phase), the category, and the bucket name.
type Key struct {
	Phase string `json:"phase,omitempty"`
	Cat   string `json:"cat"`
	Name  string `json:"name"`
}

// Bucket accumulates exclusive (self) time and invocation counts.
type Bucket struct {
	Count int64 `json:"count"`
	Nanos int64 `json:"nanos"`
}

// Profiler aggregates cost buckets for one job or tool invocation. All
// methods are nil-receiver-safe; a nil *Profiler is the disabled state.
// Bucket merging (Collector.Flush) is goroutine-safe; Phase entry/exit is
// expected from one goroutine at a time (the engine loop), which holds for
// every call site in this repo.
type Profiler struct {
	mu      sync.Mutex
	buckets map[Key]*Bucket
	phases  []phaseFrame
	labels  bool
	ctxs    []context.Context
}

type phaseFrame struct {
	name  string
	start time.Time
	child time.Duration
}

// New returns an enabled profiler.
func New() *Profiler { return &Profiler{buckets: map[Key]*Bucket{}} }

// Enabled reports whether p collects anything.
func (p *Profiler) Enabled() bool { return p != nil }

// EnablePprofLabels makes every Phase entry tag the calling goroutine (and
// goroutines it spawns, e.g. GPU threadblocks) with an `hdphase` pprof
// label, so samples in a -cpuprofile can be cross-checked against the cost
// profiler's own attribution.
func (p *Profiler) EnablePprofLabels() {
	if p != nil {
		p.labels = true
	}
}

var nopEnd = func() {}

// Phase marks entry into a named engine phase and returns its closer.
// Phases nest; a phase's bucket records exclusive wall time (child phases
// subtracted) and one count per entry.
func (p *Profiler) Phase(name string) func() {
	if p == nil {
		return nopEnd
	}
	start := time.Now()
	p.mu.Lock()
	p.phases = append(p.phases, phaseFrame{name: name, start: start})
	if p.labels {
		parent := context.Background()
		if n := len(p.ctxs); n > 0 {
			parent = p.ctxs[n-1]
		}
		ctx := pprof.WithLabels(parent, pprof.Labels("hdphase", name))
		p.ctxs = append(p.ctxs, ctx)
		pprof.SetGoroutineLabels(ctx)
	}
	p.mu.Unlock()
	return func() { p.endPhase() }
}

func (p *Profiler) endPhase() {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.phases) - 1
	if n < 0 {
		return // unbalanced closer; ignore
	}
	fr := p.phases[n]
	p.phases = p.phases[:n]
	elapsed := now.Sub(fr.start)
	self := elapsed - fr.child
	if self < 0 {
		self = 0
	}
	b := p.bucketLocked(Key{Cat: CatPhase, Name: fr.name})
	b.Count++
	b.Nanos += int64(self)
	if n > 0 {
		p.phases[n-1].child += elapsed
	}
	if p.labels && len(p.ctxs) > 0 {
		p.ctxs = p.ctxs[:len(p.ctxs)-1]
		parent := context.Background()
		if m := len(p.ctxs); m > 0 {
			parent = p.ctxs[m-1]
		}
		pprof.SetGoroutineLabels(parent)
	}
}

func (p *Profiler) bucketLocked(k Key) *Bucket {
	b := p.buckets[k]
	if b == nil {
		b = &Bucket{}
		p.buckets[k] = b
	}
	return b
}

// Collector returns a single-goroutine bucket collector whose entries are
// tagged with the given phase name when flushed into p. Returns nil when p
// is nil, which every consumer treats as "profiling off".
func (p *Profiler) Collector(phase string) *Collector {
	if p == nil {
		return nil
	}
	return &Collector{prof: p, phase: phase, buckets: map[catName]*Bucket{}}
}

// Merge folds another profiler's buckets into p. Used by parallel
// execution: a speculative task collects into a private profiler off the
// engine goroutine, and the consumer merges it at the point the serial
// engine would have recorded the work, so bucket *counts* stay identical
// to a serial run (wall-clock nanos are nondeterministic either way).
// Both receiver and argument may be nil.
func (p *Profiler) Merge(other *Profiler) {
	if p == nil || other == nil || p == other {
		return
	}
	other.mu.Lock()
	src := make(map[Key]Bucket, len(other.buckets))
	for k, b := range other.buckets {
		src[k] = *b
	}
	other.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, b := range src {
		dst := p.bucketLocked(k)
		dst.Count += b.Count
		dst.Nanos += b.Nanos
	}
}

// Snapshot returns a copy of the accumulated buckets.
func (p *Profiler) Snapshot() Snapshot {
	s := Snapshot{Buckets: map[Key]Bucket{}}
	if p == nil {
		return s
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, b := range p.buckets {
		s.Buckets[k] = *b
	}
	return s
}

type catName struct{ cat, name string }

type span struct {
	cat, name string
	start     time.Time
	child     time.Duration
}

// Collector accumulates exclusive-time buckets on one goroutine without
// locking; Flush merges them into the parent Profiler under its lock. The
// interpreter calls Enter/Exit around every statement, expression, and
// builtin invocation, so both must stay allocation-free on the steady
// state (the stack and map amortize).
type Collector struct {
	prof    *Profiler
	phase   string
	stack   []span
	buckets map[catName]*Bucket
}

// Enter pushes a bucket frame. The matching Exit must run on the same
// goroutine. Not nil-safe by design: callers hold the nil check (one
// pointer test) on their own hot path.
func (c *Collector) Enter(cat, name string) {
	c.stack = append(c.stack, span{cat: cat, name: name, start: time.Now()})
}

// Exit pops the current frame, charging its exclusive time.
func (c *Collector) Exit() {
	now := time.Now()
	n := len(c.stack) - 1
	if n < 0 {
		return
	}
	s := c.stack[n]
	c.stack = c.stack[:n]
	elapsed := now.Sub(s.start)
	self := elapsed - s.child
	if self < 0 {
		self = 0
	}
	k := catName{s.cat, s.name}
	b := c.buckets[k]
	if b == nil {
		b = &Bucket{}
		c.buckets[k] = b
	}
	b.Count++
	b.Nanos += int64(self)
	if n > 0 {
		c.stack[n-1].child += elapsed
	}
}

// Flush merges the collected buckets into the profiler and resets the
// collector. Nil-safe, so call sites can flush unconditionally.
func (c *Collector) Flush() {
	if c == nil || c.prof == nil || len(c.buckets) == 0 {
		return
	}
	c.prof.mu.Lock()
	for k, b := range c.buckets {
		dst := c.prof.bucketLocked(Key{Phase: c.phase, Cat: k.cat, Name: k.name})
		dst.Count += b.Count
		dst.Nanos += b.Nanos
	}
	c.prof.mu.Unlock()
	c.buckets = map[catName]*Bucket{}
}
