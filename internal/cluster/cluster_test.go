package cluster

import (
	"testing"
)

func TestCluster1MatchesTable3(t *testing.T) {
	c := Cluster1()
	if c.Slaves != 48 {
		t.Errorf("slaves = %d, want 48", c.Slaves)
	}
	if c.Node.MapSlots != 20 || c.Node.ReduceSlots != 2 || c.Node.GPUs != 1 {
		t.Errorf("node = %+v", c.Node)
	}
	if c.HDFS.Replication != 3 {
		t.Errorf("replication = %d, want 3", c.HDFS.Replication)
	}
	if c.HDFS.DataNodes != 48 {
		t.Errorf("datanodes = %d", c.HDFS.DataNodes)
	}
	if c.Device.Name != "Tesla K40 (Kepler)" {
		t.Errorf("device = %q", c.Device.Name)
	}
	if c.InMemory {
		t.Error("Cluster1 has disks")
	}
	if err := c.HDFS.Validate(); err != nil {
		t.Errorf("HDFS config invalid: %v", err)
	}
	if err := c.Device.Validate(); err != nil {
		t.Errorf("device config invalid: %v", err)
	}
}

func TestCluster2MatchesTable3(t *testing.T) {
	c := Cluster2()
	if c.Slaves != 32 {
		t.Errorf("slaves = %d, want 32", c.Slaves)
	}
	if c.Node.MapSlots != 4 || c.Node.GPUs != 3 {
		t.Errorf("node = %+v", c.Node)
	}
	if c.HDFS.Replication != 1 {
		t.Errorf("replication = %d, want 1", c.HDFS.Replication)
	}
	if !c.InMemory {
		t.Error("Cluster2 is diskless (in-memory)")
	}
	if c.Device.Name != "Tesla M2090 (Fermi)" {
		t.Errorf("device = %q", c.Device.Name)
	}
	// In-memory storage must be much faster than Cluster1's disks.
	if c.HDFS.DiskReadGBs <= Cluster1().HDFS.DiskReadGBs {
		t.Error("in-memory reads should beat disk reads")
	}
}

func TestWithGPUs(t *testing.T) {
	c := Cluster2()
	for _, n := range []int{1, 2, 3} {
		if got := c.WithGPUs(n).Node.GPUs; got != n {
			t.Errorf("WithGPUs(%d).GPUs = %d", n, got)
		}
	}
	// Original untouched (value semantics).
	if c.Node.GPUs != 3 {
		t.Error("WithGPUs mutated the receiver")
	}
}

func TestCPUOnlyNode(t *testing.T) {
	c := Cluster1()
	n := c.CPUOnlyNode()
	if n.GPUs != 0 {
		t.Errorf("CPUOnlyNode GPUs = %d", n.GPUs)
	}
	if n.MapSlots != c.Node.MapSlots {
		t.Error("CPUOnlyNode changed map slots")
	}
	if c.Node.GPUs != 1 {
		t.Error("CPUOnlyNode mutated the setup")
	}
}

func TestScaledBlockSizeApplied(t *testing.T) {
	if Cluster1().HDFS.BlockSize != ScaledBlockSize || Cluster2().HDFS.BlockSize != ScaledBlockSize {
		t.Error("scaled block size not applied")
	}
}
