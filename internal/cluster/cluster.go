// Package cluster defines the two evaluation platforms of the paper's
// Table 3 — Cluster1 (48 nodes, 20-core Xeon E5-2680, one Tesla K40 each,
// disks, FDR InfiniBand) and Cluster2 (32 nodes, 12-core Xeon X5560, three
// Tesla M2090s each, in-memory storage, QDR InfiniBand) — as parameter
// sets for the simulated HDFS, CPU, and GPU models.
package cluster

import (
	"repro/internal/gpu"
	"repro/internal/hdfs"
	"repro/internal/mr"
	"repro/internal/streaming"
)

// Setup is one evaluation platform.
type Setup struct {
	Name   string
	Slaves int
	// Node mirrors Table 3's slot rows: map slots == cores for maps, two
	// reduce slots, and one extra slot per GPU for GPU runs.
	Node mr.NodeConfig
	// CPU is the per-core timing model; Device the GPU model.
	CPU    streaming.CPUModel
	Device gpu.DeviceConfig
	// HDFS is the storage deployment. BlockSize here is the scaled
	// simulation block size; the paper's 256 MB blocks are scaled down so
	// functional task sampling stays tractable (see EXPERIMENTS.md).
	HDFS hdfs.Config
	// InMemory marks Cluster2's diskless (RAM-backed) storage.
	InMemory bool
	// DiskWriteGBs / HDFSWriteGBs parameterize task output writing.
	DiskWriteGBs float64
	HDFSWriteGBs float64
	// HeartbeatSec is the TaskTracker heartbeat interval.
	HeartbeatSec float64
}

// ScaledBlockSize is the simulation fileSplit size standing in for the
// paper's 256 MB HDFS blocks.
const ScaledBlockSize = 64 << 10

// Cluster1 returns the primary platform: 48 slaves, 20-core CPUs, one
// Kepler K40 per node, 500 GB disks, FDR InfiniBand, replication 3.
func Cluster1() Setup {
	return Setup{
		Name:   "Cluster1",
		Slaves: 48,
		Node:   mr.NodeConfig{MapSlots: 20, ReduceSlots: 2, GPUs: 1},
		CPU:    streaming.XeonE52680(),
		Device: gpu.TeslaK40(),
		HDFS: hdfs.Config{
			BlockSize:    ScaledBlockSize,
			Replication:  3,
			DataNodes:    48,
			DiskReadGBs:  0.45, // 500GB SATA-era disk
			DiskWriteGBs: 0.25,
			NetworkGBs:   6.8,  // FDR InfiniBand
			SeekMS:       0.02, // scaled with the block size
		},
		DiskWriteGBs: 0.25,
		HDFSWriteGBs: 0.12,
		HeartbeatSec: 3,
	}
}

// Cluster2 returns the multi-GPU platform: 32 slaves, 12-core CPUs, three
// Fermi M2090s per node, in-memory storage (no disks), QDR InfiniBand,
// replication 1, 4 map slots per node.
func Cluster2() Setup {
	return Setup{
		Name:   "Cluster2",
		Slaves: 32,
		Node:   mr.NodeConfig{MapSlots: 4, ReduceSlots: 2, GPUs: 3},
		CPU:    streaming.XeonX5560(),
		Device: gpu.TeslaM2090(),
		HDFS: hdfs.Config{
			BlockSize:    ScaledBlockSize,
			Replication:  1,
			DataNodes:    32,
			DiskReadGBs:  3.0, // RAM-backed filesystem
			DiskWriteGBs: 2.5,
			NetworkGBs:   4.0,   // QDR InfiniBand
			SeekMS:       0.002, // scaled with the block size
		},
		InMemory:     true,
		DiskWriteGBs: 2.5,
		HDFSWriteGBs: 1.8,
		HeartbeatSec: 3,
	}
}

// WithGPUs returns a copy of the setup using n GPUs per node (Cluster2's
// 1/2/3-GPU scaling runs).
func (s Setup) WithGPUs(n int) Setup {
	s.Node.GPUs = n
	return s
}

// WithSlaves returns a copy of the setup shrunk (or grown) to n slave
// nodes, keeping the HDFS datanode count in step and clamping replication
// to the cluster size (small fault-tolerance and test runs).
func (s Setup) WithSlaves(n int) Setup {
	s.Slaves = n
	s.HDFS.DataNodes = n
	if s.HDFS.Replication > n {
		s.HDFS.Replication = n
	}
	return s
}

// CPUOnlyNode returns the node config for baseline Hadoop runs (no GPU
// slots).
func (s Setup) CPUOnlyNode() mr.NodeConfig {
	n := s.Node
	n.GPUs = 0
	return n
}
