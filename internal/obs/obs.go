// Package obs is HeteroDoop's observability layer: a span tracer and a
// metrics registry driven by the simulated clock (package sim), plus the
// per-kernel GPU profiles that package gpurt produces. It is the flight
// recorder behind the paper's evaluation figures — per-device task
// timelines (Figs. 3–4), GPU stage breakdowns (Fig. 6), and kernel cycle
// attribution (Fig. 7) all fall out of one recorded job.
//
// Everything is deliberately zero-dependency (stdlib + package sim) and
// deterministic: two runs with the same seed produce byte-identical trace
// and metrics dumps. Every entry point is nil-safe — a nil *Recorder,
// *Tracer, *Registry, or instrument compiles to a no-op, so hot paths in
// the engine and the GPU runtime carry instrumentation unconditionally.
package obs

import "repro/internal/sim"

// Span categories recorded by the MapReduce engine. Exported as constants
// so tests and tools do not scatter string literals.
const (
	CatJob          = "job"
	CatHeartbeat    = "heartbeat"
	CatMapCPU       = "map-cpu"
	CatMapGPU       = "map-gpu"
	CatSpeculative  = "map-speculative"
	CatGPUQueueWait = "gpu-queue-wait"
	CatShuffle      = "shuffle"
	CatReduce       = "reduce"
	CatKernel       = "kernel"
	CatFault        = "fault"
	CatRecovery     = "recovery"
)

// Attr is one key/value annotation on a span. The value is stored
// pre-rendered as JSON so export is allocation-light and byte-stable.
type Attr struct {
	Key  string
	JSON string
}

// Str builds a string attribute.
func Str(key, val string) Attr { return Attr{Key: key, JSON: quoteJSON(val)} }

// Int builds an integer attribute.
func Int(key string, val int) Attr { return Attr{Key: key, JSON: formatInt(int64(val))} }

// Float builds a float attribute.
func Float(key string, val float64) Attr { return Attr{Key: key, JSON: formatFloat(val)} }

// Span is one recorded interval (or instant, when Begin == End and Instant
// is set) of virtual time on a track.
type Span struct {
	Cat     string
	Name    string
	Begin   sim.Time
	End     sim.Time
	PID     int // process row in the trace viewer (cluster node)
	TID     int // thread row within the process (slot lane)
	Instant bool
	Attrs   []Attr
}

// Tracer records spans in event order. The zero value is ready to use;
// a nil *Tracer ignores every call.
type Tracer struct {
	spans       []Span
	procNames   map[int]string
	threadNames map[[2]int]string
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Span records a completed interval.
func (t *Tracer) Span(cat, name string, begin, end sim.Time, pid, tid int, attrs ...Attr) {
	if t == nil {
		return
	}
	if end < begin {
		end = begin
	}
	t.spans = append(t.spans, Span{Cat: cat, Name: name, Begin: begin, End: end, PID: pid, TID: tid, Attrs: attrs})
}

// Instant records a zero-duration event.
func (t *Tracer) Instant(cat, name string, at sim.Time, pid, tid int, attrs ...Attr) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, Span{Cat: cat, Name: name, Begin: at, End: at, PID: pid, TID: tid, Instant: true, Attrs: attrs})
}

// NameTrack labels a (pid, tid) pair for the trace viewer. Naming the same
// track twice keeps the first name.
func (t *Tracer) NameTrack(pid, tid int, process, thread string) {
	if t == nil {
		return
	}
	if t.procNames == nil {
		t.procNames = map[int]string{}
		t.threadNames = map[[2]int]string{}
	}
	if _, ok := t.procNames[pid]; !ok && process != "" {
		t.procNames[pid] = process
	}
	key := [2]int{pid, tid}
	if _, ok := t.threadNames[key]; !ok && thread != "" {
		t.threadNames[key] = thread
	}
}

// Spans returns the recorded spans in recording order. The caller must not
// mutate the result.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Recorder bundles a tracer and a metrics registry for one job (or one
// tool invocation). A nil *Recorder disables everything downstream.
type Recorder struct {
	trace   *Tracer
	metrics *Registry
}

// NewRecorder returns a recorder with a fresh tracer and registry.
func NewRecorder() *Recorder {
	return &Recorder{trace: NewTracer(), metrics: NewRegistry()}
}

// Tracer returns the recorder's tracer, or nil when r is nil.
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.trace
}

// Metrics returns the recorder's registry, or nil when r is nil.
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.metrics
}
