package obs

import "sort"

// Merge appends another tracer's spans (in their recording order) after
// t's own and folds in its track names with keep-first semantics. Used by
// parallel experiment sweeps: each concurrent job records into a private
// tracer, and the driver merges them in the order a serial sweep would
// have recorded them, so the Chrome trace dump stays byte-identical.
func (t *Tracer) Merge(other *Tracer) {
	if t == nil || other == nil || t == other {
		return
	}
	t.spans = append(t.spans, other.spans...)
	if other.procNames == nil {
		return
	}
	pids := make([]int, 0, len(other.procNames))
	for pid := range other.procNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		t.NameTrack(pid, 0, other.procNames[pid], "")
	}
	keys := make([][2]int, 0, len(other.threadNames))
	for key := range other.threadNames {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		t.NameTrack(key[0], key[1], "", other.threadNames[key])
	}
}

// Merge folds another registry into m as if other's updates had replayed
// after m's own: counters and histograms add, and gauges compose
// sequentially under their delta (Add) semantics — the merged value is
// the sum and the merged peak is max(m's peak, m's value + other's peak).
// Every gauge the job engine records is delta-based (queue depths), so
// this reproduces a serial shared-registry run exactly. Families and
// series are matched by name and canonical label key; helps, types, and
// histogram bounds keep the first registration, like serial re-use.
func (m *Registry) Merge(other *Registry) {
	if m == nil || other == nil || m == other {
		return
	}
	names := make([]string, 0, len(other.families))
	for name := range other.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		of := other.families[name]
		f := m.family(of.name, of.help, of.typ)
		keys := make([]string, 0, len(of.series))
		for k := range of.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s, _ := f.lookup(of.series[k].labels)
			mergeSeries(s, of.series[k])
		}
	}
}

func mergeSeries(dst, src *series) {
	if src.ctr != nil {
		if dst.ctr == nil {
			dst.ctr = &Counter{}
		}
		dst.ctr.v += src.ctr.v
	}
	if src.gauge != nil && src.gauge.set {
		if dst.gauge == nil {
			dst.gauge = &Gauge{}
		}
		g := dst.gauge
		if p := g.v + src.gauge.peak; !g.set || p > g.peak {
			g.peak = p
		}
		g.v += src.gauge.v
		g.set = true
	}
	if src.hist != nil {
		if dst.hist == nil {
			dst.hist = &Histogram{
				bounds: append([]float64(nil), src.hist.bounds...),
				counts: make([]uint64, len(src.hist.counts)),
			}
		}
		h := dst.hist
		for i, c := range src.hist.counts {
			if i < len(h.counts) {
				h.counts[i] += c
			}
		}
		h.sum += src.hist.sum
		h.n += src.hist.n
	}
}

// Merge folds another recorder's trace and metrics into r (both nil-safe).
func (r *Recorder) Merge(other *Recorder) {
	if r == nil || other == nil || r == other {
		return
	}
	r.trace.Merge(other.trace)
	r.metrics.Merge(other.metrics)
}

// Fork returns a fresh private recorder when r is non-nil (for a
// concurrent job whose records are Merged back in deterministic order),
// and nil — recording disabled — when r is nil.
func (r *Recorder) Fork() *Recorder {
	if r == nil {
		return nil
	}
	return NewRecorder()
}
