package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
)

// quoteJSON renders s as a JSON string literal.
func quoteJSON(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `""`
	}
	return string(b)
}

// WriteChromeTrace writes the recorded spans as a Chrome trace_event JSON
// object (the "JSON Object Format": {"traceEvents": [...]}) that loads
// directly in chrome://tracing or Perfetto. Intervals become complete
// events (ph "X"), instants become instant events (ph "i"), and named
// tracks emit process_name / thread_name metadata first. Timestamps are
// virtual-time microseconds. Output is byte-deterministic for a given
// recording.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	var b strings.Builder
	b.WriteString(`{"traceEvents":[`)
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		} else {
			b.WriteString("\n")
			first = false
		}
		b.WriteString(line)
	}

	// Metadata events, sorted for determinism.
	pids := make([]int, 0, len(t.procNames))
	for pid := range t.procNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		emit(`{"ph":"M","pid":` + formatInt(int64(pid)) + `,"tid":0,"name":"process_name","args":{"name":` +
			quoteJSON(t.procNames[pid]) + `}}`)
	}
	tkeys := make([][2]int, 0, len(t.threadNames))
	for k := range t.threadNames {
		tkeys = append(tkeys, k)
	}
	sort.Slice(tkeys, func(i, j int) bool {
		if tkeys[i][0] != tkeys[j][0] {
			return tkeys[i][0] < tkeys[j][0]
		}
		return tkeys[i][1] < tkeys[j][1]
	})
	for _, k := range tkeys {
		emit(`{"ph":"M","pid":` + formatInt(int64(k[0])) + `,"tid":` + formatInt(int64(k[1])) +
			`,"name":"thread_name","args":{"name":` + quoteJSON(t.threadNames[k]) + `}}`)
	}

	for i := range t.spans {
		emit(renderSpan(&t.spans[i]))
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func renderSpan(s *Span) string {
	var b strings.Builder
	b.WriteString(`{"name":`)
	b.WriteString(quoteJSON(s.Name))
	b.WriteString(`,"cat":`)
	b.WriteString(quoteJSON(s.Cat))
	if s.Instant {
		b.WriteString(`,"ph":"i","s":"t"`)
	} else {
		b.WriteString(`,"ph":"X"`)
	}
	b.WriteString(`,"ts":`)
	b.WriteString(formatFloat(float64(s.Begin) * 1e6))
	if !s.Instant {
		b.WriteString(`,"dur":`)
		b.WriteString(formatFloat(float64(s.End-s.Begin) * 1e6))
	}
	b.WriteString(`,"pid":`)
	b.WriteString(formatInt(int64(s.PID)))
	b.WriteString(`,"tid":`)
	b.WriteString(formatInt(int64(s.TID)))
	if len(s.Attrs) > 0 {
		b.WriteString(`,"args":{`)
		for i, a := range s.Attrs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(quoteJSON(a.Key))
			b.WriteByte(':')
			b.WriteString(a.JSON)
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
	return b.String()
}
