package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Label is one metric dimension. Series identity is the metric name plus
// the sorted label set.
type Label struct {
	Key, Val string
}

// L is shorthand for building a Label.
func L(key, val string) Label { return Label{Key: key, Val: val} }

// Registry holds metric families. The zero value is not usable; construct
// with NewRegistry. A nil *Registry hands out nil instruments, whose
// methods are no-ops, so callers never branch on enablement.
type Registry struct {
	families map[string]*family
}

type family struct {
	name, help, typ string
	series          map[string]*series
}

type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

func (m *Registry) family(name, help, typ string) *family {
	f, ok := m.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]*series{}}
		m.families[name] = f
	}
	return f
}

func (f *family) lookup(labels []Label) (*series, string) {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := labelKey(ls)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: ls}
		f.series[key] = s
	}
	return s, key
}

func labelKey(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Val))
	}
	return b.String()
}

// Counter returns (creating on first use) the monotonically increasing
// series name{labels}. Returns nil on a nil registry.
func (m *Registry) Counter(name, help string, labels ...Label) *Counter {
	if m == nil {
		return nil
	}
	s, _ := m.family(name, help, "counter").lookup(labels)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge returns (creating on first use) the gauge series name{labels}.
func (m *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if m == nil {
		return nil
	}
	s, _ := m.family(name, help, "gauge").lookup(labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns (creating on first use) the histogram series
// name{labels} with the given fixed upper bounds (ascending; +Inf is
// implicit). The bounds of the first creation win.
func (m *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if m == nil {
		return nil
	}
	s, _ := m.family(name, help, "histogram").lookup(labels)
	if s.hist == nil {
		s.hist = &Histogram{bounds: append([]float64(nil), buckets...), counts: make([]uint64, len(buckets)+1)}
	}
	return s.hist
}

// Value reports the current value of the counter or gauge series
// name{labels}, and whether it exists.
func (m *Registry) Value(name string, labels ...Label) (float64, bool) {
	if m == nil {
		return 0, false
	}
	f, ok := m.families[name]
	if !ok {
		return 0, false
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	s, ok := f.series[labelKey(ls)]
	if !ok {
		return 0, false
	}
	switch {
	case s.ctr != nil:
		return s.ctr.Value(), true
	case s.gauge != nil:
		return s.gauge.Value(), true
	}
	return 0, false
}

// Counter is a monotonically increasing value. Methods on a nil *Counter
// are no-ops.
type Counter struct{ v float64 }

// Add increases the counter by d (negative deltas are ignored).
func (c *Counter) Add(d float64) {
	if c == nil || d < 0 {
		return
	}
	c.v += d
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a value that can move both ways; it also remembers its peak,
// which boundedness tests (e.g. GPU queue depth) assert against.
type Gauge struct {
	v, peak float64
	set     bool
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
	if !g.set || v > g.peak {
		g.peak = v
	}
	g.set = true
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.Set(g.v + d)
}

// Value returns the last set value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Peak returns the maximum value ever set (0 on nil).
func (g *Gauge) Peak() float64 {
	if g == nil {
		return 0
	}
	return g.peak
}

// Histogram counts observations into fixed buckets (cumulative on export,
// Prometheus-style).
type Histogram struct {
	bounds []float64 // upper bounds, ascending; counts has one extra +Inf slot
	counts []uint64
	sum    float64
	n      uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx]++
	h.sum += v
	h.n++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// DurationBuckets is the default histogram bounds (seconds) for task and
// kernel durations: two decades of 1-2-5 around the simulated task scale.
var DurationBuckets = []float64{
	1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3,
	1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500,
}

// WriteProm writes the registry in the Prometheus text exposition format.
// Output is deterministic: families sort by name, series by label key.
func (m *Registry) WriteProm(w io.Writer) error {
	if m == nil {
		return nil
	}
	names := make([]string, 0, len(m.families))
	for name := range m.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := m.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := writeSeries(w, f, f.series[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.ctr != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels, nil), formatFloat(s.ctr.v))
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels, nil), formatFloat(s.gauge.v))
		return err
	case s.hist != nil:
		h := s.hist
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i]
			le := Label{Key: "le", Val: formatFloat(b)}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, &le), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)]
		le := Label{Key: "le", Val: "+Inf"}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, &le), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(s.labels, nil), formatFloat(h.sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(s.labels, nil), h.n)
		return err
	}
	return nil
}

// renderLabels renders {k="v",...}, appending extra (the `le` bound) last
// as Prometheus convention allows.
func renderLabels(ls []Label, extra *Label) string {
	if len(ls) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", l.Key, strconv.Quote(l.Val))
	}
	if extra != nil {
		if len(ls) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", extra.Key, strconv.Quote(extra.Val))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }
