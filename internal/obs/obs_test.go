package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Recorder
	tr := r.Tracer()
	reg := r.Metrics()
	if tr != nil || reg != nil {
		t.Fatal("nil recorder handed out live components")
	}
	// None of these may panic.
	tr.Span("cat", "n", 0, 1, 0, 0)
	tr.Instant("cat", "n", 0, 0, 0)
	tr.NameTrack(0, 0, "p", "t")
	if tr.Spans() != nil {
		t.Fatal("nil tracer has spans")
	}
	reg.Counter("c", "").Inc()
	reg.Gauge("g", "").Set(3)
	reg.Histogram("h", "", DurationBuckets).Observe(1)
	reg.RecordKernelProfiles([]KernelProfile{{Kernel: "map"}})
	if _, ok := reg.Value("c"); ok {
		t.Fatal("nil registry returned a value")
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil tracer trace invalid: %s", buf.String())
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("mr_retries_total", "retries", L("device", "gpu"))
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	if same := reg.Counter("mr_retries_total", "", L("device", "gpu")); same != c {
		t.Fatal("same name+labels did not return the same counter")
	}
	g := reg.Gauge("queue_depth", "")
	g.Set(2)
	g.Set(7)
	g.Set(1)
	if g.Value() != 1 || g.Peak() != 7 {
		t.Fatalf("gauge value=%v peak=%v", g.Value(), g.Peak())
	}
	h := reg.Histogram("dur", "", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
	v, ok := reg.Value("mr_retries_total", L("device", "gpu"))
	if !ok || v != 3 {
		t.Fatalf("Value = %v, %v", v, ok)
	}
}

func TestPromDumpDeterministicAndSorted(t *testing.T) {
	build := func() string {
		reg := NewRegistry()
		reg.Gauge("zzz", "last").Set(1)
		reg.Counter("aaa", "first", L("b", "2"), L("a", "1")).Add(4)
		reg.Counter("aaa", "first", L("a", "0"), L("b", "9")).Add(2)
		h := reg.Histogram("mid", "hist", []float64{0.5, 2})
		h.Observe(0.1)
		h.Observe(1)
		h.Observe(99)
		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("nondeterministic dump:\n%s\nvs\n%s", a, b)
	}
	wantOrder := []string{
		`aaa{a="0",b="9"} 2`,
		`aaa{a="1",b="2"} 4`,
		`mid_bucket{le="0.5"} 1`,
		`mid_bucket{le="2"} 2`,
		`mid_bucket{le="+Inf"} 3`,
		`mid_sum 100.1`,
		`mid_count 3`,
		`zzz 1`,
	}
	idx := -1
	for _, line := range wantOrder {
		j := strings.Index(a, line)
		if j < 0 {
			t.Fatalf("dump missing %q:\n%s", line, a)
		}
		if j < idx {
			t.Fatalf("line %q out of order:\n%s", line, a)
		}
		idx = j
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	tr.NameTrack(0, 1, "node0", "cpu")
	tr.NameTrack(0, 2, "node0", "gpu")
	tr.Span(CatMapCPU, "map-0", 1.5, 2.5, 0, 1, Int("split", 0), Str("state", "won"))
	tr.Span(CatKernel, "map", 2.0, 2.1, 0, 2, Float("cycles", 123.5))
	tr.Instant(CatHeartbeat, "hb", 3, 0, 0)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	// 2 process_name + 2 thread_name + 3 spans.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("events = %d, want 6:\n%s", len(doc.TraceEvents), buf.String())
	}
	var sawComplete, sawInstant bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			sawComplete = true
			if ev["ts"].(float64) < 0 || ev["dur"].(float64) < 0 {
				t.Fatalf("bad complete event %v", ev)
			}
		case "i":
			sawInstant = true
		}
	}
	if !sawComplete || !sawInstant {
		t.Fatalf("missing event phases in %s", buf.String())
	}
	if !strings.Contains(buf.String(), `"split":0`) || !strings.Contains(buf.String(), `"cycles":123.5`) {
		t.Fatalf("args not exported: %s", buf.String())
	}
}

func TestKernelProfileMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.RecordKernelProfiles([]KernelProfile{
		{Kernel: "map", Seconds: 0.01, Blocks: 4, Occupancy: 0.8, StragglerSkew: 1.5, Steals: 7,
			Cycles: []SpaceCycles{{"op", 100}, {"global", 50}, {"shared", 0}}},
		{Kernel: "sort", Seconds: 0.002},
	})
	if v, _ := reg.Value("gpu_kernel_cycles_total", L("kernel", "map"), L("space", "global")); v != 50 {
		t.Fatalf("global cycles = %v", v)
	}
	if _, ok := reg.Value("gpu_kernel_cycles_total", L("kernel", "map"), L("space", "shared")); ok {
		t.Fatal("zero-cycle space should not create a series")
	}
	if v, _ := reg.Value("gpu_kernel_launches_total", L("kernel", "sort")); v != 1 {
		t.Fatalf("sort launches = %v", v)
	}
	p := KernelProfile{Cycles: []SpaceCycles{{"op", 1}, {"global", 2}}}
	if p.TotalCycles() != 3 {
		t.Fatalf("TotalCycles = %v", p.TotalCycles())
	}
}
