package obs

import "repro/internal/perf"

// SpaceCycles is one memory space's share of a kernel's cycles.
type SpaceCycles struct {
	Space  string
	Cycles float64
}

// KernelProfile is the per-kernel record the GPU runtime attaches to every
// task: where the cycles went (by memory space), how the threadblocks
// balanced, and how long the launch took. Analytic kernels (record count,
// scan, sort) carry timing but no cycle breakdown.
type KernelProfile struct {
	// Kernel names the launch: "record-count", "map", "aggregate", "sort",
	// "combine".
	Kernel string
	// Seconds is the kernel's simulated wall time.
	Seconds float64
	// Blocks is the number of threadblocks launched (0 for analytic
	// kernels).
	Blocks int
	// Occupancy is the fraction of SM-cycles doing work under the
	// list-scheduled block placement (1.0 = perfectly balanced).
	Occupancy float64
	// StragglerSkew is max-block-cycles / mean-block-cycles (1.0 = uniform
	// blocks; large values mean one block gates the kernel).
	StragglerSkew float64
	// Steals counts dynamic record grants (map kernels with stealing).
	Steals int64
	// Cycles attributes the kernel's total thread-cycles per memory space,
	// in a fixed order (op, global, coalesced, shared, constant, texture,
	// register, local, atomic-shared, atomic-global).
	Cycles []SpaceCycles
}

// TotalCycles sums the attributed cycles.
func (p *KernelProfile) TotalCycles() float64 {
	var t float64
	for _, s := range p.Cycles {
		t += s.Cycles
	}
	return t
}

// RecordKernelProfiles folds kernel profiles into the registry under the
// gpu_kernel_* families, labeled by kernel name (and memory space for the
// cycle attribution).
func (m *Registry) RecordKernelProfiles(profiles []KernelProfile) {
	if m == nil {
		return
	}
	for i := range profiles {
		p := &profiles[i]
		kl := L("kernel", p.Kernel)
		m.Counter("gpu_kernel_launches_total", "GPU kernel launches", kl).Inc()
		m.Counter("gpu_kernel_seconds_total", "Summed GPU kernel time", kl).Add(p.Seconds)
		if p.Steals > 0 {
			m.Counter("gpu_kernel_steals_total", "Dynamic record grants", kl).Add(float64(p.Steals))
		}
		if p.Blocks > 0 {
			m.Histogram("gpu_kernel_occupancy", "Per-launch SM occupancy", OccupancyBuckets, kl).Observe(p.Occupancy)
			m.Histogram("gpu_kernel_straggler_skew", "Per-launch max/mean block cycles", SkewBuckets, kl).Observe(p.StragglerSkew)
		}
		for _, sc := range p.Cycles {
			if sc.Cycles == 0 {
				continue
			}
			m.Counter("gpu_kernel_cycles_total", "GPU kernel cycles by memory space",
				kl, L("space", sc.Space)).Add(sc.Cycles)
		}
	}
}

// RecordCostProfile folds a wall-clock cost-profiler snapshot into the
// registry under the hd_prof_* families, so the hot-path attribution ships
// through the same metrics surface as the virtual-time counters.
func (m *Registry) RecordCostProfile(snap perf.Snapshot) {
	if m == nil {
		return
	}
	for _, e := range snap.Entries() {
		labels := []Label{L("cat", e.Cat), L("name", e.Name)}
		if e.Phase != "" {
			labels = append(labels, L("phase", e.Phase))
		}
		m.Counter("hd_prof_self_seconds_total", "Wall-clock self time by cost bucket", labels...).
			Add(float64(e.Nanos) / 1e9)
		m.Counter("hd_prof_calls_total", "Invocations by cost bucket", labels...).
			Add(float64(e.Count))
	}
}

// OccupancyBuckets are the fixed bounds for the occupancy histogram.
var OccupancyBuckets = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}

// SkewBuckets are the fixed bounds for the straggler-skew histogram.
var SkewBuckets = []float64{1, 1.1, 1.25, 1.5, 2, 3, 5, 10}
