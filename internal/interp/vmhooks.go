package interp

import (
	"errors"

	"repro/internal/minic"
	"repro/internal/perf"
)

// Hooks for the bytecode VM (package bytecode). The VM executes compiled
// register code but delegates everything stateful — object memory,
// globals, string literals, the builtin table, cost charging, the step
// budget — to a Machine, so both execution cores share one runtime and
// produce identical observable behavior (output bytes, cost totals, step
// counts, error strings).

// InitGlobals runs file-scope initializers once (idempotent).
func (m *Machine) InitGlobals() error { return m.initGlobals() }

// AddSteps charges n statement steps against the step budget, returning
// ErrMaxSteps when the budget is exhausted. The VM batches the per-block
// statement charges the tree-walker pays one at a time.
func (m *Machine) AddSteps(n int64) error {
	m.steps += n
	if m.steps > m.maxSteps {
		return ErrMaxSteps
	}
	return nil
}

// SpaceOf returns the memory space a symbol's storage is placed in.
func (m *Machine) SpaceOf(sym *minic.Symbol) MemSpace { return m.spaceOf(sym) }

// InternLiteral returns the shared object for a string literal.
func (m *Machine) InternLiteral(s string) *Object { return m.internLiteral(s) }

// Stdio returns the opaque handle object for a stdio stream name.
func (m *Machine) Stdio(name string) *Object { return m.stdioHandle(name) }

// BuiltinNamed looks up a builtin/intrinsic implementation.
func (m *Machine) BuiltinNamed(name string) (Builtin, bool) {
	impl, ok := m.builtins[name]
	return impl, ok
}

// CallBuiltin invokes a builtin implementation with profiling attribution
// when enabled. The caller charges the call-overhead cost.
func (m *Machine) CallBuiltin(name string, impl Builtin, args []Value) (Value, error) {
	if m.prof != nil {
		return m.callBuiltinProfiled(name, impl, args)
	}
	return impl(m, args)
}

// CallDecl invokes a function declaration with pre-built argument values,
// propagating errors (including exit unwinding) unchanged. The VM uses it
// to fall back to the tree-walker for functions it declined to compile.
func (m *Machine) CallDecl(fn *minic.FuncDecl, args []Value) (Value, error) {
	return m.call(fn, args)
}

// LoadPtr loads the cell at p with bounds checking and cost charging.
func (m *Machine) LoadPtr(p Pointer) (Value, error) { return m.load(p) }

// StorePtr stores v into the cell at p with bounds checking, cost
// charging, and conversion to the object's element type.
func (m *Machine) StorePtr(p Pointer, v Value) error { return m.store(p, v) }

// Prof returns the machine's profiling collector (nil when off).
func (m *Machine) Prof() *perf.Collector { return m.prof }

// HasPragmaHook reports whether the machine intercepts mapreduce pragmas
// (host-capture machines). Such machines must stay on the tree-walker:
// the bytecode compiler lowers pragma bodies inline.
func (m *Machine) HasPragmaHook() bool { return m.onPragma != nil }

// ExitStatus unwraps the control-flow error the exit() builtin raises,
// reporting the exit code and whether err was an exit.
func ExitStatus(err error) (int, bool) {
	var ex errExit
	if errors.As(err, &ex) {
		return ex.code, true
	}
	return 0, false
}

// ApplyBinary applies a binary operator with the interpreter's exact
// semantics (pointer arithmetic, float promotion, division-by-zero
// errors).
func ApplyBinary(op string, l, r Value) (Value, error) { return applyBinary(op, l, r) }

// AddInt adds an integer delta to a value (used for ++/-- semantics:
// floats add, pointers advance, integers add without width truncation).
func AddInt(v Value, d int64) Value { return addInt(v, d) }

// ConvertFor converts v to the storage representation of type t.
func ConvertFor(t *minic.Type, v Value) Value { return convertFor(t, v) }

// FlattenArray reduces a possibly multi-dimensional array type to a total
// cell count and scalar element type.
func FlattenArray(t *minic.Type) (int, *minic.Type) { return flattenArray(t) }
