package interp

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

func runSrc(t *testing.T, src, stdin string) string {
	t.Helper()
	prog, err := minic.ParseAndCheck(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var out strings.Builder
	m := New(prog, Options{Stdin: strings.NewReader(stdin), Stdout: &out})
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

func TestPrintfVerbCoverage(t *testing.T) {
	out := runSrc(t, `
int main() {
	printf("%x|%c|%e|%g|%%\n", 255, 'Z', 1234.5, 0.5);
	printf("%.0f %.1f %.5f\n", 2.5, 2.25, 1.0);
	printf("%ld %d\n", 9999999999, -1);
	return 0;
}`, "")
	want := "ff|Z|1.234500e+03|0.5|%\n2 2.2 1.00000\n9999999999 -1\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestPrintfErrors(t *testing.T) {
	for _, src := range []string{
		`int main() { printf("%d\n"); return 0; }`,     // missing arg
		`int main() { printf("%q\n", 1); return 0; }`,  // unknown verb
		`int main() { printf("%s\n", 42); return 0; }`, // %s non-pointer
		`int main() { printf("trail%"); return 0; }`,   // dangling %
	} {
		prog, err := minic.ParseAndCheck(src)
		if err != nil {
			t.Fatal(err)
		}
		m := New(prog, Options{})
		if _, err := m.Run(); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestScanfCharAndMixed(t *testing.T) {
	out := runSrc(t, `
int main() {
	char c;
	scanf("%c", &c);
	printf("%c\n", c);
	int i; double d;
	scanf("%d %lf", &i, &d);
	printf("%d %.1f\n", i, d);
	return 0;
}`, "X 42 2.5\n")
	if out != "X\n42 2.5\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestScanfStopsOnMalformedToken(t *testing.T) {
	out := runSrc(t, `
int main() {
	int v, n = 0;
	while (scanf("%d", &v) == 1) n++;
	printf("%d\n", n);
	return 0;
}`, "1 2 three 4\n")
	if out != "2\n" {
		t.Fatalf("out = %q (scanf should stop at 'three')", out)
	}
}

func TestGetcharPutchar(t *testing.T) {
	out := runSrc(t, `
int main() {
	int c;
	while ((c = getchar()) != -1) {
		putchar(toupper(c));
	}
	return 0;
}`, "abc\n")
	if out != "ABC\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestStrncpyAndStrncmp(t *testing.T) {
	out := runSrc(t, `
int main() {
	char buf[10];
	strncpy(buf, "abcdef", 3);
	printf("%s\n", buf);
	printf("%d %d %d\n",
		strncmp("abcdef", "abcxyz", 3),
		strncmp("abcdef", "abcxyz", 4) < 0 ? -1 : 1,
		strncmp("abc", "abc", 100));
	return 0;
}`, "")
	if out != "abc\n0 -1 0\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestCallocZeroes(t *testing.T) {
	out := runSrc(t, `
int main() {
	int *p = (int*) calloc(4, sizeof(int));
	int sum = 0;
	for (int i = 0; i < 4; i++) sum += p[i];
	printf("%d\n", sum);
	free(p);
	return 0;
}`, "")
	if out != "0\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestMathFunctions(t *testing.T) {
	out := runSrc(t, `
int main() {
	printf("%.3f %.3f %.3f %.3f\n", floor(2.7), ceil(2.1), fmin(1.0, 2.0), fmax(1.0, 2.0));
	printf("%.3f %.3f\n", fabs(-3.5), log2(8.0));
	printf("%.4f %.4f\n", sin(0.0), cos(0.0));
	printf("%.4f\n", erf(0.0));
	return 0;
}`, "")
	want := "2.000 3.000 1.000 2.000\n3.500 3.000\n0.0000 1.0000\n0.0000\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestMallocNegativeFails(t *testing.T) {
	prog, err := minic.ParseAndCheck(`int main() { char *p = (char*) malloc(-5); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, Options{})
	if _, err := m.Run(); err == nil {
		t.Fatal("negative malloc accepted")
	}
}

func TestPointerComparisonsAndArithmetic(t *testing.T) {
	out := runSrc(t, `
int main() {
	char buf[10];
	char *a = buf;
	char *b = buf + 4;
	printf("%d %d %d %d\n", a < b, a == b, b - a, (b - 2) - a);
	return 0;
}`, "")
	if out != "1 0 4 2\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestUnrelatedPointerSubtractionFails(t *testing.T) {
	prog, err := minic.ParseAndCheck(`
int main() {
	char a[4], b[4];
	char *p = a, *q = b;
	return (int)(p - q);
}`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, Options{})
	if _, err := m.Run(); err == nil {
		t.Fatal("cross-object pointer subtraction accepted")
	}
}

func TestStepCounterVisible(t *testing.T) {
	prog, err := minic.ParseAndCheck(`int main() { for (int i = 0; i < 100; i++) { } return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, Options{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Steps() < 100 {
		t.Fatalf("Steps = %d", m.Steps())
	}
}
