package interp

import (
	"repro/internal/minic"
)

// Frame is an exported handle to one execution scope. The GPU executor
// (package gpurt) builds a frame per simulated thread, binds the
// translator's variable plan into it (shared read-only objects, per-thread
// private copies), and then steps the kernel region inside it.
type Frame struct {
	f *frame
}

// NewFrame returns an empty frame.
func (m *Machine) NewFrame() *Frame {
	return &Frame{f: &frame{vars: map[*minic.Symbol]*Object{}}}
}

// Bind installs storage for sym in the frame.
func (fr *Frame) Bind(sym *minic.Symbol, obj *Object) {
	fr.f.vars[sym] = obj
}

// Object returns the storage bound to sym, or nil.
func (fr *Frame) Object(sym *minic.Symbol) *Object {
	return fr.f.vars[sym]
}

// EvalIn evaluates an expression within the frame.
func (m *Machine) EvalIn(fr *Frame, e minic.Expr) (Value, error) {
	if err := m.initGlobals(); err != nil {
		return Value{}, err
	}
	return m.eval(fr.f, e)
}

// ExecIn executes a statement within the frame. It reports terminated=true
// when the statement ended with a return (break/continue propagate as
// normal loop control and report false).
func (m *Machine) ExecIn(fr *Frame, s minic.Stmt) (terminated bool, err error) {
	if err := m.initGlobals(); err != nil {
		return false, err
	}
	c, err := m.execStmt(fr.f, s)
	if err != nil {
		return false, err
	}
	return c.kind == ctrlReturn, nil
}

// SetCost swaps the machine's cost sink, returning the previous one. The
// GPU executor points the machine at the current thread's accumulator.
func (m *Machine) SetCost(c CostSink) CostSink {
	old := m.cost
	if c == nil {
		c = NopSink{}
	}
	m.cost = c
	return old
}

// Cost returns the active cost sink (for intrinsics that charge custom
// costs).
func (m *Machine) Cost() CostSink { return m.cost }

// AllocSpace returns the machine's default allocation space.
func (m *Machine) AllocSpace() MemSpace { return m.space }

// GlobalObject returns the storage of a file-scope variable, or nil.
func (m *Machine) GlobalObject(sym *minic.Symbol) *Object {
	obj := m.globals[sym]
	if obj == globalsDone {
		return nil
	}
	return obj
}
