// Package interp executes MiniC programs. It provides the CPU-side
// execution of Hadoop Streaming map/combine/reduce filters and, re-hosted
// with GPU intrinsics by package gpurt, the per-thread execution of
// translated GPU kernels.
//
// The interpreter uses an addressable object memory model: every variable
// is an Object of one or more cells, and pointers are (object, offset)
// pairs, which supports &x, *p, pointer arithmetic, and char buffers. Every
// object carries a memory-space tag so that a pluggable CostSink can charge
// loads and stores to the right level of the simulated memory hierarchy.
package interp

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/minic"
	"repro/internal/perf"
)

// MemSpace identifies which simulated memory an object lives in. The CPU
// path uses SpaceRAM for everything; the GPU path tags objects per the
// translator's placement decisions (paper §3.2, Algorithm 1).
type MemSpace uint8

// Memory spaces.
const (
	SpaceRAM      MemSpace = iota // CPU main memory
	SpaceReg                      // GPU registers / private scalars
	SpaceLocal                    // GPU per-thread local (private arrays)
	SpaceShared                   // GPU per-SM shared memory
	SpaceGlobal                   // GPU device (global) memory
	SpaceConstant                 // GPU constant memory (kernel params)
	SpaceTexture                  // GPU texture memory (cached read-only)
)

func (s MemSpace) String() string {
	switch s {
	case SpaceRAM:
		return "ram"
	case SpaceReg:
		return "reg"
	case SpaceLocal:
		return "local"
	case SpaceShared:
		return "shared"
	case SpaceGlobal:
		return "global"
	case SpaceConstant:
		return "constant"
	case SpaceTexture:
		return "texture"
	default:
		return "?"
	}
}

// CostSink receives execution cost events. Implementations must be cheap;
// the interpreter calls them on every operation.
type CostSink interface {
	// Op charges n generic ALU/control operations.
	Op(n int)
	// Load charges a read of width bytes from space.
	Load(space MemSpace, width int)
	// Store charges a write of width bytes to space.
	Store(space MemSpace, width int)
}

// NopSink discards all cost events.
type NopSink struct{}

// Op implements CostSink.
func (NopSink) Op(int) {}

// Load implements CostSink.
func (NopSink) Load(MemSpace, int) {}

// Store implements CostSink.
func (NopSink) Store(MemSpace, int) {}

// CountingSink tallies cost events; used for the CPU timing model and in
// tests.
type CountingSink struct {
	Ops    int64
	Loads  int64
	Stores int64
	// Bytes by space, indexed by MemSpace.
	LoadBytes  [8]int64
	StoreBytes [8]int64
}

// Op implements CostSink.
func (c *CountingSink) Op(n int) { c.Ops += int64(n) }

// Load implements CostSink.
func (c *CountingSink) Load(s MemSpace, w int) { c.Loads++; c.LoadBytes[s] += int64(w) }

// Store implements CostSink.
func (c *CountingSink) Store(s MemSpace, w int) { c.Stores++; c.StoreBytes[s] += int64(w) }

// ValKind tags runtime values.
type ValKind uint8

// Value kinds.
const (
	ValInt ValKind = iota
	ValFloat
	ValPtr
)

// Object is a block of storage: a scalar (1 cell), an array, or a malloc'd
// buffer. Cells hold Values of the object's element kind.
type Object struct {
	Cells []Value
	Elem  *minic.Type
	Space MemSpace
	Name  string
}

// NewObject allocates an object of n cells of elem type in space.
func NewObject(name string, elem *minic.Type, n int, space MemSpace) *Object {
	return &Object{Cells: make([]Value, n), Elem: elem, Space: space, Name: name}
}

// Pointer references a cell within an object. A nil Obj is the null
// pointer.
type Pointer struct {
	Obj *Object
	Off int
}

// IsNull reports whether p is the null pointer.
func (p Pointer) IsNull() bool { return p.Obj == nil }

// Value is a runtime value.
type Value struct {
	Kind ValKind
	I    int64
	F    float64
	P    Pointer
}

// IntVal builds an integer value.
func IntVal(i int64) Value { return Value{Kind: ValInt, I: i} }

// FloatVal builds a float value.
func FloatVal(f float64) Value { return Value{Kind: ValFloat, F: f} }

// PtrVal builds a pointer value.
func PtrVal(p Pointer) Value { return Value{Kind: ValPtr, P: p} }

// AsInt coerces to int64 (floats truncate, pointers are truthy-only).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case ValInt:
		return v.I
	case ValFloat:
		return int64(v.F)
	case ValPtr:
		if v.P.IsNull() {
			return 0
		}
		return 1
	}
	return 0
}

// AsFloat coerces to float64.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case ValInt:
		return float64(v.I)
	case ValFloat:
		return v.F
	}
	return 0
}

// Truthy reports C truthiness.
func (v Value) Truthy() bool {
	switch v.Kind {
	case ValInt:
		return v.I != 0
	case ValFloat:
		return v.F != 0
	case ValPtr:
		return !v.P.IsNull()
	}
	return false
}

// Builtin is a runtime-provided function implementation.
type Builtin func(m *Machine, args []Value) (Value, error)

// Options configures a Machine.
type Options struct {
	// Stdin supplies input records; nil means empty input.
	Stdin io.Reader
	// Stdout receives printf output; nil discards it.
	Stdout io.Writer
	// Cost receives cost events; nil installs NopSink.
	Cost CostSink
	// Intrinsics add or override builtin implementations (used by the GPU
	// runtime to supply getRecord, emitKV, ...).
	Intrinsics map[string]Builtin
	// DefaultSpace is the memory space for newly allocated objects.
	DefaultSpace MemSpace
	// SpaceFor, when non-nil, picks the memory space for a symbol's
	// storage; used by the GPU path to honor the translator's placements.
	SpaceFor func(sym *minic.Symbol) MemSpace
	// MaxSteps bounds the number of statements executed (0 = default cap).
	MaxSteps int64
	// OnPragma, when non-nil, intercepts mapreduce pragma statements. The
	// GPU driver uses it to capture host variable values at the kernel
	// launch point and skip CPU execution of the region (handled=true).
	OnPragma func(p *minic.PragmaStmt, fr *Frame) (handled bool, err error)
	// Prof, when non-nil, receives wall-clock self-time buckets per AST
	// node kind and per builtin. Nil (the default) costs one pointer check
	// per statement/expression.
	Prof *perf.Collector
}

// ErrMaxSteps is returned when the execution step budget is exhausted.
var ErrMaxSteps = errors.New("interp: step budget exhausted (possible infinite loop)")

// errExit carries the exit() status through unwinding.
type errExit struct{ code int }

func (e errExit) Error() string { return fmt.Sprintf("exit(%d)", e.code) }

// Machine executes one MiniC program instance. Machines are not safe for
// concurrent use; create one per simulated thread.
type Machine struct {
	Prog *minic.Program

	stdin    *tokenReader
	stdout   io.Writer
	cost     CostSink
	builtins map[string]Builtin
	space    MemSpace
	spaceFor func(sym *minic.Symbol) MemSpace

	globals  map[*minic.Symbol]*Object
	literals map[string]*Object
	onPragma func(p *minic.PragmaStmt, fr *Frame) (bool, error)
	prof     *perf.Collector
	// profSkip is the latch the profiling wrappers use to re-enter the
	// execStmt/eval dispatch bodies without recursing back into themselves;
	// see execStmt.
	profSkip bool

	steps    int64
	maxSteps int64
}

type ctrlKind uint8

const (
	ctrlNone ctrlKind = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type ctrl struct {
	kind ctrlKind
	val  Value
}

// frame is one function invocation's storage, keyed by resolved symbol.
type frame struct {
	vars map[*minic.Symbol]*Object
}

// New builds a machine for prog. The program must have passed minic.Check.
func New(prog *minic.Program, opts Options) *Machine {
	m := &Machine{
		Prog:     prog,
		stdout:   opts.Stdout,
		cost:     opts.Cost,
		space:    opts.DefaultSpace,
		spaceFor: opts.SpaceFor,
		globals:  map[*minic.Symbol]*Object{},
		literals: map[string]*Object{},
		onPragma: opts.OnPragma,
		prof:     opts.Prof,
		maxSteps: opts.MaxSteps,
	}
	if m.cost == nil {
		m.cost = NopSink{}
	}
	if m.maxSteps == 0 {
		m.maxSteps = 2_000_000_000
	}
	m.stdin = newTokenReader(opts.Stdin)
	m.builtins = map[string]Builtin{}
	for name, fn := range stdlib {
		m.builtins[name] = fn
	}
	for name, fn := range opts.Intrinsics {
		m.builtins[name] = fn
	}
	return m
}

// Steps reports statements executed so far.
func (m *Machine) Steps() int64 { return m.steps }

// Run initializes globals and executes main, returning its exit status.
func (m *Machine) Run() (int, error) {
	if err := m.initGlobals(); err != nil {
		return 0, err
	}
	mainFn := m.Prog.Func("main")
	if mainFn == nil {
		return 0, errors.New("interp: program has no main function")
	}
	v, err := m.call(mainFn, nil)
	var ex errExit
	if errors.As(err, &ex) {
		return ex.code, nil
	}
	if err != nil {
		return 0, err
	}
	return int(v.AsInt()), nil
}

// CallFunction invokes a named function with pre-built argument values.
// Globals are initialized on first use. The GPU executor uses this to run
// kernel functions per thread.
func (m *Machine) CallFunction(name string, args []Value) (Value, error) {
	if err := m.initGlobals(); err != nil {
		return Value{}, err
	}
	fn := m.Prog.Func(name)
	if fn == nil {
		return Value{}, fmt.Errorf("interp: no function %q", name)
	}
	v, err := m.call(fn, args)
	var ex errExit
	if errors.As(err, &ex) {
		return IntVal(int64(ex.code)), nil
	}
	return v, err
}

var globalsDone = &Object{}

func (m *Machine) initGlobals() error {
	if m.globals[nil] == globalsDone {
		return nil
	}
	m.globals[nil] = globalsDone
	if m.prof != nil {
		m.prof.Enter(perf.CatStmt, "GlobalInit")
		defer m.prof.Exit()
	}
	f := &frame{vars: m.globals}
	for _, g := range m.Prog.Globals {
		if _, err := m.execDecl(f, g); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) spaceOf(sym *minic.Symbol) MemSpace {
	if m.spaceFor != nil {
		return m.spaceFor(sym)
	}
	return m.space
}

func (m *Machine) call(fn *minic.FuncDecl, args []Value) (Value, error) {
	if len(args) != len(fn.Params) {
		return Value{}, fmt.Errorf("interp: %s called with %d args, want %d", fn.Name, len(args), len(fn.Params))
	}
	f := &frame{vars: map[*minic.Symbol]*Object{}}
	for i, p := range fn.Params {
		obj := NewObject(p.Name, p.Type, 1, m.spaceOf(p.Sym))
		obj.Cells[0] = convertFor(p.Type, args[i])
		f.vars[p.Sym] = obj
	}
	c, err := m.execBlock(f, fn.Body)
	if err != nil {
		return Value{}, err
	}
	if c.kind == ctrlReturn {
		return convertFor(fn.Ret, c.val), nil
	}
	return Value{}, nil
}

func (m *Machine) execBlock(f *frame, b *minic.Block) (ctrl, error) {
	for _, s := range b.Stmts {
		c, err := m.execStmt(f, s)
		if err != nil || c.kind != ctrlNone {
			return c, err
		}
	}
	return ctrl{}, nil
}

// execStmt carries the dispatch body itself so that with profiling off
// (m.prof == nil, the default) the cost is one predictable branch — no
// extra call frame, no defer. The obvious alternatives both fail the <2%
// disabled-overhead budget on this hot path: a wrapper-function split
// adds a real call (and a 56-byte result copy) per AST node (~8% on the
// cluster benchmarks), and `defer m.prof.Exit()` cannot be open-coded
// here (the body exceeds the compiler's NumReturns*NumDefers cap), so
// every return would take the runtime's deferreturn/_panic walk (~25%).
// When profiling is on, execStmtProfiled wraps exactly one re-entry of
// this body via the profSkip latch.
func (m *Machine) execStmt(f *frame, s minic.Stmt) (ctrl, error) {
	if m.prof != nil {
		if !m.profSkip {
			return m.execStmtProfiled(f, s)
		}
		m.profSkip = false
	}
	m.steps++
	if m.steps > m.maxSteps {
		return ctrl{}, ErrMaxSteps
	}
	m.cost.Op(1)
	switch st := s.(type) {
	case *minic.DeclStmt:
		return m.execDecl(f, st)
	case *minic.ExprStmt:
		_, err := m.eval(f, st.X)
		return ctrl{}, err
	case *minic.EmptyStmt:
		return ctrl{}, nil
	case *minic.Block:
		return m.execBlock(f, st)
	case *minic.If:
		cond, err := m.eval(f, st.Cond)
		if err != nil {
			return ctrl{}, err
		}
		if cond.Truthy() {
			return m.execStmt(f, st.Then)
		}
		if st.Else != nil {
			return m.execStmt(f, st.Else)
		}
		return ctrl{}, nil
	case *minic.While:
		for {
			cond, err := m.eval(f, st.Cond)
			if err != nil {
				return ctrl{}, err
			}
			if !cond.Truthy() {
				return ctrl{}, nil
			}
			c, err := m.execStmt(f, st.Body)
			if err != nil {
				return ctrl{}, err
			}
			switch c.kind {
			case ctrlBreak:
				return ctrl{}, nil
			case ctrlReturn:
				return c, nil
			}
			m.steps++
			if m.steps > m.maxSteps {
				return ctrl{}, ErrMaxSteps
			}
		}
	case *minic.For:
		if st.Init != nil {
			if _, err := m.execStmt(f, st.Init); err != nil {
				return ctrl{}, err
			}
		}
		for {
			if st.Cond != nil {
				cond, err := m.eval(f, st.Cond)
				if err != nil {
					return ctrl{}, err
				}
				if !cond.Truthy() {
					return ctrl{}, nil
				}
			}
			c, err := m.execStmt(f, st.Body)
			if err != nil {
				return ctrl{}, err
			}
			if c.kind == ctrlBreak {
				return ctrl{}, nil
			}
			if c.kind == ctrlReturn {
				return c, nil
			}
			if st.Post != nil {
				if _, err := m.eval(f, st.Post); err != nil {
					return ctrl{}, err
				}
			}
			m.steps++
			if m.steps > m.maxSteps {
				return ctrl{}, ErrMaxSteps
			}
		}
	case *minic.Return:
		var v Value
		if st.X != nil {
			var err error
			v, err = m.eval(f, st.X)
			if err != nil {
				return ctrl{}, err
			}
		}
		return ctrl{kind: ctrlReturn, val: v}, nil
	case *minic.Break:
		return ctrl{kind: ctrlBreak}, nil
	case *minic.Continue:
		return ctrl{kind: ctrlContinue}, nil
	case *minic.PragmaStmt:
		if m.onPragma != nil && st.IsMapReduce() {
			handled, err := m.onPragma(st, &Frame{f: f})
			if err != nil {
				return ctrl{}, err
			}
			if handled {
				return ctrl{}, nil
			}
		}
		// On the CPU path, pragmas are comments: execute the body as-is.
		return m.execStmt(f, st.Body)
	default:
		return ctrl{}, fmt.Errorf("interp: unhandled statement %T", s)
	}
}

func (m *Machine) execDecl(f *frame, d *minic.DeclStmt) (ctrl, error) {
	for _, decl := range d.Decls {
		n := 1
		elem := decl.Type
		if decl.Type.Kind == minic.TypeArray {
			n, elem = flattenArray(decl.Type)
			if n < 0 {
				return ctrl{}, fmt.Errorf("interp: array %q has unspecified length", decl.Name)
			}
		}
		obj := NewObject(decl.Name, elem, n, m.spaceOf(decl.Sym))
		if decl.Init != nil {
			v, err := m.eval(f, decl.Init)
			if err != nil {
				return ctrl{}, err
			}
			obj.Cells[0] = convertFor(elem, v)
			m.cost.Store(obj.Space, elem.Size())
		}
		f.vars[decl.Sym] = obj
	}
	return ctrl{}, nil
}

// flattenArray reduces a possibly multi-dimensional array type to a total
// cell count and scalar element type. Multi-dimensional indexing is
// linearized by the evaluator.
func flattenArray(t *minic.Type) (int, *minic.Type) {
	n := 1
	for t.Kind == minic.TypeArray {
		if t.Len < 0 {
			return -1, nil
		}
		n *= t.Len
		t = t.Elem
	}
	return n, t
}

func (m *Machine) lookup(f *frame, sym *minic.Symbol) (*Object, error) {
	if obj, ok := f.vars[sym]; ok {
		return obj, nil
	}
	if obj, ok := m.globals[sym]; ok {
		return obj, nil
	}
	return nil, fmt.Errorf("interp: unresolved symbol %q", sym.Name)
}

// eval evaluates an expression for its value. It mirrors execStmt's
// profSkip latch; see the overhead note there.
func (m *Machine) eval(f *frame, e minic.Expr) (Value, error) {
	if m.prof != nil {
		if !m.profSkip {
			return m.evalProfiled(f, e)
		}
		m.profSkip = false
	}
	m.cost.Op(1)
	switch x := e.(type) {
	case *minic.IntLit:
		return IntVal(x.Value), nil
	case *minic.FloatLit:
		return FloatVal(x.Value), nil
	case *minic.CharLit:
		return IntVal(int64(x.Value)), nil
	case *minic.StrLit:
		return PtrVal(Pointer{Obj: m.internLiteral(x.Value)}), nil
	case *minic.Ident:
		if x.Sym != nil && x.Sym.Kind == minic.SymBuiltin {
			// stdin/stdout/stderr: opaque handles; the stream builtins
			// ignore them and use the machine's configured streams.
			return PtrVal(Pointer{Obj: m.stdioHandle(x.Name)}), nil
		}
		obj, err := m.lookup(f, x.Sym)
		if err != nil {
			return Value{}, err
		}
		// Arrays decay to a pointer to their first cell.
		if x.Sym.Type != nil && x.Sym.Type.Kind == minic.TypeArray {
			return PtrVal(Pointer{Obj: obj}), nil
		}
		m.cost.Load(obj.Space, obj.Elem.Size())
		return obj.Cells[0], nil
	case *minic.Unary:
		return m.evalUnary(f, x)
	case *minic.Postfix:
		ptr, err := m.evalLValue(f, x.X)
		if err != nil {
			return Value{}, err
		}
		old, err := m.load(ptr)
		if err != nil {
			return Value{}, err
		}
		delta := int64(1)
		if x.Op == "--" {
			delta = -1
		}
		if err := m.store(ptr, addInt(old, delta)); err != nil {
			return Value{}, err
		}
		return old, nil
	case *minic.Binary:
		return m.evalBinary(f, x)
	case *minic.Assign:
		return m.evalAssign(f, x)
	case *minic.Cond:
		c, err := m.eval(f, x.C)
		if err != nil {
			return Value{}, err
		}
		if c.Truthy() {
			return m.eval(f, x.T)
		}
		return m.eval(f, x.F)
	case *minic.Index:
		ptr, err := m.indexPointer(f, x)
		if err != nil {
			return Value{}, err
		}
		// An index expression of array type (a row of a multi-dimensional
		// array) decays to a pointer rather than loading a cell.
		if t := x.Type(); t != nil && t.Kind == minic.TypeArray {
			return PtrVal(ptr), nil
		}
		return m.load(ptr)
	case *minic.Cast:
		v, err := m.eval(f, x.X)
		if err != nil {
			return Value{}, err
		}
		return convertFor(x.To, v), nil
	case *minic.SizeofType:
		return IntVal(int64(x.Of.Size())), nil
	case *minic.Call:
		return m.evalCall(f, x)
	default:
		return Value{}, fmt.Errorf("interp: unhandled expression %T", e)
	}
}

func (m *Machine) evalUnary(f *frame, x *minic.Unary) (Value, error) {
	switch x.Op {
	case "&":
		ptr, err := m.evalLValue(f, x.X)
		if err != nil {
			return Value{}, err
		}
		return PtrVal(ptr), nil
	case "*":
		v, err := m.eval(f, x.X)
		if err != nil {
			return Value{}, err
		}
		if v.Kind != ValPtr || v.P.IsNull() {
			return Value{}, fmt.Errorf("interp: %s: dereference of null or non-pointer", x.Pos)
		}
		return m.load(v.P)
	case "-":
		v, err := m.eval(f, x.X)
		if err != nil {
			return Value{}, err
		}
		if v.Kind == ValFloat {
			return FloatVal(-v.F), nil
		}
		return IntVal(-v.AsInt()), nil
	case "!":
		v, err := m.eval(f, x.X)
		if err != nil {
			return Value{}, err
		}
		if v.Truthy() {
			return IntVal(0), nil
		}
		return IntVal(1), nil
	case "~":
		v, err := m.eval(f, x.X)
		if err != nil {
			return Value{}, err
		}
		return IntVal(^v.AsInt()), nil
	case "++", "--":
		ptr, err := m.evalLValue(f, x.X)
		if err != nil {
			return Value{}, err
		}
		old, err := m.load(ptr)
		if err != nil {
			return Value{}, err
		}
		delta := int64(1)
		if x.Op == "--" {
			delta = -1
		}
		nv := addInt(old, delta)
		if err := m.store(ptr, nv); err != nil {
			return Value{}, err
		}
		return nv, nil
	}
	return Value{}, fmt.Errorf("interp: unhandled unary %q", x.Op)
}

func addInt(v Value, d int64) Value {
	switch v.Kind {
	case ValFloat:
		return FloatVal(v.F + float64(d))
	case ValPtr:
		return PtrVal(Pointer{Obj: v.P.Obj, Off: v.P.Off + int(d)})
	default:
		return IntVal(v.I + d)
	}
}

func (m *Machine) evalBinary(f *frame, x *minic.Binary) (Value, error) {
	// Short-circuit logicals first.
	if x.Op == "&&" || x.Op == "||" {
		l, err := m.eval(f, x.L)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "&&" && !l.Truthy() {
			return IntVal(0), nil
		}
		if x.Op == "||" && l.Truthy() {
			return IntVal(1), nil
		}
		r, err := m.eval(f, x.R)
		if err != nil {
			return Value{}, err
		}
		if r.Truthy() {
			return IntVal(1), nil
		}
		return IntVal(0), nil
	}
	l, err := m.eval(f, x.L)
	if err != nil {
		return Value{}, err
	}
	r, err := m.eval(f, x.R)
	if err != nil {
		return Value{}, err
	}
	return applyBinary(x.Op, l, r)
}

func applyBinary(op string, l, r Value) (Value, error) {
	// Pointer arithmetic and comparisons.
	if l.Kind == ValPtr || r.Kind == ValPtr {
		switch op {
		case "+":
			if l.Kind == ValPtr {
				return PtrVal(Pointer{Obj: l.P.Obj, Off: l.P.Off + int(r.AsInt())}), nil
			}
			return PtrVal(Pointer{Obj: r.P.Obj, Off: r.P.Off + int(l.AsInt())}), nil
		case "-":
			if l.Kind == ValPtr && r.Kind == ValPtr {
				if l.P.Obj != r.P.Obj {
					return Value{}, errors.New("interp: subtraction of pointers into different objects")
				}
				return IntVal(int64(l.P.Off - r.P.Off)), nil
			}
			if l.Kind == ValPtr {
				return PtrVal(Pointer{Obj: l.P.Obj, Off: l.P.Off - int(r.AsInt())}), nil
			}
			return Value{}, errors.New("interp: int - pointer is not defined")
		case "==", "!=":
			eq := false
			if l.Kind == ValPtr && r.Kind == ValPtr {
				eq = l.P == r.P
			} else if l.Kind == ValPtr {
				eq = l.P.IsNull() && r.AsInt() == 0
			} else {
				eq = r.P.IsNull() && l.AsInt() == 0
			}
			if (op == "==") == eq {
				return IntVal(1), nil
			}
			return IntVal(0), nil
		case "<", ">", "<=", ">=":
			if l.Kind != ValPtr || r.Kind != ValPtr || l.P.Obj != r.P.Obj {
				return Value{}, errors.New("interp: relational compare of unrelated pointers")
			}
			return cmpResult(op, int64(l.P.Off), int64(r.P.Off)), nil
		default:
			return Value{}, fmt.Errorf("interp: operator %q not defined on pointers", op)
		}
	}
	if l.Kind == ValFloat || r.Kind == ValFloat {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch op {
		case "+":
			return FloatVal(lf + rf), nil
		case "-":
			return FloatVal(lf - rf), nil
		case "*":
			return FloatVal(lf * rf), nil
		case "/":
			if rf == 0 {
				return Value{}, errors.New("interp: float division by zero")
			}
			return FloatVal(lf / rf), nil
		case "==":
			return boolVal(lf == rf), nil
		case "!=":
			return boolVal(lf != rf), nil
		case "<":
			return boolVal(lf < rf), nil
		case ">":
			return boolVal(lf > rf), nil
		case "<=":
			return boolVal(lf <= rf), nil
		case ">=":
			return boolVal(lf >= rf), nil
		default:
			return Value{}, fmt.Errorf("interp: operator %q not defined on floats", op)
		}
	}
	li, ri := l.AsInt(), r.AsInt()
	switch op {
	case "+":
		return IntVal(li + ri), nil
	case "-":
		return IntVal(li - ri), nil
	case "*":
		return IntVal(li * ri), nil
	case "/":
		if ri == 0 {
			return Value{}, errors.New("interp: integer division by zero")
		}
		return IntVal(li / ri), nil
	case "%":
		if ri == 0 {
			return Value{}, errors.New("interp: integer modulo by zero")
		}
		return IntVal(li % ri), nil
	case "<<":
		return IntVal(li << uint(ri&63)), nil
	case ">>":
		return IntVal(li >> uint(ri&63)), nil
	case "&":
		return IntVal(li & ri), nil
	case "|":
		return IntVal(li | ri), nil
	case "^":
		return IntVal(li ^ ri), nil
	case "==", "!=", "<", ">", "<=", ">=":
		return cmpResult(op, li, ri), nil
	}
	return Value{}, fmt.Errorf("interp: unhandled binary operator %q", op)
}

func cmpResult(op string, a, b int64) Value {
	var res bool
	switch op {
	case "==":
		res = a == b
	case "!=":
		res = a != b
	case "<":
		res = a < b
	case ">":
		res = a > b
	case "<=":
		res = a <= b
	case ">=":
		res = a >= b
	}
	return boolVal(res)
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func (m *Machine) evalAssign(f *frame, x *minic.Assign) (Value, error) {
	ptr, err := m.evalLValue(f, x.L)
	if err != nil {
		return Value{}, err
	}
	rhs, err := m.eval(f, x.R)
	if err != nil {
		return Value{}, err
	}
	if x.Op != "=" {
		cur, err := m.load(ptr)
		if err != nil {
			return Value{}, err
		}
		op := x.Op[:len(x.Op)-1] // "+=" -> "+"
		rhs, err = applyBinary(op, cur, rhs)
		if err != nil {
			return Value{}, err
		}
	}
	if err := m.store(ptr, rhs); err != nil {
		return Value{}, err
	}
	return rhs, nil
}

// evalLValue resolves an expression to a storage location.
func (m *Machine) evalLValue(f *frame, e minic.Expr) (Pointer, error) {
	switch x := e.(type) {
	case *minic.Ident:
		obj, err := m.lookup(f, x.Sym)
		if err != nil {
			return Pointer{}, err
		}
		return Pointer{Obj: obj}, nil
	case *minic.Index:
		return m.indexPointer(f, x)
	case *minic.Unary:
		if x.Op == "*" {
			v, err := m.eval(f, x.X)
			if err != nil {
				return Pointer{}, err
			}
			if v.Kind != ValPtr || v.P.IsNull() {
				return Pointer{}, fmt.Errorf("interp: %s: store through null or non-pointer", x.Pos)
			}
			return v.P, nil
		}
	}
	return Pointer{}, fmt.Errorf("interp: expression %T is not an lvalue", e)
}

// indexPointer computes the cell location of x[idx], linearizing
// multi-dimensional arrays.
func (m *Machine) indexPointer(f *frame, x *minic.Index) (Pointer, error) {
	idx, err := m.eval(f, x.Idx)
	if err != nil {
		return Pointer{}, err
	}
	i := int(idx.AsInt())
	// Multi-dim: base expression type is array-of-array; scale the index.
	bt := x.X.Type()
	stride := 1
	if bt != nil && bt.ElemType() != nil && bt.ElemType().Kind == minic.TypeArray {
		n, _ := flattenArray(bt.ElemType())
		if n > 0 {
			stride = n
		}
	}
	base, err := m.eval(f, x.X)
	if err != nil {
		return Pointer{}, err
	}
	if base.Kind != ValPtr || base.P.IsNull() {
		return Pointer{}, fmt.Errorf("interp: %s: index of null or non-pointer", x.Pos)
	}
	return Pointer{Obj: base.P.Obj, Off: base.P.Off + i*stride}, nil
}

func (m *Machine) load(p Pointer) (Value, error) {
	if p.IsNull() || p.Off < 0 || p.Off >= len(p.Obj.Cells) {
		return Value{}, fmt.Errorf("interp: load out of bounds (%s[%d] of %d)", objName(p.Obj), p.Off, objLen(p.Obj))
	}
	m.cost.Load(p.Obj.Space, p.Obj.Elem.Size())
	return p.Obj.Cells[p.Off], nil
}

func (m *Machine) store(p Pointer, v Value) error {
	if p.IsNull() || p.Off < 0 || p.Off >= len(p.Obj.Cells) {
		return fmt.Errorf("interp: store out of bounds (%s[%d] of %d)", objName(p.Obj), p.Off, objLen(p.Obj))
	}
	m.cost.Store(p.Obj.Space, p.Obj.Elem.Size())
	p.Obj.Cells[p.Off] = convertFor(p.Obj.Elem, v)
	return nil
}

func objName(o *Object) string {
	if o == nil {
		return "<null>"
	}
	if o.Name == "" {
		return "<anon>"
	}
	return o.Name
}

func objLen(o *Object) int {
	if o == nil {
		return 0
	}
	return len(o.Cells)
}

// convertFor converts v to the storage representation of type t.
func convertFor(t *minic.Type, v Value) Value {
	if t == nil {
		return v
	}
	switch t.Kind {
	case minic.TypeChar:
		return IntVal(int64(byte(v.AsInt())))
	case minic.TypeInt:
		return IntVal(int64(int32(v.AsInt())))
	case minic.TypeLong:
		return IntVal(v.AsInt())
	case minic.TypeFloat:
		return FloatVal(float64(float32(v.AsFloat())))
	case minic.TypeDouble:
		return FloatVal(v.AsFloat())
	case minic.TypePointer:
		if v.Kind == ValPtr {
			return v
		}
		if v.AsInt() == 0 {
			return PtrVal(Pointer{})
		}
		return v
	default:
		return v
	}
}

func (m *Machine) evalCall(f *frame, x *minic.Call) (Value, error) {
	// __sizeof_var takes its argument unevaluated.
	if x.Name == "__sizeof_var" {
		id, ok := x.Args[0].(*minic.Ident)
		if !ok || id.Sym == nil {
			return Value{}, fmt.Errorf("interp: sizeof of non-variable")
		}
		return IntVal(int64(id.Sym.Type.Size())), nil
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := m.eval(f, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	if impl, ok := m.builtins[x.Name]; ok && x.Builtin {
		m.cost.Op(2)
		if m.prof != nil {
			return m.callBuiltinProfiled(x.Name, impl, args)
		}
		return impl(m, args)
	}
	fn := m.Prog.Func(x.Name)
	if fn == nil {
		// Intrinsic installed without sema marking (translator-generated
		// call sites).
		if impl, ok := m.builtins[x.Name]; ok {
			m.cost.Op(2)
			if m.prof != nil {
				return m.callBuiltinProfiled(x.Name, impl, args)
			}
			return impl(m, args)
		}
		return Value{}, fmt.Errorf("interp: call of unknown function %q", x.Name)
	}
	m.cost.Op(4) // call overhead
	return m.call(fn, args)
}

// stdioHandle returns a stable opaque object for a stdio stream name.
func (m *Machine) stdioHandle(name string) *Object {
	key := "\x00stdio:" + name
	if obj, ok := m.literals[key]; ok {
		return obj
	}
	obj := NewObject(name, minic.CharType, 1, m.space)
	m.literals[key] = obj
	return obj
}

// internLiteral returns the shared object for a string literal.
func (m *Machine) internLiteral(s string) *Object {
	if obj, ok := m.literals[s]; ok {
		return obj
	}
	obj := NewObject("literal", minic.CharType, len(s)+1, m.space)
	for i := 0; i < len(s); i++ {
		obj.Cells[i] = IntVal(int64(s[i]))
	}
	obj.Cells[len(s)] = IntVal(0)
	m.literals[s] = obj
	return obj
}

// ReadCString reads a NUL-terminated string starting at p.
func ReadCString(p Pointer) string {
	if p.IsNull() {
		return ""
	}
	var b []byte
	for i := p.Off; i < len(p.Obj.Cells); i++ {
		c := byte(p.Obj.Cells[i].AsInt())
		if c == 0 {
			break
		}
		b = append(b, c)
	}
	return string(b)
}

// WriteCString writes s plus a NUL terminator at p. It reports the number
// of bytes written (excluding the NUL) and fails silently by truncation if
// the object is too small, like a C buffer overflow would be UB — here we
// clamp instead.
func WriteCString(p Pointer, s string) int {
	if p.IsNull() {
		return 0
	}
	n := 0
	for i := 0; i < len(s); i++ {
		off := p.Off + i
		if off >= len(p.Obj.Cells) {
			break
		}
		p.Obj.Cells[off] = IntVal(int64(s[i]))
		n++
	}
	if p.Off+n < len(p.Obj.Cells) {
		p.Obj.Cells[p.Off+n] = IntVal(0)
	}
	return n
}
