package interp

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/minic"
	"repro/internal/sim"
)

// exprNode is a random integer expression with a known reference value,
// used to cross-check the interpreter against an independent evaluator.
type exprNode struct {
	text string
	val  int64
}

func lit(v int64) exprNode { return exprNode{text: strconv.FormatInt(v, 10), val: v} }

// genExpr builds a random expression of bounded depth. Division and
// modulo are only generated with non-zero right operands.
func genExpr(rng *sim.RNG, depth int) exprNode {
	if depth == 0 || rng.Intn(3) == 0 {
		return lit(int64(rng.Intn(200) - 100))
	}
	l := genExpr(rng, depth-1)
	r := genExpr(rng, depth-1)
	ops := []string{"+", "-", "*", "/", "%", "<", ">", "==", "!=", "&", "|", "^", "&&", "||"}
	op := ops[rng.Intn(len(ops))]
	if (op == "/" || op == "%") && r.val == 0 {
		r = lit(int64(rng.Intn(50) + 1))
	}
	var v int64
	b := func(cond bool) int64 {
		if cond {
			return 1
		}
		return 0
	}
	switch op {
	case "+":
		v = l.val + r.val
	case "-":
		v = l.val - r.val
	case "*":
		v = l.val * r.val
	case "/":
		v = l.val / r.val
	case "%":
		v = l.val % r.val
	case "<":
		v = b(l.val < r.val)
	case ">":
		v = b(l.val > r.val)
	case "==":
		v = b(l.val == r.val)
	case "!=":
		v = b(l.val != r.val)
	case "&":
		v = l.val & r.val
	case "|":
		v = l.val | r.val
	case "^":
		v = l.val ^ r.val
	case "&&":
		v = b(l.val != 0 && r.val != 0)
	case "||":
		v = b(l.val != 0 || r.val != 0)
	}
	// Negative literals need parens after operators; parenthesize
	// everything for unambiguous precedence.
	return exprNode{text: "(" + l.text + " " + op + " " + r.text + ")", val: v}
}

// TestRandomExpressionsMatchReference cross-checks 300 random integer
// expressions against an independent Go evaluation.
func TestRandomExpressionsMatchReference(t *testing.T) {
	rng := sim.NewRNG(20150615)
	for i := 0; i < 300; i++ {
		e := genExpr(rng, 4)
		src := fmt.Sprintf("int main() { long v = %s; printf(\"%%d\\n\", v); return 0; }", e.text)
		prog, err := minic.ParseAndCheck(src)
		if err != nil {
			t.Fatalf("case %d: parse %q: %v", i, e.text, err)
		}
		var out bytes.Buffer
		m := New(prog, Options{Stdout: &out})
		if _, err := m.Run(); err != nil {
			t.Fatalf("case %d: run %q: %v", i, e.text, err)
		}
		got := strings.TrimSpace(out.String())
		want := strconv.FormatInt(e.val, 10)
		if got != want {
			t.Fatalf("case %d: %s = %s, want %s", i, e.text, got, want)
		}
	}
}

// TestPrintfScanfRoundTrip pushes random KV lines through a printf-ing
// producer and a scanf-ing consumer, checking totals.
func TestPrintfScanfRoundTrip(t *testing.T) {
	rng := sim.NewRNG(99)
	var input bytes.Buffer
	var wantSum int64
	n := 200
	for i := 0; i < n; i++ {
		v := int64(rng.Intn(1000) - 500)
		wantSum += v
		fmt.Fprintf(&input, "key%d\t%d\n", rng.Intn(50), v)
	}
	src := `
int main() {
	char key[32];
	int val, read;
	int sum = 0, count = 0;
	while ((read = scanf("%s %d", key, &val)) == 2) {
		sum += val;
		count++;
	}
	printf("%d %d\n", count, sum);
	return 0;
}`
	prog, err := minic.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	m := New(prog, Options{Stdin: bytes.NewReader(input.Bytes()), Stdout: &out})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%d %d\n", n, wantSum)
	if out.String() != want {
		t.Fatalf("round trip = %q, want %q", out.String(), want)
	}
}

// TestStringFunctionsAgainstGo cross-checks strcmp/strlen/strstr against
// Go's string operations on random inputs.
func TestStringFunctionsAgainstGo(t *testing.T) {
	rng := sim.NewRNG(7)
	alphabet := "abcde"
	randStr := func(max int) string {
		n := rng.Intn(max + 1)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return b.String()
	}
	for i := 0; i < 100; i++ {
		a, c := randStr(8), randStr(4)
		src := fmt.Sprintf(`
int main() {
	char a[16], c[16];
	strcpy(a, %q);
	strcpy(c, %q);
	int cmp = strcmp(a, c);
	int sign = 0;
	if (cmp > 0) sign = 1;
	if (cmp < 0) sign = -1;
	int found = 0;
	if (strstr(a, c) != NULL) found = 1;
	printf("%%d %%d %%d %%d\n", sign, strlen(a), strlen(c), found);
	return 0;
}`, a, c)
		prog, err := minic.ParseAndCheck(src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		var out bytes.Buffer
		m := New(prog, Options{Stdout: &out})
		if _, err := m.Run(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		sign := 0
		if a > c {
			sign = 1
		} else if a < c {
			sign = -1
		}
		found := 0
		if strings.Contains(a, c) {
			found = 1
		}
		want := fmt.Sprintf("%d %d %d %d\n", sign, len(a), len(c), found)
		if out.String() != want {
			t.Fatalf("case %d (a=%q c=%q): got %q want %q", i, a, c, out.String(), want)
		}
	}
}

// TestAtoiAtofAgainstGo cross-checks the incremental parsers.
func TestAtoiAtofAgainstGo(t *testing.T) {
	cases := []struct {
		in      string
		wantInt int64
	}{
		{"123", 123}, {"-45", -45}, {"  78xyz", 78}, {"0", 0},
		{"+9", 9}, {"abc", 0}, {"12 34", 12}, {"999999999", 999999999},
	}
	for _, c := range cases {
		src := fmt.Sprintf(`int main() { printf("%%d\n", atoi(%q)); return 0; }`, c.in)
		prog, err := minic.ParseAndCheck(src)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		m := New(prog, Options{Stdout: &out})
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%d\n", c.wantInt)
		if out.String() != want {
			t.Errorf("atoi(%q) = %q, want %q", c.in, out.String(), want)
		}
	}
	fcases := []struct {
		in   string
		want float64
	}{
		{"1.5", 1.5}, {"-2.25", -2.25}, {"3", 3}, {"1e2", 100},
		{"4.5e-1", 0.45}, {"  7.5abc", 7.5}, {"x", 0},
	}
	for _, c := range fcases {
		src := fmt.Sprintf(`int main() { printf("%%.4f\n", atof(%q)); return 0; }`, c.in)
		prog, err := minic.ParseAndCheck(src)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		m := New(prog, Options{Stdout: &out})
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%.4f\n", c.want)
		if out.String() != want {
			t.Errorf("atof(%q) = %q, want %q", c.in, out.String(), want)
		}
	}
}

// TestAtoiDoesNotScanPastNumber verifies the fix for the GPU-path bug
// where atoi on a pointer into a large unterminated buffer scanned to the
// buffer's end: the cost must be proportional to the number, not the
// buffer.
func TestAtoiDoesNotScanPastNumber(t *testing.T) {
	big := strings.Repeat("x", 100000)
	src := fmt.Sprintf(`
int main() {
	char *buf;
	buf = (char*) malloc(%d);
	strcpy(buf, "42%s");
	int v = atoi(buf);
	printf("%%d\n", v);
	return 0;
}`, len(big)+16, big)
	prog, err := minic.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	sink := &CountingSink{}
	var out bytes.Buffer
	m := New(prog, Options{Stdout: &out, Cost: sink})
	before := func() int64 { return sink.Ops }
	_ = before
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "42") {
		t.Fatalf("out = %q", out.String())
	}
	// strcpy necessarily touches the whole buffer; atoi must not. Total
	// ops should be well under 3 buffer lengths (strcpy read+write) plus
	// slack — a scanning atoi would add another ~100k.
	if sink.Ops > 320000 {
		t.Fatalf("ops = %d: atoi likely scanned the whole buffer", sink.Ops)
	}
}
