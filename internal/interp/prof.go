package interp

import (
	"repro/internal/minic"
	"repro/internal/perf"
)

// execStmtProfiled wraps one statement's execution in an exclusive-time
// span. It re-enters execStmt's dispatch body through the profSkip latch:
// the latch makes the next execStmt call fall through to the body instead
// of recursing back here, while every *nested* statement and expression
// (latch consumed) takes its own wrapped trip. Only the profiling-on path
// pays these two extra calls per node; see execStmt for why.
func (m *Machine) execStmtProfiled(f *frame, s minic.Stmt) (ctrl, error) {
	m.prof.Enter(perf.CatStmt, stmtName(s))
	m.profSkip = true
	c, err := m.execStmt(f, s)
	m.prof.Exit()
	return c, err
}

// evalProfiled is execStmtProfiled for expressions.
func (m *Machine) evalProfiled(f *frame, e minic.Expr) (Value, error) {
	m.prof.Enter(perf.CatExpr, exprName(e))
	m.profSkip = true
	v, err := m.eval(f, e)
	m.prof.Exit()
	return v, err
}

// callBuiltinProfiled invokes a builtin/intrinsic implementation,
// attributing its self time to a per-name bucket. Callers guard with
// m.prof != nil and call impl directly otherwise.
func (m *Machine) callBuiltinProfiled(name string, impl Builtin, args []Value) (Value, error) {
	m.prof.Enter(perf.CatBuiltin, name)
	v, err := impl(m, args)
	m.prof.Exit()
	return v, err
}

// stmtName and exprName return constant bucket names per AST node kind.
// They allocate nothing; the returned strings are interned literals.

func stmtName(s minic.Stmt) string {
	switch s.(type) {
	case *minic.DeclStmt:
		return "Decl"
	case *minic.ExprStmt:
		return "ExprStmt"
	case *minic.EmptyStmt:
		return "Empty"
	case *minic.Block:
		return "Block"
	case *minic.If:
		return "If"
	case *minic.While:
		return "While"
	case *minic.For:
		return "For"
	case *minic.Return:
		return "Return"
	case *minic.Break:
		return "Break"
	case *minic.Continue:
		return "Continue"
	case *minic.PragmaStmt:
		return "Pragma"
	default:
		return "Stmt?"
	}
}

func exprName(e minic.Expr) string {
	switch e.(type) {
	case *minic.IntLit:
		return "IntLit"
	case *minic.FloatLit:
		return "FloatLit"
	case *minic.CharLit:
		return "CharLit"
	case *minic.StrLit:
		return "StrLit"
	case *minic.Ident:
		return "Ident"
	case *minic.Unary:
		return "Unary"
	case *minic.Postfix:
		return "Postfix"
	case *minic.Binary:
		return "Binary"
	case *minic.Assign:
		return "Assign"
	case *minic.Cond:
		return "Cond"
	case *minic.Index:
		return "Index"
	case *minic.Cast:
		return "Cast"
	case *minic.SizeofType:
		return "Sizeof"
	case *minic.Call:
		return "Call"
	default:
		return "Expr?"
	}
}
