package interp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/minic"
)

// run executes src with the given stdin and returns (stdout, exitCode).
func run(t *testing.T, src, stdin string) (string, int) {
	t.Helper()
	prog, err := minic.ParseAndCheck(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var out bytes.Buffer
	m := New(prog, Options{Stdin: strings.NewReader(stdin), Stdout: &out})
	code, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String(), code
}

func TestArithmetic(t *testing.T) {
	out, code := run(t, `
int main() {
	int a = 7, b = 3;
	printf("%d %d %d %d %d\n", a+b, a-b, a*b, a/b, a%b);
	printf("%d %d %d\n", a << 1, a >> 1, a & b);
	printf("%d %d %d\n", a | b, a ^ b, ~a);
	return 0;
}`, "")
	want := "10 4 21 2 1\n14 3 3\n7 4 -8\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
}

func TestFloatArithmetic(t *testing.T) {
	out, _ := run(t, `
int main() {
	double a = 2.5, b = 0.5;
	printf("%.2f %.2f %.2f %.2f\n", a+b, a-b, a*b, a/b);
	printf("%.4f %.4f\n", sqrt(2.0), pow(2.0, 10.0));
	return 0;
}`, "")
	want := "3.00 2.00 1.25 5.00\n1.4142 1024.0000\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestComparisonAndLogical(t *testing.T) {
	out, _ := run(t, `
int main() {
	int a = 5, b = 10;
	printf("%d%d%d%d%d%d\n", a<b, a>b, a<=b, a>=b, a==b, a!=b);
	printf("%d%d%d\n", a && b, a || 0, !a);
	return 0;
}`, "")
	if out != "101001\n110\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	// Division by zero on the right of && must not execute when left is 0.
	out, _ := run(t, `
int main() {
	int zero = 0;
	int x = 0;
	if (zero && (10 / zero)) x = 1;
	if (1 || (10 / zero)) x = x + 2;
	printf("%d\n", x);
	return 0;
}`, "")
	if out != "2\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestControlFlow(t *testing.T) {
	out, _ := run(t, `
int main() {
	int total = 0;
	for (int i = 0; i < 10; i++) {
		if (i == 3) continue;
		if (i == 7) break;
		total += i;
	}
	int j = 0;
	while (j < 5) { total += 100; j++; }
	printf("%d\n", total);
	return 0;
}`, "")
	// 0+1+2+4+5+6 = 18, + 500
	if out != "518\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestTernaryAndCompoundAssign(t *testing.T) {
	out, _ := run(t, `
int main() {
	int a = 3;
	int b = a > 2 ? 10 : 20;
	a += 5; a -= 2; a *= 3; a /= 2; a %= 7;
	printf("%d %d\n", a, b);
	return 0;
}`, "")
	// a: 3+5=8, -2=6, *3=18, /2=9, %7=2
	if out != "2 10\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestIncDecSemantics(t *testing.T) {
	out, _ := run(t, `
int main() {
	int i = 5;
	printf("%d ", i++);
	printf("%d ", i);
	printf("%d ", ++i);
	printf("%d ", i--);
	printf("%d ", --i);
	printf("%d\n", i);
	return 0;
}`, "")
	if out != "5 6 7 7 5 5\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestArraysAndPointers(t *testing.T) {
	out, _ := run(t, `
int main() {
	int a[5];
	for (int i = 0; i < 5; i++) a[i] = i * i;
	int *p = &a[1];
	printf("%d %d %d\n", a[4], *p, *(p + 2));
	*p = 100;
	printf("%d\n", a[1]);
	int x = 7;
	int *q = &x;
	int **qq = &q;
	**qq = 9;
	printf("%d\n", x);
	return 0;
}`, "")
	if out != "16 1 9\n100\n9\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestMultiDimensionalArrays(t *testing.T) {
	out, _ := run(t, `
int main() {
	int m[3][4];
	for (int i = 0; i < 3; i++)
		for (int j = 0; j < 4; j++)
			m[i][j] = i * 10 + j;
	printf("%d %d %d\n", m[0][0], m[1][2], m[2][3]);
	return 0;
}`, "")
	if out != "0 12 23\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestCharBuffersAndStrings(t *testing.T) {
	out, _ := run(t, `
int main() {
	char buf[32];
	strcpy(buf, "hello");
	strcat(buf, " world");
	printf("%s %d\n", buf, strlen(buf));
	printf("%d %d\n", strcmp("abc", "abd"), strcmp("same", "same"));
	char *found = strstr(buf, "world");
	if (found != NULL) printf("%s\n", found);
	printf("%d %d\n", atoi("  42abc"), atoi("-17"));
	printf("%.2f\n", atof("3.5"));
	return 0;
}`, "")
	want := "hello world 11\n-1 0\nworld\n42 -17\n3.50\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestMallocAndCasts(t *testing.T) {
	out, _ := run(t, `
int main() {
	char *p = (char*) malloc(16 * sizeof(char));
	strcpy(p, "dyn");
	printf("%s\n", p);
	free(p);
	double d = 3.9;
	int i = (int) d;
	printf("%d\n", i);
	return 0;
}`, "")
	if out != "dyn\n3\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestUserFunctionsAndRecursion(t *testing.T) {
	out, _ := run(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
void fill(int *arr, int n, int v) {
	for (int i = 0; i < n; i++) arr[i] = v;
}
int main() {
	printf("%d\n", fib(10));
	int a[3];
	fill(a, 3, 9);
	printf("%d %d %d\n", a[0], a[1], a[2]);
	return 0;
}`, "")
	if out != "55\n9 9 9\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestGetlineReadsLines(t *testing.T) {
	out, _ := run(t, `
int main() {
	char *line;
	size_t n = 256;
	int read;
	line = (char*) malloc(n * sizeof(char));
	int count = 0, bytes = 0;
	while ((read = getline(&line, &n, stdin)) != -1) {
		count++;
		bytes += read;
	}
	printf("%d %d\n", count, bytes);
	free(line);
	return 0;
}`, "first line\nsecond\nthird one here\n")
	// 11 + 7 + 15 = 33 bytes including newlines
	if out != "3 33\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestGetlineGrowsBuffer(t *testing.T) {
	long := strings.Repeat("x", 500)
	out, _ := run(t, `
int main() {
	char *line;
	size_t n = 4;
	int read;
	line = (char*) malloc(n * sizeof(char));
	read = getline(&line, &n, stdin);
	printf("%d %d\n", read, strlen(line));
	return 0;
}`, long+"\n")
	if out != "501 501\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestScanfTokens(t *testing.T) {
	out, _ := run(t, `
int main() {
	char word[64];
	int val;
	int read;
	int total = 0, lines = 0;
	while ((read = scanf("%s %d", word, &val)) == 2) {
		total += val;
		lines++;
	}
	printf("%d %d\n", lines, total);
	return 0;
}`, "apple\t3\nbanana\t4\ncarrot\t5\n")
	if out != "3 12\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestScanfFloat(t *testing.T) {
	out, _ := run(t, `
int main() {
	double x;
	double sum = 0;
	while (scanf("%lf", &x) == 1) sum += x;
	printf("%.1f\n", sum);
	return 0;
}`, "1.5 2.5\n3.0\n")
	if out != "7.0\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestGlobalsInitialized(t *testing.T) {
	out, _ := run(t, `
int counter = 10;
double scale = 2.5;
int bump(int by) { counter += by; return counter; }
int main() {
	bump(5);
	printf("%d %.1f\n", counter, scale);
	return 0;
}`, "")
	if out != "15 2.5\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestCharConversionWraps(t *testing.T) {
	out, _ := run(t, `
int main() {
	char c = 300;
	printf("%d\n", c);
	return 0;
}`, "")
	if out != "44\n" { // 300 mod 256
		t.Fatalf("out = %q", out)
	}
}

func TestExitStatusAndReturnCode(t *testing.T) {
	_, code := run(t, `int main() { return 3; }`, "")
	if code != 3 {
		t.Fatalf("code = %d, want 3", code)
	}
	_, code = run(t, `int main() { exit(7); return 1; }`, "")
	if code != 7 {
		t.Fatalf("exit code = %d, want 7", code)
	}
}

func TestDivisionByZeroError(t *testing.T) {
	prog, err := minic.ParseAndCheck(`int main() { int z = 0; return 1 / z; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, Options{})
	if _, err := m.Run(); err == nil {
		t.Fatal("division by zero did not error")
	}
}

func TestOutOfBoundsError(t *testing.T) {
	prog, err := minic.ParseAndCheck(`int main() { int a[3]; a[5] = 1; return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, Options{})
	if _, err := m.Run(); err == nil {
		t.Fatal("out-of-bounds store did not error")
	}
}

func TestNullDereferenceError(t *testing.T) {
	prog, err := minic.ParseAndCheck(`int main() { int *p = NULL; return *p; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, Options{})
	if _, err := m.Run(); err == nil {
		t.Fatal("null dereference did not error")
	}
}

func TestInfiniteLoopTripsStepBudget(t *testing.T) {
	prog, err := minic.ParseAndCheck(`int main() { while (1) { } return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, Options{MaxSteps: 1000})
	if _, err := m.Run(); err != ErrMaxSteps {
		t.Fatalf("err = %v, want ErrMaxSteps", err)
	}
}

func TestCostSinkCounts(t *testing.T) {
	prog, err := minic.ParseAndCheck(`
int main() {
	int a[100];
	for (int i = 0; i < 100; i++) a[i] = i;
	int sum = 0;
	for (int i = 0; i < 100; i++) sum += a[i];
	return sum;
}`)
	if err != nil {
		t.Fatal(err)
	}
	sink := &CountingSink{}
	m := New(prog, Options{Cost: sink})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.Ops == 0 || sink.Loads == 0 || sink.Stores == 0 {
		t.Fatalf("cost sink saw nothing: %+v", sink)
	}
	if sink.Stores < 100 {
		t.Fatalf("stores = %d, want >= 100 array writes", sink.Stores)
	}
	if sink.LoadBytes[SpaceRAM] == 0 {
		t.Fatal("no RAM load bytes recorded")
	}
}

func TestCtypeBuiltins(t *testing.T) {
	out, _ := run(t, `
int main() {
	printf("%d%d%d%d\n", isdigit('5'), isdigit('a'), isalpha('x'), isspace(' '));
	printf("%c%c\n", tolower('A'), toupper('b'));
	return 0;
}`, "")
	if out != "1011\naB\n"[0:len(out)] && out != "1011\naB\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestMemsetMemcpy(t *testing.T) {
	out, _ := run(t, `
int main() {
	char a[8], b[8];
	memset(a, 'x', 7);
	a[7] = '\0';
	memcpy(b, a, 8);
	printf("%s %s\n", a, b);
	return 0;
}`, "")
	if out != "xxxxxxx xxxxxxx\n" {
		t.Fatalf("out = %q", out)
	}
}

// TestWordcountMapperListing1 runs the paper's Listing 1 (wordcount map
// with HeteroDoop directives) on the CPU path, where pragmas are inert.
func TestWordcountMapperListing1(t *testing.T) {
	src := `
int getWord(char *line, int offset, char *word, int read, int maxw) {
	int i = offset, j = 0;
	while (i < read && (line[i] == ' ' || line[i] == '\n' || line[i] == '\t')) i++;
	while (i < read && line[i] != ' ' && line[i] != '\n' && line[i] != '\t' && j < maxw - 1) {
		word[j] = line[i];
		i++; j++;
	}
	if (j == 0) return -1;
	word[j] = '\0';
	return i - offset;
}
int main() {
	char word[30], *line;
	size_t nbytes = 10000;
	int read, linePtr, offset, one;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(word) value(one) keylength(30)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		linePtr = 0;
		offset = 0;
		one = 1;
		while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
			printf("%s\t%d\n", word, one);
			offset += linePtr;
		}
	}
	free(line);
	return 0;
}`
	out, _ := run(t, src, "the quick fox\nthe lazy dog\n")
	want := "the\t1\nquick\t1\nfox\t1\nthe\t1\nlazy\t1\ndog\t1\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

// TestWordcountCombinerListing2 runs the paper's Listing 2 (wordcount
// combiner) over sorted KV input.
func TestWordcountCombinerListing2(t *testing.T) {
	src := `
int main() {
	char word[30], prevWord[30];
	prevWord[0] = '\0';
	int count, val, read;
	count = 0;
	#pragma mapreduce combiner key(prevWord) value(count) keyin(word) valuein(val) keylength(30) vallength(1) firstprivate(prevWord, count)
	{
		while ((read = scanf("%s %d", word, &val)) == 2) {
			if (strcmp(word, prevWord) == 0) {
				count += val;
			} else {
				if (prevWord[0] != '\0')
					printf("%s\t%d\n", prevWord, count);
				strcpy(prevWord, word);
				count = val;
			}
		}
		if (prevWord[0] != '\0')
			printf("%s\t%d\n", prevWord, count);
	}
	return 0;
}`
	out, _ := run(t, src, "dog\t1\nfox\t1\nlazy\t1\nquick\t1\nthe\t1\nthe\t1\n")
	want := "dog\t1\nfox\t1\nlazy\t1\nquick\t1\nthe\t2\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestCallFunctionDirectly(t *testing.T) {
	prog, err := minic.ParseAndCheck(`
int square(int x) { return x * x; }
int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, Options{})
	v, err := m.CallFunction("square", []Value{IntVal(12)})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 144 {
		t.Fatalf("square(12) = %d", v.AsInt())
	}
}

func TestIntrinsicOverride(t *testing.T) {
	prog, err := minic.ParseAndCheck(`
int main() {
	printf("ignored");
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	called := 0
	m := New(prog, Options{Intrinsics: map[string]Builtin{
		"printf": func(m *Machine, args []Value) (Value, error) {
			called++
			return IntVal(0), nil
		},
	}})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if called != 1 {
		t.Fatalf("intrinsic override called %d times", called)
	}
}

func TestSpaceForPlacement(t *testing.T) {
	prog, err := minic.ParseAndCheck(`
int main() {
	int x = 1;
	x = x + 1;
	return x;
}`)
	if err != nil {
		t.Fatal(err)
	}
	sink := &CountingSink{}
	m := New(prog, Options{
		Cost:     sink,
		SpaceFor: func(sym *minic.Symbol) MemSpace { return SpaceShared },
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.LoadBytes[SpaceShared] == 0 {
		t.Fatal("SpaceFor placement not honored in cost accounting")
	}
}

func TestStringEscapesInPrintf(t *testing.T) {
	out, _ := run(t, `int main() { printf("a\tb\nc\n"); return 0; }`, "")
	if out != "a\tb\nc\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestSizeofVariants(t *testing.T) {
	out, _ := run(t, `
int main() {
	int x;
	double arr[10];
	printf("%d %d %d %d\n", sizeof(int), sizeof(double), sizeof(x), sizeof(arr));
	return 0;
}`, "")
	if out != "4 8 4 80\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestReadWriteCString(t *testing.T) {
	obj := NewObject("buf", minic.CharType, 8, SpaceRAM)
	p := Pointer{Obj: obj}
	n := WriteCString(p, "hello")
	if n != 5 {
		t.Fatalf("wrote %d", n)
	}
	if got := ReadCString(p); got != "hello" {
		t.Fatalf("read %q", got)
	}
	// Truncation clamps.
	n = WriteCString(p, "averylongstring")
	if n != 8 {
		t.Fatalf("clamped write = %d", n)
	}
}
