package interp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/minic"
)

// tokenReader provides both line-oriented (getline) and token-oriented
// (scanf) access over a single input stream, like C stdio.
type tokenReader struct {
	r   *bufio.Reader
	eof bool
}

func newTokenReader(r io.Reader) *tokenReader {
	if r == nil {
		r = strings.NewReader("")
	}
	return &tokenReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// readLine returns the next line including its trailing newline (if
// present) and false at EOF.
func (t *tokenReader) readLine() (string, bool) {
	if t.eof {
		return "", false
	}
	line, err := t.r.ReadString('\n')
	if err != nil {
		t.eof = true
		if len(line) == 0 {
			return "", false
		}
	}
	return line, true
}

// readToken skips whitespace then reads a run of non-whitespace bytes.
func (t *tokenReader) readToken() (string, bool) {
	var b strings.Builder
	// Skip leading whitespace.
	for {
		c, err := t.r.ReadByte()
		if err != nil {
			t.eof = true
			return "", false
		}
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			b.WriteByte(c)
			break
		}
	}
	for {
		c, err := t.r.ReadByte()
		if err != nil {
			t.eof = true
			break
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			_ = t.r.UnreadByte()
			break
		}
		b.WriteByte(c)
	}
	return b.String(), true
}

func (t *tokenReader) readByte() (byte, bool) {
	c, err := t.r.ReadByte()
	if err != nil {
		t.eof = true
		return 0, false
	}
	return c, true
}

// stdlib is the built-in C library. GPU intrinsics are installed separately
// via Options.Intrinsics by package gpurt.
var stdlib = map[string]Builtin{
	"getline": biGetline,
	"printf":  biPrintf,
	"scanf":   biScanf,
	"getchar": biGetchar,
	"putchar": biPutchar,

	"strcmp":  biStrcmp,
	"strncmp": biStrncmp,
	"strcpy":  biStrcpy,
	"strncpy": biStrncpy,
	"strlen":  biStrlen,
	"strstr":  biStrstr,
	"strcat":  biStrcat,
	"memset":  biMemset,
	"memcpy":  biMemcpy,

	"atoi":   biAtoi,
	"atof":   biAtof,
	"malloc": biMalloc,
	"calloc": biCalloc,
	"free":   biFree,
	"abs":    biAbs,
	"exit":   biExit,

	"isdigit": ctype(func(c byte) bool { return c >= '0' && c <= '9' }),
	"isalpha": ctype(func(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }),
	"isalnum": ctype(func(c byte) bool {
		return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
	}),
	"isspace": ctype(func(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }),
	"tolower": mapChar(func(c byte) byte {
		if c >= 'A' && c <= 'Z' {
			return c + 32
		}
		return c
	}),
	"toupper": mapChar(func(c byte) byte {
		if c >= 'a' && c <= 'z' {
			return c - 32
		}
		return c
	}),

	"sqrt":  mathFn1(math.Sqrt),
	"fabs":  mathFn1(math.Abs),
	"exp":   mathFn1(math.Exp),
	"log":   mathFn1(math.Log),
	"log2":  mathFn1(math.Log2),
	"floor": mathFn1(math.Floor),
	"ceil":  mathFn1(math.Ceil),
	"erf":   mathFn1(math.Erf),
	"sin":   mathFn1(math.Sin),
	"cos":   mathFn1(math.Cos),
	"pow":   mathFn2(math.Pow),
	"fmin":  mathFn2(math.Min),
	"fmax":  mathFn2(math.Max),
}

func mathFn1(f func(float64) float64) Builtin {
	return func(m *Machine, args []Value) (Value, error) {
		m.cost.Op(8) // transcendental/FP-heavy op
		return FloatVal(f(args[0].AsFloat())), nil
	}
}

func mathFn2(f func(a, b float64) float64) Builtin {
	return func(m *Machine, args []Value) (Value, error) {
		m.cost.Op(8)
		return FloatVal(f(args[0].AsFloat(), args[1].AsFloat())), nil
	}
}

func ctype(pred func(byte) bool) Builtin {
	return func(m *Machine, args []Value) (Value, error) {
		if pred(byte(args[0].AsInt())) {
			return IntVal(1), nil
		}
		return IntVal(0), nil
	}
}

func mapChar(f func(byte) byte) Builtin {
	return func(m *Machine, args []Value) (Value, error) {
		return IntVal(int64(f(byte(args[0].AsInt())))), nil
	}
}

// biGetline implements POSIX getline(&line, &n, stdin): reads one line
// (with trailing newline) into *line, growing the buffer if needed, and
// returns the byte count or -1 at EOF.
func biGetline(m *Machine, args []Value) (Value, error) {
	if len(args) != 3 {
		return Value{}, fmt.Errorf("interp: getline needs 3 args")
	}
	linePP := args[0]
	sizeP := args[1]
	if linePP.Kind != ValPtr || linePP.P.IsNull() {
		return Value{}, fmt.Errorf("interp: getline: bad line pointer")
	}
	line, ok := m.stdin.readLine()
	if !ok {
		return IntVal(-1), nil
	}
	buf := linePP.P.Obj.Cells[linePP.P.Off]
	need := len(line) + 1
	var target Pointer
	if buf.Kind == ValPtr && !buf.P.IsNull() && len(buf.P.Obj.Cells)-buf.P.Off >= need {
		target = buf.P
	} else {
		obj := NewObject("getline-buf", minic.CharType, need, m.space)
		target = Pointer{Obj: obj}
		linePP.P.Obj.Cells[linePP.P.Off] = PtrVal(target)
		if sizeP.Kind == ValPtr && !sizeP.P.IsNull() {
			sizeP.P.Obj.Cells[sizeP.P.Off] = IntVal(int64(need))
		}
	}
	WriteCString(target, line)
	m.cost.Op(len(line))                   // per-byte copy work
	m.cost.Load(SpaceRAM, len(line))       // stream read
	m.cost.Store(target.Obj.Space, need-1) // buffer fill
	return IntVal(int64(len(line))), nil
}

// biPrintf implements a C printf subset: %d %ld %c %s %f %lf %g %e %x %%
// with optional width/precision on floats (%.3f).
func biPrintf(m *Machine, args []Value) (Value, error) {
	if len(args) == 0 || args[0].Kind != ValPtr {
		return Value{}, fmt.Errorf("interp: printf: missing format")
	}
	format := ReadCString(args[0].P)
	out, err := formatC(format, args[1:])
	if err != nil {
		return Value{}, err
	}
	if m.stdout != nil {
		if _, err := io.WriteString(m.stdout, out); err != nil {
			return Value{}, err
		}
	}
	m.cost.Op(len(out))
	m.cost.Store(SpaceRAM, len(out))
	return IntVal(int64(len(out))), nil
}

func formatC(format string, args []Value) (string, error) {
	var b strings.Builder
	ai := 0
	next := func() (Value, error) {
		if ai >= len(args) {
			return Value{}, fmt.Errorf("interp: printf: not enough arguments for format %q", format)
		}
		v := args[ai]
		ai++
		return v, nil
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(format) {
			return "", fmt.Errorf("interp: printf: dangling %% in %q", format)
		}
		// Parse %[flags][width][.prec][length]verb
		start := i
		for i < len(format) && (format[i] == '-' || format[i] == '+' || format[i] == '0' || format[i] == ' ') {
			i++
		}
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			i++
		}
		prec := -1
		if i < len(format) && format[i] == '.' {
			i++
			p := 0
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				p = p*10 + int(format[i]-'0')
				i++
			}
			prec = p
		}
		for i < len(format) && (format[i] == 'l' || format[i] == 'h' || format[i] == 'z') {
			i++
		}
		if i >= len(format) {
			return "", fmt.Errorf("interp: printf: truncated verb in %q", format)
		}
		_ = start
		verb := format[i]
		switch verb {
		case '%':
			b.WriteByte('%')
		case 'd', 'i', 'u':
			v, err := next()
			if err != nil {
				return "", err
			}
			b.WriteString(strconv.FormatInt(v.AsInt(), 10))
		case 'x':
			v, err := next()
			if err != nil {
				return "", err
			}
			b.WriteString(strconv.FormatInt(v.AsInt(), 16))
		case 'c':
			v, err := next()
			if err != nil {
				return "", err
			}
			b.WriteByte(byte(v.AsInt()))
		case 's':
			v, err := next()
			if err != nil {
				return "", err
			}
			if v.Kind != ValPtr {
				return "", fmt.Errorf("interp: printf: %%s argument is not a string")
			}
			b.WriteString(ReadCString(v.P))
		case 'f':
			v, err := next()
			if err != nil {
				return "", err
			}
			if prec < 0 {
				prec = 6
			}
			b.WriteString(strconv.FormatFloat(v.AsFloat(), 'f', prec, 64))
		case 'e':
			v, err := next()
			if err != nil {
				return "", err
			}
			if prec < 0 {
				prec = 6
			}
			b.WriteString(strconv.FormatFloat(v.AsFloat(), 'e', prec, 64))
		case 'g':
			v, err := next()
			if err != nil {
				return "", err
			}
			b.WriteString(strconv.FormatFloat(v.AsFloat(), 'g', 12, 64))
		default:
			return "", fmt.Errorf("interp: printf: unsupported verb %%%c", verb)
		}
	}
	return b.String(), nil
}

// biScanf implements a scanf subset: %s %d %ld %f %lf %c tokens separated
// by whitespace in the format are treated as "skip whitespace". Returns
// the number of conversions performed, or -1 on immediate EOF.
func biScanf(m *Machine, args []Value) (Value, error) {
	if len(args) == 0 || args[0].Kind != ValPtr {
		return Value{}, fmt.Errorf("interp: scanf: missing format")
	}
	format := ReadCString(args[0].P)
	ai := 1
	assigned := 0
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c == ' ' || c == '\t' || c == '\n' {
			continue
		}
		if c != '%' {
			// Literal match: consume the byte if it is next (best-effort).
			continue
		}
		i++
		for i < len(format) && (format[i] == 'l' || format[i] == 'h') {
			i++
		}
		if i >= len(format) {
			return Value{}, fmt.Errorf("interp: scanf: truncated verb in %q", format)
		}
		if ai >= len(args) {
			return Value{}, fmt.Errorf("interp: scanf: not enough arguments for %q", format)
		}
		dst := args[ai]
		ai++
		if dst.Kind != ValPtr || dst.P.IsNull() {
			return Value{}, fmt.Errorf("interp: scanf: destination is not a pointer")
		}
		switch format[i] {
		case 's':
			tok, ok := m.stdin.readToken()
			if !ok {
				return scanfResult(assigned), nil
			}
			WriteCString(dst.P, tok)
			m.cost.Op(len(tok))
			m.cost.Load(SpaceRAM, len(tok))
			assigned++
		case 'd', 'i', 'u':
			tok, ok := m.stdin.readToken()
			if !ok {
				return scanfResult(assigned), nil
			}
			n, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
			if err != nil {
				return scanfResult(assigned), nil
			}
			dst.P.Obj.Cells[dst.P.Off] = convertFor(dst.P.Obj.Elem, IntVal(n))
			m.cost.Op(len(tok))
			assigned++
		case 'f', 'g', 'e':
			tok, ok := m.stdin.readToken()
			if !ok {
				return scanfResult(assigned), nil
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return scanfResult(assigned), nil
			}
			dst.P.Obj.Cells[dst.P.Off] = convertFor(dst.P.Obj.Elem, FloatVal(f))
			m.cost.Op(len(tok))
			assigned++
		case 'c':
			b, ok := m.stdin.readByte()
			if !ok {
				return scanfResult(assigned), nil
			}
			dst.P.Obj.Cells[dst.P.Off] = IntVal(int64(b))
			assigned++
		default:
			return Value{}, fmt.Errorf("interp: scanf: unsupported verb %%%c", format[i])
		}
	}
	return scanfResult(assigned), nil
}

func scanfResult(assigned int) Value {
	if assigned == 0 {
		return IntVal(-1) // EOF
	}
	return IntVal(int64(assigned))
}

func biGetchar(m *Machine, args []Value) (Value, error) {
	b, ok := m.stdin.readByte()
	if !ok {
		return IntVal(-1), nil
	}
	return IntVal(int64(b)), nil
}

func biPutchar(m *Machine, args []Value) (Value, error) {
	if m.stdout != nil {
		if _, err := m.stdout.Write([]byte{byte(args[0].AsInt())}); err != nil {
			return Value{}, err
		}
	}
	return args[0], nil
}

func ptrArg(args []Value, i int, fn string) (Pointer, error) {
	if i >= len(args) || args[i].Kind != ValPtr || args[i].P.IsNull() {
		return Pointer{}, fmt.Errorf("interp: %s: argument %d is not a valid pointer", fn, i)
	}
	return args[i].P, nil
}

func biStrcmp(m *Machine, args []Value) (Value, error) {
	a, err := ptrArg(args, 0, "strcmp")
	if err != nil {
		return Value{}, err
	}
	b, err := ptrArg(args, 1, "strcmp")
	if err != nil {
		return Value{}, err
	}
	return strcmpCore(m, a, b, -1)
}

func biStrncmp(m *Machine, args []Value) (Value, error) {
	a, err := ptrArg(args, 0, "strncmp")
	if err != nil {
		return Value{}, err
	}
	b, err := ptrArg(args, 1, "strncmp")
	if err != nil {
		return Value{}, err
	}
	return strcmpCore(m, a, b, int(args[2].AsInt()))
}

func strcmpCore(m *Machine, a, b Pointer, n int) (Value, error) {
	i := 0
	for {
		if n >= 0 && i >= n {
			return IntVal(0), nil
		}
		var ca, cb byte
		if a.Off+i < len(a.Obj.Cells) {
			ca = byte(a.Obj.Cells[a.Off+i].AsInt())
		}
		if b.Off+i < len(b.Obj.Cells) {
			cb = byte(b.Obj.Cells[b.Off+i].AsInt())
		}
		m.cost.Op(1)
		m.cost.Load(a.Obj.Space, 1)
		m.cost.Load(b.Obj.Space, 1)
		if ca != cb {
			return IntVal(int64(ca) - int64(cb)), nil
		}
		if ca == 0 {
			return IntVal(0), nil
		}
		i++
	}
}

func biStrcpy(m *Machine, args []Value) (Value, error) {
	dst, err := ptrArg(args, 0, "strcpy")
	if err != nil {
		return Value{}, err
	}
	src, err := ptrArg(args, 1, "strcpy")
	if err != nil {
		return Value{}, err
	}
	s := ReadCString(src)
	WriteCString(dst, s)
	m.cost.Op(len(s))
	m.cost.Load(src.Obj.Space, len(s)+1)
	m.cost.Store(dst.Obj.Space, len(s)+1)
	return args[0], nil
}

func biStrncpy(m *Machine, args []Value) (Value, error) {
	dst, err := ptrArg(args, 0, "strncpy")
	if err != nil {
		return Value{}, err
	}
	src, err := ptrArg(args, 1, "strncpy")
	if err != nil {
		return Value{}, err
	}
	n := int(args[2].AsInt())
	s := ReadCString(src)
	if len(s) > n {
		s = s[:n]
	}
	WriteCString(dst, s)
	m.cost.Op(n)
	m.cost.Load(src.Obj.Space, n)
	m.cost.Store(dst.Obj.Space, n)
	return args[0], nil
}

func biStrlen(m *Machine, args []Value) (Value, error) {
	p, err := ptrArg(args, 0, "strlen")
	if err != nil {
		return Value{}, err
	}
	s := ReadCString(p)
	m.cost.Op(len(s))
	m.cost.Load(p.Obj.Space, len(s)+1)
	return IntVal(int64(len(s))), nil
}

func biStrstr(m *Machine, args []Value) (Value, error) {
	hay, err := ptrArg(args, 0, "strstr")
	if err != nil {
		return Value{}, err
	}
	needle, err := ptrArg(args, 1, "strstr")
	if err != nil {
		return Value{}, err
	}
	h := ReadCString(hay)
	n := ReadCString(needle)
	m.cost.Op(len(h) + len(n))
	m.cost.Load(hay.Obj.Space, len(h))
	m.cost.Load(needle.Obj.Space, len(n))
	idx := strings.Index(h, n)
	if idx < 0 {
		return PtrVal(Pointer{}), nil
	}
	return PtrVal(Pointer{Obj: hay.Obj, Off: hay.Off + idx}), nil
}

func biStrcat(m *Machine, args []Value) (Value, error) {
	dst, err := ptrArg(args, 0, "strcat")
	if err != nil {
		return Value{}, err
	}
	src, err := ptrArg(args, 1, "strcat")
	if err != nil {
		return Value{}, err
	}
	d := ReadCString(dst)
	s := ReadCString(src)
	WriteCString(Pointer{Obj: dst.Obj, Off: dst.Off + len(d)}, s)
	m.cost.Op(len(s))
	return args[0], nil
}

func biMemset(m *Machine, args []Value) (Value, error) {
	p, err := ptrArg(args, 0, "memset")
	if err != nil {
		return Value{}, err
	}
	v := byte(args[1].AsInt())
	n := int(args[2].AsInt())
	for i := 0; i < n && p.Off+i < len(p.Obj.Cells); i++ {
		p.Obj.Cells[p.Off+i] = IntVal(int64(v))
	}
	m.cost.Op(n)
	m.cost.Store(p.Obj.Space, n)
	return args[0], nil
}

func biMemcpy(m *Machine, args []Value) (Value, error) {
	dst, err := ptrArg(args, 0, "memcpy")
	if err != nil {
		return Value{}, err
	}
	src, err := ptrArg(args, 1, "memcpy")
	if err != nil {
		return Value{}, err
	}
	n := int(args[2].AsInt())
	for i := 0; i < n; i++ {
		if dst.Off+i >= len(dst.Obj.Cells) || src.Off+i >= len(src.Obj.Cells) {
			break
		}
		dst.Obj.Cells[dst.Off+i] = src.Obj.Cells[src.Off+i]
	}
	m.cost.Op(n)
	m.cost.Load(src.Obj.Space, n)
	m.cost.Store(dst.Obj.Space, n)
	return args[0], nil
}

// charAt reads the byte at p+i, or 0 past the object's end.
func charAt(p Pointer, i int) byte {
	off := p.Off + i
	if off < 0 || off >= len(p.Obj.Cells) {
		return 0
	}
	return byte(p.Obj.Cells[off].AsInt())
}

// biAtoi parses incrementally like C atoi: it touches only the bytes of
// the number itself, never scanning for a terminator (the input buffer on
// the GPU has no NUL until its very end).
func biAtoi(m *Machine, args []Value) (Value, error) {
	p, err := ptrArg(args, 0, "atoi")
	if err != nil {
		return Value{}, err
	}
	i := 0
	for c := charAt(p, i); c == ' ' || c == '\t' || c == '\n' || c == '\r'; c = charAt(p, i) {
		i++
	}
	neg := false
	if c := charAt(p, i); c == '-' || c == '+' {
		neg = c == '-'
		i++
	}
	var n int64
	digits := 0
	for {
		c := charAt(p, i)
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int64(c-'0')
		i++
		digits++
	}
	m.cost.Op(i + 2)
	m.cost.Load(p.Obj.Space, i+1)
	if neg {
		n = -n
	}
	_ = digits
	return IntVal(n), nil
}

// biAtof parses incrementally like C atof (no exponent scanning past the
// mantissa unless present), touching only the number's bytes.
func biAtof(m *Machine, args []Value) (Value, error) {
	p, err := ptrArg(args, 0, "atof")
	if err != nil {
		return Value{}, err
	}
	i := 0
	for c := charAt(p, i); c == ' ' || c == '\t' || c == '\n' || c == '\r'; c = charAt(p, i) {
		i++
	}
	start := i
	var b strings.Builder
	if c := charAt(p, i); c == '-' || c == '+' {
		b.WriteByte(c)
		i++
	}
	seenDot, seenExp := false, false
	for {
		c := charAt(p, i)
		switch {
		case c >= '0' && c <= '9':
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && !seenExp && i > start:
			next := charAt(p, i+1)
			if next != '-' && next != '+' && (next < '0' || next > '9') {
				c = 0
			} else {
				seenExp = true
			}
		case (c == '-' || c == '+') && i > start && (charAt(p, i-1) == 'e' || charAt(p, i-1) == 'E'):
		default:
			c = 0
		}
		if c == 0 {
			break
		}
		b.WriteByte(c)
		i++
	}
	m.cost.Op(i - start + 4)
	m.cost.Load(p.Obj.Space, i-start+1)
	f, _ := strconv.ParseFloat(b.String(), 64)
	return FloatVal(f), nil
}

func biMalloc(m *Machine, args []Value) (Value, error) {
	n := int(args[0].AsInt())
	if n < 0 {
		return Value{}, fmt.Errorf("interp: malloc of negative size %d", n)
	}
	if n == 0 {
		n = 1
	}
	obj := NewObject("malloc", minic.CharType, n, m.space)
	m.cost.Op(4)
	return PtrVal(Pointer{Obj: obj}), nil
}

func biCalloc(m *Machine, args []Value) (Value, error) {
	n := int(args[0].AsInt() * args[1].AsInt())
	if n <= 0 {
		n = 1
	}
	obj := NewObject("calloc", minic.CharType, n, m.space)
	m.cost.Op(4 + n/8)
	return PtrVal(Pointer{Obj: obj}), nil
}

func biFree(m *Machine, args []Value) (Value, error) {
	// Garbage collected; free is a no-op but validates its argument kind.
	if args[0].Kind != ValPtr {
		return Value{}, fmt.Errorf("interp: free of non-pointer")
	}
	return Value{}, nil
}

func biAbs(m *Machine, args []Value) (Value, error) {
	v := args[0].AsInt()
	if v < 0 {
		v = -v
	}
	return IntVal(v), nil
}

func biExit(m *Machine, args []Value) (Value, error) {
	return Value{}, errExit{code: int(args[0].AsInt())}
}
