package analysis

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

func mustParse(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.ParseAndCheckFile("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func codes(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Code)
	}
	return out
}

func TestScanClausesKeepsDuplicates(t *testing.T) {
	cls := scanClauses("mapreduce mapper key(a) key(b) firstprivate(x, y)")
	var names []string
	for _, c := range cls {
		names = append(names, c.name)
	}
	want := "mapper key key firstprivate"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("clause names = %q, want %q", got, want)
	}
	if got := strings.Join(cls[3].args, ","); got != "x,y" {
		t.Errorf("firstprivate args = %q, want x,y", got)
	}
}

func TestScanClausesMarksUnbalanced(t *testing.T) {
	cls := scanClauses("mapreduce mapper key(a")
	bad := false
	for _, c := range cls {
		bad = bad || c.bad
	}
	if !bad {
		t.Errorf("unbalanced parens not marked bad: %+v", cls)
	}
}

func TestSeverityOrderingAndClean(t *testing.T) {
	diags := []Diagnostic{
		{Code: "HD204", Severity: SevInfo},
		{Code: "HD202", Severity: SevWarning},
	}
	if Clean(diags) {
		t.Errorf("warning-bearing set reported clean")
	}
	if Clean(diags[:1]) != true {
		t.Errorf("info-only set reported unclean")
	}
	if HasErrors(diags) {
		t.Errorf("no errors present, HasErrors = true")
	}
}

func TestSortOrdersByPositionThenCode(t *testing.T) {
	diags := []Diagnostic{
		{Code: "HD302", Pos: minic.Pos{Line: 5, Col: 1}},
		{Code: "HD201", Pos: minic.Pos{Line: 5, Col: 1}},
		{Code: "HD101", Pos: minic.Pos{Line: 2, Col: 9}},
	}
	Sort(diags)
	if got := strings.Join(codes(diags), " "); got != "HD101 HD201 HD302" {
		t.Errorf("sorted codes = %q", got)
	}
}

func TestCatalogSeveritiesUsedByPasses(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Catalog {
		if seen[c.Code] {
			t.Errorf("duplicate catalog code %s", c.Code)
		}
		seen[c.Code] = true
		if catalogSeverity(c.Code) != c.Severity {
			t.Errorf("catalogSeverity(%s) != catalog entry", c.Code)
		}
	}
	if catalogSeverity("HDXXX") != SevError {
		t.Errorf("unknown codes should default to error severity")
	}
}

// TestCatalogSorted pins the `hdlint -codes` contract: the catalog lists
// codes in strictly increasing order.
func TestCatalogSorted(t *testing.T) {
	for i := 1; i < len(Catalog); i++ {
		if Catalog[i-1].Code >= Catalog[i].Code {
			t.Errorf("catalog out of order: %s before %s", Catalog[i-1].Code, Catalog[i].Code)
		}
	}
}

func TestDiagnosticStringFormat(t *testing.T) {
	d := Diagnostic{
		Code: "HD202", Severity: SevWarning, File: "a.c",
		Pos: minic.Pos{Line: 3, Col: 7}, Message: "dead store", Fix: "remove it",
	}
	want := "a.c:3:7: warning: [HD202] dead store (fix: remove it)"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}

func TestEventExtractionCompoundAssign(t *testing.T) {
	prog := mustParse(t, `int main() { int a = 1; a += 2; return a; }`)
	cfg := minic.BuildCFG(prog.Func("main"))
	var evs []event
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			evs = append(evs, nodeEvents(n)...)
		}
	}
	// Expect: write(a) [decl], read(a)+write(a) [compound], read(a) [return].
	var kinds []evKind
	for _, ev := range evs {
		if ev.sym != nil && ev.sym.Name == "a" {
			kinds = append(kinds, ev.kind)
		}
	}
	want := []evKind{evWrite, evRead, evWrite, evRead}
	if len(kinds) != len(want) {
		t.Fatalf("got %d events for a, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// The compound write must not be a plain-store candidate.
	for _, ev := range evs {
		if ev.kind == evWrite && ev.plainStore && ev.pos.Line == 1 && ev.sym.Name == "a" && !ev.constRHS {
			t.Errorf("compound assignment flagged as plain store")
		}
	}
}

func TestBuiltinArgDirections(t *testing.T) {
	// strcpy writes through arg 0 and reads arg 1; strcmp reads both.
	prog := mustParse(t, `int main() {
	char dst[8], src[8];
	strcpy(src, "a");
	strcpy(dst, src);
	return strcmp(dst, src);
}`)
	diags := Analyze(prog)
	if len(diags) != 0 {
		t.Errorf("clean string program produced %v", codes(diags))
	}
}

func TestUninitReportedOnOneBranchOnly(t *testing.T) {
	prog := mustParse(t, `int main(int argc) {
	int x;
	if (argc > 1) { x = 1; }
	return x;
}`)
	diags := Analyze(prog)
	if got := strings.Join(codes(diags), " "); got != "HD201" {
		t.Errorf("diagnostics = %q, want HD201 (maybe-uninit through else branch)", got)
	}
}

func TestLoopCarriedNotFlaggedForWriteFirst(t *testing.T) {
	prog := mustParse(t, `int main() {
	char *line; size_t n = 10; int read, k, v;
	line = (char*) malloc(10);
	#pragma mapreduce mapper key(k) value(v)
	while ((read = getline(&line, &n, stdin)) != -1) {
		k = read; v = k + 1;
		printf("%d\t%d\n", k, v);
	}
	free(line);
	return 0;
}`)
	diags := Analyze(prog)
	if len(diags) != 0 {
		t.Errorf("write-first region produced %v", codes(diags))
	}
}

func TestAnalyzeKernelFlagsNestedGetRecord(t *testing.T) {
	// Build a fake kernel region: while (flag) { if (getRecord(&line)) {} }
	prog := mustParse(t, `int main() {
	char *line; int flag = 1;
	line = (char*) 0;
	while (flag) {
		if (getRecord(&line)) { flag = 0; }
	}
	return 0;
}`)
	fn := prog.Func("main")
	k := &Kernel{File: "k.c", Region: fn.Body, Spaces: map[*minic.Symbol]MemSpace{}}
	diags := AnalyzeKernel(k)
	if got := strings.Join(codes(diags), " "); got != "HD401" {
		t.Errorf("diagnostics = %q, want HD401", got)
	}
}

func TestAnalyzeKernelTopLevelGetRecordLegal(t *testing.T) {
	prog := mustParse(t, `int main() {
	char *line;
	line = (char*) 0;
	while (getRecord(&line) != -1) {
		emitKV(line, line);
	}
	return 0;
}`)
	fn := prog.Func("main")
	k := &Kernel{File: "k.c", Region: fn.Body, Spaces: map[*minic.Symbol]MemSpace{}}
	if diags := AnalyzeKernel(k); len(diags) != 0 {
		t.Errorf("top-level getRecord flagged: %v", codes(diags))
	}
}

func TestConstIntValueFolding(t *testing.T) {
	prog := mustParse(t, `int main() { int a[10]; a[0] = 2 * 3 + 1; return a[0]; }`)
	var got int64
	found := false
	walkExprs(prog.Func("main").Body, func(e minic.Expr) {
		if as, ok := e.(*minic.Assign); ok {
			if v, ok2 := constIntValue(as.R); ok2 {
				got, found = v, true
			}
		}
	})
	if !found || got != 7 {
		t.Errorf("constIntValue(2*3+1) = %d, %v; want 7, true", got, found)
	}
}
