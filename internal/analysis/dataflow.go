package analysis

import (
	"fmt"

	"repro/internal/minic"
)

// This file implements the dataflow pass (HD201..HD204): a forward
// maybe-uninitialized analysis and a backward liveness analysis over the
// function's CFG (minic.BuildCFG), plus a simple unused-variable scan.
// Only function-local scalars and pointers are tracked; arrays are exempt
// from initialization checks (element state is not modeled), and address
// escapes (&x, array decay into calls) conservatively count as both a use
// and a definition.

// symDecl records where a tracked local was declared, in source order.
type symDecl struct {
	sym *minic.Symbol
	pos minic.Pos
}

func (a *analyzer) dataflowPass(fn *minic.FuncDecl) {
	cfg := minic.BuildCFG(fn)
	events := make([][]event, len(cfg.Blocks))
	for i, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			events[i] = append(events[i], nodeEvents(n)...)
		}
	}

	decls := localDecls(fn)
	tracked := map[*minic.Symbol]bool{}
	for _, d := range decls {
		tracked[d.sym] = true
	}

	// Usage scan: a variable with no reads, writes, or escapes anywhere is
	// simply unused (HD203); it is then excluded from the store-level
	// checks so one root cause yields one diagnostic.
	referenced := map[*minic.Symbol]bool{}
	for _, evs := range events {
		for _, ev := range evs {
			if ev.kind != evDeclUninit {
				referenced[ev.sym] = true
			}
		}
	}
	unused := map[*minic.Symbol]bool{}
	for _, d := range decls {
		if !referenced[d.sym] {
			unused[d.sym] = true
			a.report("HD203", d.pos,
				fmt.Sprintf("variable %q is declared but never used", d.sym.Name),
				"remove the declaration")
		}
	}

	a.checkUninit(cfg, events, tracked, unused)
	a.checkDeadStores(cfg, events, tracked, unused)
}

// localDecls returns fn's local variable declarations in source order.
func localDecls(fn *minic.FuncDecl) []symDecl {
	var out []symDecl
	walkStmts(fn.Body, func(s minic.Stmt) {
		ds, ok := s.(*minic.DeclStmt)
		if !ok {
			return
		}
		for _, d := range ds.Decls {
			if d.Sym != nil && d.Sym.Kind == minic.SymVar && !d.Sym.Global {
				out = append(out, symDecl{sym: d.Sym, pos: ds.Pos})
			}
		}
	})
	return out
}

// checkUninit runs forward maybe-uninitialized analysis (union merge) and
// reports HD201 at the first read of a possibly-uninitialized scalar.
func (a *analyzer) checkUninit(cfg *minic.CFG, events [][]event, tracked, unused map[*minic.Symbol]bool) {
	n := len(cfg.Blocks)
	in := make([]map[*minic.Symbol]bool, n)
	out := make([]map[*minic.Symbol]bool, n)
	for i := range out {
		out[i] = map[*minic.Symbol]bool{}
	}
	transfer := func(i int, report func(ev event)) map[*minic.Symbol]bool {
		s := map[*minic.Symbol]bool{}
		for sym := range in[i] {
			s[sym] = true
		}
		for _, ev := range events[i] {
			switch ev.kind {
			case evDeclUninit:
				s[ev.sym] = true
			case evWrite, evAddr:
				delete(s, ev.sym)
			case evRead:
				if report != nil && s[ev.sym] {
					report(ev)
				}
			}
		}
		return s
	}
	for changed := true; changed; {
		changed = false
		for i, b := range cfg.Blocks {
			merged := map[*minic.Symbol]bool{}
			for _, p := range b.Preds {
				for sym := range out[p.ID] {
					merged[sym] = true
				}
			}
			in[i] = merged
			next := transfer(i, nil)
			if !sameSet(next, out[i]) {
				out[i] = next
				changed = true
			}
		}
	}
	// Reporting pass over the stable states: first read position per symbol.
	firstRead := map[*minic.Symbol]minic.Pos{}
	for i := range cfg.Blocks {
		transfer(i, func(ev event) {
			if !tracked[ev.sym] || unused[ev.sym] {
				return
			}
			if prev, ok := firstRead[ev.sym]; !ok || before(ev.pos, prev) {
				firstRead[ev.sym] = ev.pos
			}
		})
	}
	for _, sym := range sortedSyms(firstRead) {
		a.report("HD201", firstRead[sym],
			fmt.Sprintf("variable %q may be used before initialization", sym.Name),
			"initialize the variable at its declaration")
	}
}

// checkDeadStores runs backward liveness and reports plain stores whose
// value is never read: HD202 for computed stores, HD204 (info) for constant
// defensive initializations that are overwritten before use.
func (a *analyzer) checkDeadStores(cfg *minic.CFG, events [][]event, tracked, unused map[*minic.Symbol]bool) {
	n := len(cfg.Blocks)
	liveIn := make([]map[*minic.Symbol]bool, n)
	for i := range liveIn {
		liveIn[i] = map[*minic.Symbol]bool{}
	}
	transfer := func(i int, liveOut map[*minic.Symbol]bool, report func(ev event)) map[*minic.Symbol]bool {
		s := map[*minic.Symbol]bool{}
		for sym := range liveOut {
			s[sym] = true
		}
		evs := events[i]
		for j := len(evs) - 1; j >= 0; j-- {
			ev := evs[j]
			switch ev.kind {
			case evWrite:
				if report != nil && ev.plainStore && tracked[ev.sym] && !unused[ev.sym] && !s[ev.sym] {
					report(ev)
				}
				delete(s, ev.sym)
			case evRead, evAddr, evElemWrite:
				s[ev.sym] = true
			case evDeclUninit:
				delete(s, ev.sym)
			}
		}
		return s
	}
	liveOutOf := func(b *minic.CFGBlock) map[*minic.Symbol]bool {
		out := map[*minic.Symbol]bool{}
		for _, succ := range b.Succs {
			for sym := range liveIn[succ.ID] {
				out[sym] = true
			}
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := cfg.Blocks[i]
			next := transfer(i, liveOutOf(b), nil)
			if !sameSet(next, liveIn[i]) {
				liveIn[i] = next
				changed = true
			}
		}
	}
	type deadStore struct {
		pos      minic.Pos
		sym      *minic.Symbol
		constRHS bool
	}
	var dead []deadStore
	for i, b := range cfg.Blocks {
		transfer(i, liveOutOf(b), func(ev event) {
			dead = append(dead, deadStore{pos: ev.pos, sym: ev.sym, constRHS: ev.constRHS})
		})
	}
	for _, d := range dead {
		if d.constRHS {
			a.report("HD204", d.pos,
				fmt.Sprintf("redundant initialization of %q: the constant is overwritten before any use", d.sym.Name),
				"drop the initialization (kept stores cost GPU registers)")
		} else {
			a.report("HD202", d.pos,
				fmt.Sprintf("dead store to %q: the assigned value is never used", d.sym.Name),
				"remove the assignment or use the value")
		}
	}
}

func sameSet(a, b map[*minic.Symbol]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func before(a, b minic.Pos) bool {
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

// sortedSyms orders a position map's keys by position for deterministic
// reports.
func sortedSyms(m map[*minic.Symbol]minic.Pos) []*minic.Symbol {
	out := make([]*minic.Symbol, 0, len(m))
	for sym := range m {
		out = append(out, sym)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && before(m[out[j]], m[out[j-1]]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
