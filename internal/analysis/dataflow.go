package analysis

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/minic"
)

// This file implements the dataflow pass (HD201..HD204): a forward
// maybe-uninitialized analysis and a backward liveness analysis over the
// function's CFG (minic.BuildCFG), plus a simple unused-variable scan.
// Both fixpoints run on the shared gen/kill solver (ir.SolveGenKill): each
// block's ordered access-event list composes into one gen/kill pair, and a
// replay over the solved block inputs produces the reports. Only
// function-local scalars and pointers are tracked; arrays are exempt from
// initialization checks (element state is not modeled), and address escapes
// (&x, array decay into calls) conservatively count as both a use and a
// definition.

// symDecl records where a tracked local was declared, in source order.
type symDecl struct {
	sym *minic.Symbol
	pos minic.Pos
}

func (a *analyzer) dataflowPass(fn *minic.FuncDecl) {
	cfg := minic.BuildCFG(fn)
	events := make([][]event, len(cfg.Blocks))
	for i, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			events[i] = append(events[i], nodeEvents(n)...)
		}
	}

	decls := localDecls(fn)
	tracked := map[*minic.Symbol]bool{}
	for _, d := range decls {
		tracked[d.sym] = true
	}

	// Usage scan: a variable with no reads, writes, or escapes anywhere is
	// simply unused (HD203); it is then excluded from the store-level
	// checks so one root cause yields one diagnostic.
	referenced := map[*minic.Symbol]bool{}
	for _, evs := range events {
		for _, ev := range evs {
			if ev.kind != evDeclUninit {
				referenced[ev.sym] = true
			}
		}
	}
	unused := map[*minic.Symbol]bool{}
	for _, d := range decls {
		if !referenced[d.sym] {
			unused[d.sym] = true
			a.report("HD203", d.pos,
				fmt.Sprintf("variable %q is declared but never used", d.sym.Name),
				"remove the declaration")
		}
	}

	fl := newFlowLattice(cfg, events)
	a.checkUninit(fl, tracked, unused)
	a.checkDeadStores(fl, tracked, unused)
}

// localDecls returns fn's local variable declarations in source order.
func localDecls(fn *minic.FuncDecl) []symDecl {
	var out []symDecl
	walkStmts(fn.Body, func(s minic.Stmt) {
		ds, ok := s.(*minic.DeclStmt)
		if !ok {
			return
		}
		for _, d := range ds.Decls {
			if d.Sym != nil && d.Sym.Kind == minic.SymVar && !d.Sym.Global {
				out = append(out, symDecl{sym: d.Sym, pos: ds.Pos})
			}
		}
	})
	return out
}

// flowLattice numbers every symbol the function's events touch and adapts
// the statement-granularity CFG into the solver's abstract graph, so both
// HD2xx fixpoints share one bit-index space.
type flowLattice struct {
	cfg    *minic.CFG
	events [][]event
	g      ir.Graph
	idx    map[*minic.Symbol]int
	n      int
}

func newFlowLattice(cfg *minic.CFG, events [][]event) *flowLattice {
	fl := &flowLattice{cfg: cfg, events: events, idx: map[*minic.Symbol]int{}}
	for _, evs := range events {
		for _, ev := range evs {
			if _, ok := fl.idx[ev.sym]; !ok {
				fl.idx[ev.sym] = fl.n
				fl.n++
			}
		}
	}
	fl.g = ir.Graph{
		N:     len(cfg.Blocks),
		Succs: make([][]int, len(cfg.Blocks)),
		Preds: make([][]int, len(cfg.Blocks)),
	}
	for i, b := range cfg.Blocks {
		for _, s := range b.Succs {
			fl.g.Succs[i] = append(fl.g.Succs[i], s.ID)
		}
		for _, p := range b.Preds {
			fl.g.Preds[i] = append(fl.g.Preds[i], p.ID)
		}
	}
	return fl
}

// checkUninit runs forward maybe-uninitialized analysis (union merge) and
// reports HD201 at the first read of a possibly-uninitialized scalar.
// Gen/kill composition of one block's ordered events: an uninitialized
// declaration gens the fact, any write or address escape kills it.
func (a *analyzer) checkUninit(fl *flowLattice, tracked, unused map[*minic.Symbol]bool) {
	in, _ := ir.SolveGenKill(fl.g, ir.Forward, fl.n, func(i int) ir.GenKill { return fl.uninitGK(i) })

	// Reporting replay over the solved block inputs: first read position
	// per symbol while applying the same event transfer in order.
	firstRead := map[*minic.Symbol]minic.Pos{}
	for i := range fl.cfg.Blocks {
		s := in[i].Copy()
		for _, ev := range fl.events[i] {
			bit := fl.idx[ev.sym]
			switch ev.kind {
			case evDeclUninit:
				s.Set(bit)
			case evWrite, evAddr:
				s.Clear(bit)
			case evRead:
				if s.Get(bit) && tracked[ev.sym] && !unused[ev.sym] {
					if prev, ok := firstRead[ev.sym]; !ok || before(ev.pos, prev) {
						firstRead[ev.sym] = ev.pos
					}
				}
			}
		}
	}
	for _, sym := range sortedSyms(firstRead) {
		a.report("HD201", firstRead[sym],
			fmt.Sprintf("variable %q may be used before initialization", sym.Name),
			"initialize the variable at its declaration")
	}
}

func (fl *flowLattice) uninitGK(i int) ir.GenKill {
	gen, kill := ir.NewBits(fl.n), ir.NewBits(fl.n)
	for _, ev := range fl.events[i] {
		bit := fl.idx[ev.sym]
		switch ev.kind {
		case evDeclUninit:
			gen.Set(bit)
			kill.Clear(bit)
		case evWrite, evAddr:
			kill.Set(bit)
			gen.Clear(bit)
		}
	}
	return ir.GenKill{Gen: gen, Kill: kill}
}

// checkDeadStores runs backward liveness and reports plain stores whose
// value is never read: HD202 for computed stores, HD204 (info) for constant
// defensive initializations that are overwritten before use. Composition is
// over the block's events in reverse: a read (or escape, or element write)
// gens liveness, a whole-variable write or uninitialized declaration kills
// it.
func (a *analyzer) checkDeadStores(fl *flowLattice, tracked, unused map[*minic.Symbol]bool) {
	// For Backward problems the solver's IN is the meet over successors'
	// OUT — the value at the block's exit, i.e. liveOut.
	liveOut, _ := ir.SolveGenKill(fl.g, ir.Backward, fl.n, func(i int) ir.GenKill { return fl.liveGK(i) })

	type deadStore struct {
		pos      minic.Pos
		sym      *minic.Symbol
		constRHS bool
	}
	var dead []deadStore
	for i := range fl.cfg.Blocks {
		s := liveOut[i].Copy()
		evs := fl.events[i]
		for j := len(evs) - 1; j >= 0; j-- {
			ev := evs[j]
			bit := fl.idx[ev.sym]
			switch ev.kind {
			case evWrite:
				if ev.plainStore && tracked[ev.sym] && !unused[ev.sym] && !s.Get(bit) {
					dead = append(dead, deadStore{pos: ev.pos, sym: ev.sym, constRHS: ev.constRHS})
				}
				s.Clear(bit)
			case evRead, evAddr, evElemWrite:
				s.Set(bit)
			case evDeclUninit:
				s.Clear(bit)
			}
		}
	}
	for _, d := range dead {
		if d.constRHS {
			a.report("HD204", d.pos,
				fmt.Sprintf("redundant initialization of %q: the constant is overwritten before any use", d.sym.Name),
				"drop the initialization (kept stores cost GPU registers)")
		} else {
			a.report("HD202", d.pos,
				fmt.Sprintf("dead store to %q: the assigned value is never used", d.sym.Name),
				"remove the assignment or use the value")
		}
	}
}

func (fl *flowLattice) liveGK(i int) ir.GenKill {
	gen, kill := ir.NewBits(fl.n), ir.NewBits(fl.n)
	evs := fl.events[i]
	for j := len(evs) - 1; j >= 0; j-- {
		ev := evs[j]
		bit := fl.idx[ev.sym]
		switch ev.kind {
		case evWrite, evDeclUninit:
			kill.Set(bit)
			gen.Clear(bit)
		case evRead, evAddr, evElemWrite:
			gen.Set(bit)
			kill.Clear(bit)
		}
	}
	return ir.GenKill{Gen: gen, Kill: kill}
}

func before(a, b minic.Pos) bool {
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

// sortedSyms orders a position map's keys by position for deterministic
// reports.
func sortedSyms(m map[*minic.Symbol]minic.Pos) []*minic.Symbol {
	out := make([]*minic.Symbol, 0, len(m))
	for sym := range m {
		out = append(out, sym)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && before(m[out[j]], m[out[j-1]]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
