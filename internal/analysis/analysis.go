package analysis

import (
	"strings"

	"repro/internal/minic"
)

// Analyze runs every source-level pass over a parsed-and-checked program:
// the directive verifier (HD1xx), dataflow (HD2xx), parallel legality
// (HD3xx), and IO purity (HD5xx). Kernel-level passes (HD4xx) run
// separately via AnalyzeKernel because they need the translator's variable
// placement plan. The program is never mutated.
func Analyze(prog *minic.Program) []Diagnostic {
	a := &analyzer{prog: prog, file: prog.File}
	regions := a.mapreduceRegions()
	a.oobOwned = a.hd403Owned(regions)
	for _, r := range regions {
		a.directivePass(r)
	}
	for _, fn := range prog.Funcs {
		a.dataflowPass(fn)
		a.optPass(fn)
	}
	for _, r := range regions {
		a.parallelPass(r)
		a.ioPurityPass(r)
	}
	Sort(a.diags)
	return a.diags
}

type analyzer struct {
	prog  *minic.Program
	file  string
	diags []Diagnostic
	// oobOwned marks subscripts the kernel-side HD403 pass reports, so the
	// source-level HD605 pass does not double-report them.
	oobOwned map[*minic.Index]bool
}

func (a *analyzer) report(code string, pos minic.Pos, msg, fix string) {
	a.diags = append(a.diags, Diagnostic{
		Code:     code,
		Severity: catalogSeverity(code),
		File:     a.file,
		Pos:      pos,
		Message:  msg,
		Fix:      fix,
	})
}

// ---- Region discovery ----

// regionInfo is one `#pragma mapreduce` region with its clause list
// re-scanned (duplicates preserved, unlike the translator's Directive) and
// names resolved against visible symbols.
type regionInfo struct {
	pragma *minic.PragmaStmt
	fn     *minic.FuncDecl

	clauses  []clauseTok
	combiner bool
	// kindClauses counts mapper/combiner markers (pairing check).
	kindClauses int

	key, value     string
	keyIn, valueIn string
	keyLen, valLen int

	firstPrivate []string
	sharedRO     []string
	texture      []string

	syms map[string]*minic.Symbol
}

func (r *regionInfo) kindName() string {
	if r.combiner {
		return "combiner"
	}
	return "mapper"
}

func (r *regionInfo) inFirstPrivate(name string) bool { return contains(r.firstPrivate, name) }

func (r *regionInfo) inReadOnlyClause(name string) bool {
	return contains(r.sharedRO, name) || contains(r.texture, name)
}

func contains(list []string, name string) bool {
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}

func (a *analyzer) mapreduceRegions() []*regionInfo {
	var out []*regionInfo
	for _, fn := range a.prog.Funcs {
		fn := fn
		walkStmts(fn.Body, func(s minic.Stmt) {
			p, ok := s.(*minic.PragmaStmt)
			if !ok || !p.IsMapReduce() {
				return
			}
			r := &regionInfo{pragma: p, fn: fn, syms: a.visibleSymbols(fn)}
			r.clauses = scanClauses(p.Text)
			for _, cl := range r.clauses {
				switch cl.name {
				case "mapper":
					r.kindClauses++
				case "combiner":
					r.combiner = true
					r.kindClauses++
				case "key":
					r.key = cl.one()
				case "value":
					r.value = cl.one()
				case "keyin":
					r.keyIn = cl.one()
				case "valuein":
					r.valueIn = cl.one()
				case "keylength":
					r.keyLen = cl.oneInt()
				case "vallength":
					r.valLen = cl.oneInt()
				case "firstprivate":
					r.firstPrivate = append(r.firstPrivate, cl.args...)
				case "sharedRO", "sharedro":
					r.sharedRO = append(r.sharedRO, cl.args...)
				case "texture":
					r.texture = append(r.texture, cl.args...)
				}
			}
			out = append(out, r)
		})
	}
	return out
}

// visibleSymbols maps names to symbols visible inside fn: file-scope
// globals, parameters, and every nested declaration (mirrors the
// translator's resolution rules).
func (a *analyzer) visibleSymbols(fn *minic.FuncDecl) map[string]*minic.Symbol {
	out := map[string]*minic.Symbol{}
	for _, g := range a.prog.Globals {
		for _, d := range g.Decls {
			out[d.Name] = d.Sym
		}
	}
	for _, p := range fn.Params {
		out[p.Name] = p.Sym
	}
	walkStmts(fn.Body, func(s minic.Stmt) {
		if ds, ok := s.(*minic.DeclStmt); ok {
			for _, d := range ds.Decls {
				out[d.Name] = d.Sym
			}
		}
	})
	return out
}

// ---- Clause scanning ----

// clauseTok is one `name(arg, ...)` group from a pragma line. Unlike the
// translator's parser it keeps duplicates and malformed pieces so the
// directive verifier can report them.
type clauseTok struct {
	name string
	args []string
	bad  bool // unbalanced parentheses or stray characters
}

func (c clauseTok) one() string {
	if len(c.args) == 1 {
		return c.args[0]
	}
	return ""
}

func (c clauseTok) oneInt() int {
	s := c.one()
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0
		}
		n = n*10 + int(s[i]-'0')
	}
	return n
}

// scanClauses tokenizes the pragma text after "mapreduce".
func scanClauses(text string) []clauseTok {
	text = strings.TrimSpace(text)
	text = strings.TrimPrefix(text, "mapreduce")
	var out []clauseTok
	i, n := 0, len(text)
	for i < n {
		for i < n && (text[i] == ' ' || text[i] == '\t' || text[i] == ',') {
			i++
		}
		if i >= n {
			break
		}
		start := i
		for i < n && isWord(text[i]) {
			i++
		}
		if i == start {
			out = append(out, clauseTok{name: string(text[i]), bad: true})
			i++
			continue
		}
		cl := clauseTok{name: text[start:i]}
		for i < n && text[i] == ' ' {
			i++
		}
		if i < n && text[i] == '(' {
			depth := 1
			i++
			argStart := i
			for i < n && depth > 0 {
				switch text[i] {
				case '(':
					depth++
				case ')':
					depth--
				}
				if depth > 0 {
					i++
				}
			}
			if depth != 0 {
				cl.bad = true
				cl.args = splitArgs(text[argStart:])
				i = n
			} else {
				cl.args = splitArgs(text[argStart:i])
				i++
			}
		}
		out = append(out, cl)
	}
	return out
}

func splitArgs(raw string) []string {
	var out []string
	for _, a := range strings.Split(raw, ",") {
		a = strings.TrimSpace(a)
		if a != "" {
			out = append(out, a)
		}
	}
	return out
}

func isWord(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// ---- AST walking ----

// walkStmts visits s and every nested statement, in source order.
func walkStmts(s minic.Stmt, visit func(minic.Stmt)) {
	if s == nil {
		return
	}
	visit(s)
	switch st := s.(type) {
	case *minic.Block:
		for _, inner := range st.Stmts {
			walkStmts(inner, visit)
		}
	case *minic.If:
		walkStmts(st.Then, visit)
		walkStmts(st.Else, visit)
	case *minic.While:
		walkStmts(st.Body, visit)
	case *minic.For:
		walkStmts(st.Init, visit)
		walkStmts(st.Body, visit)
	case *minic.PragmaStmt:
		walkStmts(st.Body, visit)
	}
}

// walkCalls visits every Call expression nested anywhere under s.
func walkCalls(s minic.Stmt, visit func(*minic.Call)) {
	var walkExpr func(e minic.Expr)
	walkExpr = func(e minic.Expr) {
		if e == nil {
			return
		}
		switch x := e.(type) {
		case *minic.Unary:
			walkExpr(x.X)
		case *minic.Postfix:
			walkExpr(x.X)
		case *minic.Binary:
			walkExpr(x.L)
			walkExpr(x.R)
		case *minic.Assign:
			walkExpr(x.L)
			walkExpr(x.R)
		case *minic.Cond:
			walkExpr(x.C)
			walkExpr(x.T)
			walkExpr(x.F)
		case *minic.Call:
			visit(x)
			for _, arg := range x.Args {
				walkExpr(arg)
			}
		case *minic.Index:
			walkExpr(x.X)
			walkExpr(x.Idx)
		case *minic.Cast:
			walkExpr(x.X)
		}
	}
	walkStmts(s, func(st minic.Stmt) {
		switch x := st.(type) {
		case *minic.ExprStmt:
			walkExpr(x.X)
		case *minic.DeclStmt:
			for _, d := range x.Decls {
				walkExpr(d.Init)
			}
		case *minic.If:
			walkExpr(x.Cond)
		case *minic.While:
			walkExpr(x.Cond)
		case *minic.For:
			walkExpr(x.Cond)
			walkExpr(x.Post)
		case *minic.Return:
			walkExpr(x.X)
		}
	})
}

// ---- Access events ----

// evKind classifies one variable access, in evaluation order.
type evKind int

const (
	// evRead loads the variable's value (or the pointer value for
	// pointer-typed variables passed by value).
	evRead evKind = iota
	// evWrite stores a new value into the variable (assignment, ++/--).
	evWrite
	// evElemWrite stores through a subscript: the element changes but the
	// variable binding itself does not (a use, not a def, for dataflow;
	// a write for parallel-legality ordering).
	evElemWrite
	// evAddr passes the variable's address (or a decayed array) to a
	// callee that may both read and write it. Conservatively use+def.
	evAddr
	// evDeclUninit marks a scalar declaration without initializer.
	evDeclUninit
)

// event is one ordered access to a symbol.
type event struct {
	sym  *minic.Symbol
	kind evKind
	pos  minic.Pos
	// plainStore marks a statement-level `x = rhs` whose value is not
	// consumed: the only dead-store candidates.
	plainStore bool
	// constRHS marks a plainStore whose RHS is a literal constant
	// (defensive initialization; dead ones downgrade to info).
	constRHS bool
	// consumed marks an assignment nested inside a larger expression
	// (its value is used, so the store is live by construction).
	consumed bool
}

// nodeEvents returns the ordered access events of one CFG node (a Stmt or
// a condition/post Expr).
func nodeEvents(n minic.Node) []event {
	var out []event
	switch x := n.(type) {
	case *minic.DeclStmt:
		for _, d := range x.Decls {
			if d.Init != nil {
				exprEvents(d.Init, false, &out)
				out = append(out, event{
					sym: d.Sym, kind: evWrite, pos: x.Pos,
					plainStore: true, constRHS: isConstExpr(d.Init),
				})
			} else if d.Type != nil && d.Type.Kind != minic.TypeArray {
				out = append(out, event{sym: d.Sym, kind: evDeclUninit, pos: x.Pos})
			}
		}
	case *minic.ExprStmt:
		stmtExprEvents(x.X, &out)
	case *minic.Return:
		if x.X != nil {
			exprEvents(x.X, false, &out)
		}
	case minic.Expr:
		exprEvents(x, false, &out)
	}
	return out
}

// stmtExprEvents handles a statement-level expression: a top-level plain
// assignment is a dead-store candidate because its value is discarded.
func stmtExprEvents(e minic.Expr, out *[]event) {
	if as, ok := e.(*minic.Assign); ok {
		exprEvents(as.R, false, out)
		assignTargetEvents(as, false, out)
		return
	}
	exprEvents(e, false, out)
}

// exprEvents appends e's access events in evaluation order. consumed marks
// whether the expression's value feeds an enclosing computation (true for
// everything reached from here; the distinction matters only for Assign).
func exprEvents(e minic.Expr, consumed bool, out *[]event) {
	_ = consumed
	switch x := e.(type) {
	case nil:
	case *minic.Ident:
		if x.Sym != nil && x.Sym.Kind != minic.SymBuiltin {
			*out = append(*out, event{sym: x.Sym, kind: evRead, pos: x.Pos})
		}
	case *minic.IntLit, *minic.FloatLit, *minic.CharLit, *minic.StrLit, *minic.SizeofType:
	case *minic.Unary:
		switch x.Op {
		case "&":
			addrEvents(x.X, out)
		case "++", "--":
			incDecEvents(x.X, out)
		default:
			exprEvents(x.X, true, out)
		}
	case *minic.Postfix:
		incDecEvents(x.X, out)
	case *minic.Binary:
		exprEvents(x.L, true, out)
		exprEvents(x.R, true, out)
	case *minic.Assign:
		exprEvents(x.R, true, out)
		assignTargetEvents(x, true, out)
	case *minic.Cond:
		exprEvents(x.C, true, out)
		exprEvents(x.T, true, out)
		exprEvents(x.F, true, out)
	case *minic.Call:
		callEvents(x, out)
	case *minic.Index:
		exprEvents(x.X, true, out)
		exprEvents(x.Idx, true, out)
	case *minic.Cast:
		exprEvents(x.X, true, out)
	}
}

// assignTargetEvents appends the LHS events of an assignment. consumed
// marks nested assignments whose value feeds an enclosing expression.
func assignTargetEvents(as *minic.Assign, consumed bool, out *[]event) {
	switch l := as.L.(type) {
	case *minic.Ident:
		if l.Sym == nil || l.Sym.Kind == minic.SymBuiltin {
			return
		}
		if as.Op != "=" {
			// Compound assignment reads the old value first.
			*out = append(*out, event{sym: l.Sym, kind: evRead, pos: l.Pos})
		}
		*out = append(*out, event{
			sym: l.Sym, kind: evWrite, pos: as.Pos,
			plainStore: as.Op == "=" && !consumed,
			constRHS:   as.Op == "=" && isConstExpr(as.R),
			consumed:   consumed,
		})
	case *minic.Index:
		// Storing through a subscript reads the base binding and the index
		// and writes an element.
		exprEvents(l.Idx, true, out)
		if base := baseIdent(l.X); base != nil && base.Sym != nil {
			if as.Op != "=" {
				*out = append(*out, event{sym: base.Sym, kind: evRead, pos: l.Pos})
			}
			*out = append(*out, event{sym: base.Sym, kind: evElemWrite, pos: as.Pos})
		} else {
			exprEvents(l.X, true, out)
		}
	case *minic.Unary:
		// *p = v: reads the pointer, writes the pointee.
		if l.Op == "*" {
			exprEvents(l.X, true, out)
			if base := baseIdent(l.X); base != nil && base.Sym != nil {
				*out = append(*out, event{sym: base.Sym, kind: evElemWrite, pos: as.Pos})
			}
		} else {
			exprEvents(l, true, out)
		}
	default:
		exprEvents(as.L, true, out)
	}
}

func incDecEvents(x minic.Expr, out *[]event) {
	if id, ok := x.(*minic.Ident); ok && id.Sym != nil && id.Sym.Kind != minic.SymBuiltin {
		*out = append(*out, event{sym: id.Sym, kind: evRead, pos: id.Pos})
		*out = append(*out, event{sym: id.Sym, kind: evWrite, pos: id.Pos})
		return
	}
	// a[i]++ and *p++ read the base and write an element.
	exprEvents(x, true, out)
	if base := baseIdent(x); base != nil && base.Sym != nil {
		*out = append(*out, event{sym: base.Sym, kind: evElemWrite, pos: base.Pos})
	}
}

func addrEvents(x minic.Expr, out *[]event) {
	switch t := x.(type) {
	case *minic.Ident:
		if t.Sym != nil && t.Sym.Kind != minic.SymBuiltin {
			*out = append(*out, event{sym: t.Sym, kind: evAddr, pos: t.Pos})
		}
	case *minic.Index:
		exprEvents(t.Idx, true, out)
		if base := baseIdent(t.X); base != nil && base.Sym != nil {
			*out = append(*out, event{sym: base.Sym, kind: evAddr, pos: base.Pos})
		} else {
			exprEvents(t.X, true, out)
		}
	default:
		exprEvents(x, true, out)
	}
}

func baseIdent(e minic.Expr) *minic.Ident {
	switch x := e.(type) {
	case *minic.Ident:
		return x
	case *minic.Index:
		return baseIdent(x.X)
	case *minic.Cast:
		return baseIdent(x.X)
	}
	return nil
}

// argDir describes how a callee treats one argument.
type argDir int

const (
	dirRead argDir = iota
	dirOut         // callee may write through the pointer/array
)

// builtinArgDirs records argument directions for builtins whose pointer
// arguments are read-only; everything listed as dirOut (and every call to
// an unknown or user-defined function) conservatively counts as a write
// through pointer/array arguments.
var builtinArgDirs = map[string][]argDir{
	"strcmp":    {dirRead, dirRead},
	"strncmp":   {dirRead, dirRead, dirRead},
	"strcpy":    {dirOut, dirRead},
	"strncpy":   {dirOut, dirRead, dirRead},
	"strlen":    {dirRead},
	"strstr":    {dirRead, dirRead},
	"strcat":    {dirOut, dirRead},
	"memset":    {dirOut, dirRead, dirRead},
	"memcpy":    {dirOut, dirRead, dirRead},
	"atoi":      {dirRead},
	"atof":      {dirRead},
	"free":      {dirRead},
	"printf":    {dirRead}, // variadic: extra args default to dirRead
	"strcmpGPU": {dirRead, dirRead},
	"strcpyGPU": {dirOut, dirRead},
	"strlenGPU": {dirRead},
	"emitKV":    {dirRead, dirRead},
	"storeKV":   {dirRead, dirRead},
	"getRecord": {dirOut},
	"getKV":     {dirOut, dirOut},
}

// readOnlyVariadic marks builtins whose variadic tail is read-only.
var readOnlyVariadic = map[string]bool{"printf": true}

func callArgDir(call *minic.Call, i int) argDir {
	if dirs, ok := builtinArgDirs[call.Name]; ok {
		if i < len(dirs) {
			return dirs[i]
		}
		if readOnlyVariadic[call.Name] {
			return dirRead
		}
	}
	if call.Name == "scanf" {
		// scanf writes only through explicit &args, which produce evAddr
		// on their own; the format string and bare args read.
		return dirRead
	}
	return dirOut
}

func callEvents(call *minic.Call, out *[]event) {
	for i, arg := range call.Args {
		dir := callArgDir(call, i)
		id, isIdent := arg.(*minic.Ident)
		pointerLike := isIdent && id.Sym != nil && id.Sym.Type != nil && id.Sym.Type.IsPointerLike()
		if dir == dirOut && pointerLike {
			if id.Sym.Kind != minic.SymBuiltin {
				*out = append(*out, event{sym: id.Sym, kind: evAddr, pos: id.Pos})
			}
			continue
		}
		exprEvents(arg, true, out)
	}
}

// isConstExpr reports whether e is a compile-time literal constant.
func isConstExpr(e minic.Expr) bool {
	switch x := e.(type) {
	case *minic.IntLit, *minic.FloatLit, *minic.CharLit, *minic.StrLit, *minic.SizeofType:
		return true
	case *minic.Unary:
		return (x.Op == "-" || x.Op == "~" || x.Op == "!") && isConstExpr(x.X)
	case *minic.Cast:
		return isConstExpr(x.X)
	}
	return false
}

// constIntValue folds e to an integer constant when statically possible.
func constIntValue(e minic.Expr) (int64, bool) {
	switch x := e.(type) {
	case *minic.IntLit:
		return x.Value, true
	case *minic.CharLit:
		return int64(x.Value), true
	case *minic.Unary:
		v, ok := constIntValue(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		}
		return 0, false
	case *minic.Binary:
		l, ok1 := constIntValue(x.L)
		r, ok2 := constIntValue(x.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r != 0 {
				return l / r, true
			}
		case "%":
			if r != 0 {
				return l % r, true
			}
		}
		return 0, false
	case *minic.Cast:
		return constIntValue(x.X)
	}
	return 0, false
}
