package analysis

// This file implements the optimization-fact pass (HD601..HD605). It reads
// the same SSA/SCCP facts the optimizer acts on (package ir), so the
// diagnostics and the rewrites can never disagree about what is constant,
// unreachable, or redundant. The pass never mutates the program: ir's
// AnalyzeFunc lowers a private CFG+SSA view.
//
//	HD601  a non-literal branch condition is provably constant
//	HD602  a statement is provably unreachable
//	HD603  an expression recomputes a value available on every path
//	HD604  a loop emits the same key/value pair every iteration
//	HD605  a constant subscript is provably outside a fixed-length array
//
// HD601..HD604 are info-level optimizer notes; HD605 is an error: it is the
// source-level generalization of HD403 (which only sees constant/texture
// arrays inside translated kernels) and traps at runtime on every backend.

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/minic"
)

// hd403Owned collects subscripts the kernel-side HD403 pass owns: indexes
// into sharedRO/texture-clause arrays inside a directive region. HD605 skips
// them so one defect maps to one code.
func (a *analyzer) hd403Owned(regions []*regionInfo) map[*minic.Index]bool {
	owned := map[*minic.Index]bool{}
	for _, r := range regions {
		ro := map[string]bool{}
		for _, n := range r.sharedRO {
			ro[n] = true
		}
		for _, n := range r.texture {
			ro[n] = true
		}
		if len(ro) == 0 {
			continue
		}
		var walkExpr func(e minic.Expr)
		walkExpr = func(e minic.Expr) {
			switch x := e.(type) {
			case nil:
			case *minic.Unary:
				walkExpr(x.X)
			case *minic.Postfix:
				walkExpr(x.X)
			case *minic.Binary:
				walkExpr(x.L)
				walkExpr(x.R)
			case *minic.Assign:
				walkExpr(x.L)
				walkExpr(x.R)
			case *minic.Cond:
				walkExpr(x.C)
				walkExpr(x.T)
				walkExpr(x.F)
			case *minic.Call:
				for _, arg := range x.Args {
					walkExpr(arg)
				}
			case *minic.Index:
				if base, ok := x.X.(*minic.Ident); ok && ro[base.Name] {
					owned[x] = true
				}
				walkExpr(x.X)
				walkExpr(x.Idx)
			case *minic.Cast:
				walkExpr(x.X)
			}
		}
		walkStmts(r.pragma.Body, func(s minic.Stmt) {
			switch x := s.(type) {
			case *minic.ExprStmt:
				walkExpr(x.X)
			case *minic.DeclStmt:
				for _, d := range x.Decls {
					walkExpr(d.Init)
				}
			case *minic.If:
				walkExpr(x.Cond)
			case *minic.While:
				walkExpr(x.Cond)
			case *minic.For:
				walkExpr(x.Cond)
				walkExpr(x.Post)
			case *minic.Return:
				walkExpr(x.X)
			}
		})
	}
	return owned
}

// optPass runs the HD6xx optimization-fact lints over one function.
func (a *analyzer) optPass(fn *minic.FuncDecl) {
	fx := ir.AnalyzeFunc(fn)
	for _, cc := range fx.ConstConds {
		truth := "false: the guarded code never runs"
		if cc.Value.Truthy() {
			truth = "true: the branch always takes the same path"
		}
		a.report("HD601", minic.NodePos(cc.Cond),
			fmt.Sprintf("condition is provably %s", truth),
			"simplify the condition or delete the branch")
	}
	for _, s := range fx.Unreachable {
		a.report("HD602", minic.NodePos(s),
			"statement is provably unreachable",
			"delete the dead code or fix the guarding condition")
	}
	for _, rp := range fx.Redundant {
		a.report("HD603", minic.NodePos(rp.Second),
			fmt.Sprintf("expression recomputes the value already computed at line %d",
				minic.NodePos(rp.First).Line),
			"store the first result in a variable and reuse it")
	}
	for _, call := range ir.LoopInvariantEmits(fn) {
		a.report("HD604", minic.NodePos(call),
			fmt.Sprintf("%s emits values that never change across loop iterations", call.Name),
			"hoist the emission out of the loop or make an argument loop-dependent")
	}
	for _, oob := range fx.OOB {
		if a.oobOwned[oob.Expr] {
			continue // HD403 reports constant/texture kernel arrays
		}
		a.report("HD605", minic.NodePos(oob.Expr),
			fmt.Sprintf("index %d is out of range for %q (length %d)",
				oob.Index, oob.Name, oob.Len),
			"fix the index or the array length")
	}
}
