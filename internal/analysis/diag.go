// Package analysis implements hdlint, the HeteroDoop static-analysis suite:
// a multi-pass analyzer over MiniC programs and their translated GPU kernel
// regions. The paper's translator trusts `#pragma mapreduce` directives
// (§3.2 notes that incorrect directives yield undefined behavior); this
// package makes directive verification, dataflow checking, parallel
// legality, GPU safety, and IO purity first-class compile stages.
//
// The passes and their diagnostic code ranges:
//
//	HD0xx  frontend (parse/sema failures surfaced as diagnostics)
//	HD1xx  directive verifier (clause legality, lengths, emit consistency)
//	HD2xx  dataflow (use-before-init, dead stores, unused variables)
//	HD3xx  parallel legality (races Algorithm 1 cannot privatize)
//	HD4xx  GPU safety on the translated kernel (barriers, shared memory)
//	HD5xx  IO purity (only replaceable calls inside directive regions)
//	HD6xx  optimization facts (SSA/SCCP-derived constants, dead code,
//	       redundancy, and proven out-of-range subscripts)
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/minic"
)

// Severity ranks a diagnostic.
type Severity int

// Severities, in increasing order.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return "?"
	}
}

// Diagnostic is one structured finding: a stable code, a severity, a source
// position, a human message, and an optional suggested fix.
type Diagnostic struct {
	Code     string
	Severity Severity
	File     string
	Pos      minic.Pos
	Message  string
	Fix      string // suggested fix; "" when none applies
}

// String renders `file:line:col: severity: [CODE] message (fix: ...)`.
// When no file name is known the historical `minic:`-style prefix is used
// so in-memory lint runs stay readable.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: %s: [%s] %s", minic.ErrPrefix(d.File, d.Pos), d.Severity, d.Code, d.Message)
	if d.Fix != "" {
		s += fmt.Sprintf(" (fix: %s)", d.Fix)
	}
	return s
}

// Sort orders diagnostics by position, then code, for deterministic output.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Code < b.Code
	})
}

// MaxSeverity returns the highest severity present, or SevInfo-1 == -1 is
// never returned: an empty slice reports SevInfo.
func MaxSeverity(diags []Diagnostic) Severity {
	max := SevInfo
	for _, d := range diags {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Clean reports whether diags contains nothing at warning severity or
// above. Info-level findings (e.g. redundant defensive initializations) do
// not count against cleanliness.
func Clean(diags []Diagnostic) bool {
	return MaxSeverity(diags) < SevWarning
}

// CodeInfo documents one diagnostic code for `hdlint -codes` and DESIGN.md.
type CodeInfo struct {
	Code     string
	Severity Severity
	Summary  string
}

// Catalog lists every diagnostic code the suite can emit, in code order.
var Catalog = []CodeInfo{
	{"HD001", SevError, "source fails to parse or type-check"},
	{"HD002", SevError, "directive region fails to translate to a GPU kernel"},
	{"HD101", SevError, "unknown clause in mapreduce pragma"},
	{"HD102", SevError, "duplicate clause or duplicate variable in a clause list"},
	{"HD103", SevError, "pragma has neither or both of mapper/combiner"},
	{"HD104", SevError, "missing required clause (key/value, keyin/valuein)"},
	{"HD105", SevError, "clause is not valid for this region kind"},
	{"HD106", SevError, "clause names a variable not visible at the region"},
	{"HD107", SevError, "key/value length clause inconsistent with the variable's type"},
	{"HD108", SevError, "emit/read calls use different variables than the key/value clauses"},
	{"HD109", SevWarning, "combiner value variable is never accumulated in the region"},
	{"HD110", SevWarning, "region emits no KV pairs (no printf call)"},
	{"HD201", SevWarning, "variable may be used before initialization"},
	{"HD202", SevWarning, "dead store: assigned value is never used"},
	{"HD203", SevWarning, "variable is declared but never used"},
	{"HD204", SevInfo, "redundant initialization: constant store is immediately overwritten"},
	{"HD301", SevWarning, "loop-carried dependence in mapper region: privatization changes semantics"},
	{"HD302", SevError, "write to a variable the directive declares read-only (sharedRO/texture)"},
	{"HD401", SevError, "warp-synchronous call under thread-divergent control flow"},
	{"HD402", SevError, "write-write conflict: region writes a variable placed in shared GPU memory"},
	{"HD403", SevError, "statically out-of-bounds index into a constant/texture array"},
	{"HD501", SevError, "call inside a directive region is not GPU-replaceable"},
	{"HD502", SevError, "function called from a directive region transitively performs forbidden IO"},
	{"HD601", SevInfo, "branch condition is provably constant (SCCP)"},
	{"HD602", SevInfo, "statement is provably unreachable"},
	{"HD603", SevInfo, "expression recomputes a value already computed on every path here"},
	{"HD604", SevInfo, "loop emits the same key/value pair every iteration"},
	{"HD605", SevError, "subscript is provably out of range for a fixed-length array"},
}

// catalogSeverity returns the documented severity for a code (used so
// passes and docs can't drift apart).
func catalogSeverity(code string) Severity {
	for _, c := range Catalog {
		if c.Code == code {
			return c.Severity
		}
	}
	return SevError
}
