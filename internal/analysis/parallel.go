package analysis

import (
	"fmt"

	"repro/internal/minic"
)

// This file implements the parallel-legality pass (HD301, HD302).
//
// The translator's Algorithm 1 privatizes region variables by first access:
// written-first variables become per-thread Private copies, read-first ones
// FirstPrivate. A variable that is read first AND written in a mapper
// region carries its value between loop iterations — privatization silently
// changes program semantics because GPU threads process records in
// parallel. Combiners are exempt: carrying state across the sorted input
// stream is exactly what a combiner does, and the directive's firstprivate
// clause asserts it.

func (a *analyzer) parallelPass(r *regionInfo) {
	events := regionEvents(r.pragma.Body)
	a.checkLoopCarried(r, events)
	a.checkReadOnlyWrites(r, events)
}

// regionEvents flattens the region's access events in (first-iteration)
// execution order: loop conditions precede bodies, for-posts follow them.
func regionEvents(s minic.Stmt) []event {
	var out []event
	var walk func(minic.Stmt)
	walk = func(s minic.Stmt) {
		switch st := s.(type) {
		case nil:
		case *minic.Block:
			for _, inner := range st.Stmts {
				walk(inner)
			}
		case *minic.PragmaStmt:
			walk(st.Body)
		case *minic.If:
			out = append(out, nodeEvents(st.Cond)...)
			walk(st.Then)
			walk(st.Else)
		case *minic.While:
			out = append(out, nodeEvents(st.Cond)...)
			walk(st.Body)
		case *minic.For:
			walk(st.Init)
			if st.Cond != nil {
				out = append(out, nodeEvents(st.Cond)...)
			}
			walk(st.Body)
			if st.Post != nil {
				out = append(out, nodeEvents(st.Post)...)
			}
		default:
			out = append(out, nodeEvents(s)...)
		}
	}
	walk(s)
	return out
}

// checkLoopCarried reports HD301 for mapper-region variables whose first
// access is a read and which the region also writes.
func (a *analyzer) checkLoopCarried(r *regionInfo, events []event) {
	if r.combiner {
		return
	}
	regionLocal := map[*minic.Symbol]bool{}
	walkStmts(r.pragma.Body, func(s minic.Stmt) {
		if ds, ok := s.(*minic.DeclStmt); ok {
			for _, d := range ds.Decls {
				regionLocal[d.Sym] = true
			}
		}
	})
	type symState struct {
		firstRead    bool
		firstReadPos minic.Pos
		written      bool
		seen         bool
	}
	states := map[*minic.Symbol]*symState{}
	var order []*minic.Symbol
	for _, ev := range events {
		sym := ev.sym
		if sym == nil || sym.Kind != minic.SymVar || sym.Global || regionLocal[sym] {
			continue
		}
		if r.inFirstPrivate(sym.Name) || r.inReadOnlyClause(sym.Name) {
			continue
		}
		st := states[sym]
		if st == nil {
			st = &symState{}
			states[sym] = st
			order = append(order, sym)
		}
		switch ev.kind {
		case evRead:
			if !st.seen {
				st.firstRead = true
				st.firstReadPos = ev.pos
			}
		case evWrite, evElemWrite, evAddr:
			// evAddr may write through the callee; treating it as a write
			// for ordering matches the translator's write-first rule.
			st.written = true
		}
		st.seen = true
	}
	for _, sym := range order {
		st := states[sym]
		if st.firstRead && st.written {
			a.report("HD301", st.firstReadPos,
				fmt.Sprintf("mapper region reads %q before writing it: the value is carried between loop iterations, which per-thread privatization discards", sym.Name),
				"initialize the variable inside the region, or list it in firstprivate() if the carried value is intended")
		}
	}
}

// checkReadOnlyWrites reports HD302 for writes to variables the directive
// itself declares read-only via sharedRO()/texture().
func (a *analyzer) checkReadOnlyWrites(r *regionInfo, events []event) {
	reported := map[*minic.Symbol]bool{}
	for _, ev := range events {
		if ev.sym == nil || reported[ev.sym] || !r.inReadOnlyClause(ev.sym.Name) {
			continue
		}
		switch ev.kind {
		case evWrite, evElemWrite, evAddr:
			clause := "sharedRO"
			if contains(r.texture, ev.sym.Name) {
				clause = "texture"
			}
			verb := "writes"
			if ev.kind == evAddr {
				verb = "may write through"
			}
			a.report("HD302", ev.pos,
				fmt.Sprintf("region %s %q, which the directive declares read-only via %s()", verb, ev.sym.Name, clause),
				"drop the clause or remove the write; read-only placement maps the variable to constant/texture memory")
			reported[ev.sym] = true
		}
	}
}
