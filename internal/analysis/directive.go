package analysis

import (
	"fmt"

	"repro/internal/minic"
)

// This file implements the directive verifier (HD101..HD110). The paper's
// translator trusts directives; these checks catch the mistakes §3.2 leaves
// as undefined behavior. Checks run in stages and stop at the first stage
// that reports: later checks would only cascade from the same root cause.

// clauseSpec describes one legal clause.
type clauseSpec struct {
	kind clauseKind
	// combinerOnly restricts the clause to combiner regions.
	combinerOnly bool
}

type clauseKind int

const (
	clauseMarker clauseKind = iota // mapper/combiner: no arguments
	clauseIdent                    // exactly one identifier argument
	clauseInt                      // exactly one integer argument
	clauseList                     // one or more identifier arguments
)

var clauseSpecs = map[string]clauseSpec{
	"mapper":       {kind: clauseMarker},
	"combiner":     {kind: clauseMarker},
	"key":          {kind: clauseIdent},
	"value":        {kind: clauseIdent},
	"keyin":        {kind: clauseIdent, combinerOnly: true},
	"valuein":      {kind: clauseIdent, combinerOnly: true},
	"keylength":    {kind: clauseInt},
	"vallength":    {kind: clauseInt},
	"kvpairs":      {kind: clauseInt},
	"blocks":       {kind: clauseInt},
	"threads":      {kind: clauseInt},
	"firstprivate": {kind: clauseList},
	"sharedRO":     {kind: clauseList},
	"sharedro":     {kind: clauseList},
	"texture":      {kind: clauseList},
}

func (a *analyzer) directivePass(r *regionInfo) {
	stages := []func(r *regionInfo) bool{
		a.checkClauseSyntax,
		a.checkClauseDuplicates,
		a.checkRegionKind,
		a.checkRequiredClauses,
		a.checkClauseResolution,
		a.checkLengthClauses,
		a.checkRegionUsage,
	}
	for _, stage := range stages {
		if stage(r) {
			return
		}
	}
}

// checkClauseSyntax reports HD101 for unknown or malformed clauses.
func (a *analyzer) checkClauseSyntax(r *regionInfo) bool {
	pos := r.pragma.Pos
	n := len(a.diags)
	for _, cl := range r.clauses {
		spec, known := clauseSpecs[cl.name]
		switch {
		case cl.bad:
			a.report("HD101", pos,
				fmt.Sprintf("malformed clause %q in mapreduce pragma", cl.name),
				"balance the clause's parentheses")
		case !known:
			a.report("HD101", pos,
				fmt.Sprintf("unknown clause %q in mapreduce pragma", cl.name),
				"valid clauses: mapper, combiner, key, value, keyin, valuein, keylength, vallength, kvpairs, blocks, threads, firstprivate, sharedRO, texture")
		case spec.kind == clauseMarker && len(cl.args) > 0:
			a.report("HD101", pos,
				fmt.Sprintf("clause %q takes no arguments", cl.name), "")
		case (spec.kind == clauseIdent || spec.kind == clauseInt) && len(cl.args) != 1:
			a.report("HD101", pos,
				fmt.Sprintf("clause %q requires exactly one argument, got %d", cl.name, len(cl.args)), "")
		case spec.kind == clauseInt && len(cl.args) == 1 && cl.oneInt() <= 0:
			a.report("HD101", pos,
				fmt.Sprintf("clause %q requires a positive integer argument, got %q", cl.name, cl.one()), "")
		case spec.kind == clauseList && len(cl.args) == 0:
			a.report("HD101", pos,
				fmt.Sprintf("clause %q requires at least one variable", cl.name), "")
		}
	}
	return len(a.diags) > n
}

// checkClauseDuplicates reports HD102 for repeated singleton clauses and for
// a variable listed twice across firstprivate/sharedRO/texture.
func (a *analyzer) checkClauseDuplicates(r *regionInfo) bool {
	pos := r.pragma.Pos
	n := len(a.diags)
	seen := map[string]bool{}
	for _, cl := range r.clauses {
		name := cl.name
		if name == "sharedro" {
			name = "sharedRO"
		}
		if spec := clauseSpecs[cl.name]; spec.kind == clauseList {
			continue
		}
		if seen[name] {
			a.report("HD102", pos,
				fmt.Sprintf("duplicate clause %q in mapreduce pragma", name),
				"keep a single occurrence")
		}
		seen[name] = true
	}
	classified := map[string]string{}
	for _, cl := range r.clauses {
		name := cl.name
		if name == "sharedro" {
			name = "sharedRO"
		}
		if spec := clauseSpecs[cl.name]; spec.kind != clauseList {
			continue
		}
		for _, v := range cl.args {
			if prev, ok := classified[v]; ok {
				a.report("HD102", pos,
					fmt.Sprintf("variable %q classified twice: %s and %s", v, prev, name),
					"list each variable in at most one classification clause")
				continue
			}
			classified[v] = name
		}
	}
	return len(a.diags) > n
}

// checkRegionKind reports HD103 unless exactly one of mapper/combiner is
// present.
func (a *analyzer) checkRegionKind(r *regionInfo) bool {
	if r.kindClauses == 1 {
		return false
	}
	msg := "mapreduce pragma has neither mapper nor combiner clause"
	if r.kindClauses > 1 {
		msg = "mapreduce pragma has both mapper and combiner clauses"
	}
	a.report("HD103", r.pragma.Pos, msg, "mark the region as exactly one of mapper or combiner")
	return true
}

// checkRequiredClauses reports HD104 for missing key/value (and, for
// combiners, keyin/valuein) and HD105 for combiner-only clauses on mappers.
func (a *analyzer) checkRequiredClauses(r *regionInfo) bool {
	pos := r.pragma.Pos
	n := len(a.diags)
	if !r.combiner {
		for _, cl := range r.clauses {
			if spec, ok := clauseSpecs[cl.name]; ok && spec.combinerOnly {
				a.report("HD105", pos,
					fmt.Sprintf("clause %q is only valid on combiner regions", cl.name),
					"remove the clause or mark the region combiner")
			}
		}
		if len(a.diags) > n {
			return true
		}
	}
	missing := func(clause, name string) {
		if name == "" {
			a.report("HD104", pos,
				fmt.Sprintf("%s region is missing the %s clause", r.kindName(), clause),
				fmt.Sprintf("add %s(<variable>)", clause))
		}
	}
	missing("key", r.key)
	missing("value", r.value)
	if r.combiner {
		missing("keyin", r.keyIn)
		missing("valuein", r.valueIn)
	}
	return len(a.diags) > n
}

// checkClauseResolution reports HD106 when a clause names a variable that
// is not visible at the region.
func (a *analyzer) checkClauseResolution(r *regionInfo) bool {
	pos := r.pragma.Pos
	n := len(a.diags)
	check := func(clause, name string) {
		if name == "" {
			return
		}
		if _, ok := r.syms[name]; !ok {
			a.report("HD106", pos,
				fmt.Sprintf("clause %s(%s) names a variable that is not visible at the region", clause, name),
				"declare the variable before the pragma or fix the name")
		}
	}
	check("key", r.key)
	check("value", r.value)
	check("keyin", r.keyIn)
	check("valuein", r.valueIn)
	for _, v := range r.firstPrivate {
		check("firstprivate", v)
	}
	for _, v := range r.sharedRO {
		check("sharedRO", v)
	}
	for _, v := range r.texture {
		check("texture", v)
	}
	return len(a.diags) > n
}

// checkLengthClauses reports HD107 when keylength/vallength contradict the
// declared type of the key/value variable.
func (a *analyzer) checkLengthClauses(r *regionInfo) bool {
	n := len(a.diags)
	a.checkLength(r, "keylength", r.keyLen, "key", r.key)
	a.checkLength(r, "vallength", r.valLen, "value", r.value)
	return len(a.diags) > n
}

func (a *analyzer) checkLength(r *regionInfo, lenClause string, lenVal int, varClause, varName string) {
	if lenVal == 0 || varName == "" {
		return
	}
	sym := r.syms[varName]
	if sym == nil || sym.Type == nil {
		return
	}
	t := sym.Type
	switch {
	case t.Kind == minic.TypeArray && t.Len > 0 && lenVal > t.Len:
		a.report("HD107", r.pragma.Pos,
			fmt.Sprintf("%s(%d) exceeds the declared capacity of %s(%s), which is %s",
				lenClause, lenVal, varClause, varName, t),
			fmt.Sprintf("lower %s to at most %d or widen the array", lenClause, t.Len))
	case t.IsNumeric() && lenVal != t.Size():
		a.report("HD107", r.pragma.Pos,
			fmt.Sprintf("%s(%d) disagrees with %s(%s) of type %s (%d bytes)",
				lenClause, lenVal, varClause, varName, t, t.Size()),
			fmt.Sprintf("drop %s: fixed-size types carry their own length", lenClause))
	}
}

// checkRegionUsage reports HD108 (emit/read variables disagree with the
// clauses), HD109 (combiner value never accumulated), and HD110 (no emit
// at all).
func (a *analyzer) checkRegionUsage(r *regionInfo) bool {
	n := len(a.diags)
	printfs := 0
	walkCalls(r.pragma.Body, func(c *minic.Call) {
		switch c.Name {
		case "printf":
			printfs++
			a.checkEmitArgs(r, c)
		case "scanf":
			if r.combiner {
				a.checkReadArgs(r, c)
			}
		}
	})
	if printfs == 0 {
		a.report("HD110", r.pragma.Pos,
			fmt.Sprintf("%s region never emits a key/value pair (no printf call)", r.kindName()),
			"emit with printf(\"...\", key, value) inside the region")
	}
	if r.combiner && r.value != "" {
		if sym := r.syms[r.value]; sym != nil && sym.Type != nil && !sym.Type.IsPointerLike() {
			if !accumulates(r.pragma.Body, sym) {
				a.report("HD109", r.pragma.Pos,
					fmt.Sprintf("combiner value variable %q is never accumulated in the region", r.value),
					fmt.Sprintf("combine the incoming %s into %s (e.g. %s += %s)", r.valueIn, r.value, r.value, r.valueIn))
			}
		}
	}
	return len(a.diags) > n
}

// checkEmitArgs verifies a two-argument printf emit against key/value.
// printf calls with a different arity (progress messages, multi-part reduce
// output) are left alone: only the canonical `printf(fmt, k, v)` emit form
// is translated to emitKV.
func (a *analyzer) checkEmitArgs(r *regionInfo, c *minic.Call) {
	if len(c.Args) != 3 {
		return
	}
	a.checkKVArg(r, c, "key", r.key, c.Args[1])
	a.checkKVArg(r, c, "value", r.value, c.Args[2])
}

// checkReadArgs verifies a two-argument scanf read against keyin/valuein.
func (a *analyzer) checkReadArgs(r *regionInfo, c *minic.Call) {
	if len(c.Args) != 3 {
		return
	}
	a.checkKVArg(r, c, "keyin", r.keyIn, c.Args[1])
	a.checkKVArg(r, c, "valuein", r.valueIn, c.Args[2])
}

func (a *analyzer) checkKVArg(r *regionInfo, c *minic.Call, clause, want string, arg minic.Expr) {
	if want == "" {
		return
	}
	// Strip the & that scanf arguments carry.
	if u, ok := arg.(*minic.Unary); ok && u.Op == "&" {
		arg = u.X
	}
	id, ok := arg.(*minic.Ident)
	if !ok {
		// Literals and computed expressions are legal emit arguments.
		return
	}
	if id.Name != want {
		verb := "emits"
		call := "printf"
		if c.Name == "scanf" {
			verb = "reads"
			call = "scanf"
		}
		a.report("HD108", c.Pos,
			fmt.Sprintf("%s %s %q where the directive declares %s(%s)", call, verb, id.Name, clause, want),
			fmt.Sprintf("use %s in the %s position or update the %s clause", want, clause, clause))
	}
}

// accumulates reports whether the region updates sym from its prior value:
// a compound assignment, ++/--, or `sym = ...sym...`.
func accumulates(region minic.Stmt, sym *minic.Symbol) bool {
	found := false
	walkExprs(region, func(e minic.Expr) {
		if found {
			return
		}
		switch x := e.(type) {
		case *minic.Assign:
			id, ok := x.L.(*minic.Ident)
			if !ok || id.Sym != sym {
				return
			}
			if x.Op != "=" || readsSym(x.R, sym) {
				found = true
			}
		case *minic.Unary:
			if x.Op == "++" || x.Op == "--" {
				if id, ok := x.X.(*minic.Ident); ok && id.Sym == sym {
					found = true
				}
			}
		case *minic.Postfix:
			if id, ok := x.X.(*minic.Ident); ok && id.Sym == sym {
				found = true
			}
		}
	})
	return found
}

func readsSym(e minic.Expr, sym *minic.Symbol) bool {
	found := false
	var walk func(minic.Expr)
	walk = func(e minic.Expr) {
		if e == nil || found {
			return
		}
		switch x := e.(type) {
		case *minic.Ident:
			if x.Sym == sym {
				found = true
			}
		case *minic.Unary:
			walk(x.X)
		case *minic.Postfix:
			walk(x.X)
		case *minic.Binary:
			walk(x.L)
			walk(x.R)
		case *minic.Assign:
			walk(x.L)
			walk(x.R)
		case *minic.Cond:
			walk(x.C)
			walk(x.T)
			walk(x.F)
		case *minic.Call:
			for _, a := range x.Args {
				walk(a)
			}
		case *minic.Index:
			walk(x.X)
			walk(x.Idx)
		case *minic.Cast:
			walk(x.X)
		}
	}
	walk(e)
	return found
}

// walkExprs visits every expression nested anywhere under s, in source
// order.
func walkExprs(s minic.Stmt, visit func(minic.Expr)) {
	var walk func(e minic.Expr)
	walk = func(e minic.Expr) {
		if e == nil {
			return
		}
		visit(e)
		switch x := e.(type) {
		case *minic.Unary:
			walk(x.X)
		case *minic.Postfix:
			walk(x.X)
		case *minic.Binary:
			walk(x.L)
			walk(x.R)
		case *minic.Assign:
			walk(x.L)
			walk(x.R)
		case *minic.Cond:
			walk(x.C)
			walk(x.T)
			walk(x.F)
		case *minic.Call:
			for _, arg := range x.Args {
				walk(arg)
			}
		case *minic.Index:
			walk(x.X)
			walk(x.Idx)
		case *minic.Cast:
			walk(x.X)
		}
	}
	walkStmts(s, func(st minic.Stmt) {
		switch x := st.(type) {
		case *minic.ExprStmt:
			walk(x.X)
		case *minic.DeclStmt:
			for _, d := range x.Decls {
				walk(d.Init)
			}
		case *minic.If:
			walk(x.Cond)
		case *minic.While:
			walk(x.Cond)
		case *minic.For:
			walk(x.Cond)
			walk(x.Post)
		case *minic.Return:
			walk(x.X)
		}
	})
}
