package analysis

import (
	"fmt"

	"repro/internal/minic"
)

// This file implements the GPU-safety pass (HD401..HD403). Unlike the
// source-level passes it inspects the *translated* kernel: the region after
// stdio rewriting, together with the memory-space placement the translator
// computed with Algorithm 1. The compiler package adapts its KernelSpec
// into a Kernel; hdlint gets these checks through compiler.Lint.

// MemSpace is the GPU memory space a kernel variable was placed in
// (mirrors the translator's variable classification).
type MemSpace int

// Memory spaces.
const (
	// SpaceLocal is a variable declared inside the region (per-thread).
	SpaceLocal MemSpace = iota
	// SpacePrivate is a written-first region variable (per-thread copy).
	SpacePrivate
	// SpaceFirstPrivate is a read-first variable copied in per thread.
	SpaceFirstPrivate
	// SpaceConstScalar is a read-only scalar in constant memory.
	SpaceConstScalar
	// SpaceGlobalRO is a read-only array in global memory.
	SpaceGlobalRO
	// SpaceTexture is a texture-fetched read-only array.
	SpaceTexture
)

func (m MemSpace) String() string {
	switch m {
	case SpaceLocal:
		return "local"
	case SpacePrivate:
		return "private"
	case SpaceFirstPrivate:
		return "firstprivate"
	case SpaceConstScalar:
		return "constant"
	case SpaceGlobalRO:
		return "global read-only"
	case SpaceTexture:
		return "texture"
	default:
		return "?"
	}
}

// Kernel is the analyzable view of one translated directive region.
type Kernel struct {
	File string
	// Combiner distinguishes combiner kernels from mapper kernels.
	Combiner bool
	// Region is the rewritten region statement (GPU intrinsics in place).
	Region minic.Stmt
	// Spaces is the translator's placement plan for region variables.
	Spaces map[*minic.Symbol]MemSpace
	// ClauseRO names variables declared read-only by directive clauses;
	// writes to those are already reported at source level (HD302), so the
	// kernel pass skips them.
	ClauseRO map[string]bool
}

// warpSyncCalls are runtime intrinsics executed cooperatively by a warp:
// every thread of the warp must reach them together (paper §3.4 processes
// one record per warp thread in lock step).
var warpSyncCalls = map[string]bool{"getRecord": true, "getKV": true}

// AnalyzeKernel runs the GPU-safety checks over one translated kernel.
func AnalyzeKernel(k *Kernel) []Diagnostic {
	a := &analyzer{file: k.File}
	a.checkWarpSync(k)
	a.checkSharedWrites(k)
	a.checkStaticBounds(k)
	Sort(a.diags)
	return a.diags
}

// checkWarpSync reports HD401 for warp-synchronous intrinsics that appear
// anywhere but the condition of a top-level region loop. Nested under
// divergent control flow, part of a warp would skip the call and the
// cooperative read deadlocks (or reads garbage).
func (a *analyzer) checkWarpSync(k *Kernel) {
	legal := map[*minic.Call]bool{}
	var markTop func(s minic.Stmt)
	markTop = func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.Block:
			for _, inner := range st.Stmts {
				markTop(inner)
			}
		case *minic.PragmaStmt:
			markTop(st.Body)
		case *minic.While:
			markCondCalls(st.Cond, legal)
		}
	}
	markTop(k.Region)
	walkCalls(k.Region, func(c *minic.Call) {
		if warpSyncCalls[c.Name] && !legal[c] {
			a.report("HD401", c.Pos,
				fmt.Sprintf("warp-synchronous %q is called under thread-divergent control flow", c.Name),
				"hoist the record read into the region's outermost loop condition")
		}
	})
}

func markCondCalls(e minic.Expr, legal map[*minic.Call]bool) {
	var walk func(minic.Expr)
	walk = func(e minic.Expr) {
		if e == nil {
			return
		}
		switch x := e.(type) {
		case *minic.Unary:
			walk(x.X)
		case *minic.Postfix:
			walk(x.X)
		case *minic.Binary:
			walk(x.L)
			walk(x.R)
		case *minic.Assign:
			walk(x.L)
			walk(x.R)
		case *minic.Cond:
			walk(x.C)
			walk(x.T)
			walk(x.F)
		case *minic.Call:
			legal[x] = true
			for _, arg := range x.Args {
				walk(arg)
			}
		case *minic.Index:
			walk(x.X)
			walk(x.Idx)
		case *minic.Cast:
			walk(x.X)
		}
	}
	walk(e)
}

// checkSharedWrites reports HD402 when the kernel writes a variable the
// translator placed in a read-only shared space (constant, global
// read-only, texture): every thread would race on the same location, and
// the read-only placement means the write silently has no host-visible
// semantics.
func (a *analyzer) checkSharedWrites(k *Kernel) {
	reported := map[*minic.Symbol]bool{}
	for _, ev := range regionEvents(k.Region) {
		if ev.sym == nil || reported[ev.sym] || k.ClauseRO[ev.sym.Name] {
			continue
		}
		space, ok := k.Spaces[ev.sym]
		if !ok || (space != SpaceConstScalar && space != SpaceGlobalRO && space != SpaceTexture) {
			continue
		}
		switch ev.kind {
		case evWrite, evElemWrite, evAddr:
			a.report("HD402", ev.pos,
				fmt.Sprintf("kernel writes %q, which the translator placed in %s memory shared by all threads", ev.sym.Name, space),
				"make the write per-thread (declare the variable in the region) or emit the result as a key/value pair")
			reported[ev.sym] = true
		}
	}
}

// checkStaticBounds reports HD403 for constant-foldable indices that fall
// outside the declared bounds of a constant/texture/global read-only
// array. Out-of-bounds texture fetches clamp silently on the device, so
// the bug is invisible at runtime.
func (a *analyzer) checkStaticBounds(k *Kernel) {
	walkExprs(k.Region, func(e minic.Expr) {
		ix, ok := e.(*minic.Index)
		if !ok {
			return
		}
		base := baseIdent(ix.X)
		if base == nil || base.Sym == nil {
			return
		}
		space, tracked := k.Spaces[base.Sym]
		if !tracked || (space != SpaceGlobalRO && space != SpaceTexture && space != SpaceConstScalar) {
			return
		}
		t := base.Sym.Type
		if t == nil || t.Kind != minic.TypeArray || t.Len <= 0 {
			return
		}
		v, constIdx := constIntValue(ix.Idx)
		if !constIdx {
			return
		}
		if v < 0 || v >= int64(t.Len) {
			a.report("HD403", ix.Pos,
				fmt.Sprintf("index %d is out of bounds for %q (%s memory, length %d)", v, base.Sym.Name, space, t.Len),
				"fix the index or the array's declared length")
		}
	})
}
