package analysis

import (
	"fmt"

	"repro/internal/minic"
)

// This file implements the IO-purity pass (HD501, HD502). A directive
// region runs on the GPU, so it may only call functions the translator can
// replace with runtime intrinsics (getline/printf/scanf, paper §3.3) or
// functions with device implementations (string.h/math.h subsets). Heap
// management and process control have no device equivalent.
//
// Called user functions are checked transitively: they are cloned into the
// kernel verbatim, so they may use only the pure subset — the stdio
// rewrites apply to the region body, not to callees.

// purityClass buckets every callable name.
type purityClass int

const (
	pureCall       purityClass = iota // legal anywhere in or under a region
	regionOnlyCall                    // legal in the region body, not in callees
	forbiddenCall                     // never legal on the GPU
)

// callPurity classifies the builtins. User-defined functions are handled
// separately (transitive scan).
var callPurity = map[string]purityClass{
	// Replaceable stdio (rewritten to getRecord/emitKV/getKV/storeKV).
	"getline": regionOnlyCall,
	"printf":  regionOnlyCall,
	"scanf":   regionOnlyCall,
	// Runtime intrinsics the rewriter itself inserts.
	"mapSetup": regionOnlyCall, "getRecord": regionOnlyCall,
	"emitKV": regionOnlyCall, "mapFinish": regionOnlyCall,
	"combineSetup": regionOnlyCall, "getKV": regionOnlyCall,
	"storeKV": regionOnlyCall,
	// Device-implementable string/ctype/stdlib subset.
	"strcmp": pureCall, "strncmp": pureCall, "strcpy": pureCall,
	"strncpy": pureCall, "strlen": pureCall, "strstr": pureCall,
	"strcat": pureCall, "memset": pureCall, "memcpy": pureCall,
	"atoi": pureCall, "atof": pureCall, "abs": pureCall,
	"isdigit": pureCall, "isalpha": pureCall, "isalnum": pureCall,
	"isspace": pureCall, "tolower": pureCall, "toupper": pureCall,
	"strcmpGPU": pureCall, "strcpyGPU": pureCall, "strlenGPU": pureCall,
	"__sizeof_var": pureCall,
	// Math intrinsics.
	"sqrt": pureCall, "fabs": pureCall, "exp": pureCall, "log": pureCall,
	"log2": pureCall, "pow": pureCall, "floor": pureCall, "ceil": pureCall,
	"fmin": pureCall, "fmax": pureCall, "erf": pureCall,
	"sin": pureCall, "cos": pureCall,
	// No device equivalent.
	"malloc": forbiddenCall, "calloc": forbiddenCall, "free": forbiddenCall,
	"exit": forbiddenCall, "getchar": forbiddenCall, "putchar": forbiddenCall,
}

func (a *analyzer) ioPurityPass(r *regionInfo) {
	checkedFns := map[string]bool{}
	walkCalls(r.pragma.Body, func(c *minic.Call) {
		if cls, known := callPurity[c.Name]; known {
			if cls == forbiddenCall {
				a.report("HD501", c.Pos,
					fmt.Sprintf("call to %q inside a %s region is not GPU-replaceable", c.Name, r.kindName()),
					"move the call outside the directive region")
			}
			return
		}
		fn := a.prog.Func(c.Name)
		if fn == nil {
			return // sema already rejected unknown callees
		}
		if checkedFns[c.Name] {
			return
		}
		checkedFns[c.Name] = true
		if name, callee, ok := a.findImpureCall(fn, map[string]bool{c.Name: true}); ok {
			a.report("HD502", c.Pos,
				fmt.Sprintf("function %q called from the %s region calls %q, which cannot run on the GPU", name, r.kindName(), callee),
				"inline replaceable IO into the region body or drop the call")
		}
	})
}

// findImpureCall scans fn's body (and its callees, cycle-safe) for a call
// that is not in the pure subset. It returns the offending function and
// callee names. Region-only calls (stdio) count as impure here: the
// translator rewrites the region body only.
func (a *analyzer) findImpureCall(fn *minic.FuncDecl, visiting map[string]bool) (string, string, bool) {
	var badFn, badCallee string
	walkCalls(fn.Body, func(c *minic.Call) {
		if badCallee != "" {
			return
		}
		if cls, known := callPurity[c.Name]; known {
			if cls != pureCall {
				badFn, badCallee = fn.Name, c.Name
			}
			return
		}
		callee := a.prog.Func(c.Name)
		if callee == nil || visiting[c.Name] {
			return
		}
		visiting[c.Name] = true
		if f, cn, ok := a.findImpureCall(callee, visiting); ok {
			badFn, badCallee = f, cn
		}
	})
	return badFn, badCallee, badCallee != ""
}
