// Package gpurt is the HeteroDoop GPU runtime (paper §5): it provides the
// global KV store, the record locator and per-threadblock record stealing,
// the emitKV/getKV/storeKV intrinsics with vectorized variants, KV-pair
// aggregation via parallel prefix scan, the indirection-based merge sort,
// the warp-redundant combine execution, and the host driver implementing
// the Figure-1 flow. Kernels execute functionally through the MiniC
// interpreter while charging cycles into the gpu package's cost model.
package gpurt

import (
	"bytes"
	"fmt"

	"repro/internal/kv"
)

// KVStore is the global KV store: a statically allocated region of device
// memory divided into equal per-thread portions (paper §4.1). Each slot
// holds one fixed-size serialized key and value. Slots a thread never
// fills are "whitespace" that the aggregation step removes before sorting.
type KVStore struct {
	Schema         kv.Schema
	NumThreads     int
	SlotsPerThread int
	NumReducers    int

	keys   []byte  // slot i key at [i*keyLen, (i+1)*keyLen)
	vals   []byte  // slot i value at [i*valLen, (i+1)*valLen)
	counts []int32 // KV pairs emitted per thread (devKvCount)
	parts  []int32 // partition of each used slot
}

// ErrStoreOverflow reports a thread exhausting its KV store portion, which
// fails the task (the real system would overflow device memory).
var ErrStoreOverflow = fmt.Errorf("gpurt: thread exceeded its global KV store portion")

// NewKVStore allocates a store. numReducers <= 0 is treated as a single
// logical partition (map-only jobs still use slot bookkeeping).
func NewKVStore(schema kv.Schema, numThreads, slotsPerThread, numReducers int) (*KVStore, error) {
	if numThreads <= 0 || slotsPerThread <= 0 {
		return nil, fmt.Errorf("gpurt: invalid KV store geometry %dx%d", numThreads, slotsPerThread)
	}
	if numReducers <= 0 {
		numReducers = 1
	}
	total := numThreads * slotsPerThread
	return &KVStore{
		Schema:         schema,
		NumThreads:     numThreads,
		SlotsPerThread: slotsPerThread,
		NumReducers:    numReducers,
		keys:           make([]byte, total*schema.SlotKeyLen()),
		vals:           make([]byte, total*schema.SlotValLen()),
		counts:         make([]int32, numThreads),
		parts:          make([]int32, total),
	}, nil
}

// TotalSlots returns the allocated slot count (used + whitespace).
func (s *KVStore) TotalSlots() int { return s.NumThreads * s.SlotsPerThread }

// StoreBytes returns the device memory consumed by the store.
func (s *KVStore) StoreBytes() int64 {
	return int64(s.TotalSlots()) * int64(s.Schema.SlotKeyLen()+s.Schema.SlotValLen()+4)
}

// Emit appends a KV pair to thread's portion, returning the slot index.
func (s *KVStore) Emit(thread int, key, val kv.Value) (int, error) {
	if thread < 0 || thread >= s.NumThreads {
		return 0, fmt.Errorf("gpurt: emit from invalid thread %d", thread)
	}
	n := int(s.counts[thread])
	if n >= s.SlotsPerThread {
		return 0, ErrStoreOverflow
	}
	slot := thread*s.SlotsPerThread + n
	kl, vl := s.Schema.SlotKeyLen(), s.Schema.SlotValLen()
	copy(s.keys[slot*kl:(slot+1)*kl], s.Schema.EncodeKey(key))
	copy(s.vals[slot*vl:(slot+1)*vl], s.Schema.EncodeVal(val))
	s.parts[slot] = int32(kv.Partition(key, s.NumReducers))
	s.counts[thread] = int32(n + 1)
	return slot, nil
}

// Count returns the KV pairs emitted by one thread.
func (s *KVStore) Count(thread int) int { return int(s.counts[thread]) }

// Remaining returns the free slots left in a thread's portion.
func (s *KVStore) Remaining(thread int) int {
	return s.SlotsPerThread - int(s.counts[thread])
}

// TotalCount returns the KV pairs emitted by all threads.
func (s *KVStore) TotalCount() int {
	total := 0
	for _, c := range s.counts {
		total += int(c)
	}
	return total
}

// Whitespace returns the number of allocated but unused slots.
func (s *KVStore) Whitespace() int { return s.TotalSlots() - s.TotalCount() }

// SlotKeyBytes returns the serialized key of a slot (aliasing the store).
func (s *KVStore) SlotKeyBytes(slot int) []byte {
	kl := s.Schema.SlotKeyLen()
	return s.keys[slot*kl : (slot+1)*kl]
}

// SlotPair decodes the KV pair at a slot.
func (s *KVStore) SlotPair(slot int) kv.Pair {
	kl, vl := s.Schema.SlotKeyLen(), s.Schema.SlotValLen()
	return kv.Pair{
		Key: s.Schema.DecodeKey(s.keys[slot*kl : (slot+1)*kl]),
		Val: s.Schema.DecodeVal(s.vals[slot*vl : (slot+1)*vl]),
	}
}

// Aggregate performs the KV-pair aggregation of paper §5.3: using the
// per-thread emission counts (devKvCount) and a parallel prefix scan, it
// produces, per partition, the compacted indirection array of used slots
// (KV pairs are never moved, only the index array is rewritten). The scan
// itself is simulated analytically by the driver; this is the functional
// result. Slot order is (thread, emission order), which both the CPU and
// GPU paths preserve.
func (s *KVStore) Aggregate() [][]int32 {
	out := make([][]int32, s.NumReducers)
	for t := 0; t < s.NumThreads; t++ {
		base := t * s.SlotsPerThread
		for i := 0; i < int(s.counts[t]); i++ {
			slot := base + i
			p := s.parts[slot]
			out[p] = append(out[p], int32(slot))
		}
	}
	return out
}

// SortPartition orders a partition's indirection array by serialized key
// (bytewise, which the order-preserving encoding makes equivalent to the
// CPU's typed comparison), stably. Only the index array is permuted; the
// KV data never moves — this is the paper's indirection-based merge sort.
func (s *KVStore) SortPartition(slots []int32) {
	mergeSortIndices(slots, func(a, b int32) bool {
		c := bytes.Compare(s.SlotKeyBytes(int(a)), s.SlotKeyBytes(int(b)))
		if c != 0 {
			return c < 0
		}
		return a < b // stable: slot order breaks ties
	})
}

// mergeSortIndices is a bottom-up merge sort mirroring the GPU
// implementation's pass structure.
func mergeSortIndices(a []int32, less func(x, y int32) bool) {
	n := len(a)
	if n < 2 {
		return
	}
	buf := make([]int32, n)
	src, dst := a, buf
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if !less(src[j], src[i]) {
					dst[k] = src[i]
					i++
				} else {
					dst[k] = src[j]
					j++
				}
				k++
			}
			for i < mid {
				dst[k] = src[i]
				i++
				k++
			}
			for j < hi {
				dst[k] = src[j]
				j++
				k++
			}
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// Record is one input record located by the record-counting kernel.
type Record struct {
	Start int32
	Len   int32 // includes the trailing newline when present
}

// LocateRecords implements the record locator kernel (paper §5.2): it
// scans the input for newline-delimited records and returns their start
// offsets and lengths. The driver charges its cost as one streaming pass
// over the input.
func LocateRecords(input []byte) []Record {
	var recs []Record
	start := 0
	for i := 0; i < len(input); i++ {
		if input[i] == '\n' {
			recs = append(recs, Record{Start: int32(start), Len: int32(i - start + 1)})
			start = i + 1
		}
	}
	if start < len(input) {
		recs = append(recs, Record{Start: int32(start), Len: int32(len(input) - start)})
	}
	return recs
}
