package gpurt

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/compiler"
	"repro/internal/gpu"
	"repro/internal/interp"
	"repro/internal/kv"
	"repro/internal/minic"
	"repro/internal/perf"
)

// Options toggles the compiler/runtime optimizations evaluated in the
// paper's Figure 7. The translated baseline has all of them off; the full
// system has all of them on.
type Options struct {
	// UseTexture honors texture clauses (Fig. 7a); off places those arrays
	// in global memory.
	UseTexture bool
	// VectorMap enables char4-style vectorized KV emission and string ops
	// in map kernels (Fig. 7c).
	VectorMap bool
	// VectorCombine enables vectorized getKV/storeKV and string ops in
	// combine kernels (Fig. 7b).
	VectorCombine bool
	// RecordStealing enables dynamic per-threadblock record distribution
	// (Fig. 7d); off statically partitions records across threads.
	RecordStealing bool
	// GlobalStealing switches stealing to a single device-wide record
	// queue guarded by a global-memory atomic — the design alternative the
	// paper rejects (§4.1: global atomics are expensive). Requires
	// RecordStealing; exposed for the stealing-granularity ablation.
	GlobalStealing bool
	// Aggregation compacts KV-store whitespace before sorting (Fig. 7e).
	Aggregation bool
	// Prof is not an optimization: it is the wall-clock profiler the
	// runtime charges its phases and per-thread interpreter buckets to.
	// Nil (the zero value) disables profiling. It rides in Options so the
	// kernel executors' signatures stay put.
	Prof *perf.Profiler
}

// AllOptimizations returns the fully optimized configuration.
func AllOptimizations() Options {
	return Options{UseTexture: true, VectorMap: true, VectorCombine: true, RecordStealing: true, Aggregation: true}
}

// Baseline returns the translated-but-unoptimized configuration (the
// "base" bars of Fig. 5).
func Baseline() Options { return Options{} }

// hostCapture is the host-side state of a translated program at its kernel
// launch point: the paper's generated host code reaches the region with
// all firstprivate/sharedRO values computed; we capture them by running
// main with the region intercepted.
type hostCapture struct {
	machine *interp.Machine
	frame   *interp.Frame
	pragma  *minic.PragmaStmt
}

// captureHost runs the translated program's main, intercepting the
// mapreduce region, and returns the captured launch-point state.
func captureHost(comp *compiler.Compiled, stdout io.Writer) (*hostCapture, error) {
	return captureHostCol(comp, stdout, nil)
}

// captureHostCol is captureHost with an optional profiling collector for
// the host program's interpretation.
func captureHostCol(comp *compiler.Compiled, stdout io.Writer, col *perf.Collector) (*hostCapture, error) {
	cap := &hostCapture{}
	m := interp.New(comp.Kernel.Prog, interp.Options{
		Stdout: stdout,
		Prof:   col,
		OnPragma: func(p *minic.PragmaStmt, fr *interp.Frame) (bool, error) {
			cap.frame = fr
			cap.pragma = p
			return true, nil
		},
	})
	cap.machine = m
	if _, err := m.Run(); err != nil {
		return nil, fmt.Errorf("gpurt: host program failed: %w", err)
	}
	if cap.frame == nil {
		return nil, fmt.Errorf("gpurt: host program never reached its mapreduce region")
	}
	return cap, nil
}

// objectFor resolves a plan symbol to its host-side storage.
func (h *hostCapture) objectFor(sym *minic.Symbol) (*interp.Object, error) {
	if obj := h.frame.Object(sym); obj != nil {
		return obj, nil
	}
	if obj := h.machine.GlobalObject(sym); obj != nil {
		return obj, nil
	}
	return nil, fmt.Errorf("gpurt: no host storage for captured variable %q", sym.Name)
}

// sharedBindings builds the objects shared by all threads: sharedRO
// scalars (constant memory) and arrays (global or texture).
func sharedBindings(spec *compiler.KernelSpec, cap *hostCapture, opts Options) (map[*minic.Symbol]*interp.Object, error) {
	out := map[*minic.Symbol]*interp.Object{}
	for sym, cls := range spec.Plan {
		var space interp.MemSpace
		switch cls {
		case compiler.ClassROScalar:
			space = interp.SpaceConstant
		case compiler.ClassROArray:
			space = interp.SpaceGlobal
		case compiler.ClassTexture:
			if opts.UseTexture {
				space = interp.SpaceTexture
			} else {
				space = interp.SpaceGlobal
			}
		default:
			continue
		}
		host, err := cap.objectFor(sym)
		if err != nil {
			return nil, err
		}
		// Retag the host object's storage with the device space; the data
		// itself was cudaMemcpy'd in (cells are shared, read-only).
		out[sym] = &interp.Object{Cells: host.Cells, Elem: host.Elem, Space: space, Name: host.Name}
	}
	return out, nil
}

// privateBindings builds one thread's (or warp's) private and firstprivate
// objects. arraySpace is SpaceLocal for map kernels and SpaceShared for
// combine kernels (paper §4.2 places combiner private arrays in shared
// memory).
func privateBindings(spec *compiler.KernelSpec, cap *hostCapture, arraySpace interp.MemSpace) (map[*minic.Symbol]*interp.Object, error) {
	out := map[*minic.Symbol]*interp.Object{}
	for sym, cls := range spec.Plan {
		switch cls {
		case compiler.ClassPrivate, compiler.ClassFirstPrivate:
		default:
			continue
		}
		host, err := cap.objectFor(sym)
		if err != nil {
			return nil, err
		}
		space := interp.SpaceReg
		if len(host.Cells) > 1 {
			space = arraySpace
		}
		obj := interp.NewObject(sym.Name, host.Elem, len(host.Cells), space)
		if cls == compiler.ClassFirstPrivate {
			copy(obj.Cells, host.Cells)
		}
		out[sym] = obj
	}
	return out, nil
}

// threadSpaceFor places region-local declarations: arrays in local memory,
// scalars in registers.
func threadSpaceFor(sym *minic.Symbol) interp.MemSpace {
	if sym.Type != nil && sym.Type.Kind == minic.TypeArray {
		return interp.SpaceLocal
	}
	return interp.SpaceReg
}

// mapThread is one simulated GPU thread of the map kernel.
type mapThread struct {
	id      int // global thread id (block*threadsPerBlock + lane)
	machine *interp.Machine
	frame   *interp.Frame
	cost    *gpu.ThreadCost
	cond    minic.Expr
	body    minic.Stmt
	// condVM / bodyVM execute the region on the bytecode VM when the
	// kernel fragments compiled; nil pairs fall back to the tree-walker.
	condVM  *bytecode.FragmentVM
	bodyVM  *bytecode.FragmentVM
	pending int // granted record index, -1 = none
	ran     bool
}

// evalCond evaluates the region loop condition on the thread's execution
// core (VM or walker).
func (t *mapThread) evalCond() (interp.Value, error) {
	if t.condVM != nil {
		v, _, err := t.condVM.Run()
		return v, err
	}
	return t.machine.EvalIn(t.frame, t.cond)
}

// execBody executes the region loop body on the thread's execution core.
func (t *mapThread) execBody() error {
	if t.bodyVM != nil {
		_, _, err := t.bodyVM.Run()
		return err
	}
	_, err := t.machine.ExecIn(t.frame, t.body)
	return err
}

// bindFragmentVMs attaches compiled region fragments to the thread,
// resolving free symbols against the thread frame first and the kernel
// program's globals second. Both fragments must bind, or the thread stays
// on the walker (mixing cores would skew the cost accounting).
func (t *mapThread) bindFragmentVMs(cond, body *bytecode.Program) {
	if cond == nil || body == nil {
		return
	}
	lookup := func(sym *minic.Symbol) *interp.Object {
		if obj := t.frame.Object(sym); obj != nil {
			return obj
		}
		return t.machine.GlobalObject(sym)
	}
	condVM, err := bytecode.NewFragmentVM(t.machine, cond, lookup)
	if err != nil {
		return
	}
	bodyVM, err := bytecode.NewFragmentVM(t.machine, body, lookup)
	if err != nil {
		return
	}
	t.condVM, t.bodyVM = condVM, bodyVM
}

// MapKernelResult is the outcome of one map kernel launch.
type MapKernelResult struct {
	Store       *KVStore
	Records     int
	Time        float64 // kernel time in seconds
	BlockCycles []float64
	Steals      int64
	// Breakdown attributes the launch's total thread-cycles per memory
	// space (summed over every thread of every block).
	Breakdown gpu.CycleBreakdown
	// Occupancy / StragglerSkew profile the block schedule (see
	// gpu.BlockSchedule).
	Occupancy     float64
	StragglerSkew float64
}

// ExecMapKernel runs the translated map kernel over the located records,
// filling the KV store. Records are statically split across threadblocks;
// threads within a block steal records dynamically (paper §4.1) when
// opts.RecordStealing is on, emulated deterministically by always granting
// the next record to the least-loaded thread — the thread that would reach
// the shared-memory counter first.
func ExecMapKernel(dev *gpu.Device, comp *compiler.Compiled, cap *hostCapture,
	input []byte, records []Record, store *KVStore, opts Options) (*MapKernelResult, error) {

	spec := comp.Kernel
	if spec.Kind != compiler.RegionMapper {
		return nil, fmt.Errorf("gpurt: ExecMapKernel on a %v kernel", spec.Kind)
	}
	loop, ok := spec.Region.(*minic.While)
	if !ok {
		return nil, fmt.Errorf("gpurt: map region is not a while loop")
	}
	shared, err := sharedBindings(spec, cap, opts)
	if err != nil {
		return nil, err
	}
	// The input fileSplit lives in device global memory.
	ipObj := interp.NewObject("ip", minic.CharType, len(input)+1, interp.SpaceGlobal)
	for i, b := range input {
		ipObj.Cells[i] = interp.IntVal(int64(b))
	}

	blocks := spec.Blocks
	tpb := spec.Threads
	if store.NumThreads != blocks*tpb {
		return nil, fmt.Errorf("gpurt: store geometry %d != launch %dx%d", store.NumThreads, blocks, tpb)
	}
	kvBound := spec.KVPairs
	if kvBound <= 0 {
		kvBound = 1
	}

	if opts.RecordStealing && opts.GlobalStealing {
		return execMapKernelGlobalSteal(dev, comp, cap, shared, ipObj, records, store, opts, blocks, tpb, kvBound, loop)
	}

	perBlock := (len(records) + blocks - 1) / blocks
	blockCycles := make([]float64, blocks)
	blockErrs := make([]error, blocks)
	blockSteals := make([]int64, blocks)
	blockBreakdowns := make([]gpu.CycleBreakdown, blocks)

	var wg sync.WaitGroup
	for b := 0; b < blocks; b++ {
		lo := b * perBlock
		if lo >= len(records) {
			break
		}
		hi := lo + perBlock
		if hi > len(records) {
			hi = len(records)
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			cycles, bd, steals, err := runMapBlock(dev, comp, cap, shared, ipObj, records[lo:hi], store, opts, b, tpb, kvBound, loop)
			blockCycles[b] = cycles
			blockSteals[b] = steals
			blockBreakdowns[b] = bd
			blockErrs[b] = err
		}(b, lo, hi)
	}
	wg.Wait()
	for _, err := range blockErrs {
		if err != nil {
			return nil, err
		}
	}
	var steals int64
	var breakdown gpu.CycleBreakdown
	for b, s := range blockSteals {
		steals += s
		breakdown.Add(blockBreakdowns[b])
	}
	sched := dev.AggregateBlocksProfile(blockCycles)
	return &MapKernelResult{
		Store:         store,
		Records:       len(records),
		Time:          sched.Seconds,
		BlockCycles:   blockCycles,
		Steals:        steals,
		Breakdown:     breakdown,
		Occupancy:     sched.Occupancy,
		StragglerSkew: sched.StragglerSkew,
	}, nil
}

// runMapBlock executes one threadblock's share of the records and returns
// its total cycles (the max over its threads) plus the block's summed
// per-space cycle breakdown.
func runMapBlock(dev *gpu.Device, comp *compiler.Compiled, cap *hostCapture,
	shared map[*minic.Symbol]*interp.Object, ipObj *interp.Object,
	records []Record, store *KVStore, opts Options,
	block, tpb, kvBound int, loop *minic.While) (float64, gpu.CycleBreakdown, int64, error) {

	spec := comp.Kernel
	// One collector per block: this function runs on its own goroutine, and
	// all the block's thread machines share it (they execute sequentially).
	col := opts.Prof.Collector(perf.PhaseGPUMap)
	defer col.Flush()
	threads := make([]*mapThread, 0, tpb)
	newThread := func(lane int) (*mapThread, error) {
		t := &mapThread{id: block*tpb + lane, pending: -1, cost: gpu.NewThreadCost(&dev.Config)}
		priv, err := privateBindings(spec, cap, interp.SpaceLocal)
		if err != nil {
			return nil, err
		}
		t.machine = interp.New(spec.Prog, interp.Options{
			Cost:         t.cost,
			DefaultSpace: interp.SpaceLocal,
			SpaceFor:     threadSpaceFor,
			Prof:         col,
			Intrinsics:   mapIntrinsics(t, ipObj, records, store, comp.Schema, opts),
		})
		t.frame = t.machine.NewFrame()
		for sym, obj := range shared {
			t.frame.Bind(sym, obj)
		}
		for sym, obj := range priv {
			t.frame.Bind(sym, obj)
		}
		t.cond = loop.Cond
		t.body = loop.Body
		t.bindFragmentVMs(comp.KernelCond, comp.KernelBody)
		t.cost.Op(24) // mapSetup overhead
		return t, nil
	}

	runIteration := func(t *mapThread, rec int) error {
		t.pending = rec
		t.ran = true
		t.machine.SetCost(t.cost)
		v, err := t.evalCond()
		if err != nil {
			return err
		}
		if !v.Truthy() {
			return fmt.Errorf("gpurt: map loop refused a granted record")
		}
		return t.execBody()
	}

	lanes := tpb
	if lanes > len(records) {
		lanes = len(records)
	}
	for lane := 0; lane < lanes; lane++ {
		t, err := newThread(lane)
		if err != nil {
			return 0, gpu.CycleBreakdown{}, 0, err
		}
		threads = append(threads, t)
	}

	var steals int64
	if opts.RecordStealing {
		// Dynamic distribution: grant each record to the least-loaded
		// eligible thread — a deterministic stand-in for the shared-memory
		// atomic counter race (the least-loaded thread reaches the counter
		// first).
		for rec := 0; rec < len(records); rec++ {
			var pick *mapThread
			for _, t := range threads {
				if store.Remaining(t.id) < kvBound {
					continue
				}
				if pick == nil || t.cost.Cycles < pick.cost.Cycles {
					pick = t
				}
			}
			if pick == nil {
				// Every thread is below the stealing bound; fall back to
				// any thread with residual space before declaring overflow.
				for _, t := range threads {
					if store.Remaining(t.id) > 0 && (pick == nil || t.cost.Cycles < pick.cost.Cycles) {
						pick = t
					}
				}
				if pick == nil {
					return 0, gpu.CycleBreakdown{}, 0, ErrStoreOverflow
				}
			}
			pick.cost.Atomic(interp.SpaceShared) // recordIndex counter
			steals++
			if err := runIteration(pick, rec); err != nil {
				return 0, gpu.CycleBreakdown{}, 0, err
			}
		}
	} else {
		// Static partitioning: record i goes to lane i % lanes.
		for rec := 0; rec < len(records); rec++ {
			if err := runIteration(threads[rec%lanes], rec); err != nil {
				return 0, gpu.CycleBreakdown{}, 0, err
			}
		}
	}

	// Final loop-condition evaluation: getRecord returns -1 and the user
	// loop exits, assigning read = -1 as the real kernel would.
	maxCycles := 0.0
	var breakdown gpu.CycleBreakdown
	for _, t := range threads {
		if t.ran {
			t.pending = -1
			if _, err := t.evalCond(); err != nil {
				return 0, gpu.CycleBreakdown{}, 0, err
			}
			t.cost.Op(16) // mapFinish bookkeeping
		}
		if t.cost.Cycles > maxCycles {
			maxCycles = t.cost.Cycles
		}
		breakdown.Add(t.cost.Breakdown)
	}
	return maxCycles, breakdown, steals, nil
}

// mapIntrinsics binds the GPU runtime functions for one map thread.
func mapIntrinsics(t *mapThread, ipObj *interp.Object, records []Record,
	store *KVStore, schema kv.Schema, opts Options) map[string]interp.Builtin {

	return map[string]interp.Builtin{
		// getRecord(&line): point *line at the granted record inside the
		// input buffer and return its length, or -1 when the thread has no
		// more records to steal.
		"getRecord": func(m *interp.Machine, args []interp.Value) (interp.Value, error) {
			if len(args) < 1 || args[0].Kind != interp.ValPtr || args[0].P.IsNull() {
				return interp.Value{}, fmt.Errorf("gpurt: getRecord needs &line")
			}
			if t.pending < 0 {
				return interp.IntVal(-1), nil
			}
			rec := records[t.pending]
			t.pending = -1
			args[0].P.Obj.Cells[args[0].P.Off] = interp.PtrVal(interp.Pointer{Obj: ipObj, Off: int(rec.Start)})
			t.cost.Op(6)
			return interp.IntVal(int64(rec.Len)), nil
		},
		// emitKV(key, value): serialize into the thread's KV store portion.
		"emitKV": func(m *interp.Machine, args []interp.Value) (interp.Value, error) {
			if len(args) != 2 {
				return interp.Value{}, fmt.Errorf("gpurt: emitKV wants (key, value)")
			}
			key, err := valueOf(schema.KeyKind, args[0])
			if err != nil {
				return interp.Value{}, fmt.Errorf("gpurt: emitKV key: %w", err)
			}
			val, err := valueOf(schema.ValKind, args[1])
			if err != nil {
				return interp.Value{}, fmt.Errorf("gpurt: emitKV value: %w", err)
			}
			if _, err := store.Emit(t.id, key, val); err != nil {
				return interp.Value{}, err
			}
			chargeKVBytes(t.cost, schema.SlotKeyLen(), opts.VectorMap)
			chargeKVBytes(t.cost, schema.SlotValLen(), opts.VectorMap)
			t.cost.Op(8) // partition hash + index bookkeeping
			return interp.Value{}, nil
		},
		"strcmpGPU": strCmpGPU(t.cost, opts.VectorMap),
		"strcpyGPU": strCpyGPU(t.cost, opts.VectorMap),
		"strlenGPU": strLenGPU(t.cost, opts.VectorMap),
	}
}

// valueOf converts an interpreter value into a typed KV value.
func valueOf(kind kv.Kind, v interp.Value) (kv.Value, error) {
	switch kind {
	case kv.Bytes:
		if v.Kind != interp.ValPtr || v.P.IsNull() {
			return kv.Value{}, fmt.Errorf("byte key/value is not a string pointer")
		}
		return kv.StringValue(interp.ReadCString(v.P)), nil
	case kv.Int:
		return kv.IntValue(v.AsInt()), nil
	case kv.Float:
		return kv.FloatValue(v.AsFloat()), nil
	default:
		return kv.Value{}, fmt.Errorf("unknown kind %v", kind)
	}
}

// chargeKVBytes charges a KV field's global-memory traffic, vectorized
// (char4 transactions) or strided.
func chargeKVBytes(cost *gpu.ThreadCost, n int, vectorized bool) {
	if vectorized {
		cost.CoalescedAccess(n, 4)
	} else {
		cost.StridedAccess(n)
	}
}

// strCmpGPU, strCpyGPU, strLenGPU are the GPU string intrinsics the
// translator substitutes; functionally identical to the C versions but
// charged per the vectorization model.
func strCmpGPU(cost *gpu.ThreadCost, vectorized bool) interp.Builtin {
	return func(m *interp.Machine, args []interp.Value) (interp.Value, error) {
		a, b, err := twoPtrs(args, "strcmpGPU")
		if err != nil {
			return interp.Value{}, err
		}
		sa, sb := interp.ReadCString(a), interp.ReadCString(b)
		n := len(sa)
		if len(sb) > n {
			n = len(sb)
		}
		chargeStringAccess(cost, a, n+1, vectorized)
		chargeStringAccess(cost, b, n+1, vectorized)
		switch {
		case sa < sb:
			return interp.IntVal(-1), nil
		case sa > sb:
			return interp.IntVal(1), nil
		}
		return interp.IntVal(0), nil
	}
}

func strCpyGPU(cost *gpu.ThreadCost, vectorized bool) interp.Builtin {
	return func(m *interp.Machine, args []interp.Value) (interp.Value, error) {
		dst, src, err := twoPtrs(args, "strcpyGPU")
		if err != nil {
			return interp.Value{}, err
		}
		s := interp.ReadCString(src)
		interp.WriteCString(dst, s)
		chargeStringAccess(cost, src, len(s)+1, vectorized)
		chargeStringAccess(cost, dst, len(s)+1, vectorized)
		return args[0], nil
	}
}

func strLenGPU(cost *gpu.ThreadCost, vectorized bool) interp.Builtin {
	return func(m *interp.Machine, args []interp.Value) (interp.Value, error) {
		if len(args) != 1 || args[0].Kind != interp.ValPtr || args[0].P.IsNull() {
			return interp.Value{}, fmt.Errorf("gpurt: strlenGPU wants a string pointer")
		}
		s := interp.ReadCString(args[0].P)
		chargeStringAccess(cost, args[0].P, len(s)+1, vectorized)
		return interp.IntVal(int64(len(s))), nil
	}
}

func twoPtrs(args []interp.Value, fn string) (a, b interp.Pointer, err error) {
	if len(args) != 2 || args[0].Kind != interp.ValPtr || args[0].P.IsNull() ||
		args[1].Kind != interp.ValPtr || args[1].P.IsNull() {
		return a, b, fmt.Errorf("gpurt: %s wants two string pointers", fn)
	}
	return args[0].P, args[1].P, nil
}

// chargeStringAccess charges n bytes touched at p: vectorized char4
// transactions when enabled, otherwise per-byte at the object's memory
// space cost.
func chargeStringAccess(cost *gpu.ThreadCost, p interp.Pointer, n int, vectorized bool) {
	if vectorized {
		cost.CoalescedAccess(n, 4)
		return
	}
	for i := 0; i < n; i++ {
		cost.Load(p.Obj.Space, 1)
	}
}
