package gpurt

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/gpu"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/perf"
)

// execMapKernelGlobalSteal is the stealing-granularity ablation: all
// threads of the launch pull from one device-wide record queue, paying a
// global-memory atomic per steal instead of a shared-memory one. Balance
// is perfect across blocks, but the atomic cost (and its serialization,
// modeled as contention growing with the thread count) is what the paper's
// per-threadblock design avoids.
func execMapKernelGlobalSteal(dev *gpu.Device, comp *compiler.Compiled, cap *hostCapture,
	shared map[*minic.Symbol]*interp.Object, ipObj *interp.Object,
	records []Record, store *KVStore, opts Options,
	blocks, tpb, kvBound int, loop *minic.While) (*MapKernelResult, error) {

	spec := comp.Kernel
	totalLanes := blocks * tpb
	if totalLanes > len(records) {
		totalLanes = len(records)
	}
	// The ablation executes every lane on the calling goroutine, so one
	// collector serves the whole launch.
	col := opts.Prof.Collector(perf.PhaseGPUMap)
	defer col.Flush()
	threads := make([]*mapThread, 0, totalLanes)
	for lane := 0; lane < totalLanes; lane++ {
		t := &mapThread{id: lane, pending: -1, cost: gpu.NewThreadCost(&dev.Config)}
		priv, err := privateBindings(spec, cap, interp.SpaceLocal)
		if err != nil {
			return nil, err
		}
		t.machine = interp.New(spec.Prog, interp.Options{
			Cost:         t.cost,
			DefaultSpace: interp.SpaceLocal,
			SpaceFor:     threadSpaceFor,
			Prof:         col,
			Intrinsics:   mapIntrinsics(t, ipObj, records, store, comp.Schema, opts),
		})
		t.frame = t.machine.NewFrame()
		for sym, obj := range shared {
			t.frame.Bind(sym, obj)
		}
		for sym, obj := range priv {
			t.frame.Bind(sym, obj)
		}
		t.cond = loop.Cond
		t.body = loop.Body
		t.bindFragmentVMs(comp.KernelCond, comp.KernelBody)
		t.cost.Op(24)
		threads = append(threads, t)
	}

	// Contention: every steal serializes on one global counter; the
	// effective per-steal cost grows with the number of threads hammering
	// it (modeled linearly, floored at the uncontended cost).
	contention := float64(totalLanes) / float64(dev.Config.WarpSize)
	if contention < 1 {
		contention = 1
	}

	var steals int64
	for rec := 0; rec < len(records); rec++ {
		var pick *mapThread
		for _, t := range threads {
			if store.Remaining(t.id) < kvBound {
				continue
			}
			if pick == nil || t.cost.Cycles < pick.cost.Cycles {
				pick = t
			}
		}
		if pick == nil {
			for _, t := range threads {
				if store.Remaining(t.id) > 0 && (pick == nil || t.cost.Cycles < pick.cost.Cycles) {
					pick = t
				}
			}
			if pick == nil {
				return nil, ErrStoreOverflow
			}
		}
		for i := 0; i < int(contention); i++ {
			pick.cost.Atomic(interp.SpaceGlobal)
		}
		steals++
		pick.pending = rec
		pick.ran = true
		pick.machine.SetCost(pick.cost)
		v, err := pick.evalCond()
		if err != nil {
			return nil, err
		}
		if !v.Truthy() {
			return nil, fmt.Errorf("gpurt: map loop refused a granted record")
		}
		if err := pick.execBody(); err != nil {
			return nil, err
		}
	}

	// Loop-exit evaluation per active thread, then group lanes into their
	// threadblocks for aggregation.
	blockCycles := make([]float64, (totalLanes+tpb-1)/tpb)
	var breakdown gpu.CycleBreakdown
	for i, t := range threads {
		if t.ran {
			t.pending = -1
			if _, err := t.evalCond(); err != nil {
				return nil, err
			}
			t.cost.Op(16)
		}
		b := i / tpb
		if t.cost.Cycles > blockCycles[b] {
			blockCycles[b] = t.cost.Cycles
		}
		breakdown.Add(t.cost.Breakdown)
	}
	sched := dev.AggregateBlocksProfile(blockCycles)
	return &MapKernelResult{
		Store:         store,
		Records:       len(records),
		Time:          sched.Seconds,
		BlockCycles:   blockCycles,
		Steals:        steals,
		Breakdown:     breakdown,
		Occupancy:     sched.Occupancy,
		StragglerSkew: sched.StragglerSkew,
	}, nil
}
