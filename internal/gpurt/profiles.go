package gpurt

import (
	"repro/internal/gpu"
	"repro/internal/obs"
)

// spaceCycles converts a device cycle breakdown into the fixed-order
// per-space attribution the observability layer exports. Zero-cycle spaces
// are kept here (the metrics registry skips them) so the order is stable.
func spaceCycles(bd gpu.CycleBreakdown) []obs.SpaceCycles {
	return []obs.SpaceCycles{
		{Space: "op", Cycles: bd.Op},
		{Space: "global", Cycles: bd.Global},
		{Space: "coalesced", Cycles: bd.Coalesced},
		{Space: "shared", Cycles: bd.Shared},
		{Space: "constant", Cycles: bd.Constant},
		{Space: "texture", Cycles: bd.Texture},
		{Space: "register", Cycles: bd.Register},
		{Space: "local", Cycles: bd.Local},
		{Space: "atomic-shared", Cycles: bd.AtomicShared},
		{Space: "atomic-global", Cycles: bd.AtomicGlobal},
	}
}
