package gpurt

import "fmt"

// AbortError is the typed error for a GPU task aborted mid-kernel —
// whether by a genuine runtime failure (store overflow, kernel fault) or
// an injected device fault. The MR engine unwraps it to decide that the
// attempt should be retried on the CPU path.
type AbortError struct {
	// Kernel names the stage that aborted (record-count, map, sort,
	// combine, ...).
	Kernel string
	Cause  error
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("gpurt: %s kernel aborted: %v", e.Kernel, e.Cause)
}

func (e *AbortError) Unwrap() error { return e.Cause }
