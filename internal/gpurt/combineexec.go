package gpurt

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/compiler"
	"repro/internal/gpu"
	"repro/internal/interp"
	"repro/internal/kv"
	"repro/internal/minic"
	"repro/internal/perf"
)

// CombineResult is the outcome of the combine kernels over all partitions.
type CombineResult struct {
	// Partitions holds the combined KV pairs per reducer partition.
	Partitions [][]kv.Pair
	// Time is the summed kernel time across partitions (the host launches
	// one combine kernel per partition, Fig. 1).
	Time float64
	// Warps is the total number of warp-chunks executed.
	Warps int
	// Breakdown attributes the combined launches' thread-cycles per memory
	// space (summed over every warp of every partition).
	Breakdown gpu.CycleBreakdown
	// Blocks is the total number of threadblocks across partition launches.
	Blocks int
	// Occupancy / StragglerSkew profile the block schedules, averaged over
	// partition launches weighted by their kernel time.
	Occupancy     float64
	StragglerSkew float64
}

// ExecCombineKernels runs the translated combine kernel over each sorted
// partition. Within a partition the KV list is split into contiguous
// chunks, one per warp; every warp executes the combiner redundantly
// across its lanes (so one logical execution is charged) and lanes
// cooperate only on vectorized getKV/storeKV (paper §4.2). Splitting a
// key run across two warps yields partial combines — the relaxed
// functional equivalence the paper describes, which the reducers restore.
func ExecCombineKernels(dev *gpu.Device, comp *compiler.Compiled, cap *hostCapture,
	store *KVStore, partitions [][]int32, opts Options) (*CombineResult, error) {

	spec := comp.Kernel
	if spec.Kind != compiler.RegionCombiner {
		return nil, fmt.Errorf("gpurt: ExecCombineKernels on a %v kernel", spec.Kind)
	}
	warpSize := dev.Config.WarpSize
	totalWarps := spec.Blocks * spec.Threads / warpSize
	if totalWarps < 1 {
		totalWarps = 1
	}
	warpsPerBlock := spec.Threads / warpSize
	if warpsPerBlock < 1 {
		warpsPerBlock = 1
	}

	// Partitions and warps execute sequentially on this goroutine, so one
	// collector serves every warp machine.
	col := opts.Prof.Collector(perf.PhaseGPUCombine)
	defer col.Flush()

	res := &CombineResult{Partitions: make([][]kv.Pair, len(partitions))}
	for p, slots := range partitions {
		if len(slots) == 0 {
			continue
		}
		warps := totalWarps
		if warps > len(slots) {
			warps = len(slots)
		}
		chunk := (len(slots) + warps - 1) / warps
		var warpCycles []float64
		for w := 0; w < warps; w++ {
			lo := w * chunk
			if lo >= len(slots) {
				break
			}
			hi := lo + chunk
			if hi > len(slots) {
				hi = len(slots)
			}
			out, cycles, bd, err := runCombineWarp(dev, comp, cap, store, slots[lo:hi], opts, col)
			if err != nil {
				return nil, err
			}
			res.Partitions[p] = append(res.Partitions[p], out...)
			warpCycles = append(warpCycles, cycles)
			res.Breakdown.Add(bd)
			res.Warps++
		}
		// Group warps into blocks; a block finishes with its slowest warp.
		var blockCycles []float64
		for i := 0; i < len(warpCycles); i += warpsPerBlock {
			max := 0.0
			for j := i; j < i+warpsPerBlock && j < len(warpCycles); j++ {
				if warpCycles[j] > max {
					max = warpCycles[j]
				}
			}
			blockCycles = append(blockCycles, max)
		}
		sched := dev.AggregateBlocksProfile(blockCycles)
		res.Time += sched.Seconds
		res.Blocks += len(blockCycles)
		res.Occupancy += sched.Occupancy * sched.Seconds
		res.StragglerSkew += sched.StragglerSkew * sched.Seconds
	}
	if res.Time > 0 {
		res.Occupancy /= res.Time
		res.StragglerSkew /= res.Time
	}
	return res, nil
}

// combineWarp is the execution state of one warp-chunk.
type combineWarp struct {
	cost   *gpu.ThreadCost
	slots  []int32
	next   int
	output []kv.Pair
}

// runCombineWarp executes the combiner region once (warp-redundantly) over
// a chunk of a sorted partition, returning the warp's output, total cycles,
// and per-space cycle breakdown.
func runCombineWarp(dev *gpu.Device, comp *compiler.Compiled, cap *hostCapture,
	store *KVStore, slots []int32, opts Options, col *perf.Collector) ([]kv.Pair, float64, gpu.CycleBreakdown, error) {

	spec := comp.Kernel
	w := &combineWarp{cost: gpu.NewThreadCost(&dev.Config), slots: slots}
	w.cost.Op(32) // combineSetup

	// Private arrays of combine kernels live in shared memory (paper §4.2).
	priv, err := privateBindings(spec, cap, interp.SpaceShared)
	if err != nil {
		return nil, 0, gpu.CycleBreakdown{}, err
	}
	shared, err := sharedBindings(spec, cap, opts)
	if err != nil {
		return nil, 0, gpu.CycleBreakdown{}, err
	}

	mapSchema := store.Schema
	outSchema := comp.Schema
	m := interp.New(spec.Prog, interp.Options{
		Cost:         w.cost,
		Prof:         col,
		DefaultSpace: interp.SpaceShared,
		SpaceFor: func(sym *minic.Symbol) interp.MemSpace {
			if sym.Type != nil && sym.Type.Kind == minic.TypeArray {
				return interp.SpaceShared
			}
			return interp.SpaceReg
		},
		Intrinsics: map[string]interp.Builtin{
			// getKV(&keyin, &valuein): load the next KV pair of the chunk
			// through the indirection array. Lanes load cooperatively when
			// vectorization is on.
			"getKV": func(m *interp.Machine, args []interp.Value) (interp.Value, error) {
				if len(args) != 2 {
					return interp.Value{}, fmt.Errorf("gpurt: getKV wants (keyin, valuein)")
				}
				if w.next >= len(w.slots) {
					return interp.IntVal(-1), nil
				}
				pair := store.SlotPair(int(w.slots[w.next]))
				w.next++
				if err := writeBack(args[0], pair.Key); err != nil {
					return interp.Value{}, fmt.Errorf("gpurt: getKV key: %w", err)
				}
				if err := writeBack(args[1], pair.Val); err != nil {
					return interp.Value{}, fmt.Errorf("gpurt: getKV value: %w", err)
				}
				chargeKVBytes(w.cost, mapSchema.SlotKeyLen(), opts.VectorCombine)
				chargeKVBytes(w.cost, mapSchema.SlotValLen(), opts.VectorCombine)
				w.cost.Op(6) // indirection fetch
				return interp.IntVal(2), nil
			},
			// storeKV(key, value): append a combined pair to the warp's
			// output region.
			"storeKV": func(m *interp.Machine, args []interp.Value) (interp.Value, error) {
				if len(args) != 2 {
					return interp.Value{}, fmt.Errorf("gpurt: storeKV wants (key, value)")
				}
				key, err := valueOf(outSchema.KeyKind, args[0])
				if err != nil {
					return interp.Value{}, fmt.Errorf("gpurt: storeKV key: %w", err)
				}
				val, err := valueOf(outSchema.ValKind, args[1])
				if err != nil {
					return interp.Value{}, fmt.Errorf("gpurt: storeKV value: %w", err)
				}
				w.output = append(w.output, kv.Pair{Key: key, Val: val})
				chargeKVBytes(w.cost, outSchema.SlotKeyLen(), opts.VectorCombine)
				chargeKVBytes(w.cost, outSchema.SlotValLen(), opts.VectorCombine)
				w.cost.Op(8)
				return interp.Value{}, nil
			},
			"strcmpGPU": strCmpGPU(w.cost, opts.VectorCombine),
			"strcpyGPU": strCpyGPU(w.cost, opts.VectorCombine),
			"strlenGPU": strLenGPU(w.cost, opts.VectorCombine),
		},
	})
	fr := m.NewFrame()
	for sym, obj := range shared {
		fr.Bind(sym, obj)
	}
	for sym, obj := range priv {
		fr.Bind(sym, obj)
	}
	if err := execCombineRegion(m, fr, comp, spec.Region); err != nil {
		return nil, 0, gpu.CycleBreakdown{}, err
	}
	return w.output, w.cost.Cycles, w.cost.Breakdown, nil
}

// execCombineRegion runs the combiner region on the bytecode VM when the
// compiler produced a region fragment, falling back to the tree-walker
// when it declined or the fragment's free symbols fail to bind.
func execCombineRegion(m *interp.Machine, fr *interp.Frame, comp *compiler.Compiled, region minic.Stmt) error {
	if comp.KernelRegion != nil {
		lookup := func(sym *minic.Symbol) *interp.Object {
			if obj := fr.Object(sym); obj != nil {
				return obj
			}
			return m.GlobalObject(sym)
		}
		if vm, err := bytecode.NewFragmentVM(m, comp.KernelRegion, lookup); err == nil {
			_, _, err := vm.Run()
			return err
		}
	}
	_, err := m.ExecIn(fr, region)
	return err
}

// writeBack stores a typed KV value through a destination pointer (a char
// array for byte keys, &scalar for numeric ones).
func writeBack(dst interp.Value, v kv.Value) error {
	if dst.Kind != interp.ValPtr || dst.P.IsNull() {
		return fmt.Errorf("destination is not a pointer")
	}
	switch v.Kind {
	case kv.Bytes:
		interp.WriteCString(dst.P, string(v.B))
	case kv.Int:
		dst.P.Obj.Cells[dst.P.Off] = interp.IntVal(v.I)
	case kv.Float:
		dst.P.Obj.Cells[dst.P.Off] = interp.FloatVal(v.F)
	}
	return nil
}
