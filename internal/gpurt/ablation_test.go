package gpurt

import (
	"bytes"
	"testing"

	"repro/internal/compiler"
)

// skewedInput builds records with heavy size skew across many records per
// thread, the regime where stealing granularity matters.
func skewedInput(lines int) []byte {
	var b bytes.Buffer
	for i := 0; i < lines; i++ {
		if i%8 == 0 {
			for j := 0; j < 30; j++ {
				b.WriteString("longword ")
			}
		} else {
			b.WriteString("x y")
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// TestStealingGranularityAblation verifies the paper's §4.1 design
// argument: per-threadblock stealing beats static partitioning on skewed
// records, and device-wide (global-atomic) stealing loses its balance
// advantage to atomic contention.
func TestStealingGranularityAblation(t *testing.T) {
	dev := devK40(t)
	comp := compiler.MustCompile(wcMapSrc)
	input := skewedInput(512)

	runMode := func(steal, global bool) float64 {
		opts := AllOptimizations()
		opts.RecordStealing = steal
		opts.GlobalStealing = global
		res, err := RunTask(dev, comp, nil, input, TaskConfig{NumReducers: 2, Opts: opts})
		if err != nil {
			t.Fatal(err)
		}
		return res.Times.Map
	}
	static := runMode(false, false)
	block := runMode(true, false)
	global := runMode(true, true)

	if block >= static {
		t.Errorf("per-block stealing (%.3g) not faster than static (%.3g)", block, static)
	}
	if block >= global {
		t.Errorf("per-block stealing (%.3g) not faster than global stealing (%.3g): the paper's design premise", block, global)
	}
}

func TestGlobalStealingStillCorrect(t *testing.T) {
	dev := devK40(t)
	comp := compiler.MustCompile(wcMapSrc)
	input := testInput(45)

	counts := func(global bool) map[string]int64 {
		opts := AllOptimizations()
		opts.GlobalStealing = global
		res, err := RunTask(dev, comp, nil, input, TaskConfig{NumReducers: 3, Opts: opts})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int64{}
		for _, part := range res.Partitions {
			for _, p := range part {
				out[string(p.Key.B)] += p.Val.I
			}
		}
		return out
	}
	a, b := counts(false), counts(true)
	if len(a) != len(b) {
		t.Fatalf("distinct keys differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("count[%q]: block %d global %d", k, v, b[k])
		}
	}
}

func TestSerializeOutputUsesRealContainer(t *testing.T) {
	dev := devK40(t)
	mapC := compiler.MustCompile(wcMapSrc)
	combC := compiler.MustCompile(wcCombineSrc)
	res, err := RunTask(dev, mapC, combC, testInput(30), TaskConfig{NumReducers: 2, Opts: AllOptimizations()})
	if err != nil {
		t.Fatal(err)
	}
	pairs := 0
	for _, p := range res.Partitions {
		pairs += len(p)
	}
	// Container bytes: 6-byte header + 12-byte trailer per partition plus
	// per-record framing; must exceed the raw payload and track the count.
	minBytes := int64(pairs * (8 + 4)) // length prefixes + crc at least
	if res.OutputBytes < minBytes {
		t.Fatalf("output bytes %d below framing floor %d", res.OutputBytes, minBytes)
	}
}
