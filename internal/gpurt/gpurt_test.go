package gpurt

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/gpu"
	"repro/internal/interp"
	"repro/internal/kv"
	"repro/internal/minic"
)

const wcMapSrc = `
int getWord(char *line, int offset, char *word, int read, int maxw) {
	int i = offset, j = 0;
	while (i < read && (line[i] == ' ' || line[i] == '\n' || line[i] == '\t')) i++;
	while (i < read && line[i] != ' ' && line[i] != '\n' && line[i] != '\t' && j < maxw - 1) {
		word[j] = line[i];
		i++; j++;
	}
	if (j == 0) return -1;
	word[j] = '\0';
	return i - offset;
}
int main() {
	char word[30], *line;
	size_t nbytes = 10000;
	int read, linePtr, offset, one;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(word) value(one) keylength(30) kvpairs(32) blocks(4) threads(32)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		linePtr = 0;
		offset = 0;
		one = 1;
		while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
			printf("%s\t%d\n", word, one);
			offset += linePtr;
		}
	}
	free(line);
	return 0;
}`

const wcCombineSrc = `
int main() {
	char word[30], prevWord[30];
	prevWord[0] = '\0';
	int count, val, read;
	count = 0;
	#pragma mapreduce combiner key(prevWord) value(count) keyin(word) valuein(val) keylength(30) firstprivate(prevWord, count) blocks(2) threads(64)
	{
		while ((read = scanf("%s %d", word, &val)) == 2) {
			if (strcmp(word, prevWord) == 0) {
				count += val;
			} else {
				if (prevWord[0] != '\0')
					printf("%s\t%d\n", prevWord, count);
				strcpy(prevWord, word);
				count = val;
			}
		}
		if (prevWord[0] != '\0')
			printf("%s\t%d\n", prevWord, count);
	}
	return 0;
}`

func testInput(lines int) []byte {
	words := []string{"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "a", "and"}
	var b bytes.Buffer
	for i := 0; i < lines; i++ {
		n := 3 + i%5
		for j := 0; j < n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(words[(i*7+j*3)%len(words)])
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// cpuWordCounts computes the reference word counts by running the SAME
// mapper source on the CPU streaming path.
func cpuWordCounts(t *testing.T, input []byte) map[string]int64 {
	t.Helper()
	prog, err := minic.ParseAndCheck(wcMapSrc)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	m := interp.New(prog, interp.Options{Stdin: bytes.NewReader(input), Stdout: &out})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if line == "" {
			continue
		}
		p, err := kv.ParsePair(kv.Bytes, kv.Int, line)
		if err != nil {
			t.Fatal(err)
		}
		counts[string(p.Key.B)] += p.Val.I
	}
	return counts
}

func devK40(t *testing.T) *gpu.Device {
	t.Helper()
	d, err := gpu.NewDevice(gpu.TeslaK40())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestKVStoreEmitAndCounts(t *testing.T) {
	schema := kv.Schema{KeyKind: kv.Bytes, ValKind: kv.Int, KeyLen: 16}
	s, err := NewKVStore(schema, 4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Emit(1, kv.StringValue(fmt.Sprintf("k%d", i)), kv.IntValue(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Count(1) != 5 || s.TotalCount() != 5 {
		t.Fatalf("counts = %d/%d", s.Count(1), s.TotalCount())
	}
	if s.Whitespace() != 4*8-5 {
		t.Fatalf("whitespace = %d", s.Whitespace())
	}
	if s.Remaining(1) != 3 {
		t.Fatalf("remaining = %d", s.Remaining(1))
	}
	p := s.SlotPair(1*8 + 2)
	if string(p.Key.B) != "k2" || p.Val.I != 2 {
		t.Fatalf("slot pair = %v", p)
	}
}

func TestKVStoreOverflow(t *testing.T) {
	schema := kv.Schema{KeyKind: kv.Int, ValKind: kv.Int}
	s, _ := NewKVStore(schema, 1, 2, 1)
	s.Emit(0, kv.IntValue(1), kv.IntValue(1))
	s.Emit(0, kv.IntValue(2), kv.IntValue(2))
	if _, err := s.Emit(0, kv.IntValue(3), kv.IntValue(3)); err != ErrStoreOverflow {
		t.Fatalf("err = %v, want ErrStoreOverflow", err)
	}
}

func TestKVStoreAggregatePartitions(t *testing.T) {
	schema := kv.Schema{KeyKind: kv.Bytes, ValKind: kv.Int, KeyLen: 8}
	s, _ := NewKVStore(schema, 3, 4, 4)
	words := []string{"aa", "bb", "cc", "dd", "ee", "ff"}
	for i, w := range words {
		if _, err := s.Emit(i%3, kv.StringValue(w), kv.IntValue(1)); err != nil {
			t.Fatal(err)
		}
	}
	parts := s.Aggregate()
	if len(parts) != 4 {
		t.Fatalf("partitions = %d", len(parts))
	}
	total := 0
	for p, slots := range parts {
		total += len(slots)
		for _, slot := range slots {
			pair := s.SlotPair(int(slot))
			if kv.Partition(pair.Key, 4) != p {
				t.Fatalf("slot %d in wrong partition", slot)
			}
		}
	}
	if total != len(words) {
		t.Fatalf("aggregated %d pairs, want %d", total, len(words))
	}
}

func TestSortPartitionOrdersByKey(t *testing.T) {
	schema := kv.Schema{KeyKind: kv.Bytes, ValKind: kv.Int, KeyLen: 8}
	s, _ := NewKVStore(schema, 2, 16, 1)
	words := []string{"pear", "apple", "fig", "date", "apple", "cherry"}
	for i, w := range words {
		if _, err := s.Emit(i%2, kv.StringValue(w), kv.IntValue(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	parts := s.Aggregate()
	s.SortPartition(parts[0])
	var got []string
	for _, slot := range parts[0] {
		got = append(got, string(s.SlotPair(int(slot)).Key.B))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("not sorted: %v", got)
	}
	if len(got) != len(words) {
		t.Fatalf("lost pairs: %v", got)
	}
}

func TestSortPartitionIntKeys(t *testing.T) {
	schema := kv.Schema{KeyKind: kv.Int, ValKind: kv.Int}
	s, _ := NewKVStore(schema, 1, 32, 1)
	vals := []int64{5, -3, 12, 0, -100, 7, 5}
	for _, v := range vals {
		if _, err := s.Emit(0, kv.IntValue(v), kv.IntValue(v)); err != nil {
			t.Fatal(err)
		}
	}
	parts := s.Aggregate()
	s.SortPartition(parts[0])
	var got []int64
	for _, slot := range parts[0] {
		got = append(got, s.SlotPair(int(slot)).Key.I)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("int keys not numerically sorted through byte encoding: %v", got)
	}
}

func TestLocateRecords(t *testing.T) {
	input := []byte("abc\ndefgh\n\nxy")
	recs := LocateRecords(input)
	want := []Record{{0, 4}, {4, 6}, {10, 1}, {11, 2}}
	if len(recs) != len(want) {
		t.Fatalf("records = %v", recs)
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("record %d = %v, want %v", i, recs[i], want[i])
		}
	}
	if LocateRecords(nil) != nil {
		t.Fatal("empty input should yield no records")
	}
}

func TestMapKernelMatchesCPUCounts(t *testing.T) {
	input := testInput(50)
	want := cpuWordCounts(t, input)

	dev := devK40(t)
	comp, err := compiler.Compile(wcMapSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTask(dev, comp, nil, input, TaskConfig{NumReducers: 4, Opts: AllOptimizations()})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, part := range res.Partitions {
		for _, p := range part {
			got[string(p.Key.B)] += p.Val.I
		}
	}
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d, want %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			t.Errorf("count[%q] = %d, want %d", w, got[w], c)
		}
	}
}

func TestMapPlusCombineMatchesCPUCounts(t *testing.T) {
	input := testInput(60)
	want := cpuWordCounts(t, input)

	dev := devK40(t)
	mapC := compiler.MustCompile(wcMapSrc)
	combC := compiler.MustCompile(wcCombineSrc)
	res, err := RunTask(dev, mapC, combC, input, TaskConfig{NumReducers: 4, Opts: AllOptimizations()})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	combined := 0
	for _, part := range res.Partitions {
		for _, p := range part {
			got[string(p.Key.B)] += p.Val.I
			combined++
		}
	}
	for w, c := range want {
		if got[w] != c {
			t.Errorf("count[%q] = %d, want %d", w, got[w], c)
		}
	}
	// The combiner must actually combine: fewer output pairs than inputs.
	if combined >= res.KVPairs {
		t.Errorf("combiner did not shrink data: %d out of %d in", combined, res.KVPairs)
	}
}

func TestCombinerOutputSortedWithinPartition(t *testing.T) {
	input := testInput(40)
	dev := devK40(t)
	mapC := compiler.MustCompile(wcMapSrc)
	combC := compiler.MustCompile(wcCombineSrc)
	res, err := RunTask(dev, mapC, combC, input, TaskConfig{NumReducers: 2, Opts: AllOptimizations()})
	if err != nil {
		t.Fatal(err)
	}
	// Each warp outputs sorted keys; across warps order is per-chunk, so
	// within a partition keys must be non-decreasing per contiguous run.
	// At minimum every partition's pairs must belong to that partition.
	for pi, part := range res.Partitions {
		for _, pr := range part {
			if kv.Partition(pr.Key, 2) != pi {
				t.Fatalf("pair %v landed in partition %d", pr, pi)
			}
		}
	}
}

func TestRecordStealingBalancesSkew(t *testing.T) {
	// Heavily skewed records, with several records per thread so dynamic
	// distribution has room to act: every 8th line is very long, and with
	// static round-robin the long lines pile onto the same lanes.
	var b bytes.Buffer
	for i := 0; i < 512; i++ {
		if i%8 == 0 {
			for j := 0; j < 30; j++ {
				b.WriteString("longword ")
			}
		} else {
			b.WriteString("x")
		}
		b.WriteByte('\n')
	}
	input := b.Bytes()
	dev := devK40(t)
	comp := compiler.MustCompile(wcMapSrc)

	runWith := func(steal bool) float64 {
		opts := AllOptimizations()
		opts.RecordStealing = steal
		res, err := RunTask(dev, comp, nil, input, TaskConfig{NumReducers: 2, Opts: opts})
		if err != nil {
			t.Fatal(err)
		}
		return res.Times.Map
	}
	static := runWith(false)
	stealing := runWith(true)
	if stealing >= static {
		t.Fatalf("record stealing (%.3g) not faster than static partitioning (%.3g) on skewed records", stealing, static)
	}
}

func TestStealingProducesSameCountsAsStatic(t *testing.T) {
	input := testInput(45)
	dev := devK40(t)
	comp := compiler.MustCompile(wcMapSrc)
	counts := func(steal bool) map[string]int64 {
		opts := AllOptimizations()
		opts.RecordStealing = steal
		res, err := RunTask(dev, comp, nil, input, TaskConfig{NumReducers: 3, Opts: opts})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int64{}
		for _, part := range res.Partitions {
			for _, p := range part {
				out[string(p.Key.B)] += p.Val.I
			}
		}
		return out
	}
	a, b := counts(true), counts(false)
	if len(a) != len(b) {
		t.Fatalf("distinct keys differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("count[%q]: stealing %d static %d", k, v, b[k])
		}
	}
}

func TestVectorizationSpeedsUpKernels(t *testing.T) {
	input := testInput(50)
	dev := devK40(t)
	mapC := compiler.MustCompile(wcMapSrc)
	combC := compiler.MustCompile(wcCombineSrc)
	run := func(opts Options) StageTimes {
		res, err := RunTask(dev, mapC, combC, input, TaskConfig{NumReducers: 2, Opts: opts})
		if err != nil {
			t.Fatal(err)
		}
		return res.Times
	}
	base := Baseline()
	base.Aggregation = true
	withVecMap := base
	withVecMap.VectorMap = true
	withVecComb := base
	withVecComb.VectorCombine = true

	t0 := run(base)
	tm := run(withVecMap)
	tc := run(withVecComb)
	if tm.Map >= t0.Map {
		t.Errorf("vectorized map (%.3g) not faster than baseline (%.3g)", tm.Map, t0.Map)
	}
	if tc.Combine >= t0.Combine {
		t.Errorf("vectorized combine (%.3g) not faster than baseline (%.3g)", tc.Combine, t0.Combine)
	}
}

func TestAggregationSpeedsUpSort(t *testing.T) {
	input := testInput(50)
	dev := devK40(t)
	comp := compiler.MustCompile(wcMapSrc)
	run := func(agg bool) float64 {
		opts := AllOptimizations()
		opts.Aggregation = agg
		res, err := RunTask(dev, comp, nil, input, TaskConfig{NumReducers: 2, Opts: opts})
		if err != nil {
			t.Fatal(err)
		}
		return res.Times.Sort
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Fatalf("aggregation did not speed up sort: %.3g vs %.3g", with, without)
	}
}

func TestMapOnlyTask(t *testing.T) {
	src := `
int main() {
	int id; double price;
	int read; char *line;
	size_t n = 1000;
	line = (char*) malloc(1000);
	#pragma mapreduce mapper key(id) value(price) kvpairs(1) blocks(2) threads(32)
	while ((read = getline(&line, &n, stdin)) != -1) {
		id = atoi(line);
		price = id * 1.5;
		printf("%d\t%f\n", id, price);
	}
	return 0;
}`
	var b bytes.Buffer
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "%d\n", i)
	}
	dev := devK40(t)
	comp := compiler.MustCompile(src)
	res, err := RunTask(dev, comp, nil, b.Bytes(), TaskConfig{NumReducers: 0, Opts: AllOptimizations()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MapOutput) != 20 {
		t.Fatalf("map-only output = %d pairs, want 20", len(res.MapOutput))
	}
	if res.Partitions != nil {
		t.Fatal("map-only task must not produce reducer partitions")
	}
	if res.Times.Sort != 0 || res.Times.Combine != 0 {
		t.Fatal("map-only task must skip sort and combine")
	}
	if res.Times.OutputWrite <= 0 {
		t.Fatal("map-only task must pay the HDFS write")
	}
	seen := map[int64]float64{}
	for _, p := range res.MapOutput {
		seen[p.Key.I] = p.Val.F
	}
	for i := int64(0); i < 20; i++ {
		if seen[i] != float64(i)*1.5 {
			t.Errorf("price[%d] = %v", i, seen[i])
		}
	}
}

func TestBreakdownStagesAllPositive(t *testing.T) {
	input := testInput(40)
	dev := devK40(t)
	mapC := compiler.MustCompile(wcMapSrc)
	combC := compiler.MustCompile(wcCombineSrc)
	res, err := RunTask(dev, mapC, combC, input, TaskConfig{
		NumReducers: 2, Opts: AllOptimizations(), InputReadTime: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Times
	for _, st := range tm.Stages() {
		if st.Time < 0 {
			t.Errorf("stage %s negative: %v", st.Name, st.Time)
		}
	}
	for _, st := range []struct {
		name string
		v    float64
	}{
		{"input read", tm.InputRead}, {"input copy", tm.InputCopy},
		{"record count", tm.RecordCount}, {"map", tm.Map},
		{"sort", tm.Sort}, {"combine", tm.Combine}, {"output write", tm.OutputWrite},
	} {
		if st.v <= 0 {
			t.Errorf("stage %s should be positive, got %v", st.name, st.v)
		}
	}
	if total := tm.Total(); total <= tm.Map {
		t.Errorf("total %v must exceed map alone %v", total, tm.Map)
	}
}

func TestTaskDeterministic(t *testing.T) {
	input := testInput(30)
	dev := devK40(t)
	mapC := compiler.MustCompile(wcMapSrc)
	combC := compiler.MustCompile(wcCombineSrc)
	run := func() (float64, int) {
		res, err := RunTask(dev, mapC, combC, input, TaskConfig{NumReducers: 4, Opts: AllOptimizations()})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, p := range res.Partitions {
			n += len(p)
		}
		return res.Total(), n
	}
	t1, n1 := run()
	t2, n2 := run()
	if t1 != t2 || n1 != n2 {
		t.Fatalf("nondeterministic task: (%v,%d) vs (%v,%d)", t1, n1, t2, n2)
	}
}

func TestStoreSlotsPerThread(t *testing.T) {
	// Exact sizing with a kvpairs clause leaves stealing headroom.
	per := storeSlotsPerThread(1000, 4, 128, true)
	if per < 2*(1000*4/128) {
		t.Fatalf("exact sizing too small: %d", per)
	}
	// Unknown emission over-allocates.
	loose := storeSlotsPerThread(1000, 32, 128, false)
	if loose <= per {
		t.Fatalf("over-allocation (%d) should exceed exact sizing (%d)", loose, per)
	}
	if storeSlotsPerThread(0, 4, 128, true) < 4 {
		t.Fatal("degenerate record count must still hold one record's pairs")
	}
}

func TestRunTaskValidation(t *testing.T) {
	dev := devK40(t)
	if _, err := RunTask(dev, nil, nil, nil, TaskConfig{}); err == nil {
		t.Fatal("nil mapper accepted")
	}
	combC := compiler.MustCompile(wcCombineSrc)
	if _, err := RunTask(dev, combC, nil, nil, TaskConfig{}); err == nil {
		t.Fatal("combiner-as-mapper accepted")
	}
	mapC := compiler.MustCompile(wcMapSrc)
	if _, err := RunTask(dev, mapC, mapC, testInput(5), TaskConfig{NumReducers: 2}); err == nil {
		t.Fatal("mapper-as-combiner accepted")
	}
}
