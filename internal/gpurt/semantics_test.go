package gpurt

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/compiler"
	"repro/internal/kv"
	"repro/internal/streaming"
)

// TestCombinerRelaxedEquivalenceExample reproduces the paper's §4.2
// worked example: a partition receives <a,1>, <a,1>, <b,1>. A CPU
// combiner outputs <a,2>, <b,1>; two GPU warps splitting the partition
// may output <a,1>, <a,1>, <b,1> or <a,2>, <b,1> depending on where the
// chunk boundary falls — functional equivalence is traded for
// parallelism, and the reducer restores it.
func TestCombinerRelaxedEquivalenceExample(t *testing.T) {
	dev := devK40(t)
	combC := compiler.MustCompile(wcCombineSrc)

	schema := kv.Schema{KeyKind: kv.Bytes, ValKind: kv.Int, KeyLen: 30}
	store, err := NewKVStore(schema, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []kv.Pair{
		{Key: kv.StringValue("a"), Val: kv.IntValue(1)},
		{Key: kv.StringValue("a"), Val: kv.IntValue(1)},
		{Key: kv.StringValue("b"), Val: kv.IntValue(1)},
	} {
		if _, err := store.Emit(0, p.Key, p.Val); err != nil {
			t.Fatal(err)
		}
	}
	partitions := store.Aggregate()
	store.SortPartition(partitions[0])

	cap, err := captureHost(combC, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecCombineKernels(dev, combC, cap, store, partitions, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Partitions[0]

	// The combined output must (1) be no larger than the input, (2) sum to
	// the same totals per key, and (3) possibly contain split runs — the
	// relaxed part.
	if len(out) > 3 {
		t.Fatalf("combiner grew the data: %v", out)
	}
	sums := map[string]int64{}
	for _, p := range out {
		sums[string(p.Key.B)] += p.Val.I
	}
	if sums["a"] != 2 || sums["b"] != 1 {
		t.Fatalf("totals wrong after combine: %v", sums)
	}

	// The reducer (CPU merge + reduce filter) must restore the exact
	// canonical result regardless of how the warps split the run.
	reduceF := streaming.MustFilter("wc-reduce", wcReduceForTest)
	final, _, err := streaming.RunReduce(reduceF, schema, [][]kv.Pair{out}, streaming.XeonE52680())
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 2 {
		t.Fatalf("reduce output = %v", final)
	}
	got := map[string]int64{}
	for _, p := range final {
		got[string(p.Key.B)] = p.Val.I
	}
	if got["a"] != 2 || got["b"] != 1 {
		t.Fatalf("reduce failed to restore equivalence: %v", got)
	}
}

const wcReduceForTest = `
int main() {
	char word[30], prevWord[30];
	prevWord[0] = '\0';
	int count, val, read;
	count = 0;
	while ((read = scanf("%s %d", word, &val)) == 2) {
		if (strcmp(word, prevWord) == 0) {
			count += val;
		} else {
			if (prevWord[0] != '\0')
				printf("%s\t%d\n", prevWord, count);
			strcpy(prevWord, word);
			count = val;
		}
	}
	if (prevWord[0] != '\0')
		printf("%s\t%d\n", prevWord, count);
	return 0;
}`

// TestWarpChunkingSplitsKeyRuns forces a key run across a warp boundary
// and verifies the partial-combine shape directly: more output pairs than
// distinct keys, with per-key sums intact.
func TestWarpChunkingSplitsKeyRuns(t *testing.T) {
	dev := devK40(t)
	combC := compiler.MustCompile(wcCombineSrc)
	schema := kv.Schema{KeyKind: kv.Bytes, ValKind: kv.Int, KeyLen: 30}

	// 200 pairs of the same key: with many warps, the run must split.
	store, err := NewKVStore(schema, 4, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := store.Emit(i%4, kv.StringValue("same"), kv.IntValue(1)); err != nil {
			t.Fatal(err)
		}
	}
	partitions := store.Aggregate()
	store.SortPartition(partitions[0])
	cap, err := captureHost(combC, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecCombineKernels(dev, combC, cap, store, partitions, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Partitions[0]
	if len(out) < 2 {
		t.Fatalf("expected a partial combine across warps, got %d pairs", len(out))
	}
	var sum int64
	for _, p := range out {
		if string(p.Key.B) != "same" {
			t.Fatalf("alien key %q", p.Key.B)
		}
		sum += p.Val.I
	}
	if sum != 200 {
		t.Fatalf("sum = %d, want 200", sum)
	}
	if res.Warps < 2 {
		t.Fatalf("only %d warps ran; chunking not exercised", res.Warps)
	}
}

// TestIndirectionSortNeverMovesData is the §5.3 invariant: sorting
// permutes only the index array; the serialized KV bytes stay put.
func TestIndirectionSortNeverMovesData(t *testing.T) {
	schema := kv.Schema{KeyKind: kv.Bytes, ValKind: kv.Int, KeyLen: 16}
	store, err := NewKVStore(schema, 2, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"pear", "apple", "zebra", "fig", "mango", "kiwi"}
	for i, w := range words {
		if _, err := store.Emit(i%2, kv.StringValue(w), kv.IntValue(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	before := snapshotStore(store)
	parts := store.Aggregate()
	store.SortPartition(parts[0])
	after := snapshotStore(store)
	if !bytes.Equal(before, after) {
		t.Fatal("sort moved KV data; the indirection design forbids that")
	}
}

func snapshotStore(s *KVStore) []byte {
	var b bytes.Buffer
	for slot := 0; slot < s.TotalSlots(); slot++ {
		b.Write(s.SlotKeyBytes(slot))
	}
	return b.Bytes()
}

// TestEmissionOrderStableAcrossOptimizationSets: every optimization set
// must produce the same multiset of pairs (cost model changes must never
// leak into semantics).
func TestEmissionOrderStableAcrossOptimizationSets(t *testing.T) {
	dev := devK40(t)
	mapC := compiler.MustCompile(wcMapSrc)
	combC := compiler.MustCompile(wcCombineSrc)
	input := testInput(35)
	variants := []Options{
		Baseline(),
		AllOptimizations(),
		{UseTexture: true},
		{VectorMap: true, VectorCombine: true},
		{RecordStealing: true, Aggregation: true},
	}
	var ref map[string]int64
	for i, opts := range variants {
		res, err := RunTask(dev, mapC, combC, input, TaskConfig{NumReducers: 3, Opts: opts})
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		got := map[string]int64{}
		for _, part := range res.Partitions {
			for _, p := range part {
				got[string(p.Key.B)] += p.Val.I
			}
		}
		if i == 0 {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("variant %d: key count %d != %d", i, len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Errorf("variant %d: count[%q] = %d, want %d", i, k, got[k], v)
			}
		}
	}
	_ = fmt.Sprint(ref)
}
