package gpurt

import (
	"fmt"
	"io"

	"repro/internal/compiler"
	"repro/internal/gpu"
	"repro/internal/kv"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/seqfile"
)

// StageTimes is the per-stage execution-time breakdown of one GPU task,
// matching the stages of the paper's Figure 6.
type StageTimes struct {
	InputRead   float64 // HDFS fileSplit fetch (supplied by the caller)
	InputCopy   float64 // host -> device PCIe copy
	RecordCount float64 // record locator kernel
	Map         float64 // map kernel
	Aggregate   float64 // KV-pair compaction scan
	Sort        float64 // per-partition indirection merge sort
	Combine     float64 // per-partition combine kernels
	OutputWrite float64 // format + checksum + local disk / HDFS write
}

// Total sums all stages.
func (s StageTimes) Total() float64 {
	return s.InputRead + s.InputCopy + s.RecordCount + s.Map + s.Aggregate +
		s.Sort + s.Combine + s.OutputWrite
}

// Stages returns labeled stage durations in Figure-6 order.
func (s StageTimes) Stages() []struct {
	Name string
	Time float64
} {
	return []struct {
		Name string
		Time float64
	}{
		{"input read", s.InputRead},
		{"input copy", s.InputCopy},
		{"record count", s.RecordCount},
		{"map", s.Map},
		{"aggregate", s.Aggregate},
		{"sort", s.Sort},
		{"combine", s.Combine},
		{"output write", s.OutputWrite},
	}
}

// TaskConfig parameterizes one GPU map+combine task.
type TaskConfig struct {
	// NumReducers is the job's reduce-task count; 0 means a map-only job
	// whose output goes straight to HDFS.
	NumReducers int
	// Opts selects the optimization set.
	Opts Options
	// InputReadTime is the HDFS read time computed by the caller's storage
	// model (locality-dependent); it lands in the breakdown unchanged.
	InputReadTime float64
	// DiskWriteGBs is the local-disk (or memory-fs) write bandwidth for
	// intermediate output; HDFSWriteGBs covers map-only final output
	// (replication included). Zero selects defaults.
	DiskWriteGBs float64
	HDFSWriteGBs float64
	// AssumedKVPerRecord stands in for "allocate all free GPU memory" when
	// the kvpairs clause is absent: the store is over-provisioned at this
	// many slots per record. Zero selects the default (32).
	AssumedKVPerRecord int
	// ChecksumGBs is the effective throughput of Hadoop-format framing +
	// CRC computation on the host CPU. Zero selects the default.
	ChecksumGBs float64
}

func (c *TaskConfig) fillDefaults() {
	if c.DiskWriteGBs == 0 {
		c.DiskWriteGBs = 0.25
	}
	if c.HDFSWriteGBs == 0 {
		c.HDFSWriteGBs = 0.12 // replicated pipeline write
	}
	if c.AssumedKVPerRecord == 0 {
		c.AssumedKVPerRecord = 32
	}
	if c.ChecksumGBs == 0 {
		c.ChecksumGBs = 0.8
	}
}

// TaskResult is a completed GPU task: its functional output and timing.
type TaskResult struct {
	// Partitions holds combined (or, without a combiner, sorted map) KV
	// pairs per reducer partition. Nil for map-only jobs.
	Partitions [][]kv.Pair
	// MapOutput holds the raw pairs of a map-only job, in slot order.
	MapOutput []kv.Pair
	Times     StageTimes
	Records   int
	KVPairs   int
	// Whitespace is the unused slot count the aggregation step removed.
	Whitespace int
	Steals     int64
	// OutputBytes is the serialized output size.
	OutputBytes int64
	// Profiles holds one KernelProfile per kernel launch group
	// (record-count, map, aggregate, sort, combine), in launch order.
	Profiles []obs.KernelProfile
}

// Total returns the end-to-end task time.
func (r *TaskResult) Total() float64 { return r.Times.Total() }

// RunTask executes one HeteroDoop GPU task over an input fileSplit,
// following the host flow of the paper's Figure 1:
//
//	copy input -> count records -> allocate KV store -> map kernel ->
//	aggregate -> (sort -> combine) per partition -> write output.
//
// mapC is required; combineC may be nil (jobs without a combiner sort the
// map output and ship it as-is; map-only jobs skip sort entirely).
func RunTask(dev *gpu.Device, mapC, combineC *compiler.Compiled, input []byte, cfg TaskConfig) (*TaskResult, error) {
	cfg.fillDefaults()
	if mapC == nil || mapC.Kernel == nil || mapC.Kernel.Kind != compiler.RegionMapper {
		return nil, fmt.Errorf("gpurt: RunTask needs a compiled mapper")
	}
	if combineC != nil && combineC.Kernel.Kind != compiler.RegionCombiner {
		return nil, fmt.Errorf("gpurt: combineC is not a combiner")
	}
	res := &TaskResult{}
	res.Times.InputRead = cfg.InputReadTime

	// 1. Copy the fileSplit into device memory.
	res.Times.InputCopy = dev.Config.TransferTime(int64(len(input)))

	// 2. Record-locator kernel: one streaming pass over the input.
	records := LocateRecords(input)
	res.Records = len(records)
	res.Times.RecordCount = dev.StreamKernelTime(int64(len(input)), 1)
	res.Profiles = append(res.Profiles, obs.KernelProfile{Kernel: "record-count", Seconds: res.Times.RecordCount})

	// 3. Allocate the global KV store.
	spec := mapC.Kernel
	numThreads := spec.Blocks * spec.Threads
	perRecord := spec.KVPairs
	if perRecord <= 0 {
		perRecord = cfg.AssumedKVPerRecord
	}
	slotsPerThread := storeSlotsPerThread(len(records), perRecord, numThreads, spec.KVPairs > 0)
	numReducers := cfg.NumReducers
	store, err := NewKVStore(mapC.Schema, numThreads, slotsPerThread, numReducers)
	if err != nil {
		return nil, &AbortError{Kernel: "map", Cause: err}
	}
	if store.StoreBytes()+int64(len(input)) > dev.Config.GlobalMemBytes {
		return nil, fmt.Errorf("gpurt: KV store (%d MB) + input exceed device memory", store.StoreBytes()>>20)
	}

	// 4. Run the host program to its launch point, then the map kernel.
	prof := cfg.Opts.Prof
	endHost := prof.Phase(perf.PhaseGPUHost)
	hcol := prof.Collector(perf.PhaseGPUHost)
	cap, err := captureHostCol(mapC, io.Discard, hcol)
	hcol.Flush()
	endHost()
	if err != nil {
		return nil, err
	}
	endMap := prof.Phase(perf.PhaseGPUMap)
	mres, err := ExecMapKernel(dev, mapC, cap, input, records, store, cfg.Opts)
	endMap()
	if err != nil {
		return nil, &AbortError{Kernel: "map", Cause: err}
	}
	res.Times.Map = mres.Time
	res.Steals = mres.Steals
	res.KVPairs = store.TotalCount()
	res.Whitespace = store.Whitespace()
	res.Profiles = append(res.Profiles, obs.KernelProfile{
		Kernel:        "map",
		Seconds:       mres.Time,
		Blocks:        len(mres.BlockCycles),
		Occupancy:     mres.Occupancy,
		StragglerSkew: mres.StragglerSkew,
		Steals:        mres.Steals,
		Cycles:        spaceCycles(mres.Breakdown),
	})

	// Map-only job: write output straight to HDFS.
	if cfg.NumReducers <= 0 {
		endOut := prof.Phase(perf.PhaseGPUOutput)
		for _, slots := range store.Aggregate() {
			for _, s := range slots {
				res.MapOutput = append(res.MapOutput, store.SlotPair(int(s)))
			}
		}
		res.OutputBytes = textBytes(res.MapOutput)
		endOut()
		res.Times.OutputWrite = writeTime(res.OutputBytes, cfg.ChecksumGBs, cfg.HDFSWriteGBs)
		return res, nil
	}

	// 5. Aggregate: compact whitespace out of the indirection array.
	endSortPhase := prof.Phase(perf.PhaseGPUSort)
	partitions := store.Aggregate()
	sortSizes := make([]int, len(partitions))
	for p := range partitions {
		sortSizes[p] = len(partitions[p])
	}
	if cfg.Opts.Aggregation {
		res.Times.Aggregate = dev.ScanTime(numThreads, 4) +
			dev.StreamKernelTime(int64(store.TotalCount())*4, 2)
		res.Profiles = append(res.Profiles, obs.KernelProfile{Kernel: "aggregate", Seconds: res.Times.Aggregate})
	} else {
		// Without compaction the sort must process each partition's share
		// of the whitespace-laden store region. At our scaled split sizes
		// the thread count can exceed the record count, which would
		// inflate whitespace beyond anything the real system sees; the
		// modeled inflation is capped at 6x the live pairs (the paper's
		// observed aggregation gains top out at 7.6x, Fig. 7e).
		ws := store.Whitespace()
		if cap := 6 * store.TotalCount(); ws > cap {
			ws = cap
		}
		share := ws / len(partitions)
		for p := range sortSizes {
			sortSizes[p] += share
		}
	}

	// 6. Sort each partition (indirection-based merge sort) and
	// 7. run the combine kernel on it.
	keyBytes := mapC.Schema.SlotKeyLen()
	for p, slots := range partitions {
		store.SortPartition(slots)
		res.Times.Sort += dev.SortTime(sortSizes[p], keyBytes, cfg.Opts.VectorMap)
	}
	endSortPhase()
	res.Profiles = append(res.Profiles, obs.KernelProfile{Kernel: "sort", Seconds: res.Times.Sort})
	if combineC != nil {
		endCHost := prof.Phase(perf.PhaseGPUHost)
		ccol := prof.Collector(perf.PhaseGPUHost)
		ccap, err := captureHostCol(combineC, io.Discard, ccol)
		ccol.Flush()
		endCHost()
		if err != nil {
			return nil, err
		}
		endCombine := prof.Phase(perf.PhaseGPUCombine)
		cres, err := ExecCombineKernels(dev, combineC, ccap, store, partitions, cfg.Opts)
		endCombine()
		if err != nil {
			return nil, &AbortError{Kernel: "combine", Cause: err}
		}
		res.Partitions = cres.Partitions
		res.Times.Combine = cres.Time
		res.Profiles = append(res.Profiles, obs.KernelProfile{
			Kernel:        "combine",
			Seconds:       cres.Time,
			Blocks:        cres.Blocks,
			Occupancy:     cres.Occupancy,
			StragglerSkew: cres.StragglerSkew,
			Cycles:        spaceCycles(cres.Breakdown),
		})
	} else {
		res.Partitions = make([][]kv.Pair, len(partitions))
		for p, slots := range partitions {
			for _, s := range slots {
				res.Partitions[p] = append(res.Partitions[p], store.SlotPair(int(s)))
			}
		}
	}

	// 8. Write the intermediate output to local disk in Hadoop binary
	// format (the seqfile container: length-prefixed records with CRC32
	// checksums). The serialization really runs — the byte count and
	// checksum work in the timing model are those of the actual container.
	endOut := prof.Phase(perf.PhaseGPUOutput)
	outBytes, err := serializeOutput(res.Partitions, combineSchema(mapC, combineC))
	endOut()
	if err != nil {
		return nil, err
	}
	res.OutputBytes = outBytes
	res.Times.OutputWrite = writeTime(outBytes, cfg.ChecksumGBs, cfg.DiskWriteGBs)
	return res, nil
}

// serializeOutput encodes each partition through the seqfile writer and
// returns the total container size.
func serializeOutput(partitions [][]kv.Pair, schema kv.Schema) (int64, error) {
	var total int64
	for _, part := range partitions {
		var counter countingWriter
		w, err := seqfile.NewWriter(&counter, schema)
		if err != nil {
			return 0, err
		}
		for _, p := range part {
			if err := w.Append(p); err != nil {
				return 0, err
			}
		}
		if err := w.Close(); err != nil {
			return 0, err
		}
		total += counter.n
	}
	return total, nil
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// storeSlotsPerThread sizes each thread's KV store portion. With a kvpairs
// clause the bound is exact (records * kvpairs spread over threads, padded
// for stealing skew); without one, the paper allocates all free device
// memory — modeled as a generous per-record over-allocation.
func storeSlotsPerThread(records, perRecord, numThreads int, exact bool) int {
	if records < 1 {
		records = 1
	}
	total := records * perRecord
	per := (total + numThreads - 1) / numThreads
	if exact {
		// Stealing lets one thread process more than records/threads;
		// pad 2x plus one record's worth.
		per = 2*per + perRecord
	} else {
		per = 2 * per
	}
	if per < perRecord {
		per = perRecord
	}
	return per
}

// textBytes is the size of pairs rendered as text lines (map-only HDFS
// output).
func textBytes(pairs []kv.Pair) int64 {
	var n int64
	for _, p := range pairs {
		n += int64(len(p.Text())) + 1
	}
	return n
}

func combineSchema(mapC, combineC *compiler.Compiled) kv.Schema {
	if combineC != nil {
		return combineC.Schema
	}
	return mapC.Schema
}

// writeTime models output writing: Hadoop-format framing + CRC on the CPU
// followed by the device->host copy-back and the disk write, which overlap
// poorly in Hadoop 1.x and are modeled additively.
func writeTime(bytes int64, checksumGBs, diskGBs float64) float64 {
	return float64(bytes)/(checksumGBs*1e9) + float64(bytes)/(diskGBs*1e9)
}
