// Package hdfs simulates the Hadoop Distributed File System as HeteroDoop
// uses it: files are stored as replicated blocks on datanodes, map tasks
// read one fileSplit each (with line-boundary adjustment exactly like
// Hadoop's LineRecordReader), and read/write times follow a
// locality-aware bandwidth model. Data is held in memory; times are
// computed, never measured.
package hdfs

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Config describes the simulated HDFS deployment (Table 3 rows: block
// size, replication factor) plus the storage/network bandwidth model.
type Config struct {
	// BlockSize is the fileSplit size in bytes (the paper uses 256 MB; the
	// scaled-down experiments use smaller blocks, recorded in
	// EXPERIMENTS.md).
	BlockSize int64
	// Replication is the block replica count (3 on Cluster1, 1 on
	// Cluster2).
	Replication int
	// DataNodes is the number of slave nodes storing blocks.
	DataNodes int
	// DiskReadGBs / DiskWriteGBs are per-node storage bandwidths. For
	// Cluster2 ("no disks") these are memory-filesystem speeds.
	DiskReadGBs  float64
	DiskWriteGBs float64
	// NetworkGBs is the per-flow network bandwidth (InfiniBand).
	NetworkGBs float64
	// SeekMS is the fixed per-read positioning cost in milliseconds.
	SeekMS float64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.BlockSize <= 0 || c.Replication <= 0 || c.DataNodes <= 0 {
		return fmt.Errorf("hdfs: invalid config: block=%d repl=%d nodes=%d", c.BlockSize, c.Replication, c.DataNodes)
	}
	if c.Replication > c.DataNodes {
		return fmt.Errorf("hdfs: replication %d exceeds datanodes %d", c.Replication, c.DataNodes)
	}
	if c.DiskReadGBs <= 0 || c.DiskWriteGBs <= 0 || c.NetworkGBs <= 0 {
		return fmt.Errorf("hdfs: bandwidths must be positive")
	}
	return nil
}

// Split is one fileSplit: the unit a map task processes.
type Split struct {
	Path   string
	Index  int
	Offset int64
	Length int64
	// Locations are the datanode ids holding the split's block.
	Locations []int
}

type file struct {
	data   []byte
	blocks []blockMeta
}

type blockMeta struct {
	offset   int64
	length   int64
	replicas []int
}

// FS is a simulated HDFS namespace (namenode + datanodes).
type FS struct {
	cfg   Config
	files map[string]*file
	rng   *sim.RNG
	next  int // round-robin primary placement cursor
}

// New builds an empty filesystem. Placement decisions are deterministic
// for a given seed.
func New(cfg Config, seed uint64) (*FS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FS{cfg: cfg, files: map[string]*file{}, rng: sim.NewRNG(seed)}, nil
}

// Config returns the deployment configuration.
func (fs *FS) Config() Config { return fs.cfg }

// Write stores data at path, splitting it into blocks and placing
// replicas: the primary replica rotates round-robin across datanodes and
// the remaining replicas go to distinct pseudo-random nodes, approximating
// Hadoop's placement (no rack topology).
func (fs *FS) Write(path string, data []byte) error {
	if _, exists := fs.files[path]; exists {
		return fmt.Errorf("hdfs: path %q already exists", path)
	}
	f := &file{data: append([]byte(nil), data...)}
	for off := int64(0); off < int64(len(data)) || (off == 0 && len(data) == 0); off += fs.cfg.BlockSize {
		length := fs.cfg.BlockSize
		if off+length > int64(len(data)) {
			length = int64(len(data)) - off
		}
		replicas := fs.placeReplicas()
		f.blocks = append(f.blocks, blockMeta{offset: off, length: length, replicas: replicas})
		if len(data) == 0 {
			break
		}
	}
	fs.files[path] = f
	return nil
}

func (fs *FS) placeReplicas() []int {
	primary := fs.next % fs.cfg.DataNodes
	fs.next++
	replicas := []int{primary}
	used := map[int]bool{primary: true}
	for len(replicas) < fs.cfg.Replication {
		n := fs.rng.Intn(fs.cfg.DataNodes)
		if !used[n] {
			used[n] = true
			replicas = append(replicas, n)
		}
	}
	sort.Ints(replicas[1:])
	return replicas
}

// Exists reports whether path is stored.
func (fs *FS) Exists(path string) bool {
	_, ok := fs.files[path]
	return ok
}

// Delete removes a path (no-op if absent).
func (fs *FS) Delete(path string) { delete(fs.files, path) }

// Size returns a file's byte length.
func (fs *FS) Size(path string) (int64, error) {
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("hdfs: no such file %q", path)
	}
	return int64(len(f.data)), nil
}

// ReadAll returns a file's full contents.
func (fs *FS) ReadAll(path string) ([]byte, error) {
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("hdfs: no such file %q", path)
	}
	return append([]byte(nil), f.data...), nil
}

// FileSplits lists the fileSplits of a path, one per block.
func (fs *FS) FileSplits(path string) ([]Split, error) {
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("hdfs: no such file %q", path)
	}
	splits := make([]Split, len(f.blocks))
	for i, b := range f.blocks {
		splits[i] = Split{
			Path: path, Index: i, Offset: b.offset, Length: b.length,
			Locations: append([]int(nil), b.replicas...),
		}
	}
	return splits, nil
}

// ReadSplit returns the records of a split with Hadoop LineRecordReader
// semantics: a split that does not start at offset 0 skips the partial
// first line (it belongs to the previous split), and every split reads
// past its end to finish its last line.
func (fs *FS) ReadSplit(sp Split) ([]byte, error) {
	f, ok := fs.files[sp.Path]
	if !ok {
		return nil, fmt.Errorf("hdfs: no such file %q", sp.Path)
	}
	data := f.data
	start := sp.Offset
	if start > 0 {
		// Skip to just past the first newline at or after start-1.
		i := start - 1
		for i < int64(len(data)) && data[i] != '\n' {
			i++
		}
		start = i + 1
	}
	end := sp.Offset + sp.Length
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	// Extend to the end of the record straddling the boundary.
	for end < int64(len(data)) && data[end-1] != '\n' {
		end++
	}
	if start >= end {
		return nil, nil
	}
	return append([]byte(nil), data[start:end]...), nil
}

// IsLocal reports whether node holds a replica of the split.
func (sp Split) IsLocal(node int) bool {
	for _, n := range sp.Locations {
		if n == node {
			return true
		}
	}
	return false
}

// ReadTime models fetching a split from the given node: a local read pays
// disk bandwidth only; a remote read pays the serving node's disk plus a
// network hop (the streamed fetch pipelines imperfectly) and an extra
// request round trip.
func (fs *FS) ReadTime(sp Split, node int) float64 {
	seek := fs.cfg.SeekMS / 1000
	bytes := float64(sp.Length)
	disk := bytes / (fs.cfg.DiskReadGBs * 1e9)
	if sp.IsLocal(node) {
		return seek + disk
	}
	net := bytes / (fs.cfg.NetworkGBs * 1e9)
	return 2*seek + disk + net
}

// WriteTime models writing n bytes with pipeline replication: the writer
// streams at disk speed while each extra replica adds a network hop that
// overlaps all but a fraction of the transfer.
func (fs *FS) WriteTime(n int64) float64 {
	bytes := float64(n)
	t := bytes / (fs.cfg.DiskWriteGBs * 1e9)
	extra := bytes / (fs.cfg.NetworkGBs * 1e9) * 0.25
	return t + float64(fs.cfg.Replication-1)*extra
}
