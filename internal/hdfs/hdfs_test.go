package hdfs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func testFS(t *testing.T, blockSize int64, repl, nodes int) *FS {
	t.Helper()
	fs, err := New(Config{
		BlockSize: blockSize, Replication: repl, DataNodes: nodes,
		DiskReadGBs: 0.5, DiskWriteGBs: 0.25, NetworkGBs: 2.0, SeekMS: 5,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{BlockSize: 0, Replication: 1, DataNodes: 1, DiskReadGBs: 1, DiskWriteGBs: 1, NetworkGBs: 1},
		{BlockSize: 64, Replication: 5, DataNodes: 3, DiskReadGBs: 1, DiskWriteGBs: 1, NetworkGBs: 1},
		{BlockSize: 64, Replication: 1, DataNodes: 3},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestWriteAndReadAll(t *testing.T) {
	fs := testFS(t, 64, 3, 8)
	data := []byte(strings.Repeat("hello world line\n", 100))
	if err := fs.Write("/data/input", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("/data/input")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data round trip failed")
	}
	size, _ := fs.Size("/data/input")
	if size != int64(len(data)) {
		t.Fatalf("size = %d", size)
	}
	if !fs.Exists("/data/input") || fs.Exists("/nope") {
		t.Fatal("Exists wrong")
	}
}

func TestDoubleWriteRejected(t *testing.T) {
	fs := testFS(t, 64, 1, 2)
	fs.Write("/a", []byte("x"))
	if err := fs.Write("/a", []byte("y")); err == nil {
		t.Fatal("double write accepted")
	}
}

func TestDelete(t *testing.T) {
	fs := testFS(t, 64, 1, 2)
	fs.Write("/a", []byte("x"))
	fs.Delete("/a")
	if fs.Exists("/a") {
		t.Fatal("delete failed")
	}
}

func TestSplitCountAndSizes(t *testing.T) {
	fs := testFS(t, 100, 2, 4)
	data := make([]byte, 350)
	fs.Write("/f", data)
	splits, err := fs.FileSplits("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 4 {
		t.Fatalf("splits = %d, want 4", len(splits))
	}
	var total int64
	for i, sp := range splits {
		total += sp.Length
		if len(sp.Locations) != 2 {
			t.Errorf("split %d has %d replicas", i, len(sp.Locations))
		}
		if sp.Index != i {
			t.Errorf("split %d index = %d", i, sp.Index)
		}
	}
	if total != 350 {
		t.Fatalf("split lengths sum to %d", total)
	}
	if splits[3].Length != 50 {
		t.Fatalf("last split length = %d", splits[3].Length)
	}
}

func TestReplicaPlacementDistinctAndSpread(t *testing.T) {
	fs := testFS(t, 10, 3, 8)
	data := make([]byte, 800) // 80 blocks
	fs.Write("/f", data)
	splits, _ := fs.FileSplits("/f")
	primaries := map[int]int{}
	for _, sp := range splits {
		seen := map[int]bool{}
		for _, n := range sp.Locations {
			if n < 0 || n >= 8 {
				t.Fatalf("replica on bogus node %d", n)
			}
			if seen[n] {
				t.Fatalf("duplicate replica node %d in %v", n, sp.Locations)
			}
			seen[n] = true
		}
		primaries[sp.Locations[0]]++
	}
	// Round-robin primaries: all 8 nodes used.
	if len(primaries) != 8 {
		t.Fatalf("primaries on %d nodes, want 8", len(primaries))
	}
}

func TestReadSplitLineBoundaries(t *testing.T) {
	fs := testFS(t, 10, 1, 2)
	// Lines of 7 bytes: "line-N\n"; block size 10 cuts mid-line.
	var b bytes.Buffer
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&b, "line-%d\n", i)
	}
	data := b.Bytes()
	fs.Write("/lines", data)
	splits, _ := fs.FileSplits("/lines")

	var reassembled []byte
	totalLines := 0
	for _, sp := range splits {
		part, err := fs.ReadSplit(sp)
		if err != nil {
			t.Fatal(err)
		}
		// Every split's content must be whole lines.
		if len(part) > 0 && part[len(part)-1] != '\n' {
			t.Fatalf("split %d does not end at a line boundary: %q", sp.Index, part)
		}
		for _, line := range strings.Split(strings.TrimRight(string(part), "\n"), "\n") {
			if line == "" {
				continue
			}
			if !strings.HasPrefix(line, "line-") {
				t.Fatalf("split %d yielded partial line %q", sp.Index, line)
			}
			totalLines++
		}
		reassembled = append(reassembled, part...)
	}
	if totalLines != 10 {
		t.Fatalf("total lines = %d, want 10 (no loss, no duplication)", totalLines)
	}
	if !bytes.Equal(reassembled, data) {
		t.Fatal("splits do not reassemble the file")
	}
}

func TestReadSplitPropertyNoLossNoDup(t *testing.T) {
	if err := quick.Check(func(seed uint8, nLines uint8) bool {
		fs := testFS(t, 37, 1, 3)
		var b bytes.Buffer
		n := int(nLines%50) + 1
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "r%d-%s\n", i, strings.Repeat("x", int(seed)%20))
		}
		fs.Write("/f", b.Bytes())
		splits, _ := fs.FileSplits("/f")
		var all []byte
		for _, sp := range splits {
			part, err := fs.ReadSplit(sp)
			if err != nil {
				return false
			}
			all = append(all, part...)
		}
		return bytes.Equal(all, b.Bytes())
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalReadFasterThanRemote(t *testing.T) {
	fs := testFS(t, 1<<20, 1, 4)
	data := make([]byte, 1<<20)
	fs.Write("/f", data)
	splits, _ := fs.FileSplits("/f")
	sp := splits[0]
	local := sp.Locations[0]
	remote := (local + 1) % 4
	if fs.ReadTime(sp, local) >= fs.ReadTime(sp, remote) {
		t.Fatalf("local read (%v) not faster than remote (%v)",
			fs.ReadTime(sp, local), fs.ReadTime(sp, remote))
	}
}

func TestReplicationMakesWritesSlower(t *testing.T) {
	fs1 := testFS(t, 1<<20, 1, 4)
	fs3 := testFS(t, 1<<20, 3, 4)
	if fs3.WriteTime(1<<20) <= fs1.WriteTime(1<<20) {
		t.Fatal("replication-3 write not slower than replication-1")
	}
}

func TestPlacementDeterministic(t *testing.T) {
	build := func() []Split {
		fs := testFS(t, 10, 2, 6)
		fs.Write("/f", make([]byte, 200))
		s, _ := fs.FileSplits("/f")
		return s
	}
	a, b := build(), build()
	for i := range a {
		if fmt.Sprint(a[i]) != fmt.Sprint(b[i]) {
			t.Fatalf("placement differs at split %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMissingFileErrors(t *testing.T) {
	fs := testFS(t, 10, 1, 2)
	if _, err := fs.ReadAll("/none"); err == nil {
		t.Error("ReadAll of missing file succeeded")
	}
	if _, err := fs.FileSplits("/none"); err == nil {
		t.Error("FileSplits of missing file succeeded")
	}
	if _, err := fs.Size("/none"); err == nil {
		t.Error("Size of missing file succeeded")
	}
	if _, err := fs.ReadSplit(Split{Path: "/none"}); err == nil {
		t.Error("ReadSplit of missing file succeeded")
	}
}

func TestIsLocal(t *testing.T) {
	sp := Split{Locations: []int{2, 5}}
	if !sp.IsLocal(2) || !sp.IsLocal(5) || sp.IsLocal(3) {
		t.Fatal("IsLocal wrong")
	}
}

func TestEmptyFile(t *testing.T) {
	fs := testFS(t, 10, 1, 2)
	if err := fs.Write("/empty", nil); err != nil {
		t.Fatal(err)
	}
	splits, err := fs.FileSplits("/empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 1 || splits[0].Length != 0 {
		t.Fatalf("empty file splits = %v", splits)
	}
	part, err := fs.ReadSplit(splits[0])
	if err != nil || part != nil {
		t.Fatalf("empty split read = %v, %v", part, err)
	}
}
