package bytecode_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/minic"
)

// fuzzBounds are deliberately small pool sizes so the fuzzer exercises
// both the accept and reject sides of every operand range check.
var fuzzBounds = bytecode.Bounds{
	NumRegs: 8, NumObjSlots: 2, Consts: 4, Strs: 2, Types: 2,
	Syms: 4, Allocs: 2, Ops: 4, Callees: 2,
}

// sampleCode compiles a small MiniC program and returns its main
// function's instruction stream — a realistic, verifiable seed.
func sampleCode(tb testing.TB) []bytecode.Instr {
	tb.Helper()
	prog, err := minic.ParseAndCheck(`
int main() {
	int i = 0;
	int s = 0;
	while (i < 10) {
		s = s + i;
		i = i + 1;
	}
	printf("%d\n", s);
	return 0;
}`)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	p := bytecode.Compile(prog)
	return p.Fns[p.Main].Code
}

// FuzzBytecodeRoundTrip fuzzes the instruction codec and the verifier:
// any byte stream the decoder accepts must re-encode to the identical
// bytes and decode again to the identical instructions, and the verifier
// must render a verdict on it without panicking — the bytecode loader's
// safety contract for untrusted streams.
func FuzzBytecodeRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytecode.EncodeInstrs(sampleCode(f)))
	f.Add(bytecode.EncodeInstrs([]bytecode.Instr{
		{Op: bytecode.OpConst, A: 0, B: 0},
		{Op: bytecode.OpAddI, A: 1, B: 0, C: 0},
		{Op: bytecode.OpBr, A: 1, B: 0, C: 3},
		{Op: bytecode.OpRet, A: 1},
	}))
	f.Add(bytecode.EncodeInstrs([]bytecode.Instr{
		{Op: bytecode.OpCharge, A: -1, B: 2},
		{Op: bytecode.OpJmp, A: 99},
	}))
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		code, err := bytecode.DecodeInstrs(data)
		if err != nil {
			return // malformed streams are the decoder's to reject
		}
		if len(code) != len(data)/17 {
			t.Fatalf("decoded %d instructions from %d bytes", len(code), len(data))
		}
		// The verifier must terminate with a verdict on anything decodable.
		_ = bytecode.VerifyCode(code, fuzzBounds)
		enc := bytecode.EncodeInstrs(code)
		if !bytes.Equal(enc, data) {
			t.Fatalf("re-encode changed the stream\nin:  %x\nout: %x", data, enc)
		}
		code2, err := bytecode.DecodeInstrs(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(code, code2) {
			t.Fatalf("round trip changed instructions\nfirst:  %+v\nsecond: %+v", code, code2)
		}
	})
}

// TestWriteFuzzCorpus (with -update) regenerates the checked-in seed
// corpus under testdata/fuzz/FuzzBytecodeRoundTrip from the same seeds
// the fuzz target Adds, so `make fuzz-smoke` starts from real programs
// even before the fuzzer's own cache warms up.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*update {
		t.Skip("corpus writer; run with -update to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzBytecodeRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	seeds := [][]byte{
		bytecode.EncodeInstrs(sampleCode(t)),
		bytecode.EncodeInstrs([]bytecode.Instr{
			{Op: bytecode.OpConst, A: 0, B: 0},
			{Op: bytecode.OpAddI, A: 1, B: 0, C: 0},
			{Op: bytecode.OpBr, A: 1, B: 0, C: 3},
			{Op: bytecode.OpRet, A: 1},
		}),
		bytecode.EncodeInstrs([]bytecode.Instr{
			{Op: bytecode.OpCharge, A: -1, B: 2},
			{Op: bytecode.OpJmp, A: 99},
		}),
	}
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(s)))
		name := filepath.Join(dir, fmt.Sprintf("seed-%d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
