package bytecode

import (
	"fmt"
	"strings"

	"repro/internal/interp"
)

// Disassemble renders a compiled program as human-readable text, one
// function per section. The format is stable: golden tests depend on it.
func Disassemble(p *Program) string {
	var b strings.Builder
	for i, fn := range p.Fns {
		if i > 0 {
			b.WriteByte('\n')
		}
		disasmFn(&b, p, fn)
	}
	return b.String()
}

func disasmFn(b *strings.Builder, p *Program, fn *Fn) {
	fmt.Fprintf(b, "fn %s (regs=%d slots=%d params=%d)\n", fn.Name, fn.NumRegs, fn.NumObjSlots, len(fn.Params))
	if fn.Fallback {
		fmt.Fprintf(b, "  fallback: %s\n", fn.Why)
		return
	}
	for _, prm := range fn.Params {
		if prm.Reg >= 0 {
			fmt.Fprintf(b, "  param %s -> r%d\n", prm.Sym.Name, prm.Reg)
		} else {
			fmt.Fprintf(b, "  param %s -> slot%d\n", prm.Sym.Name, prm.Slot)
		}
	}
	for pc, in := range fn.Code {
		fmt.Fprintf(b, "  %4d  %-8s %s\n", pc, in.Op.Name(), operandString(p, in))
	}
}

func operandString(p *Program, in Instr) string {
	switch in.Op {
	case OpNop, OpRetZ:
		return ""
	case OpCharge:
		return fmt.Sprintf("ops=%d steps=%d", in.A, in.B)
	case OpJmp:
		return fmt.Sprintf("-> %d", in.A)
	case OpBr:
		return fmt.Sprintf("r%d ? %d : %d", in.A, in.B, in.C)
	case OpRet, OpArg:
		return fmt.Sprintf("r%d", in.A)
	case OpConst:
		return fmt.Sprintf("r%d, %s", in.A, constString(p, in.B))
	case OpMove, OpBool, OpNeg, OpNot, OpBnot, OpChkP:
		return fmt.Sprintf("r%d, r%d", in.A, in.B)
	case OpZero:
		return fmt.Sprintf("r%d", in.A)
	case OpBin:
		return fmt.Sprintf("r%d, r%d, r%d, %q", in.A, in.B, in.C, pool(p.Ops, in.D))
	case OpAddN:
		return fmt.Sprintf("r%d, r%d, %+d", in.A, in.B, in.C)
	case OpCvt:
		return fmt.Sprintf("r%d, r%d, %s", in.A, in.B, typeString(p, in.C))
	case OpLoadV:
		return fmt.Sprintf("r%d, r%d (%s)", in.A, in.B, symString(p, in.C))
	case OpStoreV:
		return fmt.Sprintf("r%d, r%d (%s)", in.A, in.B, symString(p, in.C))
	case OpLoadO, OpAddrO:
		return fmt.Sprintf("r%d, %s", in.A, objRefString(p, in.B))
	case OpStoreO:
		return fmt.Sprintf("%s, r%d", objRefString(p, in.A), in.B)
	case OpAlloc:
		s := fmt.Sprintf("slot%d, %s", in.A, allocString(p, in.B))
		if in.C >= 0 {
			s += fmt.Sprintf(", init=r%d", in.C)
		}
		return s
	case OpLoadP:
		s := fmt.Sprintf("r%d, r%d", in.A, in.B)
		if in.D != 0 {
			s += ", chk"
		}
		return s
	case OpStoreP:
		s := fmt.Sprintf("r%d, r%d", in.A, in.B)
		if in.D != 0 {
			s += ", chk"
		}
		return s
	case OpIdx:
		return fmt.Sprintf("r%d, r%d, r%d, stride=%d", in.A, in.B, in.C, in.D)
	case OpStr, OpStdio:
		return fmt.Sprintf("r%d, %q", in.A, pool(p.Strs, in.B))
	case OpCall:
		return fmt.Sprintf("r%d, %s, argc=%d", in.A, calleeString(p, in.B), in.C)
	default:
		// Typed arithmetic/comparison family.
		return fmt.Sprintf("r%d, r%d, r%d", in.A, in.B, in.C)
	}
}

func pool(ss []string, i int32) string {
	if i < 0 || int(i) >= len(ss) {
		return "<bad>"
	}
	return ss[i]
}

func constString(p *Program, i int32) string {
	if i < 0 || int(i) >= len(p.Consts) {
		return "<bad const>"
	}
	v := p.Consts[i]
	switch v.Kind {
	case interp.ValFloat:
		return fmt.Sprintf("%g", v.F)
	case interp.ValPtr:
		return "ptr"
	default:
		return fmt.Sprintf("%d", v.I)
	}
}

func typeString(p *Program, i int32) string {
	if i < 0 || int(i) >= len(p.Types) {
		return "<bad type>"
	}
	if t := p.Types[i]; t != nil {
		return t.String()
	}
	return "<nil>"
}

func symString(p *Program, i int32) string {
	if i < 0 || int(i) >= len(p.Syms) {
		return "<bad sym>"
	}
	return p.Syms[i].Name
}

func objRefString(p *Program, ref int32) string {
	if ref < 0 {
		return fmt.Sprintf("slot%d", -ref-1)
	}
	return fmt.Sprintf("global %s", symString(p, ref))
}

func allocString(p *Program, i int32) string {
	if i < 0 || int(i) >= len(p.Allocs) {
		return "<bad alloc>"
	}
	a := p.Allocs[i]
	return fmt.Sprintf("%s[%d]", a.Name, a.N)
}

func calleeString(p *Program, i int32) string {
	if i < 0 || int(i) >= len(p.Callees) {
		return "<bad callee>"
	}
	c := p.Callees[i]
	if c.Builtin {
		return c.Name + "!"
	}
	return c.Name
}
