package bytecode_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/compiler"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestDisassemblyGolden pins the exact disassembly of the paper's
// wordcount map and combine stages — host programs and GPU kernel
// fragments. The listing is the compiler-to-VM contract made visible:
// any change to lowering, out-of-SSA copy placement, register
// assignment, or the instruction set shows up as a byte diff here.
// (This lives in an external test package so it can compile a full
// benchmark stage through internal/compiler, which bytecode itself must
// not import.)
func TestDisassemblyGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, stage := range []struct{ name, src string }{
		{"wordcount-map", workload.WordcountMap},
		{"wordcount-combine", workload.WordcountCombine},
	} {
		compiled, err := compiler.CompileOpts(stage.src, compiler.Options{File: stage.name + ".c"})
		if err != nil {
			t.Fatalf("%s: compile: %v", stage.name, err)
		}
		for _, sec := range []struct {
			title string
			prog  *bytecode.Program
		}{
			{"host program", compiled.VM},
			{"kernel condition", compiled.KernelCond},
			{"kernel body", compiled.KernelBody},
			{"kernel region", compiled.KernelRegion},
		} {
			if sec.prog == nil {
				continue
			}
			if err := bytecode.Verify(sec.prog); err != nil {
				t.Errorf("%s %s: verifier rejected compiler output: %v", stage.name, sec.title, err)
			}
			fmt.Fprintf(&buf, "== %s: %s ==\n", stage.name, sec.title)
			buf.WriteString(bytecode.Disassemble(sec.prog))
			buf.WriteByte('\n')
		}
	}
	golden := filepath.Join("testdata", "wordcount.disasm")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/bytecode -run DisassemblyGolden -update`): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("disassembly differs from %s (re-run with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}
