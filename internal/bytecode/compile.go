package bytecode

import (
	"fmt"
	"math"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

// The compiler lowers a fresh (unoptimized) ir.Build of each function's
// final AST — the optimizer has already rewritten the AST in place, so the
// IR reflects its output — into flat register code. Exact cost parity with
// the tree-walker is the load-bearing property:
//
//   - Per-expression Op(1) charges are recovered by inverting the IR's
//     ExprInstr map: the number of expressions an instruction produces the
//     value for is the number of eval-entry ops it carries.
//   - Per-statement step+Op(1) charges come from merging each block's
//     Stmts list into its instruction stream (a statement's charge fires
//     before its first instruction).
//   - Charges batch into pending counters flushed as one `charge`
//     instruction before every call, conditional-region boundary, and
//     block terminator — so at every call boundary (exit() terminations,
//     getRecord record grants) the charged totals equal the walker's.
//   - Load/Store charges ride on the memory opcodes themselves.
//
// A function the compiler cannot prove it lowers exactly is declined and
// marked Fallback: the VM routes its calls to the tree-walker, preserving
// semantics (including runtime error strings) by construction.

type declineError struct{ reason string }

func (e *declineError) Error() string { return e.reason }

func declinef(format string, args ...any) error {
	return &declineError{reason: fmt.Sprintf(format, args...)}
}

// Compile lowers every function of a semantically-analyzed program.
// It never fails: functions that cannot be compiled exactly become
// Fallback entries executed by the tree-walker.
func Compile(prog *minic.Program) *Program {
	b := newBuilder(false)
	for _, fn := range prog.Funcs {
		b.addFn(fn, nil, nil)
	}
	return b.finish()
}

// CompileFragmentExpr compiles a kernel condition expression (the mapper
// while-loop condition) into a single-fn fragment program returning the
// expression value. Free symbols resolve through host-populated frame
// slots. Returns nil when the fragment cannot be compiled exactly.
func CompileFragmentExpr(cond minic.Expr) *Program {
	if cond == nil {
		return nil
	}
	ret := &minic.Return{X: cond}
	body := &minic.Block{Stmts: []minic.Stmt{ret}}
	// EvalIn charges no statement steps for the synthesized wrapper.
	skip := map[minic.Stmt]bool{body: true, ret: true}
	return compileFragment(&minic.FuncDecl{Name: "<cond>", Body: body}, body, skip)
}

// CompileFragmentStmt compiles a kernel region statement (the mapper loop
// body or the combiner region) into a fragment program. The statement
// itself is charged (ExecIn charges it); only the wrapper block is not.
func CompileFragmentStmt(region minic.Stmt) *Program {
	if region == nil {
		return nil
	}
	body := &minic.Block{Stmts: []minic.Stmt{region}}
	skip := map[minic.Stmt]bool{body: true}
	return compileFragment(&minic.FuncDecl{Name: "<region>", Body: body}, body, skip)
}

func compileFragment(decl *minic.FuncDecl, body *minic.Block, skip map[minic.Stmt]bool) *Program {
	declared := map[*minic.Symbol]bool{}
	walkFragmentStmts(body, func(s minic.Stmt) {
		if d, ok := s.(*minic.DeclStmt); ok {
			for _, dc := range d.Decls {
				if dc.Sym != nil {
					declared[dc.Sym] = true
				}
			}
		}
	})
	demote := func(sym *minic.Symbol) bool { return !declared[sym] }

	b := newBuilder(true)
	fn := b.addFn(decl, demote, skip)
	if fn.Fallback {
		return nil
	}
	return b.finish()
}

// walkFragmentStmts visits s and nested statements (fragment ASTs only
// contain the statement forms the parser produces).
func walkFragmentStmts(s minic.Stmt, visit func(minic.Stmt)) {
	if s == nil {
		return
	}
	visit(s)
	switch st := s.(type) {
	case *minic.Block:
		for _, inner := range st.Stmts {
			walkFragmentStmts(inner, visit)
		}
	case *minic.If:
		walkFragmentStmts(st.Then, visit)
		walkFragmentStmts(st.Else, visit)
	case *minic.While:
		walkFragmentStmts(st.Body, visit)
	case *minic.For:
		walkFragmentStmts(st.Init, visit)
		walkFragmentStmts(st.Body, visit)
	case *minic.PragmaStmt:
		walkFragmentStmts(st.Body, visit)
	}
}

// builder accumulates the shared pools of one Program. All interning is
// insertion-ordered, so emitted code is deterministic.
type builder struct {
	prog      *Program
	constIdx  map[interp.Value]int32
	strIdx    map[string]int32
	typeIdx   map[*minic.Type]int32
	symIdx    map[*minic.Symbol]int32
	allocIdx  map[*minic.Declarator]int32
	opIdx     map[string]int32
	calleeIdx map[Callee]int32
}

func newBuilder(fragment bool) *builder {
	return &builder{
		prog:      &Program{Main: -1, Fragment: fragment},
		constIdx:  map[interp.Value]int32{},
		strIdx:    map[string]int32{},
		typeIdx:   map[*minic.Type]int32{},
		symIdx:    map[*minic.Symbol]int32{},
		allocIdx:  map[*minic.Declarator]int32{},
		opIdx:     map[string]int32{},
		calleeIdx: map[Callee]int32{},
	}
}

func (b *builder) finish() *Program { return b.prog }

func (b *builder) constant(v interp.Value) int32 {
	if i, ok := b.constIdx[v]; ok {
		return i
	}
	i := int32(len(b.prog.Consts))
	b.prog.Consts = append(b.prog.Consts, v)
	b.constIdx[v] = i
	return i
}

func (b *builder) str(s string) int32 {
	if i, ok := b.strIdx[s]; ok {
		return i
	}
	i := int32(len(b.prog.Strs))
	b.prog.Strs = append(b.prog.Strs, s)
	b.strIdx[s] = i
	return i
}

func (b *builder) typeRef(t *minic.Type) int32 {
	if i, ok := b.typeIdx[t]; ok {
		return i
	}
	i := int32(len(b.prog.Types))
	b.prog.Types = append(b.prog.Types, t)
	b.typeIdx[t] = i
	return i
}

func (b *builder) sym(s *minic.Symbol) int32 {
	if i, ok := b.symIdx[s]; ok {
		return i
	}
	i := int32(len(b.prog.Syms))
	b.prog.Syms = append(b.prog.Syms, s)
	b.symIdx[s] = i
	return i
}

func (b *builder) operator(op string) int32 {
	if i, ok := b.opIdx[op]; ok {
		return i
	}
	i := int32(len(b.prog.Ops))
	b.prog.Ops = append(b.prog.Ops, op)
	b.opIdx[op] = i
	return i
}

func (b *builder) callee(c Callee) int32 {
	if i, ok := b.calleeIdx[c]; ok {
		return i
	}
	i := int32(len(b.prog.Callees))
	b.prog.Callees = append(b.prog.Callees, c)
	b.calleeIdx[c] = i
	return i
}

func (b *builder) alloc(d *minic.Declarator) (int32, error) {
	if i, ok := b.allocIdx[d]; ok {
		return i, nil
	}
	n, elem := 1, d.Type
	if d.Type != nil && d.Type.Kind == minic.TypeArray {
		n, elem = interp.FlattenArray(d.Type)
		if n < 0 {
			// The walker raises this at declaration execution; declining
			// routes the whole function there for the identical error.
			return 0, declinef("array %q has unspecified length", d.Name)
		}
	}
	if elem == nil {
		return 0, declinef("declarator %q has no type", d.Name)
	}
	i := int32(len(b.prog.Allocs))
	b.prog.Allocs = append(b.prog.Allocs, AllocSpec{Sym: d.Sym, Elem: elem, N: int32(n), Name: d.Name})
	b.allocIdx[d] = i
	return i, nil
}

func (b *builder) addFn(decl *minic.FuncDecl, demote func(*minic.Symbol) bool, skip map[minic.Stmt]bool) *Fn {
	fn, err := b.compileFn(decl, demote, skip)
	if err != nil {
		fn = &Fn{Name: decl.Name, Decl: decl, Ret: decl.Ret, Fallback: true, Why: err.Error()}
	}
	b.prog.Fns = append(b.prog.Fns, fn)
	if decl.Name == "main" {
		b.prog.Main = len(b.prog.Fns) - 1
	}
	return fn
}

// fnBuilder carries the state of one function's lowering.
type fnBuilder struct {
	b    *builder
	f    *ir.Func
	plan *ir.RegPlan
	fn   *Fn

	code []Instr
	pos  []minic.Pos

	pendingOps   int32
	pendingSteps int32

	// inv holds the eval-entry op count each instruction carries
	// (inverted ExprInstr map), consumed as charges are batched.
	inv map[*ir.Instr]int32
	// skipConst marks constants absorbed into addn immediates.
	skipConst map[*ir.Instr]bool
	skip      map[minic.Stmt]bool

	slotOf   map[*minic.Symbol]int32
	slotSyms []*minic.Symbol
	bound    map[*minic.Symbol]bool

	blockPC map[*ir.Block]int32
	patches []patch
	regions []regionFrame

	scratch0, scratch1 int32
}

type patch struct {
	pc      int
	operand int // 0=A 1=B 2=C
	target  *ir.Block
}

type regionFrame struct {
	in        *ir.Instr
	brPC      int
	brOperand int // operand of the br that jumps to the short/false label
	jmpPC     int // select: jmp after the then-arm, patched to region end
}

func (b *builder) compileFn(decl *minic.FuncDecl, demote func(*minic.Symbol) bool, skip map[minic.Stmt]bool) (fn *Fn, err error) {
	defer func() {
		if r := recover(); r != nil {
			// IR shapes this compiler does not model decline to the
			// walker rather than crash the host.
			fn, err = nil, declinef("panic: %v", r)
		}
	}()

	f := ir.BuildFragment(decl, demote)
	addLValueUses(f)
	plan := ir.AllocateRegisters(f)
	fb := &fnBuilder{
		b:         b,
		f:         f,
		plan:      plan,
		inv:       map[*ir.Instr]int32{},
		skipConst: map[*ir.Instr]bool{},
		skip:      skip,
		slotOf:    map[*minic.Symbol]int32{},
		bound:     map[*minic.Symbol]bool{},
		blockPC:   map[*ir.Block]int32{},
		scratch0:  int32(plan.NumRegs),
		scratch1:  int32(plan.NumRegs) + 1,
	}
	// Map iteration is safe here: counts accumulate commutatively.
	for _, in := range f.ExprInstr {
		fb.inv[in]++
	}
	fb.markAbsorbedConsts()

	// The walker's m.call runs the function body's statement list without
	// charging the body block itself as a statement.
	if fb.skip == nil {
		fb.skip = map[minic.Stmt]bool{}
	}
	if decl.Body != nil {
		fb.skip[decl.Body] = true
	}

	fn = &Fn{
		Name:    decl.Name,
		Decl:    decl,
		Ret:     decl.Ret,
		NumRegs: int32(plan.NumRegs) + 2,
	}
	// Parameters: tracked scalars arrive in registers, demoted ones in
	// fresh per-call objects (the walker allocates one per parameter).
	for _, p := range decl.Params {
		prm := Param{Reg: -1, Slot: -1, Sym: p.Sym, Type: p.Type}
		if v := f.VarFor(p.Sym); v != nil {
			prm.Reg = int32(plan.VarReg(v))
		} else {
			prm.Slot = fb.slot(p.Sym)
			fb.bound[p.Sym] = true
		}
		fn.Params = append(fn.Params, prm)
	}

	for _, blk := range f.Blocks {
		if !blk.Reachable() {
			continue
		}
		if err := fb.emitBlock(blk); err != nil {
			return nil, err
		}
	}
	for _, p := range fb.patches {
		pc, ok := fb.blockPC[p.target]
		if !ok {
			return nil, declinef("jump to unemitted block")
		}
		switch p.operand {
		case 0:
			fb.code[p.pc].A = pc
		case 1:
			fb.code[p.pc].B = pc
		default:
			fb.code[p.pc].C = pc
		}
	}
	// Free symbols (fragment slots never bound by alloc or parameter)
	// must be host-populated; whole-program functions have none.
	for _, sym := range fb.slotSyms {
		if fb.bound[sym] {
			continue
		}
		if !b.prog.Fragment {
			return nil, declinef("unbound object slot for %q", sym.Name)
		}
		b.prog.Free = append(b.prog.Free, FreeRef{Sym: sym, Slot: fb.slotOf[sym]})
	}
	fn.Code = fb.code
	fn.Pos = fb.pos
	fn.NumObjSlots = int32(len(fb.slotSyms))
	return fn, nil
}

// addLValueUses registers the hidden register reads of opaque lvalue
// writes. OpEffect (untracked assignment, ++/--) and address-of OpLoadMem
// instructions consume the registers of their lvalue's index/base/pointer
// subexpressions without listing them as IR arguments; appending them as
// extra trailing args extends their live ranges so the register allocator
// does not recycle them early. Expansion reads positional args only from
// the front, so the extras are liveness-only.
func addLValueUses(f *ir.Func) {
	components := func(lv minic.Expr) []minic.Expr {
		switch t := lv.(type) {
		case *minic.Index:
			return []minic.Expr{t.Idx, t.X}
		case *minic.Unary:
			if t.Op == "*" {
				return []minic.Expr{t.X}
			}
		}
		return nil
	}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			var lv minic.Expr
			switch in.Op {
			case ir.OpEffect:
				switch x := in.Expr.(type) {
				case *minic.Assign:
					lv = x.L
				case *minic.Unary:
					if x.Op == "++" || x.Op == "--" {
						lv = x.X
					}
				case *minic.Postfix:
					lv = x.X
				}
			case ir.OpLoadMem:
				if u, ok := in.Expr.(*minic.Unary); ok && u.Op == "&" {
					lv = u.X
				}
			default:
				continue
			}
			for _, c := range components(lv) {
				if ci, ok := f.ExprInstr[c]; ok {
					in.Args = append(in.Args, ci)
				}
			}
		}
	}
}

// markAbsorbedConsts finds int constants consumed only as the rhs of a
// +/- binary (lowered to addn immediates) so their const loads are
// skipped. Their eval-entry charges still batch normally.
func (fb *fnBuilder) markAbsorbedConsts() {
	uses := map[*ir.Instr]int{}
	for _, blk := range fb.f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpPhi || in.Op == ir.OpLoad {
				continue
			}
			for _, a := range in.Args {
				uses[a]++
			}
		}
		if blk.Cond != nil {
			uses[blk.Cond]++
		}
	}
	for _, r := range fb.f.Rets {
		uses[r]++
	}
	for _, blk := range fb.f.Blocks {
		for _, in := range blk.Instrs {
			if _, ok := addnDelta(in); ok {
				c := in.Args[1]
				uses[c]--
				if uses[c] == 0 {
					fb.skipConst[c] = true
				}
			}
		}
	}
}

// addnDelta reports whether a binary lowers to addn with an immediate.
func addnDelta(in *ir.Instr) (int32, bool) {
	if in.Op != ir.OpBinary || (in.OpStr != "+" && in.OpStr != "-") {
		return 0, false
	}
	if len(in.Args) != 2 || in.Args[1].Op != ir.OpConst || in.Args[1].Val.Kind != ir.ConstInt {
		return 0, false
	}
	c := in.Args[1].Val.I
	if c < -math.MaxInt32 || c > math.MaxInt32 {
		return 0, false
	}
	d := int32(c)
	if in.OpStr == "-" {
		d = -d
	}
	return d, true
}

func (fb *fnBuilder) emit(op Op, a, b, c, d int32) int {
	fb.code = append(fb.code, Instr{Op: op, A: a, B: b, C: c, D: d})
	fb.pos = append(fb.pos, minic.Pos{})
	return len(fb.code) - 1
}

func (fb *fnBuilder) setPos(pc int, p minic.Pos) { fb.pos[pc] = p }

func (fb *fnBuilder) flush() {
	if fb.pendingOps == 0 && fb.pendingSteps == 0 {
		return
	}
	fb.emit(OpCharge, fb.pendingOps, fb.pendingSteps, 0, 0)
	fb.pendingOps, fb.pendingSteps = 0, 0
}

// takeCharge moves an instruction's eval-entry ops into the pending batch.
func (fb *fnBuilder) takeCharge(in *ir.Instr) {
	if c := fb.inv[in]; c > 0 {
		fb.pendingOps += c
		fb.inv[in] = 0
	}
}

// reg returns the frame register holding in's result.
func (fb *fnBuilder) reg(in *ir.Instr) (int32, error) {
	switch in.Op {
	case ir.OpStore, ir.OpPhi, ir.OpDeclZero, ir.OpParam:
		if in.Var == nil {
			return 0, declinef("definition without variable")
		}
		return int32(fb.plan.VarReg(in.Var)), nil
	}
	r, ok := fb.plan.TempReg(in)
	if !ok {
		return 0, declinef("instruction without register")
	}
	return int32(r), nil
}

// exprReg returns the register holding a lowered AST expression's value.
func (fb *fnBuilder) exprReg(e minic.Expr) (int32, error) {
	in, ok := fb.f.ExprInstr[e]
	if !ok {
		return 0, declinef("expression %T not lowered", e)
	}
	return fb.reg(in)
}

func (fb *fnBuilder) slot(sym *minic.Symbol) int32 {
	if s, ok := fb.slotOf[sym]; ok {
		return s
	}
	s := int32(len(fb.slotSyms))
	fb.slotOf[sym] = s
	fb.slotSyms = append(fb.slotSyms, sym)
	return s
}

// objRef encodes where a symbol's object lives: global symbol pool index
// (>= 0) or frame slot (< 0). Fragments route every free symbol through
// the frame so host bindings (GPU privatized/shared objects) win, exactly
// like the walker's frame-before-globals lookup order.
func (fb *fnBuilder) objRef(sym *minic.Symbol) (int32, error) {
	if sym == nil {
		return 0, declinef("unresolved identifier")
	}
	if sym.Global && !fb.b.prog.Fragment {
		return fb.b.sym(sym), nil
	}
	return -fb.slot(sym) - 1, nil
}

func (fb *fnBuilder) emitBlock(blk *ir.Block) error {
	fb.blockPC[blk] = int32(len(fb.code))
	openAt := map[int]*ir.Instr{}
	switchAt := map[int]*ir.Instr{}
	idxOf := map[*ir.Instr]int{}
	for i, in := range blk.Instrs {
		idxOf[in] = i
	}
	for _, in := range blk.Instrs {
		switch in.Op {
		case ir.OpLogic:
			li, ok := idxOf[in.Args[0]]
			if !ok {
				return declinef("short-circuit operand outside block")
			}
			if openAt[li+1] != nil || switchAt[li+1] != nil {
				return declinef("conditional region collision")
			}
			openAt[li+1] = in
		case ir.OpSelect:
			ci, ok := idxOf[in.Args[0]]
			if !ok {
				return declinef("select condition outside block")
			}
			ti, ok := idxOf[in.Args[1]]
			if !ok {
				return declinef("select arm outside block")
			}
			if openAt[ci+1] != nil || switchAt[ci+1] != nil || openAt[ti+1] != nil || switchAt[ti+1] != nil {
				return declinef("conditional region collision")
			}
			openAt[ci+1] = in
			switchAt[ti+1] = in
		}
	}

	si := 0
	var curStmt minic.Stmt
	haveStmt := false
	for i, in := range blk.Instrs {
		if ev := switchAt[i]; ev != nil {
			if err := fb.selectSwitch(ev); err != nil {
				return err
			}
		}
		if ev := openAt[i]; ev != nil {
			if err := fb.openRegion(ev); err != nil {
				return err
			}
		}
		if !haveStmt || in.Stmt != curStmt {
			if in.Stmt != nil && stmtAhead(blk.Stmts, si, in.Stmt) {
				for si < len(blk.Stmts) {
					st := blk.Stmts[si]
					si++
					if err := fb.stmtEntry(st); err != nil {
						return err
					}
					if st == in.Stmt {
						break
					}
				}
			}
			curStmt, haveStmt = in.Stmt, true
		}
		if err := fb.emitInstr(in); err != nil {
			return err
		}
	}
	for si < len(blk.Stmts) {
		if err := fb.stmtEntry(blk.Stmts[si]); err != nil {
			return err
		}
		si++
	}
	if len(fb.regions) != 0 {
		return declinef("unclosed conditional region")
	}
	return fb.emitTerminator(blk)
}

func stmtAhead(stmts []minic.Stmt, from int, s minic.Stmt) bool {
	for i := from; i < len(stmts); i++ {
		if stmts[i] == s {
			return true
		}
	}
	return false
}

// stmtEntry batches one statement's step+op entry charge and synthesizes
// object allocations for untracked init-less declarators (the walker
// allocates a fresh object every time the declaration executes).
func (fb *fnBuilder) stmtEntry(st minic.Stmt) error {
	if fb.skip[st] {
		return nil
	}
	fb.pendingSteps++
	fb.pendingOps++
	d, ok := st.(*minic.DeclStmt)
	if !ok {
		return nil
	}
	for _, dc := range d.Decls {
		if dc.Init != nil || fb.f.VarFor(dc.Sym) != nil {
			continue
		}
		if err := fb.emitAlloc(dc, -1); err != nil {
			return err
		}
	}
	return nil
}

func (fb *fnBuilder) emitAlloc(dc *minic.Declarator, initReg int32) error {
	if dc.Sym == nil {
		return declinef("declarator %q unresolved", dc.Name)
	}
	spec, err := fb.b.alloc(dc)
	if err != nil {
		return err
	}
	ref, err := fb.objRef(dc.Sym)
	if err != nil {
		return err
	}
	if ref >= 0 {
		// Global declarations execute in initGlobals on the walker.
		return declinef("allocation of global %q", dc.Name)
	}
	fb.bound[dc.Sym] = true
	fb.emit(OpAlloc, -ref-1, spec, initReg, 0)
	return nil
}

func (fb *fnBuilder) openRegion(ev *ir.Instr) error {
	// The walker charges the node's eval-entry op before evaluating
	// either operand; keep it in the unconditional segment.
	fb.takeCharge(ev)
	fb.flush()
	c, err := fb.reg(ev.Args[0])
	if err != nil {
		return err
	}
	switch ev.Op {
	case ir.OpLogic:
		pc := fb.emit(OpBr, c, 0, 0, 0)
		fr := regionFrame{in: ev, brPC: pc, jmpPC: -1}
		if ev.OpStr == "&&" {
			fb.code[pc].B = int32(pc + 1)
			fr.brOperand = 2
		} else {
			fb.code[pc].C = int32(pc + 1)
			fr.brOperand = 1
		}
		fb.regions = append(fb.regions, fr)
	case ir.OpSelect:
		pc := fb.emit(OpBr, c, 0, 0, 0)
		fb.code[pc].B = int32(pc + 1)
		fb.regions = append(fb.regions, regionFrame{in: ev, brPC: pc, brOperand: 2, jmpPC: -1})
	default:
		return declinef("unexpected region opener")
	}
	return nil
}

func (fb *fnBuilder) selectSwitch(ev *ir.Instr) error {
	n := len(fb.regions)
	if n == 0 || fb.regions[n-1].in != ev {
		return declinef("mismatched select region")
	}
	fb.flush() // then-arm charges stay inside the then path
	dst, err := fb.reg(ev)
	if err != nil {
		return err
	}
	t, err := fb.reg(ev.Args[1])
	if err != nil {
		return err
	}
	fb.emit(OpMove, dst, t, 0, 0)
	fb.regions[n-1].jmpPC = fb.emit(OpJmp, 0, 0, 0, 0)
	fb.code[fb.regions[n-1].brPC].C = int32(len(fb.code))
	return nil
}

func (fb *fnBuilder) closeRegion(in *ir.Instr) error {
	n := len(fb.regions)
	if n == 0 || fb.regions[n-1].in != in {
		return declinef("mismatched region close")
	}
	fr := fb.regions[n-1]
	fb.regions = fb.regions[:n-1]
	fb.flush() // conditional-arm charges stay inside the arm
	dst, err := fb.reg(in)
	if err != nil {
		return err
	}
	switch in.Op {
	case ir.OpLogic:
		r, err := fb.reg(in.Args[1])
		if err != nil {
			return err
		}
		fb.emit(OpBool, dst, r, 0, 0)
		jend := fb.emit(OpJmp, 0, 0, 0, 0)
		short := int32(len(fb.code))
		if fr.brOperand == 1 {
			fb.code[fr.brPC].B = short
		} else {
			fb.code[fr.brPC].C = short
		}
		shortVal := int64(0)
		if in.OpStr == "||" {
			shortVal = 1
		}
		fb.emit(OpConst, dst, fb.b.constant(interp.IntVal(shortVal)), 0, 0)
		fb.code[jend].A = int32(len(fb.code))
	case ir.OpSelect:
		if fr.jmpPC < 0 {
			return declinef("select region missing arm switch")
		}
		f, err := fb.reg(in.Args[2])
		if err != nil {
			return err
		}
		fb.emit(OpMove, dst, f, 0, 0)
		fb.code[fr.jmpPC].A = int32(len(fb.code))
	}
	return nil
}

func (fb *fnBuilder) emitTerminator(blk *ir.Block) error {
	switch {
	case blk.Cond != nil:
		if len(blk.Succs) != 2 {
			return declinef("conditional block without two successors")
		}
		c, err := fb.reg(blk.Cond)
		if err != nil {
			return err
		}
		fb.flush()
		pc := fb.emit(OpBr, c, 0, 0, 0)
		fb.patches = append(fb.patches, patch{pc: pc, operand: 1, target: blk.Succs[0]})
		fb.patches = append(fb.patches, patch{pc: pc, operand: 2, target: blk.Succs[1]})
	case len(blk.Succs) == 1:
		if blk.Backstep {
			// The walker's per-iteration steps++ at the loop bottom.
			fb.pendingSteps++
		}
		fb.flush()
		pc := fb.emit(OpJmp, 0, 0, 0, 0)
		fb.patches = append(fb.patches, patch{pc: pc, operand: 0, target: blk.Succs[0]})
	case len(blk.Succs) == 0:
		if n := len(blk.Stmts); n > 0 {
			if ret, ok := blk.Stmts[n-1].(*minic.Return); ok {
				fb.flush()
				if ret.X != nil {
					r, err := fb.exprReg(ret.X)
					if err != nil {
						return err
					}
					fb.emit(OpRet, r, 0, 0, 0)
				} else {
					fb.emit(OpZero, fb.scratch0, 0, 0, 0)
					fb.emit(OpRet, fb.scratch0, 0, 0, 0)
				}
				return nil
			}
		}
		fb.flush()
		fb.emit(OpRetZ, 0, 0, 0, 0)
	default:
		return declinef("unexpected block shape")
	}
	return nil
}

func (fb *fnBuilder) emitInstr(in *ir.Instr) error {
	switch in.Op {
	case ir.OpLogic, ir.OpSelect:
		// Entry charge was consumed at region open.
		return fb.closeRegion(in)
	}
	fb.takeCharge(in)
	switch in.Op {
	case ir.OpParam, ir.OpPhi:
		return nil
	case ir.OpConst:
		if fb.skipConst[in] {
			return nil
		}
		dst, err := fb.reg(in)
		if err != nil {
			return err
		}
		fb.emit(OpConst, dst, fb.b.constant(constValue(in.Val)), 0, 0)
	case ir.OpDeclZero:
		r, err := fb.reg(in)
		if err != nil {
			return err
		}
		fb.emit(OpZero, r, 0, 0, 0)
	case ir.OpLoad:
		dst, err := fb.reg(in)
		if err != nil {
			return err
		}
		if in.Var == nil {
			return declinef("load without variable")
		}
		fb.emit(OpLoadV, dst, int32(fb.plan.VarReg(in.Var)), fb.b.sym(in.Var.Sym), 0)
	case ir.OpStore:
		dst, err := fb.reg(in)
		if err != nil {
			return err
		}
		src, err := fb.reg(in.Args[0])
		if err != nil {
			return err
		}
		fb.emit(OpStoreV, dst, src, fb.b.sym(in.Var.Sym), 0)
	case ir.OpUnary:
		return fb.emitUnary(in)
	case ir.OpBinary:
		return fb.emitBinary(in)
	case ir.OpCast:
		dst, err := fb.reg(in)
		if err != nil {
			return err
		}
		src, err := fb.reg(in.Args[0])
		if err != nil {
			return err
		}
		fb.emit(OpCvt, dst, src, fb.b.typeRef(in.To), 0)
	case ir.OpCall:
		return fb.emitCall(in)
	case ir.OpLoadMem:
		return fb.emitLoadMem(in)
	case ir.OpEffect:
		return fb.emitEffect(in)
	default:
		return declinef("unhandled IR op")
	}
	return nil
}

func constValue(c ir.Const) interp.Value {
	if c.Kind == ir.ConstFloat {
		return interp.FloatVal(c.F)
	}
	return interp.IntVal(c.I)
}

func (fb *fnBuilder) emitUnary(in *ir.Instr) error {
	dst, err := fb.reg(in)
	if err != nil {
		return err
	}
	src, err := fb.reg(in.Args[0])
	if err != nil {
		return err
	}
	switch in.OpStr {
	case "-":
		fb.emit(OpNeg, dst, src, 0, 0)
	case "!":
		fb.emit(OpNot, dst, src, 0, 0)
	case "~":
		fb.emit(OpBnot, dst, src, 0, 0)
	default:
		return declinef("unhandled unary %q", in.OpStr)
	}
	return nil
}

func (fb *fnBuilder) emitBinary(in *ir.Instr) error {
	dst, err := fb.reg(in)
	if err != nil {
		return err
	}
	l, err := fb.reg(in.Args[0])
	if err != nil {
		return err
	}
	if d, ok := addnDelta(in); ok {
		// interp.AddInt(x, d) equals ApplyBinary("±", x, const) for every
		// value kind (int wrap, float add, pointer offset), so +/- with
		// an int immediate skips the const load entirely.
		fb.emit(OpAddN, dst, l, d, 0)
		return nil
	}
	r, err := fb.reg(in.Args[1])
	if err != nil {
		return err
	}
	var lt, rt *minic.Type
	switch e := in.Expr.(type) {
	case *minic.Binary:
		lt, rt = e.L.Type(), e.R.Type()
	case *minic.Assign:
		lt, rt = e.L.Type(), e.R.Type()
	case *minic.Unary:
		lt = e.X.Type()
	case *minic.Postfix:
		lt = e.X.Type()
	}
	op := typedBinOp(in.OpStr, lt, rt)
	if op == OpBin {
		fb.emit(OpBin, dst, l, r, fb.b.operator(in.OpStr))
	} else {
		fb.emit(op, dst, l, r, 0)
	}
	return nil
}

func floatish(t *minic.Type) bool {
	return t != nil && (t.Kind == minic.TypeFloat || t.Kind == minic.TypeDouble)
}

func ptrish(t *minic.Type) bool {
	return t != nil && (t.Kind == minic.TypePointer || t.Kind == minic.TypeArray)
}

// typedBinOp selects the fast-path opcode from static operand types. The
// choice only affects speed: every typed opcode guards its value kinds
// and falls back to interp.ApplyBinary on mismatch.
func typedBinOp(op string, lt, rt *minic.Type) Op {
	if ptrish(lt) || ptrish(rt) {
		return OpBin
	}
	fl := floatish(lt) || floatish(rt)
	switch op {
	case "+":
		if fl {
			return OpAddF
		}
		return OpAddI
	case "-":
		if fl {
			return OpSubF
		}
		return OpSubI
	case "*":
		if fl {
			return OpMulF
		}
		return OpMulI
	case "/":
		if fl {
			return OpDivF
		}
		return OpDivI
	case "%":
		return OpModI
	case "&":
		return OpAndI
	case "|":
		return OpOrI
	case "^":
		return OpXorI
	case "<<":
		return OpShlI
	case ">>":
		return OpShrI
	case "==":
		if fl {
			return OpEqF
		}
		return OpEqI
	case "!=":
		if fl {
			return OpNeF
		}
		return OpNeI
	case "<":
		if fl {
			return OpLtF
		}
		return OpLtI
	case "<=":
		if fl {
			return OpLeF
		}
		return OpLeI
	case ">":
		if fl {
			return OpGtF
		}
		return OpGtI
	case ">=":
		if fl {
			return OpGeF
		}
		return OpGeI
	}
	return OpBin
}

func (fb *fnBuilder) emitCall(in *ir.Instr) error {
	call, ok := in.Expr.(*minic.Call)
	if !ok {
		return declinef("call without AST anchor")
	}
	dst, err := fb.reg(in)
	if err != nil {
		return err
	}
	// Flush so cost totals are exact at the call boundary: exit() is a
	// successful termination whose totals feed goldens, and getRecord is
	// the GPU record-grant boundary.
	fb.flush()
	for _, a := range in.Args {
		r, err := fb.reg(a)
		if err != nil {
			return err
		}
		fb.emit(OpArg, r, 0, 0, 0)
	}
	ci := fb.b.callee(Callee{Name: call.Name, Builtin: call.Builtin})
	fb.emit(OpCall, dst, ci, int32(len(in.Args)), 0)
	return nil
}

func (fb *fnBuilder) emitLoadMem(in *ir.Instr) error {
	dst, err := fb.reg(in)
	if err != nil {
		return err
	}
	switch x := in.Expr.(type) {
	case *minic.StrLit:
		fb.emit(OpStr, dst, fb.b.str(x.Value), 0, 0)
	case *minic.Ident:
		return fb.emitIdentLoad(dst, x)
	case *minic.Unary:
		switch x.Op {
		case "*":
			p, err := fb.reg(in.Args[0])
			if err != nil {
				return err
			}
			pc := fb.emit(OpLoadP, dst, p, 0, 1)
			fb.setPos(pc, x.Pos)
		case "&":
			return fb.emitAddr(dst, x.X)
		default:
			return declinef("unhandled lvalue unary %q", x.Op)
		}
	case *minic.Index:
		idx, err := fb.reg(in.Args[0])
		if err != nil {
			return err
		}
		base, err := fb.reg(in.Args[1])
		if err != nil {
			return err
		}
		pc := fb.emit(OpIdx, dst, idx, base, indexStride(x))
		fb.setPos(pc, x.Pos)
		if t := x.Type(); t != nil && t.Kind == minic.TypeArray {
			// A row of a multi-dimensional array decays to a pointer.
			return nil
		}
		fb.emit(OpLoadP, dst, dst, 0, 0)
	default:
		return declinef("unhandled memory expression %T", in.Expr)
	}
	return nil
}

func (fb *fnBuilder) emitIdentLoad(dst int32, x *minic.Ident) error {
	if x.Sym != nil && x.Sym.Kind == minic.SymBuiltin {
		fb.emit(OpStdio, dst, fb.b.str(x.Name), 0, 0)
		return nil
	}
	ref, err := fb.objRef(x.Sym)
	if err != nil {
		return err
	}
	if x.Sym.Type != nil && x.Sym.Type.Kind == minic.TypeArray {
		fb.emit(OpAddrO, dst, ref, 0, 0)
		return nil
	}
	fb.emit(OpLoadO, dst, ref, 0, 0)
	return nil
}

// indexStride mirrors the walker's multi-dimensional index scaling.
func indexStride(x *minic.Index) int32 {
	stride := int32(1)
	bt := x.X.Type()
	if bt != nil && bt.ElemType() != nil && bt.ElemType().Kind == minic.TypeArray {
		if n, _ := interp.FlattenArray(bt.ElemType()); n > 0 {
			stride = int32(n)
		}
	}
	return stride
}

// emitAddr materializes the address of an lvalue into dst.
func (fb *fnBuilder) emitAddr(dst int32, lv minic.Expr) error {
	switch t := lv.(type) {
	case *minic.Ident:
		ref, err := fb.objRef(t.Sym)
		if err != nil {
			return err
		}
		fb.emit(OpAddrO, dst, ref, 0, 0)
	case *minic.Index:
		idx, err := fb.exprReg(t.Idx)
		if err != nil {
			return err
		}
		base, err := fb.exprReg(t.X)
		if err != nil {
			return err
		}
		pc := fb.emit(OpIdx, dst, idx, base, indexStride(t))
		fb.setPos(pc, t.Pos)
	case *minic.Unary:
		if t.Op != "*" {
			return declinef("expression is not an lvalue")
		}
		p, err := fb.exprReg(t.X)
		if err != nil {
			return err
		}
		pc := fb.emit(OpChkP, dst, p, 0, 0)
		fb.setPos(pc, t.Pos)
	default:
		return declinef("expression %T is not an lvalue", lv)
	}
	return nil
}

func (fb *fnBuilder) emitEffect(in *ir.Instr) error {
	if in.Decl != nil && in.Expr == nil {
		// Untracked declarator with initializer.
		initReg, err := fb.reg(in.Args[0])
		if err != nil {
			return err
		}
		return fb.emitAlloc(in.Decl, initReg)
	}
	switch x := in.Expr.(type) {
	case *minic.Assign:
		return fb.emitUntrackedAssign(in, x)
	case *minic.Unary:
		if x.Op == "++" || x.Op == "--" {
			return fb.emitUntrackedIncDec(in, x.X, x.Op, false)
		}
	case *minic.Postfix:
		return fb.emitUntrackedIncDec(in, x.X, x.Op, true)
	}
	return declinef("unhandled effect")
}

func (fb *fnBuilder) emitUntrackedAssign(in *ir.Instr, x *minic.Assign) error {
	rhs, err := fb.reg(in.Args[0])
	if err != nil {
		return err
	}
	if x.Op == "=" {
		// Plain store: the assign's value is the rhs register (the IR
		// returns the rhs instruction for consumers).
		switch lv := x.L.(type) {
		case *minic.Ident:
			ref, err := fb.objRef(lv.Sym)
			if err != nil {
				return err
			}
			fb.emit(OpStoreO, ref, rhs, 0, 0)
			return nil
		default:
			if err := fb.emitAddr(fb.scratch0, x.L); err != nil {
				return err
			}
			fb.emit(OpStoreP, fb.scratch0, rhs, 0, 0)
			return nil
		}
	}
	// Compound: load current, apply, store; result is the applied value
	// before storage conversion (the walker returns rhs post-op).
	dst, err := fb.reg(in)
	if err != nil {
		return err
	}
	if err := fb.emitAddr(fb.scratch0, x.L); err != nil {
		return err
	}
	fb.emit(OpLoadP, fb.scratch1, fb.scratch0, 0, 0)
	op := x.Op[:len(x.Op)-1]
	bop := typedBinOp(op, x.L.Type(), x.R.Type())
	if bop == OpBin {
		fb.emit(OpBin, dst, fb.scratch1, rhs, fb.b.operator(op))
	} else {
		fb.emit(bop, dst, fb.scratch1, rhs, 0)
	}
	fb.emit(OpStoreP, fb.scratch0, dst, 0, 0)
	return nil
}

func (fb *fnBuilder) emitUntrackedIncDec(in *ir.Instr, target minic.Expr, op string, postfix bool) error {
	dst, err := fb.reg(in)
	if err != nil {
		return err
	}
	if err := fb.emitAddr(fb.scratch0, target); err != nil {
		return err
	}
	delta := int32(1)
	if op == "--" {
		delta = -1
	}
	// Postfix yields the old value, prefix the incremented one.
	old, nv := fb.scratch1, dst
	if postfix {
		old, nv = dst, fb.scratch1
	}
	fb.emit(OpLoadP, old, fb.scratch0, 0, 0)
	fb.emit(OpAddN, nv, old, delta, 0)
	fb.emit(OpStoreP, fb.scratch0, nv, 0, 0)
	return nil
}
