// Package bytecode compiles MiniC (via the internal/ir SSA form) into a
// register-based bytecode and executes it on a tight switch-dispatch VM.
//
// The VM is the default execution core for all three backends (sequential
// interpreter, streaming CPU path, GPU kernel executor). It is an exact
// drop-in for the tree-walking interpreter: output bytes, cost-model
// totals (ops/loads/stores per memory space), statement step counts, and
// error strings all match, because goldens for simulated time and
// deterministic GPU scheduling were recorded against the walker. The
// walker remains available (-novm) as the differential oracle.
//
// Everything stateful — object memory, globals, string literals, the
// builtin table, cost charging, the step budget — stays in an
// interp.Machine; the bytecode layer only replaces the AST walk.
package bytecode

import (
	"repro/internal/interp"
	"repro/internal/minic"
)

// Op is a bytecode opcode.
type Op uint8

// Opcodes. Operand meaning is per-opcode (A..D are int32):
//
//	charge  A=ops B=steps      batched cost.Op / step-budget charge
//	jmp     A=target
//	br      A=cond B=true C=false
//	ret     A=src              return ConvertFor(fn.Ret, r[A]); terminated
//	ret.z   -                  fall-off return: raw zero value
//	const   A=dst B=const#     r[A] = consts[B]
//	move    A=dst B=src
//	zero    A=dst              r[A] = Value{}
//	bool    A=dst B=src        r[A] = Truthy(r[B]) ? 1 : 0
//	add.i.. A=dst B=l C=r      typed fast path; both-int guard, else
//	                           interp.ApplyBinary fallback
//	add.f.. A=dst B=l C=r      both-float guard, else fallback
//	bin     A=dst B=l C=r D=op# always interp.ApplyBinary (pointer cases)
//	neg/not/bnot A=dst B=src
//	addn    A=dst B=src C=delta r[A] = interp.AddInt(r[B], C)
//	cvt     A=dst B=src C=type# r[A] = ConvertFor(types[C], r[B])
//	load.v  A=dst B=varreg C=sym#  register read + Load cost charge
//	store.v A=varreg B=src C=sym#  ConvertFor(sym type) + Store charge
//	load.o  A=dst B=objref     scalar object read (cell 0) + Load charge
//	store.o A=objref B=src     scalar object store via Machine.StorePtr
//	addr.o  A=dst B=objref     r[A] = pointer to object (array decay, &x)
//	alloc   A=slot B=spec# C=init-reg|-1  fresh object for a declarator
//	load.p  A=dst B=ptr D=chk  bounds-checked load; D=1 adds deref check
//	store.p A=ptr B=src D=chk  bounds-checked store; D=1 adds lvalue check
//	chk.p   A=dst B=src        store-through null/non-pointer check
//	idx     A=dst B=idx C=base D=stride  region-array subscript pointer
//	str     A=dst B=str#       interned string literal pointer
//	stdio   A=dst B=str#       stdin/stdout/stderr handle
//	arg     A=src              push call argument
//	call    A=dst B=callee# C=argc
//
// An objref encodes where an object lives: ref >= 0 is a program-global
// symbol index resolved once per VM; ref < 0 is frame object slot
// (-ref - 1), populated by alloc, parameter binding, or (for GPU
// fragments) the host before execution.
const (
	OpNop Op = iota
	OpCharge
	OpJmp
	OpBr
	OpRet
	OpRetZ
	OpConst
	OpMove
	OpZero
	OpBool
	OpAddI
	OpSubI
	OpMulI
	OpDivI
	OpModI
	OpAndI
	OpOrI
	OpXorI
	OpShlI
	OpShrI
	OpEqI
	OpNeI
	OpLtI
	OpLeI
	OpGtI
	OpGeI
	OpAddF
	OpSubF
	OpMulF
	OpDivF
	OpEqF
	OpNeF
	OpLtF
	OpLeF
	OpGtF
	OpGeF
	OpBin
	OpNeg
	OpNot
	OpBnot
	OpAddN
	OpCvt
	OpLoadV
	OpStoreV
	OpLoadO
	OpStoreO
	OpAddrO
	OpAlloc
	OpLoadP
	OpStoreP
	OpChkP
	OpIdx
	OpStr
	OpStdio
	OpArg
	OpCall
	opCount
)

var opNames = [opCount]string{
	OpNop:    "nop",
	OpCharge: "charge",
	OpJmp:    "jmp",
	OpBr:     "br",
	OpRet:    "ret",
	OpRetZ:   "ret.z",
	OpConst:  "const",
	OpMove:   "move",
	OpZero:   "zero",
	OpBool:   "bool",
	OpAddI:   "add.i",
	OpSubI:   "sub.i",
	OpMulI:   "mul.i",
	OpDivI:   "div.i",
	OpModI:   "mod.i",
	OpAndI:   "and.i",
	OpOrI:    "or.i",
	OpXorI:   "xor.i",
	OpShlI:   "shl.i",
	OpShrI:   "shr.i",
	OpEqI:    "eq.i",
	OpNeI:    "ne.i",
	OpLtI:    "lt.i",
	OpLeI:    "le.i",
	OpGtI:    "gt.i",
	OpGeI:    "ge.i",
	OpAddF:   "add.f",
	OpSubF:   "sub.f",
	OpMulF:   "mul.f",
	OpDivF:   "div.f",
	OpEqF:    "eq.f",
	OpNeF:    "ne.f",
	OpLtF:    "lt.f",
	OpLeF:    "le.f",
	OpGtF:    "gt.f",
	OpGeF:    "ge.f",
	OpBin:    "bin",
	OpNeg:    "neg",
	OpNot:    "not",
	OpBnot:   "bnot",
	OpAddN:   "addn",
	OpCvt:    "cvt",
	OpLoadV:  "load.v",
	OpStoreV: "store.v",
	OpLoadO:  "load.o",
	OpStoreO: "store.o",
	OpAddrO:  "addr.o",
	OpAlloc:  "alloc",
	OpLoadP:  "load.p",
	OpStoreP: "store.p",
	OpChkP:   "chk.p",
	OpIdx:    "idx",
	OpStr:    "str",
	OpStdio:  "stdio",
	OpArg:    "arg",
	OpCall:   "call",
}

// Name returns the opcode mnemonic.
func (op Op) Name() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "op?"
}

// Instr is one bytecode instruction. Operand meaning is per-opcode; see
// the opcode table.
type Instr struct {
	Op         Op
	A, B, C, D int32
}

// Callee identifies one call target by name and sema builtin marking; the
// VM resolves it per machine with the interpreter's exact dispatch order.
type Callee struct {
	Name    string
	Builtin bool
}

// AllocSpec describes the object one alloc instruction creates: the
// flattened cell count and element type of one declarator.
type AllocSpec struct {
	Sym  *minic.Symbol
	Elem *minic.Type
	N    int32
	Name string
}

// Param binds one function parameter to its frame location: a register for
// tracked scalars, an object slot for demoted parameters.
type Param struct {
	Reg  int32 // register index, or -1
	Slot int32 // frame object slot, or -1
	Sym  *minic.Symbol
	Type *minic.Type
}

// FreeRef binds one free symbol of a fragment to the frame object slot the
// host must populate before execution.
type FreeRef struct {
	Sym  *minic.Symbol
	Slot int32
}

// Fn is one compiled function. A Fallback fn has no code; calls route to
// the tree-walker via Decl.
type Fn struct {
	Name        string
	Decl        *minic.FuncDecl
	Ret         *minic.Type
	NumRegs     int32
	NumObjSlots int32
	Params      []Param
	Code        []Instr
	// Pos parallels Code; the source position for trap error messages
	// (zero when the instruction cannot trap).
	Pos      []minic.Pos
	Fallback bool
	// Why records the decline reason for a Fallback fn (diagnostics only).
	Why string
}

// Program is a compiled translation unit (or a single kernel fragment)
// plus the constant pools its instructions index into.
type Program struct {
	Consts  []interp.Value
	Strs    []string
	Types   []*minic.Type
	Syms    []*minic.Symbol
	Allocs  []AllocSpec
	Ops     []string
	Callees []Callee
	Fns     []*Fn
	// Main indexes Fns, -1 when the program has no main.
	Main int
	// Fragment marks a kernel-fragment program: one fn, no params, free
	// symbols resolved through Free.
	Fragment bool
	Free     []FreeRef
}

// Fn returns the compiled function with the given name, or nil.
func (p *Program) Fn(name string) *Fn {
	for _, f := range p.Fns {
		if f.Name == name {
			return f
		}
	}
	return nil
}
