package bytecode

import (
	"encoding/binary"
	"fmt"
)

// Instruction-stream codec. Each instruction encodes to a fixed 17-byte
// record: one opcode byte and four little-endian int32 operands. The
// pools (constants, types, symbols) hold Go pointers into the checked
// AST, so whole-program serialization is out of scope; the codec covers
// the flat code arrays for caching, diffing, and fuzzing the verifier.

const instrSize = 1 + 4*4

// EncodeInstrs serializes an instruction sequence.
func EncodeInstrs(code []Instr) []byte {
	buf := make([]byte, 0, len(code)*instrSize)
	var w [instrSize]byte
	for _, in := range code {
		w[0] = byte(in.Op)
		binary.LittleEndian.PutUint32(w[1:], uint32(in.A))
		binary.LittleEndian.PutUint32(w[5:], uint32(in.B))
		binary.LittleEndian.PutUint32(w[9:], uint32(in.C))
		binary.LittleEndian.PutUint32(w[13:], uint32(in.D))
		buf = append(buf, w[:]...)
	}
	return buf
}

// DecodeInstrs parses an encoded instruction stream. It rejects trailing
// bytes and unknown opcodes; operand range checking is VerifyCode's job.
func DecodeInstrs(data []byte) ([]Instr, error) {
	if len(data)%instrSize != 0 {
		return nil, fmt.Errorf("bytecode: stream length %d is not a multiple of %d", len(data), instrSize)
	}
	code := make([]Instr, 0, len(data)/instrSize)
	for off := 0; off < len(data); off += instrSize {
		op := Op(data[off])
		if op >= opCount {
			return nil, fmt.Errorf("bytecode: invalid opcode %d at offset %d", op, off)
		}
		code = append(code, Instr{
			Op: op,
			A:  int32(binary.LittleEndian.Uint32(data[off+1:])),
			B:  int32(binary.LittleEndian.Uint32(data[off+5:])),
			C:  int32(binary.LittleEndian.Uint32(data[off+9:])),
			D:  int32(binary.LittleEndian.Uint32(data[off+13:])),
		})
	}
	return code, nil
}
