package bytecode

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/perf"
)

// VM executes compiled bytecode against an interp.Machine, which keeps
// owning all state: object memory, globals, the builtin table, cost
// charging, and the step budget. One VM serves one machine; it is not
// safe for concurrent use (neither is the machine).
type VM struct {
	Prog *Program
	m    *interp.Machine

	// cost and col are refreshed from the machine on every entry: the GPU
	// executor swaps the machine's cost sink per simulated thread.
	cost interp.CostSink
	col  *perf.Collector

	// Per-pool caches resolved against this machine.
	objs     []*interp.Object // by Syms index (globals; nil for locals)
	symSpace []interp.MemSpace
	symWidth []int
	symType  []*minic.Type
	symConv  []uint8
	resolved bool

	linked []linkedCallee
	pools  [][]*vmFrame
	args   []interp.Value
}

// Conversion codes precomputed per symbol so OpStoreV's hot path skips
// the generic ConvertFor call when the stored kind already matches.
const (
	convOther  uint8 = iota // generic: call interp.ConvertFor
	convNone                // untyped symbol: store as-is
	convLong                // int64 storage: identity for int values
	convDouble              // float64 storage: identity for float values
	convInt                 // 32-bit truncation
	convChar                // 8-bit truncation
	convPtr                 // pointer storage: identity for pointer values
)

// convCodeFor classifies one declared type for the OpStoreV fast path.
func convCodeFor(t *minic.Type) uint8 {
	if t == nil {
		return convNone
	}
	switch t.Kind {
	case minic.TypeLong:
		return convLong
	case minic.TypeDouble:
		return convDouble
	case minic.TypeInt:
		return convInt
	case minic.TypeChar:
		return convChar
	case minic.TypePointer:
		return convPtr
	default:
		return convOther
	}
}

type calleeKind uint8

const (
	ckUnresolved calleeKind = iota
	ckBuiltin
	ckFn
	ckDecl
	ckUnknown
)

type linkedCallee struct {
	kind  calleeKind
	impl  interp.Builtin
	fnIdx int32
	decl  *minic.FuncDecl
}

type vmFrame struct {
	regs []interp.Value
	objs []*interp.Object
}

// NewVM builds an executor binding p to m. Call targets are resolved
// lazily on first call, so builtins installed after NewVM still resolve.
func NewVM(m *interp.Machine, p *Program) *VM {
	vm := &VM{
		Prog:     p,
		m:        m,
		linked:   make([]linkedCallee, len(p.Callees)),
		pools:    make([][]*vmFrame, len(p.Fns)),
		args:     make([]interp.Value, 0, 16),
		objs:     make([]*interp.Object, len(p.Syms)),
		symSpace: make([]interp.MemSpace, len(p.Syms)),
		symWidth: make([]int, len(p.Syms)),
		symType:  make([]*minic.Type, len(p.Syms)),
		symConv:  make([]uint8, len(p.Syms)),
	}
	for i, sym := range p.Syms {
		vm.symSpace[i] = m.SpaceOf(sym)
		vm.symType[i] = sym.Type
		vm.symConv[i] = convCodeFor(sym.Type)
		if sym.Type != nil {
			vm.symWidth[i] = sym.Type.Size()
		}
	}
	return vm
}

// refresh re-reads the machine's per-run mutable hooks.
func (vm *VM) refresh() {
	vm.cost = vm.m.Cost()
	vm.col = vm.m.Prof()
}

// resolveGlobals binds global symbol indices to their storage. Must run
// after InitGlobals; unresolved entries stay nil and trip the walker's
// "unresolved symbol" error on access.
func (vm *VM) resolveGlobals() {
	if vm.resolved {
		return
	}
	vm.resolved = true
	for i, sym := range vm.Prog.Syms {
		if sym.Global {
			vm.objs[i] = vm.m.GlobalObject(sym)
		}
	}
}

// Run mirrors Machine.Run: init globals, execute main, unwrap exit().
// Machines with a pragma hook (host job capture) and programs whose main
// declined compilation route wholesale to the tree-walker.
func (vm *VM) Run() (int, error) {
	if vm.Prog.Main < 0 || vm.Prog.Fns[vm.Prog.Main].Fallback || vm.m.HasPragmaHook() {
		return vm.m.Run()
	}
	if err := vm.m.InitGlobals(); err != nil {
		return 0, err
	}
	vm.refresh()
	vm.resolveGlobals()
	v, _, err := vm.callFn(int32(vm.Prog.Main), nil)
	if code, ok := interp.ExitStatus(err); ok {
		return code, nil
	}
	if err != nil {
		return 0, err
	}
	return int(v.AsInt()), nil
}

// CallFunction mirrors Machine.CallFunction for compiled functions,
// falling back to the walker for declined or unknown names.
func (vm *VM) CallFunction(name string, args []interp.Value) (interp.Value, error) {
	fnIdx := -1
	for i, f := range vm.Prog.Fns {
		if f.Name == name {
			fnIdx = i
			break
		}
	}
	if fnIdx < 0 || vm.Prog.Fns[fnIdx].Fallback || vm.m.HasPragmaHook() {
		return vm.m.CallFunction(name, args)
	}
	if err := vm.m.InitGlobals(); err != nil {
		return interp.Value{}, err
	}
	vm.refresh()
	vm.resolveGlobals()
	v, _, err := vm.callFn(int32(fnIdx), args)
	if code, ok := interp.ExitStatus(err); ok {
		return interp.IntVal(int64(code)), nil
	}
	return v, err
}

func (vm *VM) getFrame(fnIdx int32) *vmFrame {
	pool := vm.pools[fnIdx]
	if n := len(pool); n > 0 {
		fr := pool[n-1]
		vm.pools[fnIdx] = pool[:n-1]
		return fr
	}
	fn := vm.Prog.Fns[fnIdx]
	return &vmFrame{
		regs: make([]interp.Value, fn.NumRegs),
		objs: make([]*interp.Object, fn.NumObjSlots),
	}
}

func (vm *VM) putFrame(fnIdx int32, fr *vmFrame) {
	// Registers need no clearing (every read is dominated by a write);
	// object slots are nilled so pooled frames don't retain dead arrays.
	for i := range fr.objs {
		fr.objs[i] = nil
	}
	vm.pools[fnIdx] = append(vm.pools[fnIdx], fr)
}

// callFn invokes a compiled function with the walker's exact call
// semantics: arity check, per-parameter conversion, no store charges.
func (vm *VM) callFn(fnIdx int32, args []interp.Value) (interp.Value, bool, error) {
	fn := vm.Prog.Fns[fnIdx]
	if len(args) != len(fn.Params) {
		return interp.Value{}, false, fmt.Errorf("interp: %s called with %d args, want %d", fn.Name, len(args), len(fn.Params))
	}
	fr := vm.getFrame(fnIdx)
	for i, p := range fn.Params {
		if p.Reg >= 0 {
			fr.regs[p.Reg] = interp.ConvertFor(p.Type, args[i])
			continue
		}
		obj := interp.NewObject(p.Sym.Name, p.Type, 1, vm.m.SpaceOf(p.Sym))
		obj.Cells[0] = interp.ConvertFor(p.Type, args[i])
		fr.objs[p.Slot] = obj
	}
	v, term, err := vm.exec(fn, fr)
	vm.putFrame(fnIdx, fr)
	return v, term, err
}

// object resolves an objref against the frame and global pools.
func (vm *VM) object(fr *vmFrame, ref int32) (*interp.Object, error) {
	if ref < 0 {
		if obj := fr.objs[-ref-1]; obj != nil {
			return obj, nil
		}
		// A fragment slot the host did not populate, or (impossible for
		// compiled code) an unbound local.
		return nil, fmt.Errorf("interp: unresolved symbol %q", vm.freeSlotName(-ref-1))
	}
	if obj := vm.objs[ref]; obj != nil {
		return obj, nil
	}
	return nil, fmt.Errorf("interp: unresolved symbol %q", vm.Prog.Syms[ref].Name)
}

func (vm *VM) freeSlotName(slot int32) string {
	for _, f := range vm.Prog.Free {
		if f.Slot == slot {
			return f.Sym.Name
		}
	}
	return "?"
}

// exec runs one function's code to completion. The returned bool reports
// an explicit return (true) versus falling off the end (false) — the
// distinction ExecIn exposes for kernel region statements.
func (vm *VM) exec(fn *Fn, fr *vmFrame) (interp.Value, bool, error) {
	code := fn.Code
	regs := fr.regs
	cost := vm.cost
	col := vm.col
	consts := vm.Prog.Consts
	symSpace, symWidth, symConv := vm.symSpace, vm.symWidth, vm.symConv
	for pc := 0; pc < len(code); pc++ {
		in := code[pc]
		if col != nil {
			col.Enter(perf.CatOpcode, in.Op.Name())
		}
		switch in.Op {
		case OpNop:
		case OpCharge:
			if in.A > 0 {
				cost.Op(int(in.A))
			}
			if in.B > 0 {
				if err := vm.m.AddSteps(int64(in.B)); err != nil {
					if col != nil {
						col.Exit()
					}
					return interp.Value{}, false, err
				}
			}
		case OpJmp:
			pc = int(in.A) - 1
		case OpBr:
			if regs[in.A].Truthy() {
				pc = int(in.B) - 1
			} else {
				pc = int(in.C) - 1
			}
		case OpRet:
			if col != nil {
				col.Exit()
			}
			return interp.ConvertFor(fn.Ret, regs[in.A]), true, nil
		case OpRetZ:
			if col != nil {
				col.Exit()
			}
			return interp.Value{}, false, nil
		case OpConst:
			regs[in.A] = consts[in.B]
		case OpMove:
			regs[in.A] = regs[in.B]
		case OpZero:
			regs[in.A] = interp.Value{}
		case OpBool:
			if regs[in.B].Truthy() {
				regs[in.A] = interp.IntVal(1)
			} else {
				regs[in.A] = interp.IntVal(0)
			}

		// The hottest arithmetic/comparison opcodes get inline fast paths
		// (dominant operand kinds, measured on the benchmark suite); every
		// other combination shares vm.binop's guarded dispatch.
		case OpAddI:
			if l, r := regs[in.B], regs[in.C]; l.Kind == interp.ValInt && r.Kind == interp.ValInt {
				regs[in.A] = interp.IntVal(l.I + r.I)
			} else if err := vm.binop(regs, in); err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
		case OpSubI:
			if l, r := regs[in.B], regs[in.C]; l.Kind == interp.ValInt && r.Kind == interp.ValInt {
				regs[in.A] = interp.IntVal(l.I - r.I)
			} else if err := vm.binop(regs, in); err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
		case OpMulI:
			if l, r := regs[in.B], regs[in.C]; l.Kind == interp.ValInt && r.Kind == interp.ValInt {
				regs[in.A] = interp.IntVal(l.I * r.I)
			} else if err := vm.binop(regs, in); err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
		case OpEqI:
			if l, r := regs[in.B], regs[in.C]; l.Kind == interp.ValInt && r.Kind == interp.ValInt {
				regs[in.A] = boolReg(l.I == r.I)
			} else if err := vm.binop(regs, in); err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
		case OpNeI:
			if l, r := regs[in.B], regs[in.C]; l.Kind == interp.ValInt && r.Kind == interp.ValInt {
				regs[in.A] = boolReg(l.I != r.I)
			} else if err := vm.binop(regs, in); err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
		case OpLtI:
			if l, r := regs[in.B], regs[in.C]; l.Kind == interp.ValInt && r.Kind == interp.ValInt {
				regs[in.A] = boolReg(l.I < r.I)
			} else if err := vm.binop(regs, in); err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
		case OpAddF:
			if l, r := regs[in.B], regs[in.C]; l.Kind == interp.ValFloat && r.Kind == interp.ValFloat {
				regs[in.A] = interp.FloatVal(l.F + r.F)
			} else if err := vm.binop(regs, in); err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
		case OpSubF:
			if l, r := regs[in.B], regs[in.C]; l.Kind == interp.ValFloat && r.Kind == interp.ValFloat {
				regs[in.A] = interp.FloatVal(l.F - r.F)
			} else if err := vm.binop(regs, in); err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
		case OpMulF:
			if l, r := regs[in.B], regs[in.C]; l.Kind == interp.ValFloat && r.Kind == interp.ValFloat {
				regs[in.A] = interp.FloatVal(l.F * r.F)
			} else if err := vm.binop(regs, in); err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
		case OpDivI, OpModI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI, OpLeI, OpGtI, OpGeI,
			OpDivF, OpEqF, OpNeF, OpLtF, OpLeF, OpGtF, OpGeF:
			if err := vm.binop(regs, in); err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
		case OpBin:
			v, err := interp.ApplyBinary(vm.Prog.Ops[in.D], regs[in.B], regs[in.C])
			if err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
			regs[in.A] = v
		case OpNeg:
			if v := regs[in.B]; v.Kind == interp.ValFloat {
				regs[in.A] = interp.FloatVal(-v.F)
			} else {
				regs[in.A] = interp.IntVal(-v.AsInt())
			}
		case OpNot:
			if regs[in.B].Truthy() {
				regs[in.A] = interp.IntVal(0)
			} else {
				regs[in.A] = interp.IntVal(1)
			}
		case OpBnot:
			regs[in.A] = interp.IntVal(^regs[in.B].AsInt())
		case OpAddN:
			if v := regs[in.B]; v.Kind == interp.ValInt {
				regs[in.A] = interp.IntVal(v.I + int64(in.C))
			} else {
				regs[in.A] = interp.AddInt(v, int64(in.C))
			}
		case OpCvt:
			regs[in.A] = interp.ConvertFor(vm.Prog.Types[in.C], regs[in.B])

		case OpLoadV:
			cost.Load(symSpace[in.C], symWidth[in.C])
			regs[in.A] = regs[in.B]
		case OpStoreV:
			cost.Store(symSpace[in.C], symWidth[in.C])
			v := regs[in.B]
			switch symConv[in.C] {
			case convLong:
				if v.Kind != interp.ValInt {
					v = interp.IntVal(v.AsInt())
				}
				regs[in.A] = v
			case convDouble:
				if v.Kind != interp.ValFloat {
					v = interp.FloatVal(v.AsFloat())
				}
				regs[in.A] = v
			case convInt:
				regs[in.A] = interp.IntVal(int64(int32(v.AsInt())))
			case convChar:
				regs[in.A] = interp.IntVal(int64(byte(v.AsInt())))
			case convPtr:
				if v.Kind != interp.ValPtr {
					v = interp.ConvertFor(vm.symType[in.C], v)
				}
				regs[in.A] = v
			case convNone:
				regs[in.A] = v
			default:
				regs[in.A] = interp.ConvertFor(vm.symType[in.C], v)
			}
		case OpLoadO:
			obj, err := vm.object(fr, in.B)
			if err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
			cost.Load(obj.Space, obj.Elem.Size())
			regs[in.A] = obj.Cells[0]
		case OpStoreO:
			obj, err := vm.object(fr, in.A)
			if err == nil {
				err = vm.m.StorePtr(interp.Pointer{Obj: obj}, regs[in.B])
			}
			if err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
		case OpAddrO:
			obj, err := vm.object(fr, in.B)
			if err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
			regs[in.A] = interp.PtrVal(interp.Pointer{Obj: obj})
		case OpAlloc:
			spec := vm.Prog.Allocs[in.B]
			obj := interp.NewObject(spec.Name, spec.Elem, int(spec.N), vm.m.SpaceOf(spec.Sym))
			fr.objs[in.A] = obj
			if in.C >= 0 {
				cost.Store(obj.Space, spec.Elem.Size())
				obj.Cells[0] = interp.ConvertFor(spec.Elem, regs[in.C])
			}
		case OpLoadP:
			v := regs[in.B]
			if in.D != 0 && (v.Kind != interp.ValPtr || v.P.IsNull()) {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, fmt.Errorf("interp: %s: dereference of null or non-pointer", fn.Pos[pc])
			}
			lv, err := vm.m.LoadPtr(v.P)
			if err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
			regs[in.A] = lv
		case OpStoreP:
			v := regs[in.A]
			if in.D != 0 && (v.Kind != interp.ValPtr || v.P.IsNull()) {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, fmt.Errorf("interp: %s: store through null or non-pointer", fn.Pos[pc])
			}
			if err := vm.m.StorePtr(v.P, regs[in.B]); err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
		case OpChkP:
			v := regs[in.B]
			if v.Kind != interp.ValPtr || v.P.IsNull() {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, fmt.Errorf("interp: %s: store through null or non-pointer", fn.Pos[pc])
			}
			regs[in.A] = v
		case OpIdx:
			base := regs[in.C]
			if base.Kind != interp.ValPtr || base.P.IsNull() {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, fmt.Errorf("interp: %s: index of null or non-pointer", fn.Pos[pc])
			}
			i := int(regs[in.B].AsInt())
			regs[in.A] = interp.PtrVal(interp.Pointer{Obj: base.P.Obj, Off: base.P.Off + i*int(in.D)})
		case OpStr:
			regs[in.A] = interp.PtrVal(interp.Pointer{Obj: vm.m.InternLiteral(vm.Prog.Strs[in.B])})
		case OpStdio:
			regs[in.A] = interp.PtrVal(interp.Pointer{Obj: vm.m.Stdio(vm.Prog.Strs[in.B])})

		case OpArg:
			vm.args = append(vm.args, regs[in.A])
		case OpCall:
			v, err := vm.call(in.B, int(in.C))
			if err != nil {
				if col != nil {
					col.Exit()
				}
				return interp.Value{}, false, err
			}
			// The callee may have grown the shared arg stack; regs stays
			// valid (frame-owned), but re-read nothing else cached.
			regs[in.A] = v
		default:
			if col != nil {
				col.Exit()
			}
			return interp.Value{}, false, fmt.Errorf("bytecode: invalid opcode %d", in.Op)
		}
		if col != nil {
			col.Exit()
		}
	}
	return interp.Value{}, false, nil
}

// binop executes one typed arithmetic/comparison opcode. Static types
// picked the opcode; runtime kind guards keep exactness (assignment
// expressions yield unconverted values, so kinds can drift) by falling
// back to interp.ApplyBinary, which also owns all trap error strings.
func (vm *VM) binop(regs []interp.Value, in Instr) error {
	l, r := regs[in.B], regs[in.C]
	bothInt := l.Kind == interp.ValInt && r.Kind == interp.ValInt
	switch in.Op {
	case OpAddI:
		if bothInt {
			regs[in.A] = interp.IntVal(l.I + r.I)
			return nil
		}
		return vm.slowBin(regs, in, "+")
	case OpSubI:
		if bothInt {
			regs[in.A] = interp.IntVal(l.I - r.I)
			return nil
		}
		return vm.slowBin(regs, in, "-")
	case OpMulI:
		if bothInt {
			regs[in.A] = interp.IntVal(l.I * r.I)
			return nil
		}
		return vm.slowBin(regs, in, "*")
	case OpDivI:
		if bothInt && r.I != 0 {
			regs[in.A] = interp.IntVal(l.I / r.I)
			return nil
		}
		return vm.slowBin(regs, in, "/")
	case OpModI:
		if bothInt && r.I != 0 {
			regs[in.A] = interp.IntVal(l.I % r.I)
			return nil
		}
		return vm.slowBin(regs, in, "%")
	case OpAndI:
		if bothInt {
			regs[in.A] = interp.IntVal(l.I & r.I)
			return nil
		}
		return vm.slowBin(regs, in, "&")
	case OpOrI:
		if bothInt {
			regs[in.A] = interp.IntVal(l.I | r.I)
			return nil
		}
		return vm.slowBin(regs, in, "|")
	case OpXorI:
		if bothInt {
			regs[in.A] = interp.IntVal(l.I ^ r.I)
			return nil
		}
		return vm.slowBin(regs, in, "^")
	case OpShlI:
		if bothInt {
			regs[in.A] = interp.IntVal(l.I << uint(r.I&63))
			return nil
		}
		return vm.slowBin(regs, in, "<<")
	case OpShrI:
		if bothInt {
			regs[in.A] = interp.IntVal(l.I >> uint(r.I&63))
			return nil
		}
		return vm.slowBin(regs, in, ">>")
	case OpEqI:
		if bothInt {
			regs[in.A] = boolReg(l.I == r.I)
			return nil
		}
		return vm.slowBin(regs, in, "==")
	case OpNeI:
		if bothInt {
			regs[in.A] = boolReg(l.I != r.I)
			return nil
		}
		return vm.slowBin(regs, in, "!=")
	case OpLtI:
		if bothInt {
			regs[in.A] = boolReg(l.I < r.I)
			return nil
		}
		return vm.slowBin(regs, in, "<")
	case OpLeI:
		if bothInt {
			regs[in.A] = boolReg(l.I <= r.I)
			return nil
		}
		return vm.slowBin(regs, in, "<=")
	case OpGtI:
		if bothInt {
			regs[in.A] = boolReg(l.I > r.I)
			return nil
		}
		return vm.slowBin(regs, in, ">")
	case OpGeI:
		if bothInt {
			regs[in.A] = boolReg(l.I >= r.I)
			return nil
		}
		return vm.slowBin(regs, in, ">=")
	}

	// Float family: mirror applyBinary's promotion — either side float,
	// neither a pointer.
	if l.Kind == interp.ValPtr || r.Kind == interp.ValPtr ||
		(l.Kind != interp.ValFloat && r.Kind != interp.ValFloat) {
		return vm.slowBin(regs, in, floatOpStr(in.Op))
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch in.Op {
	case OpAddF:
		regs[in.A] = interp.FloatVal(lf + rf)
	case OpSubF:
		regs[in.A] = interp.FloatVal(lf - rf)
	case OpMulF:
		regs[in.A] = interp.FloatVal(lf * rf)
	case OpDivF:
		if rf == 0 {
			return vm.slowBin(regs, in, "/")
		}
		regs[in.A] = interp.FloatVal(lf / rf)
	case OpEqF:
		regs[in.A] = boolReg(lf == rf)
	case OpNeF:
		regs[in.A] = boolReg(lf != rf)
	case OpLtF:
		regs[in.A] = boolReg(lf < rf)
	case OpLeF:
		regs[in.A] = boolReg(lf <= rf)
	case OpGtF:
		regs[in.A] = boolReg(lf > rf)
	case OpGeF:
		regs[in.A] = boolReg(lf >= rf)
	default:
		return fmt.Errorf("bytecode: invalid typed opcode %d", in.Op)
	}
	return nil
}

func floatOpStr(op Op) string {
	switch op {
	case OpAddF:
		return "+"
	case OpSubF:
		return "-"
	case OpMulF:
		return "*"
	case OpDivF:
		return "/"
	case OpEqF:
		return "=="
	case OpNeF:
		return "!="
	case OpLtF:
		return "<"
	case OpLeF:
		return "<="
	case OpGtF:
		return ">"
	case OpGeF:
		return ">="
	}
	return "?"
}

func boolReg(b bool) interp.Value {
	if b {
		return interp.IntVal(1)
	}
	return interp.IntVal(0)
}

func (vm *VM) slowBin(regs []interp.Value, in Instr, op string) error {
	v, err := interp.ApplyBinary(op, regs[in.B], regs[in.C])
	if err != nil {
		return err
	}
	regs[in.A] = v
	return nil
}

// call dispatches one OpCall with the interpreter's exact resolution
// order and overhead charges.
func (vm *VM) call(calleeIdx int32, argc int) (interp.Value, error) {
	base := len(vm.args) - argc
	args := vm.args[base:]
	lc := &vm.linked[calleeIdx]
	if lc.kind == ckUnresolved {
		vm.resolve(calleeIdx)
	}
	var v interp.Value
	var err error
	switch lc.kind {
	case ckBuiltin:
		vm.cost.Op(2)
		v, err = vm.m.CallBuiltin(vm.Prog.Callees[calleeIdx].Name, lc.impl, args)
	case ckFn:
		vm.cost.Op(4)
		v, _, err = vm.callFn(lc.fnIdx, args)
	case ckDecl:
		vm.cost.Op(4)
		v, err = vm.m.CallDecl(lc.decl, args)
	default:
		err = fmt.Errorf("interp: call of unknown function %q", vm.Prog.Callees[calleeIdx].Name)
	}
	vm.args = vm.args[:base]
	return v, err
}

// resolve links one callee with evalCall's dispatch order: sema-marked
// builtins first, then program functions, then intrinsics installed
// without sema marking, else unknown.
func (vm *VM) resolve(calleeIdx int32) {
	c := vm.Prog.Callees[calleeIdx]
	lc := &vm.linked[calleeIdx]
	impl, hasBuiltin := vm.m.BuiltinNamed(c.Name)
	if hasBuiltin && c.Builtin {
		lc.kind, lc.impl = ckBuiltin, impl
		return
	}
	if decl := vm.m.Prog.Func(c.Name); decl != nil {
		for i, f := range vm.Prog.Fns {
			if f.Decl == decl && !f.Fallback {
				lc.kind, lc.fnIdx = ckFn, int32(i)
				return
			}
		}
		lc.kind, lc.decl = ckDecl, decl
		return
	}
	if hasBuiltin {
		lc.kind, lc.impl = ckBuiltin, impl
		return
	}
	lc.kind = ckUnknown
}

// FragmentVM executes one compiled kernel fragment (a loop condition, a
// loop body, or a combine region) repeatedly against host-bound storage.
// The GPU executor builds one per simulated thread context and swaps the
// machine's cost sink before each entry.
type FragmentVM struct {
	vm *VM
	fr *vmFrame
}

// NewFragmentVM binds a fragment program to a machine, resolving every
// free symbol through lookup (typically the thread frame first, then the
// machine's globals). A nil resolution fails the construction; callers
// fall back to the tree-walker.
func NewFragmentVM(m *interp.Machine, p *Program, lookup func(*minic.Symbol) *interp.Object) (*FragmentVM, error) {
	if p == nil || !p.Fragment || len(p.Fns) != 1 || p.Fns[0].Fallback {
		return nil, fmt.Errorf("bytecode: not an executable fragment")
	}
	// EvalIn/ExecIn run global initializers on every entry (idempotent);
	// run them once here so free globals are allocated before binding.
	if err := m.InitGlobals(); err != nil {
		return nil, err
	}
	vm := NewVM(m, p)
	fn := p.Fns[0]
	fr := &vmFrame{
		regs: make([]interp.Value, fn.NumRegs),
		objs: make([]*interp.Object, fn.NumObjSlots),
	}
	for _, free := range p.Free {
		obj := lookup(free.Sym)
		if obj == nil {
			return nil, fmt.Errorf("bytecode: unbound fragment symbol %q", free.Sym.Name)
		}
		fr.objs[free.Slot] = obj
	}
	return &FragmentVM{vm: vm, fr: fr}, nil
}

// Run executes the fragment once. The bool reports whether a return
// statement terminated it (ExecIn's contract); condition fragments return
// the condition value.
func (f *FragmentVM) Run() (interp.Value, bool, error) {
	f.vm.refresh()
	return f.vm.exec(f.vm.Prog.Fns[0], f.fr)
}
